// Watchlist reproduces the paper's motivating application (Section 1): an
// airline needs to learn which passengers appear on a federal watch list —
// and nothing else. The agency must not learn which passengers were
// checked, and the airline must not learn the rest of the list.
//
// The demo runs the oblivious index nested-loop join twice with watch lists
// that hit very different passengers (and match counts chosen to coincide)
// and shows the untrusted server's view — the trace — is identical in
// length, so it learns nothing about who matched.
package main

import (
	"fmt"
	"log"

	"oblivjoin"
)

func run(watchPassports []int64) (*oblivjoin.Result, int64) {
	passengers := &oblivjoin.Relation{Schema: oblivjoin.Schema{
		Table:        "passengers",
		Columns:      []string{"passport", "seat"},
		PayloadBytes: 96,
	}}
	for i := int64(0); i < 50; i++ {
		passengers.Tuples = append(passengers.Tuples,
			oblivjoin.Tuple{Values: []int64{7000 + i, i}})
	}
	watch := &oblivjoin.Relation{Schema: oblivjoin.Schema{
		Table:        "watchlist",
		Columns:      []string{"passport", "level"},
		PayloadBytes: 16,
	}}
	for _, p := range watchPassports {
		watch.Tuples = append(watch.Tuples, oblivjoin.Tuple{Values: []int64{p, 3}})
	}

	db := oblivjoin.NewDatabase(oblivjoin.Config{})
	if err := db.AddTable(watch, "passport"); err != nil {
		log.Fatal(err)
	}
	if err := db.AddTable(passengers, "passport"); err != nil {
		log.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		log.Fatal(err)
	}
	res, err := db.IndexNestedLoopJoin("watchlist", "passport", "passengers", "passport")
	if err != nil {
		log.Fatal(err)
	}
	return res, res.Stats.BlocksMoved()
}

func main() {
	// Two watch lists of equal size whose 3 hits land on different
	// passengers.
	resA, blocksA := run([]int64{7001, 7010, 7033, 9999, 8888})
	resB, blocksB := run([]int64{7049, 7002, 7017, 5555, 4444})

	fmt.Println("watch list A matched passengers:")
	for _, t := range resA.Tuples {
		fmt.Printf("  passport %d (seat %d)\n", t.Values[0], t.Values[3])
	}
	fmt.Println("watch list B matched passengers:")
	for _, t := range resB.Tuples {
		fmt.Printf("  passport %d (seat %d)\n", t.Values[0], t.Values[3])
	}
	fmt.Printf("\nserver-visible block transfers: run A = %d, run B = %d\n", blocksA, blocksB)
	if blocksA == blocksB {
		fmt.Println("identical traces: the server cannot tell WHO matched — only how many")
	} else {
		fmt.Println("WARNING: traces differ; obliviousness violated")
	}
}
