// Quickstart: build an encrypted oblivious database of two tables and run
// an oblivious equi-join, printing the result and what the untrusted server
// was able to observe.
package main

import (
	"fmt"
	"log"

	"oblivjoin"
)

func main() {
	// Plaintext tables, client-side.
	employees := &oblivjoin.Relation{Schema: oblivjoin.Schema{
		Table:        "employees",
		Columns:      []string{"emp_id", "dept_id"},
		PayloadBytes: 80, // name, title, ... modeled as opaque padding
	}}
	for i := int64(1); i <= 12; i++ {
		employees.Tuples = append(employees.Tuples,
			oblivjoin.Tuple{Values: []int64{i, i % 4}})
	}
	departments := &oblivjoin.Relation{Schema: oblivjoin.Schema{
		Table:        "departments",
		Columns:      []string{"dept_id", "floor"},
		PayloadBytes: 40,
	}}
	for d := int64(0); d < 4; d++ {
		departments.Tuples = append(departments.Tuples,
			oblivjoin.Tuple{Values: []int64{d, 3 + d}})
	}

	// Encrypt, index, and upload (the paper's preprocessing step).
	db := oblivjoin.NewDatabase(oblivjoin.Config{})
	if err := db.AddTable(departments, "dept_id"); err != nil {
		log.Fatal(err)
	}
	if err := db.AddTable(employees, "dept_id"); err != nil {
		log.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed: %d B on the server, %d B of client state\n",
		db.CloudBytes(), db.ClientBytes())

	// SELECT * FROM departments d, employees e WHERE d.dept_id = e.dept_id,
	// computed without revealing which department any employee belongs to.
	res, err := db.IndexNestedLoopJoin("departments", "dept_id", "employees", "dept_id")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join produced %d records, e.g. %v\n", res.RealCount, res.Tuples[0].Values)
	fmt.Printf("join steps (padded to |T1|+|R|): %d\n", res.PaddedSteps)
	fmt.Printf("server saw %d block transfers (%d bytes), %.3fs simulated\n",
		res.Stats.BlocksMoved(), res.Stats.BytesMoved(), db.QueryCost(res))
}
