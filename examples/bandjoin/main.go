// Bandjoin demonstrates the oblivious band join of Section 5.3 on the
// paper's Query TB1 shape: suppliers joined with suppliers holding a higher
// account balance (s1.acctbal < s2.acctbal) — a non-equi predicate no prior
// oblivious system (except a Cartesian product) could answer.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"oblivjoin"
)

func main() {
	r := rand.New(rand.NewSource(7))
	suppliers := &oblivjoin.Relation{Schema: oblivjoin.Schema{
		Table:        "s1",
		Columns:      []string{"suppkey", "acctbal"},
		PayloadBytes: 120,
	}}
	for i := int64(1); i <= 25; i++ {
		suppliers.Tuples = append(suppliers.Tuples,
			oblivjoin.Tuple{Values: []int64{i, int64(r.Intn(10_000))}})
	}

	db := oblivjoin.NewDatabase(oblivjoin.Config{CacheIndexes: true})
	if err := db.AddTable(suppliers, "acctbal"); err != nil {
		log.Fatal(err)
	}
	// Self-join via an alias, as in the SQL "supplier s1, supplier s2".
	if err := db.AddTable(suppliers.Alias("s2"), "acctbal"); err != nil {
		log.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		log.Fatal(err)
	}

	res, err := db.BandJoin("s1", "acctbal", oblivjoin.Less, "s2", "acctbal")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TB1: %d (s1, s2) pairs with s1.acctbal < s2.acctbal out of %d possible\n",
		res.RealCount, 25*25)
	fmt.Printf("tuple retrievals per table, padded to |T1|+|R| (Theorem 3): %d\n", res.PaddedSteps)
	fmt.Printf("simulated query cost: %.3fs, %.2f MB moved\n",
		db.QueryCost(res), float64(res.Stats.BytesMoved())/1e6)
}
