// Socialgraph runs the paper's social-graph multiway query SM1 — "a
// popular user who is followed by a normal user followed by an inactive
// user" — obliviously over a generated follower graph, demonstrating the
// Section 6 multiway join (tuple disabling, Theorem 4 padding) through the
// public API.
package main

import (
	"fmt"
	"log"

	"oblivjoin"
	"oblivjoin/internal/socialgraph"
)

func main() {
	graph := socialgraph.Generate(socialgraph.Config{Users: 300, Seed: 11})
	fmt.Printf("generated %d users: %d popular-user edges, %d normal-user edges, %d inactive-user edges\n",
		graph.NumUsers, graph.Popular.Len(), graph.Normal.Len(), graph.Inactive.Len())

	db := oblivjoin.NewDatabase(oblivjoin.Config{
		EnableMultiway: true,
		CacheIndexes:   true,
	})
	// The root table (popular-user) is scanned; the others are probed via
	// indices on the attribute they join their join-tree parent on.
	if err := db.AddTable(graph.Popular); err != nil {
		log.Fatal(err)
	}
	if err := db.AddTable(graph.Normal, "src"); err != nil {
		log.Fatal(err)
	}
	if err := db.AddTable(graph.Inactive, "src"); err != nil {
		log.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		log.Fatal(err)
	}

	sm1 := graph.SM1()
	res, err := db.MultiwayJoin(oblivjoin.Query{Tables: sm1.Query.Tables, Preds: sm1.Query.Preds})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SM1 found %d (popular→normal→inactive) chains\n", res.RealCount)
	fmt.Printf("join steps executed %d, padded to Theorem 4 bound %d\n", res.Steps, res.PaddedSteps)
	fmt.Printf("simulated query cost %.3fs, %.2f MB moved\n",
		db.QueryCost(res), float64(res.Stats.BytesMoved())/1e6)
	if res.RealCount > 0 {
		t := res.Tuples[0]
		fmt.Printf("example chain: popular %d→%d, normal %d→%d, inactive %d→%d\n",
			t.Values[0], t.Values[1], t.Values[2], t.Values[3], t.Values[4], t.Values[5])
	}
}
