// Analytics runs a small end-to-end oblivious query plan over TPC-H-like
// data — selection, join, and grouping aggregation — showing how the
// operator substrate composes around the oblivious join:
//
//	SELECT s_nationkey, COUNT(*)
//	FROM   supplier, customer
//	WHERE  s_nationkey = c_nationkey AND s_acctbal >= 3000
//	GROUP  BY s_nationkey
//
// Every stage touches the server with a size-only access pattern; the plan
// reveals exactly the sizes of its inputs and intermediates.
package main

import (
	"fmt"
	"log"

	"oblivjoin"
	"oblivjoin/internal/operators"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/tpch"
	"oblivjoin/internal/xcrypto"
)

func main() {
	db := tpch.Generate(tpch.Config{Suppliers: 15, Seed: 3})
	meter := storage.NewMeter()
	sealer, _, err := xcrypto.NewRandomSealer()
	if err != nil {
		log.Fatal(err)
	}
	opOpts := operators.Options{BlockSize: 1024, Meter: meter, Sealer: sealer}

	// Stage 1: oblivious selection — suppliers in good standing.
	sel, err := operators.Select(db.Supplier,
		[]operators.Pred{{Column: "s_acctbal", Op: operators.GE, Value: 300_000}}, opOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("σ(s_acctbal >= 3000.00): %d of %d suppliers kept\n", sel.RealCount, db.Supplier.Len())

	// Stage 2: oblivious join of the selected suppliers with customers.
	selected := &oblivjoin.Relation{Schema: db.Supplier.Schema, Tuples: sel.Tuples}
	jdb := oblivjoin.NewDatabase(oblivjoin.Config{BlockPayload: 1024})
	if err := jdb.AddTable(selected, "s_nationkey"); err != nil {
		log.Fatal(err)
	}
	if err := jdb.AddTable(db.Customer, "c_nationkey"); err != nil {
		log.Fatal(err)
	}
	if err := jdb.Seal(); err != nil {
		log.Fatal(err)
	}
	joined, err := jdb.IndexNestedLoopJoin("supplier", "s_nationkey", "customer", "c_nationkey")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("⋈ on nationkey: %d records (steps padded to %d)\n",
		joined.RealCount, joined.PaddedSteps)

	// Stage 3: oblivious COUNT(*) GROUP BY nationkey over the join output.
	joinedRel := &oblivjoin.Relation{Schema: joined.Schema, Tuples: joined.Tuples}
	agg, err := operators.GroupAggregate(joinedRel, "supplier.s_nationkey", "", operators.Count, opOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("γ COUNT(*) BY nationkey: %d groups\n", agg.RealCount)
	for i, tu := range agg.Tuples {
		if i >= 5 {
			fmt.Printf("  ... %d more groups\n", agg.RealCount-5)
			break
		}
		fmt.Printf("  nation %2d: %d supplier-customer pairs\n", tu.Values[0], tu.Values[1])
	}
	fmt.Printf("total plan traffic: %.2f MB (select/aggregate) + %.2f MB (join)\n",
		float64(sel.Stats.BytesMoved()+agg.Stats.BytesMoved())/1e6,
		float64(joined.Stats.BytesMoved())/1e6)
}
