// Analytics runs a multi-query oblivious analytics session through the
// cost-based query planner — logical queries with selection pushdown,
// cost-based operator choice, plan-cache reuse across queries, and a
// grouping aggregation over the decoded output:
//
//	Q1: SELECT s_nationkey, COUNT(*)
//	    FROM   supplier, customer
//	    WHERE  s_nationkey = c_nationkey AND s_acctbal >= 3000
//	    GROUP  BY s_nationkey
//
//	Q2: SELECT *
//	    FROM   supplier, nation
//	    WHERE  s_nationkey = n_nationkey AND s_acctbal >= 3000
//
// The planner explains each query before running it (the enumerated
// candidates with predicted block-access counts, and which inputs come
// from the plan cache). Planning prepares the pushed-down inputs, so the
// EXPLAIN's work is not wasted: Q1's Run reuses what its Explain built,
// and Q2 — a different join — reuses the same filtered supplier input,
// moving zero prepare blocks.
package main

import (
	"fmt"
	"log"

	"oblivjoin"
	"oblivjoin/internal/operators"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/tpch"
	"oblivjoin/internal/xcrypto"
)

func main() {
	data := tpch.Generate(tpch.Config{Suppliers: 15, Seed: 3})
	db := oblivjoin.NewDatabase(oblivjoin.Config{BlockPayload: 1024})
	if err := db.AddTable(data.Supplier, "s_nationkey"); err != nil {
		log.Fatal(err)
	}
	if err := db.AddTable(data.Customer, "c_nationkey"); err != nil {
		log.Fatal(err)
	}
	if err := db.AddTable(data.Nation, "n_nationkey"); err != nil {
		log.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		log.Fatal(err)
	}

	goodStanding := oblivjoin.Filter{Table: "supplier", Preds: []oblivjoin.SelectPred{
		{Column: "s_acctbal", Op: oblivjoin.GE, Value: 300_000},
	}}

	// Q1: filtered suppliers joined with customers. Explain first — the
	// plan is a function of public metadata only, so printing it leaks
	// nothing beyond what the execution trace already reveals.
	q1 := oblivjoin.Query{
		Tables:  []string{"supplier", "customer"},
		Preds:   []oblivjoin.Pred{{Left: "supplier", LeftAttr: "s_nationkey", Right: "customer", RightAttr: "c_nationkey"}},
		Filters: []oblivjoin.Filter{goodStanding},
	}
	plan, err := db.Explain(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("-- EXPLAIN Q1\n", plan)
	out1, err := db.Run(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- Q1: %d records (prepare moved %d blocks, %d cache hits)\n\n",
		len(out1.Tuples), out1.PrepareStats.BlocksMoved(), out1.CacheHits)

	// COUNT(*) GROUP BY nationkey over the decoded join output, using the
	// oblivious aggregation operator directly.
	meter := storage.NewMeter()
	sealer, _, err := xcrypto.NewRandomSealer()
	if err != nil {
		log.Fatal(err)
	}
	joined := &oblivjoin.Relation{Schema: out1.Result.Schema, Tuples: out1.Result.Tuples}
	agg, err := operators.GroupAggregate(joined, "supplier.s_nationkey", "", operators.Count,
		operators.Options{BlockSize: 1024, Meter: meter, Sealer: sealer})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("γ COUNT(*) BY nationkey: %d groups\n", agg.RealCount)
	for i, tu := range agg.Tuples {
		if i >= 5 {
			fmt.Printf("  ... %d more groups\n", agg.RealCount-5)
			break
		}
		fmt.Printf("  nation %2d: %d supplier-customer pairs\n", tu.Values[0], tu.Values[1])
	}
	fmt.Println()

	// Q2: a different join over the same filtered suppliers. The plan
	// cache recognizes the prepared input by signature — no pushdown or
	// upload traffic the second time.
	q2 := oblivjoin.Query{
		Tables:  []string{"supplier", "nation"},
		Preds:   []oblivjoin.Pred{{Left: "supplier", LeftAttr: "s_nationkey", Right: "nation", RightAttr: "n_nationkey"}},
		Filters: []oblivjoin.Filter{goodStanding},
	}
	plan, err = db.Explain(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("-- EXPLAIN Q2\n", plan)
	out2, err := db.Run(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- Q2: %d records (prepare moved %d blocks, %d cache hits)\n\n",
		len(out2.Tuples), out2.PrepareStats.BlocksMoved(), out2.CacheHits)

	stats := db.PlanCacheStats()
	fmt.Printf("plan cache: %d entries, %d hits, %d misses\n", stats.Entries, stats.Hits, stats.Misses)
}
