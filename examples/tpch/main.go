// Tpch runs the paper's TPC-H queries TE1 (binary) and TM1 (multiway) on a
// small generated instance, comparing the two oblivious binary algorithms
// and reporting the Theorem 1/2/4 retrieval counts.
package main

import (
	"fmt"
	"log"

	"oblivjoin"
	"oblivjoin/internal/tpch"
)

func main() {
	db := tpch.Generate(tpch.Config{Suppliers: 10, Seed: 1})
	fmt.Printf("TPC-H instance: %d suppliers, %d customers, %d orders, %d lineitems (%.2f MB raw)\n",
		db.Supplier.Len(), db.Customer.Len(), db.Orders.Len(), db.Lineitem.Len(),
		float64(db.RawBytes())/1e6)

	// TE1: suppliers and customers in the same nations (binary equi-join).
	enc := oblivjoin.NewDatabase(oblivjoin.Config{BlockPayload: 1024})
	if err := enc.AddTable(db.Supplier, "s_nationkey"); err != nil {
		log.Fatal(err)
	}
	if err := enc.AddTable(db.Customer, "c_nationkey"); err != nil {
		log.Fatal(err)
	}
	if err := enc.Seal(); err != nil {
		log.Fatal(err)
	}
	smj, err := enc.SortMergeJoin("supplier", "s_nationkey", "customer", "c_nationkey")
	if err != nil {
		log.Fatal(err)
	}
	enc.ResetStats()
	inlj, err := enc.IndexNestedLoopJoin("supplier", "s_nationkey", "customer", "c_nationkey")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TE1: %d records\n", smj.RealCount)
	fmt.Printf("  SMJ : steps %d (=|T1|+|T2|+|R|+1), %.3fs simulated\n", smj.PaddedSteps, enc.QueryCost(smj))
	fmt.Printf("  INLJ: steps %d (=|T1|+|R|),        %.3fs simulated\n", inlj.PaddedSteps, enc.QueryCost(inlj))

	// TM1: lineitem ⋈ orders ⋈ customer (acyclic multiway).
	multi := oblivjoin.NewDatabase(oblivjoin.Config{BlockPayload: 1024, EnableMultiway: true, CacheIndexes: true})
	if err := multi.AddTable(db.Customer); err != nil {
		log.Fatal(err)
	}
	if err := multi.AddTable(db.Orders, "o_custkey"); err != nil {
		log.Fatal(err)
	}
	if err := multi.AddTable(db.Lineitem, "l_orderkey"); err != nil {
		log.Fatal(err)
	}
	if err := multi.Seal(); err != nil {
		log.Fatal(err)
	}
	tm1 := db.TM1()
	res, err := multi.MultiwayJoin(oblivjoin.Query{Tables: tm1.Query.Tables, Preds: tm1.Query.Preds})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TM1: %d records, steps %d padded to %d (=|T1|+2Σ|Tj|+|R|), %.3fs simulated\n",
		res.RealCount, res.Steps, res.PaddedSteps, multi.QueryCost(res))
}
