package oblivjoin_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasDocComment is the docs lint: every package in this
// module — the facade, every internal package, and every command — must
// carry a package comment, so `go doc` answers "what is this layer for"
// at every node of the architecture diagram in README.md.
func TestEveryPackageHasDocComment(t *testing.T) {
	var dirs []string
	dirs = append(dirs, ".")
	for _, root := range []string{"internal", "cmd"} {
		if err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				dirs = append(dirs, path)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var goFiles []string
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			goFiles = append(goFiles, filepath.Join(dir, name))
		}
		if len(goFiles) == 0 {
			continue
		}
		documented := false
		fset := token.NewFileSet()
		for _, path := range goFiles {
			f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package in %s has no package comment on any of its %d files", dir, len(goFiles))
		}
	}
}
