// Package oblivjoin is a from-scratch implementation of "Towards Practical
// Oblivious Join" (Chang, Xie, Wang, Li — SIGMOD 2022): oblivious binary
// equi-joins (sort-merge and index nested-loop), band joins, and acyclic
// multiway equi-joins over a cloud database, built on B-tree indices
// integrated into Path-ORAMs.
//
// The client encrypts its tables, packs them into fixed-size blocks, builds
// B-tree indices, and uploads everything into Path-ORAM structures held by
// an untrusted server. Join queries then run with access patterns that
// depend only on public sizing information: every join step retrieves one
// (real or dummy) tuple from every input table at a fixed access cost, one
// output record (real or dummy) is written per step, step counts are padded
// to closed-form bounds, and dummies are removed by an oblivious filter.
//
// Basic use:
//
//	db := oblivjoin.NewDatabase(oblivjoin.Config{})
//	db.AddTable(passengers, "passport")
//	db.AddTable(watchlist, "passport")
//	if err := db.Seal(); err != nil { ... }
//	res, err := db.IndexNestedLoopJoin("passengers", "passport", "watchlist", "passport")
//
// See the examples directory for complete programs and DESIGN.md for the
// architecture.
package oblivjoin

import (
	"crypto/rand"
	"fmt"
	"io"
	"sync"
	"time"

	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
	"oblivjoin/internal/operators"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/query"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/remote"
	"oblivjoin/internal/shard"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/telemetry"
	"oblivjoin/internal/xcrypto"
)

// Re-exported model types.
type (
	// Schema names a table and its columns.
	Schema = relation.Schema
	// Tuple is one row.
	Tuple = relation.Tuple
	// Relation is a plaintext table before upload.
	Relation = relation.Relation
	// Result reports a join's outcome and cost.
	Result = core.Result
	// Stats is measured traffic.
	Stats = storage.Stats
	// CostModel converts traffic to simulated time.
	CostModel = storage.CostModel
	// BandOp is a band-join comparison operator.
	BandOp = core.BandOp
	// PaddingMode selects the output-size padding strategy (Section 8).
	PaddingMode = core.PaddingMode
	// Query is a declarative query: tables, join predicates, optional
	// per-table selections, and an optional projection. Run compiles it
	// with the cost-based planner (internal/query); MultiwayJoin accepts
	// the same type for hand-ordered execution.
	Query = query.Spec
	// Pred is one equality predicate of a Query.
	Pred = jointree.Pred
	// BandPred is a Query's band-join predicate.
	BandPred = query.Band
	// Filter is a Query's per-table selection conjunction, pushed below
	// the join obliviously.
	Filter = query.Filter
	// SelectPred is one comparison predicate of a Filter.
	SelectPred = operators.Pred
	// CompareOp is a SelectPred's comparison operator.
	CompareOp = operators.CompareOp
	// Plan is a compiled query: pushdown decisions, the costed candidate
	// slate, and the chosen operator. Its Explain method renders it.
	Plan = query.Plan
	// PlanCandidate is one enumerated physical plan inside a Plan.
	PlanCandidate = query.Candidate
	// QueryOutput is Run's result: the plan, the join outcome, and the
	// projected tuples.
	QueryOutput = query.Output
	// PlanCacheStats summarizes the session's plan-cache effectiveness.
	PlanCacheStats = query.CacheStats
	// Span is one timed, traffic-attributed phase of a query (see
	// StartTrace and DESIGN.md §2.8).
	Span = telemetry.Span
	// TraceNode is the exported JSON form of a span tree.
	TraceNode = telemetry.Node
)

// Band-join operators.
const (
	Less      = core.BandLess
	LessEq    = core.BandLessEq
	Greater   = core.BandGreater
	GreaterEq = core.BandGreaterEq
)

// Selection comparison operators (for Filter predicates).
const (
	EQ = operators.EQ
	NE = operators.NE
	LT = operators.LT
	LE = operators.LE
	GT = operators.GT
	GE = operators.GE
)

// Padding modes.
const (
	PadNone         = core.PadNone
	PadClosestPower = core.PadClosestPower
	PadCartesian    = core.PadCartesian
	PadDP           = core.PadDP
)

// Setting selects where tables live.
type Setting int

const (
	// SepORAM gives every table its own data ORAM and per-index ORAMs — the
	// paper's default ("Segmenting ORAM", Section 4.2).
	SepORAM Setting = iota
	// OneORAM stores every table in a single shared Path-ORAM (Section 7).
	OneORAM
	// Insecure disables encryption and ORAM entirely — the paper's "Raw
	// Index" baseline, useful only for comparisons.
	Insecure
)

// Config configures a Database.
type Config struct {
	// BlockPayload is the usable bytes per encrypted block (0 = 4096, the
	// paper's B = 4 KB).
	BlockPayload int
	// Key is the 16-byte master key; nil generates a fresh random key. The
	// database derives per-store subkeys from it via an HKDF keyring
	// (xcrypto.Keyring) and does not retain the master itself.
	Key []byte
	// KeyEpoch is the key-rotation epoch new blocks are sealed under (the
	// -rotate-epoch flag of cmd/ojoin). A client restarting after rotations
	// passes the deployment's current epoch; blocks sealed under earlier
	// epochs stay readable and migrate lazily on write-back. See RotateKeys.
	KeyEpoch uint8
	// Setting selects SepORAM (default), OneORAM, or Insecure.
	Setting Setting
	// CacheIndexes keeps all index levels above the leaves client-side —
	// the paper's "+Cache" mode (Δ = 1).
	CacheIndexes bool
	// EnableMultiway puts indexes in the uniform write-back mode the
	// multiway join's disable operations require; binary joins then cost 2Δ
	// index accesses per retrieval instead of Δ.
	EnableMultiway bool
	// Padding selects the Section 8 output padding strategy.
	Padding PaddingMode
	// SortWorkers sizes the worker pool of the oblivious sort engine that
	// runs every join's final output filter (0 or 1 = serial). Parallelism
	// does not change the server-visible leakage: the sort's access schedule
	// is fixed, workers only reorder accesses within one bitonic stage. See
	// DESIGN.md §2.7.
	SortWorkers int
	// Cost converts traffic into simulated time; zero value uses the
	// paper's 1 Gbps model.
	Cost CostModel
	// EvictionBatch defers Path-ORAM evictions and flushes them k paths at
	// a time in one write round, deduplicating shared upper-tree buckets
	// (DESIGN.md §2.9). Eviction paths are uniform random and independent
	// of the data, so deferral changes only when the public-path writes
	// happen, never which buckets they touch. 0 or 1 keeps the classic
	// write-back-per-access data path.
	EvictionBatch int
	// PrefetchDepth coalesces the read paths of the all-dummy padding
	// loops, up to this many per round. Honored only in the non-padded
	// mode (PadNone): the switch to multi-path rounds happens at the
	// executed step count, which is public there but is exactly what the
	// padded modes exist to hide, so they force the depth to 1 (see
	// core.Options.PrefetchDepth). 0 or 1 disables coalescing.
	PrefetchDepth int
}

// Database is the client-side handle: it holds the encryption key, ORAM
// metadata (stash and position maps), cached index levels, and speaks the
// ORAM protocol with the (simulated) untrusted server.
type Database struct {
	cfg        Config
	meter      *storage.Meter
	keyring    *xcrypto.Keyring
	sealer     *xcrypto.Sealer
	pending    []pendingTable
	tables     map[string]*table.StoredTable
	shared     *oram.PathORAM
	sealed     bool
	setupStats storage.Stats
	span       *telemetry.Span
	flight     *telemetry.Flight
	remote     *remote.Client
	pool       *shard.Pool
	topts      table.Options
	planCache  *query.Cache
}

type pendingTable struct {
	rel   *Relation
	attrs []string
}

// NewDatabase creates an empty database with the given configuration.
func NewDatabase(cfg Config) *Database {
	return &Database{
		cfg:    cfg,
		meter:  storage.NewMeter(),
		flight: telemetry.NewFlight(),
		tables: make(map[string]*table.StoredTable),
	}
}

func (db *Database) blockPayload() int {
	if db.cfg.BlockPayload > 0 {
		return db.cfg.BlockPayload
	}
	return table.DefaultBlockPayload
}

func (db *Database) costModel() CostModel {
	if db.cfg.Cost.BandwidthBps > 0 {
		return db.cfg.Cost
	}
	return storage.DefaultCostModel()
}

// AddTable registers a plaintext relation and the attributes to index
// (every attribute a query will join on). Must be called before Seal.
func (db *Database) AddTable(rel *Relation, indexAttrs ...string) error {
	if db.sealed {
		return fmt.Errorf("oblivjoin: database already sealed")
	}
	if rel == nil {
		return fmt.Errorf("oblivjoin: nil relation")
	}
	for _, p := range db.pending {
		if p.rel.Schema.Table == rel.Schema.Table {
			return fmt.Errorf("oblivjoin: duplicate table %q", rel.Schema.Table)
		}
	}
	for _, a := range indexAttrs {
		if rel.Schema.Col(a) < 0 {
			return fmt.Errorf("oblivjoin: table %q has no column %q", rel.Schema.Table, a)
		}
	}
	db.pending = append(db.pending, pendingTable{rel: rel, attrs: indexAttrs})
	return nil
}

// Seal encrypts, uploads, and indexes every registered table — the paper's
// preprocessing step. After Seal the database answers join queries.
func (db *Database) Seal() error {
	if db.sealed {
		return fmt.Errorf("oblivjoin: database already sealed")
	}
	if len(db.pending) == 0 {
		return fmt.Errorf("oblivjoin: no tables added")
	}
	if db.cfg.Setting != Insecure {
		key := db.cfg.Key
		if key == nil {
			key = make([]byte, xcrypto.KeySize)
			if _, err := rand.Read(key); err != nil {
				return err
			}
		}
		var err error
		db.keyring, err = xcrypto.NewKeyring(key, db.cfg.KeyEpoch, nil)
		if err != nil {
			return err
		}
		// The query-output path (core's oblivious filter) seals transient
		// result blocks under its own subkey, separate from every table store.
		db.sealer, err = db.keyring.Sealer("query")
		if err != nil {
			return err
		}
	}
	opts := table.Options{
		BlockPayload:      db.blockPayload(),
		Meter:             db.meter,
		Keyring:           db.keyring,
		CacheIndex:        db.cfg.CacheIndexes,
		WriteBackDescents: db.cfg.EnableMultiway,
		Raw:               db.cfg.Setting == Insecure,
		EvictionBatch:     db.cfg.EvictionBatch,
		PrefetchDepth:     db.cfg.PrefetchDepth,
		Flight:            db.flight,
	}
	if db.remote != nil {
		opts.OpenStore = db.remote.Opener()
	}
	if db.pool != nil {
		opts.OpenStore = db.pool.Opener()
	}
	db.topts = opts // the planner builds prepared inputs with Seal's options
	switch db.cfg.Setting {
	case OneORAM:
		rels := make([]*Relation, len(db.pending))
		attrs := make(map[string][]string, len(db.pending))
		for i, p := range db.pending {
			rels[i] = p.rel
			attrs[p.rel.Schema.Table] = p.attrs
		}
		tables, shared, err := table.StoreShared(rels, attrs, opts)
		if err != nil {
			return err
		}
		db.tables, db.shared = tables, shared
	default:
		for _, p := range db.pending {
			st, err := table.Store(p.rel, p.attrs, opts)
			if err != nil {
				return err
			}
			db.tables[p.rel.Schema.Table] = st
		}
	}
	db.sealed = true
	db.setupStats = db.meter.Snapshot()
	db.meter.Reset() // setup traffic is not query cost
	return nil
}

// SetupStats returns the one-time upload traffic Seal consumed (the paper's
// preprocessing step), separate from query cost.
func (db *Database) SetupStats() Stats { return db.setupStats }

func (db *Database) lookup(name string) (*table.StoredTable, error) {
	if !db.sealed {
		return nil, fmt.Errorf("oblivjoin: Seal the database before querying")
	}
	st, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("oblivjoin: unknown table %q", name)
	}
	return st, nil
}

func (db *Database) joinOpts() core.Options {
	return core.Options{
		Mem:           0, // paper default M = 2B
		Padding:       db.cfg.Padding,
		Meter:         db.meter,
		Sealer:        db.sealer,
		OutBlockSize:  db.blockPayload() + xcrypto.Overhead,
		SortWorkers:   db.cfg.SortWorkers,
		OneORAM:       db.shared,
		Span:          db.span,
		PrefetchDepth: db.cfg.PrefetchDepth,
	}
}

// ConnectRemote points the database's server-side storage at a networked
// block server (cmd/ojoinserver): every store Seal provisions is created
// over the wire and all ORAM traffic flows through batched path RPCs. Must
// be called before Seal; traffic accounting still lands in Stats.
func (db *Database) ConnectRemote(addr string) error {
	if db.sealed {
		return fmt.Errorf("oblivjoin: connect before sealing")
	}
	if db.remote != nil {
		return fmt.Errorf("oblivjoin: already connected")
	}
	c, err := remote.Dial(remote.ClientOptions{Addr: addr, Meter: db.meter})
	if err != nil {
		return err
	}
	c.SetFlight(db.flight)
	db.remote = c
	return nil
}

// ConnectShards stripes the database's server-side storage over several
// networked block servers: every store Seal provisions is partitioned by
// the public function block i ↦ shard i mod N, and each ORAM batch fans
// out to the owning shards in parallel while still counting as one logical
// round (DESIGN.md §2.12). Must be called before Seal and is mutually
// exclusive with ConnectRemote. Traffic accounting still lands in Stats —
// the router meters at the transport, exactly like the single-server
// client, so Stats are identical at any shard count.
func (db *Database) ConnectShards(addrs []string) error {
	if db.sealed {
		return fmt.Errorf("oblivjoin: connect before sealing")
	}
	if db.remote != nil || db.pool != nil {
		return fmt.Errorf("oblivjoin: already connected")
	}
	p, err := shard.DialPool(addrs, remote.ClientOptions{Meter: db.meter})
	if err != nil {
		return err
	}
	p.SetFlight(db.flight)
	db.pool = p
	return nil
}

// ShardStats reports each shard's share of the fan-out traffic (sub-batches
// served and blocks carried) since the last reset. Empty without
// ConnectShards. These are public quantities: they are a fixed geometric
// projection of the already-public access pattern.
func (db *Database) ShardStats() []shard.Stat {
	if db.pool == nil {
		return nil
	}
	return db.pool.Stats()
}

// WriteShardMetrics writes the shard router's ojoin_shard_* metrics
// (shard count, per-shard batches, blocks, skew ratio, and sub-call
// latency histograms) plus the client meter's trace-cap accounting in
// Prometheus text format. No-op without ConnectShards.
func (db *Database) WriteShardMetrics(w io.Writer) {
	if db.pool != nil {
		db.pool.WriteMetrics(w)
		remote.WriteMeterMetrics(w, db.meter)
	}
}

// WatchShards polls the per-shard stats every interval and renders the
// ojoin_shard_* metrics (and meter trace accounting) to w until the
// returned stop function is called — the engine behind ojoin -watch. Each
// frame is one full Prometheus text exposition preceded by a comment line
// with the frame index, so the output doubles as a scrape-format log.
func (db *Database) WatchShards(w io.Writer, every time.Duration) (stop func()) {
	if db.pool == nil {
		return func() {}
	}
	if every <= 0 {
		every = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		// Frame 0 renders immediately so even a query shorter than the
		// interval leaves one frame behind.
		for frame := 0; ; frame++ {
			fmt.Fprintf(w, "# frame %d\n", frame)
			db.WriteShardMetrics(w)
			select {
			case <-done:
				return
			case <-tick.C:
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

// RotateKeys advances the keyring to the next epoch: blocks written from now
// on are sealed under the new epoch's subkey, while blocks sealed under every
// earlier epoch (and under the pre-keyring format) remain readable and
// migrate lazily as ORAM write-back re-seals them. Rotation changes only key
// material, never the access schedule, so the server-visible trace is
// byte-identical with or without it (see the oram trace-identity test).
// Returns the new epoch.
func (db *Database) RotateKeys() (uint8, error) {
	if db.keyring == nil {
		return 0, fmt.Errorf("oblivjoin: no keyring (Insecure setting or not sealed)")
	}
	return db.keyring.Rotate()
}

// KeyEpoch reports the epoch new blocks are currently sealed under (0 when
// running Insecure or before Seal).
func (db *Database) KeyEpoch() uint8 {
	if db.keyring == nil {
		return 0
	}
	return db.keyring.Epoch()
}

// Close releases the remote connection pool, if any, and zeroizes the
// keyring's derived key material.
func (db *Database) Close() error {
	if db.keyring != nil {
		db.keyring.Close()
	}
	if db.remote != nil {
		return db.remote.Close()
	}
	if db.pool != nil {
		return db.pool.Close()
	}
	return nil
}

// StartTrace opens a telemetry root span: until EndTrace, every query run
// on the database attaches a phase-attributed sub-tree (join → load → merge
// → pad → filter → decode, with the oblivious sort's runs/merge phases
// below) recording wall time, traffic deltas, worker counts, and public
// sizes only. Telemetry performs no server accesses, so the server-visible
// trace is identical with or without it (DESIGN.md §2.8).
// When the database is connected to remote servers, StartTrace also
// activates a distributed trace: every store request is stamped with the
// trace ID, a fresh span ID, and the current public phase label, and
// EndTrace pulls the servers' per-op spans back and grafts them into the
// returned tree (one server.shard.<s> subtree per shard). The stamps are
// functions of public data only, so the server-visible access trace is
// unchanged apart from the trace section itself.
func (db *Database) StartTrace(name string) *Span {
	db.span = telemetry.Start(name, db.meter)
	id := db.flight.Activate(0)
	db.span.SetFlight(db.flight)
	db.span.SetAttr("trace.id", int64(id))
	return db.span
}

// EndTrace closes and detaches the active span tree, returning it (nil when
// StartTrace was never called). Export the result with oblivjoin.MarshalTrace.
func (db *Database) EndTrace() *Span {
	sp := db.span
	if sp != nil && db.pool != nil {
		sp.SetAttr("shard.count", int64(db.pool.Shards()))
		for s, st := range db.pool.Stats() {
			sp.SetAttr(fmt.Sprintf("shard.%d.batches", s), st.Batches)
			sp.SetAttr(fmt.Sprintf("shard.%d.blocks", s), st.Blocks)
		}
	}
	if sp != nil && db.flight.Active() {
		db.graftServerSpans(sp)
	}
	db.flight.Deactivate()
	sp.End()
	db.span = nil
	return sp
}

// graftServerSpans pulls the servers' buffered spans for the active trace
// and splices them into the client tree: one server.shard.<s> subtree per
// shard (shard 0 for a single ConnectRemote server), grouped by the public
// phase label each op was stamped with, with one leaf per server op
// carrying the queue-wait / store-I/O decomposition. Fetching happens
// after the join completes (OpTrace is a pure telemetry read), so the
// oblivious access schedule is long since fixed. Fetch errors degrade to
// an attribute rather than failing the trace.
func (db *Database) graftServerSpans(root *Span) {
	traceID := db.flight.TraceID()
	var perShard [][]telemetry.ServerSpan
	var err error
	switch {
	case db.pool != nil:
		perShard, err = db.pool.FetchServerSpans(traceID)
	case db.remote != nil:
		var spans []telemetry.ServerSpan
		spans, err = db.remote.FetchServerSpans(traceID)
		perShard = [][]telemetry.ServerSpan{spans}
	default:
		return
	}
	if err != nil {
		root.SetAttr("server.spans.lost", 1)
		return
	}
	for s, spans := range perShard {
		if len(spans) == 0 {
			continue
		}
		hist := telemetry.NewHistogram()
		var total time.Duration
		groups := make(map[string][]telemetry.ServerSpan)
		var order []string
		for _, sv := range spans {
			ph := sv.Phase
			if ph == "" {
				ph = "unphased"
			}
			if _, ok := groups[ph]; !ok {
				order = append(order, ph)
			}
			groups[ph] = append(groups[ph], sv)
			total += time.Duration(sv.DurationNS)
			hist.Observe(time.Duration(sv.DurationNS))
		}
		node := telemetry.NewStatic(fmt.Sprintf("server.shard.%d", s), total)
		snap := hist.Snapshot()
		node.SetAttr("span.count", int64(len(spans)))
		node.SetAttr("latency.p50_ns", int64(snap.Quantile(0.50)))
		node.SetAttr("latency.p95_ns", int64(snap.Quantile(0.95)))
		node.SetAttr("latency.p99_ns", int64(snap.Quantile(0.99)))
		for _, ph := range order {
			g := groups[ph]
			var phTotal time.Duration
			var qw, io, blocks int64
			pn := telemetry.NewStatic("phase."+ph, 0)
			for _, sv := range g {
				phTotal += time.Duration(sv.DurationNS)
				qw += sv.QueueWaitNS
				io += sv.StoreIONS
				blocks += int64(sv.Blocks)
				on := telemetry.NewStatic(sv.Op+"@"+sv.Store, time.Duration(sv.DurationNS))
				on.SetAttr("span_id", int64(sv.SpanID))
				on.SetAttr("blocks", int64(sv.Blocks))
				on.SetAttr("queue_wait_ns", sv.QueueWaitNS)
				on.SetAttr("store_io_ns", sv.StoreIONS)
				pn.Adopt(on)
			}
			pn.SetDuration(phTotal)
			pn.SetAttr("ops", int64(len(g)))
			pn.SetAttr("blocks", blocks)
			pn.SetAttr("queue_wait_ns", qw)
			pn.SetAttr("store_io_ns", io)
			node.Adopt(pn)
		}
		root.Adopt(node)
	}
}

// MarshalTrace renders a span tree as indented JSON — the -trace-out file
// format of cmd/ojoin and cmd/ojoinbench.
func MarshalTrace(s *Span) ([]byte, error) { return telemetry.Marshal(s) }

// ParseTrace decodes a trace file written by MarshalTrace.
func ParseTrace(data []byte) (*TraceNode, error) { return telemetry.Parse(data) }

// SortMergeJoin runs the oblivious sort-merge equi-join (Algorithm 1) of
// t1.a1 = t2.a2. Both attributes must be indexed.
func (db *Database) SortMergeJoin(t1, a1, t2, a2 string) (*Result, error) {
	s1, err := db.lookup(t1)
	if err != nil {
		return nil, err
	}
	s2, err := db.lookup(t2)
	if err != nil {
		return nil, err
	}
	if db.cfg.Setting == Insecure {
		return nil, fmt.Errorf("oblivjoin: the Insecure setting supports comparisons only; use the baseline package")
	}
	return core.SortMergeJoin(s1, s2, a1, a2, db.joinOpts())
}

// IndexNestedLoopJoin runs the oblivious index nested-loop equi-join
// (Algorithm 2) of t1.a1 = t2.a2. Only a2 must be indexed.
func (db *Database) IndexNestedLoopJoin(t1, a1, t2, a2 string) (*Result, error) {
	s1, err := db.lookup(t1)
	if err != nil {
		return nil, err
	}
	s2, err := db.lookup(t2)
	if err != nil {
		return nil, err
	}
	if db.cfg.Setting == Insecure {
		return nil, fmt.Errorf("oblivjoin: the Insecure setting supports comparisons only; use the baseline package")
	}
	return core.IndexNestedLoopJoin(s1, s2, a1, a2, db.joinOpts())
}

// BandJoin runs the oblivious band join (Section 5.3) of t1.a1 OP t2.a2.
func (db *Database) BandJoin(t1, a1 string, op BandOp, t2, a2 string) (*Result, error) {
	s1, err := db.lookup(t1)
	if err != nil {
		return nil, err
	}
	s2, err := db.lookup(t2)
	if err != nil {
		return nil, err
	}
	if db.cfg.Setting == Insecure {
		return nil, fmt.Errorf("oblivjoin: the Insecure setting supports comparisons only; use the baseline package")
	}
	return core.BandJoin(s1, s2, a1, a2, op, db.joinOpts())
}

// MultiwayJoin runs the oblivious acyclic multiway equi-join (Section 6).
// The database must have been configured with EnableMultiway, and every
// non-root table needs an index on the attribute it joins its parent on.
func (db *Database) MultiwayJoin(q Query) (*Result, error) {
	if !db.sealed {
		return nil, fmt.Errorf("oblivjoin: Seal the database before querying")
	}
	if !db.cfg.EnableMultiway {
		return nil, fmt.Errorf("oblivjoin: configure EnableMultiway for multiway joins")
	}
	if db.cfg.Setting == Insecure {
		return nil, fmt.Errorf("oblivjoin: the Insecure setting supports comparisons only; use the baseline package")
	}
	tree, err := jointree.Build(q.JoinQuery())
	if err != nil {
		return nil, err
	}
	in := core.MultiwayInput{Tree: tree, Tables: make([]*table.StoredTable, tree.Len())}
	for i, n := range tree.Order {
		st, err := db.lookup(n.Table)
		if err != nil {
			return nil, err
		}
		in.Tables[i] = st
	}
	return core.MultiwayJoin(in, db.joinOpts())
}

// executor binds the query planner to this database's sealed tables,
// options, and plan cache.
func (db *Database) executor() (*query.Executor, error) {
	if !db.sealed {
		return nil, fmt.Errorf("oblivjoin: Seal the database before querying")
	}
	if db.cfg.Setting == Insecure {
		return nil, fmt.Errorf("oblivjoin: the Insecure setting supports comparisons only; use the baseline package")
	}
	if db.cfg.Setting != SepORAM {
		return nil, fmt.Errorf("oblivjoin: the query planner requires the SepORAM setting (per-table stores); call the join methods directly under OneORAM")
	}
	if db.planCache == nil {
		// The cache MACs its signatures under a keyring subkey: signatures
		// name server-visible stores, and keying them stops the server from
		// brute-forcing filter constants offline against the names it sees.
		sigKey, err := db.keyring.Subkey("plan-cache signature")
		if err != nil {
			return nil, err
		}
		db.planCache = query.NewCache(sigKey)
	}
	jopts := db.joinOpts()
	return &query.Executor{
		Tables:    db.tables,
		TableOpts: db.topts,
		JoinOpts:  jopts,
		OpOpts: operators.Options{
			BlockSize:   jopts.OutBlockSize,
			Meter:       db.meter,
			Sealer:      db.sealer,
			SortWorkers: db.cfg.SortWorkers,
			Span:        db.span,
		},
		EnableMultiway: db.cfg.EnableMultiway,
		Cache:          db.planCache,
	}, nil
}

// Run compiles and executes a declarative query: selections are pushed
// below the join obliviously (padded under the configured policy), the
// cost-based planner picks the cheapest operator from the Theorem 1–4
// bounds over public metadata, and filtered inputs are cached by public
// signature so repeated query shapes skip the sort-and-upload.
func (db *Database) Run(q Query) (*QueryOutput, error) {
	ex, err := db.executor()
	if err != nil {
		return nil, err
	}
	return ex.Run(q)
}

// PlanQuery compiles a query without executing the join. Pushdown still
// runs (plans are priced over the prepared inputs), warming the plan cache.
func (db *Database) PlanQuery(q Query) (*Plan, error) {
	ex, err := db.executor()
	if err != nil {
		return nil, err
	}
	return ex.Plan(q)
}

// Explain compiles a query and renders the plan: pushdown decisions,
// predicted block-access and round counts per candidate, and the choice.
func (db *Database) Explain(q Query) (string, error) {
	ex, err := db.executor()
	if err != nil {
		return "", err
	}
	return ex.Explain(q)
}

// PlanCacheStats reports the session's plan-cache entry and hit counts.
func (db *Database) PlanCacheStats() PlanCacheStats {
	if db.planCache == nil {
		return PlanCacheStats{}
	}
	return db.planCache.Stats()
}

// Stats returns the cumulative query traffic since Seal.
func (db *Database) Stats() Stats { return db.meter.Snapshot() }

// ResetStats zeroes the traffic counters.
func (db *Database) ResetStats() { db.meter.Reset() }

// QueryCost converts a result's traffic into simulated wall-clock seconds
// under the configured cost model.
func (db *Database) QueryCost(res *Result) float64 {
	return db.costModel().CostSeconds(res.Stats)
}

// CloudBytes returns the server-side storage footprint.
func (db *Database) CloudBytes() int64 {
	if db.shared != nil {
		return db.shared.ServerBytes()
	}
	var total int64
	for _, st := range db.tables {
		total += st.CloudBytes()
	}
	return total
}

// ClientBytes returns the client-side memory footprint (ORAM stash and
// position maps, cached index levels).
func (db *Database) ClientBytes() int64 {
	var total int64
	if db.shared != nil {
		total += db.shared.ClientBytes()
	}
	for _, st := range db.tables {
		total += st.ClientBytes()
	}
	return total
}
