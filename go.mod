module oblivjoin

go 1.22
