package oblivjoin

import (
	"fmt"
	"testing"
)

func demoRelations() (*Relation, *Relation) {
	passengers := &Relation{Schema: Schema{
		Table: "passengers", Columns: []string{"passport", "flight"}, PayloadBytes: 64,
	}}
	for i := 0; i < 30; i++ {
		passengers.Tuples = append(passengers.Tuples, Tuple{Values: []int64{int64(1000 + i), int64(i % 4)}})
	}
	watch := &Relation{Schema: Schema{
		Table: "watchlist", Columns: []string{"passport", "level"}, PayloadBytes: 32,
	}}
	for _, p := range []int64{1003, 1004, 1017, 1017, 2999} {
		watch.Tuples = append(watch.Tuples, Tuple{Values: []int64{p, 1}})
	}
	return passengers, watch
}

func newDemoDB(t *testing.T, cfg Config) *Database {
	t.Helper()
	passengers, watch := demoRelations()
	db := NewDatabase(cfg)
	if err := db.AddTable(passengers, "passport"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(watch, "passport"); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDatabaseLifecycle(t *testing.T) {
	db := newDemoDB(t, Config{BlockPayload: 512})
	res, err := db.IndexNestedLoopJoin("passengers", "passport", "watchlist", "passport")
	if err != nil {
		t.Fatal(err)
	}
	// Passports 1003, 1004 match once; 1017 matches the two watch entries.
	if res.RealCount != 4 {
		t.Fatalf("real count %d, want 4", res.RealCount)
	}
	if db.QueryCost(res) <= 0 {
		t.Fatal("query cost not positive")
	}
	if db.Stats().BlocksMoved() == 0 {
		t.Fatal("no traffic recorded")
	}
	if db.CloudBytes() == 0 || db.ClientBytes() == 0 {
		t.Fatal("storage accounting empty")
	}
	db.ResetStats()
	if db.Stats().BlocksMoved() != 0 {
		t.Fatal("reset failed")
	}
}

func TestDatabaseSortMergeAndBand(t *testing.T) {
	db := newDemoDB(t, Config{BlockPayload: 512})
	smj, err := db.SortMergeJoin("passengers", "passport", "watchlist", "passport")
	if err != nil {
		t.Fatal(err)
	}
	if smj.RealCount != 4 {
		t.Fatalf("smj count %d", smj.RealCount)
	}
	band, err := db.BandJoin("watchlist", "passport", Less, "passengers", "passport")
	if err != nil {
		t.Fatal(err)
	}
	if band.RealCount == 0 {
		t.Fatal("band join empty")
	}
}

func TestDatabaseOneORAM(t *testing.T) {
	db := newDemoDB(t, Config{BlockPayload: 512, Setting: OneORAM, CacheIndexes: true})
	res, err := db.IndexNestedLoopJoin("passengers", "passport", "watchlist", "passport")
	if err != nil {
		t.Fatal(err)
	}
	if res.RealCount != 4 {
		t.Fatalf("one-oram count %d", res.RealCount)
	}
}

func TestDatabaseMultiway(t *testing.T) {
	users := &Relation{Schema: Schema{Table: "users", Columns: []string{"uid", "country"}}}
	orders := &Relation{Schema: Schema{Table: "orders", Columns: []string{"oid", "uid"}}}
	items := &Relation{Schema: Schema{Table: "items", Columns: []string{"oid", "sku"}}}
	for i := int64(0); i < 10; i++ {
		users.Tuples = append(users.Tuples, Tuple{Values: []int64{i, i % 3}})
	}
	for i := int64(0); i < 20; i++ {
		orders.Tuples = append(orders.Tuples, Tuple{Values: []int64{i, i % 10}})
	}
	for i := int64(0); i < 40; i++ {
		items.Tuples = append(items.Tuples, Tuple{Values: []int64{i % 20, 100 + i}})
	}
	db := NewDatabase(Config{BlockPayload: 512, EnableMultiway: true})
	if err := db.AddTable(users); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(orders, "uid"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(items, "oid"); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	res, err := db.MultiwayJoin(Query{
		Tables: []string{"users", "orders", "items"},
		Preds: []Pred{
			{Left: "users", LeftAttr: "uid", Right: "orders", RightAttr: "uid"},
			{Left: "orders", LeftAttr: "oid", Right: "items", RightAttr: "oid"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every item joins its order and user: 40 results.
	if res.RealCount != 40 {
		t.Fatalf("multiway count %d, want 40", res.RealCount)
	}
}

func TestDatabaseValidation(t *testing.T) {
	db := NewDatabase(Config{})
	if err := db.AddTable(nil); err == nil {
		t.Fatal("nil table accepted")
	}
	rel := &Relation{Schema: Schema{Table: "t", Columns: []string{"a"}}}
	rel.Tuples = []Tuple{{Values: []int64{1}}}
	if err := db.AddTable(rel, "nope"); err == nil {
		t.Fatal("bad index attr accepted")
	}
	if err := db.Seal(); err == nil {
		t.Fatal("empty seal accepted")
	}
	if err := db.AddTable(rel, "a"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(rel, "a"); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := db.IndexNestedLoopJoin("t", "a", "t", "a"); err == nil {
		t.Fatal("query before seal accepted")
	}
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err == nil {
		t.Fatal("double seal accepted")
	}
	if err := db.AddTable(rel.Alias("u"), "a"); err == nil {
		t.Fatal("add after seal accepted")
	}
	if _, err := db.IndexNestedLoopJoin("missing", "a", "t", "a"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := db.MultiwayJoin(Query{}); err == nil {
		t.Fatal("multiway without EnableMultiway accepted")
	}
}

func TestDatabasePadding(t *testing.T) {
	passengers, watch := demoRelations()
	db := NewDatabase(Config{BlockPayload: 512, Padding: PadClosestPower})
	if err := db.AddTable(passengers, "passport"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(watch, "passport"); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	res, err := db.IndexNestedLoopJoin("passengers", "passport", "watchlist", "passport")
	if err != nil {
		t.Fatal(err)
	}
	if res.RealCount != 4 || res.PaddedCount != 4 {
		t.Fatalf("padding: real %d padded %d", res.RealCount, res.PaddedCount)
	}
}

func TestDatabaseDeterministicWithKey(t *testing.T) {
	key := make([]byte, 16)
	run := func() int {
		passengers, watch := demoRelations()
		db := NewDatabase(Config{BlockPayload: 512, Key: key})
		_ = db.AddTable(passengers, "passport")
		_ = db.AddTable(watch, "passport")
		if err := db.Seal(); err != nil {
			panic(err)
		}
		res, err := db.SortMergeJoin("passengers", "passport", "watchlist", "passport")
		if err != nil {
			panic(err)
		}
		return res.RealCount
	}
	if run() != run() {
		t.Fatal("keyed runs diverge")
	}
}

func ExampleDatabase() {
	people := &Relation{Schema: Schema{Table: "people", Columns: []string{"id", "dept"}}}
	depts := &Relation{Schema: Schema{Table: "depts", Columns: []string{"dept", "floor"}}}
	for i := int64(0); i < 6; i++ {
		people.Tuples = append(people.Tuples, Tuple{Values: []int64{i, i % 2}})
	}
	depts.Tuples = []Tuple{{Values: []int64{0, 3}}, {Values: []int64{1, 4}}}

	db := NewDatabase(Config{})
	_ = db.AddTable(people, "dept")
	_ = db.AddTable(depts, "dept")
	if err := db.Seal(); err != nil {
		panic(err)
	}
	res, _ := db.IndexNestedLoopJoin("depts", "dept", "people", "dept")
	fmt.Println("join records:", res.RealCount)
	// Output: join records: 6
}

func TestSetupStats(t *testing.T) {
	db := newDemoDB(t, Config{BlockPayload: 512})
	if db.SetupStats().BlocksMoved() == 0 {
		t.Fatal("setup stats empty")
	}
	if db.Stats().BlocksMoved() != 0 {
		t.Fatal("setup traffic leaked into query stats")
	}
}

func TestDatabaseDPPadding(t *testing.T) {
	passengers, watch := demoRelations()
	db := NewDatabase(Config{BlockPayload: 512, Padding: PadDP})
	_ = db.AddTable(passengers, "passport")
	_ = db.AddTable(watch, "passport")
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	res, err := db.IndexNestedLoopJoin("passengers", "passport", "watchlist", "passport")
	if err != nil {
		t.Fatal(err)
	}
	if res.RealCount != 4 {
		t.Fatalf("real %d", res.RealCount)
	}
	if res.PaddedCount <= res.RealCount {
		t.Fatalf("DP padding added no noise: %d", res.PaddedCount)
	}
}
