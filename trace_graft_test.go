package oblivjoin

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"oblivjoin/internal/remote"
)

// startShardServers brings up n loopback ojoinservers and returns their
// addresses.
func startShardServers(t *testing.T, n int) []string {
	t.Helper()
	var addrs []string
	for i := 0; i < n; i++ {
		srv := remote.NewServer(remote.ServerOptions{})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, addr.String())
	}
	return addrs
}

// TestDistributedTraceGraft is the acceptance-path e2e: a traced join over
// a 2-shard loopback deployment must come back with one grafted
// server.shard.<s> subtree per shard, phase groups below each, and the
// queue-wait / store-I/O decomposition on every group and leaf.
func TestDistributedTraceGraft(t *testing.T) {
	addrs := startShardServers(t, 2)
	passengers, watch := demoRelations()
	db := NewDatabase(Config{BlockPayload: 512})
	if err := db.AddTable(passengers, "passport"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(watch, "passport"); err != nil {
		t.Fatal(err)
	}
	if err := db.ConnectShards(addrs); err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}

	db.StartTrace("query")
	res, err := db.SortMergeJoin("passengers", "passport", "watchlist", "passport")
	if err != nil {
		t.Fatal(err)
	}
	if res.RealCount != 4 {
		t.Fatalf("smj count %d, want 4", res.RealCount)
	}
	sp := db.EndTrace()
	if sp == nil {
		t.Fatal("EndTrace returned nil")
	}
	n := sp.Export()
	if n.Attrs["trace.id"] == 0 {
		t.Fatal("trace.id attr missing from root")
	}
	if _, lost := n.Attrs["server.spans.lost"]; lost {
		t.Fatal("server span fetch failed — graft degraded")
	}
	for _, shard := range []string{"server.shard.0", "server.shard.1"} {
		sub := n.Find(shard)
		if sub == nil {
			t.Fatalf("%s subtree missing from trace", shard)
		}
		if sub.Attrs["span.count"] == 0 {
			t.Fatalf("%s has no server spans", shard)
		}
		if sub.Attrs["latency.p95_ns"] <= 0 {
			t.Fatalf("%s missing latency quantiles: %v", shard, sub.Attrs)
		}
		if len(sub.Children) == 0 {
			t.Fatalf("%s has no phase groups", shard)
		}
		var ioTotal int64
		for _, pg := range sub.Children {
			if !strings.HasPrefix(pg.Name, "phase.") {
				t.Fatalf("%s child %q is not a phase group", shard, pg.Name)
			}
			if _, ok := pg.Attrs["queue_wait_ns"]; !ok {
				t.Fatalf("phase group %s/%s missing queue_wait_ns", shard, pg.Name)
			}
			io, ok := pg.Attrs["store_io_ns"]
			if !ok {
				t.Fatalf("phase group %s/%s missing store_io_ns", shard, pg.Name)
			}
			ioTotal += io
			if pg.Attrs["ops"] != int64(len(pg.Children)) {
				t.Fatalf("phase group %s/%s ops=%d but %d leaves",
					shard, pg.Name, pg.Attrs["ops"], len(pg.Children))
			}
			for _, leaf := range pg.Children {
				if !strings.Contains(leaf.Name, "@") {
					t.Fatalf("leaf %q is not op@store", leaf.Name)
				}
				if leaf.Attrs["span_id"] == 0 || leaf.Attrs["blocks"] == 0 {
					t.Fatalf("leaf %s/%s missing span_id/blocks: %v", shard, leaf.Name, leaf.Attrs)
				}
			}
		}
		if ioTotal <= 0 {
			t.Fatalf("%s attributes zero store-I/O time across all phases", shard)
		}
	}
	// Every logical round reaches at least one shard server (single-block
	// rounds hit one shard; striped batches hit several), so the grafted
	// span total must cover the meter's round count.
	if rounds := n.Stats.NetworkRounds; rounds > 0 {
		var total int64
		for _, shard := range []string{"server.shard.0", "server.shard.1"} {
			total += n.Find(shard).Attrs["span.count"]
		}
		if total < rounds {
			t.Fatalf("grafted %d server spans for %d logical rounds", total, rounds)
		}
	}
	// The tree survives the -trace-out JSON round trip with the graft.
	data, err := MarshalTrace(sp)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Find("server.shard.1") == nil {
		t.Fatal("grafted subtree lost in MarshalTrace round trip")
	}

	// A second trace on the same database allocates a fresh trace ID and
	// grafts again (the flight must re-arm).
	db.StartTrace("query2")
	if _, err := db.SortMergeJoin("passengers", "passport", "watchlist", "passport"); err != nil {
		t.Fatal(err)
	}
	sp2 := db.EndTrace()
	n2 := sp2.Export()
	if n2.Find("server.shard.0") == nil {
		t.Fatal("second trace did not graft")
	}
	if n2.Attrs["trace.id"] == n.Attrs["trace.id"] {
		t.Fatal("second trace reused the first trace ID")
	}
}

// TestWatchShards exercises the ojoin -watch poller: frames stream to the
// writer while running and stop() is idempotent.
func TestWatchShards(t *testing.T) {
	addrs := startShardServers(t, 2)
	passengers, watch := demoRelations()
	db := NewDatabase(Config{BlockPayload: 512})
	if err := db.AddTable(passengers, "passport"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(watch, "passport"); err != nil {
		t.Fatal(err)
	}
	if err := db.ConnectShards(addrs); err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	var buf syncBuffer
	stop := db.WatchShards(&buf, time.Millisecond)
	if _, err := db.SortMergeJoin("passengers", "passport", "watchlist", "passport"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for buf.count("# frame") < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	out := buf.String()
	if n := strings.Count(out, "# frame"); n < 2 {
		t.Fatalf("watch produced %d frames, want >= 2:\n%s", n, out)
	}
	if !strings.Contains(out, "ojoin_shard_latency_seconds_bucket") {
		t.Fatal("watch frames missing shard latency histogram")
	}
	if !strings.Contains(out, "ojoin_shard_skew_ratio") {
		t.Fatal("watch frames missing skew gauge")
	}

	// A database with no shard pool returns a no-op stop.
	plain := NewDatabase(Config{BlockPayload: 512})
	noop := plain.WatchShards(&buf, time.Millisecond)
	noop()
}

// syncBuffer is a mutex-guarded bytes.Buffer: WatchShards writes from its
// poller goroutine while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) count(sub string) int {
	return strings.Count(b.String(), sub)
}
