package oblivjoin

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each iteration regenerates the experiment end to end (database build,
// every method, every query of that figure) at the quick scale; the printed
// rows/series come from `go run ./cmd/ojoinbench -exp <id>`, which runs the
// same code at the full default scale.

import (
	"io"
	"testing"

	"oblivjoin/internal/bench"
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	e := bench.Quick()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(io.Discard, e, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 verifies the retrieval-count formulas of Theorems 1–4
// (the "Ours" rows of the paper's Table 1).
func BenchmarkTable1(b *testing.B) { benchFigure(b, "table1") }

// BenchmarkFig7StorageTPCH regenerates Figure 7 (storage cost, TPC-H).
func BenchmarkFig7StorageTPCH(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig8StorageSocial regenerates Figure 8 (storage cost, social).
func BenchmarkFig8StorageSocial(b *testing.B) { benchFigure(b, "fig8") }

// BenchmarkFig9BinaryTPCH regenerates Figure 9 (binary equi-join, TPC-H).
func BenchmarkFig9BinaryTPCH(b *testing.B) { benchFigure(b, "fig9") }

// BenchmarkFig10BinarySocial regenerates Figure 10 (binary equi-join,
// social graph).
func BenchmarkFig10BinarySocial(b *testing.B) { benchFigure(b, "fig10") }

// BenchmarkFig11ScaleTE2 regenerates Figure 11 (TE2 vs raw data size).
func BenchmarkFig11ScaleTE2(b *testing.B) { benchFigure(b, "fig11") }

// BenchmarkFig12ScaleSE2 regenerates Figure 12 (SE2 vs raw data size).
func BenchmarkFig12ScaleSE2(b *testing.B) { benchFigure(b, "fig12") }

// BenchmarkFig13BandTPCH regenerates Figure 13 (band joins).
func BenchmarkFig13BandTPCH(b *testing.B) { benchFigure(b, "fig13") }

// BenchmarkFig14ScaleTB1 regenerates Figure 14 (TB1 vs raw data size).
func BenchmarkFig14ScaleTB1(b *testing.B) { benchFigure(b, "fig14") }

// BenchmarkFig15MultiwayTPCH regenerates Figure 15 (multiway, TPC-H).
func BenchmarkFig15MultiwayTPCH(b *testing.B) { benchFigure(b, "fig15") }

// BenchmarkFig16MultiwaySocial regenerates Figure 16 (multiway, social).
func BenchmarkFig16MultiwaySocial(b *testing.B) { benchFigure(b, "fig16") }

// BenchmarkFig17ScaleTM2 regenerates Figure 17 (TM2 vs raw data size).
func BenchmarkFig17ScaleTM2(b *testing.B) { benchFigure(b, "fig17") }

// BenchmarkFig18ScaleSM2 regenerates Figure 18 (SM2 vs raw data size).
func BenchmarkFig18ScaleSM2(b *testing.B) { benchFigure(b, "fig18") }

// BenchmarkFig19PaddingBinary regenerates Figure 19 (padding, binary).
func BenchmarkFig19PaddingBinary(b *testing.B) { benchFigure(b, "fig19") }

// BenchmarkFig20PaddingBand regenerates Figure 20 (padding, band).
func BenchmarkFig20PaddingBand(b *testing.B) { benchFigure(b, "fig20") }

// BenchmarkFig21PaddingMultiway regenerates Figure 21 (padding, multiway).
func BenchmarkFig21PaddingMultiway(b *testing.B) { benchFigure(b, "fig21") }

// BenchmarkQuickstartINLJ measures the public API on the quickstart
// workload: one oblivious index nested-loop join per iteration.
func BenchmarkQuickstartINLJ(b *testing.B) {
	passengers, watch := demoRelations()
	db := NewDatabase(Config{BlockPayload: 512})
	if err := db.AddTable(passengers, "passport"); err != nil {
		b.Fatal(err)
	}
	if err := db.AddTable(watch, "passport"); err != nil {
		b.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.IndexNestedLoopJoin("passengers", "passport", "watchlist", "passport"); err != nil {
			b.Fatal(err)
		}
	}
}
