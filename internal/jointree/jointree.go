// Package jointree models acyclic multiway equi-join queries and builds the
// join tree the paper's Section 6 algorithm iterates over: each input table
// is a node, the root is scanned sequentially, and every non-root table is
// probed through an index on the attribute it shares with its parent.
// Tables are numbered in a pre-order traversal, ensuring i < j whenever T_i
// is an ancestor of T_j, exactly as the paper prescribes.
//
// Acyclicity of the attribute hypergraph is verified with the classic
// GYO ear-removal reduction (Yu & Özsoyoğlu, COMPSAC'79 — the paper's
// reference [85] for join-tree construction).
package jointree

import (
	"fmt"
	"sort"
)

// Pred is one equi-join predicate: Left.LeftAttr = Right.RightAttr.
type Pred struct {
	Left      string
	LeftAttr  string
	Right     string
	RightAttr string
}

// Query is a multiway equi-join: the listed tables joined under the
// conjunction of the predicates. Tables[0] becomes the join-tree root.
type Query struct {
	Tables []string
	Preds  []Pred
}

// Node is one table in the join tree.
type Node struct {
	// Table is the table name (unique per query; self-joins use aliases).
	Table string
	// Attr is the attribute of this table joined with the parent (empty for
	// the root).
	Attr string
	// ParentAttr is the attribute of the parent table on the same predicate.
	ParentAttr string
	// Parent is the pre-order index of the parent (-1 for the root).
	Parent int
	// Children are pre-order indices of child nodes.
	Children []int
}

// Tree is the join tree in pre-order: Order[0] is the root and every node's
// parent precedes it.
type Tree struct {
	Order []Node
}

// Len returns the number of tables.
func (t *Tree) Len() int { return len(t.Order) }

// Build constructs the join tree for q. It requires the predicate graph
// (tables as vertices, predicates as edges) to be a tree spanning all
// tables — the shape of every acyclic query in the paper's workloads — and
// additionally checks hypergraph acyclicity with IsAcyclic.
func Build(q Query) (*Tree, error) {
	n := len(q.Tables)
	if n < 2 {
		return nil, fmt.Errorf("jointree: need at least 2 tables, got %d", n)
	}
	idx := make(map[string]int, n)
	for i, t := range q.Tables {
		if _, dup := idx[t]; dup {
			return nil, fmt.Errorf("jointree: duplicate table %q (alias self-joins)", t)
		}
		idx[t] = i
	}
	if len(q.Preds) != n-1 {
		return nil, fmt.Errorf("jointree: %d tables need exactly %d join predicates for a join tree, got %d",
			n, n-1, len(q.Preds))
	}
	type edge struct {
		to               int
		attrHere, attrTo string
		hereName, toName string
	}
	adj := make([][]edge, n)
	for _, p := range q.Preds {
		li, ok := idx[p.Left]
		if !ok {
			return nil, fmt.Errorf("jointree: predicate references unknown table %q", p.Left)
		}
		ri, ok := idx[p.Right]
		if !ok {
			return nil, fmt.Errorf("jointree: predicate references unknown table %q", p.Right)
		}
		if li == ri {
			return nil, fmt.Errorf("jointree: self-referential predicate on %q", p.Left)
		}
		adj[li] = append(adj[li], edge{to: ri, attrHere: p.LeftAttr, attrTo: p.RightAttr})
		adj[ri] = append(adj[ri], edge{to: li, attrHere: p.RightAttr, attrTo: p.LeftAttr})
	}
	if !IsAcyclic(q) {
		return nil, fmt.Errorf("jointree: query hypergraph is cyclic")
	}

	// Pre-order DFS from Tables[0].
	tree := &Tree{}
	visited := make([]bool, n)
	type frame struct {
		table      int
		parentPre  int
		attr       string
		parentAttr string
	}
	stack := []frame{{table: 0, parentPre: -1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[f.table] {
			return nil, fmt.Errorf("jointree: predicate graph has a cycle through %q", q.Tables[f.table])
		}
		visited[f.table] = true
		pre := len(tree.Order)
		tree.Order = append(tree.Order, Node{
			Table:      q.Tables[f.table],
			Attr:       f.attr,
			ParentAttr: f.parentAttr,
			Parent:     f.parentPre,
		})
		if f.parentPre >= 0 {
			tree.Order[f.parentPre].Children = append(tree.Order[f.parentPre].Children, pre)
		}
		// Push children in reverse so pre-order follows declaration order.
		var kids []edge
		for _, e := range adj[f.table] {
			if !visited[e.to] {
				kids = append(kids, e)
			}
		}
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].to > kids[j].to })
		for _, e := range kids {
			stack = append(stack, frame{
				table:      e.to,
				parentPre:  pre,
				attr:       e.attrTo,
				parentAttr: e.attrHere,
			})
		}
	}
	for i, v := range visited {
		if !v {
			return nil, fmt.Errorf("jointree: table %q is not connected to the join graph", q.Tables[i])
		}
	}
	return tree, nil
}

// IsAcyclic runs the GYO ear-removal reduction on the query's attribute
// hypergraph: attributes are unified into equivalence classes by the
// predicates, every table becomes a hyperedge over its classes, and ears
// (edges whose attributes are exclusive or covered by another edge) are
// removed until none remain. The query is acyclic iff the reduction empties
// the hypergraph.
func IsAcyclic(q Query) bool {
	// Union-find over (table, attr) pairs.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) {
		parent[find(a)] = find(b)
	}
	key := func(table, attr string) string { return table + "\x00" + attr }
	for _, p := range q.Preds {
		union(key(p.Left, p.LeftAttr), key(p.Right, p.RightAttr))
	}
	// Hyperedges: table -> set of attribute classes mentioned in predicates.
	edges := make(map[string]map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		edges[t] = map[string]bool{}
	}
	for _, p := range q.Preds {
		if _, ok := edges[p.Left]; !ok {
			return false
		}
		if _, ok := edges[p.Right]; !ok {
			return false
		}
		edges[p.Left][find(key(p.Left, p.LeftAttr))] = true
		edges[p.Right][find(key(p.Right, p.RightAttr))] = true
	}
	// GYO reduction.
	for {
		changed := false
		for t, attrs := range edges {
			// Remove attributes that occur in no other edge.
			for a := range attrs {
				exclusive := true
				for u, other := range edges {
					if u != t && other[a] {
						exclusive = false
						break
					}
				}
				if exclusive {
					delete(attrs, a)
					changed = true
				}
			}
			// Remove the edge if it is empty or contained in another edge.
			remove := len(attrs) == 0
			if !remove {
				for u, other := range edges {
					if u == t {
						continue
					}
					contained := true
					for a := range attrs {
						if !other[a] {
							contained = false
							break
						}
					}
					if contained {
						remove = true
						break
					}
				}
			}
			if remove {
				delete(edges, t)
				changed = true
			}
		}
		if len(edges) == 0 {
			return true
		}
		if !changed {
			return false
		}
	}
}
