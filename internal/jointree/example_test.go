package jointree_test

import (
	"fmt"

	"oblivjoin/internal/jointree"
)

func ExampleBuild() {
	tree, err := jointree.Build(jointree.Query{
		Tables: []string{"customer", "orders", "lineitem"},
		Preds: []jointree.Pred{
			{Left: "customer", LeftAttr: "custkey", Right: "orders", RightAttr: "custkey"},
			{Left: "orders", LeftAttr: "orderkey", Right: "lineitem", RightAttr: "orderkey"},
		},
	})
	if err != nil {
		panic(err)
	}
	for i, n := range tree.Order {
		fmt.Printf("%d: %s (parent %d)\n", i, n.Table, n.Parent)
	}
	// Output:
	// 0: customer (parent -1)
	// 1: orders (parent 0)
	// 2: lineitem (parent 1)
}
