package jointree

import "testing"

func tm3Query() Query {
	// TM3: nation - supplier - customer - orders - lineitem (a path).
	return Query{
		Tables: []string{"nation", "supplier", "customer", "orders", "lineitem"},
		Preds: []Pred{
			{Left: "nation", LeftAttr: "n_nationkey", Right: "supplier", RightAttr: "s_nationkey"},
			{Left: "supplier", LeftAttr: "s_nationkey", Right: "customer", RightAttr: "c_nationkey"},
			{Left: "customer", LeftAttr: "c_custkey", Right: "orders", RightAttr: "o_custkey"},
			{Left: "orders", LeftAttr: "o_orderkey", Right: "lineitem", RightAttr: "l_orderkey"},
		},
	}
}

func TestBuildPath(t *testing.T) {
	tree, err := Build(tm3Query())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 5 {
		t.Fatalf("len %d", tree.Len())
	}
	if tree.Order[0].Table != "nation" || tree.Order[0].Parent != -1 {
		t.Fatalf("root %+v", tree.Order[0])
	}
	// Pre-order on a path keeps declaration order.
	wantOrder := []string{"nation", "supplier", "customer", "orders", "lineitem"}
	for i, w := range wantOrder {
		if tree.Order[i].Table != w {
			t.Fatalf("order[%d] = %s, want %s", i, tree.Order[i].Table, w)
		}
		if i > 0 && tree.Order[i].Parent != i-1 {
			t.Fatalf("parent of %s = %d", w, tree.Order[i].Parent)
		}
	}
	if tree.Order[1].Attr != "s_nationkey" || tree.Order[1].ParentAttr != "n_nationkey" {
		t.Fatalf("supplier link: %+v", tree.Order[1])
	}
}

func TestBuildStar(t *testing.T) {
	// SM3: i1 is followed by p, n, i2 (a star rooted elsewhere).
	q := Query{
		Tables: []string{"i1", "p", "n", "i2"},
		Preds: []Pred{
			{Left: "i1", LeftAttr: "dst", Right: "p", RightAttr: "src"},
			{Left: "i1", LeftAttr: "dst", Right: "n", RightAttr: "src"},
			{Left: "i1", LeftAttr: "dst", Right: "i2", RightAttr: "src"},
		},
	}
	tree, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Order[0]
	if root.Table != "i1" || len(root.Children) != 3 {
		t.Fatalf("root %+v", root)
	}
	for _, c := range root.Children {
		n := tree.Order[c]
		if n.Parent != 0 || n.ParentAttr != "dst" || n.Attr != "src" {
			t.Fatalf("child %+v", n)
		}
	}
}

func TestBuildFigure6Shape(t *testing.T) {
	// Figure 6: T1(A,B) with children T2(A,C) and T3(B,D); T4(D,E) under T3.
	q := Query{
		Tables: []string{"T1", "T2", "T3", "T4"},
		Preds: []Pred{
			{Left: "T1", LeftAttr: "A", Right: "T2", RightAttr: "A"},
			{Left: "T1", LeftAttr: "B", Right: "T3", RightAttr: "B"},
			{Left: "T3", LeftAttr: "D", Right: "T4", RightAttr: "D"},
		},
	}
	tree, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"T1", "T2", "T3", "T4"}
	for i, w := range want {
		if tree.Order[i].Table != w {
			t.Fatalf("pre-order[%d] = %s, want %s", i, tree.Order[i].Table, w)
		}
	}
	if tree.Order[3].Parent != 2 {
		t.Fatalf("T4 parent %d", tree.Order[3].Parent)
	}
	// Ancestors precede descendants (the paper's numbering invariant).
	for i, n := range tree.Order {
		if n.Parent >= i {
			t.Fatalf("node %d has parent %d", i, n.Parent)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []Query{
		{Tables: []string{"a"}},
		{Tables: []string{"a", "b"}}, // no predicate
		{Tables: []string{"a", "a"}, Preds: []Pred{{Left: "a", LeftAttr: "x", Right: "a", RightAttr: "x"}}},
		{Tables: []string{"a", "b"}, Preds: []Pred{{Left: "a", LeftAttr: "x", Right: "c", RightAttr: "x"}}},
		{Tables: []string{"a", "b", "c"}, Preds: []Pred{ // disconnected + wrong count
			{Left: "a", LeftAttr: "x", Right: "b", RightAttr: "x"},
		}},
		{Tables: []string{"a", "b"}, Preds: []Pred{{Left: "a", LeftAttr: "x", Right: "a", RightAttr: "y"}}},
	}
	for i, q := range cases {
		if _, err := Build(q); err == nil {
			t.Errorf("case %d accepted: %+v", i, q)
		}
	}
}

func TestIsAcyclic(t *testing.T) {
	if !IsAcyclic(tm3Query()) {
		t.Fatal("TM3 should be acyclic")
	}
	// A triangle on three distinct attribute classes is cyclic.
	tri := Query{
		Tables: []string{"a", "b", "c"},
		Preds: []Pred{
			{Left: "a", LeftAttr: "x", Right: "b", RightAttr: "x"},
			{Left: "b", LeftAttr: "y", Right: "c", RightAttr: "y"},
			{Left: "c", LeftAttr: "z", Right: "a", RightAttr: "z"},
		},
	}
	if IsAcyclic(tri) {
		t.Fatal("triangle should be cyclic")
	}
	// A triangle over ONE shared attribute class is acyclic (alpha-acyclic).
	shared := Query{
		Tables: []string{"a", "b", "c"},
		Preds: []Pred{
			{Left: "a", LeftAttr: "x", Right: "b", RightAttr: "x"},
			{Left: "b", LeftAttr: "x", Right: "c", RightAttr: "x"},
			{Left: "c", LeftAttr: "x", Right: "a", RightAttr: "x"},
		},
	}
	if !IsAcyclic(shared) {
		t.Fatal("single-class triangle is alpha-acyclic")
	}
}

func TestBuildRejectsCyclicPredicateTree(t *testing.T) {
	// Even with n-1 predicates, a multigraph edge pair forms a cycle.
	q := Query{
		Tables: []string{"a", "b", "c"},
		Preds: []Pred{
			{Left: "a", LeftAttr: "x", Right: "b", RightAttr: "x"},
			{Left: "b", LeftAttr: "x", Right: "a", RightAttr: "x"},
		},
	}
	if _, err := Build(q); err == nil {
		t.Fatal("cycle accepted")
	}
}
