package core

import (
	"fmt"

	"oblivjoin/internal/table"
)

// onePadder pads each tuple retrieval in the OneORAM setting to the maximum
// per-retrieval access count over all input tables, so every retrieval is
// indistinguishable no matter which table it served (Section 7: "padding
// the number of ORAM accesses to the maximum height of all B-tree indices").
type onePadder struct {
	opts Options
	max  int
}

// pad tops a retrieval that used cost accesses up to the maximum.
func (p *onePadder) pad(cost int) error {
	if p == nil {
		return nil
	}
	for i := cost; i < p.max; i++ {
		if err := p.opts.OneORAM.DummyAccess(); err != nil {
			return err
		}
	}
	return nil
}

// dummyRetrieval performs one full-width dummy retrieval.
func (p *onePadder) dummyRetrieval() error { return p.pad(0) }

// dummyRetrievalBatch performs n full-width dummy retrievals with the path
// downloads coalesced through the shared ORAM's batch entry point. Callers
// reach it only through the PadNone-gated pad loops (Options.prefetch), so
// n·max is a function of declared leakage (executed step count, pad target,
// maximum index height).
func (p *onePadder) dummyRetrievalBatch(n int) error {
	if p == nil || n <= 0 {
		return nil
	}
	return p.opts.OneORAM.DummyBatch(n * p.max)
}

// IndexNestedLoopJoin computes T1 ⋈ T2 on a1 = a2 with the paper's
// oblivious index nested-loop equi-join (Algorithm 2): T1 is scanned
// sequentially by block ID, matching T2 tuples are fetched through a whole
// B-tree path per retrieval, dummy retrievals keep the two tables in
// lock-step, and one output record is written per join step. The per-table
// retrieval count is padded to Theorem 2's bound |T1| + |R|.
func IndexNestedLoopJoin(t1, t2 *table.StoredTable, a1, a2 string, opts Options) (*Result, error) {
	start := snapshot(opts.Meter)
	sp := opts.span("join.inlj")
	sp.SetAttr("n1", int64(t1.NumTuples()))
	sp.SetAttr("n2", int64(t2.NumTuples()))
	defer sp.End()
	load := sp.Child("load")
	col1 := t1.Schema().MustCol(a1)
	scan := table.NewScanCursor(t1)
	ic, err := table.NewIndexCursor(t2, a2)
	if err != nil {
		return nil, err
	}
	w, err := newOutWriter(fmt.Sprintf("%s⋈%s", t1.Schema().Table, t2.Schema().Table),
		opts, t1.Schema(), t2.Schema())
	if err != nil {
		return nil, err
	}
	load.End()
	var padder *onePadder
	scanCost := 1
	seekCost := ic.Tree().AccessesPerRetrieval() + 1
	if opts.OneORAM != nil {
		padder = &onePadder{opts: opts, max: max(scanCost, seekCost)}
	}
	one := padder != nil

	scanSpan := sp.Child("scan")
	var steps, retrievals int64
	for i := 0; i < t1.NumTuples(); i++ {
		// Lines 4-5: one join step retrieves the next T1 tuple and the first
		// matching T2 tuple.
		steps++
		retrievals += 2
		row1, err := scan.Next()
		if err != nil {
			return nil, err
		}
		if err := padder.pad(scanCost); err != nil {
			return nil, err
		}
		if !row1.OK {
			return nil, fmt.Errorf("core: scan of %s ended early at %d", t1.Schema().Table, i)
		}
		key := row1.Tuple.Values[col1]
		row2, err := ic.SeekGE(key)
		if err != nil {
			return nil, err
		}
		if err := padder.pad(seekCost); err != nil {
			return nil, err
		}
		// Lines 6-9: emit one join record per match, advancing T2 with a
		// dummy T1 retrieval alongside.
		for row2.OK && row2.Entry.Key == key {
			if err := w.putJoin(row1.Tuple, row2.Tuple); err != nil {
				return nil, err
			}
			steps++
			retrievals++
			if !one {
				if err := scan.Dummy(); err != nil {
					return nil, err
				}
			}
			if row2, err = ic.Next(); err != nil {
				return nil, err
			}
			if err := padder.pad(seekCost); err != nil {
				return nil, err
			}
		}
		// Line 10: the terminating dummy record.
		if err := w.putDummy(); err != nil {
			return nil, err
		}
	}
	scanSpan.SetAttr("steps", steps)
	scanSpan.End()

	n1, n2 := int64(t1.NumTuples()), int64(t2.NumTuples())
	cart := Cartesian(n1, n2)
	paddedR := opts.PadSize(int64(w.real), cart)
	target := NumtrINLJ(n1, paddedR)
	if steps > target {
		return nil, fmt.Errorf("core: INLJ executed %d steps, exceeding the Theorem 2 bound %d", steps, target)
	}
	pad := sp.Child("pad")
	pad.SetAttr("steps", steps)
	pad.SetAttr("target", target)
	padded := steps
	if depth := opts.prefetch(); depth <= 1 {
		for ; padded < target; padded++ {
			retrievals++
			if one {
				if err := padder.dummyRetrieval(); err != nil {
					return nil, err
				}
			} else {
				if err := scan.Dummy(); err != nil {
					return nil, err
				}
				if err := ic.Dummy(); err != nil {
					return nil, err
				}
			}
			if err := w.putDummy(); err != nil {
				return nil, err
			}
		}
	} else {
		var chunks int64
		for padded < target {
			chunk := padChunk(depth, target-padded)
			chunks++
			retrievals += int64(chunk)
			if one {
				if err := padder.dummyRetrievalBatch(chunk); err != nil {
					return nil, err
				}
			} else {
				if err := scan.DummyBatch(chunk); err != nil {
					return nil, err
				}
				if err := ic.DummyBatch(chunk); err != nil {
					return nil, err
				}
			}
			for i := 0; i < chunk; i++ {
				if err := w.putDummy(); err != nil {
					return nil, err
				}
			}
			padded += int64(chunk)
		}
		pad.SetAttr("chunks", chunks)
	}
	pad.End()

	if err := settle(sp, opts, t1, t2); err != nil {
		return nil, err
	}
	tuples, real, paddedOut, err := w.finish(opts, cart, sp)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Schema:      w.schema,
		Tuples:      tuples,
		RealCount:   real,
		PaddedCount: paddedOut,
		Steps:       steps,
		PaddedSteps: padded,
		Retrievals:  padded,
		Stats:       diff(opts.Meter, start),
	}
	if one {
		res.Retrievals = retrievals
	}
	return res, nil
}
