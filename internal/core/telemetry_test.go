package core

import (
	"testing"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/telemetry"
	"oblivjoin/internal/tracecheck"
)

// tracedSMJ runs a fixed sort-merge join with tracing enabled, optionally
// instrumented with a telemetry span tree, and returns the server-visible
// trace, the root span (nil when uninstrumented), and the final meter
// snapshot. All randomness is seeded, so two calls perform identical work.
func tracedSMJ(t *testing.T, instrument bool) ([]storage.Access, *telemetry.Span, storage.Stats) {
	t.Helper()
	m := storage.NewMeter()
	s1, s2, _, _ := storePair(t, []int64{1, 2, 2, 3, 5, 8, 8, 9}, []int64{1, 2, 2, 2, 8, 9}, m)
	m.Reset()
	m.SetTracing(true)
	opts := testJoinOpts(t, m)
	var root *telemetry.Span
	if instrument {
		root = telemetry.Start("query", m)
		opts.Span = root
	}
	if _, err := SortMergeJoin(s1, s2, "k", "k", opts); err != nil {
		t.Fatal(err)
	}
	root.End()
	return m.Trace(), root, m.Snapshot()
}

// TestInstrumentedTraceIdentical is the telemetry guard: spans only
// snapshot meter counters and never touch the server, so the instrumented
// join's access trace must be byte-identical to the uninstrumented one.
func TestInstrumentedTraceIdentical(t *testing.T) {
	plain, _, _ := tracedSMJ(t, false)
	instr, _, _ := tracedSMJ(t, true)
	if d := tracecheck.Diff(plain, instr); d != "" {
		t.Fatalf("instrumented trace differs from uninstrumented:\n%s", d)
	}
	if d := tracecheck.DiffUnordered(plain, instr); d != "" {
		t.Fatalf("instrumented trace multiset differs:\n%s", d)
	}
}

// tracedSMJFlight mirrors tracedSMJ with an active trace flight attached
// to the root span, as Database.StartTrace does: every child span sets
// the flight's wire phase as it opens. Against in-process stores the
// flight is pure bookkeeping; this helper proves attaching it changes
// nothing the server could see.
func tracedSMJFlight(t *testing.T) ([]storage.Access, string) {
	t.Helper()
	m := storage.NewMeter()
	s1, s2, _, _ := storePair(t, []int64{1, 2, 2, 3, 5, 8, 8, 9}, []int64{1, 2, 2, 2, 8, 9}, m)
	m.Reset()
	m.SetTracing(true)
	opts := testJoinOpts(t, m)
	f := telemetry.NewFlight()
	if f.Activate(0) == 0 {
		t.Fatal("Activate returned zero trace ID")
	}
	root := telemetry.Start("query", m)
	root.SetFlight(f)
	opts.Span = root
	if _, err := SortMergeJoin(s1, s2, "k", "k", opts); err != nil {
		t.Fatal(err)
	}
	root.End()
	lastPhase := f.Phase()
	f.Deactivate()
	return m.Trace(), lastPhase
}

// TestInstrumentedWithFlightTraceIdentical extends the telemetry guard to
// distributed tracing: activating a flight (trace ID allocation, span-ID
// stamping, phase labels) must leave the access trace byte-identical to
// the untraced run — trace context only annotates requests that would
// have been sent anyway.
func TestInstrumentedWithFlightTraceIdentical(t *testing.T) {
	plain, _, _ := tracedSMJ(t, false)
	flown, lastPhase := tracedSMJFlight(t)
	if d := tracecheck.Diff(plain, flown); d != "" {
		t.Fatalf("flight-traced run's access trace differs:\n%s", d)
	}
	// The flight really was exercised: the join's phases advanced the
	// span-ID/phase state, so this wasn't a vacuous comparison.
	if lastPhase == "" {
		t.Fatal("flight phase never set — spans did not drive the flight")
	}
}

// TestSpanAttribution verifies the phase tree fully accounts the query's
// traffic: the root span's delta equals the meter snapshot, and the join
// phases (load, merge, pad, filter, decode) partition the join's stats.
func TestSpanAttribution(t *testing.T) {
	_, root, snap := tracedSMJ(t, true)
	n := root.Export()
	if n.Stats != snap {
		t.Fatalf("root span stats %+v != meter snapshot %+v", n.Stats, snap)
	}
	join := n.Find("join.smj")
	if join == nil {
		t.Fatal("join.smj span missing")
	}
	if sum := join.ChildSum(); sum != join.Stats {
		t.Fatalf("phase sum %+v != join stats %+v", sum, join.Stats)
	}
	for _, phase := range []string{"load", "merge", "pad", "filter", "decode", "compact"} {
		if n.Find(phase) == nil {
			t.Fatalf("phase %q missing from span tree", phase)
		}
	}
	if v, ok := join.Attrs["n1"]; !ok || v != 8 {
		t.Fatalf("join n1 attr = %d (ok=%v), want 8", v, ok)
	}
	// JSON round trip through the -trace-out format preserves the tree.
	data, err := telemetry.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := telemetry.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Find("join.smj") == nil || parsed.Find("join.smj").Stats != join.Stats {
		t.Fatal("span tree did not survive the -trace-out round trip")
	}
}

// TestSpanAttributionINLJ covers the index nested-loop pipeline's tree.
func TestSpanAttributionINLJ(t *testing.T) {
	m := storage.NewMeter()
	s1, s2, _, _ := storePair(t, []int64{1, 2, 3, 4}, []int64{2, 2, 4}, m)
	m.Reset()
	opts := testJoinOpts(t, m)
	root := telemetry.Start("query", m)
	opts.Span = root
	if _, err := IndexNestedLoopJoin(s1, s2, "k", "k", opts); err != nil {
		t.Fatal(err)
	}
	root.End()
	n := root.Export()
	join := n.Find("join.inlj")
	if join == nil {
		t.Fatal("join.inlj span missing")
	}
	if sum := join.ChildSum(); sum != join.Stats {
		t.Fatalf("phase sum %+v != join stats %+v", sum, join.Stats)
	}
	if n.Stats != m.Snapshot() {
		t.Fatalf("root stats %+v != meter snapshot %+v", n.Stats, m.Snapshot())
	}
	if join.Find("scan") == nil || join.Find("pad") == nil {
		t.Fatal("scan/pad phases missing")
	}
}
