package core

// Closed-form tuple-retrieval counts (Numtr) of the paper's Theorems 1–4.
// Each algorithm pads its join steps to the matching bound, so the
// server-visible trace length depends only on the public sizing
// information. The One* variants are the OneORAM totals of Section 7
// (derived in this reproduction; the paper defers them to its full
// version): they count retrievals across all tables because the OneORAM
// binary joins elide the per-step dummy partner retrievals.

// NumtrSortMerge is Theorem 1: per-table retrievals of the oblivious
// sort-merge equi-join, |T1| + |T2| + |R| + 1.
func NumtrSortMerge(t1, t2, r int64) int64 { return t1 + t2 + r + 1 }

// NumtrINLJ is Theorem 2: per-table retrievals of the oblivious index
// nested-loop equi-join, |T1| + |R|.
func NumtrINLJ(t1, r int64) int64 { return t1 + r }

// NumtrBand is Theorem 3: per-table retrievals of the oblivious index
// nested-loop band join, |T1| + |R|.
func NumtrBand(t1, r int64) int64 { return t1 + r }

// NumtrMultiway is Theorem 4: per-table retrievals of the oblivious
// multiway equi-join, |T1| + 2·Σ_{j≥2}|Tj| + |R|.
func NumtrMultiway(sizes []int64, r int64) int64 {
	if len(sizes) == 0 {
		return r
	}
	n := sizes[0] + r
	for _, t := range sizes[1:] {
		n += 2 * t
	}
	return n
}

// NumtrOneSortMerge is the OneORAM sort-merge total: one retrieval per join
// step, except the initial step which fetches the first tuple of both
// tables, hence |T1| + |T2| + |R| + 2.
func NumtrOneSortMerge(t1, t2, r int64) int64 { return t1 + t2 + r + 2 }

// NumtrOneINLJ is the OneORAM index nested-loop total: each outer iteration
// retrieves once from T1 and seeks once in T2 (2·|T1|), plus one retrieval
// per join record.
func NumtrOneINLJ(t1, r int64) int64 { return 2*t1 + r }

// NumtrOneBand mirrors NumtrOneINLJ for band joins.
func NumtrOneBand(t1, r int64) int64 { return 2*t1 + r }

// Cartesian returns the product of the input sizes — the PadCartesian bound
// and the step count of the Cartesian-product baselines.
func Cartesian(sizes ...int64) int64 {
	p := int64(1)
	for _, s := range sizes {
		p *= s
	}
	return p
}
