package core

import (
	mrand "math/rand"
	"testing"

	"oblivjoin/internal/jointree"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
)

// figure6Data reproduces the paper's Figure 6 instance:
// T1(A,B), T2(A,C), T3(B,D), T4(D,E); join tree T1→{T2, T3}, T3→T4.
func figure6Data() (map[string]*relation.Relation, jointree.Query) {
	mk := func(name string, cols []string, rows [][]int64) *relation.Relation {
		rel := &relation.Relation{Schema: relation.Schema{Table: name, Columns: cols}}
		for _, r := range rows {
			rel.Tuples = append(rel.Tuples, relation.Tuple{Values: r})
		}
		return rel
	}
	rels := map[string]*relation.Relation{
		"T1": mk("T1", []string{"A", "B"}, [][]int64{{1, 1}, {2, 1}, {2, 2}, {2, 3}}),
		"T2": mk("T2", []string{"A", "C"}, [][]int64{{1, 1}, {2, 1}, {2, 2}, {3, 1}}),
		"T3": mk("T3", []string{"B", "D"}, [][]int64{{1, 4}, {2, 1}, {2, 3}}),
		"T4": mk("T4", []string{"D", "E"}, [][]int64{{1, 2}, {2, 1}, {2, 3}}),
	}
	q := jointree.Query{
		Tables: []string{"T1", "T2", "T3", "T4"},
		Preds: []jointree.Pred{
			{Left: "T1", LeftAttr: "A", Right: "T2", RightAttr: "A"},
			{Left: "T1", LeftAttr: "B", Right: "T3", RightAttr: "B"},
			{Left: "T3", LeftAttr: "D", Right: "T4", RightAttr: "D"},
		},
	}
	return rels, q
}

// storeMultiway uploads the relations per the join tree (index on each
// non-root table's join attribute) and returns the MultiwayInput.
func storeMultiway(t testing.TB, rels map[string]*relation.Relation, q jointree.Query, m *storage.Meter, shared bool) (MultiwayInput, Options) {
	t.Helper()
	tree, err := jointree.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	tblOpts := testTableOpts(t, m, true)
	in := MultiwayInput{Tree: tree, Tables: make([]*table.StoredTable, tree.Len())}
	jopts := testJoinOpts(t, m)
	if shared {
		attrs := map[string][]string{}
		var ordered []*relation.Relation
		for _, n := range tree.Order {
			ordered = append(ordered, rels[n.Table])
			if n.Attr != "" {
				attrs[n.Table] = []string{n.Attr}
			}
		}
		tables, sh, err := table.StoreShared(ordered, attrs, tblOpts)
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range tree.Order {
			in.Tables[i] = tables[n.Table]
		}
		jopts.OneORAM = sh
		return in, jopts
	}
	for i, n := range tree.Order {
		var attrs []string
		if n.Attr != "" {
			attrs = []string{n.Attr}
		}
		st, err := table.Store(rels[n.Table], attrs, tblOpts)
		if err != nil {
			t.Fatal(err)
		}
		in.Tables[i] = st
	}
	return in, jopts
}

func TestFigure6Walkthrough(t *testing.T) {
	rels, q := figure6Data()
	in, opts := storeMultiway(t, rels, q, nil, false)
	res, err := MultiwayJoin(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's example yields exactly two join records:
	// (2,2)⋈(2,1)⋈(2,1)⋈(1,2) and (2,2)⋈(2,2)⋈(2,1)⋈(1,2).
	if res.RealCount != 2 {
		t.Fatalf("real count %d, want 2", res.RealCount)
	}
	tree, _ := jointree.Build(q)
	want, err := ReferenceMultiwayJoin(rels, tree)
	if err != nil {
		t.Fatal(err)
	}
	equalMultiset(t, res.Tuples, want)
	// Theorem 4 bound: |T1| + 2(|T2|+|T3|+|T4|) + |R| = 4 + 20 + 2 = 26.
	if res.PaddedSteps != 26 {
		t.Fatalf("padded steps %d, want 26", res.PaddedSteps)
	}
	if res.BoundExceeded {
		t.Fatalf("bound exceeded: %d raw steps", res.Steps)
	}
	// The paper's Figure 6 walks through exactly 8 join steps before padding.
	if res.Steps != 8 {
		t.Fatalf("executed %d raw steps, paper's Figure 6 shows 8", res.Steps)
	}
}

func TestMultiwayMatchesReferenceRandomized(t *testing.T) {
	r := mrand.New(mrand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		// Random chain T1 - T2 - T3 joined on single attributes.
		mk := func(name string, n, dom int) *relation.Relation {
			rel := &relation.Relation{Schema: relation.Schema{Table: name, Columns: []string{"a", "b"}}}
			for i := 0; i < n; i++ {
				rel.Tuples = append(rel.Tuples, relation.Tuple{Values: []int64{int64(r.Intn(dom)), int64(r.Intn(dom))}})
			}
			return rel
		}
		rels := map[string]*relation.Relation{
			"x": mk("x", 1+r.Intn(12), 4),
			"y": mk("y", 1+r.Intn(12), 4),
			"z": mk("z", 1+r.Intn(12), 4),
		}
		q := jointree.Query{
			Tables: []string{"x", "y", "z"},
			Preds: []jointree.Pred{
				{Left: "x", LeftAttr: "a", Right: "y", RightAttr: "a"},
				{Left: "y", LeftAttr: "b", Right: "z", RightAttr: "b"},
			},
		}
		in, opts := storeMultiway(t, rels, q, nil, false)
		res, err := MultiwayJoin(in, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tree, _ := jointree.Build(q)
		want, err := ReferenceMultiwayJoin(rels, tree)
		if err != nil {
			t.Fatal(err)
		}
		equalMultiset(t, res.Tuples, want)
		if res.BoundExceeded {
			t.Fatalf("trial %d: steps %d exceeded Theorem 4 bound", trial, res.Steps)
		}
		sizes := []int64{int64(rels["x"].Len()), int64(rels["y"].Len()), int64(rels["z"].Len())}
		if res.PaddedSteps != NumtrMultiway(sizes, int64(len(want))) {
			t.Fatalf("trial %d: padded %d, theorem %d", trial, res.PaddedSteps, NumtrMultiway(sizes, int64(len(want))))
		}
	}
}

func TestMultiwayStarAndDeepTrees(t *testing.T) {
	r := mrand.New(mrand.NewSource(59))
	mk := func(name string, n int) *relation.Relation {
		rel := &relation.Relation{Schema: relation.Schema{Table: name, Columns: []string{"a", "b"}}}
		for i := 0; i < n; i++ {
			rel.Tuples = append(rel.Tuples, relation.Tuple{Values: []int64{int64(r.Intn(3)), int64(r.Intn(3))}})
		}
		return rel
	}
	queries := []jointree.Query{
		{ // star: root r, three children on the same attribute
			Tables: []string{"r", "c1", "c2", "c3"},
			Preds: []jointree.Pred{
				{Left: "r", LeftAttr: "a", Right: "c1", RightAttr: "a"},
				{Left: "r", LeftAttr: "a", Right: "c2", RightAttr: "b"},
				{Left: "r", LeftAttr: "b", Right: "c3", RightAttr: "a"},
			},
		},
		{ // chain of four
			Tables: []string{"r", "c1", "c2", "c3"},
			Preds: []jointree.Pred{
				{Left: "r", LeftAttr: "a", Right: "c1", RightAttr: "a"},
				{Left: "c1", LeftAttr: "b", Right: "c2", RightAttr: "a"},
				{Left: "c2", LeftAttr: "b", Right: "c3", RightAttr: "b"},
			},
		},
	}
	for qi, q := range queries {
		rels := map[string]*relation.Relation{}
		for _, name := range q.Tables {
			rels[name] = mk(name, 2+r.Intn(8))
		}
		in, opts := storeMultiway(t, rels, q, nil, false)
		res, err := MultiwayJoin(in, opts)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		tree, _ := jointree.Build(q)
		want, err := ReferenceMultiwayJoin(rels, tree)
		if err != nil {
			t.Fatal(err)
		}
		equalMultiset(t, res.Tuples, want)
		if res.BoundExceeded {
			t.Fatalf("query %d: bound exceeded (%d steps)", qi, res.Steps)
		}
	}
}

func TestMultiwayRepeatedQueriesAfterReset(t *testing.T) {
	// Disabling mutates the indices; the reset pass must restore them so a
	// second identical query returns identical results.
	rels, q := figure6Data()
	in, opts := storeMultiway(t, rels, q, nil, false)
	first, err := MultiwayJoin(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := MultiwayJoin(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.RealCount != second.RealCount {
		t.Fatalf("second run found %d records, first %d", second.RealCount, first.RealCount)
	}
	equalMultiset(t, first.Tuples, second.Tuples)
	if first.PaddedSteps != second.PaddedSteps {
		t.Fatalf("step counts differ: %d vs %d", first.PaddedSteps, second.PaddedSteps)
	}
}

func TestMultiwayEmptyTables(t *testing.T) {
	rels, q := figure6Data()
	rels["T3"].Tuples = nil // empty middle table kills the whole join
	in, opts := storeMultiway(t, rels, q, nil, false)
	res, err := MultiwayJoin(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RealCount != 0 {
		t.Fatalf("real count %d, want 0", res.RealCount)
	}
	if res.BoundExceeded {
		t.Fatalf("bound exceeded with empty table (%d steps)", res.Steps)
	}
}

func TestMultiwayOneORAM(t *testing.T) {
	rels, q := figure6Data()
	in, opts := storeMultiway(t, rels, q, nil, true)
	res, err := MultiwayJoin(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RealCount != 2 {
		t.Fatalf("real count %d, want 2", res.RealCount)
	}
	if res.Retrievals != res.PaddedSteps*4 {
		t.Fatalf("OneORAM retrievals %d, want steps×4 = %d", res.Retrievals, res.PaddedSteps*4)
	}
}

// TestMultiwayTraceUniform checks the empirical Definition 1 property for
// the multiway join: every join step moves the same number of blocks per
// store, and two databases with equal sizes and |R| produce equal-length
// traces.
func TestMultiwayTraceUniform(t *testing.T) {
	run := func(shift int64) []storage.Access {
		m := storage.NewMeter()
		rels, q := figure6Data()
		// Shift T4's keys: changes which tuples match without changing any
		// table size. (|R| changes, so compare like-for-like below.)
		for i := range rels["T4"].Tuples {
			rels["T4"].Tuples[i].Values[0] += shift
		}
		in, opts := storeMultiway(t, rels, q, m, false)
		m.Reset()
		m.SetTracing(true)
		res, err := MultiwayJoin(in, opts)
		if err != nil {
			t.Fatal(err)
		}
		_ = res
		return m.Trace()
	}
	// shift=100 (no matches at T4) twice: identical sizes and |R|=0 both
	// times — traces must agree op-for-op in store/kind/bytes.
	a, b := run(100), run(200)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Store != b[i].Store || a[i].Kind != b[i].Kind || a[i].Bytes != b[i].Bytes {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMultiwayInputValidation(t *testing.T) {
	rels, q := figure6Data()
	in, opts := storeMultiway(t, rels, q, nil, false)
	if _, err := MultiwayJoin(MultiwayInput{Tree: in.Tree, Tables: in.Tables[:2]}, opts); err == nil {
		t.Fatal("short table list accepted")
	}
	if _, err := MultiwayJoin(MultiwayInput{}, opts); err == nil {
		t.Fatal("nil tree accepted")
	}
	// Tables out of order are rejected.
	swapped := append([]*table.StoredTable(nil), in.Tables...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	if _, err := MultiwayJoin(MultiwayInput{Tree: in.Tree, Tables: swapped}, opts); err == nil {
		t.Fatal("reordered tables accepted")
	}
}

func TestMultiwayPaddingModes(t *testing.T) {
	rels, q := figure6Data()
	tree, _ := jointree.Build(q)
	want, err := ReferenceMultiwayJoin(rels, tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []PaddingMode{PadClosestPower, PadCartesian} {
		in, opts := storeMultiway(t, rels, q, nil, false)
		opts.Padding = mode
		res, err := MultiwayJoin(in, opts)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		equalMultiset(t, res.Tuples, want)
		sizes := []int64{4, 4, 3, 3}
		if res.PaddedSteps != NumtrMultiway(sizes, int64(res.PaddedCount)) {
			t.Fatalf("%v: padded steps %d for padded count %d", mode, res.PaddedSteps, res.PaddedCount)
		}
		switch mode {
		case PadClosestPower:
			if res.PaddedCount != 2 { // real 2 is already a power of 2
				t.Fatalf("closest power padded to %d", res.PaddedCount)
			}
		case PadCartesian:
			if res.PaddedCount != 4*4*3*3 {
				t.Fatalf("cartesian padded to %d", res.PaddedCount)
			}
		}
	}
}

func TestMultiwaySkipReset(t *testing.T) {
	// Disables are sound for the query that produced them, but stale tags
	// corrupt *different* queries over the same index — which is why the
	// paper resets all boolean tags after every query. Figure 6's run
	// disables T3(1,4) (no T4 partner), yet that tuple does join T1 in a
	// plain binary join on B.
	rels, q := figure6Data()
	in, opts := storeMultiway(t, rels, q, nil, false)
	opts.SkipReset = true
	if _, err := MultiwayJoin(in, opts); err != nil {
		t.Fatal(err)
	}
	t1, t3 := in.Tables[0], in.Tables[2]
	if t3.Schema().Table != "T3" {
		t.Fatalf("pre-order changed: %s", t3.Schema().Table)
	}
	want := ReferenceEquiJoin(rels["T1"], rels["T3"], "B", "B")
	stale, err := IndexNestedLoopJoin(t1, t3, "B", "B", testJoinOpts(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if stale.RealCount >= len(want) {
		t.Fatalf("stale disables should lose results: got %d, full join has %d", stale.RealCount, len(want))
	}
	// After the reset pass the same query is correct again.
	if err := t3.ResetIndexes(); err != nil {
		t.Fatal(err)
	}
	fresh, err := IndexNestedLoopJoin(t1, t3, "B", "B", testJoinOpts(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.RealCount != len(want) {
		t.Fatalf("after reset: %d, want %d", fresh.RealCount, len(want))
	}
	equalMultiset(t, fresh.Tuples, want)
}

func TestMultiwayOneORAMWithCache(t *testing.T) {
	rels, q := figure6Data()
	tree, _ := jointree.Build(q)
	tblOpts := testTableOpts(t, nil, true)
	tblOpts.CacheIndex = true
	attrs := map[string][]string{}
	var ordered []*relation.Relation
	for _, n := range tree.Order {
		ordered = append(ordered, rels[n.Table])
		if n.Attr != "" {
			attrs[n.Table] = []string{n.Attr}
		}
	}
	tables, shared, err := table.StoreShared(ordered, attrs, tblOpts)
	if err != nil {
		t.Fatal(err)
	}
	in := core2MultiwayInput(tree, tables)
	opts := testJoinOpts(t, nil)
	opts.OneORAM = shared
	res, err := MultiwayJoin(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RealCount != 2 {
		t.Fatalf("one-oram+cache count %d", res.RealCount)
	}
}

func core2MultiwayInput(tree *jointree.Tree, tables map[string]*table.StoredTable) MultiwayInput {
	in := MultiwayInput{Tree: tree, Tables: make([]*table.StoredTable, tree.Len())}
	for i, n := range tree.Order {
		in.Tables[i] = tables[n.Table]
	}
	return in
}

func TestMultiwayFiveTableTwoBranch(t *testing.T) {
	r := mrand.New(mrand.NewSource(101))
	mk := func(name string, n int) *relation.Relation {
		rel := &relation.Relation{Schema: relation.Schema{Table: name, Columns: []string{"a", "b"}}}
		for i := 0; i < n; i++ {
			rel.Tuples = append(rel.Tuples, relation.Tuple{Values: []int64{int64(r.Intn(3)), int64(r.Intn(3))}})
		}
		return rel
	}
	// Root with two branches, one of depth 2:
	//        r
	//       / \
	//      c1  c2
	//     /      \
	//    g1      g2
	q := jointree.Query{
		Tables: []string{"r", "c1", "g1", "c2", "g2"},
		Preds: []jointree.Pred{
			{Left: "r", LeftAttr: "a", Right: "c1", RightAttr: "a"},
			{Left: "c1", LeftAttr: "b", Right: "g1", RightAttr: "a"},
			{Left: "r", LeftAttr: "b", Right: "c2", RightAttr: "b"},
			{Left: "c2", LeftAttr: "a", Right: "g2", RightAttr: "b"},
		},
	}
	rels := map[string]*relation.Relation{}
	for _, name := range q.Tables {
		rels[name] = mk(name, 3+r.Intn(5))
	}
	in, opts := storeMultiway(t, rels, q, nil, false)
	res, err := MultiwayJoin(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := jointree.Build(q)
	want, err := ReferenceMultiwayJoin(rels, tree)
	if err != nil {
		t.Fatal(err)
	}
	equalMultiset(t, res.Tuples, want)
	if res.BoundExceeded {
		t.Fatalf("bound exceeded: %d steps", res.Steps)
	}
}
