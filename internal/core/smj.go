package core

import (
	"fmt"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/telemetry"
)

// cmpRows compares two retrieval results by join key, ranking a dummy (⊥)
// behind every real tuple, as Algorithm 1 prescribes for exhausted cursors.
func cmpRows(a, b table.Row) int {
	switch {
	case !a.OK && !b.OK:
		return 0
	case !a.OK:
		return 1
	case !b.OK:
		return -1
	case a.Entry.Key < b.Entry.Key:
		return -1
	case a.Entry.Key > b.Entry.Key:
		return 1
	default:
		return 0
	}
}

// mergeCursor is the retrieval primitive Algorithm 1 needs from each input
// table: sequential attribute-order retrievals with uniform cost, dummy
// retrievals, and a client-side position save/restore for the "begin"
// rewind. Both the B-tree leaf cursor and the index-free pointer-chain
// cursor satisfy it.
type mergeCursor interface {
	Next() (table.Row, error)
	Dummy() error
	DummyBatch(n int) error
	Mark() any
	Restore(mark any)
}

// leafMerge adapts the indexed leaf cursor.
type leafMerge struct{ c *table.LeafCursor }

func (l leafMerge) Next() (table.Row, error) { return l.c.Next() }
func (l leafMerge) Dummy() error             { return l.c.Dummy() }
func (l leafMerge) DummyBatch(n int) error   { return l.c.DummyBatch(n) }
func (l leafMerge) Mark() any                { return l.c.Pos() }
func (l leafMerge) Restore(m any)            { l.c.SeekOrd(m.(int64)) }

// chainMerge adapts the pointer-chain cursor.
type chainMerge struct{ c *table.ChainCursor }

func (l chainMerge) Next() (table.Row, error) { return l.c.Next() }
func (l chainMerge) Dummy() error             { return l.c.Dummy() }
func (l chainMerge) DummyBatch(n int) error   { return l.c.DummyBatch(n) }
func (l chainMerge) Mark() any                { return l.c.Mark() }
func (l chainMerge) Restore(m any)            { l.c.Restore(m.(table.ChainMark)) }

// runSortMerge executes Algorithm 1 over two merge cursors, writing one
// output record per comparison. It returns the executed step and retrieval
// counts (one step = one retrieval per table in the SepORAM setting; the
// OneORAM setting elides partner dummies).
func runSortMerge(c1, c2 mergeCursor, w *outWriter, one bool) (steps, retrievals int64, err error) {
	// Line 3-4: retrieve the first tuple from each table (one join step).
	steps++
	retrievals += 2
	row1, err := c1.Next()
	if err != nil {
		return steps, retrievals, err
	}
	row2, err := c2.Next()
	if err != nil {
		return steps, retrievals, err
	}
	// advance moves one cursor and issues the partner's dummy retrieval,
	// always touching the tables in fixed order (T1 first) so the per-step
	// store sequence is independent of which side advanced.
	advance := func(first bool) (table.Row, error) {
		steps++
		retrievals++
		if first {
			row, err := c1.Next()
			if err != nil {
				return row, err
			}
			if !one {
				if err := c2.Dummy(); err != nil {
					return row, err
				}
			}
			return row, nil
		}
		if !one {
			if err := c1.Dummy(); err != nil {
				return table.Row{}, err
			}
		}
		return c2.Next()
	}

	for row1.OK || row2.OK {
		res := cmpRows(row1, row2)
		if res == 0 {
			// Lines 8-15: emit the run of matches, then rewind T2 to "begin".
			beginRow, beginMark := row2, c2.Mark()
			for res == 0 {
				if err := w.putJoin(row1.Tuple, row2.Tuple); err != nil {
					return steps, retrievals, err
				}
				if row2, err = advance(false); err != nil {
					return steps, retrievals, err
				}
				res = cmpRows(row1, row2)
			}
			if err := w.putDummy(); err != nil {
				return steps, retrievals, err
			}
			row2 = beginRow
			c2.Restore(beginMark)
			if row1, err = advance(true); err != nil {
				return steps, retrievals, err
			}
			continue
		}
		// Lines 17-21: no match; one dummy record, advance the lagging side.
		if err := w.putDummy(); err != nil {
			return steps, retrievals, err
		}
		if res < 0 {
			if row1, err = advance(true); err != nil {
				return steps, retrievals, err
			}
		} else {
			if row2, err = advance(false); err != nil {
				return steps, retrievals, err
			}
		}
	}
	return steps, retrievals, nil
}

// finishSortMerge pads the step count to Theorem 1's bound and runs the
// final oblivious filter. join is the algorithm's telemetry span (may be
// nil); the pad and filter phases attach under it.
func finishSortMerge(w *outWriter, c1, c2 mergeCursor, one bool,
	n1, n2, steps, retrievals int64, opts Options, start storage.Stats,
	join *telemetry.Span, tables ...flusher) (*Result, error) {
	cart := Cartesian(n1, n2)
	paddedR := opts.PadSize(int64(w.real), cart)
	target := NumtrSortMerge(n1, n2, paddedR)
	if steps > target {
		return nil, fmt.Errorf("core: sort-merge executed %d steps, exceeding the Theorem 1 bound %d", steps, target)
	}
	pad := join.Child("pad")
	pad.SetAttr("steps", steps)
	pad.SetAttr("target", target)
	padded := steps
	if depth := opts.prefetch(); depth <= 1 {
		for ; padded < target; padded++ {
			retrievals++
			if err := c1.Dummy(); err != nil {
				return nil, err
			}
			if !one {
				if err := c2.Dummy(); err != nil {
					return nil, err
				}
			}
			if err := w.putDummy(); err != nil {
				return nil, err
			}
		}
	} else {
		// The pad tail is all dummies, so chunks of PrefetchDepth retrievals
		// can share one download round per store. Only reached in PadNone
		// (see Options.prefetch), where `steps` — the index at which the
		// round shape changes — is itself declared leakage.
		var chunks int64
		for padded < target {
			chunk := padChunk(depth, target-padded)
			chunks++
			retrievals += int64(chunk)
			if err := c1.DummyBatch(chunk); err != nil {
				return nil, err
			}
			if !one {
				if err := c2.DummyBatch(chunk); err != nil {
					return nil, err
				}
			}
			for i := 0; i < chunk; i++ {
				if err := w.putDummy(); err != nil {
					return nil, err
				}
			}
			padded += int64(chunk)
		}
		pad.SetAttr("chunks", chunks)
	}
	pad.End()
	if err := settle(join, opts, tables...); err != nil {
		return nil, err
	}
	tuples, real, paddedOut, err := w.finish(opts, cart, join)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Schema:      w.schema,
		Tuples:      tuples,
		RealCount:   real,
		PaddedCount: paddedOut,
		Steps:       steps,
		PaddedSteps: padded,
		Retrievals:  padded,
		Stats:       diff(opts.Meter, start),
	}
	if one {
		res.Retrievals = retrievals
	}
	return res, nil
}

// SortMergeJoin computes T1 ⋈ T2 on a1 = a2 with the paper's oblivious
// sort-merge equi-join (Algorithm 1) over B-tree leaf chains. Both tables
// need indices on their join attributes; tuples are retrieved through the
// sorted leaf entries, one (real or dummy) retrieval from each table per
// join step, and one output record is written per comparison. The per-table
// retrieval count is padded to Theorem 1's bound |T1| + |T2| + |R| + 1.
func SortMergeJoin(t1, t2 *table.StoredTable, a1, a2 string, opts Options) (*Result, error) {
	start := snapshot(opts.Meter)
	sp := opts.span("join.smj")
	sp.SetAttr("n1", int64(t1.NumTuples()))
	sp.SetAttr("n2", int64(t2.NumTuples()))
	defer sp.End()
	load := sp.Child("load")
	c1, err := table.NewLeafCursor(t1, a1)
	if err != nil {
		return nil, err
	}
	c2, err := table.NewLeafCursor(t2, a2)
	if err != nil {
		return nil, err
	}
	w, err := newOutWriter(fmt.Sprintf("%s⋈%s", t1.Schema().Table, t2.Schema().Table),
		opts, t1.Schema(), t2.Schema())
	if err != nil {
		return nil, err
	}
	load.End()
	one := opts.OneORAM != nil
	m1, m2 := leafMerge{c1}, leafMerge{c2}
	merge := sp.Child("merge")
	steps, retrievals, err := runSortMerge(m1, m2, w, one)
	merge.SetAttr("steps", steps)
	merge.End()
	if err != nil {
		return nil, err
	}
	return finishSortMerge(w, m1, m2, one,
		int64(t1.NumTuples()), int64(t2.NumTuples()), steps, retrievals, opts, start, sp, t1, t2)
}

// SortMergeJoinChained is Algorithm 1 over the index-free pointer-chain
// layout the paper describes: "B-tree indices are not required for
// Algorithm 1. If each tuple keeps the pointer to the next tuple,
// succeeding tuples can be retrieved when needed through ORAM using the
// pointers." Each retrieval is a single data-ORAM access instead of the
// indexed layout's leaf+data pair; the step count and Theorem 1 bound are
// unchanged.
func SortMergeJoinChained(t1, t2 *table.ChainedTable, opts Options) (*Result, error) {
	start := snapshot(opts.Meter)
	sp := opts.span("join.smj.chain")
	sp.SetAttr("n1", int64(t1.NumTuples()))
	sp.SetAttr("n2", int64(t2.NumTuples()))
	defer sp.End()
	load := sp.Child("load")
	w, err := newOutWriter(fmt.Sprintf("%s⋈%s", t1.Schema().Table, t2.Schema().Table),
		opts, t1.Schema(), t2.Schema())
	if err != nil {
		return nil, err
	}
	load.End()
	one := opts.OneORAM != nil
	m1 := chainMerge{table.NewChainCursor(t1)}
	m2 := chainMerge{table.NewChainCursor(t2)}
	merge := sp.Child("merge")
	steps, retrievals, err := runSortMerge(m1, m2, w, one)
	merge.SetAttr("steps", steps)
	merge.End()
	if err != nil {
		return nil, err
	}
	return finishSortMerge(w, m1, m2, one,
		int64(t1.NumTuples()), int64(t2.NumTuples()), steps, retrievals, opts, start, sp, t1, t2)
}
