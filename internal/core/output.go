package core

import (
	"fmt"

	"oblivjoin/internal/obliv"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/telemetry"
)

// outWriter accumulates the join's output table: one fixed-size encrypted
// record per join step (real join tuple or dummy), appended to a
// server-resident block vector, then obliviously filtered.
type outWriter struct {
	schema  relation.Schema
	vec     *obliv.BlockVector
	recSize int
	real    int
	total   int
}

func newOutWriter(name string, opts Options, schemas ...relation.Schema) (*outWriter, error) {
	if opts.Sealer == nil {
		return nil, fmt.Errorf("core: output sealer is required")
	}
	schema := relation.JoinedSchema(name, schemas...)
	recSize := schema.TupleSize()
	vec, err := obliv.NewBlockVector(name, 64, recSize, opts.outBlockSize(), opts.Meter, opts.Sealer)
	if err != nil {
		return nil, err
	}
	return &outWriter{schema: schema, vec: vec, recSize: recSize}, nil
}

// putJoin writes the concatenation of the given tuples as one real record.
func (w *outWriter) putJoin(tuples ...relation.Tuple) error {
	rec := make([]byte, w.recSize)
	if err := relation.Encode(w.schema, relation.Concat(tuples...), rec); err != nil {
		return err
	}
	w.real++
	w.total++
	return w.vec.Append(rec)
}

// putDummy writes one dummy record, indistinguishable from a real one.
func (w *outWriter) putDummy() error {
	rec := make([]byte, w.recSize)
	if err := relation.EncodeDummy(w.schema, rec); err != nil {
		return err
	}
	w.total++
	return w.vec.Append(rec)
}

// finish applies the Section 8 padding strategy and the paper's final
// oblivious filter: the output vector is sorted so real records precede
// dummies (bitonic external sort with mem trusted records) and truncated to
// the padded size. It returns the decoded real join tuples. join is the
// algorithm's telemetry span (may be nil); the filter and decode phases
// attach under it, with the compaction sort's sub-phases nesting under the
// filter via the Sorter's own span.
func (w *outWriter) finish(opts Options, cartesian int64, join *telemetry.Span) (tuples []relation.Tuple, realCount, paddedCount int, err error) {
	filter := join.Child("filter")
	if err := w.vec.Flush(); err != nil {
		return nil, 0, 0, err
	}
	padded := opts.PadSize(int64(w.real), cartesian)
	filter.SetAttr("out", int64(w.total))
	filter.SetAttr("padded", padded)
	// A heavily padded target can exceed the records the join steps emitted.
	dummy := make([]byte, w.recSize)
	if int(padded) > w.vec.Len() {
		if err := w.vec.PadTo(int(padded), dummy); err != nil {
			return nil, 0, 0, err
		}
	}
	mem := opts.mem(w.recSize, opts.outBlockSize())
	sorter := obliv.Sorter{Workers: opts.SortWorkers, Span: filter}
	if err := sorter.CompactReal(w.vec, mem, relation.IsDummy, int(padded), dummy); err != nil {
		return nil, 0, 0, err
	}
	filter.End()
	// Decode the output client-side for the caller. Under PadNone the real
	// count is declared leakage, so only the real prefix is read; every
	// padding mode exists to hide it, so there the read-back covers the
	// whole padded prefix — otherwise the decode reads would mark the real
	// size at block granularity, exactly the boundary padding hides.
	read := w.real
	if opts.Padding != PadNone {
		read = int(padded)
	}
	decode := join.Child("decode")
	defer decode.End()
	if read > 0 {
		recs, err := w.vec.LoadRange(0, read)
		if err != nil {
			return nil, 0, 0, err
		}
		tuples = make([]relation.Tuple, 0, w.real)
		for i, rec := range recs {
			tu, ok, err := relation.Decode(w.schema, rec)
			if err != nil {
				return nil, 0, 0, err
			}
			if !ok {
				if i < w.real {
					return nil, 0, 0, fmt.Errorf("core: dummy record at output position %d of %d real", i, w.real)
				}
				continue // padding dummy past the real prefix
			}
			tuples = append(tuples, tu)
		}
	}
	return tuples, w.real, int(padded), nil
}
