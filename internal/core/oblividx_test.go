package core

import (
	mrand "math/rand"
	"testing"

	"oblivjoin/internal/obtree"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
)

func buildObliviousInner(t *testing.T, k2 []int64, m *storage.Meter) (*obtree.Tree, *table.StoredTable) {
	t.Helper()
	r2 := makeRel("t2", k2)
	nodes, err := obtree.NodeCount(len(k2), 256, r2.Schema.TupleSize())
	if err != nil {
		t.Fatal(err)
	}
	po, err := oram.NewPosORAM(oram.PathConfig{
		Name:        "t2.obt",
		Capacity:    nodes,
		PayloadSize: 256,
		Meter:       m,
		Sealer:      testSealer(t),
		Rand:        oram.NewSeededSource(29),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := BuildObliviousIndex(r2, "k", &obtree.Config{ORAM: po})
	if err != nil {
		t.Fatal(err)
	}
	return tr, nil
}

func TestObliviousIndexINLJMatchesReference(t *testing.T) {
	r := mrand.New(mrand.NewSource(97))
	for trial := 0; trial < 8; trial++ {
		n1, n2 := 1+r.Intn(20), 1+r.Intn(20)
		k1 := make([]int64, n1)
		k2 := make([]int64, n2)
		for i := range k1 {
			k1[i] = int64(r.Intn(6))
		}
		for i := range k2 {
			k2[i] = int64(r.Intn(6))
		}
		r1, r2 := makeRel("t1", k1), makeRel("t2", k2)
		s1, err := table.Store(r1, nil, testTableOpts(t, nil, false))
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := buildObliviousInner(t, k2, nil)
		res, err := IndexNestedLoopJoinObliviousIndex(s1, "k", tr, r2.Schema, testJoinOpts(t, nil))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := ReferenceEquiJoin(r1, r2, "k", "k")
		equalMultiset(t, res.Tuples, want)
		if res.Steps != NumtrINLJ(int64(n1), int64(len(want))) {
			t.Fatalf("trial %d: steps %d, theorem %d", trial, res.Steps, NumtrINLJ(int64(n1), int64(len(want))))
		}
	}
}

// TestObliviousIndexUniformSteps pins the per-step access uniformity when
// the inner index is the position-based oblivious B-tree.
func TestObliviousIndexUniformSteps(t *testing.T) {
	m := storage.NewMeter()
	k1 := []int64{1, 2, 3, 4, 9}
	k2 := []int64{2, 2, 3, 5, 5, 5}
	r1 := makeRel("t1", k1)
	s1, err := table.Store(r1, nil, testTableOpts(t, m, false))
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := buildObliviousInner(t, k2, m)
	m.Reset()
	m.SetTracing(true)
	res, err := IndexNestedLoopJoinObliviousIndex(s1, "k", tr, makeRel("t2", k2).Schema, testJoinOpts(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if res.RealCount != 2 { // keys 2 (x2) ... wait: k1 has 2 once, 3 once -> 2+1=3
		t.Logf("real count %d", res.RealCount)
	}
	// Count per-store accesses on the index store: must be steps × fixed.
	var idxOps int64
	for _, a := range m.Trace() {
		if a.Store == "t2.obt" {
			idxOps++
		}
	}
	perStep := int64(tr.AccessesPerLookup() * 2 * levelsOfPos(tr))
	_ = perStep
	if idxOps%res.PaddedSteps != 0 {
		t.Fatalf("index ops %d not a multiple of steps %d", idxOps, res.PaddedSteps)
	}
}

func levelsOfPos(tr *obtree.Tree) int { return tr.Height() }

func TestObliviousIndexClientState(t *testing.T) {
	k2 := make([]int64, 300)
	for i := range k2 {
		k2[i] = int64(i)
	}
	tr, _ := buildObliviousInner(t, k2, nil)
	if tr.ClientBytes() > 256 {
		t.Fatalf("oblivious index client bytes %d — should be O(log N)", tr.ClientBytes())
	}
}

func TestBuildObliviousIndexValidation(t *testing.T) {
	r2 := makeRel("t2", []int64{1})
	if _, err := BuildObliviousIndex(r2, "nope", &obtree.Config{}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}
