// Package core implements the paper's contribution: oblivious join
// algorithms over B-tree-in-ORAM tables.
//
//   - SortMergeJoin — oblivious binary sort-merge equi-join (Algorithm 1);
//   - IndexNestedLoopJoin — oblivious binary index nested-loop equi-join
//     (Algorithm 2);
//   - BandJoin — oblivious index nested-loop band join (Section 5.3);
//   - MultiwayJoin — oblivious acyclic multiway equi-join with tuple
//     disabling (Section 6, Observations 1–3).
//
// Every algorithm maintains the paper's central invariant: in each join
// step one tuple (real or dummy) is retrieved from every input table with a
// fixed per-table access count, and exactly one output record (real join
// tuple or dummy) is written. The number of join steps is padded to the
// closed-form bounds of Theorems 1–4, so the server-visible trace is a
// function of the public input/output sizes only.
//
// The OneORAM setting of Section 7 is selected by Options.OneORAM: all
// tables share a single Path-ORAM, per-retrieval access counts are padded
// to the maximum across tables, and (for the binary joins) the per-step
// dummy partner retrievals are elided with one output record written after
// every retrieval instead of every step.
package core

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math"

	"oblivjoin/internal/oram"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/telemetry"
	"oblivjoin/internal/xcrypto"
)

func mathExp(x float64) float64 { return math.Exp(x) }
func mathLog(x float64) float64 { return math.Log(x) }

// cryptoUniform draws a uniform float in (0,1] from crypto/rand.
func cryptoUniform() float64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("core: crypto/rand failed: %v", err))
	}
	v := binary.LittleEndian.Uint64(b[:]) >> 11 // 53 bits
	return (float64(v) + 1) / float64(1<<53)
}

// PaddingMode selects the output-size padding strategy of Section 8.
type PaddingMode int

const (
	// PadNone leaks the real join result size (the paper's default,
	// "non-padded mode").
	PadNone PaddingMode = iota
	// PadClosestPower pads the result size (and the join-step count derived
	// from it) to the closest power of Options.PadBase.
	PadClosestPower
	// PadCartesian pads to the Cartesian product of the input sizes — the
	// maximal, query-independent bound.
	PadCartesian
	// PadDP pads the result size with positive one-sided noise drawn from a
	// truncated geometric distribution — the differentially-private padding
	// direction Section 8 points at ([17], Shrinkwrap): far cheaper than
	// Cartesian padding, at the price of a (ε,δ)-DP rather than a full
	// obliviousness guarantee on the output size.
	PadDP
)

func (p PaddingMode) String() string {
	switch p {
	case PadNone:
		return "RealSize"
	case PadClosestPower:
		return "ClosestPower"
	case PadCartesian:
		return "CartesianProduct"
	case PadDP:
		return "DPNoise"
	default:
		return fmt.Sprintf("PaddingMode(%d)", int(p))
	}
}

// Options configures a join execution.
type Options struct {
	// Mem is the trusted client memory for oblivious sorting, in output
	// records — the paper's M (default: two blocks' worth, M = 2B).
	Mem int
	// Padding selects the Section 8 output padding strategy.
	Padding PaddingMode
	// PadBase is the power base for PadClosestPower (0 means 2).
	PadBase int
	// DPEpsilon is the privacy parameter of PadDP (0 means 0.5); smaller
	// epsilon adds more noise.
	DPEpsilon float64
	// DPRand draws the PadDP noise; nil means crypto/rand-backed.
	DPRand func() float64
	// OutBlockSize is the total byte size of output-table blocks (0 means
	// table.DefaultBlockPayload + encryption overhead).
	OutBlockSize int
	// Meter receives output-table traffic and is snapshotted around the join
	// for Result.Stats; may be nil.
	Meter *storage.Meter
	// Sealer encrypts the output table; required.
	Sealer *xcrypto.Sealer
	// SortWorkers sizes the worker pool of the oblivious sort engine used by
	// the final output filter (0 or 1 = serial). Parallel execution permutes
	// server accesses only within one bitonic stage, so the trace stays a
	// function of public sizes (DESIGN.md §2.7).
	SortWorkers int
	// OneORAM, when non-nil, is the shared Path-ORAM all input tables live
	// in: the join runs in the Section 7 OneORAM setting, padding every
	// retrieval to the maximum per-table access count.
	OneORAM *oram.PathORAM
	// Span, when non-nil, is the parent telemetry span: the join attaches a
	// phase-attributed sub-tree (load → scan/merge → pad → filter → decode)
	// under it, each phase carrying wall time, Meter deltas, and public
	// sizes only. Telemetry performs no server accesses, so the trace is
	// identical with or without it (DESIGN.md §2.8).
	Span *telemetry.Span
	// IncludeReset charges post-query index-tag resets (multiway only) to
	// the query cost. Defaults to true via MultiwayJoin.
	SkipReset bool
	// PrefetchDepth coalesces the path downloads of the all-dummy padding
	// loops: chunks of up to PrefetchDepth dummy retrievals are issued
	// through the batch ORAM entry points so their read paths travel in one
	// round. The switch from single-path to multi-path rounds is server
	// visible and happens at the executed step count, so the depth is
	// honored only in the non-padded mode (PadNone), where Theorems 1–3
	// make that count an exact function of the input sizes and the real
	// result size the mode already leaks. Under every padding mode that
	// hides the real result size the depth is forced to 1 — batching the
	// pad tail would mark exactly the boundary the padding exists to hide.
	// The per-store access counts are identical to the sequential loops
	// either way. 0 or 1 disables coalescing.
	PrefetchDepth int
}

func (o Options) mem(recSize, blockSize int) int {
	if o.Mem > 0 {
		return o.Mem
	}
	per := (blockSize - xcrypto.Overhead) / recSize
	if per < 1 {
		per = 1
	}
	return 2 * per // M = 2B, as in the paper's default configuration
}

func (o Options) outBlockSize() int {
	if o.OutBlockSize > 0 {
		return o.OutBlockSize
	}
	return table.DefaultBlockPayload + xcrypto.Overhead
}

func (o Options) padBase() int {
	if o.PadBase >= 2 {
		return o.PadBase
	}
	return 2
}

// PadSize applies the padding mode to the real result size given the
// Cartesian bound — exported so baselines and harnesses can mirror the
// engine's padding targets.
func (o Options) PadSize(real int64, cartesian int64) int64 {
	switch o.Padding {
	case PadClosestPower:
		b := int64(o.padBase())
		p := int64(1)
		for p < real {
			p *= b
		}
		if p > cartesian {
			p = cartesian
		}
		return p
	case PadCartesian:
		return cartesian
	case PadDP:
		padded := real + o.dpNoise()
		if padded > cartesian {
			padded = cartesian
		}
		return padded
	default:
		return real
	}
}

// dpNoise draws one-sided geometric noise with mean ≈ 1/ε, shifted so the
// output is always ≥ 1 extra record (one-sided noise keeps the padded size
// an upper bound on the real size, as Shrinkwrap requires).
func (o Options) dpNoise() int64 {
	eps := o.DPEpsilon
	if eps <= 0 {
		eps = 0.5
	}
	uniform := o.DPRand
	if uniform == nil {
		uniform = cryptoUniform
	}
	// Geometric with success probability p = 1 - e^-ε via inversion.
	p := 1 - mathExp(-eps)
	u := uniform()
	if u <= 0 {
		u = 1e-12
	}
	n := int64(mathLog(u)/mathLog(1-p)) + 1
	if n < 1 {
		n = 1
	}
	const cap = 1 << 20 // truncate: bounds the worst case like [17]'s clipping
	if n > cap {
		n = cap
	}
	return n
}

// prefetch returns the effective pad-loop coalescing depth. The server can
// distinguish a multi-path union round from a single-path round, so the
// access index where chunking begins — the executed step count — becomes
// part of the trace the moment any chunking happens. Coalescing is
// therefore only honored when that index is public: in PadNone the step
// count equals the theorem bound evaluated at the (declared-leakage) real
// result size, so the whole chunk schedule is a function of quantities the
// server already learns. Every other padding mode exists to hide the real
// result size, so the depth collapses to 1 and the pad tail stays
// round-for-round indistinguishable from the real phase.
func (o Options) prefetch() int {
	if o.PrefetchDepth > 1 && o.Padding == PadNone {
		return o.PrefetchDepth
	}
	return 1
}

// padChunk clips the prefetch depth to the remaining pad budget. When
// chunking is enabled at all (prefetch gates it to PadNone), both inputs
// are functions of declared leakage — the theorem target and the executed
// step count, each determined by the input sizes and the leaked real
// result size — so the resulting chunk schedule is too.
func padChunk(depth int, remaining int64) int {
	if int64(depth) > remaining {
		return int(remaining)
	}
	return depth
}

// flusher settles deferred ORAM eviction state: tables built with
// table.Options.EvictionBatch > 1 queue eviction paths between accesses
// and must be flushed before the query is considered complete.
type flusher interface{ Flush() error }

// pathTelemeter exposes per-ORAM path statistics for phase attribution.
type pathTelemeter interface{ PathTelemetry() []oram.PathStats }

// settle flushes every input table's deferred eviction queue (and the
// shared OneORAM, when set) under a "flush" child span, so the deferred
// write rounds are charged to the query and the stash returns to its
// steady-state bound. It then attaches the cumulative eviction-scheduler
// counters (flushes, paths per flush, upper-tree buckets deduped, piggyback
// exchanges) to the span — the telemetry that attributes rounds saved to
// the deferral machinery.
func settle(sp *telemetry.Span, opts Options, tables ...flusher) error {
	fl := sp.Child("flush")
	defer fl.End()
	for _, t := range tables {
		if err := t.Flush(); err != nil {
			return err
		}
	}
	if opts.OneORAM != nil {
		if err := opts.OneORAM.Flush(); err != nil {
			return err
		}
	}
	var stats []oram.PathStats
	for _, t := range tables {
		if pt, ok := t.(pathTelemeter); ok {
			stats = append(stats, pt.PathTelemetry()...)
		}
	}
	if opts.OneORAM != nil {
		stats = append(stats, opts.OneORAM.Telemetry())
	}
	var flushes, paths, deduped, exchanges, batched int64
	for _, s := range stats {
		flushes += s.Flushes
		paths += s.FlushedPaths
		deduped += s.DedupedBuckets
		exchanges += s.Exchanges
		batched += s.BatchedAccesses
	}
	if flushes > 0 {
		fl.SetAttr("evict.flushes", flushes)
		fl.SetAttr("evict.paths", paths)
		fl.SetAttr("evict.dedupedBuckets", deduped)
	}
	if exchanges > 0 {
		fl.SetAttr("evict.exchanges", exchanges)
	}
	if batched > 0 {
		fl.SetAttr("fetch.batchedAccesses", batched)
	}
	return nil
}

// span opens a child phase span under Options.Span bound to the query
// meter. Nil-safe: with telemetry disabled (Options.Span == nil) the result
// is nil and every operation on it no-ops.
func (o Options) span(name string) *telemetry.Span {
	return o.Span.ChildMeter(name, o.Meter)
}

func snapshot(m *storage.Meter) storage.Stats {
	if m == nil {
		return storage.Stats{}
	}
	return m.Snapshot()
}

func diff(m *storage.Meter, start storage.Stats) storage.Stats {
	if m == nil {
		return storage.Stats{}
	}
	return m.Snapshot().Sub(start)
}

// Result reports a join's outcome.
type Result struct {
	// Schema describes the output records.
	Schema relation.Schema
	// Tuples are the decoded real join records (padded-mode dummies are
	// excluded) in output-table order.
	Tuples []relation.Tuple
	// RealCount is the true join result size.
	RealCount int
	// PaddedCount is the output size after Section 8 padding.
	PaddedCount int
	// Steps is the number of join steps actually executed, before padding.
	Steps int64
	// PaddedSteps is the step count after padding to the theorem bound; the
	// server-visible trace length is determined by this value.
	PaddedSteps int64
	// Retrievals is the per-table tuple-retrieval count (Numtr of Theorems
	// 1–4); equal to PaddedSteps in the SepORAM setting. In the OneORAM
	// setting it is the total retrieval count across tables.
	Retrievals int64
	// BoundExceeded reports that the executed steps exceeded the theorem
	// bound before padding (never observed on the paper's workloads; see
	// DESIGN.md on the Observation 3 corner case). The result is still
	// correct, but the trace is longer than the bound.
	BoundExceeded bool
	// Stats is the traffic consumed by the join (when Options.Meter was
	// set): the communication cost the paper's figures plot.
	Stats storage.Stats
}
