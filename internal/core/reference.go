package core

import (
	"fmt"

	"oblivjoin/internal/jointree"
	"oblivjoin/internal/relation"
)

// BandOp is the comparison of a band join predicate T1.attr OP T2.attr.
type BandOp int

// Band join operators supported by Section 5.3.
const (
	BandLess BandOp = iota
	BandLessEq
	BandGreater
	BandGreaterEq
)

func (op BandOp) String() string {
	switch op {
	case BandLess:
		return "<"
	case BandLessEq:
		return "<="
	case BandGreater:
		return ">"
	case BandGreaterEq:
		return ">="
	default:
		return fmt.Sprintf("BandOp(%d)", int(op))
	}
}

// Matches reports whether a OP b holds.
func (op BandOp) Matches(a, b int64) bool {
	switch op {
	case BandLess:
		return a < b
	case BandLessEq:
		return a <= b
	case BandGreater:
		return a > b
	case BandGreaterEq:
		return a >= b
	default:
		return false
	}
}

// ReferenceEquiJoin computes T1 ⋈ T2 on a1 = a2 with a plain in-memory hash
// join. It defines the correct answer the oblivious algorithms are tested
// and benchmarked against.
func ReferenceEquiJoin(r1, r2 *relation.Relation, a1, a2 string) []relation.Tuple {
	c1, c2 := r1.Schema.MustCol(a1), r2.Schema.MustCol(a2)
	index := make(map[int64][]relation.Tuple)
	for _, t := range r2.Tuples {
		k := t.Values[c2]
		index[k] = append(index[k], t)
	}
	var out []relation.Tuple
	for _, t1 := range r1.Tuples {
		for _, t2 := range index[t1.Values[c1]] {
			out = append(out, relation.Concat(t1, t2))
		}
	}
	return out
}

// ReferenceBandJoin computes T1 ⋈ T2 on a1 OP a2 by nested loops.
func ReferenceBandJoin(r1, r2 *relation.Relation, a1, a2 string, op BandOp) []relation.Tuple {
	c1, c2 := r1.Schema.MustCol(a1), r2.Schema.MustCol(a2)
	var out []relation.Tuple
	for _, t1 := range r1.Tuples {
		for _, t2 := range r2.Tuples {
			if op.Matches(t1.Values[c1], t2.Values[c2]) {
				out = append(out, relation.Concat(t1, t2))
			}
		}
	}
	return out
}

// ReferenceMultiwayJoin evaluates the acyclic join by nested loops over the
// join tree's pre-order, producing tuples concatenated in pre-order.
func ReferenceMultiwayJoin(rels map[string]*relation.Relation, tree *jointree.Tree) ([]relation.Tuple, error) {
	l := tree.Len()
	ordered := make([]*relation.Relation, l)
	cols := make([]int, l)       // column of Order[j].Attr in table j
	parentCols := make([]int, l) // column of Order[j].ParentAttr in parent
	for j, n := range tree.Order {
		rel, ok := rels[n.Table]
		if !ok {
			return nil, fmt.Errorf("core: reference join missing table %q", n.Table)
		}
		ordered[j] = rel
		if j > 0 {
			cols[j] = rel.Schema.MustCol(n.Attr)
			parentCols[j] = ordered[tree.Order[j].Parent].Schema.MustCol(n.ParentAttr)
		}
	}
	var out []relation.Tuple
	cur := make([]relation.Tuple, l)
	var rec func(j int) // fill position j..l-1
	rec = func(j int) {
		if j == l {
			out = append(out, relation.Concat(cur...))
			return
		}
		n := tree.Order[j]
		want := cur[n.Parent].Values[parentCols[j]]
		for _, t := range ordered[j].Tuples {
			if t.Values[cols[j]] == want {
				cur[j] = t
				rec(j + 1)
			}
		}
	}
	for _, t := range ordered[0].Tuples {
		cur[0] = t
		rec(1)
	}
	return out, nil
}
