package core

import (
	"bytes"
	"fmt"
	mrand "math/rand"
	"testing"
	"testing/quick"

	"oblivjoin/internal/oram"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/xcrypto"
)

func testSealer(t testing.TB) *xcrypto.Sealer {
	t.Helper()
	s, err := xcrypto.NewSealer(bytes.Repeat([]byte{11}, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testTableOpts(t testing.TB, m *storage.Meter, multiway bool) table.Options {
	t.Helper()
	return table.Options{
		BlockPayload:      256,
		Meter:             m,
		Sealer:            testSealer(t),
		Rand:              oram.NewSeededSource(7),
		WriteBackDescents: multiway,
	}
}

func testJoinOpts(t testing.TB, m *storage.Meter) Options {
	t.Helper()
	return Options{
		Meter:        m,
		Sealer:       testSealer(t),
		OutBlockSize: 256,
	}
}

func makeRel(name string, keys []int64) *relation.Relation {
	rel := &relation.Relation{Schema: relation.Schema{Table: name, Columns: []string{"k", "id"}}}
	for i, k := range keys {
		rel.Tuples = append(rel.Tuples, relation.Tuple{Values: []int64{k, int64(i)}})
	}
	return rel
}

// multiset renders tuples as a count map for order-insensitive comparison.
func multiset(tuples []relation.Tuple) map[string]int {
	m := map[string]int{}
	for _, t := range tuples {
		m[fmt.Sprint(t.Values)]++
	}
	return m
}

func equalMultiset(t *testing.T, got, want []relation.Tuple) {
	t.Helper()
	gm, wm := multiset(got), multiset(want)
	if len(gm) != len(wm) {
		t.Fatalf("result multiset mismatch: %d distinct vs %d (got %d tuples, want %d)",
			len(gm), len(wm), len(got), len(want))
	}
	for k, c := range wm {
		if gm[k] != c {
			t.Fatalf("tuple %s: got %d, want %d", k, gm[k], c)
		}
	}
}

func storePair(t *testing.T, k1, k2 []int64, m *storage.Meter) (*table.StoredTable, *table.StoredTable, *relation.Relation, *relation.Relation) {
	t.Helper()
	r1, r2 := makeRel("t1", k1), makeRel("t2", k2)
	opts := testTableOpts(t, m, false)
	s1, err := table.Store(r1, []string{"k"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := table.Store(r2, []string{"k"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s1, s2, r1, r2
}

func TestFigure3Walkthrough(t *testing.T) {
	// Figure 3: T1 = (1,1),(2,1),(2,2),(3,1); T2 = (1,1),(2,1),(2,2),(2,3)
	// keyed on the first column; |R| = 7, Numtr = 16.
	s1, s2, r1, r2 := storePair(t, []int64{1, 2, 2, 3}, []int64{1, 2, 2, 2}, nil)
	res, err := SortMergeJoin(s1, s2, "k", "k", testJoinOpts(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.RealCount != 7 {
		t.Fatalf("real count %d, want 7", res.RealCount)
	}
	if res.PaddedSteps != 16 {
		t.Fatalf("Numtr %d, want 16 (paper's Figure 3)", res.PaddedSteps)
	}
	equalMultiset(t, res.Tuples, ReferenceEquiJoin(r1, r2, "k", "k"))
}

func TestFigure4Walkthrough(t *testing.T) {
	// Figure 4: same tables, Numtr = |T1| + |R| = 4 + 7 = 11.
	s1, s2, r1, r2 := storePair(t, []int64{1, 2, 2, 3}, []int64{1, 2, 2, 2}, nil)
	res, err := IndexNestedLoopJoin(s1, s2, "k", "k", testJoinOpts(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.RealCount != 7 {
		t.Fatalf("real count %d, want 7", res.RealCount)
	}
	if res.PaddedSteps != 11 {
		t.Fatalf("Numtr %d, want 11 (paper's Figure 4)", res.PaddedSteps)
	}
	equalMultiset(t, res.Tuples, ReferenceEquiJoin(r1, r2, "k", "k"))
}

func TestFigure5Walkthrough(t *testing.T) {
	// Figure 5: T1.A > T2.A over the same tables; |R| = 6, Numtr = 10.
	s1, s2, r1, r2 := storePair(t, []int64{1, 2, 2, 3}, []int64{1, 2, 2, 2}, nil)
	res, err := BandJoin(s1, s2, "k", "k", BandGreater, testJoinOpts(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.RealCount != 6 {
		t.Fatalf("real count %d, want 6", res.RealCount)
	}
	if res.PaddedSteps != 10 {
		t.Fatalf("Numtr %d, want 10 (paper's Figure 5)", res.PaddedSteps)
	}
	equalMultiset(t, res.Tuples, ReferenceBandJoin(r1, r2, "k", "k", BandGreater))
}

func TestSortMergeJoinRandomized(t *testing.T) {
	r := mrand.New(mrand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		n1, n2 := 1+r.Intn(30), 1+r.Intn(30)
		k1 := make([]int64, n1)
		k2 := make([]int64, n2)
		for i := range k1 {
			k1[i] = int64(r.Intn(8))
		}
		for i := range k2 {
			k2[i] = int64(r.Intn(8))
		}
		s1, s2, r1, r2 := storePair(t, k1, k2, nil)
		res, err := SortMergeJoin(s1, s2, "k", "k", testJoinOpts(t, nil))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := ReferenceEquiJoin(r1, r2, "k", "k")
		equalMultiset(t, res.Tuples, want)
		// Theorem 1 holds exactly.
		if got := res.Steps; got != NumtrSortMerge(int64(n1), int64(n2), int64(len(want))) {
			t.Fatalf("trial %d: steps %d, theorem %d (n1=%d n2=%d r=%d)",
				trial, got, NumtrSortMerge(int64(n1), int64(n2), int64(len(want))), n1, n2, len(want))
		}
	}
}

func TestINLJRandomized(t *testing.T) {
	r := mrand.New(mrand.NewSource(43))
	for trial := 0; trial < 12; trial++ {
		n1, n2 := 1+r.Intn(25), 1+r.Intn(25)
		k1 := make([]int64, n1)
		k2 := make([]int64, n2)
		for i := range k1 {
			k1[i] = int64(r.Intn(6))
		}
		for i := range k2 {
			k2[i] = int64(r.Intn(6))
		}
		s1, s2, r1, r2 := storePair(t, k1, k2, nil)
		res, err := IndexNestedLoopJoin(s1, s2, "k", "k", testJoinOpts(t, nil))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := ReferenceEquiJoin(r1, r2, "k", "k")
		equalMultiset(t, res.Tuples, want)
		if res.Steps != NumtrINLJ(int64(n1), int64(len(want))) {
			t.Fatalf("trial %d: steps %d, theorem %d", trial, res.Steps, NumtrINLJ(int64(n1), int64(len(want))))
		}
	}
}

func TestBandJoinAllOps(t *testing.T) {
	r := mrand.New(mrand.NewSource(47))
	for _, op := range []BandOp{BandLess, BandLessEq, BandGreater, BandGreaterEq} {
		n1, n2 := 1+r.Intn(15), 1+r.Intn(15)
		k1 := make([]int64, n1)
		k2 := make([]int64, n2)
		for i := range k1 {
			k1[i] = int64(r.Intn(10))
		}
		for i := range k2 {
			k2[i] = int64(r.Intn(10))
		}
		s1, s2, r1, r2 := storePair(t, k1, k2, nil)
		res, err := BandJoin(s1, s2, "k", "k", op, testJoinOpts(t, nil))
		if err != nil {
			t.Fatalf("op %v: %v", op, err)
		}
		want := ReferenceBandJoin(r1, r2, "k", "k", op)
		equalMultiset(t, res.Tuples, want)
		if res.Steps != NumtrBand(int64(n1), int64(len(want))) {
			t.Fatalf("op %v: steps %d, theorem %d", op, res.Steps, NumtrBand(int64(n1), int64(len(want))))
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	for _, tc := range []struct{ k1, k2 []int64 }{
		{nil, []int64{1, 2}},
		{[]int64{1, 2}, nil},
		{nil, nil},
		{[]int64{1}, []int64{2}}, // disjoint keys
	} {
		s1, s2, r1, r2 := storePair(t, tc.k1, tc.k2, nil)
		res, err := SortMergeJoin(s1, s2, "k", "k", testJoinOpts(t, nil))
		if err != nil {
			t.Fatalf("smj %v/%v: %v", tc.k1, tc.k2, err)
		}
		equalMultiset(t, res.Tuples, ReferenceEquiJoin(r1, r2, "k", "k"))
		res, err = IndexNestedLoopJoin(s1, s2, "k", "k", testJoinOpts(t, nil))
		if err != nil {
			t.Fatalf("inlj %v/%v: %v", tc.k1, tc.k2, err)
		}
		equalMultiset(t, res.Tuples, ReferenceEquiJoin(r1, r2, "k", "k"))
	}
}

// TestTraceLengthLeaksOnlySizes is the empirical Definition 1 check for
// binary joins: two databases with identical sizing information and
// identical |R| but different join-degree distributions must produce
// traces of identical length and identical per-store op sequences.
func TestTraceLengthLeaksOnlySizes(t *testing.T) {
	run := func(k1, k2 []int64) []storage.Access {
		m := storage.NewMeter()
		s1, s2, _, _ := storePair(t, k1, k2, m)
		m.Reset()
		m.SetTracing(true)
		if _, err := SortMergeJoin(s1, s2, "k", "k", testJoinOpts(t, m)); err != nil {
			t.Fatal(err)
		}
		return m.Trace()
	}
	// Both: |T1|=4, |T2|=4, |R|=4, but degree distributions differ:
	// (a) one key matching 2x2, (b) four distinct keys matching 1x1.
	a := run([]int64{7, 7, 1, 2}, []int64{7, 7, 3, 4})
	b := run([]int64{1, 2, 3, 4}, []int64{1, 2, 3, 4})
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Store != b[i].Store || a[i].Kind != b[i].Kind || a[i].Bytes != b[i].Bytes {
			t.Fatalf("trace op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPaddingModes(t *testing.T) {
	s1, s2, r1, r2 := storePair(t, []int64{1, 2, 2, 3, 9}, []int64{2, 2, 3}, nil)
	want := ReferenceEquiJoin(r1, r2, "k", "k") // 2*2 + 1 = 5 records
	for _, mode := range []PaddingMode{PadNone, PadClosestPower, PadCartesian} {
		opts := testJoinOpts(t, nil)
		opts.Padding = mode
		res, err := IndexNestedLoopJoin(s1, s2, "k", "k", opts)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		equalMultiset(t, res.Tuples, want)
		switch mode {
		case PadNone:
			if res.PaddedCount != len(want) {
				t.Fatalf("PadNone padded to %d", res.PaddedCount)
			}
		case PadClosestPower:
			if res.PaddedCount != 8 {
				t.Fatalf("ClosestPower padded to %d, want 8", res.PaddedCount)
			}
		case PadCartesian:
			if res.PaddedCount != 15 {
				t.Fatalf("Cartesian padded to %d, want 15", res.PaddedCount)
			}
		}
		// Steps are padded against the padded result size.
		if res.PaddedSteps != NumtrINLJ(5, int64(res.PaddedCount)) {
			t.Fatalf("%v: padded steps %d", mode, res.PaddedSteps)
		}
	}
}

// TestPaddedTraceHidesRealSize: with ClosestPower padding, two runs whose
// real sizes land in the same power bucket must be indistinguishable.
func TestPaddedTraceHidesRealSize(t *testing.T) {
	run := func(k1, k2 []int64) []storage.Access {
		m := storage.NewMeter()
		s1, s2, _, _ := storePair(t, k1, k2, m)
		m.Reset()
		m.SetTracing(true)
		opts := testJoinOpts(t, m)
		opts.Padding = PadClosestPower
		if _, err := IndexNestedLoopJoin(s1, s2, "k", "k", opts); err != nil {
			t.Fatal(err)
		}
		return m.Trace()
	}
	// |R| = 3 and |R| = 4 both pad to 4.
	a := run([]int64{1, 2, 3, 4}, []int64{1, 2, 3}) // R=3
	b := run([]int64{1, 2, 3, 3}, []int64{1, 2, 3}) // R=4
	if len(a) != len(b) {
		t.Fatalf("padded traces differ in length: %d vs %d", len(a), len(b))
	}
}

// TestPrefetchGatedByPadding: pad-loop coalescing switches the round shape
// at the executed step count, which only the non-padded mode declares as
// leakage, so every padding mode that hides the real result size must force
// the depth back to 1.
func TestPrefetchGatedByPadding(t *testing.T) {
	for _, tc := range []struct {
		mode PaddingMode
		want int
	}{
		{PadNone, 8},
		{PadClosestPower, 1},
		{PadCartesian, 1},
		{PadDP, 1},
	} {
		o := Options{PrefetchDepth: 8, Padding: tc.mode}
		if got := o.prefetch(); got != tc.want {
			t.Errorf("%v: prefetch depth %d, want %d", tc.mode, got, tc.want)
		}
	}
	if got := (Options{}).prefetch(); got != 1 {
		t.Errorf("zero options: prefetch depth %d, want 1", got)
	}
}

// TestPaddedPrefetchGated: with a padding mode that hides the real result
// size, setting PrefetchDepth must not change the server's view at all —
// otherwise the access index where batched rounds begin would reveal the
// pre-padding step count (and with it the real result size) that the pad
// target exists to hide. Two runs in the same power bucket must stay
// identical op-for-op and round-for-round.
func TestPaddedPrefetchGated(t *testing.T) {
	run := func(k1, k2 []int64) ([]storage.Access, storage.Stats) {
		m := storage.NewMeter()
		s1, s2, _, _ := storePair(t, k1, k2, m)
		m.Reset()
		m.SetTracing(true)
		opts := testJoinOpts(t, m)
		opts.Padding = PadClosestPower
		opts.PrefetchDepth = 8
		if _, err := IndexNestedLoopJoin(s1, s2, "k", "k", opts); err != nil {
			t.Fatal(err)
		}
		return m.Trace(), m.Snapshot()
	}
	// |R| = 3 and |R| = 4 both pad to 4, so the executed step counts differ
	// while every public size matches.
	a, sa := run([]int64{1, 2, 3, 4}, []int64{1, 2, 3}) // R=3
	b, sb := run([]int64{1, 2, 3, 3}, []int64{1, 2, 3}) // R=4
	if len(a) != len(b) {
		t.Fatalf("padded traces differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Store != b[i].Store || a[i].Kind != b[i].Kind || a[i].Bytes != b[i].Bytes {
			t.Fatalf("trace op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if sa.NetworkRounds != sb.NetworkRounds {
		t.Fatalf("round counts differ: %d vs %d — the batching boundary leaks the step count",
			sa.NetworkRounds, sb.NetworkRounds)
	}
}

func TestOneORAMBinaryJoins(t *testing.T) {
	m := storage.NewMeter()
	r1 := makeRel("t1", []int64{1, 2, 2, 3, 5, 5})
	r2 := makeRel("t2", []int64{2, 2, 3, 5, 8})
	tables, shared, err := table.StoreShared(
		[]*relation.Relation{r1, r2},
		map[string][]string{"t1": {"k"}, "t2": {"k"}},
		testTableOpts(t, m, false),
	)
	if err != nil {
		t.Fatal(err)
	}
	opts := testJoinOpts(t, m)
	opts.OneORAM = shared

	want := ReferenceEquiJoin(r1, r2, "k", "k")
	res, err := SortMergeJoin(tables["t1"], tables["t2"], "k", "k", opts)
	if err != nil {
		t.Fatal(err)
	}
	equalMultiset(t, res.Tuples, want)
	if res.Retrievals != NumtrOneSortMerge(6, 5, int64(len(want))) {
		t.Fatalf("one-smj retrievals %d, want %d", res.Retrievals, NumtrOneSortMerge(6, 5, int64(len(want))))
	}

	res, err = IndexNestedLoopJoin(tables["t1"], tables["t2"], "k", "k", opts)
	if err != nil {
		t.Fatal(err)
	}
	equalMultiset(t, res.Tuples, want)
	if res.Retrievals != NumtrOneINLJ(6, int64(len(want))) {
		t.Fatalf("one-inlj retrievals %d, want %d", res.Retrievals, NumtrOneINLJ(6, int64(len(want))))
	}

	wantBand := ReferenceBandJoin(r1, r2, "k", "k", BandLess)
	res, err = BandJoin(tables["t1"], tables["t2"], "k", "k", BandLess, opts)
	if err != nil {
		t.Fatal(err)
	}
	equalMultiset(t, res.Tuples, wantBand)
}

func TestJoinStatsPopulated(t *testing.T) {
	m := storage.NewMeter()
	s1, s2, _, _ := storePair(t, []int64{1, 2, 3}, []int64{2, 3, 4}, m)
	m.Reset()
	res, err := SortMergeJoin(s1, s2, "k", "k", testJoinOpts(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BlocksMoved() == 0 || res.Stats.NetworkRounds == 0 {
		t.Fatalf("stats empty: %+v", res.Stats)
	}
}

// TestTheoremsQuick drives Theorems 1-3 with testing/quick generated keys.
func TestTheoremsQuick(t *testing.T) {
	f := func(a, b []uint8) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		k1 := make([]int64, len(a))
		k2 := make([]int64, len(b))
		for i, v := range a {
			k1[i] = int64(v % 5)
		}
		for i, v := range b {
			k2[i] = int64(v % 5)
		}
		s1, s2, r1, r2 := storePair(t, k1, k2, nil)
		want := int64(len(ReferenceEquiJoin(r1, r2, "k", "k")))
		smj, err := SortMergeJoin(s1, s2, "k", "k", testJoinOpts(t, nil))
		if err != nil || smj.Steps != NumtrSortMerge(int64(len(k1)), int64(len(k2)), want) {
			return false
		}
		inlj, err := IndexNestedLoopJoin(s1, s2, "k", "k", testJoinOpts(t, nil))
		if err != nil || inlj.Steps != NumtrINLJ(int64(len(k1)), want) {
			return false
		}
		bandWant := int64(len(ReferenceBandJoin(r1, r2, "k", "k", BandGreaterEq)))
		band, err := BandJoin(s1, s2, "k", "k", BandGreaterEq, testJoinOpts(t, nil))
		return err == nil && band.Steps == NumtrBand(int64(len(k1)), bandWant)
	}
	cfg := &quick.Config{MaxCount: 15, Rand: mrand.New(mrand.NewSource(83))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPadDP(t *testing.T) {
	s1, s2, r1, r2 := storePair(t, []int64{1, 2, 2, 3, 9}, []int64{2, 2, 3}, nil)
	want := ReferenceEquiJoin(r1, r2, "k", "k") // 5 records
	opts := testJoinOpts(t, nil)
	opts.Padding = PadDP
	opts.DPEpsilon = 0.5
	// Deterministic noise for the test.
	opts.DPRand = func() float64 { return 0.25 }
	res, err := IndexNestedLoopJoin(s1, s2, "k", "k", opts)
	if err != nil {
		t.Fatal(err)
	}
	equalMultiset(t, res.Tuples, want)
	if res.PaddedCount <= res.RealCount {
		t.Fatalf("DP padding added no noise: real %d padded %d", res.RealCount, res.PaddedCount)
	}
	if res.PaddedCount > 15 { // capped at the Cartesian product
		t.Fatalf("DP padding exceeded Cartesian: %d", res.PaddedCount)
	}
	if res.PaddedSteps != NumtrINLJ(5, int64(res.PaddedCount)) {
		t.Fatalf("steps %d for padded %d", res.PaddedSteps, res.PaddedCount)
	}
}

func TestDPNoiseDistribution(t *testing.T) {
	// With crypto-backed noise, draws are positive and epsilon controls the
	// scale: smaller epsilon yields larger mean noise.
	tight := Options{Padding: PadDP, DPEpsilon: 2.0}
	loose := Options{Padding: PadDP, DPEpsilon: 0.1}
	sum := func(o Options) int64 {
		var s int64
		for i := 0; i < 400; i++ {
			n := o.dpNoise()
			if n < 1 {
				t.Fatalf("non-positive noise %d", n)
			}
			s += n
		}
		return s
	}
	if st, sl := sum(tight), sum(loose); sl <= st {
		t.Fatalf("eps=0.1 total noise %d not larger than eps=2.0 total %d", sl, st)
	}
}

func TestSortMergeJoinChained(t *testing.T) {
	r := mrand.New(mrand.NewSource(107))
	for trial := 0; trial < 8; trial++ {
		n1, n2 := 1+r.Intn(25), 1+r.Intn(25)
		k1 := make([]int64, n1)
		k2 := make([]int64, n2)
		for i := range k1 {
			k1[i] = int64(r.Intn(7))
		}
		for i := range k2 {
			k2[i] = int64(r.Intn(7))
		}
		r1, r2 := makeRel("t1", k1), makeRel("t2", k2)
		opts := testTableOpts(t, nil, false)
		c1, err := table.StoreChained(r1, "k", opts)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := table.StoreChained(r2, "k", opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SortMergeJoinChained(c1, c2, testJoinOpts(t, nil))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := ReferenceEquiJoin(r1, r2, "k", "k")
		equalMultiset(t, res.Tuples, want)
		if res.Steps != NumtrSortMerge(int64(n1), int64(n2), int64(len(want))) {
			t.Fatalf("trial %d: steps %d, theorem %d", trial, res.Steps, NumtrSortMerge(int64(n1), int64(n2), int64(len(want))))
		}
	}
}

// TestChainedCheaperPerRetrieval: the index-free layout pays one ORAM
// access per retrieval against the indexed layout's two.
func TestChainedCheaperPerRetrieval(t *testing.T) {
	k1 := []int64{1, 2, 2, 3, 4, 5, 5, 6}
	k2 := []int64{2, 3, 3, 5, 7, 8, 9, 9}
	mi := storage.NewMeter()
	s1, s2, _, _ := storePair(t, k1, k2, mi)
	mi.Reset()
	indexed, err := SortMergeJoin(s1, s2, "k", "k", testJoinOpts(t, mi))
	if err != nil {
		t.Fatal(err)
	}
	mc := storage.NewMeter()
	opts := testTableOpts(t, mc, false)
	r1, r2 := makeRel("t1", k1), makeRel("t2", k2)
	c1, err := table.StoreChained(r1, "k", opts)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := table.StoreChained(r2, "k", opts)
	if err != nil {
		t.Fatal(err)
	}
	mc.Reset()
	chained, err := SortMergeJoinChained(c1, c2, testJoinOpts(t, mc))
	if err != nil {
		t.Fatal(err)
	}
	if chained.RealCount != indexed.RealCount || chained.PaddedSteps != indexed.PaddedSteps {
		t.Fatalf("results diverge: %d/%d vs %d/%d",
			chained.RealCount, chained.PaddedSteps, indexed.RealCount, indexed.PaddedSteps)
	}
	if chained.Stats.NetworkRounds >= indexed.Stats.NetworkRounds {
		t.Fatalf("chained rounds %d >= indexed %d", chained.Stats.NetworkRounds, indexed.Stats.NetworkRounds)
	}
}
