package core

import (
	"fmt"

	"oblivjoin/internal/table"
)

// BandJoin computes T1 ⋈ T2 on a1 OP a2 (OP ∈ {<, <=, >, >=}) with the
// paper's oblivious index nested-loop band join (Section 5.3): T1 is
// scanned sequentially; for ">"-type predicates the T2 cursor starts at the
// first index entry and walks forward while the predicate holds, for
// "<"-type predicates it starts at the last entry and walks backward.
// Retrievals from the two tables stay in lock-step with dummies, one output
// record per join step, padded to Theorem 3's bound |T1| + |R|.
func BandJoin(t1, t2 *table.StoredTable, a1, a2 string, op BandOp, opts Options) (*Result, error) {
	start := snapshot(opts.Meter)
	sp := opts.span("join.band")
	sp.SetAttr("n1", int64(t1.NumTuples()))
	sp.SetAttr("n2", int64(t2.NumTuples()))
	defer sp.End()
	load := sp.Child("load")
	col1 := t1.Schema().MustCol(a1)
	scan := table.NewScanCursor(t1)
	ic, err := table.NewIndexCursor(t2, a2)
	if err != nil {
		return nil, err
	}
	w, err := newOutWriter(fmt.Sprintf("%s⋈%s", t1.Schema().Table, t2.Schema().Table),
		opts, t1.Schema(), t2.Schema())
	if err != nil {
		return nil, err
	}
	load.End()
	var padder *onePadder
	scanCost := 1
	seekCost := ic.Tree().AccessesPerRetrieval() + 1
	if opts.OneORAM != nil {
		padder = &onePadder{opts: opts, max: max(scanCost, seekCost)}
	}
	one := padder != nil
	ascending := op == BandGreater || op == BandGreaterEq
	lastOrd := ic.Tree().NumEntries() - 1

	scanSpan := sp.Child("scan")
	var steps, retrievals int64
	for i := 0; i < t1.NumTuples(); i++ {
		steps++
		retrievals += 2
		row1, err := scan.Next()
		if err != nil {
			return nil, err
		}
		if err := padder.pad(scanCost); err != nil {
			return nil, err
		}
		if !row1.OK {
			return nil, fmt.Errorf("core: scan of %s ended early at %d", t1.Schema().Table, i)
		}
		key := row1.Tuple.Values[col1]
		var row2 table.Row
		if ascending {
			row2, err = ic.SeekOrdGE(0)
		} else {
			row2, err = ic.SeekOrdLE(lastOrd)
		}
		if err != nil {
			return nil, err
		}
		if err := padder.pad(seekCost); err != nil {
			return nil, err
		}
		for row2.OK && op.Matches(key, row2.Entry.Key) {
			if err := w.putJoin(row1.Tuple, row2.Tuple); err != nil {
				return nil, err
			}
			steps++
			retrievals++
			if !one {
				if err := scan.Dummy(); err != nil {
					return nil, err
				}
			}
			if ascending {
				row2, err = ic.Next()
			} else {
				row2, err = ic.Prev()
			}
			if err != nil {
				return nil, err
			}
			if err := padder.pad(seekCost); err != nil {
				return nil, err
			}
		}
		if err := w.putDummy(); err != nil {
			return nil, err
		}
	}
	scanSpan.SetAttr("steps", steps)
	scanSpan.End()

	n1, n2 := int64(t1.NumTuples()), int64(t2.NumTuples())
	cart := Cartesian(n1, n2)
	paddedR := opts.PadSize(int64(w.real), cart)
	target := NumtrBand(n1, paddedR)
	if steps > target {
		return nil, fmt.Errorf("core: band join executed %d steps, exceeding the Theorem 3 bound %d", steps, target)
	}
	pad := sp.Child("pad")
	pad.SetAttr("steps", steps)
	pad.SetAttr("target", target)
	padded := steps
	if depth := opts.prefetch(); depth <= 1 {
		for ; padded < target; padded++ {
			retrievals++
			if one {
				if err := padder.dummyRetrieval(); err != nil {
					return nil, err
				}
			} else {
				if err := scan.Dummy(); err != nil {
					return nil, err
				}
				if err := ic.Dummy(); err != nil {
					return nil, err
				}
			}
			if err := w.putDummy(); err != nil {
				return nil, err
			}
		}
	} else {
		var chunks int64
		for padded < target {
			chunk := padChunk(depth, target-padded)
			chunks++
			retrievals += int64(chunk)
			if one {
				if err := padder.dummyRetrievalBatch(chunk); err != nil {
					return nil, err
				}
			} else {
				if err := scan.DummyBatch(chunk); err != nil {
					return nil, err
				}
				if err := ic.DummyBatch(chunk); err != nil {
					return nil, err
				}
			}
			for i := 0; i < chunk; i++ {
				if err := w.putDummy(); err != nil {
					return nil, err
				}
			}
			padded += int64(chunk)
		}
		pad.SetAttr("chunks", chunks)
	}
	pad.End()

	if err := settle(sp, opts, t1, t2); err != nil {
		return nil, err
	}
	tuples, real, paddedOut, err := w.finish(opts, cart, sp)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Schema:      w.schema,
		Tuples:      tuples,
		RealCount:   real,
		PaddedCount: paddedOut,
		Steps:       steps,
		PaddedSteps: padded,
		Retrievals:  padded,
		Stats:       diff(opts.Meter, start),
	}
	if one {
		res.Retrievals = retrievals
	}
	return res, nil
}
