package core

import (
	"fmt"

	"oblivjoin/internal/obtree"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/table"
)

// IndexNestedLoopJoinObliviousIndex is Algorithm 2 instantiated with the
// Section 4.2 oblivious B-tree as the inner index — the paper's claim that
// "other types of indices also work for our method, as long as they support
// both point and range queries obliviously", made concrete. T1 is an
// ordinary stored table scanned sequentially; T2 lives entirely inside an
// oblivious B-tree (clustered: tuples embedded in leaf entries, the client
// holding only the root position tag).
//
// Step structure and the Theorem 2 bound are identical to the ORAM+B-tree
// INLJ: each join step performs one T1 data access and one fixed-length
// oblivious-tree descent, padded to |T1| + |R| steps.
func IndexNestedLoopJoinObliviousIndex(t1 *table.StoredTable, a1 string, t2 *obtree.Tree, t2Schema relation.Schema, opts Options) (*Result, error) {
	start := snapshot(opts.Meter)
	sp := opts.span("join.inlj.obtree")
	sp.SetAttr("n1", int64(t1.NumTuples()))
	sp.SetAttr("n2", t2.NumEntries())
	defer sp.End()
	load := sp.Child("load")
	col1 := t1.Schema().MustCol(a1)
	scan := table.NewScanCursor(t1)
	w, err := newOutWriter(fmt.Sprintf("%s⋈%s", t1.Schema().Table, t2Schema.Table),
		opts, t1.Schema(), t2Schema)
	if err != nil {
		return nil, err
	}
	load.End()
	decode := func(e obtree.Entry) (relation.Tuple, error) {
		tu, ok, derr := relation.Decode(t2Schema, e.Value)
		if derr != nil || !ok {
			return relation.Tuple{}, fmt.Errorf("core: oblivious-index entry ord %d invalid (%v)", e.Ord, derr)
		}
		return tu, nil
	}

	scanSpan := sp.Child("scan")
	var steps int64
	for i := 0; i < t1.NumTuples(); i++ {
		steps++
		row1, err := scan.Next()
		if err != nil {
			return nil, err
		}
		if !row1.OK {
			return nil, fmt.Errorf("core: scan of %s ended early at %d", t1.Schema().Table, i)
		}
		key := row1.Tuple.Values[col1]
		e, ok, err := t2.LookupGE(key)
		if err != nil {
			return nil, err
		}
		for ok && e.Key == key {
			tu, err := decode(e)
			if err != nil {
				return nil, err
			}
			if err := w.putJoin(row1.Tuple, tu); err != nil {
				return nil, err
			}
			steps++
			if err := t1.DummyData(); err != nil {
				return nil, err
			}
			if e, ok, err = t2.LookupOrdGE(e.Ord + 1); err != nil {
				return nil, err
			}
		}
		if err := w.putDummy(); err != nil {
			return nil, err
		}
	}

	scanSpan.SetAttr("steps", steps)
	scanSpan.End()

	n1 := int64(t1.NumTuples())
	cart := Cartesian(n1, t2.NumEntries())
	paddedR := opts.PadSize(int64(w.real), cart)
	target := NumtrINLJ(n1, paddedR)
	if steps > target {
		return nil, fmt.Errorf("core: oblivious-index INLJ executed %d steps, exceeding the Theorem 2 bound %d", steps, target)
	}
	pad := sp.Child("pad")
	pad.SetAttr("steps", steps)
	pad.SetAttr("target", target)
	padded := steps
	if depth := opts.prefetch(); depth <= 1 {
		for ; padded < target; padded++ {
			if err := scan.Dummy(); err != nil {
				return nil, err
			}
			if err := t2.DummyLookup(); err != nil {
				return nil, err
			}
			if err := w.putDummy(); err != nil {
				return nil, err
			}
		}
	} else {
		// Only reached in PadNone, where `steps` is declared leakage (see
		// Options.prefetch). T1's dummy scans coalesce; the oblivious-tree
		// descents stay sequential (each level's fetch depends on the
		// previous one).
		var chunks int64
		for padded < target {
			chunk := padChunk(depth, target-padded)
			chunks++
			if err := scan.DummyBatch(chunk); err != nil {
				return nil, err
			}
			for i := 0; i < chunk; i++ {
				if err := t2.DummyLookup(); err != nil {
					return nil, err
				}
				if err := w.putDummy(); err != nil {
					return nil, err
				}
			}
			padded += int64(chunk)
		}
		pad.SetAttr("chunks", chunks)
	}
	pad.End()

	if err := settle(sp, opts, t1); err != nil {
		return nil, err
	}
	tuples, real, paddedOut, err := w.finish(opts, cart, sp)
	if err != nil {
		return nil, err
	}
	return &Result{
		Schema:      w.schema,
		Tuples:      tuples,
		RealCount:   real,
		PaddedCount: paddedOut,
		Steps:       steps,
		PaddedSteps: padded,
		Retrievals:  padded,
		Stats:       diff(opts.Meter, start),
	}, nil
}

// BuildObliviousIndex stores a relation as a clustered oblivious B-tree
// keyed on attr, ready for IndexNestedLoopJoinObliviousIndex.
func BuildObliviousIndex(rel *relation.Relation, attr string, store *obtree.Config) (*obtree.Tree, error) {
	col := rel.Schema.Col(attr)
	if col < 0 {
		return nil, fmt.Errorf("core: %s has no column %q", rel.Schema.Table, attr)
	}
	items := make([]obtree.Item, len(rel.Tuples))
	buf := make([]byte, rel.Schema.TupleSize())
	for i, tu := range rel.Tuples {
		if err := relation.Encode(rel.Schema, tu, buf); err != nil {
			return nil, err
		}
		items[i] = obtree.Item{Key: tu.Values[col], Value: append([]byte(nil), buf...)}
	}
	cfg := *store
	cfg.ValueSize = rel.Schema.TupleSize()
	return obtree.Build(cfg, items)
}
