package core

import (
	"fmt"
	mrand "math/rand"
	"testing"

	"oblivjoin/internal/table"
)

// BenchmarkSortMergeJoin runs the full oblivious sort-merge join with the
// output compaction's sort engine at different worker-pool sizes. The sort
// dominates the join's trusted-side compute, so this shows how far the
// SortWorkers knob moves end-to-end join latency.
func BenchmarkSortMergeJoin(b *testing.B) {
	const n = 96
	r := mrand.New(mrand.NewSource(4))
	k1 := make([]int64, n)
	k2 := make([]int64, n)
	for i := range k1 {
		k1[i] = int64(r.Intn(n / 2))
		k2[i] = int64(r.Intn(n / 2))
	}
	topts := testTableOpts(b, nil, false)
	s1, err := table.Store(makeRel("t1", k1), []string{"k"}, topts)
	if err != nil {
		b.Fatal(err)
	}
	s2, err := table.Store(makeRel("t2", k2), []string{"k"}, topts)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 4, 8} {
		opts := testJoinOpts(b, nil)
		opts.SortWorkers = w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SortMergeJoin(s1, s2, "k", "k", opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
