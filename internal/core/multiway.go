package core

import (
	"fmt"

	"oblivjoin/internal/jointree"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/table"
)

// MultiwayInput binds the stored tables to a join tree: Tables[i] is the
// table of tree.Order[i] (pre-order; Tables[0] is the root). Every non-root
// table needs a WriteBackDescents index on its Order[i].Attr attribute.
type MultiwayInput struct {
	Tree   *jointree.Tree
	Tables []*table.StoredTable
}

// MultiwayJoin computes the acyclic multiway equi-join of Section 6.
//
// The root table is scanned sequentially; every other table is probed
// through a B-tree descent per retrieval. Each join step retrieves one
// (real or dummy) tuple from every table in pre-order and writes exactly
// one output record. Tuples that can no longer contribute are disabled in
// their index with an operation indistinguishable from a retrieval
// (Observations 1 and 2); Observation 3's same-key tag avoids retrievals
// past the end of a key run. Steps are padded to Theorem 4's bound
// |T1| + 2·Σ_{j≥2}|Tj| + |R|, and all liveness tags are reset by a final
// pass over the index blocks.
func MultiwayJoin(in MultiwayInput, opts Options) (*Result, error) {
	if in.Tree == nil || len(in.Tables) != in.Tree.Len() {
		return nil, fmt.Errorf("core: multiway input needs one table per join-tree node")
	}
	l := in.Tree.Len()
	if l < 2 {
		return nil, fmt.Errorf("core: multiway join needs at least 2 tables")
	}
	start := snapshot(opts.Meter)
	sp := opts.span("join.multiway")
	sp.SetAttr("tables", int64(l))
	defer sp.End()

	load := sp.Child("load")
	m, err := newMultiwayState(in, opts)
	if err != nil {
		return nil, err
	}
	load.End()
	scan := sp.Child("scan")
	if err := m.run(); err != nil {
		return nil, err
	}
	scan.SetAttr("steps", m.steps)
	scan.End()

	// Pad steps to the Theorem 4 bound for the padded output size.
	sizes := make([]int64, l)
	for i, t := range in.Tables {
		sizes[i] = int64(t.NumTuples())
	}
	cart := Cartesian(sizes...)
	paddedR := opts.PadSize(int64(m.w.real), cart)
	target := NumtrMultiway(sizes, paddedR)
	rawSteps := m.steps
	exceeded := rawSteps > target
	pad := sp.Child("pad")
	pad.SetAttr("steps", rawSteps)
	pad.SetAttr("target", target)
	// The multiway pad loop never coalesces, regardless of PrefetchDepth:
	// unlike Theorems 1–3, the executed step count here is not an exact
	// function of the input sizes and the result size (the Observation 3
	// corner can shift it), so there is no padding mode under which the
	// index where batched rounds would begin is public. Dummy steps stay
	// sequential and round-for-round identical to real ones.
	padded := rawSteps
	for ; padded < target; padded++ {
		if err := m.dummyStep(); err != nil {
			return nil, err
		}
		if err := m.w.putDummy(); err != nil {
			return nil, err
		}
	}
	pad.End()

	tuples, real, paddedOut, err := m.w.finish(opts, cart, sp)
	if err != nil {
		return nil, err
	}

	// The paper's post-query cleanup: "go over all index blocks and reset
	// boolean tags in each entry."
	if !opts.SkipReset {
		reset := sp.Child("reset")
		for _, t := range in.Tables[1:] {
			if err := t.ResetIndexes(); err != nil {
				return nil, err
			}
		}
		reset.End()
	}

	// Settle after the reset pass so its index writes are flushed too.
	fs := make([]flusher, len(in.Tables))
	for i, t := range in.Tables {
		fs[i] = t
	}
	if err := settle(sp, opts, fs...); err != nil {
		return nil, err
	}

	res := &Result{
		Schema:        m.w.schema,
		Tuples:        tuples,
		RealCount:     real,
		PaddedCount:   paddedOut,
		Steps:         rawSteps,
		PaddedSteps:   padded,
		Retrievals:    padded,
		BoundExceeded: exceeded,
		Stats:         diff(opts.Meter, start),
	}
	if m.padder != nil {
		res.Retrievals = padded * int64(l)
	}
	return res, nil
}

// multiwayState drives the step machine.
type multiwayState struct {
	in      MultiwayInput
	opts    Options
	l       int
	scan    *table.ScanCursor
	cursors []*table.IndexCursor // 1..l-1
	costs   []int                // per-table retrieval access counts
	padder  *onePadder

	cur        []table.Row
	parentCols []int // column of Order[j].ParentAttr in the parent's schema
	rootSeen   int

	// exhausted memoizes "entry ord of table j has no live same-key
	// successor", learned from advance lookups that came back empty, so the
	// discovery step is never repeated (client-side memory only).
	exhausted []map[int64]bool
	// disabledSameNext records, for every entry this query disabled, its
	// SameNext tag. The client performed each disable itself, so it can walk
	// a run's disabled chain for free and skip advance steps that could only
	// discover exhaustion (keeping the step count at the paper's Figure 6
	// walkthrough level).
	disabledSameNext []map[int64]bool

	steps int64
	w     *outWriter
}

func newMultiwayState(in MultiwayInput, opts Options) (*multiwayState, error) {
	l := in.Tree.Len()
	m := &multiwayState{
		in:               in,
		opts:             opts,
		l:                l,
		scan:             table.NewScanCursor(in.Tables[0]),
		cursors:          make([]*table.IndexCursor, l),
		costs:            make([]int, l),
		cur:              make([]table.Row, l),
		parentCols:       make([]int, l),
		exhausted:        make([]map[int64]bool, l),
		disabledSameNext: make([]map[int64]bool, l),
	}
	m.costs[0] = 1
	maxCost := 1
	schemas := make([]relation.Schema, l)
	var names string
	for j := 0; j < l; j++ {
		node := in.Tree.Order[j]
		st := in.Tables[j]
		if st.Schema().Table != node.Table {
			return nil, fmt.Errorf("core: table %d is %q, join tree expects %q", j, st.Schema().Table, node.Table)
		}
		schemas[j] = st.Schema()
		if j > 0 {
			names += "⋈"
			ic, err := table.NewIndexCursor(st, node.Attr)
			if err != nil {
				return nil, err
			}
			m.cursors[j] = ic
			m.costs[j] = ic.Tree().AccessesPerRetrieval() + 1
			if m.costs[j] > maxCost {
				maxCost = m.costs[j]
			}
			m.parentCols[j] = in.Tables[node.Parent].Schema().MustCol(node.ParentAttr)
			m.exhausted[j] = make(map[int64]bool)
			m.disabledSameNext[j] = make(map[int64]bool)
		}
		names += node.Table
	}
	if opts.OneORAM != nil {
		m.padder = &onePadder{opts: opts, max: maxCost}
	}
	w, err := newOutWriter(names, opts, schemas...)
	if err != nil {
		return nil, err
	}
	m.w = w
	return m, nil
}

// stepOp is the action one table performs within a join step.
type stepOp func() error

// execStep runs one join step: each table, in pre-order, performs its
// scheduled op or a dummy retrieval, then one output record is written by
// the caller. The per-table access pattern is identical in every step.
func (m *multiwayState) execStep(ops []stepOp) error {
	m.steps++
	for j := 0; j < m.l; j++ {
		var err error
		if ops != nil && ops[j] != nil {
			err = ops[j]()
		} else if j == 0 {
			err = m.scan.Dummy()
		} else {
			err = m.cursors[j].Dummy()
		}
		if err != nil {
			return fmt.Errorf("core: step %d table %d: %w", m.steps, j, err)
		}
		if err := m.padder.pad(m.costs[j]); err != nil {
			return err
		}
	}
	return nil
}

// dummyStep is an all-dummy padding step.
func (m *multiwayState) dummyStep() error { return m.execStep(nil) }

// targetKey returns the join key position j must match: the parent's
// current attribute value.
func (m *multiwayState) targetKey(j int) int64 {
	parent := m.in.Tree.Order[j].Parent
	return m.cur[parent].Tuple.Values[m.parentCols[j]]
}

// action is the pending next step of the machine.
type action struct {
	kind    int // aAdvance, aDisable, aDone
	pos     int
	disable int64 // ordinal to disable (aDisable)
}

const (
	aAdvance = iota // advance position pos (0 = root), then refill below
	aDisable        // disable ordinal `disable` in table pos, then advance pos
	aDone
)

// hasLiveSuccessor reports whether position j's current entry has a live
// same-key successor, using only client-side knowledge: Observation 3's
// SameNext tag, the exhaustion memo, and the SameNext tags of entries this
// query itself disabled (walked as a chain).
func (m *multiwayState) hasLiveSuccessor(j int) bool {
	if !m.cur[j].OK {
		return false
	}
	e := m.cur[j].Entry
	if m.exhausted[j][e.Ord] {
		return false
	}
	sameNext, ord := e.SameNext, e.Ord
	for sameNext {
		sn, dead := m.disabledSameNext[j][ord+1]
		if !dead {
			return true // ord+1 is live and carries the same key
		}
		sameNext, ord = sn, ord+1
	}
	return false
}

// scheduleAdvance resolves the free (client-side) exhaustion cascade: if
// position a cannot have further matches — known from Observation 3's
// same-key tag, the memo, or the disabled chain — fall back to its
// pre-order predecessor without spending a join step.
func (m *multiwayState) scheduleAdvance(a int) action {
	for {
		if a == 0 {
			if m.rootSeen >= m.in.Tables[0].NumTuples() {
				return action{kind: aDone}
			}
			return action{kind: aAdvance, pos: 0}
		}
		if m.hasLiveSuccessor(a) {
			return action{kind: aAdvance, pos: a}
		}
		a--
	}
}

// run executes the main join loop.
func (m *multiwayState) run() error {
	next := m.scheduleAdvance(0)
	for next.kind != aDone {
		switch next.kind {
		case aDisable:
			j := next.pos
			ord := next.disable
			m.disabledSameNext[j][ord] = m.cur[j].Entry.SameNext
			ops := make([]stepOp, m.l)
			ops[j] = func() error { return m.cursors[j].Disable(ord) }
			if err := m.execStep(ops); err != nil {
				return err
			}
			if err := m.w.putDummy(); err != nil {
				return err
			}
			// The disabled entry is dead; try the rest of its key run.
			next = m.scheduleAdvance(j)

		case aAdvance:
			a := next.pos
			var err error
			next, err = m.advanceStep(a)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// advanceStep performs one join step that advances position a and refills
// every later pre-order position, emitting a real record on a complete
// match and a dummy otherwise. It returns the next action.
func (m *multiwayState) advanceStep(a int) (action, error) {
	ops := make([]stepOp, m.l)
	matched := true
	failAt := -1

	// Advance op for position a.
	if a == 0 {
		ops[0] = func() error {
			row, err := m.scan.Next()
			if err != nil {
				return err
			}
			if !row.OK {
				return fmt.Errorf("core: root scan ended early at %d", m.rootSeen)
			}
			m.rootSeen++
			m.cur[0] = row
			return nil
		}
	} else {
		target := m.targetKey(a)
		fromOrd := m.cur[a].Entry.Ord
		ops[a] = func() error {
			row, err := m.cursors[a].Next()
			if err != nil {
				return err
			}
			if row.OK && row.Entry.Key == target {
				m.cur[a] = row
				return nil
			}
			// No live same-key successor: memoize so the discovery step is
			// never repeated for this entry.
			m.exhausted[a][fromOrd] = true
			matched = false
			failAt = -2 // exhaustion, not a zero-match failure
			return nil
		}
	}

	// Refill ops for positions a+1 .. l-1 (executed in pre-order; they
	// observe `matched` as set by earlier ops in the same step).
	for j := a + 1; j < m.l; j++ {
		j := j
		ops[j] = func() error {
			if !matched {
				return m.cursors[j].Dummy()
			}
			target := m.targetKey(j)
			row, err := m.cursors[j].SeekGE(target)
			if err != nil {
				return err
			}
			if row.OK && row.Entry.Key == target {
				m.cur[j] = row
				return nil
			}
			// Zero live matches for the parent tuple: Observations 1/2.
			matched = false
			failAt = j
			return nil
		}
	}

	if err := m.execStep(ops); err != nil {
		return action{}, err
	}

	if matched {
		tuples := make([]relation.Tuple, m.l)
		for j := range tuples {
			tuples[j] = m.cur[j].Tuple
		}
		if err := m.w.putJoin(tuples...); err != nil {
			return action{}, err
		}
		return m.scheduleAdvance(m.l - 1), nil
	}
	if err := m.w.putDummy(); err != nil {
		return action{}, err
	}
	if failAt == -2 {
		// Position a exhausted its key run: odometer falls back to the
		// pre-order predecessor.
		return m.scheduleAdvance(a - 1), nil
	}
	// Refill failure at failAt: the parent tuple can never contribute.
	p := m.in.Tree.Order[failAt].Parent
	if p == 0 {
		// Root tuples are never physically disabled; the outer loop simply
		// moves on (Section 6, Observation 2 discussion).
		return m.scheduleAdvance(0), nil
	}
	return action{kind: aDisable, pos: p, disable: m.cur[p].Entry.Ord}, nil
}
