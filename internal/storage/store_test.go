package storage

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestMemStoreReadWrite(t *testing.T) {
	m := NewMeter()
	s := NewMemStore("t", 8, 32, m)
	if s.Len() != 8 || s.BlockSize() != 32 {
		t.Fatalf("geometry: len=%d bs=%d", s.Len(), s.BlockSize())
	}
	blk := bytes.Repeat([]byte{0xAB}, 32)
	if err := s.Write(3, blk); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blk) {
		t.Fatal("read back mismatch")
	}
	// Unwritten slots read as zeros.
	zero, err := s.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zero, make([]byte, 32)) {
		t.Fatal("fresh slot not zero")
	}
}

func TestMemStoreBounds(t *testing.T) {
	s := NewMemStore("t", 4, 16, nil)
	if _, err := s.Read(-1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read -1: %v", err)
	}
	if _, err := s.Read(4); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read 4: %v", err)
	}
	if err := s.Write(4, make([]byte, 16)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("write 4: %v", err)
	}
	if err := s.Write(0, make([]byte, 15)); err == nil {
		t.Error("short write accepted")
	}
}

func TestMemStoreReadReturnsCopy(t *testing.T) {
	s := NewMemStore("t", 1, 8, nil)
	if err := s.Write(0, []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Read(0)
	a[0] = 'X'
	b, _ := s.Read(0)
	if b[0] != '1' {
		t.Fatal("Read did not return a copy")
	}
}

func TestMeterCountsAndTrace(t *testing.T) {
	m := NewMeter()
	m.SetTracing(true)
	s := NewMemStore("data", 4, 16, m)
	blk := make([]byte, 16)
	if err := s.Write(1, blk); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(2); err != nil {
		t.Fatal(err)
	}
	m.CountRound()
	st := m.Snapshot()
	if st.BlockReads != 2 || st.BlockWrites != 1 {
		t.Fatalf("counts: %+v", st)
	}
	if st.BytesRead != 32 || st.BytesWritten != 16 {
		t.Fatalf("bytes: %+v", st)
	}
	if st.NetworkRounds != 1 {
		t.Fatalf("rounds: %+v", st)
	}
	if st.BlocksMoved() != 3 || st.BytesMoved() != 48 {
		t.Fatalf("aggregates: %+v", st)
	}
	tr := m.Trace()
	want := []Access{
		{Store: "data", Kind: KindWrite, Index: 1, Bytes: 16},
		{Store: "data", Kind: KindRead, Index: 1, Bytes: 16},
		{Store: "data", Kind: KindRead, Index: 2, Bytes: 16},
	}
	if len(tr) != len(want) {
		t.Fatalf("trace length %d", len(tr))
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Errorf("trace[%d] = %+v, want %+v", i, tr[i], want[i])
		}
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter()
	m.SetTracing(true)
	s := NewMemStore("x", 2, 8, m)
	_ = s.Write(0, make([]byte, 8))
	m.Reset()
	if st := m.Snapshot(); st != (Stats{}) {
		t.Fatalf("after reset: %+v", st)
	}
	if len(m.Trace()) != 0 {
		t.Fatal("trace survived reset")
	}
}

func TestStatsSubAdd(t *testing.T) {
	a := Stats{BlockReads: 10, BlockWrites: 5, BytesRead: 100, BytesWritten: 50, NetworkRounds: 3}
	b := Stats{BlockReads: 4, BlockWrites: 2, BytesRead: 40, BytesWritten: 20, NetworkRounds: 1}
	d := a.Sub(b)
	if d.BlockReads != 6 || d.BlockWrites != 3 || d.BytesRead != 60 || d.BytesWritten != 30 || d.NetworkRounds != 2 {
		t.Fatalf("sub: %+v", d)
	}
	if got := d.Add(b); got != a {
		t.Fatalf("add: %+v", got)
	}
}

func TestCostModel(t *testing.T) {
	cm := CostModel{BandwidthBps: 8e6, RTT: time.Millisecond} // 1 MB/s
	s := Stats{BytesRead: 500_000, BytesWritten: 500_000, NetworkRounds: 100}
	// 1 MB at 1 MB/s = 1 s, plus 100 ms latency.
	got := cm.Cost(s)
	want := time.Second + 100*time.Millisecond
	if got != want {
		t.Fatalf("cost = %v, want %v", got, want)
	}
	if sec := cm.CostSeconds(s); sec < 1.09 || sec > 1.11 {
		t.Fatalf("cost seconds = %v", sec)
	}
}

func TestCostModelZeroBandwidthDefaults(t *testing.T) {
	cm := CostModel{}
	s := Stats{BytesRead: 1e9 / 8}
	if got := cm.Cost(s); got != time.Second {
		t.Fatalf("default bandwidth cost = %v", got)
	}
}

func TestMemStoreConcurrentAccess(t *testing.T) {
	m := NewMeter()
	s := NewMemStore("c", 64, 16, m)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			blk := bytes.Repeat([]byte{byte(g)}, 16)
			for i := int64(0); i < 64; i++ {
				if err := s.Write(i, blk); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Read(i); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := m.Snapshot()
	if st.BlockReads != 8*64 || st.BlockWrites != 8*64 {
		t.Fatalf("concurrent counts: %+v", st)
	}
}

func TestMemStoreBatchOps(t *testing.T) {
	m := NewMeter()
	s := NewMemStore("b", 16, 8, m)
	idxs := []int64{3, 9, 1, 14}
	data := make([][]byte, len(idxs))
	for k := range idxs {
		data[k] = bytes.Repeat([]byte{byte(k + 1)}, 8)
	}
	if err := s.WriteMany(idxs, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadMany(idxs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range idxs {
		if !bytes.Equal(got[k], data[k]) {
			t.Fatalf("block %d mismatch", idxs[k])
		}
	}
	// Batch reads return copies.
	got[0][0] = 0xEE
	again, _ := s.Read(idxs[0])
	if again[0] != 1 {
		t.Fatal("ReadMany did not return copies")
	}
	// Each batch is one round with len(idxs) block accesses.
	st := m.Snapshot()
	if st.NetworkRounds != 2 {
		t.Fatalf("rounds %d, want 2", st.NetworkRounds)
	}
	if st.BlockReads != 4+1 || st.BlockWrites != 4 {
		t.Fatalf("counts: %+v", st)
	}
	// Errors: bounds, length mismatch, short block.
	if _, err := s.ReadMany([]int64{0, 99}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("batch read oob: %v", err)
	}
	if err := s.WriteMany([]int64{0, 99}, [][]byte{data[0], data[1]}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("batch write oob: %v", err)
	}
	if err := s.WriteMany([]int64{0}, data); err == nil {
		t.Fatal("mismatched batch lengths accepted")
	}
	if err := s.WriteMany([]int64{0}, [][]byte{{1, 2}}); err == nil {
		t.Fatal("short batch block accepted")
	}
	// A failed batch write is all-or-nothing: block 0 was not modified by
	// the out-of-range attempt above.
	if blk, _ := s.Read(0); !bytes.Equal(blk, make([]byte, 8)) {
		t.Fatal("failed batch write partially applied")
	}
	// Empty batches move nothing and cost nothing.
	before := m.Snapshot()
	if out, err := s.ReadMany(nil); err != nil || out != nil {
		t.Fatalf("empty read: %v %v", out, err)
	}
	if err := s.WriteMany(nil, nil); err != nil {
		t.Fatal(err)
	}
	if d := m.Snapshot().Sub(before); d != (Stats{}) {
		t.Fatalf("empty batch cost %+v", d)
	}
}

func TestMeterCountBatchTrace(t *testing.T) {
	m := NewMeter()
	m.SetTracing(true)
	m.CountBatch("tree", KindRead, []int64{5, 2, 8}, 16)
	m.CountBatch("tree", KindWrite, []int64{5, 2, 8}, 16)
	m.CountBatch("tree", KindRead, nil, 16) // no-op
	st := m.Snapshot()
	if st.NetworkRounds != 2 {
		t.Fatalf("rounds %d, want 2", st.NetworkRounds)
	}
	if st.BlockReads != 3 || st.BlockWrites != 3 || st.BytesRead != 48 || st.BytesWritten != 48 {
		t.Fatalf("counts: %+v", st)
	}
	tr := m.Trace()
	if len(tr) != 6 {
		t.Fatalf("trace length %d, want 6", len(tr))
	}
	want := []Access{
		{Store: "tree", Kind: KindRead, Index: 5, Bytes: 16},
		{Store: "tree", Kind: KindRead, Index: 2, Bytes: 16},
		{Store: "tree", Kind: KindRead, Index: 8, Bytes: 16},
		{Store: "tree", Kind: KindWrite, Index: 5, Bytes: 16},
		{Store: "tree", Kind: KindWrite, Index: 2, Bytes: 16},
		{Store: "tree", Kind: KindWrite, Index: 8, Bytes: 16},
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("trace[%d] = %+v, want %+v", i, tr[i], want[i])
		}
	}
}

// TestMeterConcurrent hammers one Meter from many goroutines across every
// entry point; run with -race this is the regression test for the batch
// accounting's lock discipline.
func TestMeterConcurrent(t *testing.T) {
	m := NewMeter()
	m.SetTracing(true)
	const goroutines, iters = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			idxs := []int64{int64(g), int64(g + 1)}
			for i := 0; i < iters; i++ {
				m.countRead("s", int64(i), 8)
				m.countWrite("s", int64(i), 8)
				m.CountBatch("s", KindRead, idxs, 8)
				m.CountBatch("s", KindWrite, idxs, 8)
				m.CountRound()
				_ = m.Snapshot()
				if i%50 == 0 {
					_ = m.Trace()
				}
			}
		}(g)
	}
	wg.Wait()
	st := m.Snapshot()
	wantOps := int64(goroutines * iters * 3) // 1 single + 2 batched per iter
	if st.BlockReads != wantOps || st.BlockWrites != wantOps {
		t.Fatalf("counts: %+v, want %d each", st, wantOps)
	}
	if st.NetworkRounds != int64(goroutines*iters*3) { // 2 batches + 1 CountRound
		t.Fatalf("rounds: %d", st.NetworkRounds)
	}
	if len(m.Trace()) != int(wantOps*2) {
		t.Fatalf("trace length %d", len(m.Trace()))
	}
}

func TestAccessKindString(t *testing.T) {
	if KindRead.String() != "read" || KindWrite.String() != "write" {
		t.Fatal("AccessKind strings")
	}
}
