// Package storage simulates the untrusted cloud block server that backs the
// oblivious join engine.
//
// In the paper the server is a MongoDB instance that "only serves as the
// backend storage but does not provide any other computations or
// optimizations" (Section 9.1). We therefore model it as a flat array of
// fixed-size encrypted blocks per named store, instrumented with a Meter
// that counts every transferred block, byte, and network round trip. A
// CostModel turns those counters into a simulated query time so benchmark
// output is directly comparable in shape with the paper's wall-clock plots.
package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOutOfRange is returned when a block index is outside the store.
// Implementations wrap it (fmt.Errorf with %w) with the offending index and
// the store name, so a failure deep in a remote or disk backend is
// diagnosable from its log line alone; callers must match with errors.Is,
// never equality. The remote transport preserves the match across the wire
// (see remote.RemoteError.Is).
var ErrOutOfRange = errors.New("storage: block index out of range")

// Store is a fixed-capacity array of equally sized opaque blocks held by the
// untrusted server. Indices are physical server locations: the adversary
// sees every Read/Write index, which is why ORAM sits on top of this
// interface rather than below it.
type Store interface {
	// Read returns the block at index i. The returned slice is a copy.
	Read(i int64) ([]byte, error)
	// Write replaces the block at index i.
	Write(i int64, data []byte) error
	// Len returns the number of block slots in the store.
	Len() int64
	// BlockSize returns the size in bytes of each stored block.
	BlockSize() int
}

// BatchStore is a Store that can move many blocks per network round trip.
// The paper argues oblivious join cost in round trips (Section 9.1): a
// Path-ORAM access touches O(log n) buckets, and a transport that batches
// the whole path pays one round instead of O(log n). Implementations that
// report to a Meter must account each batch as exactly one round.
//
// Duplicate-index contract: a batch MAY name the same index more than once,
// and implementations MUST apply the batch in slice order, so the highest
// position wins deterministically (last-writer-wins). The ORAM scheduler's
// flush dedupes shared buckets before writing, but crash-recovery replay in
// a persistent backend re-applies whole logged batches verbatim — both
// backends agreeing on this ordering is what makes replayed state equal
// live state (see storetest.TestBatchContract, which every backend runs).
type BatchStore interface {
	Store
	// ReadMany returns copies of the blocks at the given indices, in order,
	// in a single round trip. An empty batch performs no round. A repeated
	// index yields the same block at each of its positions.
	ReadMany(idxs []int64) ([][]byte, error)
	// WriteMany replaces the block at idxs[i] with data[i] for every i, in a
	// single round trip, applying positions in increasing i so duplicate
	// indices resolve last-writer-wins. len(data) must equal len(idxs).
	WriteMany(idxs []int64, data [][]byte) error
}

// ExchangeStore is a BatchStore that can apply a batch of writes and serve
// a batch of reads in the same round trip — the transport primitive behind
// the ORAM scheduler's deferred-eviction flush riding along the next path
// download (DESIGN.md §2.9). Implementations MUST apply every write before
// serving any read: the ORAM layer relies on reads observing the freshly
// written buckets, never stale pre-write copies. A fully empty exchange
// performs no round.
type ExchangeStore interface {
	BatchStore
	// Exchange writes writeData[i] to writeIdxs[i] for every i — in slice
	// order, so duplicate write indices resolve last-writer-wins exactly as
	// in WriteMany — then returns copies of the blocks at readIdxs, all in
	// one round trip.
	Exchange(writeIdxs []int64, writeData [][]byte, readIdxs []int64) ([][]byte, error)
}

// Opener provisions a named block store with the given geometry. It is how
// the ORAM layer is parameterized over backends: nil means an in-process
// MemStore; a remote deployment passes a transport-backed opener so the
// same join code runs against a networked block server.
type Opener func(name string, slots int64, blockSize int) (Store, error)

// MemStore is an in-memory Store. It is safe for concurrent use.
type MemStore struct {
	mu        sync.RWMutex
	blockSize int
	data      []byte
	n         int64
	meter     *Meter
	name      string
}

// NewMemStore creates a store with n slots of blockSize bytes each, reporting
// traffic to meter (which may be nil). The name labels the store in traces.
func NewMemStore(name string, n int64, blockSize int, meter *Meter) *MemStore {
	if n < 0 {
		panic(fmt.Sprintf("storage: negative store size %d", n))
	}
	if blockSize <= 0 {
		panic(fmt.Sprintf("storage: non-positive block size %d", blockSize))
	}
	return &MemStore{
		blockSize: blockSize,
		data:      make([]byte, n*int64(blockSize)),
		n:         n,
		meter:     meter,
		name:      name,
	}
}

// Name returns the label given at construction.
func (s *MemStore) Name() string { return s.name }

// Len implements Store.
func (s *MemStore) Len() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// BlockSize implements Store.
func (s *MemStore) BlockSize() int { return s.blockSize }

// Read implements Store.
func (s *MemStore) Read(i int64) ([]byte, error) {
	if i < 0 || i >= s.n {
		return nil, fmt.Errorf("%w: read %d of %d (%s)", ErrOutOfRange, i, s.n, s.name)
	}
	out := make([]byte, s.blockSize)
	s.mu.RLock()
	copy(out, s.data[i*int64(s.blockSize):])
	s.mu.RUnlock()
	if s.meter != nil {
		s.meter.countRead(s.name, i, s.blockSize)
	}
	return out, nil
}

// Write implements Store.
func (s *MemStore) Write(i int64, data []byte) error {
	if i < 0 || i >= s.n {
		return fmt.Errorf("%w: write %d of %d (%s)", ErrOutOfRange, i, s.n, s.name)
	}
	if len(data) != s.blockSize {
		return fmt.Errorf("storage: write of %d bytes to %d-byte block (%s)", len(data), s.blockSize, s.name)
	}
	s.mu.Lock()
	copy(s.data[i*int64(s.blockSize):], data)
	s.mu.Unlock()
	if s.meter != nil {
		s.meter.countWrite(s.name, i, len(data))
	}
	return nil
}

// ReadMany implements BatchStore. All blocks are copied under one lock
// acquisition and metered as a single network round.
func (s *MemStore) ReadMany(idxs []int64) ([][]byte, error) {
	if len(idxs) == 0 {
		return nil, nil
	}
	out := make([][]byte, len(idxs))
	s.mu.RLock()
	for k, i := range idxs {
		if i < 0 || i >= s.n {
			s.mu.RUnlock()
			return nil, fmt.Errorf("%w: batch read %d of %d (%s)", ErrOutOfRange, i, s.n, s.name)
		}
		blk := make([]byte, s.blockSize)
		copy(blk, s.data[i*int64(s.blockSize):])
		out[k] = blk
	}
	s.mu.RUnlock()
	if s.meter != nil {
		s.meter.CountBatch(s.name, KindRead, idxs, s.blockSize)
	}
	return out, nil
}

// WriteMany implements BatchStore.
func (s *MemStore) WriteMany(idxs []int64, data [][]byte) error {
	if len(idxs) != len(data) {
		return fmt.Errorf("storage: batch write of %d blocks with %d payloads (%s)", len(idxs), len(data), s.name)
	}
	if len(idxs) == 0 {
		return nil
	}
	for k, i := range idxs {
		if i < 0 || i >= s.n {
			return fmt.Errorf("%w: batch write %d of %d (%s)", ErrOutOfRange, i, s.n, s.name)
		}
		if len(data[k]) != s.blockSize {
			return fmt.Errorf("storage: batch write of %d bytes to %d-byte block (%s)", len(data[k]), s.blockSize, s.name)
		}
	}
	s.mu.Lock()
	for k, i := range idxs {
		copy(s.data[i*int64(s.blockSize):], data[k])
	}
	s.mu.Unlock()
	if s.meter != nil {
		s.meter.CountBatch(s.name, KindWrite, idxs, s.blockSize)
	}
	return nil
}

// Exchange implements ExchangeStore: the writes are applied, then the reads
// served, under a single lock acquisition, metered as one round.
func (s *MemStore) Exchange(writeIdxs []int64, writeData [][]byte, readIdxs []int64) ([][]byte, error) {
	if len(writeIdxs) != len(writeData) {
		return nil, fmt.Errorf("storage: exchange of %d write blocks with %d payloads (%s)", len(writeIdxs), len(writeData), s.name)
	}
	if len(writeIdxs) == 0 && len(readIdxs) == 0 {
		return nil, nil
	}
	// Validate the whole exchange — writes and reads — before touching any
	// slot, so a malformed request can never commit a partial batch.
	for k, i := range writeIdxs {
		if i < 0 || i >= s.n {
			return nil, fmt.Errorf("%w: exchange write %d of %d (%s)", ErrOutOfRange, i, s.n, s.name)
		}
		if len(writeData[k]) != s.blockSize {
			return nil, fmt.Errorf("storage: exchange write of %d bytes to %d-byte block (%s)", len(writeData[k]), s.blockSize, s.name)
		}
	}
	for _, i := range readIdxs {
		if i < 0 || i >= s.n {
			return nil, fmt.Errorf("%w: exchange read %d of %d (%s)", ErrOutOfRange, i, s.n, s.name)
		}
	}
	var out [][]byte
	s.mu.Lock()
	for k, i := range writeIdxs {
		copy(s.data[i*int64(s.blockSize):], writeData[k])
	}
	if len(readIdxs) > 0 {
		out = make([][]byte, len(readIdxs))
		for k, i := range readIdxs {
			blk := make([]byte, s.blockSize)
			copy(blk, s.data[i*int64(s.blockSize):])
			out[k] = blk
		}
	}
	s.mu.Unlock()
	if s.meter != nil {
		s.meter.CountExchange(s.name, writeIdxs, readIdxs, s.blockSize)
	}
	return out, nil
}

// SizeBytes returns the total server-side footprint of the store.
func (s *MemStore) SizeBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n * int64(s.blockSize)
}

// Grow extends the store by n zeroed block slots. Cloud storage is elastic;
// output tables grow as records are appended, and the growth schedule
// depends only on the (public) record count.
func (s *MemStore) Grow(n int64) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.n += n
	s.data = append(s.data, make([]byte, n*int64(s.blockSize))...)
	s.mu.Unlock()
}
