package storage

import (
	"fmt"
	"sync"
	"time"
)

// AccessKind distinguishes the two server-visible operations.
type AccessKind uint8

// Access kinds.
const (
	KindRead AccessKind = iota
	KindWrite
)

func (k AccessKind) String() string {
	if k == KindRead {
		return "read"
	}
	return "write"
}

// Access is one server-visible block operation. A sequence of Accesses is
// exactly the Trace of Definition 1 in the paper (location + traffic).
type Access struct {
	Store string
	Kind  AccessKind
	Index int64
	Bytes int
}

// DefaultTraceLimit bounds the recorded access sequence when tracing is
// enabled and no explicit limit was set: 4Mi accesses (~192 MB of Access
// values). Long joins traced for obliviousness checks stop appending at
// the cap and count the overflow in Dropped instead of growing without
// bound.
const DefaultTraceLimit = 1 << 22

// Meter accumulates traffic statistics across one or more stores. It is safe
// for concurrent use. When tracing is enabled it also records the full
// access sequence for obliviousness testing, capped at SetTraceLimit
// (DefaultTraceLimit unless configured) with overflow counted in Dropped.
type Meter struct {
	mu         sync.Mutex
	reads      int64
	writes     int64
	bytesRead  int64
	bytesWrite int64
	rounds     int64
	tracing    bool
	trace      []Access
	traceLimit int // 0 = DefaultTraceLimit, < 0 = unlimited
	dropped    int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{} }

// Stats is a snapshot of a Meter.
type Stats struct {
	BlockReads    int64
	BlockWrites   int64
	BytesRead     int64
	BytesWritten  int64
	NetworkRounds int64
}

// BlocksMoved returns total block operations.
func (s Stats) BlocksMoved() int64 { return s.BlockReads + s.BlockWrites }

// BytesMoved returns total bytes transferred in either direction.
func (s Stats) BytesMoved() int64 { return s.BytesRead + s.BytesWritten }

// Sub returns s - o, the traffic between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		BlockReads:    s.BlockReads - o.BlockReads,
		BlockWrites:   s.BlockWrites - o.BlockWrites,
		BytesRead:     s.BytesRead - o.BytesRead,
		BytesWritten:  s.BytesWritten - o.BytesWritten,
		NetworkRounds: s.NetworkRounds - o.NetworkRounds,
	}
}

// Add returns s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		BlockReads:    s.BlockReads + o.BlockReads,
		BlockWrites:   s.BlockWrites + o.BlockWrites,
		BytesRead:     s.BytesRead + o.BytesRead,
		BytesWritten:  s.BytesWritten + o.BytesWritten,
		NetworkRounds: s.NetworkRounds + o.NetworkRounds,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d bytes=%d rounds=%d",
		s.BlockReads, s.BlockWrites, s.BytesMoved(), s.NetworkRounds)
}

// appendTrace records one access, honoring the trace cap. Caller holds mu.
func (m *Meter) appendTrace(a Access) {
	limit := m.traceLimit
	if limit == 0 {
		limit = DefaultTraceLimit
	}
	if limit > 0 && len(m.trace) >= limit {
		m.dropped++
		return
	}
	m.trace = append(m.trace, a)
}

func (m *Meter) countRead(store string, idx int64, n int) {
	m.mu.Lock()
	m.reads++
	m.bytesRead += int64(n)
	if m.tracing {
		m.appendTrace(Access{Store: store, Kind: KindRead, Index: idx, Bytes: n})
	}
	m.mu.Unlock()
}

func (m *Meter) countWrite(store string, idx int64, n int) {
	m.mu.Lock()
	m.writes++
	m.bytesWrite += int64(n)
	if m.tracing {
		m.appendTrace(Access{Store: store, Kind: KindWrite, Index: idx, Bytes: n})
	}
	m.mu.Unlock()
}

// CountRound records one client↔server round trip. Layers that move blocks
// through single-block Store operations call this once per logical round;
// BatchStore implementations instead use CountBatch, which accounts the
// round and its block traffic together.
func (m *Meter) CountRound() {
	m.mu.Lock()
	m.rounds++
	m.mu.Unlock()
}

// CountBatch records a batched transfer of the given blocks as exactly one
// network round with len(idxs) accesses of blockBytes each. Transports call
// this once per batch RPC so NetworkRounds counts real round trips rather
// than simulated ones; when tracing, every block in the batch is appended
// to the trace individually so obliviousness checks see the full access
// sequence. An empty batch records nothing.
func (m *Meter) CountBatch(store string, kind AccessKind, idxs []int64, blockBytes int) {
	if len(idxs) == 0 {
		return
	}
	m.mu.Lock()
	m.rounds++
	if kind == KindRead {
		m.reads += int64(len(idxs))
		m.bytesRead += int64(len(idxs)) * int64(blockBytes)
	} else {
		m.writes += int64(len(idxs))
		m.bytesWrite += int64(len(idxs)) * int64(blockBytes)
	}
	if m.tracing {
		for _, i := range idxs {
			m.appendTrace(Access{Store: store, Kind: kind, Index: i, Bytes: blockBytes})
		}
	}
	m.mu.Unlock()
}

// CountExchange records a combined write+read batch (ExchangeStore) as
// exactly one network round. The trace records the writes before the reads,
// matching the order the server applies them. A fully empty exchange
// records nothing.
func (m *Meter) CountExchange(store string, writeIdxs, readIdxs []int64, blockBytes int) {
	if len(writeIdxs) == 0 && len(readIdxs) == 0 {
		return
	}
	m.mu.Lock()
	m.rounds++
	m.writes += int64(len(writeIdxs))
	m.bytesWrite += int64(len(writeIdxs)) * int64(blockBytes)
	m.reads += int64(len(readIdxs))
	m.bytesRead += int64(len(readIdxs)) * int64(blockBytes)
	if m.tracing {
		for _, i := range writeIdxs {
			m.appendTrace(Access{Store: store, Kind: KindWrite, Index: i, Bytes: blockBytes})
		}
		for _, i := range readIdxs {
			m.appendTrace(Access{Store: store, Kind: KindRead, Index: i, Bytes: blockBytes})
		}
	}
	m.mu.Unlock()
}

// Snapshot returns the current counters.
func (m *Meter) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		BlockReads:    m.reads,
		BlockWrites:   m.writes,
		BytesRead:     m.bytesRead,
		BytesWritten:  m.bytesWrite,
		NetworkRounds: m.rounds,
	}
}

// Reset zeroes all counters and drops any recorded trace.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.reads, m.writes, m.bytesRead, m.bytesWrite, m.rounds = 0, 0, 0, 0, 0
	m.trace = nil
	m.dropped = 0
	m.mu.Unlock()
}

// SetTracing enables or disables full access-sequence recording. Enabling
// starts a fresh trace with a zeroed Dropped counter.
func (m *Meter) SetTracing(on bool) {
	m.mu.Lock()
	m.tracing = on
	m.trace = nil
	m.dropped = 0
	m.mu.Unlock()
}

// SetTraceLimit bounds the recorded trace to at most n accesses; further
// accesses are counted in Dropped instead of appended. n == 0 restores
// DefaultTraceLimit; n < 0 removes the cap entirely (the caller accepts
// the memory risk). The limit applies from the next recorded access — an
// existing over-limit trace is not truncated.
func (m *Meter) SetTraceLimit(n int) {
	m.mu.Lock()
	if n < 0 {
		m.traceLimit = -1
	} else {
		m.traceLimit = n
	}
	m.mu.Unlock()
}

// Dropped reports how many accesses the trace cap discarded since tracing
// was last enabled or the meter reset. A non-zero value means Trace is a
// prefix of the real access sequence; counters are always complete.
func (m *Meter) Dropped() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// TraceLen reports the recorded trace length without copying it.
func (m *Meter) TraceLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.trace)
}

// Trace returns a copy of the recorded access sequence.
func (m *Meter) Trace() []Access {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Access, len(m.trace))
	copy(out, m.trace)
	return out
}

// CostModel converts traffic counters into a simulated query time. The
// defaults mirror the paper's testbed: a 1 Gbps link between client and
// server plus a per-round-trip latency.
type CostModel struct {
	// BandwidthBps is the link bandwidth in bits per second.
	BandwidthBps float64
	// RTT is the per-network-round latency.
	RTT time.Duration
}

// DefaultCostModel matches the paper's 1 Gbps setup with a LAN-class RTT.
func DefaultCostModel() CostModel {
	return CostModel{BandwidthBps: 1e9, RTT: 500 * time.Microsecond}
}

// Cost returns the simulated wall-clock time for the given traffic.
func (c CostModel) Cost(s Stats) time.Duration {
	if c.BandwidthBps <= 0 {
		c.BandwidthBps = 1e9
	}
	transfer := time.Duration(float64(s.BytesMoved()*8) / c.BandwidthBps * float64(time.Second))
	return transfer + time.Duration(s.NetworkRounds)*c.RTT
}

// CostSeconds is Cost expressed in seconds, convenient for figure output.
func (c CostModel) CostSeconds(s Stats) float64 {
	return c.Cost(s).Seconds()
}
