package storage

import "testing"

// TestTraceCap verifies the configurable trace cap: accesses beyond the
// limit are counted in Dropped instead of appended, counters stay
// complete, and Reset/SetTracing clear the overflow count.
func TestTraceCap(t *testing.T) {
	m := NewMeter()
	m.SetTracing(true)
	m.SetTraceLimit(4)
	st := NewMemStore("cap", 16, 32, m)
	buf := make([]byte, 32)
	for i := int64(0); i < 10; i++ {
		if err := st.Write(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.TraceLen(); got != 4 {
		t.Fatalf("trace length = %d, want 4", got)
	}
	if got := m.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	// Counters are unaffected by the cap.
	if s := m.Snapshot(); s.BlockWrites != 10 || s.BytesWritten != 10*32 {
		t.Fatalf("counters wrong under cap: %+v", s)
	}
	// The kept prefix is the first 4 accesses.
	tr := m.Trace()
	for i, a := range tr {
		if a.Index != int64(i) {
			t.Fatalf("trace[%d].Index = %d, want %d", i, a.Index, i)
		}
	}

	// Batched accesses drop per block past the cap.
	if _, err := st.ReadMany([]int64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := m.Dropped(); got != 9 {
		t.Fatalf("Dropped after batch = %d, want 9", got)
	}

	m.Reset()
	if m.Dropped() != 0 || m.TraceLen() != 0 {
		t.Fatalf("Reset did not clear trace state: dropped=%d len=%d", m.Dropped(), m.TraceLen())
	}

	// Re-enabling tracing starts a fresh trace and overflow count.
	for i := int64(0); i < 6; i++ {
		if err := st.Write(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	m.SetTracing(true)
	if m.TraceLen() != 0 || m.Dropped() != 0 {
		t.Fatalf("SetTracing(true) did not start fresh: len=%d dropped=%d", m.TraceLen(), m.Dropped())
	}
}

// TestTraceLimitUnlimited verifies a negative limit removes the cap.
func TestTraceLimitUnlimited(t *testing.T) {
	m := NewMeter()
	m.SetTracing(true)
	m.SetTraceLimit(2)
	m.SetTraceLimit(-1)
	st := NewMemStore("nolimit", 8, 16, m)
	for i := int64(0); i < 8; i++ {
		if _, err := st.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.TraceLen(); got != 8 {
		t.Fatalf("trace length = %d, want 8 (unlimited)", got)
	}
	if m.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", m.Dropped())
	}
}

// TestCountBatchEmpty is the empty-batch regression check: a zero-length
// batch never reaches the wire, so it must record no round, no traffic, and
// no trace entries.
func TestCountBatchEmpty(t *testing.T) {
	m := NewMeter()
	m.SetTracing(true)
	m.CountBatch("s", KindRead, nil, 64)
	m.CountBatch("s", KindWrite, []int64{}, 64)
	m.CountExchange("s", nil, nil, 64)
	if s := m.Snapshot(); s != (Stats{}) {
		t.Fatalf("empty batches recorded traffic: %+v", s)
	}
	if m.TraceLen() != 0 {
		t.Fatalf("empty batches recorded %d trace entries", m.TraceLen())
	}
	// The batch stores enforce the same at their layer: empty ReadMany and
	// WriteMany skip the meter entirely.
	st := NewMemStore("s", 8, 64, m)
	if _, err := st.ReadMany(nil); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteMany(nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exchange(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if s := m.Snapshot(); s.NetworkRounds != 0 {
		t.Fatalf("empty store batches cost %d rounds", s.NetworkRounds)
	}
}

// TestCountExchange verifies the combined write+read round: one network
// round for the whole exchange, counters split by direction, and the trace
// recording the writes before the reads — the order the server applies them.
func TestCountExchange(t *testing.T) {
	m := NewMeter()
	m.SetTracing(true)
	m.CountExchange("x", []int64{4, 5}, []int64{1, 2, 3}, 32)
	s := m.Snapshot()
	if s.NetworkRounds != 1 {
		t.Fatalf("exchange cost %d rounds, want 1", s.NetworkRounds)
	}
	if s.BlockWrites != 2 || s.BlockReads != 3 || s.BytesWritten != 64 || s.BytesRead != 96 {
		t.Fatalf("exchange counters: %+v", s)
	}
	tr := m.Trace()
	if len(tr) != 5 {
		t.Fatalf("trace length %d, want 5", len(tr))
	}
	wantKinds := []AccessKind{KindWrite, KindWrite, KindRead, KindRead, KindRead}
	wantIdx := []int64{4, 5, 1, 2, 3}
	for i, a := range tr {
		if a.Kind != wantKinds[i] || a.Index != wantIdx[i] || a.Store != "x" || a.Bytes != 32 {
			t.Fatalf("trace[%d] = %+v", i, a)
		}
	}
	// One-sided exchanges still cost exactly one round.
	m.Reset()
	m.CountExchange("x", []int64{7}, nil, 32)
	m.CountExchange("x", nil, []int64{8}, 32)
	if s := m.Snapshot(); s.NetworkRounds != 2 || s.BlockWrites != 1 || s.BlockReads != 1 {
		t.Fatalf("one-sided exchanges: %+v", s)
	}
}

// TestMemStoreExchangeApplied verifies ExchangeStore semantics end to end on
// the in-memory store: writes are applied before the reads are served, so an
// exchange may read back an index it just wrote.
func TestMemStoreExchangeApplied(t *testing.T) {
	m := NewMeter()
	st := NewMemStore("ex", 8, 4, m)
	if err := st.Write(2, []byte("old!")); err != nil {
		t.Fatal(err)
	}
	before := m.Snapshot()
	got, err := st.Exchange([]int64{2, 3}, [][]byte{[]byte("new!"), []byte("tail")}, []int64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "new!" || string(got[1]) != "tail" {
		t.Fatalf("exchange read stale data: %q %q", got[0], got[1])
	}
	if d := m.Snapshot().Sub(before); d.NetworkRounds != 1 || d.BlockWrites != 2 || d.BlockReads != 2 {
		t.Fatalf("exchange traffic: %+v", d)
	}
	// Write/read mismatches and bounds violations are rejected.
	if _, err := st.Exchange([]int64{1}, nil, nil); err == nil {
		t.Fatal("mismatched exchange accepted")
	}
	if _, err := st.Exchange([]int64{99}, [][]byte{[]byte("oob!")}, nil); err == nil {
		t.Fatal("out-of-range exchange write accepted")
	}
	if _, err := st.Exchange(nil, nil, []int64{99}); err == nil {
		t.Fatal("out-of-range exchange read accepted")
	}
}
