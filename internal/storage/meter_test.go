package storage

import "testing"

// TestTraceCap verifies the configurable trace cap: accesses beyond the
// limit are counted in Dropped instead of appended, counters stay
// complete, and Reset/SetTracing clear the overflow count.
func TestTraceCap(t *testing.T) {
	m := NewMeter()
	m.SetTracing(true)
	m.SetTraceLimit(4)
	st := NewMemStore("cap", 16, 32, m)
	buf := make([]byte, 32)
	for i := int64(0); i < 10; i++ {
		if err := st.Write(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.TraceLen(); got != 4 {
		t.Fatalf("trace length = %d, want 4", got)
	}
	if got := m.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	// Counters are unaffected by the cap.
	if s := m.Snapshot(); s.BlockWrites != 10 || s.BytesWritten != 10*32 {
		t.Fatalf("counters wrong under cap: %+v", s)
	}
	// The kept prefix is the first 4 accesses.
	tr := m.Trace()
	for i, a := range tr {
		if a.Index != int64(i) {
			t.Fatalf("trace[%d].Index = %d, want %d", i, a.Index, i)
		}
	}

	// Batched accesses drop per block past the cap.
	if _, err := st.ReadMany([]int64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := m.Dropped(); got != 9 {
		t.Fatalf("Dropped after batch = %d, want 9", got)
	}

	m.Reset()
	if m.Dropped() != 0 || m.TraceLen() != 0 {
		t.Fatalf("Reset did not clear trace state: dropped=%d len=%d", m.Dropped(), m.TraceLen())
	}

	// Re-enabling tracing starts a fresh trace and overflow count.
	for i := int64(0); i < 6; i++ {
		if err := st.Write(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	m.SetTracing(true)
	if m.TraceLen() != 0 || m.Dropped() != 0 {
		t.Fatalf("SetTracing(true) did not start fresh: len=%d dropped=%d", m.TraceLen(), m.Dropped())
	}
}

// TestTraceLimitUnlimited verifies a negative limit removes the cap.
func TestTraceLimitUnlimited(t *testing.T) {
	m := NewMeter()
	m.SetTracing(true)
	m.SetTraceLimit(2)
	m.SetTraceLimit(-1)
	st := NewMemStore("nolimit", 8, 16, m)
	for i := int64(0); i < 8; i++ {
		if _, err := st.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.TraceLen(); got != 8 {
		t.Fatalf("trace length = %d, want 8 (unlimited)", got)
	}
	if m.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", m.Dropped())
	}
}
