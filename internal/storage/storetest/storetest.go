// Package storetest holds the conformance suite every storage.BatchStore
// backend shares. MemStore, the disk-backed store, and the remote client
// all run the same assertions, so contracts the layers above rely on —
// last-writer-wins duplicate-index batches, read-after-write exchanges,
// ErrOutOfRange wrapping with index and store name — cannot silently
// diverge between the simulated, persistent, and networked backends. The
// WAL replay path in particular re-applies logged batches verbatim and is
// only correct because live application agrees on this ordering.
package storetest

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"oblivjoin/internal/storage"
)

// Factory builds a fresh store for one subtest with the given geometry.
type Factory func(t *testing.T, slots int64, blockSize int) storage.BatchStore

// block builds a recognizable blockSize-byte payload.
func block(blockSize int, fill byte) []byte {
	return bytes.Repeat([]byte{fill}, blockSize)
}

// TestBatchContract runs the shared BatchStore conformance suite against
// one backend.
func TestBatchContract(t *testing.T, name string, mk Factory) {
	t.Run(name+"/duplicate-index-last-writer-wins", func(t *testing.T) {
		testDuplicateIndexWriteMany(t, mk)
	})
	t.Run(name+"/duplicate-index-exchange", func(t *testing.T) {
		testDuplicateIndexExchange(t, mk)
	})
	t.Run(name+"/read-after-write-exchange", func(t *testing.T) {
		testExchangeReadAfterWrite(t, mk)
	})
	t.Run(name+"/out-of-range-wrapping", func(t *testing.T) {
		testOutOfRange(t, mk)
	})
	t.Run(name+"/empty-batches", func(t *testing.T) {
		testEmptyBatches(t, mk)
	})
}

func testDuplicateIndexWriteMany(t *testing.T, mk Factory) {
	const bs = 32
	s := mk(t, 8, bs)
	// Slot 3 appears three times; position order must decide, so 0xCC wins.
	err := s.WriteMany(
		[]int64{3, 1, 3, 5, 3},
		[][]byte{block(bs, 0xAA), block(bs, 0x11), block(bs, 0xBB), block(bs, 0x55), block(bs, 0xCC)})
	if err != nil {
		t.Fatalf("WriteMany: %v", err)
	}
	want := map[int64]byte{1: 0x11, 3: 0xCC, 5: 0x55}
	for idx, fill := range want {
		got, err := s.Read(idx)
		if err != nil {
			t.Fatalf("Read(%d): %v", idx, err)
		}
		if !bytes.Equal(got, block(bs, fill)) {
			t.Fatalf("slot %d: got %#x..., want fill %#x", idx, got[0], fill)
		}
	}
	// A repeated read index yields the block at each position.
	blks, err := s.ReadMany([]int64{3, 3, 1})
	if err != nil {
		t.Fatalf("ReadMany: %v", err)
	}
	if !bytes.Equal(blks[0], blks[1]) || blks[0][0] != 0xCC || blks[2][0] != 0x11 {
		t.Fatalf("duplicate read batch: got fills %#x %#x %#x", blks[0][0], blks[1][0], blks[2][0])
	}
}

func testDuplicateIndexExchange(t *testing.T, mk Factory) {
	const bs = 32
	x, ok := mk(t, 8, bs).(storage.ExchangeStore)
	if !ok {
		t.Skip("backend does not implement ExchangeStore")
	}
	got, err := x.Exchange(
		[]int64{2, 2, 4},
		[][]byte{block(bs, 0x01), block(bs, 0x02), block(bs, 0x44)},
		[]int64{2, 4})
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if got[0][0] != 0x02 {
		t.Fatalf("duplicate exchange write: slot 2 fill %#x, want 0x02 (last writer)", got[0][0])
	}
	if got[1][0] != 0x44 {
		t.Fatalf("exchange read: slot 4 fill %#x, want 0x44", got[1][0])
	}
}

func testExchangeReadAfterWrite(t *testing.T, mk Factory) {
	const bs = 16
	x, ok := mk(t, 4, bs).(storage.ExchangeStore)
	if !ok {
		t.Skip("backend does not implement ExchangeStore")
	}
	// Every write must be visible to the same exchange's reads.
	got, err := x.Exchange([]int64{0, 1}, [][]byte{block(bs, 0x10), block(bs, 0x20)}, []int64{1, 0})
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if got[0][0] != 0x20 || got[1][0] != 0x10 {
		t.Fatalf("exchange reads saw stale data: fills %#x %#x", got[0][0], got[1][0])
	}
}

func testOutOfRange(t *testing.T, mk Factory) {
	const bs = 16
	s := mk(t, 4, bs)
	check := func(op string, err error) {
		t.Helper()
		if !errors.Is(err, storage.ErrOutOfRange) {
			t.Fatalf("%s: error %v does not match storage.ErrOutOfRange", op, err)
		}
		if !strings.Contains(err.Error(), "99") {
			t.Fatalf("%s: error %q does not name the offending index", op, err)
		}
	}
	_, err := s.Read(99)
	check("Read", err)
	check("Write", s.Write(99, block(bs, 1)))
	_, err = s.ReadMany([]int64{0, 99})
	check("ReadMany", err)
	check("WriteMany", s.WriteMany([]int64{0, 99}, [][]byte{block(bs, 1), block(bs, 2)}))
	if x, ok := s.(storage.ExchangeStore); ok {
		_, err = x.Exchange([]int64{99}, [][]byte{block(bs, 1)}, nil)
		check("Exchange write", err)
		_, err = x.Exchange([]int64{0}, [][]byte{block(bs, 1)}, []int64{99})
		check("Exchange read", err)
	}
	// A failed batch must not have applied a prefix: every in-tree backend
	// validates the whole batch before touching any slot, so pin it here.
	blk, err := s.Read(0)
	if err != nil {
		t.Fatalf("Read(0): %v", err)
	}
	if blk[0] != 0 {
		t.Fatalf("failed batch leaked a partial write into slot 0 (fill %#x)", blk[0])
	}
}

func testEmptyBatches(t *testing.T, mk Factory) {
	s := mk(t, 4, 16)
	if blks, err := s.ReadMany(nil); err != nil || blks != nil {
		t.Fatalf("empty ReadMany: %v, %v", blks, err)
	}
	if err := s.WriteMany(nil, nil); err != nil {
		t.Fatalf("empty WriteMany: %v", err)
	}
	if x, ok := s.(storage.ExchangeStore); ok {
		if blks, err := x.Exchange(nil, nil, nil); err != nil || blks != nil {
			t.Fatalf("empty Exchange: %v, %v", blks, err)
		}
	}
}
