package storage_test

import (
	"testing"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/storage/storetest"
)

// TestMemStoreBatchContract runs the shared backend conformance suite
// (duplicate-index last-writer-wins, exchange read-after-write, wrapped
// ErrOutOfRange) against the in-memory reference backend. The disk and
// remote backends run the identical suite in their own packages.
func TestMemStoreBatchContract(t *testing.T) {
	storetest.TestBatchContract(t, "mem", func(t *testing.T, slots int64, blockSize int) storage.BatchStore {
		return storage.NewMemStore("contract", slots, blockSize, nil)
	})
}
