// Package socialgraph generates the Twitter-like follower workload of the
// paper's second dataset (Section 9.1): users split into "popular",
// "normal", and "inactive" classes, with one friendship-link table per
// class (each record is a directed edge with a source and destination user
// ID), plus the query definitions SE1–SE3 and SM1–SM3 of Appendix B.
//
// The original dataset (Cha et al.'s billion-edge Twitter crawl, sampled to
// 5k–200k users) is replaced by a seeded synthetic generator reproducing
// the properties the queries exercise: a small popular class that attracts
// most follows (heavy in-degree skew) and class-dependent activity
// (out-degree): popular and normal users follow actively, inactive users
// follow few. See DESIGN.md §3.
package socialgraph

import (
	"math/rand"

	"oblivjoin/internal/jointree"
	"oblivjoin/internal/relation"
)

// Config sizes the generated graph.
type Config struct {
	// Users is the number of sampled users; 0 means 2000.
	Users int
	// Seed makes generation deterministic.
	Seed int64
}

func (c Config) users() int {
	if c.Users <= 0 {
		return 2000
	}
	return c.Users
}

// Class proportions and behavior, loosely following Cha et al.'s analysis:
// ~2% of accounts are popular, ~58% normal, ~40% inactive; 70% of follow
// edges point at popular accounts.
const (
	popularFrac     = 0.02
	normalFrac      = 0.58
	popularBias     = 0.70
	popularFollows  = 12
	normalFollows   = 6
	inactiveFollows = 1
)

// DB holds the three per-class edge tables. Each table's rows are the
// follow edges whose source user belongs to that class.
type DB struct {
	Popular  *relation.Relation // "popular-user"
	Normal   *relation.Relation // "normal-user"
	Inactive *relation.Relation // "inactive-user"
	// NumUsers is the sampled user count.
	NumUsers int
}

// Tables lists the three relations.
func (db *DB) Tables() []*relation.Relation {
	return []*relation.Relation{db.Popular, db.Normal, db.Inactive}
}

// RawBytes returns the total plaintext size.
func (db *DB) RawBytes() int64 {
	var total int64
	for _, t := range db.Tables() {
		total += int64(t.Len()) * int64(t.Schema.TupleSize())
	}
	return total
}

func edgeSchema(name string) relation.Schema {
	// Two 8-byte IDs and no padding: the paper notes social-graph tuples are
	// "2 integers", far below the block size.
	return relation.Schema{Table: name, Columns: []string{"src", "dst"}}
}

// Generate builds the graph.
func Generate(cfg Config) *DB {
	r := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.users()
	nPop := int(float64(n) * popularFrac)
	if nPop < 1 {
		nPop = 1
	}
	nNorm := int(float64(n) * normalFrac)
	if nPop+nNorm >= n {
		nNorm = n - nPop - 1
		if nNorm < 0 {
			nNorm = 0
		}
	}
	// User IDs: [0, nPop) popular, [nPop, nPop+nNorm) normal, rest inactive.
	pickDst := func(src int) int64 {
		for {
			var d int
			if r.Float64() < popularBias {
				d = r.Intn(nPop)
			} else {
				d = r.Intn(n)
			}
			if d != src {
				return int64(d)
			}
		}
	}
	db := &DB{
		Popular:  &relation.Relation{Schema: edgeSchema("popular-user")},
		Normal:   &relation.Relation{Schema: edgeSchema("normal-user")},
		Inactive: &relation.Relation{Schema: edgeSchema("inactive-user")},
		NumUsers: n,
	}
	addEdges := func(rel *relation.Relation, src, follows int) {
		k := follows
		if k > 0 {
			k = 1 + r.Intn(2*follows) // mean ≈ follows, some variance
		}
		for e := 0; e < k; e++ {
			rel.Tuples = append(rel.Tuples, relation.Tuple{
				Values: []int64{int64(src), pickDst(src)},
			})
		}
	}
	for u := 0; u < n; u++ {
		switch {
		case u < nPop:
			addEdges(db.Popular, u, popularFollows)
		case u < nPop+nNorm:
			addEdges(db.Normal, u, normalFollows)
		default:
			addEdges(db.Inactive, u, inactiveFollows)
		}
	}
	return db
}

// BinaryQuery is a two-table equi-join instance.
type BinaryQuery struct {
	Name   string
	R1, R2 *relation.Relation
	A1, A2 string
}

// MultiQuery is an acyclic multiway equi-join instance.
type MultiQuery struct {
	Name  string
	Rels  map[string]*relation.Relation
	Query jointree.Query
}

// SE1: a popular user followed by an inactive user (p.dst = i.src).
func (db *DB) SE1() BinaryQuery {
	return BinaryQuery{Name: "SE1", R1: db.Popular, R2: db.Inactive, A1: "dst", A2: "src"}
}

// SE2: a popular user followed by a normal user (p.dst = n.src).
func (db *DB) SE2() BinaryQuery {
	return BinaryQuery{Name: "SE2", R1: db.Popular, R2: db.Normal, A1: "dst", A2: "src"}
}

// SE3: a normal user followed by a popular user (p.src = n.dst).
func (db *DB) SE3() BinaryQuery {
	return BinaryQuery{Name: "SE3", R1: db.Popular, R2: db.Normal, A1: "src", A2: "dst"}
}

// SM1: p.dst = n.src AND n.dst = i.src.
func (db *DB) SM1() MultiQuery {
	return MultiQuery{Name: "SM1",
		Rels: map[string]*relation.Relation{
			"popular-user": db.Popular, "normal-user": db.Normal, "inactive-user": db.Inactive,
		},
		Query: jointree.Query{
			Tables: []string{"popular-user", "normal-user", "inactive-user"},
			Preds: []jointree.Pred{
				{Left: "popular-user", LeftAttr: "dst", Right: "normal-user", RightAttr: "src"},
				{Left: "normal-user", LeftAttr: "dst", Right: "inactive-user", RightAttr: "src"},
			},
		},
	}
}

// SM2: p.dst = i.src AND n.dst = i.src.
func (db *DB) SM2() MultiQuery {
	return MultiQuery{Name: "SM2",
		Rels: map[string]*relation.Relation{
			"popular-user": db.Popular, "normal-user": db.Normal, "inactive-user": db.Inactive,
		},
		Query: jointree.Query{
			Tables: []string{"inactive-user", "popular-user", "normal-user"},
			Preds: []jointree.Pred{
				{Left: "popular-user", LeftAttr: "dst", Right: "inactive-user", RightAttr: "src"},
				{Left: "normal-user", LeftAttr: "dst", Right: "inactive-user", RightAttr: "src"},
			},
		},
	}
}

// SM3: i1.dst = p.src AND i1.dst = n.src AND i1.dst = i2.src.
func (db *DB) SM3() MultiQuery {
	return MultiQuery{Name: "SM3",
		Rels: map[string]*relation.Relation{
			"i1": db.Inactive.Alias("i1"), "i2": db.Inactive.Alias("i2"),
			"popular-user": db.Popular, "normal-user": db.Normal,
		},
		Query: jointree.Query{
			Tables: []string{"i1", "popular-user", "normal-user", "i2"},
			Preds: []jointree.Pred{
				{Left: "i1", LeftAttr: "dst", Right: "popular-user", RightAttr: "src"},
				{Left: "i1", LeftAttr: "dst", Right: "normal-user", RightAttr: "src"},
				{Left: "i1", LeftAttr: "dst", Right: "i2", RightAttr: "src"},
			},
		},
	}
}
