package socialgraph

import (
	"testing"

	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Users: 500, Seed: 1})
	b := Generate(Config{Users: 500, Seed: 1})
	if a.RawBytes() != b.RawBytes() {
		t.Fatal("same seed, different sizes")
	}
	if a.Popular.Len() != b.Popular.Len() {
		t.Fatal("same seed, different popular edges")
	}
}

func TestClassStructure(t *testing.T) {
	db := Generate(Config{Users: 1000, Seed: 2})
	if db.NumUsers != 1000 {
		t.Fatalf("users %d", db.NumUsers)
	}
	// All three tables nonempty, normal table the biggest (most users x
	// medium activity).
	if db.Popular.Len() == 0 || db.Normal.Len() == 0 || db.Inactive.Len() == 0 {
		t.Fatal("empty class table")
	}
	if db.Normal.Len() <= db.Popular.Len() {
		t.Fatalf("normal (%d) should out-edge popular (%d)", db.Normal.Len(), db.Popular.Len())
	}
	// In-degree skew: popular users (IDs < 2% of range) attract most edges.
	popCut := int64(float64(db.NumUsers) * popularFrac)
	toPop, total := 0, 0
	for _, rel := range db.Tables() {
		dst := rel.Schema.MustCol("dst")
		for _, tu := range rel.Tuples {
			total++
			if tu.Values[dst] < popCut {
				toPop++
			}
		}
	}
	if frac := float64(toPop) / float64(total); frac < 0.5 {
		t.Fatalf("only %.2f of edges point at popular users", frac)
	}
}

func TestNoSelfLoops(t *testing.T) {
	db := Generate(Config{Users: 300, Seed: 3})
	for _, rel := range db.Tables() {
		src, dst := rel.Schema.MustCol("src"), rel.Schema.MustCol("dst")
		for _, tu := range rel.Tuples {
			if tu.Values[src] == tu.Values[dst] {
				t.Fatalf("self-loop %v in %s", tu.Values, rel.Schema.Table)
			}
		}
	}
}

func TestQueriesWellFormed(t *testing.T) {
	db := Generate(Config{Users: 800, Seed: 4})
	for _, q := range []BinaryQuery{db.SE1(), db.SE2(), db.SE3()} {
		if q.R1.Schema.Col(q.A1) < 0 || q.R2.Schema.Col(q.A2) < 0 {
			t.Fatalf("%s references missing attribute", q.Name)
		}
		if got := core.ReferenceEquiJoin(q.R1, q.R2, q.A1, q.A2); len(got) == 0 {
			t.Fatalf("%s yields empty result", q.Name)
		}
	}
	for _, q := range []MultiQuery{db.SM1(), db.SM2(), db.SM3()} {
		tree, err := jointree.Build(q.Query)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if _, err := core.ReferenceMultiwayJoin(q.Rels, tree); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	db := Generate(Config{Seed: 5})
	if db.NumUsers != 2000 {
		t.Fatalf("default users %d", db.NumUsers)
	}
	// The paper's default sample (20k users) is ~4.5 MB; per-user raw size
	// should be in the same ballpark (a few hundred bytes of edges each).
	perUser := float64(db.RawBytes()) / float64(db.NumUsers)
	if perUser < 20 || perUser > 2000 {
		t.Fatalf("raw bytes per user %.1f out of plausible range", perUser)
	}
}
