// Package btree implements the non-clustered B-tree index the paper
// integrates into ORAM (Section 4.2): every node is one ORAM block, leaf
// entries are sorted by key and point to data tuples, and — for the multiway
// join of Section 6 — entries carry liveness tags that support the paper's
// tuple-disabling Observations 1–3.
//
// To keep every lookup a single fixed-length root-to-leaf descent even under
// disabling (the paper's "skip the disabled entries during searching"),
// internal entries store the maximum live key and the maximum/minimum live
// ordinal of their subtree. A disable operation updates these aggregates
// along the already-fetched path, costing exactly as many ORAM accesses as a
// lookup and therefore remaining indistinguishable from one.
package btree

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Ref locates a data tuple: block ID within the table's data ORAM and slot
// within the block.
type Ref struct {
	Block uint64
	Slot  int
}

// Sentinel aggregate values for subtrees with no live entries.
const (
	noKey    = math.MinInt64
	noMaxOrd = int64(-1)
	noMinOrd = math.MaxInt64
)

// NoLeaf marks the absent next-leaf pointer of the last leaf.
const NoLeaf = ^uint64(0)

// Entry is the caller-visible view of a leaf entry.
type Entry struct {
	// Key is the indexed attribute value.
	Key int64
	// Ord is the entry's global position in key order (0-based), stable for
	// the lifetime of the index; cursors and disable operations address
	// entries by ordinal.
	Ord int64
	// Ref points to the data tuple.
	Ref Ref
	// Live is false once the entry has been disabled (Section 6).
	Live bool
	// SameNext reports whether the next entry in key order carries the same
	// key — the paper's Observation 3 tag.
	SameNext bool
}

type leafEnt struct {
	key      int64
	ord      int64
	ref      Ref
	live     bool
	sameNext bool
}

type intEnt struct {
	child uint64
	// Static aggregates of the subtree, restored by Reset.
	maxKey, maxOrd, minOrd int64
	// Live aggregates, maintained by Disable.
	maxLiveKey, maxLiveOrd, minLiveOrd int64
}

type node struct {
	leaf     bool
	next     uint64 // next-leaf pointer; NoLeaf when absent or internal
	leafEnts []leafEnt
	intEnts  []intEnt
}

const (
	nodeHeader  = 1 + 2 + 8 // isLeaf, numEntries, nextLeaf
	leafEntSize = 8 + 8 + 8 + 2 + 1 + 1
	intEntSize  = 8 + 7*8
)

// LeafFanout returns how many leaf entries fit in a node of payload bytes.
func LeafFanout(payload int) int { return (payload - nodeHeader) / leafEntSize }

// InternalFanout returns how many child entries fit in a node of payload bytes.
func InternalFanout(payload int) int { return (payload - nodeHeader) / intEntSize }

func (n *node) count() int {
	if n.leaf {
		return len(n.leafEnts)
	}
	return len(n.intEnts)
}

// encode serializes the node into dst (>= payload bytes, zero-padded).
func (n *node) encode(dst []byte) error {
	need := nodeHeader
	if n.leaf {
		need += leafEntSize * len(n.leafEnts)
	} else {
		need += intEntSize * len(n.intEnts)
	}
	if len(dst) < need {
		return fmt.Errorf("btree: node needs %d bytes, buffer has %d", need, len(dst))
	}
	for i := range dst {
		dst[i] = 0
	}
	if n.leaf {
		dst[0] = 1
	}
	binary.LittleEndian.PutUint16(dst[1:], uint16(n.count()))
	binary.LittleEndian.PutUint64(dst[3:], n.next)
	off := nodeHeader
	if n.leaf {
		for _, e := range n.leafEnts {
			binary.LittleEndian.PutUint64(dst[off:], uint64(e.key))
			binary.LittleEndian.PutUint64(dst[off+8:], uint64(e.ord))
			binary.LittleEndian.PutUint64(dst[off+16:], e.ref.Block)
			binary.LittleEndian.PutUint16(dst[off+24:], uint16(e.ref.Slot))
			if e.live {
				dst[off+26] = 1
			}
			if e.sameNext {
				dst[off+27] = 1
			}
			off += leafEntSize
		}
		return nil
	}
	for _, e := range n.intEnts {
		binary.LittleEndian.PutUint64(dst[off:], e.child)
		for i, v := range [...]int64{e.maxKey, e.maxOrd, e.minOrd, e.maxLiveKey, e.maxLiveOrd, e.minLiveOrd} {
			binary.LittleEndian.PutUint64(dst[off+8+8*i:], uint64(v))
		}
		off += intEntSize
	}
	return nil
}

func decodeNode(src []byte) (*node, error) {
	if len(src) < nodeHeader {
		return nil, fmt.Errorf("btree: node buffer too short (%d bytes)", len(src))
	}
	n := &node{
		leaf: src[0] == 1,
		next: binary.LittleEndian.Uint64(src[3:]),
	}
	count := int(binary.LittleEndian.Uint16(src[1:]))
	off := nodeHeader
	if n.leaf {
		if len(src) < off+count*leafEntSize {
			return nil, fmt.Errorf("btree: leaf with %d entries exceeds buffer", count)
		}
		n.leafEnts = make([]leafEnt, count)
		for i := range n.leafEnts {
			n.leafEnts[i] = leafEnt{
				key:      int64(binary.LittleEndian.Uint64(src[off:])),
				ord:      int64(binary.LittleEndian.Uint64(src[off+8:])),
				ref:      Ref{Block: binary.LittleEndian.Uint64(src[off+16:]), Slot: int(binary.LittleEndian.Uint16(src[off+24:]))},
				live:     src[off+26] == 1,
				sameNext: src[off+27] == 1,
			}
			off += leafEntSize
		}
		return n, nil
	}
	if len(src) < off+count*intEntSize {
		return nil, fmt.Errorf("btree: internal node with %d entries exceeds buffer", count)
	}
	n.intEnts = make([]intEnt, count)
	for i := range n.intEnts {
		e := &n.intEnts[i]
		e.child = binary.LittleEndian.Uint64(src[off:])
		e.maxKey = int64(binary.LittleEndian.Uint64(src[off+8:]))
		e.maxOrd = int64(binary.LittleEndian.Uint64(src[off+16:]))
		e.minOrd = int64(binary.LittleEndian.Uint64(src[off+24:]))
		e.maxLiveKey = int64(binary.LittleEndian.Uint64(src[off+32:]))
		e.maxLiveOrd = int64(binary.LittleEndian.Uint64(src[off+40:]))
		e.minLiveOrd = int64(binary.LittleEndian.Uint64(src[off+48:]))
		off += intEntSize
	}
	return n, nil
}

// liveAgg computes the node's live aggregates for its parent's entry.
func (n *node) liveAgg() (maxLiveKey, maxLiveOrd, minLiveOrd int64) {
	maxLiveKey, maxLiveOrd, minLiveOrd = noKey, noMaxOrd, noMinOrd
	if n.leaf {
		for _, e := range n.leafEnts {
			if !e.live {
				continue
			}
			if e.key > maxLiveKey {
				maxLiveKey = e.key
			}
			if e.ord > maxLiveOrd {
				maxLiveOrd = e.ord
			}
			if e.ord < minLiveOrd {
				minLiveOrd = e.ord
			}
		}
		return
	}
	for _, e := range n.intEnts {
		if e.maxLiveKey > maxLiveKey {
			maxLiveKey = e.maxLiveKey
		}
		if e.maxLiveOrd > maxLiveOrd {
			maxLiveOrd = e.maxLiveOrd
		}
		if e.minLiveOrd < minLiveOrd {
			minLiveOrd = e.minLiveOrd
		}
	}
	return
}

// staticAgg computes the node's static aggregates (entries sorted by key and
// ordinal within the node).
func (n *node) staticAgg() (maxKey, maxOrd, minOrd int64) {
	if n.leaf {
		if len(n.leafEnts) == 0 {
			return noKey, noMaxOrd, noMinOrd
		}
		last := n.leafEnts[len(n.leafEnts)-1]
		return last.key, last.ord, n.leafEnts[0].ord
	}
	if len(n.intEnts) == 0 {
		return noKey, noMaxOrd, noMinOrd
	}
	last := n.intEnts[len(n.intEnts)-1]
	return last.maxKey, last.maxOrd, n.intEnts[0].minOrd
}

// reset restores all liveness state in the node.
func (n *node) reset() {
	if n.leaf {
		for i := range n.leafEnts {
			n.leafEnts[i].live = true
		}
		return
	}
	for i := range n.intEnts {
		e := &n.intEnts[i]
		e.maxLiveKey, e.maxLiveOrd, e.minLiveOrd = e.maxKey, e.maxOrd, e.minOrd
	}
}

// Routing: every helper returns the entry index to descend into, or -1 when
// no subtree can contain the target (the caller then performs a fixed dummy
// descent to preserve the access count).

func (n *node) routeKeyGE(k int64) int {
	for i, e := range n.intEnts {
		if e.maxLiveOrd >= 0 && e.maxLiveKey >= k {
			return i
		}
	}
	return -1
}

func (n *node) routeOrdGE(o int64) int {
	for i, e := range n.intEnts {
		if e.maxLiveOrd >= o {
			return i
		}
	}
	return -1
}

func (n *node) routeOrdLE(o int64) int {
	for i := len(n.intEnts) - 1; i >= 0; i-- {
		e := n.intEnts[i]
		if e.maxLiveOrd >= 0 && e.minLiveOrd <= o {
			return i
		}
	}
	return -1
}

func (n *node) leafKeyGE(k int64) int {
	for i, e := range n.leafEnts {
		if e.live && e.key >= k {
			return i
		}
	}
	return -1
}

func (n *node) leafOrdGE(o int64) int {
	for i, e := range n.leafEnts {
		if e.live && e.ord >= o {
			return i
		}
	}
	return -1
}

func (n *node) leafOrdLE(o int64) int {
	for i := len(n.leafEnts) - 1; i >= 0; i-- {
		e := n.leafEnts[i]
		if e.live && e.ord <= o {
			return i
		}
	}
	return -1
}

func (e leafEnt) public() Entry {
	return Entry{Key: e.key, Ord: e.ord, Ref: e.ref, Live: e.live, SameNext: e.sameNext}
}
