package btree

import (
	"fmt"
	"sort"

	"oblivjoin/internal/oram"
)

// Item is one index entry to build: key plus tuple reference.
type Item struct {
	Key int64
	Ref Ref
}

// Config configures an index.
type Config struct {
	// ORAM stores the index nodes; its payload size fixes the fanout.
	ORAM oram.ORAM
	// CacheInternal keeps all levels above the leaves client-side, the
	// paper's "+Cache" mode (number of outsourced levels Δ = 1).
	CacheInternal bool
	// WriteBackDescents makes every descent a read-down/write-up pass so
	// lookups and disable operations perform identical access sequences.
	// Required for the multiway join (Section 6); binary joins leave it off
	// and pay Δ accesses per lookup instead of 2Δ.
	WriteBackDescents bool
}

// Tree is the client handle to a B-tree index stored in an ORAM.
type Tree struct {
	cfg    Config
	levels []levelRange // levels[0] = leaves, last = root level
	nEnts  int64
	// cache holds decoded internal nodes when CacheInternal is set.
	cache map[uint64]*node

	leafFanout int
	intFanout  int
}

type levelRange struct {
	first uint64
	count uint64
}

// Built is the output of Construct: the full node set of an index, ready to
// be uploaded into an ORAM (standalone or a shared-ORAM slice) and attached
// with New.
type Built struct {
	levels     []levelRange
	nEnts      int64
	nodes      []*node
	payload    int
	leafFanout int
	intFanout  int
}

// Payloads serializes every node in block-ID order.
func (b *Built) Payloads() ([][]byte, error) {
	out := make([][]byte, len(b.nodes))
	for id, n := range b.nodes {
		buf := make([]byte, b.payload)
		if err := n.encode(buf); err != nil {
			return nil, err
		}
		out[id] = buf
	}
	return out, nil
}

// NumNodes returns the total node count of the built index.
func (b *Built) NumNodes() int64 { return int64(len(b.nodes)) }

// Construct builds the index node set over the given items (sorted
// internally by key, stable) for blocks of the given payload size. It is a
// pure client-side computation — the preprocessing step before upload.
func Construct(payload int, items []Item) (*Built, error) {
	lf, inf := LeafFanout(payload), InternalFanout(payload)
	if lf < 1 || inf < 2 {
		return nil, fmt.Errorf("btree: payload %d too small (leaf fanout %d, internal fanout %d)", payload, lf, inf)
	}
	sorted := make([]Item, len(items))
	copy(sorted, items)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })

	b := &Built{nEnts: int64(len(sorted)), payload: payload, leafFanout: lf, intFanout: inf}

	// Build the leaf level.
	nLeaves := (len(sorted) + lf - 1) / lf
	if nLeaves == 0 {
		nLeaves = 1
	}
	for i := 0; i < nLeaves; i++ {
		lo := i * lf
		hi := lo + lf
		if hi > len(sorted) {
			hi = len(sorted)
		}
		n := &node{leaf: true, next: NoLeaf}
		for j := lo; j < hi; j++ {
			n.leafEnts = append(n.leafEnts, leafEnt{
				key:      sorted[j].Key,
				ord:      int64(j),
				ref:      sorted[j].Ref,
				live:     true,
				sameNext: j+1 < len(sorted) && sorted[j+1].Key == sorted[j].Key,
			})
		}
		if i+1 < nLeaves {
			n.next = uint64(i + 1)
		}
		b.nodes = append(b.nodes, n)
	}
	b.levels = []levelRange{{first: 0, count: uint64(nLeaves)}}

	// Build internal levels until a single root remains.
	levelNodes := b.nodes
	firstID := uint64(nLeaves)
	for len(levelNodes) > 1 {
		prevFirst := b.levels[len(b.levels)-1].first
		var next []*node
		for i := 0; i < len(levelNodes); i += inf {
			hi := i + inf
			if hi > len(levelNodes) {
				hi = len(levelNodes)
			}
			n := &node{next: NoLeaf}
			for j := i; j < hi; j++ {
				maxKey, maxOrd, minOrd := levelNodes[j].staticAgg()
				n.intEnts = append(n.intEnts, intEnt{
					child:      prevFirst + uint64(j),
					maxKey:     maxKey,
					maxOrd:     maxOrd,
					minOrd:     minOrd,
					maxLiveKey: maxKey,
					maxLiveOrd: maxOrd,
					minLiveOrd: minOrd,
				})
			}
			next = append(next, n)
		}
		b.levels = append(b.levels, levelRange{first: firstID, count: uint64(len(next))})
		b.nodes = append(b.nodes, next...)
		firstID += uint64(len(next))
		levelNodes = next
	}
	return b, nil
}

// New attaches a constructed index to an ORAM that already stores its node
// payloads at keys 0..NumNodes-1.
func New(cfg Config, b *Built) (*Tree, error) {
	if cfg.ORAM == nil {
		return nil, fmt.Errorf("btree: ORAM is required")
	}
	if cfg.ORAM.PayloadSize() != b.payload {
		return nil, fmt.Errorf("btree: index built for payload %d, ORAM has %d", b.payload, cfg.ORAM.PayloadSize())
	}
	if int64(len(b.nodes)) > cfg.ORAM.Capacity() {
		return nil, fmt.Errorf("btree: %d nodes exceed ORAM capacity %d", len(b.nodes), cfg.ORAM.Capacity())
	}
	t := &Tree{
		cfg:        cfg,
		levels:     b.levels,
		nEnts:      b.nEnts,
		leafFanout: b.leafFanout,
		intFanout:  b.intFanout,
	}
	if cfg.CacheInternal {
		t.cache = make(map[uint64]*node)
		for id, n := range b.nodes {
			if !n.leaf {
				t.cache[uint64(id)] = n
			}
		}
	}
	return t, nil
}

// Build is the single-ORAM convenience: Construct, bulk-load into cfg.ORAM,
// and attach.
func Build(cfg Config, items []Item) (*Tree, error) {
	if cfg.ORAM == nil {
		return nil, fmt.Errorf("btree: ORAM is required")
	}
	b, err := Construct(cfg.ORAM.PayloadSize(), items)
	if err != nil {
		return nil, err
	}
	payloads, err := b.Payloads()
	if err != nil {
		return nil, err
	}
	type bulkLoader interface{ BulkLoad([][]byte) error }
	bl, ok := cfg.ORAM.(bulkLoader)
	if !ok {
		return nil, fmt.Errorf("btree: ORAM %T does not support bulk load", cfg.ORAM)
	}
	if int64(len(payloads)) > cfg.ORAM.Capacity() {
		return nil, fmt.Errorf("btree: %d nodes exceed ORAM capacity %d (size with NodeCount first)", len(payloads), cfg.ORAM.Capacity())
	}
	if err := bl.BulkLoad(payloads); err != nil {
		return nil, err
	}
	return New(cfg, b)
}

// NodeCount returns the number of index nodes a build over n items in
// blocks with the given payload will create — callers use it to size the
// index ORAM before Build.
func NodeCount(n int, payload int) (int64, error) {
	lf, inf := LeafFanout(payload), InternalFanout(payload)
	if lf < 1 || inf < 2 {
		return 0, fmt.Errorf("btree: payload %d too small", payload)
	}
	total := int64(0)
	level := (n + lf - 1) / lf
	if level == 0 {
		level = 1
	}
	total += int64(level)
	for level > 1 {
		level = (level + inf - 1) / inf
		total += int64(level)
	}
	return total, nil
}

// Height returns the number of levels (1 for a single-leaf tree).
func (t *Tree) Height() int { return len(t.levels) }

// NumEntries returns the number of leaf entries.
func (t *Tree) NumEntries() int64 { return t.nEnts }

// LeafCount returns the number of leaf nodes.
func (t *Tree) LeafCount() int64 { return int64(t.levels[0].count) }

// NumNodes returns the total number of index nodes.
func (t *Tree) NumNodes() int64 {
	var n int64
	for _, l := range t.levels {
		n += int64(l.count)
	}
	return n
}

// OutsourcedLevels returns Δ, the number of index levels fetched from the
// server per descent: 1 in "+Cache" mode, the full height otherwise.
func (t *Tree) OutsourcedLevels() int {
	if t.cfg.CacheInternal {
		return 1
	}
	return len(t.levels)
}

// AccessesPerRetrieval returns the exact number of index-ORAM accesses one
// lookup, disable, or dummy operation performs. Fixed per tree, which is the
// per-retrieval uniformity the security argument needs.
func (t *Tree) AccessesPerRetrieval() int {
	d := t.OutsourcedLevels()
	if t.cfg.WriteBackDescents {
		return 2 * d
	}
	return d
}

// ClientCacheBytes returns the client memory spent on cached index levels.
func (t *Tree) ClientCacheBytes() int64 {
	if !t.cfg.CacheInternal {
		return 0
	}
	return int64(len(t.cache)) * int64(t.cfg.ORAM.PayloadSize())
}

// ORAM exposes the index's backing store for storage accounting.
func (t *Tree) ORAM() oram.ORAM { return t.cfg.ORAM }

// LeafFor returns the leaf node ID containing the entry with the given
// ordinal — computable client-side because leaves are packed to the fanout.
func (t *Tree) LeafFor(ord int64) uint64 { return uint64(ord) / uint64(t.leafFanout) }

// LeafFanoutEntries returns the number of entries per full leaf.
func (t *Tree) LeafFanoutEntries() int { return t.leafFanout }

// rootID returns the block ID of the root node.
func (t *Tree) rootID() uint64 { return t.levels[len(t.levels)-1].first }

func (t *Tree) isCached(id uint64) bool {
	if !t.cfg.CacheInternal {
		return false
	}
	_, ok := t.cache[id]
	return ok
}

// fetchNode returns the decoded node, from cache or via one ORAM access.
func (t *Tree) fetchNode(id uint64) (*node, error) {
	if n, ok := t.cache[id]; ok {
		return n, nil
	}
	buf, err := t.cfg.ORAM.Read(id)
	if err != nil {
		return nil, fmt.Errorf("btree: node %d: %w", id, err)
	}
	return decodeNode(buf)
}

func (t *Tree) writeNode(id uint64, n *node) error {
	if t.isCached(id) {
		t.cache[id] = n
		return nil
	}
	buf := make([]byte, t.cfg.ORAM.PayloadSize())
	if err := n.encode(buf); err != nil {
		return err
	}
	return t.cfg.ORAM.Write(id, buf)
}

// pathStep records one visited node during a descent.
type pathStep struct {
	id    uint64
	node  *node
	entry int // entry index descended through (internal nodes)
}

// descend walks root to leaf, choosing children with route; when route finds
// no candidate it continues through the last entry so the access count is
// preserved, and reports found=false. leafPick selects the leaf entry the
// same way. mutate, if non-nil, runs on the full path before write-back and
// may modify nodes (used by Disable). In WriteBackDescents mode every
// non-cached visited node is written back bottom-up, with parent aggregates
// refreshed from the traversed child.
func (t *Tree) descend(route func(*node) int, leafPick func(*node) int, mutate func([]pathStep) error) (Entry, bool, error) {
	path := make([]pathStep, 0, len(t.levels))
	id := t.rootID()
	found := true
	for {
		n, err := t.fetchNode(id)
		if err != nil {
			return Entry{}, false, err
		}
		if n.leaf {
			idx := -1
			if found {
				idx = leafPick(n)
			}
			path = append(path, pathStep{id: id, node: n, entry: idx})
			var ent Entry
			if idx >= 0 {
				ent = n.leafEnts[idx].public()
			} else {
				found = false
			}
			if mutate != nil {
				if err := mutate(path); err != nil {
					return Entry{}, false, err
				}
				if idx >= 0 {
					// Re-read the (possibly mutated) entry.
					ent = n.leafEnts[idx].public()
				}
			}
			if err := t.writeBack(path); err != nil {
				return Entry{}, false, err
			}
			return ent, found, nil
		}
		idx := -1
		if found {
			idx = route(n)
		}
		if idx < 0 {
			found = false
			idx = len(n.intEnts) - 1 // fixed dummy continuation
		}
		path = append(path, pathStep{id: id, node: n, entry: idx})
		id = n.intEnts[idx].child
	}
}

// writeBack refreshes parent aggregates along the path and rewrites each
// non-cached node (cached nodes were mutated in place). Only active in
// WriteBackDescents mode.
func (t *Tree) writeBack(path []pathStep) error {
	if !t.cfg.WriteBackDescents {
		return nil
	}
	for i := len(path) - 1; i >= 0; i-- {
		step := path[i]
		if i > 0 {
			parent := path[i-1]
			e := &parent.node.intEnts[parent.entry]
			e.maxLiveKey, e.maxLiveOrd, e.minLiveOrd = step.node.liveAgg()
		}
		if !t.isCached(step.id) {
			buf := make([]byte, t.cfg.ORAM.PayloadSize())
			if err := step.node.encode(buf); err != nil {
				return err
			}
			if err := t.cfg.ORAM.Write(step.id, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// LookupGE returns the first live entry with key >= k. When none exists the
// descent still performs its full fixed-length access sequence.
func (t *Tree) LookupGE(k int64) (Entry, bool, error) {
	return t.descend(
		func(n *node) int { return n.routeKeyGE(k) },
		func(n *node) int { return n.leafKeyGE(k) },
		nil)
}

// LookupOrdGE returns the first live entry with ordinal >= o.
func (t *Tree) LookupOrdGE(o int64) (Entry, bool, error) {
	return t.descend(
		func(n *node) int { return n.routeOrdGE(o) },
		func(n *node) int { return n.leafOrdGE(o) },
		nil)
}

// LookupOrdLE returns the last live entry with ordinal <= o (used by
// descending band-join cursors).
func (t *Tree) LookupOrdLE(o int64) (Entry, bool, error) {
	return t.descend(
		func(n *node) int { return n.routeOrdLE(o) },
		func(n *node) int { return n.leafOrdLE(o) },
		nil)
}

// Disable marks the live entry with the given ordinal disabled and updates
// live aggregates along the path — the paper's tuple-disabling operation,
// with the same access sequence as a lookup. Requires WriteBackDescents:
// only then do lookups and disables share one uniform read-down/write-up
// access pattern.
func (t *Tree) Disable(ord int64) error {
	if !t.cfg.WriteBackDescents {
		return fmt.Errorf("btree: Disable requires WriteBackDescents")
	}
	_, found, err := t.descend(
		func(n *node) int { return n.routeOrdGE(ord) },
		func(n *node) int { return n.leafOrdGE(ord) },
		func(path []pathStep) error {
			leaf := path[len(path)-1]
			if leaf.entry < 0 {
				return fmt.Errorf("btree: disable of ordinal %d: not found or already disabled", ord)
			}
			e := &leaf.node.leafEnts[leaf.entry]
			if e.ord != ord {
				return fmt.Errorf("btree: disable of ordinal %d reached entry %d", ord, e.ord)
			}
			e.live = false
			return nil
		})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("btree: disable of ordinal %d: no live entry", ord)
	}
	return nil
}

// DummyOp performs index-ORAM accesses indistinguishable from a lookup or
// disable, touching nothing.
func (t *Tree) DummyOp() error {
	for i := 0; i < t.AccessesPerRetrieval(); i++ {
		if err := t.cfg.ORAM.DummyAccess(); err != nil {
			return err
		}
	}
	return nil
}

// ReadLeaf fetches leaf node leafID (0-based, sequential) with exactly one
// ORAM access and returns its entries — the sequential cursor primitive of
// the sort-merge join. In WriteBackDescents mode the leaf is rewritten to
// stay uniform with other retrievals.
func (t *Tree) ReadLeaf(leafID uint64) ([]Entry, error) {
	if leafID >= t.levels[0].count {
		return nil, fmt.Errorf("btree: leaf %d of %d", leafID, t.levels[0].count)
	}
	var n *node
	if t.cfg.WriteBackDescents {
		buf, err := t.cfg.ORAM.Update(leafID, func([]byte) error { return nil })
		if err != nil {
			return nil, err
		}
		n, err = decodeNode(buf)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		n, err = t.fetchNode(leafID)
		if err != nil {
			return nil, err
		}
	}
	out := make([]Entry, len(n.leafEnts))
	for i, e := range n.leafEnts {
		out[i] = e.public()
	}
	return out, nil
}

// Reset restores every liveness tag, walking all index blocks once — the
// paper's post-query cleanup ("go over all index blocks and reset all
// boolean tags"). Each node is self-resetting (static aggregates are stored
// alongside live ones), so the pass needs no cross-node information.
func (t *Tree) Reset() error {
	total := t.NumNodes()
	for id := uint64(0); id < uint64(total); id++ {
		if n, ok := t.cache[id]; ok {
			n.reset()
			continue
		}
		if _, err := t.cfg.ORAM.Update(id, func(buf []byte) error {
			n, err := decodeNode(buf)
			if err != nil {
				return err
			}
			n.reset()
			return n.encode(buf)
		}); err != nil {
			return err
		}
	}
	return nil
}
