package btree

import (
	"bytes"
	"math"
	mrand "math/rand"
	"sort"
	"testing"

	"oblivjoin/internal/oram"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/xcrypto"
)

// smallPayload forces multi-level trees with few entries:
// leaf fanout (payload-11)/28, internal fanout (payload-11)/56.
const smallPayload = 160 // leaf fanout 5, internal fanout 2

func newIndexORAM(t testing.TB, n int, payload int, m *storage.Meter) *oram.PathORAM {
	t.Helper()
	sealer, err := xcrypto.NewSealer(bytes.Repeat([]byte{5}, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := NodeCount(n, payload)
	if err != nil {
		t.Fatal(err)
	}
	o, err := oram.NewPathORAM(oram.PathConfig{
		Name:        "idx",
		Capacity:    nodes,
		PayloadSize: payload,
		Meter:       m,
		Sealer:      sealer,
		Rand:        oram.NewSeededSource(17),
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func buildTree(t testing.TB, keys []int64, cfg Config, m *storage.Meter, payload int) *Tree {
	t.Helper()
	if cfg.ORAM == nil {
		cfg.ORAM = newIndexORAM(t, len(keys), payload, m)
	}
	items := make([]Item, len(keys))
	for i, k := range keys {
		items[i] = Item{Key: k, Ref: Ref{Block: uint64(i / 4), Slot: i % 4}}
	}
	tr, err := Build(cfg, items)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func seqKeys(n int) []int64 {
	ks := make([]int64, n)
	for i := range ks {
		ks[i] = int64(i)
	}
	return ks
}

func dupKeys(n, dups int) []int64 {
	ks := make([]int64, n)
	for i := range ks {
		ks[i] = int64(i / dups * 10)
	}
	return ks
}

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	leaf := &node{leaf: true, next: 7, leafEnts: []leafEnt{
		{key: -5, ord: 0, ref: Ref{Block: 3, Slot: 2}, live: true, sameNext: true},
		{key: 11, ord: 1, ref: Ref{Block: 9, Slot: 0}, live: false, sameNext: false},
	}}
	buf := make([]byte, 256)
	if err := leaf.encode(buf); err != nil {
		t.Fatal(err)
	}
	got, err := decodeNode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.leaf || got.next != 7 || len(got.leafEnts) != 2 {
		t.Fatalf("leaf header: %+v", got)
	}
	if got.leafEnts[0] != leaf.leafEnts[0] || got.leafEnts[1] != leaf.leafEnts[1] {
		t.Fatalf("leaf entries: %+v", got.leafEnts)
	}

	intn := &node{next: NoLeaf, intEnts: []intEnt{
		{child: 4, maxKey: 100, maxOrd: 9, minOrd: 0, maxLiveKey: 90, maxLiveOrd: 8, minLiveOrd: 1},
	}}
	if err := intn.encode(buf); err != nil {
		t.Fatal(err)
	}
	got, err = decodeNode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.leaf || got.intEnts[0] != intn.intEnts[0] {
		t.Fatalf("internal round trip: %+v", got.intEnts)
	}
}

func TestNodeEncodeTooSmall(t *testing.T) {
	n := &node{leaf: true, leafEnts: make([]leafEnt, 10)}
	if err := n.encode(make([]byte, 32)); err == nil {
		t.Fatal("encode into short buffer accepted")
	}
	if _, err := decodeNode(make([]byte, 3)); err == nil {
		t.Fatal("decode of short buffer accepted")
	}
}

func TestBuildGeometry(t *testing.T) {
	tr := buildTree(t, seqKeys(100), Config{}, nil, smallPayload)
	// 100 entries / fanout 5 = 20 leaves; /2 = 10, 5, 3, 2, 1 internals.
	if tr.LeafCount() != 20 {
		t.Fatalf("leaf count %d", tr.LeafCount())
	}
	if tr.Height() != 6 {
		t.Fatalf("height %d", tr.Height())
	}
	want, err := NodeCount(100, smallPayload)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != want {
		t.Fatalf("NumNodes %d, NodeCount %d", tr.NumNodes(), want)
	}
	if tr.NumEntries() != 100 {
		t.Fatalf("entries %d", tr.NumEntries())
	}
}

func TestLookupGE(t *testing.T) {
	keys := []int64{1, 1, 2, 2, 2, 3, 8, 8, 15, 40, 40, 40, 41}
	tr := buildTree(t, keys, Config{}, nil, smallPayload)
	cases := []struct {
		k     int64
		want  int64
		found bool
	}{
		{0, 1, true}, {1, 1, true}, {2, 2, true}, {4, 8, true},
		{9, 15, true}, {16, 40, true}, {41, 41, true}, {42, 0, false},
		{math.MinInt64 + 1, 1, true},
	}
	for _, c := range cases {
		e, ok, err := tr.LookupGE(c.k)
		if err != nil {
			t.Fatalf("LookupGE(%d): %v", c.k, err)
		}
		if ok != c.found {
			t.Fatalf("LookupGE(%d): found=%v, want %v", c.k, ok, c.found)
		}
		if ok && e.Key != c.want {
			t.Fatalf("LookupGE(%d) = key %d, want %d", c.k, e.Key, c.want)
		}
	}
}

func TestLookupGEReturnsFirstOfRun(t *testing.T) {
	keys := dupKeys(60, 3) // keys 0,0,0,10,10,10,...
	tr := buildTree(t, keys, Config{}, nil, smallPayload)
	e, ok, err := tr.LookupGE(10)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if e.Key != 10 || e.Ord != 3 {
		t.Fatalf("first of run: key=%d ord=%d", e.Key, e.Ord)
	}
	if !e.SameNext {
		t.Fatal("SameNext should be true inside a run")
	}
	// The last element of a run has SameNext=false.
	last, ok, err := tr.LookupOrdGE(5)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if last.Key != 10 || last.SameNext {
		t.Fatalf("end of run: key=%d sameNext=%v", last.Key, last.SameNext)
	}
}

func TestLookupOrdGEAndLE(t *testing.T) {
	tr := buildTree(t, seqKeys(50), Config{}, nil, smallPayload)
	for o := int64(0); o < 50; o++ {
		e, ok, err := tr.LookupOrdGE(o)
		if err != nil || !ok || e.Ord != o {
			t.Fatalf("LookupOrdGE(%d): ord=%d ok=%v err=%v", o, e.Ord, ok, err)
		}
		e, ok, err = tr.LookupOrdLE(o)
		if err != nil || !ok || e.Ord != o {
			t.Fatalf("LookupOrdLE(%d): ord=%d ok=%v err=%v", o, e.Ord, ok, err)
		}
	}
	if _, ok, _ := tr.LookupOrdGE(50); ok {
		t.Fatal("LookupOrdGE past end found something")
	}
	if _, ok, _ := tr.LookupOrdLE(-1); ok {
		t.Fatal("LookupOrdLE before start found something")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := buildTree(t, nil, Config{}, nil, smallPayload)
	if tr.Height() != 1 || tr.LeafCount() != 1 || tr.NumEntries() != 0 {
		t.Fatalf("empty geometry: h=%d leaves=%d", tr.Height(), tr.LeafCount())
	}
	if _, ok, err := tr.LookupGE(0); ok || err != nil {
		t.Fatalf("empty lookup: ok=%v err=%v", ok, err)
	}
	ents, err := tr.ReadLeaf(0)
	if err != nil || len(ents) != 0 {
		t.Fatalf("empty leaf: %v %v", ents, err)
	}
}

func TestSingleEntryTree(t *testing.T) {
	tr := buildTree(t, []int64{42}, Config{}, nil, smallPayload)
	e, ok, err := tr.LookupGE(42)
	if err != nil || !ok || e.Key != 42 || e.Ord != 0 {
		t.Fatalf("single: %+v ok=%v err=%v", e, ok, err)
	}
	if _, ok, _ := tr.LookupGE(43); ok {
		t.Fatal("found past single entry")
	}
}

func TestBuildSortsItems(t *testing.T) {
	keys := []int64{9, 1, 7, 3, 5, 2, 8, 0, 6, 4}
	tr := buildTree(t, keys, Config{}, nil, smallPayload)
	for k := int64(0); k < 10; k++ {
		e, ok, err := tr.LookupGE(k)
		if err != nil || !ok || e.Key != k {
			t.Fatalf("key %d: got %d ok=%v err=%v", k, e.Key, ok, err)
		}
		if e.Ord != k {
			t.Fatalf("key %d: ord %d", k, e.Ord)
		}
	}
}

func TestDisableBasics(t *testing.T) {
	keys := []int64{1, 2, 2, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tr := buildTree(t, keys, Config{WriteBackDescents: true}, nil, smallPayload)
	// Disable the first two key=2 entries (ordinals 1, 2).
	if err := tr.Disable(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Disable(2); err != nil {
		t.Fatal(err)
	}
	e, ok, err := tr.LookupGE(2)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if e.Key != 2 || e.Ord != 3 {
		t.Fatalf("lookup skipped to key=%d ord=%d, want surviving key-2 entry ord 3", e.Key, e.Ord)
	}
	// Disable the last of the run: lookups for 2 now land on 3.
	if err := tr.Disable(3); err != nil {
		t.Fatal(err)
	}
	e, ok, err = tr.LookupGE(2)
	if err != nil || !ok || e.Key != 3 {
		t.Fatalf("after full disable: key=%d ok=%v err=%v", e.Key, ok, err)
	}
	// Double disable fails.
	if err := tr.Disable(1); err == nil {
		t.Fatal("double disable accepted")
	}
}

func TestDisableAcrossLeaves(t *testing.T) {
	// With leaf fanout 5, disabling a whole leaf's worth of entries must
	// propagate so descents route to later leaves in one pass.
	keys := dupKeys(40, 8) // 8 copies each of 0,10,20,30,40
	tr := buildTree(t, keys, Config{WriteBackDescents: true}, nil, smallPayload)
	for o := int64(0); o < 8; o++ { // kill all key-0 entries (spans 2 leaves)
		if err := tr.Disable(o); err != nil {
			t.Fatalf("disable %d: %v", o, err)
		}
	}
	e, ok, err := tr.LookupGE(0)
	if err != nil || !ok || e.Key != 10 || e.Ord != 8 {
		t.Fatalf("after leaf kill: key=%d ord=%d ok=%v err=%v", e.Key, e.Ord, ok, err)
	}
}

func TestDisableAllThenLookupFails(t *testing.T) {
	tr := buildTree(t, seqKeys(12), Config{WriteBackDescents: true}, nil, smallPayload)
	for o := int64(0); o < 12; o++ {
		if err := tr.Disable(o); err != nil {
			t.Fatalf("disable %d: %v", o, err)
		}
	}
	if _, ok, _ := tr.LookupGE(0); ok {
		t.Fatal("lookup in fully disabled tree found an entry")
	}
	if _, ok, _ := tr.LookupOrdGE(0); ok {
		t.Fatal("ord lookup in fully disabled tree found an entry")
	}
}

func TestReset(t *testing.T) {
	tr := buildTree(t, seqKeys(30), Config{WriteBackDescents: true}, nil, smallPayload)
	for o := int64(0); o < 30; o += 2 {
		if err := tr.Disable(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Reset(); err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 30; k++ {
		e, ok, err := tr.LookupGE(k)
		if err != nil || !ok || e.Key != k {
			t.Fatalf("after reset key %d: got %d ok=%v err=%v", k, e.Key, ok, err)
		}
	}
}

func TestDisableRequiresWriteBack(t *testing.T) {
	tr := buildTree(t, seqKeys(10), Config{}, nil, smallPayload)
	if err := tr.Disable(0); err == nil {
		t.Fatal("disable without write-back accepted")
	}
}

func TestCacheInternalEquivalence(t *testing.T) {
	keys := dupKeys(80, 4)
	plain := buildTree(t, keys, Config{WriteBackDescents: true}, nil, smallPayload)
	cached := buildTree(t, keys, Config{WriteBackDescents: true, CacheInternal: true}, nil, smallPayload)
	if cached.OutsourcedLevels() != 1 {
		t.Fatalf("cached Δ = %d", cached.OutsourcedLevels())
	}
	if plain.OutsourcedLevels() != plain.Height() {
		t.Fatalf("plain Δ = %d", plain.OutsourcedLevels())
	}
	if cached.ClientCacheBytes() == 0 {
		t.Fatal("cache bytes zero")
	}
	r := mrand.New(mrand.NewSource(21))
	for i := 0; i < 200; i++ {
		switch r.Intn(3) {
		case 0:
			k := int64(r.Intn(250))
			e1, ok1, err1 := plain.LookupGE(k)
			e2, ok2, err2 := cached.LookupGE(k)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if ok1 != ok2 || (ok1 && (e1.Key != e2.Key || e1.Ord != e2.Ord)) {
				t.Fatalf("LookupGE(%d) diverged: %+v/%v vs %+v/%v", k, e1, ok1, e2, ok2)
			}
		case 1:
			o := int64(r.Intn(90))
			e1, ok1, _ := plain.LookupOrdGE(o)
			e2, ok2, _ := cached.LookupOrdGE(o)
			if ok1 != ok2 || (ok1 && e1.Ord != e2.Ord) {
				t.Fatalf("LookupOrdGE(%d) diverged", o)
			}
		case 2:
			o := int64(r.Intn(80))
			err1 := plain.Disable(o)
			err2 := cached.Disable(o)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("Disable(%d) diverged: %v vs %v", o, err1, err2)
			}
		}
	}
}

func TestUniformAccessCounts(t *testing.T) {
	for _, cfg := range []Config{
		{WriteBackDescents: true},
		{WriteBackDescents: true, CacheInternal: true},
	} {
		m := storage.NewMeter()
		cfg.ORAM = newIndexORAM(t, 60, smallPayload, m)
		tr := buildTree(t, seqKeys(60), cfg, m, smallPayload)
		perAccess := int64(cfg.ORAM.AccessesPerOp())
		want := int64(tr.AccessesPerRetrieval()) * perAccess

		ops := []func() error{
			func() error { _, _, err := tr.LookupGE(13); return err },
			func() error { _, _, err := tr.LookupGE(1000); return err }, // miss
			func() error { _, _, err := tr.LookupOrdGE(59); return err },
			func() error { _, _, err := tr.LookupOrdLE(5); return err },
			func() error { return tr.Disable(20) },
			tr.DummyOp,
			func() error { _, _, err := tr.LookupGE(20); return err }, // post-disable
		}
		for i, op := range ops {
			before := m.Snapshot()
			if err := op(); err != nil {
				t.Fatalf("cache=%v op %d: %v", cfg.CacheInternal, i, err)
			}
			if got := m.Snapshot().Sub(before).BlocksMoved(); got != want {
				t.Fatalf("cache=%v op %d moved %d blocks, want %d", cfg.CacheInternal, i, got, want)
			}
		}
	}
}

func TestReadLeafSequential(t *testing.T) {
	keys := seqKeys(23)
	tr := buildTree(t, keys, Config{}, nil, smallPayload)
	var got []int64
	for l := uint64(0); l < uint64(tr.LeafCount()); l++ {
		ents, err := tr.ReadLeaf(l)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			got = append(got, e.Key)
		}
	}
	if len(got) != 23 {
		t.Fatalf("got %d entries", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("leaf chain not sorted")
	}
	if _, err := tr.ReadLeaf(uint64(tr.LeafCount())); err == nil {
		t.Fatal("out-of-range leaf accepted")
	}
}

func TestRefsSurviveBuild(t *testing.T) {
	items := []Item{
		{Key: 5, Ref: Ref{Block: 100, Slot: 3}},
		{Key: 2, Ref: Ref{Block: 50, Slot: 1}},
		{Key: 9, Ref: Ref{Block: 200, Slot: 0}},
	}
	o := newIndexORAM(t, 3, smallPayload, nil)
	tr, err := Build(Config{ORAM: o}, items)
	if err != nil {
		t.Fatal(err)
	}
	e, ok, err := tr.LookupGE(5)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if e.Ref.Block != 100 || e.Ref.Slot != 3 {
		t.Fatalf("ref %+v", e.Ref)
	}
}

func TestLookupMatchesReferenceQuick(t *testing.T) {
	r := mrand.New(mrand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(120)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(r.Intn(60))
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		tr := buildTree(t, keys, Config{WriteBackDescents: true}, nil, smallPayload)
		live := make([]bool, n)
		for i := range live {
			live[i] = true
		}
		for step := 0; step < 60; step++ {
			if r.Intn(4) == 0 { // disable a random live entry
				cands := []int{}
				for i, l := range live {
					if l {
						cands = append(cands, i)
					}
				}
				if len(cands) > 0 {
					o := cands[r.Intn(len(cands))]
					if err := tr.Disable(int64(o)); err != nil {
						t.Fatal(err)
					}
					live[o] = false
				}
				continue
			}
			k := int64(r.Intn(62))
			wantIdx := -1
			for i := range keys {
				if live[i] && keys[i] >= k {
					wantIdx = i
					break
				}
			}
			e, ok, err := tr.LookupGE(k)
			if err != nil {
				t.Fatal(err)
			}
			if (wantIdx >= 0) != ok {
				t.Fatalf("trial %d LookupGE(%d): ok=%v want %v", trial, k, ok, wantIdx >= 0)
			}
			if ok && e.Ord != int64(wantIdx) {
				t.Fatalf("trial %d LookupGE(%d): ord %d want %d", trial, k, e.Ord, wantIdx)
			}
		}
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(Config{}, nil); err == nil {
		t.Fatal("nil ORAM accepted")
	}
	// Payload 64 leaves no room for internal entries (fanout < 2).
	sealer, err := xcrypto.NewSealer(bytes.Repeat([]byte{5}, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := oram.NewPathORAM(oram.PathConfig{
		Name: "tiny", Capacity: 8, PayloadSize: 64, Sealer: sealer,
		Rand: oram.NewSeededSource(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(Config{ORAM: o}, []Item{{Key: 1}}); err == nil {
		t.Fatal("tiny payload accepted")
	}
	if _, err := NodeCount(10, 32); err == nil {
		t.Fatal("NodeCount of tiny payload accepted")
	}
}

func TestFanouts(t *testing.T) {
	if LeafFanout(smallPayload) != 5 {
		t.Fatalf("leaf fanout %d", LeafFanout(smallPayload))
	}
	if InternalFanout(smallPayload) != 2 {
		t.Fatalf("internal fanout %d", InternalFanout(smallPayload))
	}
	// A 4 KiB block (minus crypto overhead handled by ORAM) holds >100 keys.
	if LeafFanout(4000) < 100 {
		t.Fatalf("realistic leaf fanout %d", LeafFanout(4000))
	}
}
