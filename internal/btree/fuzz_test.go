package btree

import "testing"

// FuzzDecodeNode hardens the node parser against arbitrary block contents:
// it must return an error or a node, never panic, and every decoded node
// must re-encode without error.
func FuzzDecodeNode(f *testing.F) {
	leaf := &node{leaf: true, next: 3, leafEnts: []leafEnt{
		{key: 5, ord: 0, ref: Ref{Block: 1, Slot: 2}, live: true, sameNext: true},
	}}
	buf := make([]byte, 256)
	if err := leaf.encode(buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf...))
	intn := &node{next: NoLeaf, intEnts: []intEnt{{child: 7, maxKey: 9, maxOrd: 3, minOrd: 0, maxLiveKey: 9, maxLiveOrd: 3, minLiveOrd: 0}}}
	if err := intn.encode(buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf...))
	f.Add([]byte{})
	f.Add([]byte{1, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := decodeNode(data)
		if err != nil {
			return
		}
		out := make([]byte, len(data))
		if eerr := n.encode(out); eerr != nil && len(data) >= nodeHeader {
			// A decoded node always fits back into a buffer of the original
			// size.
			t.Fatalf("re-encode failed: %v", eerr)
		}
		// Aggregates never panic either.
		n.liveAgg()
		n.staticAgg()
		n.reset()
	})
}
