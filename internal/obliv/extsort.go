package obliv

import "fmt"

// ChunkShape returns the padded length and chunk size SortVector requires
// for an n-record vector with mem records of trusted memory: records are
// processed in chunks of mem/2 so a merge-split of two chunks fits in
// memory, and the chunk count must be a power of two for the bitonic
// network. If n fits in memory no padding is needed.
func ChunkShape(n, mem int) (padded, chunk int) {
	if mem < 2 {
		mem = 2
	}
	if n <= mem {
		return n, n
	}
	chunk = mem / 2
	chunks := (n + chunk - 1) / chunk
	return chunk * NextPow2(chunks), chunk
}

func errUnpadded(padded, chunk, n int) error {
	return fmt.Errorf("obliv: external sort needs %d records (chunks of %d), have %d; pad first", padded, chunk, n)
}

// SortVector sorts v obliviously by less, using at most mem records of
// trusted client memory — the external oblivious sort of Opaque/ObliDB with
// O(n log²(n/m)) record transfers (Section 4.1 of the paper).
//
// If v fits in memory it is loaded, sorted locally, and stored back (one
// fixed-pattern pass). Otherwise v.Len() must equal the padded length from
// ChunkShape (callers pad with records that sort last); the sort then runs
// a bitonic network over sorted chunks with in-memory merge-splits. Every
// server access depends only on v.Len() and mem.
//
// SortVector is the serial form of Sorter.SortVector, which performs the
// identical record transfers with the chunk sorts and per-stage merge-splits
// fanned out over a worker pool.
func SortVector(v Vector, mem int, less func(a, b []byte) bool) error {
	return Sorter{}.SortVector(v, mem, less)
}

// mergeSplit merges two sorted runs of equal length and returns the sorted
// lower and upper halves.
func mergeSplit(a, b [][]byte, less func(x, y []byte) bool) (lo, hi [][]byte) {
	c := len(a)
	merged := make([][]byte, 0, 2*c)
	i, j := 0, 0
	for i < c && j < c {
		if less(b[j], a[i]) {
			merged = append(merged, b[j])
			j++
		} else {
			merged = append(merged, a[i])
			i++
		}
	}
	merged = append(merged, a[i:]...)
	merged = append(merged, b[j:]...)
	return merged[:c], merged[c:]
}

// SortTransfers returns the number of record loads+stores SortVector
// performs for n records with mem trusted memory — used by cost analyses
// and tests that pin the oblivious access pattern.
func SortTransfers(n, mem int) int {
	if n <= 1 {
		return 0
	}
	if mem < 2 {
		mem = 2
	}
	if n <= mem {
		return 2 * n
	}
	padded, chunk := ChunkShape(n, mem)
	chunks := padded / chunk
	return 2*padded + NetworkSize(chunks)*4*chunk
}
