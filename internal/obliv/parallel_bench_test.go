package obliv

import (
	"fmt"
	mrand "math/rand"
	"testing"
)

// benchRecords builds n random 16-byte records with a fixed seed.
func benchRecords(n int) [][]byte {
	r := mrand.New(mrand.NewSource(1))
	out := make([][]byte, n)
	for i := range out {
		rec := make([]byte, 16)
		copy(rec, u64rec(r.Uint64()))
		out[i] = rec
	}
	return out
}

// BenchmarkBitonicSort compares the serial in-memory bitonic sort against
// the worker-pool engine. The network is data-independent, so each
// iteration re-sorts the (now sorted) slice at identical cost.
func BenchmarkBitonicSort(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		items := benchRecords(n)
		for _, w := range []int{1, 2, 4, 8} {
			s := Sorter{Workers: w}
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				b.SetBytes(int64(n * 16))
				for i := 0; i < b.N; i++ {
					if err := s.SortSlice(items, lessU64); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExtSort measures the external oblivious sort over an encrypted
// BlockVector: chunk-local sorts plus bitonic merge-splits, serial vs
// parallel. Cost is data-independent, so the vector is built once and
// re-sorted each iteration.
func BenchmarkExtSort(b *testing.B) {
	const n, mem = 1 << 12, 256
	for _, w := range []int{1, 4, 8} {
		v := newTestBlockVector(b, n+mem, 16, 512, nil)
		r := mrand.New(mrand.NewSource(2))
		padded, _ := ChunkShape(n, mem)
		for i := 0; i < n; i++ {
			rec := make([]byte, 16)
			copy(rec, u64rec(r.Uint64()>>1))
			if err := v.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
		pad := make([]byte, 16)
		copy(pad, u64rec(^uint64(0)))
		if err := v.PadTo(padded, pad); err != nil {
			b.Fatal(err)
		}
		s := Sorter{Workers: w}
		b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := s.SortVector(v, mem, lessU64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
