package obliv

import "fmt"

func errNotPow2(n int) error {
	return fmt.Errorf("obliv: bitonic network size %d is not a power of two", n)
}

// Network invokes exchange(i, j, ascending) for every compare-exchange of a
// bitonic sorting network over n elements, in a fixed order that depends
// only on n. n must be a power of two. exchange must place the smaller
// element at i when ascending and at j otherwise; because the (i, j)
// sequence is data-independent, any implementation of exchange with a
// data-independent access pattern yields a fully oblivious sort.
//
// Batcher's bitonic network performs O(n log² n) exchanges, the standard
// choice of the oblivious-query literature for its small constants
// (Section 4.1 of the paper). Sorter.Network executes the same schedule
// with each stage's independent exchanges fanned out over a worker pool.
func Network(n int, exchange func(i, j int, ascending bool) error) error {
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return errNotPow2(n)
	}
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < n; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				asc := i&k == 0
				if err := exchange(i, l, asc); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// NetworkSize returns the number of compare-exchanges Network(n, ...)
// performs, a convenience for cost accounting. n must be a power of two.
func NetworkSize(n int) int {
	if n <= 1 {
		return 0
	}
	total := 0
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			total += n / 2
		}
	}
	return total
}

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SortSlice sorts items in place with a bitonic network, physically padding
// to a power of two with +infinity sentinels (bitonic networks require real
// exchanges on padding elements; virtual padding is not sound). The
// comparison sequence depends only on len(items), so the sort is oblivious
// when items live in observable memory. It is the serial form of
// Sorter.SortSlice.
func SortSlice(items [][]byte, less func(a, b []byte) bool) error {
	return Sorter{}.SortSlice(items, less)
}
