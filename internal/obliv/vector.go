// Package obliv provides the data-oblivious building blocks the join
// algorithms compose: bitonic sorting networks (Network, SortSlice), an
// external oblivious sort that exploits trusted client memory as in Opaque
// and ObliDB (SortVector, ChunkShape, SortTransfers), oblivious dummy
// filtering (CompactReal), and server-resident record vectors whose access
// patterns depend only on public sizes (Vector, BlockVector, MemVector).
//
// All sorts come in two forms: the serial package-level functions, and the
// Sorter engine, which executes the identical fixed compare-exchange
// schedule with each stage's independent exchanges fanned out over a
// configurable worker pool. Because the schedule is data-independent,
// parallel execution permutes server accesses only within a stage and the
// trace stays a function of public sizes — see DESIGN.md §2.7 for the
// security argument and the cost model.
package obliv

import (
	"fmt"
	"sync"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/xcrypto"
)

// Vector is a fixed-record-size sequence whose storage may be remote. All
// provided implementations expose access patterns that depend only on the
// requested indices — the oblivious algorithms in this package take care to
// request index sequences that depend only on public sizes.
//
// Concurrency contract: implementations must support concurrent LoadRange
// and StoreRange calls whose record ranges are pairwise disjoint — the
// access pattern of the parallel sort engine (Sorter). Operations that
// change Len (appends, truncation) and overlapping-range access require
// external synchronization.
type Vector interface {
	// Len is the number of records currently in the vector.
	Len() int
	// RecordSize is the fixed record length in bytes.
	RecordSize() int
	// LoadRange returns copies of records [lo, lo+n).
	LoadRange(lo, n int) ([][]byte, error)
	// StoreRange overwrites records [lo, lo+len(recs)).
	StoreRange(lo int, recs [][]byte) error
}

// MemVector is a client-memory Vector used by tests and as scratch space.
//
// MemVector satisfies the Vector concurrency contract structurally: records
// are independent byte slices and LoadRange copies them, so concurrent
// LoadRange/StoreRange over disjoint ranges touch disjoint memory. Append
// mutates the backing slice and requires exclusive access.
type MemVector struct {
	recSize int
	recs    [][]byte
}

// NewMemVector returns an empty in-memory vector of recSize-byte records.
func NewMemVector(recSize int) *MemVector {
	return &MemVector{recSize: recSize}
}

// Len implements Vector.
func (v *MemVector) Len() int { return len(v.recs) }

// RecordSize implements Vector.
func (v *MemVector) RecordSize() int { return v.recSize }

// Append adds a record, padding or rejecting by size.
func (v *MemVector) Append(rec []byte) error {
	if len(rec) > v.recSize {
		return fmt.Errorf("obliv: record of %d bytes exceeds record size %d", len(rec), v.recSize)
	}
	buf := make([]byte, v.recSize)
	copy(buf, rec)
	v.recs = append(v.recs, buf)
	return nil
}

// LoadRange implements Vector.
func (v *MemVector) LoadRange(lo, n int) ([][]byte, error) {
	if lo < 0 || lo+n > len(v.recs) {
		return nil, fmt.Errorf("obliv: load [%d,%d) of %d", lo, lo+n, len(v.recs))
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = append([]byte(nil), v.recs[lo+i]...)
	}
	return out, nil
}

// StoreRange implements Vector.
func (v *MemVector) StoreRange(lo int, recs [][]byte) error {
	if lo < 0 || lo+len(recs) > len(v.recs) {
		return fmt.Errorf("obliv: store [%d,%d) of %d", lo, lo+len(recs), len(v.recs))
	}
	for i, r := range recs {
		if len(r) != v.recSize {
			return fmt.Errorf("obliv: record %d has %d bytes, want %d", i, len(r), v.recSize)
		}
		copy(v.recs[lo+i], r)
	}
	return nil
}

// BlockVector stores fixed-size records packed into encrypted fixed-size
// blocks on the untrusted server — the layout of every table (including join
// outputs) in the engine. Appends buffer one block client-side and flush
// sealed blocks; loads fetch, decrypt, and unpack whole blocks.
//
// Concurrency: a BlockVector supports concurrent LoadRange/StoreRange calls
// over pairwise disjoint record ranges — the access pattern of the parallel
// sort engine (Sorter). Record ranges need not be block-aligned: a mutex
// makes the read-modify-write of a partially covered edge block atomic, so
// two neighbouring ranges sharing an edge block cannot lose each other's
// slots, and the same mutex guards the client-side append buffer. Length-
// changing operations (Append, PadTo, Truncate) and overlapping ranges
// still require exclusive access: they are individually data-race-free but
// their interleavings have no useful semantics.
type BlockVector struct {
	store    *storage.MemStore
	sealer   *xcrypto.Sealer
	meter    *storage.Meter
	recSize  int
	perBlock int
	capacity int
	length   int

	// mu guards the pending append buffer, the length/capacity fields, and
	// every partial-block read-modify-write (Flush tails and StoreRange edge
	// blocks). Fully covered block writes and block reads go to the store
	// without holding mu — the store serializes individual block ops.
	mu           sync.Mutex
	pending      [][]byte // buffered records not yet flushed
	pendingBlock int      // block index the buffer belongs to
	pendingStart int      // slot within pendingBlock of pending[0]
}

// NewBlockVector creates a vector able to hold capacity records of
// recSize bytes, packed into encrypted blocks of blockSize total bytes.
func NewBlockVector(name string, capacity, recSize, blockSize int, meter *storage.Meter, sealer *xcrypto.Sealer) (*BlockVector, error) {
	if recSize <= 0 {
		return nil, fmt.Errorf("obliv: record size must be positive, got %d", recSize)
	}
	payload := blockSize - xcrypto.Overhead
	perBlock := payload / recSize
	if perBlock < 1 {
		return nil, fmt.Errorf("obliv: record size %d does not fit block payload %d", recSize, payload)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("obliv: negative capacity %d", capacity)
	}
	blocks := (capacity + perBlock - 1) / perBlock
	if blocks == 0 {
		blocks = 1
	}
	return &BlockVector{
		store:        storage.NewMemStore(name, int64(blocks), blockSize, meter),
		sealer:       sealer,
		meter:        meter,
		recSize:      recSize,
		perBlock:     perBlock,
		capacity:     capacity,
		pendingBlock: -1,
	}, nil
}

// Len implements Vector.
func (v *BlockVector) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.length
}

// RecordSize implements Vector.
func (v *BlockVector) RecordSize() int { return v.recSize }

// Capacity returns the maximum number of records.
func (v *BlockVector) Capacity() int { return v.capacity }

// RecordsPerBlock returns the packing factor.
func (v *BlockVector) RecordsPerBlock() int { return v.perBlock }

// ServerBytes returns the server-side footprint.
func (v *BlockVector) ServerBytes() int64 { return v.store.SizeBytes() }

// Append adds a record at the end, flushing a sealed block each time one
// fills and growing the server store as needed (the growth schedule depends
// only on the public record count). The server sees one uniform encrypted
// block write per perBlock appends regardless of record contents.
func (v *BlockVector) Append(rec []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.appendLocked(rec)
}

func (v *BlockVector) appendLocked(rec []byte) error {
	if v.length >= v.capacity {
		extra := v.capacity
		if extra < v.perBlock {
			extra = v.perBlock
		}
		blocksNow := (v.capacity + v.perBlock - 1) / v.perBlock
		blocksNeeded := (v.capacity + extra + v.perBlock - 1) / v.perBlock
		v.store.Grow(int64(blocksNeeded - blocksNow))
		v.capacity += extra
	}
	if len(rec) > v.recSize {
		return fmt.Errorf("obliv: record of %d bytes exceeds record size %d", len(rec), v.recSize)
	}
	blk := v.length / v.perBlock
	if v.pendingBlock != blk {
		if err := v.flushLocked(); err != nil {
			return err
		}
		v.pendingBlock = blk
		v.pendingStart = v.length % v.perBlock
	}
	buf := make([]byte, v.recSize)
	copy(buf, rec)
	v.pending = append(v.pending, buf)
	v.length++
	if v.pendingStart+len(v.pending) == v.perBlock {
		return v.flushLocked()
	}
	return nil
}

// Flush writes any buffered partial block to the server, preserving records
// already stored in the same block when the buffer started mid-block.
func (v *BlockVector) Flush() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.flushLocked()
}

func (v *BlockVector) flushLocked() error {
	if v.pendingBlock < 0 || len(v.pending) == 0 {
		v.pending = nil
		v.pendingBlock = -1
		v.pendingStart = 0
		return nil
	}
	var payload []byte
	if v.pendingStart == 0 {
		payload = make([]byte, v.store.BlockSize()-xcrypto.Overhead)
	} else {
		var err error
		payload, err = v.readBlock(v.pendingBlock)
		if err != nil {
			return err
		}
	}
	for i, r := range v.pending {
		copy(payload[(v.pendingStart+i)*v.recSize:], r)
	}
	sealed, err := v.sealer.Seal(payload)
	if err != nil {
		return err
	}
	if v.meter != nil {
		v.meter.CountRound()
	}
	if err := v.store.Write(int64(v.pendingBlock), sealed); err != nil {
		return err
	}
	v.pending = nil
	v.pendingBlock = -1
	v.pendingStart = 0
	return nil
}

func (v *BlockVector) readBlock(blk int) ([]byte, error) {
	sealed, err := v.store.Read(int64(blk))
	if err != nil {
		return nil, err
	}
	if v.meter != nil {
		v.meter.CountRound()
	}
	plain, err := v.sealer.Open(sealed)
	if err != nil {
		return nil, fmt.Errorf("obliv: store %q block %d: %w", v.store.Name(), blk, err)
	}
	return plain, nil
}

// LoadRange implements Vector. It fetches each covered block once. Blocks
// are read without holding the vector mutex, so disjoint-range loads from
// concurrent sort workers decrypt in parallel.
func (v *BlockVector) LoadRange(lo, n int) ([][]byte, error) {
	v.mu.Lock()
	if lo < 0 || lo+n > v.length {
		v.mu.Unlock()
		return nil, fmt.Errorf("obliv: load [%d,%d) of %d", lo, lo+n, v.length)
	}
	if err := v.flushLocked(); err != nil {
		v.mu.Unlock()
		return nil, err
	}
	v.mu.Unlock()
	out := make([][]byte, 0, n)
	for b := lo / v.perBlock; len(out) < n; b++ {
		payload, err := v.readBlock(b)
		if err != nil {
			return nil, err
		}
		first := 0
		if b == lo/v.perBlock {
			first = lo % v.perBlock
		}
		for i := first; i < v.perBlock && len(out) < n; i++ {
			rec := make([]byte, v.recSize)
			copy(rec, payload[i*v.recSize:(i+1)*v.recSize])
			out = append(out, rec)
		}
	}
	return out, nil
}

// StoreRange implements Vector. Partially covered edge blocks are
// read-modify-written; that read-modify-write holds the vector mutex so a
// concurrent neighbouring StoreRange sharing the edge block cannot lose
// this range's slots (both only modify their own slots and preserve the
// rest as last committed). Fully covered blocks are sealed and written
// without the mutex, so the bulk of concurrent disjoint-range stores
// encrypts in parallel.
func (v *BlockVector) StoreRange(lo int, recs [][]byte) error {
	n := len(recs)
	v.mu.Lock()
	if lo < 0 || lo+n > v.length {
		v.mu.Unlock()
		return fmt.Errorf("obliv: store [%d,%d) of %d", lo, lo+n, v.length)
	}
	if err := v.flushLocked(); err != nil {
		v.mu.Unlock()
		return err
	}
	v.mu.Unlock()
	i := 0
	for b := lo / v.perBlock; i < n; b++ {
		start := b * v.perBlock
		// A block fully covered by the store needs no read-back.
		fully := lo <= start && start+v.perBlock <= lo+n
		if err := v.storeBlock(b, lo, recs, !fully); err != nil {
			return err
		}
		i = start + v.perBlock - lo
	}
	return nil
}

// storeBlock writes the records of recs (starting at vector index lo) that
// fall into block b. When rmw is set the block is partially covered: the
// read-modify-write runs under the vector mutex to stay atomic with respect
// to a neighbouring range's edge write.
func (v *BlockVector) storeBlock(b, lo int, recs [][]byte, rmw bool) error {
	var payload []byte
	var err error
	if rmw {
		v.mu.Lock()
		defer v.mu.Unlock()
		payload, err = v.readBlock(b)
		if err != nil {
			return err
		}
	} else {
		payload = make([]byte, v.store.BlockSize()-xcrypto.Overhead)
	}
	start := b * v.perBlock
	n := len(recs)
	for s := 0; s < v.perBlock; s++ {
		idx := start + s
		if idx >= lo && idx < lo+n {
			r := recs[idx-lo]
			if len(r) != v.recSize {
				return fmt.Errorf("obliv: record %d has %d bytes, want %d", idx-lo, len(r), v.recSize)
			}
			copy(payload[s*v.recSize:], r)
		}
	}
	sealed, err := v.sealer.Seal(payload)
	if err != nil {
		return err
	}
	if v.meter != nil {
		v.meter.CountRound()
	}
	return v.store.Write(int64(b), sealed)
}

// Truncate shortens the vector to n records (n <= Len). Used after
// oblivious filtering once dummies have been sorted past position n.
func (v *BlockVector) Truncate(n int) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if n < 0 || n > v.length {
		return fmt.Errorf("obliv: truncate to %d of %d", n, v.length)
	}
	if err := v.flushLocked(); err != nil {
		return err
	}
	v.length = n
	return nil
}

// PadTo appends copies of rec until the vector holds n records.
func (v *BlockVector) PadTo(n int, rec []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for v.length < n {
		if err := v.appendLocked(rec); err != nil {
			return err
		}
	}
	return v.flushLocked()
}
