package obliv

import "fmt"

// CompactReal obliviously moves all real records in front of all dummy
// records and truncates the vector to realCount records — the paper's
// "obliviously filter out dummy records from T_out" final step of every
// join algorithm. pad must be a record that isDummy reports true for; it is
// used to extend the vector to the shape the external sort requires.
//
// realCount is known to the client (it counted real outputs while joining)
// and is public under Definition 1, which leaks the output size.
//
// Concurrency contract: CompactReal requires exclusive access to v for its
// whole duration — it appends padding and truncates, which the Vector
// implementations only support single-threaded. (Sorter.CompactReal holds
// the same external contract; internally its sort phase issues concurrent
// disjoint-range accesses, which BlockVector supports.)
func CompactReal(v *BlockVector, mem int, isDummy func([]byte) bool, realCount int, pad []byte) error {
	return compactReal(Sorter{}, v, mem, isDummy, realCount, pad)
}

func compactReal(s Sorter, v *BlockVector, mem int, isDummy func([]byte) bool, realCount int, pad []byte) error {
	if realCount > v.Len() {
		return fmt.Errorf("obliv: realCount %d exceeds length %d", realCount, v.Len())
	}
	sp := s.Span.Child("compact")
	sp.SetAttr("n", int64(v.Len()))
	sp.SetAttr("real", int64(realCount))
	defer sp.End()
	s.Span = sp // nest the sort phases under the compaction span
	if err := v.Flush(); err != nil {
		return err
	}
	padded, _ := ChunkShape(v.Len(), mem)
	if err := v.PadTo(padded, pad); err != nil {
		return err
	}
	// Dummies sort after reals; ties keep arbitrary order (sufficient: the
	// result set is a set).
	less := func(a, b []byte) bool { return !isDummy(a) && isDummy(b) }
	if err := s.SortVector(v, mem, less); err != nil {
		return err
	}
	return v.Truncate(realCount)
}
