package obliv

import (
	"bytes"
	"encoding/binary"
	"fmt"
	mrand "math/rand"
	"sort"
	"testing"
	"testing/quick"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/xcrypto"
)

func u64rec(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func u64of(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func lessU64(a, b []byte) bool { return u64of(a) < u64of(b) }

func TestNetworkSortsAllPow2Sizes(t *testing.T) {
	r := mrand.New(mrand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = r.Intn(50)
		}
		err := Network(n, func(i, j int, asc bool) error {
			if (vals[i] > vals[j]) == asc {
				vals[i], vals[j] = vals[j], vals[i]
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !sort.IntsAreSorted(vals) {
			t.Fatalf("n=%d: not sorted: %v", n, vals)
		}
	}
}

func TestNetworkRejectsNonPow2(t *testing.T) {
	if err := Network(6, func(i, j int, asc bool) error { return nil }); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
}

func TestNetworkPatternIsDataIndependent(t *testing.T) {
	record := func(seed int64) []string {
		r := mrand.New(mrand.NewSource(seed))
		vals := make([]int, 16)
		for i := range vals {
			vals[i] = r.Intn(10)
		}
		var pattern []string
		_ = Network(16, func(i, j int, asc bool) error {
			pattern = append(pattern, fmt.Sprintf("%d-%d-%v", i, j, asc))
			if (vals[i] > vals[j]) == asc {
				vals[i], vals[j] = vals[j], vals[i]
			}
			return nil
		})
		return pattern
	}
	a, b := record(1), record(99)
	if len(a) != len(b) {
		t.Fatal("pattern length differs across inputs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pattern diverges at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestNetworkSize(t *testing.T) {
	for _, n := range []int{2, 4, 8, 32} {
		count := 0
		_ = Network(n, func(i, j int, asc bool) error { count++; return nil })
		if got := NetworkSize(n); got != count {
			t.Errorf("NetworkSize(%d) = %d, actual %d", n, got, count)
		}
	}
	if NetworkSize(1) != 0 || NetworkSize(0) != 0 {
		t.Error("NetworkSize of trivial inputs")
	}
}

func TestSortSliceArbitrarySizes(t *testing.T) {
	r := mrand.New(mrand.NewSource(2))
	for _, n := range []int{0, 1, 2, 3, 5, 7, 10, 33, 100, 127} {
		items := make([][]byte, n)
		want := make([]uint64, n)
		for i := range items {
			v := uint64(r.Intn(40))
			items[i] = u64rec(v)
			want[i] = v
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if err := SortSlice(items, lessU64); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range items {
			if u64of(items[i]) != want[i] {
				t.Fatalf("n=%d: pos %d = %d, want %d", n, i, u64of(items[i]), want[i])
			}
		}
	}
}

func TestSortSliceQuick(t *testing.T) {
	f := func(vals []uint16) bool {
		items := make([][]byte, len(vals))
		want := make([]uint64, len(vals))
		for i, v := range vals {
			items[i] = u64rec(uint64(v))
			want[i] = uint64(v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if err := SortSlice(items, lessU64); err != nil {
			return false
		}
		for i := range items {
			if u64of(items[i]) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: mrand.New(mrand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 100: 128}
	for n, want := range cases {
		if got := NextPow2(n); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMemVector(t *testing.T) {
	v := NewMemVector(8)
	for i := uint64(0); i < 10; i++ {
		if err := v.Append(u64rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if v.Len() != 10 || v.RecordSize() != 8 {
		t.Fatalf("geometry %d/%d", v.Len(), v.RecordSize())
	}
	recs, err := v.LoadRange(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if u64of(r) != uint64(3+i) {
			t.Fatalf("load[%d] = %d", i, u64of(r))
		}
	}
	if err := v.StoreRange(0, [][]byte{u64rec(99), u64rec(98)}); err != nil {
		t.Fatal(err)
	}
	recs, _ = v.LoadRange(0, 2)
	if u64of(recs[0]) != 99 || u64of(recs[1]) != 98 {
		t.Fatal("store range failed")
	}
	if _, err := v.LoadRange(8, 5); err == nil {
		t.Fatal("out-of-range load accepted")
	}
	if err := v.StoreRange(9, [][]byte{u64rec(0), u64rec(0)}); err == nil {
		t.Fatal("out-of-range store accepted")
	}
	if err := v.Append(make([]byte, 9)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func newTestBlockVector(t testing.TB, capacity, recSize, blockSize int, m *storage.Meter) *BlockVector {
	t.Helper()
	sealer, err := xcrypto.NewSealer(bytes.Repeat([]byte{3}, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewBlockVector("bv", capacity, recSize, blockSize, m, sealer)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestBlockVectorAppendLoad(t *testing.T) {
	v := newTestBlockVector(t, 100, 8, 128, nil)
	if v.RecordsPerBlock() != (128-xcrypto.Overhead)/8 {
		t.Fatalf("perBlock = %d", v.RecordsPerBlock())
	}
	for i := uint64(0); i < 100; i++ {
		if err := v.Append(u64rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := v.LoadRange(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if u64of(r) != uint64(i) {
			t.Fatalf("rec %d = %d", i, u64of(r))
		}
	}
	// Partial mid-range load spanning block boundaries.
	recs, err = v.LoadRange(7, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if u64of(r) != uint64(7+i) {
			t.Fatalf("mid rec %d = %d", i, u64of(r))
		}
	}
}

func TestBlockVectorAutoFlushOnLoad(t *testing.T) {
	v := newTestBlockVector(t, 10, 8, 128, nil)
	for i := uint64(0); i < 5; i++ {
		if err := v.Append(u64rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No explicit Flush: LoadRange must see buffered records.
	recs, err := v.LoadRange(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if u64of(recs[4]) != 4 {
		t.Fatal("buffered records invisible to load")
	}
}

func TestBlockVectorStoreRange(t *testing.T) {
	v := newTestBlockVector(t, 64, 8, 96, nil)
	for i := uint64(0); i < 64; i++ {
		if err := v.Append(u64rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	upd := make([][]byte, 20)
	for i := range upd {
		upd[i] = u64rec(uint64(1000 + i))
	}
	if err := v.StoreRange(5, upd); err != nil {
		t.Fatal(err)
	}
	recs, err := v.LoadRange(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		want := uint64(i)
		if i >= 5 && i < 25 {
			want = uint64(1000 + i - 5)
		}
		if u64of(r) != want {
			t.Fatalf("rec %d = %d, want %d", i, u64of(r), want)
		}
	}
}

func TestBlockVectorGrows(t *testing.T) {
	v := newTestBlockVector(t, 3, 8, 128, nil)
	for i := uint64(0); i < 100; i++ {
		if err := v.Append(u64rec(i)); err != nil {
			t.Fatalf("append %d beyond initial capacity: %v", i, err)
		}
	}
	if v.Len() != 100 {
		t.Fatalf("len %d", v.Len())
	}
	recs, err := v.LoadRange(95, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if u64of(r) != uint64(95+i) {
			t.Fatalf("grown rec %d = %d", 95+i, u64of(r))
		}
	}
}

func TestBlockVectorTruncateAndPad(t *testing.T) {
	v := newTestBlockVector(t, 32, 8, 96, nil)
	for i := uint64(0); i < 10; i++ {
		if err := v.Append(u64rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.PadTo(20, u64rec(777)); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 20 {
		t.Fatalf("len after pad = %d", v.Len())
	}
	recs, _ := v.LoadRange(10, 10)
	for _, r := range recs {
		if u64of(r) != 777 {
			t.Fatal("pad record wrong")
		}
	}
	if err := v.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4 {
		t.Fatalf("len after truncate = %d", v.Len())
	}
	if err := v.Truncate(5); err == nil {
		t.Fatal("truncate beyond length accepted")
	}
}

func TestBlockVectorRejectsBadGeometry(t *testing.T) {
	sealer, _ := xcrypto.NewSealer(bytes.Repeat([]byte{3}, xcrypto.KeySize), nil)
	if _, err := NewBlockVector("x", 10, 0, 128, nil, sealer); err == nil {
		t.Error("zero record size accepted")
	}
	if _, err := NewBlockVector("x", 10, 4096, 128, nil, sealer); err == nil {
		t.Error("record larger than block accepted")
	}
	if _, err := NewBlockVector("x", -1, 8, 128, nil, sealer); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestChunkShape(t *testing.T) {
	// Fits in memory: no padding.
	if p, c := ChunkShape(10, 16); p != 10 || c != 10 {
		t.Errorf("ChunkShape(10,16) = %d,%d", p, c)
	}
	// 100 records, 16 memory -> chunks of 8, 13 chunks -> 16 chunks = 128.
	if p, c := ChunkShape(100, 16); p != 128 || c != 8 {
		t.Errorf("ChunkShape(100,16) = %d,%d", p, c)
	}
}

func TestSortVectorInMemoryPath(t *testing.T) {
	v := NewMemVector(8)
	r := mrand.New(mrand.NewSource(4))
	want := make([]uint64, 30)
	for i := range want {
		want[i] = uint64(r.Intn(100))
		if err := v.Append(u64rec(want[i])); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if err := SortVector(v, 64, lessU64); err != nil {
		t.Fatal(err)
	}
	recs, _ := v.LoadRange(0, 30)
	for i, rec := range recs {
		if u64of(rec) != want[i] {
			t.Fatalf("pos %d = %d, want %d", i, u64of(rec), want[i])
		}
	}
}

func TestSortVectorExternal(t *testing.T) {
	for _, tc := range []struct{ n, mem int }{
		{128, 16}, {64, 4}, {256, 32}, {32, 2},
	} {
		v := NewMemVector(8)
		r := mrand.New(mrand.NewSource(int64(tc.n)))
		padded, _ := ChunkShape(tc.n, tc.mem)
		want := make([]uint64, 0, padded)
		for i := 0; i < tc.n; i++ {
			x := uint64(r.Intn(1000))
			want = append(want, x)
			if err := v.Append(u64rec(x)); err != nil {
				t.Fatal(err)
			}
		}
		for i := tc.n; i < padded; i++ {
			want = append(want, ^uint64(0))
			if err := v.Append(u64rec(^uint64(0))); err != nil {
				t.Fatal(err)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if err := SortVector(v, tc.mem, lessU64); err != nil {
			t.Fatalf("n=%d mem=%d: %v", tc.n, tc.mem, err)
		}
		recs, _ := v.LoadRange(0, padded)
		for i, rec := range recs {
			if u64of(rec) != want[i] {
				t.Fatalf("n=%d mem=%d pos %d: %d want %d", tc.n, tc.mem, i, u64of(rec), want[i])
			}
		}
	}
}

func TestSortVectorExternalRejectsUnpadded(t *testing.T) {
	v := NewMemVector(8)
	for i := 0; i < 100; i++ {
		if err := v.Append(u64rec(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := SortVector(v, 16, lessU64); err == nil {
		t.Fatal("unpadded external sort accepted")
	}
}

func TestSortVectorOnBlockVector(t *testing.T) {
	m := storage.NewMeter()
	v := newTestBlockVector(t, 512, 8, 96, m)
	r := mrand.New(mrand.NewSource(7))
	n, mem := 100, 16
	padded, _ := ChunkShape(n, mem)
	want := make([]uint64, 0, padded)
	for i := 0; i < n; i++ {
		x := uint64(r.Intn(500))
		want = append(want, x)
		if err := v.Append(u64rec(x)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.PadTo(padded, u64rec(^uint64(0))); err != nil {
		t.Fatal(err)
	}
	for i := n; i < padded; i++ {
		want = append(want, ^uint64(0))
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if err := SortVector(v, mem, lessU64); err != nil {
		t.Fatal(err)
	}
	recs, err := v.LoadRange(0, padded)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if u64of(rec) != want[i] {
			t.Fatalf("pos %d = %d, want %d", i, u64of(rec), want[i])
		}
	}
}

func TestSortVectorPatternDependsOnlyOnSize(t *testing.T) {
	run := func(seed int64) []storage.Access {
		m := storage.NewMeter()
		m.SetTracing(true)
		v := newTestBlockVector(t, 256, 8, 96, m)
		r := mrand.New(mrand.NewSource(seed))
		padded, _ := ChunkShape(64, 8)
		for i := 0; i < padded; i++ {
			if err := v.Append(u64rec(uint64(r.Intn(1000)))); err != nil {
				t.Fatal(err)
			}
		}
		m.Reset()
		m.SetTracing(true)
		if err := SortVector(v, 8, lessU64); err != nil {
			t.Fatal(err)
		}
		return m.Trace()
	}
	a, b := run(1), run(2)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCompactReal(t *testing.T) {
	isDummy := func(r []byte) bool { return u64of(r) == ^uint64(0) }
	v := newTestBlockVector(t, 512, 8, 96, nil)
	real := 0
	r := mrand.New(mrand.NewSource(11))
	for i := 0; i < 90; i++ {
		if r.Intn(2) == 0 {
			if err := v.Append(u64rec(uint64(i))); err != nil {
				t.Fatal(err)
			}
			real++
		} else {
			if err := v.Append(u64rec(^uint64(0))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := CompactReal(v, 16, isDummy, real, u64rec(^uint64(0))); err != nil {
		t.Fatal(err)
	}
	if v.Len() != real {
		t.Fatalf("len = %d, want %d", v.Len(), real)
	}
	recs, err := v.LoadRange(0, real)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if isDummy(rec) {
			t.Fatalf("dummy survived at %d", i)
		}
	}
}

func TestCompactRealCountTooLarge(t *testing.T) {
	v := newTestBlockVector(t, 8, 8, 96, nil)
	_ = v.Append(u64rec(1))
	if err := CompactReal(v, 4, func([]byte) bool { return false }, 5, u64rec(0)); err == nil {
		t.Fatal("oversized realCount accepted")
	}
}

func TestSortTransfersMatchesActual(t *testing.T) {
	for _, tc := range []struct{ n, mem int }{{64, 8}, {10, 32}, {128, 16}} {
		v := NewMemVector(8)
		padded, _ := ChunkShape(tc.n, tc.mem)
		for i := 0; i < padded; i++ {
			_ = v.Append(u64rec(uint64(padded - i)))
		}
		loads, stores := 0, 0
		cv := &countingVector{v: v, loads: &loads, stores: &stores}
		if err := SortVector(cv, tc.mem, lessU64); err != nil {
			t.Fatal(err)
		}
		if got := loads + stores; got != SortTransfers(padded, tc.mem) {
			t.Errorf("n=%d mem=%d: transfers %d, predicted %d", padded, tc.mem, got, SortTransfers(padded, tc.mem))
		}
	}
}

type countingVector struct {
	v             Vector
	loads, stores *int
}

func (c *countingVector) Len() int        { return c.v.Len() }
func (c *countingVector) RecordSize() int { return c.v.RecordSize() }
func (c *countingVector) LoadRange(lo, n int) ([][]byte, error) {
	*c.loads += n
	return c.v.LoadRange(lo, n)
}
func (c *countingVector) StoreRange(lo int, recs [][]byte) error {
	*c.stores += len(recs)
	return c.v.StoreRange(lo, recs)
}

func BenchmarkSortVectorExternal(b *testing.B) {
	mem := 64
	padded, _ := ChunkShape(1000, mem)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		v := NewMemVector(8)
		r := mrand.New(mrand.NewSource(int64(i)))
		for j := 0; j < padded; j++ {
			_ = v.Append(u64rec(uint64(r.Intn(1 << 30))))
		}
		b.StartTimer()
		if err := SortVector(v, mem, lessU64); err != nil {
			b.Fatal(err)
		}
	}
}
