package obliv

import (
	"fmt"
	mrand "math/rand"
	"sync"
	"testing"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/telemetry"
)

// fillShuffled appends n shuffled u64 records and flushes the vector.
func fillShuffled(t *testing.T, v *BlockVector, n int, seed int64) {
	t.Helper()
	r := mrand.New(mrand.NewSource(seed))
	for _, k := range r.Perm(n) {
		if err := v.Append(u64rec(uint64(k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestSorterSpanPhases runs the parallel external sort under a live span
// and verifies the phase tree: sort.runs and sort.merge are present, carry
// the pool size, and their stats sum to the root's meter delta.
func TestSorterSpanPhases(t *testing.T) {
	const n, mem = 1 << 10, 1 << 7
	m := storage.NewMeter()
	v := newTestBlockVector(t, n, 8, 256, m)
	fillShuffled(t, v, n, 3)

	root := telemetry.Start("sort", m)
	s := Sorter{Workers: 4, Span: root}
	if err := s.SortVector(v, mem, lessU64); err != nil {
		t.Fatal(err)
	}
	root.End()

	recs, err := v.LoadRange(0, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if u64of(recs[i-1]) > u64of(recs[i]) {
			t.Fatalf("not sorted at %d", i)
		}
	}

	node := root.Export()
	runs, merge := node.Find("sort.runs"), node.Find("sort.merge")
	if runs == nil || merge == nil {
		t.Fatal("sort.runs / sort.merge spans missing")
	}
	if runs.Workers != 4 || merge.Workers != 4 {
		t.Fatalf("workers = %d/%d, want 4", runs.Workers, merge.Workers)
	}
	if runs.Attrs["n"] != n || runs.Attrs["chunk"] != mem/2 {
		t.Fatalf("runs attrs = %v", runs.Attrs)
	}
	if sum := node.ChildSum(); sum != node.Stats {
		t.Fatalf("phase sum %+v != sort stats %+v", sum, node.Stats)
	}
}

// TestConcurrentSortersShareRoot drives several parallel sorts at once,
// each attaching its phases under one shared root span — the concurrent
// usage shape CI checks under -race. The meterless root must aggregate the
// per-sort meters' deltas.
func TestConcurrentSortersShareRoot(t *testing.T) {
	const n, mem = 1 << 8, 1 << 6
	root := telemetry.Start("para", nil)
	meters := make([]*storage.Meter, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		meters[g] = storage.NewMeter()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := meters[g]
			v := newTestBlockVector(t, n, 8, 256, m)
			fillShuffled(t, v, n, int64(g))
			sp := root.ChildMeter(fmt.Sprintf("sort%d", g), m)
			s := Sorter{Workers: 2, Span: sp}
			if err := s.SortVector(v, mem, lessU64); err != nil {
				t.Error(err)
			}
			sp.End()
		}(g)
	}
	wg.Wait()
	root.End()
	node := root.Export()
	if len(node.Children) != 4 {
		t.Fatalf("children = %d, want 4", len(node.Children))
	}
	var want storage.Stats
	for _, m := range meters {
		want = want.Add(m.Snapshot())
	}
	// Children bind the meters after the fill, so the root aggregate is the
	// sort-only traffic: strictly positive and no more than the totals.
	if node.Stats.BlockReads == 0 || node.Stats.BlockReads > want.BlockReads {
		t.Fatalf("aggregated reads %d outside (0, %d]", node.Stats.BlockReads, want.BlockReads)
	}
	for _, c := range node.Children {
		if c.Find("sort.runs") == nil || c.Find("sort.merge") == nil {
			t.Fatalf("child %s missing sort phases", c.Name)
		}
	}
}
