package obliv

import (
	"bytes"
	"fmt"
	mrand "math/rand"
	"sync"
	"testing"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/tracecheck"
)

// TestSorterSortSliceMatchesSerial checks that the parallel in-memory sort
// produces exactly the serial engine's output across sizes and pool sizes.
func TestSorterSortSliceMatchesSerial(t *testing.T) {
	r := mrand.New(mrand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 17, 100, 256, 1000} {
		base := make([][]byte, n)
		for i := range base {
			base[i] = u64rec(uint64(r.Intn(300)))
		}
		want := append([][]byte(nil), base...)
		if err := SortSlice(want, lessU64); err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 8} {
			got := make([][]byte, n)
			for i := range base {
				got[i] = append([]byte(nil), base[i]...)
			}
			if err := (Sorter{Workers: w}).SortSlice(got, lessU64); err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("n=%d workers=%d pos %d: %d, want %d", n, w, i, u64of(got[i]), u64of(want[i]))
				}
			}
		}
	}
}

// exchangeRec is one observed compare-exchange.
type exchangeRec struct {
	i, j int
	asc  bool
}

// TestSorterNetworkStagePermutation proves the parallel engine executes the
// serial engine's fixed schedule exactly, permuted only within a stage:
// every bitonic stage of Network(n) consists of n/2 exchanges, so the
// serial sequence splits into consecutive n/2-sized segments; the parallel
// sequence must contain, in each segment position, a permutation of the
// same stage's exchange set.
func TestSorterNetworkStagePermutation(t *testing.T) {
	const n = 64
	var serial []exchangeRec
	if err := Network(n, func(i, j int, asc bool) error {
		serial = append(serial, exchangeRec{i, j, asc})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	perStage := n / 2
	if len(serial)%perStage != 0 {
		t.Fatalf("serial schedule length %d is not a multiple of the stage size %d", len(serial), perStage)
	}
	for _, w := range []int{2, 4, 8} {
		var mu sync.Mutex
		var par []exchangeRec
		if err := (Sorter{Workers: w}).Network(n, func(i, j int, asc bool) error {
			mu.Lock()
			par = append(par, exchangeRec{i, j, asc})
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d exchanges, serial has %d", w, len(par), len(serial))
		}
		for s := 0; s*perStage < len(serial); s++ {
			want := map[exchangeRec]int{}
			got := map[exchangeRec]int{}
			for p := s * perStage; p < (s+1)*perStage; p++ {
				want[serial[p]]++
				got[par[p]]++
			}
			for e, c := range want {
				if got[e] != c {
					t.Fatalf("workers=%d stage %d: exchange %+v seen %d times, want %d", w, s, e, got[e], c)
				}
			}
		}
	}
}

// TestSorterSortVectorTraceMultiset is the obliviousness/determinism check
// the parallel engine must pass: sorting the same data on a metered
// encrypted BlockVector serially and with a worker pool must produce (a)
// byte-identical vector contents, (b) identical traffic counters, and (c)
// traces that are permutations of each other — same multiset of
// (store, kind, physical index, bytes) accesses, same length.
func TestSorterSortVectorTraceMultiset(t *testing.T) {
	const n, mem = 100, 16
	run := func(workers int) ([]storage.Access, storage.Stats, [][]byte) {
		m := storage.NewMeter()
		m.SetTracing(true)
		v := newTestBlockVector(t, 512, 8, 96, m)
		r := mrand.New(mrand.NewSource(5))
		padded, _ := ChunkShape(n, mem)
		for i := 0; i < n; i++ {
			if err := v.Append(u64rec(uint64(r.Intn(1000)))); err != nil {
				t.Fatal(err)
			}
		}
		if err := v.PadTo(padded, u64rec(^uint64(0))); err != nil {
			t.Fatal(err)
		}
		m.Reset()
		m.SetTracing(true)
		if err := (Sorter{Workers: workers}).SortVector(v, mem, lessU64); err != nil {
			t.Fatal(err)
		}
		recs, err := v.LoadRange(0, padded)
		if err != nil {
			t.Fatal(err)
		}
		return m.Trace(), m.Snapshot(), recs
	}

	serialTrace, serialStats, serialOut := run(1)
	for _, w := range []int{2, 4, 8} {
		trace, stats, out := run(w)
		for i := range serialOut {
			if !bytes.Equal(out[i], serialOut[i]) {
				t.Fatalf("workers=%d: output pos %d = %d, want %d", w, i, u64of(out[i]), u64of(serialOut[i]))
			}
		}
		if stats != serialStats {
			t.Fatalf("workers=%d: stats %v, serial %v", w, stats, serialStats)
		}
		if d := tracecheck.DiffUnordered(serialTrace, trace); d != "" {
			t.Fatalf("workers=%d: parallel trace is not a permutation of the serial trace: %s", w, d)
		}
	}
}

// TestSorterSortVectorUnalignedChunks exercises the edge-block
// read-modify-write path: a record size and block size chosen so chunk
// boundaries fall mid-block, which makes neighbouring concurrent
// merge-splits share edge blocks.
func TestSorterSortVectorUnalignedChunks(t *testing.T) {
	// 12-byte records in 96-byte blocks: (96-32)/12 = 5 records per block;
	// chunks of 8 records straddle block boundaries.
	const n, mem = 64, 16
	run := func(workers int) []uint64 {
		v := newTestBlockVector(t, 256, 12, 96, nil)
		r := mrand.New(mrand.NewSource(9))
		padded, _ := ChunkShape(n, mem)
		for i := 0; i < n; i++ {
			rec := make([]byte, 12)
			copy(rec, u64rec(uint64(r.Intn(500))))
			if err := v.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		pad := make([]byte, 12)
		copy(pad, u64rec(^uint64(0)))
		if err := v.PadTo(padded, pad); err != nil {
			t.Fatal(err)
		}
		if err := (Sorter{Workers: workers}).SortVector(v, mem, lessU64); err != nil {
			t.Fatal(err)
		}
		recs, err := v.LoadRange(0, padded)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(recs))
		for i, rec := range recs {
			out[i] = u64of(rec)
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d pos %d: %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

// TestSorterCompactRealParallel checks the worker-pool form of the final
// oblivious filter against the serial one.
func TestSorterCompactRealParallel(t *testing.T) {
	const n, mem = 90, 16
	isDummy := func(rec []byte) bool { return u64of(rec) == ^uint64(0) }
	run := func(workers int) []uint64 {
		v := newTestBlockVector(t, 256, 8, 96, nil)
		r := mrand.New(mrand.NewSource(3))
		real := 0
		for i := 0; i < n; i++ {
			x := uint64(r.Intn(100))
			if r.Intn(3) == 0 {
				x = ^uint64(0)
			} else {
				real++
			}
			if err := v.Append(u64rec(x)); err != nil {
				t.Fatal(err)
			}
		}
		s := Sorter{Workers: workers}
		if err := s.CompactReal(v, mem, isDummy, real, u64rec(^uint64(0))); err != nil {
			t.Fatal(err)
		}
		if v.Len() != real {
			t.Fatalf("workers=%d: compacted length %d, want %d", workers, v.Len(), real)
		}
		recs, err := v.LoadRange(0, real)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(recs))
		for i, rec := range recs {
			if isDummy(rec) {
				t.Fatalf("workers=%d: dummy at position %d of the real prefix", workers, i)
			}
			out[i] = u64of(rec)
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		wantSet, gotSet := map[uint64]int{}, map[uint64]int{}
		for i := range want {
			wantSet[want[i]]++
			gotSet[got[i]]++
		}
		for k, c := range wantSet {
			if gotSet[k] != c {
				t.Fatalf("workers=%d: value %d appears %d times, want %d", w, k, gotSet[k], c)
			}
		}
	}
}

// TestSorterNetworkErrorPropagation checks that a failing exchange aborts
// the parallel sort and surfaces the error.
func TestSorterNetworkErrorPropagation(t *testing.T) {
	boom := fmt.Errorf("exchange failed")
	var mu sync.Mutex
	calls := 0
	err := (Sorter{Workers: 4}).Network(32, func(i, j int, asc bool) error {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 5 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls >= NetworkSize(32) {
		t.Fatalf("all %d exchanges ran despite the error", calls)
	}
}

// TestSorterNetworkRejectsNonPow2 mirrors the serial validation.
func TestSorterNetworkRejectsNonPow2(t *testing.T) {
	err := (Sorter{Workers: 4}).Network(6, func(i, j int, asc bool) error { return nil })
	if err == nil {
		t.Fatal("parallel network accepted a non-power-of-two size")
	}
}
