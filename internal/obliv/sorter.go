package obliv

import (
	"sort"
	"sync"
	"sync/atomic"

	"oblivjoin/internal/telemetry"
)

// Sorter executes the oblivious sorts of this package with a configurable
// worker pool. The zero value is the serial engine every existing call site
// gets by default; setting Workers > 1 fans the data-independent parts of
// each sort out across that many goroutines.
//
// Parallelism is free from a security standpoint: a bitonic network's
// compare-exchange schedule is fixed and data-independent, so the set of
// server accesses each stage performs is a function of public sizes only.
// Workers only reorder accesses *within* one stage (a per-stage barrier
// separates stages), so the server-visible trace is a stage-wise permutation
// of the serial trace — same multiset of accesses, same length, same
// structure. See DESIGN.md §2.7 for why this keeps Theorems 1–4 intact.
//
// Concurrency contract: within one stage the engine issues LoadRange and
// StoreRange calls over disjoint record ranges only. Any Vector that is safe
// under that access pattern (BlockVector and MemVector both are) can be
// sorted with Workers > 1.
type Sorter struct {
	// Workers is the worker-pool size. Values <= 1 select the serial
	// engine, whose trace is byte-for-byte the historical one.
	Workers int
	// Span, when non-nil, receives one telemetry sub-span per sort phase
	// (sort.runs, sort.merge, compact, …) with wall time, Meter deltas,
	// and public sizes. Telemetry never touches the server, so the access
	// trace is identical with or without it.
	Span *telemetry.Span
}

// workers clamps the pool size to at least one worker and at most units
// (spawning more goroutines than independent units is pure overhead).
func (s Sorter) workers(units int) int {
	w := s.Workers
	if w < 1 {
		w = 1
	}
	if w > units {
		w = units
	}
	return w
}

// errCollector keeps the first error any worker reports and lets the other
// workers bail out early. Workers still reach the stage barrier, so no
// goroutine outlives the call that spawned it.
type errCollector struct {
	failed atomic.Bool
	once   sync.Once
	err    error
}

func (e *errCollector) set(err error) {
	if err == nil {
		return
	}
	e.failed.Store(true)
	e.once.Do(func() { e.err = err })
}

func (e *errCollector) bail() bool { return e.failed.Load() }

// each runs fn(0) … fn(units-1), fanning the calls out over the worker pool
// with contiguous index spans. It is the run-sort helper of the external
// sort: every unit touches a disjoint record range, so units may execute in
// any order and concurrently.
func (s Sorter) each(units int, fn func(u int) error) error {
	w := s.workers(units)
	if w <= 1 {
		for u := 0; u < units; u++ {
			if err := fn(u); err != nil {
				return err
			}
		}
		return nil
	}
	var ec errCollector
	var wg sync.WaitGroup
	span := (units + w - 1) / w
	for g := 0; g < w; g++ {
		lo, hi := g*span, (g+1)*span
		if hi > units {
			hi = units
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for u := lo; u < hi && !ec.bail(); u++ {
				ec.set(fn(u))
			}
		}(lo, hi)
	}
	wg.Wait()
	return ec.err
}

// Network invokes exchange for every compare-exchange of a bitonic sorting
// network over n elements, exactly the schedule of the package-level
// Network, but with each stage's independent pairs executed by the worker
// pool. Stages are separated by a barrier: no exchange of stage t+1 starts
// before every exchange of stage t has returned. Within a stage, pairs are
// disjoint (element i is touched only by the exchange (i, i^j)), so
// exchange implementations that only access their two indices need no
// locking.
func (s Sorter) Network(n int, exchange func(i, j int, ascending bool) error) error {
	if s.workers(n/2) <= 1 {
		return Network(n, exchange)
	}
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return errNotPow2(n)
	}
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			if err := s.stage(n, k, j, exchange); err != nil {
				return err
			}
		}
	}
	return nil
}

// stage executes the (k, j) stage of the network: the n/2 exchanges
// (i, i^j) for every i with i^j > i, split into contiguous index spans, one
// goroutine per worker, with a WaitGroup barrier at the end.
func (s Sorter) stage(n, k, j int, exchange func(i, j int, ascending bool) error) error {
	w := s.workers(n / 2)
	var ec errCollector
	var wg sync.WaitGroup
	span := (n + w - 1) / w
	for g := 0; g < w; g++ {
		lo, hi := g*span, (g+1)*span
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				if ec.bail() {
					return
				}
				if err := exchange(i, l, i&k == 0); err != nil {
					ec.set(err)
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return ec.err
}

// SortSlice sorts items in place with a bitonic network executed by the
// worker pool, padding to a power of two with +infinity sentinels exactly
// like the package-level SortSlice. The comparison schedule depends only on
// len(items); workers swap disjoint element pairs, so the sort is both
// oblivious and race-free.
func (s Sorter) SortSlice(items [][]byte, less func(a, b []byte) bool) error {
	n := len(items)
	p := NextPow2(n)
	work := make([][]byte, p)
	copy(work, items) // indices >= n stay nil, treated as +infinity
	lessInf := func(a, b []byte) bool {
		switch {
		case b == nil:
			return a != nil // anything < +inf, +inf !< +inf
		case a == nil:
			return false
		default:
			return less(a, b)
		}
	}
	err := s.Network(p, func(i, j int, asc bool) error {
		a, b := work[i], work[j]
		swap := lessInf(b, a)
		if !asc {
			swap = lessInf(a, b)
		}
		if swap {
			work[i], work[j] = work[j], work[i]
		}
		return nil
	})
	if err != nil {
		return err
	}
	copy(items, work[:n])
	return nil
}

// SortVector sorts v obliviously by less using at most mem records of
// trusted client memory per worker task — the same external oblivious sort
// as the package-level SortVector (identical record-transfer schedule, see
// SortTransfers), with both phases executed by the worker pool:
//
//   - run-sort phase: each mem/2-record chunk is loaded, locally sorted, and
//     stored back independently, so chunks are fanned out across workers;
//   - merge phase: each bitonic stage's merge-split exchanges touch disjoint
//     chunk pairs and run concurrently, with a barrier between stages.
//
// Note that with W workers the peak trusted-memory use is W concurrent
// merge-splits of mem records each; callers holding a hard client-memory
// budget M should pass mem = M/W.
//
// The server-visible access multiset equals the serial engine's; only the
// order within a phase/stage differs. Requirements on v match SortVector's;
// additionally v must tolerate concurrent LoadRange/StoreRange over
// disjoint record ranges (BlockVector and MemVector qualify).
func (s Sorter) SortVector(v Vector, mem int, less func(a, b []byte) bool) error {
	n := v.Len()
	if n <= 1 {
		return nil
	}
	if mem < 2 {
		mem = 2
	}
	if n <= mem {
		// One fixed-pattern pass; the local sort needs no fan-out.
		sp := s.Span.Child("sort.local")
		sp.SetAttr("n", int64(n))
		defer sp.End()
		recs, err := v.LoadRange(0, n)
		if err != nil {
			return err
		}
		sort.SliceStable(recs, func(i, j int) bool { return less(recs[i], recs[j]) })
		return v.StoreRange(0, recs)
	}
	padded, chunk := ChunkShape(n, mem)
	if n != padded {
		return errUnpadded(padded, chunk, n)
	}
	chunks := n / chunk

	// Phase 1: sort each chunk locally; chunks are independent.
	runs := s.Span.Child("sort.runs")
	runs.SetAttr("n", int64(n))
	runs.SetAttr("chunk", int64(chunk))
	runs.SetWorkers(s.workers(chunks))
	err := s.each(chunks, func(c int) error {
		recs, err := v.LoadRange(c*chunk, chunk)
		if err != nil {
			return err
		}
		sort.SliceStable(recs, func(i, j int) bool { return less(recs[i], recs[j]) })
		return v.StoreRange(c*chunk, recs)
	})
	runs.End()
	if err != nil {
		return err
	}

	// Phase 2: bitonic network over chunks with merge-split exchanges; each
	// stage's pairs touch disjoint chunks and run concurrently.
	merge := s.Span.Child("sort.merge")
	merge.SetAttr("n", int64(n))
	merge.SetAttr("chunks", int64(chunks))
	merge.SetWorkers(s.workers(max(chunks/2, 1)))
	defer merge.End()
	return s.Network(chunks, func(i, j int, asc bool) error {
		a, err := v.LoadRange(i*chunk, chunk)
		if err != nil {
			return err
		}
		b, err := v.LoadRange(j*chunk, chunk)
		if err != nil {
			return err
		}
		lo, hi := mergeSplit(a, b, less)
		if !asc {
			lo, hi = hi, lo
		}
		if err := v.StoreRange(i*chunk, lo); err != nil {
			return err
		}
		return v.StoreRange(j*chunk, hi)
	})
}

// CompactReal is the worker-pool form of the package-level CompactReal: it
// obliviously moves the real records in front of the dummies with
// s.SortVector and truncates to realCount. The padding appends and the
// truncation are sequential; only the sort itself is parallel.
func (s Sorter) CompactReal(v *BlockVector, mem int, isDummy func([]byte) bool, realCount int, pad []byte) error {
	return compactReal(s, v, mem, isDummy, realCount, pad)
}
