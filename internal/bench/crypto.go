package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"testing"
	"time"

	"oblivjoin/internal/remote"
	"oblivjoin/internal/xcrypto"
)

// cryptoBlock is the sealed-payload size the crypto experiment measures:
// the paper's 4 KB block (Section 9.1), which is also what a production
// deployment moves per ORAM slot.
const cryptoBlock = 4096

// cryptoCodecBlocks is the batch size of the simulated wire round trip:
// one Path-ORAM path read at tree height 4.
const cryptoCodecBlocks = 4

// CryptoSealerPoint is one (scheme, op) cell of the sealer comparison:
// AES-GCM (the current format-2 construction) against the legacy
// AES-CTR + HMAC-SHA256 stack it replaced. Allocations per op are
// deterministic and belong in the snapshot; MB/s is wall-clock, so it is
// only comparable between snapshots with compatible Host headers.
type CryptoSealerPoint struct {
	Scheme      string  `json:"scheme"` // "gcm" or "ctr-hmac"
	Op          string  `json:"op"`     // "seal" or "open"
	BlockBytes  int     `json:"block_bytes"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_s"`
}

// CryptoCodecPoint is one side of the wire-codec comparison: a full framed
// request/response round trip (encode, frame write, frame read, decode,
// both directions) through the allocating Encode/ReadFrame path versus the
// zero-copy Append/ReadFrameInto path the client and server actually run.
// Decode cost is included on both sides, so the reduction understates the
// pure encode/frame win.
type CryptoCodecPoint struct {
	Path        string  `json:"path"` // "encode" or "append"
	Blocks      int     `json:"blocks"`
	BlockBytes  int     `json:"block_bytes"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// NsPerOp is wall-clock and machine-dependent, printed but kept out of
	// the checked-in snapshot.
	NsPerOp float64 `json:"-"`
}

// CryptoReport is what the `crypto` experiment produces; BENCH_crypto.json
// is one checked-in snapshot.
type CryptoReport struct {
	Host
	Seed   int64               `json:"seed"`
	Sealer []CryptoSealerPoint `json:"sealer"`
	Codec  []CryptoCodecPoint  `json:"codec"`
	// CodecAllocReduction pins the zero-copy codec win numerically:
	// 1 - append_allocs/encode_allocs. CryptoBench fails if it drops
	// below 0.5 rather than snapshot a regression.
	CodecAllocReduction float64 `json:"codec_alloc_reduction"`
}

// benchRand is a deterministic nonce source (splitmix-style) so the sealer
// micro-benchmark never blocks on or allocates in the system entropy pool.
// Bench-only: real sealers keep crypto/rand.
type benchRand struct{ state uint64 }

func (r *benchRand) Read(p []byte) (int, error) {
	for i := range p {
		r.state += 0x9e3779b97f4a7c15
		z := r.state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		p[i] = byte(z ^ (z >> 31))
	}
	return len(p), nil
}

func (e *Env) benchSealer() (*xcrypto.Sealer, error) {
	key := make([]byte, xcrypto.KeySize)
	for i := range key {
		key[i] = byte(e.Seed >> (8 * (i % 8)))
	}
	return xcrypto.NewSealer(key, &benchRand{state: uint64(e.Seed)*2 + 1})
}

// cryptoSealerPoint measures one (scheme, op) cell: allocations via
// testing.AllocsPerRun, throughput via a timed loop over fresh plaintext.
func cryptoSealerPoint(s *xcrypto.Sealer, scheme, op string) (CryptoSealerPoint, error) {
	pt := CryptoSealerPoint{Scheme: scheme, Op: op, BlockBytes: cryptoBlock}
	plain := bytes.Repeat([]byte{0x5a}, cryptoBlock)
	var sealed []byte
	var err error
	switch scheme {
	case "gcm":
		sealed, err = s.Seal(plain)
	case "ctr-hmac":
		sealed, err = s.LegacySeal(plain)
	default:
		return pt, fmt.Errorf("bench: unknown crypto scheme %q", scheme)
	}
	if err != nil {
		return pt, err
	}

	// The steady-state call the ORAM loops make: GCM through the
	// buffer-reusing SealTo/OpenTo, the legacy construction through the
	// allocating calls it always had.
	buf := make([]byte, 0, xcrypto.SealedLen(cryptoBlock))
	var fnErr error
	var fn func()
	switch op {
	case "seal":
		if scheme == "gcm" {
			fn = func() { buf, fnErr = s.SealTo(buf[:0], plain) }
		} else {
			fn = func() { _, fnErr = s.LegacySeal(plain) }
		}
	case "open":
		if scheme == "gcm" {
			fn = func() { buf, fnErr = s.OpenTo(buf[:0], sealed) }
		} else {
			fn = func() { _, fnErr = s.Open(sealed) }
		}
	default:
		return pt, fmt.Errorf("bench: unknown crypto op %q", op)
	}
	pt.AllocsPerOp = testing.AllocsPerRun(200, fn)
	if fnErr != nil {
		return pt, fnErr
	}

	const iters = 4096
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	if fnErr != nil {
		return pt, fnErr
	}
	if elapsed > 0 {
		pt.MBPerSec = math.Round(float64(iters*cryptoBlock) / 1e6 / elapsed.Seconds())
	}
	return pt, nil
}

// cryptoCodecPoint measures one framed round trip — OpReadMany request out,
// blocks-carrying response back — over an in-memory connection.
func cryptoCodecPoint(zeroCopy bool) (CryptoCodecPoint, error) {
	pt := CryptoCodecPoint{Path: "encode", Blocks: cryptoCodecBlocks, BlockBytes: cryptoBlock}
	if zeroCopy {
		pt.Path = "append"
	}
	req := &remote.Request{Op: remote.OpReadMany, Store: "bench"}
	resp := &remote.Response{Status: remote.StatusOK}
	for i := 0; i < cryptoCodecBlocks; i++ {
		req.Indices = append(req.Indices, int64(i*7))
		resp.Blocks = append(resp.Blocks, bytes.Repeat([]byte{byte(i)}, cryptoBlock))
	}

	var conn bytes.Buffer
	var fnErr error
	halfTrip := func(payload []byte, decode func([]byte) error) {
		conn.Reset()
		if err := remote.WriteFrame(&conn, payload); err != nil {
			fnErr = err
			return
		}
		frame, err := remote.ReadFrame(&conn, remote.DefaultMaxFrame)
		if err != nil {
			fnErr = err
			return
		}
		if err := decode(frame); err != nil {
			fnErr = err
		}
	}
	halfTripInto := func(framed []byte, in []byte, decode func([]byte) error) []byte {
		conn.Reset()
		if _, err := conn.Write(framed); err != nil {
			fnErr = err
			return in
		}
		frame, err := remote.ReadFrameInto(&conn, remote.DefaultMaxFrame, in[:0])
		if err != nil {
			fnErr = err
			return in
		}
		if err := decode(frame); err != nil {
			fnErr = err
		}
		// Decode copied every payload out, so the frame buffer is free for
		// reuse on the next trip.
		return frame[:0]
	}
	decodeReq := func(b []byte) error { _, err := remote.DecodeRequest(b); return err }
	decodeResp := func(b []byte) error { _, err := remote.DecodeResponse(b); return err }

	var fn func()
	if zeroCopy {
		var out, in []byte
		fn = func() {
			out = remote.AppendFramedRequest(out[:0], req)
			in = halfTripInto(out, in, decodeReq)
			out = remote.AppendFramedResponse(out[:0], resp)
			in = halfTripInto(out, in, decodeResp)
		}
	} else {
		fn = func() {
			halfTrip(remote.EncodeRequest(req), decodeReq)
			halfTrip(remote.EncodeResponse(resp), decodeResp)
		}
	}
	pt.AllocsPerOp = testing.AllocsPerRun(200, fn)
	if fnErr != nil {
		return pt, fnErr
	}

	const iters = 2048
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	if fnErr != nil {
		return pt, fnErr
	}
	pt.NsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	return pt, nil
}

// CryptoBench measures the authenticated-encryption refactor: AES-GCM vs
// the legacy CTR+HMAC sealer on 4 KB blocks, and the zero-copy wire codec
// against the allocating one on a 4-block batched round trip. The codec
// allocation reduction is the refactor's headline claim, so the bench fails
// loudly if it falls below 50% rather than snapshot a regression.
func CryptoBench(e *Env) (*CryptoReport, error) {
	rep := &CryptoReport{Host: CurrentHost(), Seed: e.Seed}
	s, err := e.benchSealer()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	for _, scheme := range []string{"gcm", "ctr-hmac"} {
		for _, op := range []string{"seal", "open"} {
			pt, err := cryptoSealerPoint(s, scheme, op)
			if err != nil {
				return nil, err
			}
			rep.Sealer = append(rep.Sealer, pt)
		}
	}
	for _, zeroCopy := range []bool{false, true} {
		pt, err := cryptoCodecPoint(zeroCopy)
		if err != nil {
			return nil, err
		}
		rep.Codec = append(rep.Codec, pt)
	}
	encode, appendPt := rep.Codec[0], rep.Codec[1]
	if encode.AllocsPerOp > 0 {
		rep.CodecAllocReduction = 1 - appendPt.AllocsPerOp/encode.AllocsPerOp
	}
	if rep.CodecAllocReduction < 0.5 {
		return nil, fmt.Errorf("bench: zero-copy codec saves only %.0f%% allocs/op (%.1f vs %.1f), want >= 50%%",
			rep.CodecAllocReduction*100, appendPt.AllocsPerOp, encode.AllocsPerOp)
	}
	return rep, nil
}

// WriteCryptoReport renders the sealer and codec comparison tables.
func WriteCryptoReport(w io.Writer, rep *CryptoReport) {
	fmt.Fprintln(w, "== CRYPTO: AES-GCM vs legacy CTR+HMAC sealer; zero-copy vs allocating codec (DESIGN.md §2.14)")
	fmt.Fprintf(w, "%-10s %6s %8s %10s %10s\n", "scheme", "op", "block", "allocs/op", "MB/s")
	for _, p := range rep.Sealer {
		fmt.Fprintf(w, "%-10s %6s %8d %10.1f %10.0f\n",
			p.Scheme, p.Op, p.BlockBytes, p.AllocsPerOp, p.MBPerSec)
	}
	fmt.Fprintf(w, "%-10s %6s %8s %10s %10s\n", "codec", "blks", "block", "allocs/op", "ns/op")
	for _, p := range rep.Codec {
		fmt.Fprintf(w, "%-10s %6d %8d %10.1f %10.0f\n",
			p.Path, p.Blocks, p.BlockBytes, p.AllocsPerOp, p.NsPerOp)
	}
	fmt.Fprintf(w, "codec allocs/op reduction: %.0f%%\n\n", rep.CodecAllocReduction*100)
}

// RunCrypto executes the crypto experiment and writes the tables; the
// report is returned for snapshotting (BENCH_crypto.json).
func RunCrypto(w io.Writer, e *Env) (*CryptoReport, error) {
	rep, err := CryptoBench(e)
	if err != nil {
		return nil, err
	}
	WriteCryptoReport(w, rep)
	return rep, nil
}

// MarshalCryptoReport renders a CryptoReport as the BENCH_crypto.json
// snapshot format (indented, trailing newline).
func MarshalCryptoReport(rep *CryptoReport) ([]byte, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
