package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/telemetry"
	"oblivjoin/internal/tpch"
)

// RunPhases executes the per-phase breakdown experiment: the oblivious
// equi-join methods on Query TE2, each run under a telemetry span so the
// report can attribute wall time and traffic to the pipeline's phases
// (load → merge/scan → pad → filter → sort runs/merge → decode). The span
// tree is returned so callers (cmd/ojoinbench -trace-out) can persist it.
func RunPhases(w io.Writer, e *Env) (*telemetry.Node, error) {
	// Nest under an already-active trace (cmd/ojoinbench -trace-out) so the
	// persisted file contains this experiment's spans too.
	root := e.Trace.Child("bench.phases")
	if root == nil {
		root = telemetry.Start("bench.phases", nil)
	}
	prev := e.Trace
	e.Trace = root
	defer func() { e.Trace = prev }()

	db := tpch.Generate(tpch.Config{Suppliers: e.Scales.BinarySuppliers, Seed: e.Seed})
	q := db.TE2()
	for _, method := range []string{MSepSMJ, MSepINLJ, MSepINLJCache} {
		if _, err := e.RunBinary(method, q.Name, q.R1, q.R2, q.A1, q.A2); err != nil {
			return nil, fmt.Errorf("phases %s: %w", method, err)
		}
	}
	root.End()
	node := root.Export()
	fmt.Fprintf(w, "== PHASES: per-phase breakdown of %s (suppliers=%d payload=%dB)\n",
		q.Name, e.Scales.BinarySuppliers, e.payload())
	WritePhases(w, node, e.Cost)
	return node, nil
}

// WritePhases renders a span tree as a breakdown table: one row per phase,
// indented by depth, with wall time, block traffic, communication volume,
// network rounds, simulated cost, and each phase's share of the root's
// communication.
func WritePhases(w io.Writer, n *telemetry.Node, c storage.CostModel) {
	fmt.Fprintf(w, "%-36s %11s %8s %8s %10s %7s %9s %6s\n",
		"phase", "wall", "reads", "writes", "comm", "rounds", "cost", "share")
	total := float64(n.Stats.BytesMoved())
	n.Walk(func(_ string, depth int, node *telemetry.Node) {
		share := 0.0
		if total > 0 {
			share = 100 * float64(node.Stats.BytesMoved()) / total
		}
		label := strings.Repeat("  ", depth) + node.Name
		if node.Workers > 1 {
			label += fmt.Sprintf(" [w=%d]", node.Workers)
		}
		fmt.Fprintf(w, "%-36s %11s %8d %8d %9.3fMB %7d %8.3fs %5.1f%%\n",
			label, node.Duration().Round(time.Microsecond),
			node.Stats.BlockReads, node.Stats.BlockWrites,
			float64(node.Stats.BytesMoved())/1e6,
			node.Stats.NetworkRounds, c.CostSeconds(node.Stats), share)
	})
	fmt.Fprintln(w)
}
