package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"oblivjoin/internal/core"
	"oblivjoin/internal/diskstore"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
)

// DiskPoint is one measured backend configuration of the persistence
// experiment: the same seeded sort-merge join run over in-memory stores,
// a disk directory with per-commit fsync, and a disk directory with group
// commit. The oblivious cost columns (accesses, rounds, blocks) must be
// identical across backends — persistence sits entirely below the access
// pattern — while the WAL columns show what durability itself costs.
type DiskPoint struct {
	Backend   string `json:"backend"`
	SyncEvery int    `json:"sync_every,omitempty"`
	// Oblivious traffic of the join (setup excluded), identical per seed
	// across every backend.
	Accesses    int64 `json:"oram_accesses"`
	Rounds      int64 `json:"network_rounds"`
	BlocksMoved int64 `json:"blocks_moved"`
	// Durability work of the whole run (setup included — uploads are the
	// bulk of the WAL traffic), zero for the in-memory backend.
	WALRecords  int64 `json:"wal_records,omitempty"`
	WALBytes    int64 `json:"wal_bytes,omitempty"`
	WALFsyncs   int64 `json:"wal_fsyncs,omitempty"`
	SegFsyncs   int64 `json:"seg_fsyncs,omitempty"`
	Checkpoints int64 `json:"checkpoints,omitempty"`
	// NsPerAccess is wall-clock and machine-dependent, so it is printed but
	// kept out of the checked-in JSON snapshot.
	NsPerAccess float64 `json:"-"`
}

// DiskReport is what the `disk` experiment produces; BENCH_disk.json is one
// checked-in snapshot (deterministic fields only).
type DiskReport struct {
	Host
	Seed   int64       `json:"seed"`
	Points []DiskPoint `json:"points"`
}

// diskRun executes one seeded sort-merge join over the given backend.
// syncEvery < 0 selects the in-memory backend.
func diskRun(e *Env, syncEvery int) (DiskPoint, error) {
	pt := DiskPoint{Backend: "mem"}
	m := storage.NewMeter()
	topts, err := e.tableOpts(m, false, false, false)
	if err != nil {
		return pt, err
	}

	var dir *diskstore.Dir
	if syncEvery >= 0 {
		pt.Backend = "disk"
		pt.SyncEvery = syncEvery
		tmp, err := os.MkdirTemp("", "ojoin-bench-disk")
		if err != nil {
			return pt, err
		}
		defer os.RemoveAll(tmp)
		// The meter rides inside the store, exactly as it does for MemStore:
		// the bench measures logical traffic, not transport framing.
		if dir, err = diskstore.Open(tmp, diskstore.Options{SyncEvery: syncEvery, Meter: m}); err != nil {
			return pt, err
		}
		defer dir.Close()
		topts.OpenStore = dir.Opener()
	}

	const n = 48
	r1 := sortBenchRelation("db1", n, e.Seed)
	r2 := sortBenchRelation("db2", n, e.Seed+1)
	s1, err := table.Store(r1, []string{"k"}, topts)
	if err != nil {
		return pt, err
	}
	s2, err := table.Store(r2, []string{"k"}, topts)
	if err != nil {
		return pt, err
	}
	m.Reset() // setup traffic is not query cost
	copts, err := e.coreOpts(storage.NewMeter())
	if err != nil {
		return pt, err
	}
	label := fmt.Sprintf("disk %s", pt.Backend)
	if syncEvery >= 0 {
		label = fmt.Sprintf("disk sync=%d", syncEvery)
	}
	sp := e.Trace.ChildMeter(label, m)
	copts.Span = sp
	start := time.Now()
	_, err = core.SortMergeJoin(s1, s2, "k", "k", copts)
	elapsed := time.Since(start)
	if err != nil {
		sp.End()
		return pt, err
	}
	for _, st := range []*table.StoredTable{s1, s2} {
		for _, ps := range st.PathTelemetry() {
			pt.Accesses += ps.Accesses
		}
	}
	stats := m.Snapshot()
	pt.Rounds = stats.NetworkRounds
	pt.BlocksMoved = stats.BlocksMoved()
	if pt.Accesses > 0 {
		pt.NsPerAccess = float64(elapsed.Nanoseconds()) / float64(pt.Accesses)
	}
	if dir != nil {
		_, _, total := dir.Stats()
		pt.WALRecords = total.WALRecords
		pt.WALBytes = total.WALBytes
		pt.WALFsyncs = total.WALFsyncs
		pt.SegFsyncs = total.SegFsyncs
		pt.Checkpoints = total.Checkpoints
		sp.SetAttr("disk.wal_records", total.WALRecords)
		sp.SetAttr("disk.wal_bytes", total.WALBytes)
		sp.SetAttr("disk.wal_fsyncs", total.WALFsyncs)
		sp.SetAttr("disk.checkpoints", total.Checkpoints)
	}
	sp.End()
	return pt, nil
}

// DiskBench measures the in-memory baseline against the persistent backend
// at per-commit fsync and at group commit.
func DiskBench(e *Env) (*DiskReport, error) {
	rep := &DiskReport{Host: CurrentHost(), Seed: e.Seed}
	for _, syncEvery := range []int{-1, 1, 16} {
		pt, err := diskRun(e, syncEvery)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, pt)
	}
	// Persistence must be invisible to the oblivious cost: any backend that
	// changed the access pattern would be a leak, so fail loudly here rather
	// than snapshot a wrong number.
	base := rep.Points[0]
	for _, pt := range rep.Points[1:] {
		if pt.Accesses != base.Accesses || pt.Rounds != base.Rounds || pt.BlocksMoved != base.BlocksMoved {
			return nil, fmt.Errorf("bench: disk backend changed the oblivious cost: %+v vs %+v", pt, base)
		}
	}
	return rep, nil
}

// WriteDiskReport renders the backend comparison table.
func WriteDiskReport(w io.Writer, rep *DiskReport) {
	fmt.Fprintln(w, "== DISK: mem vs persistent backend, same join, same seed (DESIGN.md §2.10)")
	fmt.Fprintf(w, "%-10s %6s %10s %8s %8s %8s %10s %8s %7s %8s %10s\n",
		"backend", "sync", "accesses", "rounds", "blocks", "walrec", "walbytes", "fsyncs", "segfs", "ckpts", "ns/access")
	for _, p := range rep.Points {
		sync := "-"
		if p.Backend == "disk" {
			sync = fmt.Sprint(p.SyncEvery)
		}
		fmt.Fprintf(w, "%-10s %6s %10d %8d %8d %8d %10d %8d %7d %8d %10.0f\n",
			p.Backend, sync, p.Accesses, p.Rounds, p.BlocksMoved,
			p.WALRecords, p.WALBytes, p.WALFsyncs, p.SegFsyncs, p.Checkpoints, p.NsPerAccess)
	}
	fmt.Fprintln(w)
}

// RunDisk executes the disk experiment and writes the table; the report is
// returned for snapshotting (BENCH_disk.json).
func RunDisk(w io.Writer, e *Env) (*DiskReport, error) {
	rep, err := DiskBench(e)
	if err != nil {
		return nil, err
	}
	WriteDiskReport(w, rep)
	return rep, nil
}

// MarshalDiskReport renders a DiskReport as the BENCH_disk.json snapshot
// format (indented, trailing newline).
func MarshalDiskReport(rep *DiskReport) ([]byte, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
