package bench

import "runtime"

// Host records the machine context a benchmark snapshot was captured on.
// Every report that lands in a BENCH_*.json file embeds it, so a snapshot
// showing a ~1.0x parallel "speedup" is immediately explainable by its
// gomaxprocs=1 header instead of masquerading as a real result. Traffic
// counts are machine-independent; wall-clock and throughput numbers are
// only comparable between snapshots with compatible hosts.
type Host struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// CurrentHost samples the running machine.
func CurrentHost() Host {
	return Host{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
}
