package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestPlannerBenchSmoke runs the multi-query planner session end to end:
// the chosen plan is block-minimal per query (PlannerBench itself enforces
// argmin), the cold query builds the filtered input, both warm queries hit
// the plan cache — including Q2, a *different* join reusing the same
// prepared input — the warm repeat moves measurably fewer blocks than the
// cold run, and the snapshot JSON round-trips.
func TestPlannerBenchSmoke(t *testing.T) {
	var buf bytes.Buffer
	rep, err := RunPlanner(&buf, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Queries) != 3 {
		t.Fatalf("queries: %d, want 3", len(rep.Queries))
	}
	q1, q2, q3 := rep.Queries[0], rep.Queries[1], rep.Queries[2]
	if q1.CacheHit || !q2.CacheHit || !q3.CacheHit {
		t.Fatalf("cache hits: q1=%v q2=%v q3=%v, want false/true/true", q1.CacheHit, q2.CacheHit, q3.CacheHit)
	}
	if q1.PrepareBlocks == 0 {
		t.Fatal("cold query reported no prepare traffic")
	}
	if q2.PrepareBlocks != 0 || q3.PrepareBlocks != 0 {
		t.Fatalf("warm queries reported prepare traffic: q2=%d q3=%d", q2.PrepareBlocks, q3.PrepareBlocks)
	}
	if rep.WarmBlocks >= rep.ColdBlocks {
		t.Fatalf("warm run %d blocks >= cold %d — cache saved nothing", rep.WarmBlocks, rep.ColdBlocks)
	}
	if rep.CacheEntries != 2 || rep.CacheHits != 3 || rep.CacheMisses != 2 {
		t.Fatalf("cache stats %d/%d/%d, want 2 entries, 3 hits, 2 misses",
			rep.CacheEntries, rep.CacheHits, rep.CacheMisses)
	}
	for _, q := range rep.Queries {
		if q.PredictedBlocks <= 0 || q.MeasuredBlocks <= 0 || q.Candidates < 3 {
			t.Fatalf("query point measured nothing: %+v", q)
		}
	}
	if q1.Rows != q3.Rows {
		t.Fatalf("cold and warm repeats disagree on the result: %d vs %d rows", q1.Rows, q3.Rows)
	}
	if buf.Len() == 0 {
		t.Fatal("no table written")
	}
	out, err := MarshalPlannerReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back PlannerReport
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if len(back.Queries) != 3 || back.WarmSavings != rep.WarmSavings {
		t.Fatalf("snapshot dropped data: %+v", back)
	}
}
