package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestDiskBenchSmoke runs the persistence experiment end to end: the
// in-memory and disk backends must report identical oblivious cost (the
// invariance DiskBench itself enforces), the disk points must show real
// WAL traffic, and group commit must cost strictly fewer fsyncs than
// per-commit sync.
func TestDiskBenchSmoke(t *testing.T) {
	var buf bytes.Buffer
	rep, err := RunDisk(&buf, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points: %d, want 3", len(rep.Points))
	}
	mem, sync1, group := rep.Points[0], rep.Points[1], rep.Points[2]
	if mem.Backend != "mem" || sync1.SyncEvery != 1 || group.SyncEvery <= 1 {
		t.Fatalf("unexpected lineup: %+v", rep.Points)
	}
	if mem.Accesses == 0 || mem.Rounds == 0 {
		t.Fatalf("mem point measured nothing: %+v", mem)
	}
	if sync1.WALRecords == 0 || sync1.WALFsyncs == 0 {
		t.Fatalf("disk point shows no WAL traffic: %+v", sync1)
	}
	if group.WALFsyncs >= sync1.WALFsyncs {
		t.Fatalf("group commit did not reduce fsyncs: %d vs %d", group.WALFsyncs, sync1.WALFsyncs)
	}
	if buf.Len() == 0 {
		t.Fatal("no table written")
	}
	out, err := MarshalDiskReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back DiskReport
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if len(back.Points) != len(rep.Points) {
		t.Fatalf("snapshot dropped points: %d vs %d", len(back.Points), len(rep.Points))
	}
}
