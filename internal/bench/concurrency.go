package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"oblivjoin/internal/core"
	"oblivjoin/internal/remote"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
)

// ConcurrencyPoint is one measured client count of the serving-layer
// experiment: N tenants, each holding its own session against one shared
// server, run one seeded sort-merge join apiece at the same time. The
// traffic columns are deterministic per seed; throughput is wall-clock and
// host-dependent (see the report's Host header).
type ConcurrencyPoint struct {
	Clients int `json:"clients"`
	// Queries is the number of joins completed (one per client).
	Queries int     `json:"queries"`
	WallMS  float64 `json:"wall_ms"`
	// QueriesPerSec is Queries / wall time over the concurrent phase only
	// (table upload is excluded, as in the rounds experiment).
	QueriesPerSec float64 `json:"queries_per_sec"`
	// Accesses and Rounds aggregate every client's ORAM accesses and
	// network round trips; RoundsPerAccess must not degrade with client
	// count — the broker serializes rounds, it never adds any.
	Accesses        int64   `json:"oram_accesses"`
	Rounds          int64   `json:"network_rounds"`
	RoundsPerAccess float64 `json:"rounds_per_access"`
	// Broker counters for this point's server: rounds serialized and how
	// many of them waited behind another session's round.
	BrokerRounds    int64 `json:"broker_rounds"`
	BrokerContended int64 `json:"broker_contended"`
}

// ConcurrencyReport is what the `concurrency` experiment produces;
// BENCH_concurrency.json is one checked-in snapshot. CapAttempted and
// CapRejected record the admission-control exercise: with MaxSessions held
// open, every further hello must come back as a typed busy rejection.
type ConcurrencyReport struct {
	Host
	Seed         int64              `json:"seed"`
	MaxSessions  int                `json:"max_sessions"`
	Sweep        []int              `json:"client_sweep"`
	Points       []ConcurrencyPoint `json:"points"`
	CapAttempted int                `json:"cap_attempted"`
	CapRejected  int                `json:"cap_rejected"`
}

// ConcurrencyClientSweep is the client-count lineup the experiment measures.
var ConcurrencyClientSweep = []int{1, 2, 4, 8}

// concurrencyMaxSessions is the admission cap the experiment's servers run
// with; the sweep stays under it and the cap exercise fills it exactly.
const concurrencyMaxSessions = 8

// concurrencyClient is one tenant's session worth of work: dial, open a
// session, upload two tables into the tenant namespace, then (behind the
// start barrier) run the join. The returned stats are this client's own
// metered traffic.
func concurrencyClient(e *Env, addr, tenant string, seed int64, ready *sync.WaitGroup, start <-chan struct{}) (storage.Stats, int64, error) {
	// The ready group must be released exactly once — at the barrier on
	// success, or on the way out when setup fails (so the run doesn't hang
	// waiting for a client that never arrives).
	var once sync.Once
	setup := func() { once.Do(ready.Done) }
	defer setup()
	// The meter rides the remote client, so network rounds are counted at
	// the wire, exactly where the paper's round-trip argument lives.
	m := storage.NewMeter()
	c, err := remote.Dial(remote.ClientOptions{Addr: addr, Meter: m})
	if err != nil {
		return storage.Stats{}, 0, err
	}
	defer c.Close()
	if err := c.StartSession(tenant, time.Minute); err != nil {
		return storage.Stats{}, 0, err
	}

	env := *e
	env.Seed = seed
	topts, err := env.tableOpts(m, false, false, false)
	if err != nil {
		return storage.Stats{}, 0, err
	}
	topts.OpenStore = c.Opener()
	const n = 32
	r1 := sortBenchRelation("cb1", n, seed)
	r2 := sortBenchRelation("cb2", n, seed+1)
	s1, err := table.Store(r1, []string{"k"}, topts)
	if err != nil {
		return storage.Stats{}, 0, err
	}
	s2, err := table.Store(r2, []string{"k"}, topts)
	if err != nil {
		return storage.Stats{}, 0, err
	}
	m.Reset() // setup traffic is not query cost
	copts, err := env.coreOpts(storage.NewMeter())
	if err != nil {
		return storage.Stats{}, 0, err
	}
	// Each tenant's join runs under its own span, attributed to the server
	// session serving it (nil-safe when the run is untraced).
	sp := e.Trace.ChildMeter("session "+tenant, m)
	sp.SetAttr("session.id", c.Session())
	copts.Span = sp
	defer sp.End()

	setup()
	<-start
	if _, err := core.SortMergeJoin(s1, s2, "k", "k", copts); err != nil {
		return storage.Stats{}, 0, err
	}
	var accesses int64
	for _, st := range []*table.StoredTable{s1, s2} {
		for _, ps := range st.PathTelemetry() {
			accesses += ps.Accesses
		}
	}
	return m.Snapshot(), accesses, nil
}

// concurrencyRun measures one client count over a fresh server.
func concurrencyRun(e *Env, clients int) (ConcurrencyPoint, error) {
	pt := ConcurrencyPoint{Clients: clients}
	srv := remote.NewServer(remote.ServerOptions{
		MaxSessions:   concurrencyMaxSessions,
		MaxStoreBytes: 1 << 32,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return pt, err
	}
	defer srv.Close()

	start := make(chan struct{})
	var ready sync.WaitGroup
	ready.Add(clients)
	type result struct {
		stats    storage.Stats
		accesses int64
		err      error
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &results[i]
			r.stats, r.accesses, r.err = concurrencyClient(
				e, addr.String(), fmt.Sprintf("bench%d", i), e.Seed+int64(2*i), &ready, start)
		}(i)
	}
	// Every client's upload races the others' — that alone exercises the
	// broker — but the timed phase starts only once every table is in
	// place, so queries/sec measures joins, not uploads.
	ready.Wait()
	wall := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(wall)

	for _, r := range results {
		if r.err != nil {
			return pt, r.err
		}
		pt.Accesses += r.accesses
		pt.Rounds += r.stats.NetworkRounds
	}
	pt.Queries = clients
	pt.WallMS = float64(elapsed.Nanoseconds()) / 1e6
	if elapsed > 0 {
		pt.QueriesPerSec = float64(clients) / elapsed.Seconds()
	}
	if pt.Accesses > 0 {
		pt.RoundsPerAccess = float64(pt.Rounds) / float64(pt.Accesses)
	}
	bs := srv.BrokerStats()
	pt.BrokerRounds = bs.Rounds
	pt.BrokerContended = bs.Contended
	return pt, nil
}

// concurrencyCap exercises admission control: fill the session table to the
// cap, then count how many further hellos come back as typed busy
// rejections (all of them must).
func concurrencyCap(attempts int) (attempted, rejected int, err error) {
	srv := remote.NewServer(remote.ServerOptions{MaxSessions: concurrencyMaxSessions})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer srv.Close()

	var held []*remote.Client
	defer func() {
		for _, c := range held {
			c.Close()
		}
	}()
	for i := 0; i < concurrencyMaxSessions; i++ {
		c, err := remote.Dial(remote.ClientOptions{Addr: addr.String()})
		if err != nil {
			return 0, 0, err
		}
		held = append(held, c)
		if err := c.StartSession(fmt.Sprintf("cap%d", i), time.Minute); err != nil {
			return 0, 0, err
		}
	}
	for i := 0; i < attempts; i++ {
		c, err := remote.Dial(remote.ClientOptions{Addr: addr.String()})
		if err != nil {
			return attempted, rejected, err
		}
		attempted++
		err = c.StartSession(fmt.Sprintf("over%d", i), time.Minute)
		c.Close()
		switch {
		case errors.Is(err, remote.ErrBusy):
			rejected++
		case err == nil:
			return attempted, rejected, fmt.Errorf("bench: hello %d admitted past the %d-session cap", i, concurrencyMaxSessions)
		default:
			return attempted, rejected, err
		}
	}
	return attempted, rejected, nil
}

// ConcurrencyBench measures queries/sec and rounds-per-access against a
// real loopback server across ConcurrencyClientSweep, then exercises the
// admission cap.
func ConcurrencyBench(e *Env) (*ConcurrencyReport, error) {
	rep := &ConcurrencyReport{
		Host:        CurrentHost(),
		Seed:        e.Seed,
		MaxSessions: concurrencyMaxSessions,
		Sweep:       ConcurrencyClientSweep,
	}
	for _, clients := range ConcurrencyClientSweep {
		pt, err := concurrencyRun(e, clients)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, pt)
	}
	var err error
	rep.CapAttempted, rep.CapRejected, err = concurrencyCap(3)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteConcurrencyReport renders the serving-layer throughput table.
func WriteConcurrencyReport(w io.Writer, rep *ConcurrencyReport) {
	fmt.Fprintf(w, "== CONCURRENCY: sessions over one server, queries/sec vs client count (NumCPU=%d GOMAXPROCS=%d)\n",
		rep.NumCPU, rep.GOMAXPROCS)
	fmt.Fprintf(w, "%-8s %8s %10s %8s %10s %12s %10s %10s\n",
		"clients", "q/sec", "wall ms", "accesses", "rounds", "rounds/acc", "brk rnds", "contended")
	for _, p := range rep.Points {
		fmt.Fprintf(w, "%-8d %8.2f %10.1f %8d %10d %12.3f %10d %10d\n",
			p.Clients, p.QueriesPerSec, p.WallMS, p.Accesses, p.Rounds,
			p.RoundsPerAccess, p.BrokerRounds, p.BrokerContended)
	}
	fmt.Fprintf(w, "admission cap %d: %d/%d over-cap hellos rejected busy\n\n",
		rep.MaxSessions, rep.CapRejected, rep.CapAttempted)
}

// RunConcurrency executes the concurrency experiment and writes the table;
// the report is returned for snapshotting (BENCH_concurrency.json).
func RunConcurrency(w io.Writer, e *Env) (*ConcurrencyReport, error) {
	rep, err := ConcurrencyBench(e)
	if err != nil {
		return nil, err
	}
	WriteConcurrencyReport(w, rep)
	return rep, nil
}

// MarshalConcurrencyReport renders a ConcurrencyReport as the
// BENCH_concurrency.json snapshot format (indented, trailing newline).
func MarshalConcurrencyReport(rep *ConcurrencyReport) ([]byte, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
