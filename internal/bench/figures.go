package bench

import (
	"fmt"

	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/socialgraph"
	"oblivjoin/internal/tpch"
)

// Point is one figure data point: series (method), x (query or size), and
// the two panel values.
type Point struct {
	Series       string
	X            string
	A            float64 // panel (a): query cost or cloud storage
	B            float64 // panel (b): communication or client memory
	Real         int
	Extrapolated bool
}

// Figure is one regenerated paper figure.
type Figure struct {
	ID     string
	Title  string
	Config string
	ALabel string
	BLabel string
	Points []Point
}

func (e *Env) measurePoint(fig *Figure, m Measure, x string) {
	fig.Points = append(fig.Points, Point{
		Series:       m.Method,
		X:            x,
		A:            m.QueryCostSeconds(e.Cost),
		B:            m.CommMB(),
		Real:         m.Real,
		Extrapolated: m.Extrapolated,
	})
}

func queryFigure(e *Env, id, title, config string) *Figure {
	return &Figure{
		ID: id, Title: title, Config: config,
		ALabel: "query cost (s)", BLabel: "communication (MB)",
	}
}

// Fig9 reproduces Figure 9: binary equi-join on TPC-H, default setting.
func Fig9(e *Env) (*Figure, error) {
	db := tpch.Generate(tpch.Config{Suppliers: e.Scales.BinarySuppliers, Seed: e.Seed})
	fig := queryFigure(e, "fig9", "binary equi-join on TPC-H",
		fmt.Sprintf("suppliers=%d payload=%dB", e.Scales.BinarySuppliers, e.payload()))
	for _, q := range []tpch.BinaryQuery{db.TE1(), db.TE2(), db.TE3()} {
		for _, method := range BinaryMethods {
			m, err := e.RunBinary(method, q.Name, q.R1, q.R2, q.A1, q.A2)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", q.Name, method, err)
			}
			e.measurePoint(fig, m, q.Name)
		}
	}
	return fig, nil
}

// Fig10 reproduces Figure 10: binary equi-join on the social graph.
func Fig10(e *Env) (*Figure, error) {
	db := socialgraph.Generate(socialgraph.Config{Users: e.Scales.BinaryUsers, Seed: e.Seed})
	fig := queryFigure(e, "fig10", "binary equi-join on social graph",
		fmt.Sprintf("users=%d payload=%dB", e.Scales.BinaryUsers, e.payload()))
	for _, q := range []socialgraph.BinaryQuery{db.SE1(), db.SE2(), db.SE3()} {
		for _, method := range BinaryMethods {
			m, err := e.RunBinary(method, q.Name, q.R1, q.R2, q.A1, q.A2)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", q.Name, method, err)
			}
			e.measurePoint(fig, m, q.Name)
		}
	}
	return fig, nil
}

// Fig11 reproduces Figure 11: Query TE2 against raw data size.
func Fig11(e *Env) (*Figure, error) {
	fig := queryFigure(e, "fig11", "Query TE2 against raw data size", fmt.Sprintf("payload=%dB", e.payload()))
	for _, s := range e.Scales.BinarySweep {
		db := tpch.Generate(tpch.Config{Suppliers: s, Seed: e.Seed})
		q := db.TE2()
		x := fmt.Sprintf("%.1fMB", float64(db.RawBytes())/1e6)
		for _, method := range BinaryMethods {
			m, err := e.RunBinary(method, q.Name, q.R1, q.R2, q.A1, q.A2)
			if err != nil {
				return nil, fmt.Errorf("TE2@%d %s: %w", s, method, err)
			}
			e.measurePoint(fig, m, x)
		}
	}
	return fig, nil
}

// Fig12 reproduces Figure 12: Query SE2 against raw data size.
func Fig12(e *Env) (*Figure, error) {
	fig := queryFigure(e, "fig12", "Query SE2 against raw data size", fmt.Sprintf("payload=%dB", e.payload()))
	for _, u := range e.Scales.UserSweep {
		db := socialgraph.Generate(socialgraph.Config{Users: u, Seed: e.Seed})
		q := db.SE2()
		x := fmt.Sprintf("%dusers", u)
		for _, method := range BinaryMethods {
			m, err := e.RunBinary(method, q.Name, q.R1, q.R2, q.A1, q.A2)
			if err != nil {
				return nil, fmt.Errorf("SE2@%d %s: %w", u, method, err)
			}
			e.measurePoint(fig, m, x)
		}
	}
	return fig, nil
}

// Fig13 reproduces Figure 13: band joins on TPC-H.
func Fig13(e *Env) (*Figure, error) {
	db := tpch.Generate(tpch.Config{Suppliers: e.Scales.BandSuppliers, Seed: e.Seed})
	fig := queryFigure(e, "fig13", "band join on TPC-H",
		fmt.Sprintf("suppliers=%d payload=%dB", e.Scales.BandSuppliers, e.payload()))
	for _, q := range []tpch.BandQuery{db.TB1(), db.TB2()} {
		for _, method := range BandMethods {
			m, err := e.RunBand(method, q.Name, q.R1, q.R2, q.A1, q.A2, q.Op)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", q.Name, method, err)
			}
			e.measurePoint(fig, m, q.Name)
		}
	}
	return fig, nil
}

// Fig14 reproduces Figure 14: Query TB1 against raw data size.
func Fig14(e *Env) (*Figure, error) {
	fig := queryFigure(e, "fig14", "Query TB1 against raw data size", fmt.Sprintf("payload=%dB", e.payload()))
	for _, s := range e.Scales.BandSweep {
		db := tpch.Generate(tpch.Config{Suppliers: s, Seed: e.Seed})
		q := db.TB1()
		x := fmt.Sprintf("%.1fMB", float64(db.RawBytes())/1e6)
		for _, method := range BandMethods {
			m, err := e.RunBand(method, q.Name, q.R1, q.R2, q.A1, q.A2, q.Op)
			if err != nil {
				return nil, fmt.Errorf("TB1@%d %s: %w", s, method, err)
			}
			e.measurePoint(fig, m, x)
		}
	}
	return fig, nil
}

// Fig15 reproduces Figure 15: multiway equi-join on TPC-H.
func Fig15(e *Env) (*Figure, error) {
	db := tpch.Generate(tpch.Config{Suppliers: e.Scales.MultiSuppliers, Seed: e.Seed})
	fig := queryFigure(e, "fig15", "multiway equi-join on TPC-H",
		fmt.Sprintf("suppliers=%d payload=%dB", e.Scales.MultiSuppliers, e.payload()))
	for _, q := range []tpch.MultiQuery{db.TM1(), db.TM2(), db.TM3()} {
		for _, method := range MultiwayMethods {
			m, err := e.RunMultiway(method, q.Name, q.Rels, q.Query)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", q.Name, method, err)
			}
			e.measurePoint(fig, m, q.Name)
		}
	}
	return fig, nil
}

// Fig16 reproduces Figure 16: multiway equi-join on the social graph.
func Fig16(e *Env) (*Figure, error) {
	db := socialgraph.Generate(socialgraph.Config{Users: e.Scales.MultiUsers, Seed: e.Seed})
	fig := queryFigure(e, "fig16", "multiway equi-join on social graph",
		fmt.Sprintf("users=%d payload=%dB", e.Scales.MultiUsers, e.payload()))
	for _, q := range []socialgraph.MultiQuery{db.SM1(), db.SM2(), db.SM3()} {
		for _, method := range MultiwayMethods {
			m, err := e.RunMultiway(method, q.Name, q.Rels, q.Query)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", q.Name, method, err)
			}
			e.measurePoint(fig, m, q.Name)
		}
	}
	return fig, nil
}

// Fig17 reproduces Figure 17: Query TM2 against raw data size.
func Fig17(e *Env) (*Figure, error) {
	fig := queryFigure(e, "fig17", "Query TM2 against raw data size", fmt.Sprintf("payload=%dB", e.payload()))
	for _, s := range e.Scales.MultiSweep {
		db := tpch.Generate(tpch.Config{Suppliers: s, Seed: e.Seed})
		q := db.TM2()
		x := fmt.Sprintf("%.1fMB", float64(db.RawBytes())/1e6)
		for _, method := range MultiwayMethods {
			m, err := e.RunMultiway(method, q.Name, q.Rels, q.Query)
			if err != nil {
				return nil, fmt.Errorf("TM2@%d %s: %w", s, method, err)
			}
			e.measurePoint(fig, m, x)
		}
	}
	return fig, nil
}

// Fig18 reproduces Figure 18: Query SM2 against raw data size.
func Fig18(e *Env) (*Figure, error) {
	fig := queryFigure(e, "fig18", "Query SM2 against raw data size", fmt.Sprintf("payload=%dB", e.payload()))
	for _, u := range e.Scales.MultiUserSweep {
		db := socialgraph.Generate(socialgraph.Config{Users: u, Seed: e.Seed})
		q := db.SM2()
		x := fmt.Sprintf("%dusers", u)
		for _, method := range MultiwayMethods {
			m, err := e.RunMultiway(method, q.Name, q.Rels, q.Query)
			if err != nil {
				return nil, fmt.Errorf("SM2@%d %s: %w", u, method, err)
			}
			e.measurePoint(fig, m, x)
		}
	}
	return fig, nil
}

var paddingStrategies = []core.PaddingMode{core.PadNone, core.PadClosestPower, core.PadCartesian}

// paddingBinaryMethods is Figure 19's lineup: all secured binary methods.
var paddingBinaryMethods = []string{
	MObliDB, MODBJ, MSepSMJ, MSepINLJ, MSepINLJCache, MOneSMJ, MOneINLJ, MOneINLJCache,
}

// Fig19 reproduces Figure 19: padded vs non-padded binary equi-joins
// (Query TE2 and SE2).
func Fig19(e *Env) (*Figure, error) {
	fig := queryFigure(e, "fig19", "padding strategies, binary equi-join (TE2, SE2)",
		fmt.Sprintf("suppliers=%d users=%d payload=%dB", e.Scales.PadSuppliers, e.Scales.PadUsers, e.payload()))
	tdb := tpch.Generate(tpch.Config{Suppliers: e.Scales.PadSuppliers, Seed: e.Seed})
	sdb := socialgraph.Generate(socialgraph.Config{Users: e.Scales.PadUsers, Seed: e.Seed})
	queries := []struct {
		name   string
		r1, r2 *relation.Relation
		a1, a2 string
	}{
		{"TE2", tdb.TE2().R1, tdb.TE2().R2, "s_nationkey", "s_nationkey"},
		{"SE2", sdb.SE2().R1, sdb.SE2().R2, "dst", "src"},
	}
	saved := e.Padding
	defer func() { e.Padding = saved }()
	for _, q := range queries {
		for _, strat := range paddingStrategies {
			e.Padding = strat
			for _, method := range paddingBinaryMethods {
				m, err := e.RunBinary(method, q.name, q.r1, q.r2, q.a1, q.a2)
				if err != nil {
					return nil, fmt.Errorf("%s %s %v: %w", q.name, method, strat, err)
				}
				e.measurePoint(fig, m, q.name+"/"+strat.String())
			}
		}
	}
	return fig, nil
}

// paddingBandMethods is Figure 20's lineup.
var paddingBandMethods = []string{MSepINLJ, MSepINLJCache, MOneINLJ, MOneINLJCache}

// Fig20 reproduces Figure 20: padded vs non-padded band joins (TB1, TB2).
func Fig20(e *Env) (*Figure, error) {
	fig := queryFigure(e, "fig20", "padding strategies, band join (TB1, TB2)",
		fmt.Sprintf("suppliers=%d payload=%dB", e.Scales.PadBandSuppliers, e.payload()))
	db := tpch.Generate(tpch.Config{Suppliers: e.Scales.PadBandSuppliers, Seed: e.Seed})
	saved := e.Padding
	defer func() { e.Padding = saved }()
	for _, q := range []tpch.BandQuery{db.TB1(), db.TB2()} {
		for _, strat := range paddingStrategies {
			e.Padding = strat
			for _, method := range paddingBandMethods {
				m, err := e.RunBand(method, q.Name, q.R1, q.R2, q.A1, q.A2, q.Op)
				if err != nil {
					return nil, fmt.Errorf("%s %s %v: %w", q.Name, method, strat, err)
				}
				e.measurePoint(fig, m, q.Name+"/"+strat.String())
			}
		}
	}
	return fig, nil
}

// paddingMultiMethods is Figure 21's lineup.
var paddingMultiMethods = []string{MObliDB, MSepINLJ, MSepINLJCache, MOneINLJ, MOneINLJCache}

// Fig21 reproduces Figure 21: padded vs non-padded multiway joins (TM2, SM2).
func Fig21(e *Env) (*Figure, error) {
	fig := queryFigure(e, "fig21", "padding strategies, multiway equi-join (TM2, SM2)",
		fmt.Sprintf("suppliers=%d users=%d payload=%dB", e.Scales.PadMultiSupp, e.Scales.PadMultiUsers, e.payload()))
	tdb := tpch.Generate(tpch.Config{Suppliers: e.Scales.PadMultiSupp, Seed: e.Seed})
	sdb := socialgraph.Generate(socialgraph.Config{Users: e.Scales.PadMultiUsers, Seed: e.Seed})
	queries := []struct {
		name string
		rels map[string]*relation.Relation
		q    jointree.Query
	}{
		{"TM2", tdb.TM2().Rels, tdb.TM2().Query},
		{"SM2", sdb.SM2().Rels, sdb.SM2().Query},
	}
	saved := e.Padding
	defer func() { e.Padding = saved }()
	for _, q := range queries {
		for _, strat := range paddingStrategies {
			e.Padding = strat
			for _, method := range paddingMultiMethods {
				m, err := e.RunMultiway(method, q.name, q.rels, q.q)
				if err != nil {
					return nil, fmt.Errorf("%s %s %v: %w", q.name, method, strat, err)
				}
				e.measurePoint(fig, m, q.name+"/"+strat.String())
			}
		}
	}
	return fig, nil
}
