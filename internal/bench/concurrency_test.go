package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestConcurrencyBenchSmoke runs the serving-layer experiment at small
// client counts over a real loopback server: every client's join must move
// real ORAM traffic, the broker must have serialized rounds, and over-cap
// hellos must all come back as busy rejections.
func TestConcurrencyBenchSmoke(t *testing.T) {
	e := Quick()
	p1, err := concurrencyRun(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := concurrencyRun(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Queries != 1 || p2.Queries != 2 {
		t.Fatalf("query counts: %d and %d, want 1 and 2", p1.Queries, p2.Queries)
	}
	for _, p := range []ConcurrencyPoint{p1, p2} {
		if p.Accesses == 0 || p.Rounds == 0 || p.RoundsPerAccess == 0 {
			t.Fatalf("client count %d measured no traffic: %+v", p.Clients, p)
		}
		if p.BrokerRounds == 0 {
			t.Fatalf("client count %d saw no broker rounds: %+v", p.Clients, p)
		}
		if p.QueriesPerSec <= 0 {
			t.Fatalf("client count %d has no throughput: %+v", p.Clients, p)
		}
	}
	if p2.Accesses <= p1.Accesses {
		t.Fatalf("two clients accessed no more than one: %d vs %d", p2.Accesses, p1.Accesses)
	}

	attempted, rejected, err := concurrencyCap(2)
	if err != nil {
		t.Fatal(err)
	}
	if attempted != 2 || rejected != 2 {
		t.Fatalf("cap exercise: %d/%d rejected, want 2/2", rejected, attempted)
	}

	rep := &ConcurrencyReport{
		Host:         CurrentHost(),
		Seed:         e.Seed,
		MaxSessions:  concurrencyMaxSessions,
		Sweep:        []int{1, 2},
		Points:       []ConcurrencyPoint{p1, p2},
		CapAttempted: attempted,
		CapRejected:  rejected,
	}
	var buf bytes.Buffer
	WriteConcurrencyReport(&buf, rep)
	if buf.Len() == 0 {
		t.Fatal("no table written")
	}
	out, err := MarshalConcurrencyReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back ConcurrencyReport
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if back.NumCPU <= 0 || back.GOMAXPROCS <= 0 {
		t.Fatalf("snapshot lost its host header: %+v", back.Host)
	}
	if len(back.Points) != 2 || back.CapRejected != 2 {
		t.Fatalf("snapshot dropped data: %+v", back)
	}
}
