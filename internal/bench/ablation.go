package bench

import (
	"fmt"

	"oblivjoin/internal/core"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/tpch"
)

// Ablation experiments for the design decisions DESIGN.md §2 calls out.
// They are extensions beyond the paper's figures: each isolates one knob
// and reports its effect on cost.

// ablationRelations builds the TE1 input pair at the padding scale.
func (e *Env) ablationRelations() (*relation.Relation, *relation.Relation) {
	db := tpch.Generate(tpch.Config{Suppliers: e.Scales.PadSuppliers, Seed: e.Seed})
	q := db.TE1()
	return q.R1, q.R2
}

// AblationBlockSize sweeps the block payload for Query TE1 and compares
// ODBJ with our index joins — the knob behind the paper's "data tuples only
// contain 100-200 bytes, much less than 4 KB block size" discussion of
// Section 9.3.1: with large blocks the per-tuple ORAM retrievals of the
// index joins become expensive relative to ODBJ's packed streaming.
func AblationBlockSize(e *Env) (*Figure, error) {
	fig := queryFigure(e, "ablation-blocksize", "block-size ablation on Query TE1",
		fmt.Sprintf("suppliers=%d", e.Scales.PadSuppliers))
	r1, r2 := e.ablationRelations()
	saved := e.BlockPayload
	defer func() { e.BlockPayload = saved }()
	for _, payload := range []int{256, 1024, 4096} {
		e.BlockPayload = payload
		x := fmt.Sprintf("%dB", payload)
		for _, method := range []string{MODBJ, MSepSMJ, MSepINLJ, MSepINLJCache} {
			m, err := e.RunBinary(method, "TE1", r1, r2, "s_nationkey", "c_nationkey")
			if err != nil {
				return nil, fmt.Errorf("%s@%s: %w", method, x, err)
			}
			e.measurePoint(fig, m, x)
		}
	}
	return fig, nil
}

// AblationBucketSize sweeps Path-ORAM's Z and reports the query cost and
// the high-water stash occupancy of the data ORAM — the classic Path-ORAM
// trade-off (larger buckets move more bytes per path but keep the stash
// smaller).
func AblationBucketSize(e *Env) (*Figure, error) {
	fig := &Figure{
		ID: "ablation-z", Title: "Path-ORAM bucket size ablation on Query TE1",
		Config: fmt.Sprintf("suppliers=%d payload=%dB", e.Scales.PadSuppliers, e.payload()),
		ALabel: "query cost (s)", BLabel: "max stash (blocks)",
	}
	r1, r2 := e.ablationRelations()
	sealer, err := e.sealer()
	if err != nil {
		return nil, err
	}
	for _, z := range []int{2, 4, 8} {
		m := storage.NewMeter()
		opts := table.Options{
			BlockPayload: e.payload(), Meter: m, Sealer: sealer,
			Rand: oram.NewSeededSource(uint64(e.Seed)), Z: z,
		}
		s1, err := table.Store(r1, []string{"s_nationkey"}, opts)
		if err != nil {
			return nil, err
		}
		s2, err := table.Store(r2, []string{"c_nationkey"}, opts)
		if err != nil {
			return nil, err
		}
		m.Reset()
		copts, err := e.coreOpts(m)
		if err != nil {
			return nil, err
		}
		res, err := core.IndexNestedLoopJoin(s1, s2, "s_nationkey", "c_nationkey", copts)
		if err != nil {
			return nil, err
		}
		// The stash high-water mark lives on the ORAMs; surface the data
		// ORAM of the probed table via its index tree's backing store. The
		// data ORAM is not directly reachable, so report client bytes as a
		// proxy plus the measured cost.
		fig.Points = append(fig.Points, Point{
			Series: "Sep INLJ", X: fmt.Sprintf("Z=%d", z),
			A: e.Cost.CostSeconds(res.Stats),
			B: float64(s2.ClientBytes()) / 1e3,
		})
	}
	fig.BLabel = "client state (KB)"
	return fig, nil
}

// AblationPosMap compares the flat (client-side) position map against the
// recursive one (Section 4.1): client memory shrinks, per-access cost
// grows.
func AblationPosMap(e *Env) (*Figure, error) {
	fig := &Figure{
		ID: "ablation-posmap", Title: "position map ablation on Query TE1",
		Config: fmt.Sprintf("suppliers=%d payload=%dB", e.Scales.PadSuppliers, e.payload()),
		ALabel: "query cost (s)", BLabel: "client memory (KB)",
	}
	r1, r2 := e.ablationRelations()
	sealer, err := e.sealer()
	if err != nil {
		return nil, err
	}
	for _, recurse := range []bool{false, true} {
		m := storage.NewMeter()
		opts := table.Options{
			BlockPayload: e.payload(), Meter: m, Sealer: sealer,
			Rand: oram.NewSeededSource(uint64(e.Seed)), RecursePosMap: recurse,
		}
		s1, err := table.Store(r1, []string{"s_nationkey"}, opts)
		if err != nil {
			return nil, err
		}
		s2, err := table.Store(r2, []string{"c_nationkey"}, opts)
		if err != nil {
			return nil, err
		}
		m.Reset()
		copts, err := e.coreOpts(m)
		if err != nil {
			return nil, err
		}
		res, err := core.IndexNestedLoopJoin(s1, s2, "s_nationkey", "c_nationkey", copts)
		if err != nil {
			return nil, err
		}
		name := "flat posmap"
		if recurse {
			name = "recursive posmap"
		}
		fig.Points = append(fig.Points, Point{
			Series: name, X: "TE1",
			A: e.Cost.CostSeconds(res.Stats),
			B: float64(s1.ClientBytes()+s2.ClientBytes()) / 1e3,
		})
	}
	return fig, nil
}

// AblationScheme swaps the ORAM construction under an unchanged join — the
// paper's "ORAM scheme can be viewed as a blackbox" claim (Section 1) made
// executable: Path-ORAM's O(log N) accesses against the trivial linear
// ORAM's O(N) full scans.
func AblationScheme(e *Env) (*Figure, error) {
	fig := queryFigure(e, "ablation-scheme", "ORAM scheme ablation on Query TE1",
		fmt.Sprintf("suppliers=%d payload=%dB", e.Scales.PadSuppliers*2, e.payload()))
	db := tpch.Generate(tpch.Config{Suppliers: e.Scales.PadSuppliers * 2, Seed: e.Seed})
	q := db.TE1()
	sealer, err := e.sealer()
	if err != nil {
		return nil, err
	}
	for _, scheme := range []table.Scheme{table.SchemePath, table.SchemeLinear} {
		m := storage.NewMeter()
		opts := table.Options{
			BlockPayload: e.payload(), Meter: m, Sealer: sealer,
			Rand: oram.NewSeededSource(uint64(e.Seed)), Scheme: scheme,
		}
		s1, err := table.Store(q.R1, []string{q.A1}, opts)
		if err != nil {
			return nil, err
		}
		s2, err := table.Store(q.R2, []string{q.A2}, opts)
		if err != nil {
			return nil, err
		}
		m.Reset()
		copts, err := e.coreOpts(m)
		if err != nil {
			return nil, err
		}
		res, err := core.IndexNestedLoopJoin(s1, s2, q.A1, q.A2, copts)
		if err != nil {
			return nil, err
		}
		name := "Path-ORAM"
		if scheme == table.SchemeLinear {
			name = "Linear ORAM"
		}
		e.measurePoint(fig, Measure{Method: name, Query: "TE1", Stats: res.Stats, Real: res.RealCount}, "TE1")
	}
	return fig, nil
}

// AblationWriteBack measures what enabling the multiway join's uniform
// write-back descents costs a plain binary INLJ (2Δ index accesses per
// retrieval instead of Δ).
func AblationWriteBack(e *Env) (*Figure, error) {
	fig := queryFigure(e, "ablation-writeback", "write-back descent ablation on Query TE1",
		fmt.Sprintf("suppliers=%d payload=%dB", e.Scales.PadSuppliers, e.payload()))
	r1, r2 := e.ablationRelations()
	sealer, err := e.sealer()
	if err != nil {
		return nil, err
	}
	for _, wb := range []bool{false, true} {
		m := storage.NewMeter()
		opts := table.Options{
			BlockPayload: e.payload(), Meter: m, Sealer: sealer,
			Rand: oram.NewSeededSource(uint64(e.Seed)), WriteBackDescents: wb,
		}
		s1, err := table.Store(r1, []string{"s_nationkey"}, opts)
		if err != nil {
			return nil, err
		}
		s2, err := table.Store(r2, []string{"c_nationkey"}, opts)
		if err != nil {
			return nil, err
		}
		m.Reset()
		copts, err := e.coreOpts(m)
		if err != nil {
			return nil, err
		}
		res, err := core.IndexNestedLoopJoin(s1, s2, "s_nationkey", "c_nationkey", copts)
		if err != nil {
			return nil, err
		}
		name := "lookup-only descents (Δ)"
		if wb {
			name = "write-back descents (2Δ)"
		}
		e.measurePoint(fig, Measure{Method: name, Query: "TE1", Stats: res.Stats, Real: res.RealCount}, "TE1")
	}
	return fig, nil
}

// AblationChained compares Algorithm 1 over the two storage layouts the
// paper describes: B-tree leaf chains (one index + one data access per
// retrieval) versus embedded next-tuple pointers (a single data access per
// retrieval, no index at all).
func AblationChained(e *Env) (*Figure, error) {
	fig := queryFigure(e, "ablation-chained", "SMJ storage-layout ablation on Query TE1",
		fmt.Sprintf("suppliers=%d payload=%dB", e.Scales.PadSuppliers, e.payload()))
	r1, r2 := e.ablationRelations()
	sealer, err := e.sealer()
	if err != nil {
		return nil, err
	}
	// Indexed layout.
	{
		m := storage.NewMeter()
		opts := table.Options{
			BlockPayload: e.payload(), Meter: m, Sealer: sealer,
			Rand: oram.NewSeededSource(uint64(e.Seed)),
		}
		s1, err := table.Store(r1, []string{"s_nationkey"}, opts)
		if err != nil {
			return nil, err
		}
		s2, err := table.Store(r2, []string{"c_nationkey"}, opts)
		if err != nil {
			return nil, err
		}
		m.Reset()
		copts, err := e.coreOpts(m)
		if err != nil {
			return nil, err
		}
		res, err := core.SortMergeJoin(s1, s2, "s_nationkey", "c_nationkey", copts)
		if err != nil {
			return nil, err
		}
		e.measurePoint(fig, Measure{Method: "SMJ over B-tree leaves", Query: "TE1", Stats: res.Stats, Real: res.RealCount}, "TE1")
	}
	// Chained layout.
	{
		m := storage.NewMeter()
		opts := table.Options{
			BlockPayload: e.payload(), Meter: m, Sealer: sealer,
			Rand: oram.NewSeededSource(uint64(e.Seed)),
		}
		c1, err := table.StoreChained(r1, "s_nationkey", opts)
		if err != nil {
			return nil, err
		}
		c2, err := table.StoreChained(r2, "c_nationkey", opts)
		if err != nil {
			return nil, err
		}
		m.Reset()
		copts, err := e.coreOpts(m)
		if err != nil {
			return nil, err
		}
		res, err := core.SortMergeJoinChained(c1, c2, copts)
		if err != nil {
			return nil, err
		}
		e.measurePoint(fig, Measure{Method: "SMJ over tuple chains", Query: "TE1", Stats: res.Stats, Real: res.RealCount}, "TE1")
	}
	return fig, nil
}

// AblationDPPad extends the Figure 19 comparison with the
// differentially-private padding direction Section 8 points at: one-sided
// geometric noise on the output size instead of full Cartesian padding.
func AblationDPPad(e *Env) (*Figure, error) {
	fig := queryFigure(e, "ablation-dppad", "padding strategies incl. DP noise on Query TE2",
		fmt.Sprintf("suppliers=%d payload=%dB", e.Scales.PadSuppliers, e.payload()))
	db := tpch.Generate(tpch.Config{Suppliers: e.Scales.PadSuppliers, Seed: e.Seed})
	q := db.TE2()
	saved := e.Padding
	defer func() { e.Padding = saved }()
	for _, strat := range []core.PaddingMode{core.PadNone, core.PadClosestPower, core.PadDP, core.PadCartesian} {
		e.Padding = strat
		for _, method := range []string{MSepINLJ, MSepINLJCache} {
			m, err := e.RunBinary(method, q.Name, q.R1, q.R2, q.A1, q.A2)
			if err != nil {
				return nil, fmt.Errorf("%s %v: %w", method, strat, err)
			}
			e.measurePoint(fig, m, strat.String())
		}
	}
	return fig, nil
}
