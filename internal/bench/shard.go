package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"oblivjoin/internal/core"
	"oblivjoin/internal/remote"
	"oblivjoin/internal/shard"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
)

// ShardPoint is one measured shard count: the same seeded sort-merge join
// run over N loopback servers, each imposing an injected per-block service
// latency, with the client-side router striping every store across them.
// The traffic columns are deterministic per seed and MUST be identical at
// every shard count — the router merges each fan-out into one logical
// round — so only wall-clock moves.
type ShardPoint struct {
	Shards int     `json:"shards"`
	WallMS float64 `json:"wall_ms"`
	// Speedup is wall(1 shard) / wall(N shards) under the injected latency.
	Speedup float64 `json:"speedup"`
	// Accesses and Rounds are the logical ORAM accesses and network rounds
	// of the join; identical across the sweep by construction (enforced).
	Accesses        int64   `json:"oram_accesses"`
	Rounds          int64   `json:"network_rounds"`
	RoundsPerAccess float64 `json:"rounds_per_access"`
	// ShardBatches/ShardBlocks are each shard's share of the fan-out: how
	// many sub-batches it served and how many blocks they carried.
	ShardBatches []int64 `json:"shard_batches"`
	ShardBlocks  []int64 `json:"shard_blocks"`
	// ServerRequests is each server's own request count over the query
	// phase — the physical trips, as opposed to the logical Rounds.
	ServerRequests []int64 `json:"server_requests"`
}

// ShardReport is what the `shard` experiment produces; BENCH_shard.json is
// one checked-in snapshot.
type ShardReport struct {
	Host
	Seed              int64        `json:"seed"`
	Sweep             []int        `json:"shard_sweep"`
	PerBlockLatencyUS int64        `json:"per_block_latency_us"`
	Points            []ShardPoint `json:"points"`
}

// ShardSweep is the shard-count lineup the experiment measures.
var ShardSweep = []int{1, 2, 4}

// shardPerBlock is the injected per-block service latency. A fixed
// per-round latency alone would show no sharding win (a parallel fan-out
// still waits one round trip); the per-block component is the serialized
// server work — sealing, storage I/O — that N shards genuinely split,
// which is what distributing the store buys (DESIGN.md §2.12). It is set
// high enough that the modeled server work dominates the client-side join
// cost, as it does at the paper's block sizes.
const shardPerBlock = 1 * time.Millisecond

// shardEvictionBatch turns on the deferred-eviction scheduler for the
// shard runs: coalesced write rounds are where fan-out pays — a k-path
// eviction batch splits into N sub-batches of ~1/N the blocks each.
const shardEvictionBatch = 4

// shardRun measures one shard count: N loopback servers with the injected
// latency, one DialPool router striping both tables across them.
func shardRun(e *Env, shards int, perBlock time.Duration) (ShardPoint, error) {
	pt := ShardPoint{Shards: shards}
	var addrs []string
	var servers []*remote.Server
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()
	for s := 0; s < shards; s++ {
		srv := remote.NewServer(remote.ServerOptions{
			MaxStoreBytes: 1 << 32,
			Faults:        &remote.Shaper{PerBlock: perBlock},
		})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return pt, err
		}
		servers = append(servers, srv)
		addrs = append(addrs, addr.String())
	}

	// The meter rides the router: every fanned-out batch is accounted as
	// one logical round with its global indices, so the Rounds column is
	// comparable across shard counts by construction.
	m := storage.NewMeter()
	pool, err := shard.DialPool(addrs, remote.ClientOptions{Meter: m})
	if err != nil {
		return pt, err
	}
	defer pool.Close()

	topts, err := e.tableOpts(m, false, false, false)
	if err != nil {
		return pt, err
	}
	topts.OpenStore = pool.Opener()
	topts.EvictionBatch = shardEvictionBatch
	topts.PrefetchDepth = shardEvictionBatch
	const n = 32
	r1 := sortBenchRelation("shb1", n, e.Seed)
	r2 := sortBenchRelation("shb2", n, e.Seed+1)
	s1, err := table.Store(r1, []string{"k"}, topts)
	if err != nil {
		return pt, err
	}
	s2, err := table.Store(r2, []string{"k"}, topts)
	if err != nil {
		return pt, err
	}
	m.Reset() // setup traffic is not query cost
	pool.ResetStats()
	setupReqs := make([]int64, shards)
	for s, srv := range servers {
		setupReqs[s] = srv.TotalRequests()
	}
	copts, err := e.coreOpts(m)
	if err != nil {
		return pt, err
	}
	sp := e.Trace.ChildMeter(fmt.Sprintf("shards %d", shards), m)
	copts.Span = sp
	defer sp.End()

	wall := time.Now()
	if _, err := core.SortMergeJoin(s1, s2, "k", "k", copts); err != nil {
		return pt, err
	}
	pt.WallMS = float64(time.Since(wall).Nanoseconds()) / 1e6

	for _, st := range []*table.StoredTable{s1, s2} {
		for _, ps := range st.PathTelemetry() {
			pt.Accesses += ps.Accesses
		}
	}
	pt.Rounds = m.Snapshot().NetworkRounds
	if pt.Accesses > 0 {
		pt.RoundsPerAccess = float64(pt.Rounds) / float64(pt.Accesses)
	}
	stats := pool.Stats()
	sp.SetAttr("shard.count", int64(shards))
	for s, st := range stats {
		pt.ShardBatches = append(pt.ShardBatches, st.Batches)
		pt.ShardBlocks = append(pt.ShardBlocks, st.Blocks)
		sp.SetAttr(fmt.Sprintf("shard.%d.batches", s), st.Batches)
		sp.SetAttr(fmt.Sprintf("shard.%d.blocks", s), st.Blocks)
	}
	for s, srv := range servers {
		pt.ServerRequests = append(pt.ServerRequests, srv.TotalRequests()-setupReqs[s])
	}
	return pt, nil
}

// ShardBench measures the seeded join's wall clock against 1, 2, and 4
// latency-shaped loopback servers and enforces the invariant that sharding
// is free at the protocol level: identical logical rounds and accesses at
// every shard count.
func ShardBench(e *Env) (*ShardReport, error) {
	return shardBench(e, ShardSweep, shardPerBlock)
}

func shardBench(e *Env, sweep []int, perBlock time.Duration) (*ShardReport, error) {
	rep := &ShardReport{
		Host:              CurrentHost(),
		Seed:              e.Seed,
		Sweep:             sweep,
		PerBlockLatencyUS: perBlock.Microseconds(),
	}
	for _, shards := range sweep {
		pt, err := shardRun(e, shards, perBlock)
		if err != nil {
			return nil, err
		}
		if len(rep.Points) > 0 {
			base := rep.Points[0]
			if pt.Rounds != base.Rounds || pt.Accesses != base.Accesses {
				return nil, fmt.Errorf(
					"bench: %d shards cost %d rounds / %d accesses, 1 shard cost %d / %d — sharding must not change the logical protocol",
					shards, pt.Rounds, pt.Accesses, base.Rounds, base.Accesses)
			}
			if pt.WallMS > 0 {
				pt.Speedup = base.WallMS / pt.WallMS
			}
		} else {
			pt.Speedup = 1
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// WriteShardReport renders the fan-out scaling table.
func WriteShardReport(w io.Writer, rep *ShardReport) {
	fmt.Fprintf(w, "== SHARD: sort-merge join vs shard count, %dus injected per-block latency (NumCPU=%d GOMAXPROCS=%d)\n",
		rep.PerBlockLatencyUS, rep.NumCPU, rep.GOMAXPROCS)
	fmt.Fprintf(w, "%-8s %10s %9s %10s %10s %12s %s\n",
		"shards", "wall ms", "speedup", "accesses", "rounds", "rounds/acc", "blocks per shard")
	for _, p := range rep.Points {
		fmt.Fprintf(w, "%-8d %10.1f %8.2fx %10d %10d %12.3f %v\n",
			p.Shards, p.WallMS, p.Speedup, p.Accesses, p.Rounds, p.RoundsPerAccess, p.ShardBlocks)
	}
	fmt.Fprintln(w)
}

// RunShard executes the shard experiment and writes the table; the report
// is returned for snapshotting (BENCH_shard.json).
func RunShard(w io.Writer, e *Env) (*ShardReport, error) {
	rep, err := ShardBench(e)
	if err != nil {
		return nil, err
	}
	WriteShardReport(w, rep)
	return rep, nil
}

// MarshalShardReport renders a ShardReport as the BENCH_shard.json
// snapshot format (indented, trailing newline).
func MarshalShardReport(rep *ShardReport) ([]byte, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
