package bench

import (
	"fmt"
	"math"

	"oblivjoin/internal/relation"
	"oblivjoin/internal/socialgraph"
	"oblivjoin/internal/table"
	"oblivjoin/internal/tpch"
	"oblivjoin/internal/xcrypto"
)

// Storage families of Figures 7–8.
var storageFamilies = []string{
	"ObliDB", "ODBJ",
	"SepORAM", "SepORAM+Cache",
	"OneORAM", "OneORAM+Cache",
	"Raw Index", "Raw Index+Cache",
}

// tpchIndexAttrs lists the attributes the paper's TPC-H queries probe, so
// the storage figures account for every index a deployment would build.
var tpchIndexAttrs = map[string][]string{
	"supplier": {"s_nationkey", "s_acctbal"},
	"customer": {"c_nationkey", "c_custkey"},
	"nation":   {"n_nationkey", "n_regionkey"},
	"orders":   {"o_custkey", "o_orderkey"},
	"lineitem": {"l_orderkey"},
	"part":     {"p_retailprice"},
	"region":   {"r_regionkey"},
}

var socialIndexAttrs = map[string][]string{
	"popular-user":  {"src", "dst"},
	"normal-user":   {"src", "dst"},
	"inactive-user": {"src", "dst"},
}

// storageOf measures one family's cloud and client bytes for a dataset.
func (e *Env) storageOf(family string, rels []*relation.Relation, attrs map[string][]string) (cloud, client int64, err error) {
	payload := e.payload()
	blockBytes := int64(payload + xcrypto.Overhead)
	switch family {
	case "ObliDB", "ODBJ":
		// Encrypted data blocks only — no indexes, no ORAM tree.
		var blocks int64
		var dataBlocksTotal int64
		for _, r := range rels {
			per := payload / r.Schema.TupleSize()
			if per < 1 {
				per = 1
			}
			b := int64((r.Len() + per - 1) / per)
			blocks += b
			dataBlocksTotal += b
		}
		cloud = blocks * blockBytes
		if family == "ODBJ" {
			client = 2 * blockBytes // O(1): the paper's M = 2B working set
		} else {
			// ObliDB's trusted memory M = 50·log2(N) blocks.
			logN := math.Log2(float64(dataBlocksTotal) + 2)
			client = int64(50*logN) * blockBytes
		}
		return cloud, client, nil

	case "SepORAM", "SepORAM+Cache", "Raw Index", "Raw Index+Cache":
		raw := family == "Raw Index" || family == "Raw Index+Cache"
		cache := family == "SepORAM+Cache" || family == "Raw Index+Cache"
		opts, err := e.tableOpts(nil, raw, cache, false)
		if err != nil {
			return 0, 0, err
		}
		for _, r := range rels {
			st, err := table.Store(r, attrs[r.Schema.Table], opts)
			if err != nil {
				return 0, 0, err
			}
			cloud += st.CloudBytes()
			client += st.ClientBytes()
		}
		return cloud, client, nil

	case "OneORAM", "OneORAM+Cache":
		cache := family == "OneORAM+Cache"
		opts, err := e.tableOpts(nil, false, cache, false)
		if err != nil {
			return 0, 0, err
		}
		tables, shared, err := table.StoreShared(rels, attrs, opts)
		if err != nil {
			return 0, 0, err
		}
		cloud = shared.ServerBytes()
		client = shared.ClientBytes()
		for _, st := range tables {
			client += st.ClientBytes() // cached index levels (views add no ORAM state)
		}
		return cloud, client, nil
	}
	return 0, 0, fmt.Errorf("bench: unknown storage family %q", family)
}

// Fig7 reproduces Figure 7: storage cost against raw data size on TPC-H.
func Fig7(e *Env) (*Figure, error) {
	fig := &Figure{
		ID: "fig7", Title: "storage cost against raw data size on TPC-H",
		Config: fmt.Sprintf("payload=%dB", e.payload()),
		ALabel: "cloud storage (MB)", BLabel: "client memory (MB)",
	}
	for _, s := range e.Scales.StorageSuppliers {
		db := tpch.Generate(tpch.Config{Suppliers: s, Seed: e.Seed})
		x := fmt.Sprintf("%.1fMB", float64(db.RawBytes())/1e6)
		for _, fam := range storageFamilies {
			cloud, client, err := e.storageOf(fam, db.Tables(), tpchIndexAttrs)
			if err != nil {
				return nil, fmt.Errorf("%s@%d: %w", fam, s, err)
			}
			fig.Points = append(fig.Points, Point{
				Series: fam, X: x,
				A: float64(cloud) / 1e6, B: float64(client) / 1e6,
			})
		}
	}
	return fig, nil
}

// Fig8 reproduces Figure 8: storage cost against raw data size on the
// social graph.
func Fig8(e *Env) (*Figure, error) {
	fig := &Figure{
		ID: "fig8", Title: "storage cost against raw data size on social graph",
		Config: fmt.Sprintf("payload=%dB", e.payload()),
		ALabel: "cloud storage (MB)", BLabel: "client memory (MB)",
	}
	for _, u := range e.Scales.StorageUsers {
		db := socialgraph.Generate(socialgraph.Config{Users: u, Seed: e.Seed})
		x := fmt.Sprintf("%dusers", u)
		for _, fam := range storageFamilies {
			cloud, client, err := e.storageOf(fam, db.Tables(), socialIndexAttrs)
			if err != nil {
				return nil, fmt.Errorf("%s@%d: %w", fam, u, err)
			}
			fig.Points = append(fig.Points, Point{
				Series: fam, X: x,
				A: float64(cloud) / 1e6, B: float64(client) / 1e6,
			})
		}
	}
	return fig, nil
}
