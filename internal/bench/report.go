package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteFigure renders a figure as two aligned text tables (panels a and b),
// series as rows and x values as columns — the same series the paper plots.
func WriteFigure(w io.Writer, fig *Figure) {
	fmt.Fprintf(w, "== %s: %s (%s)\n", strings.ToUpper(fig.ID), fig.Title, fig.Config)
	xs := orderedXs(fig.Points)
	series := orderedSeries(fig.Points)
	byKey := map[string]Point{}
	for _, p := range fig.Points {
		byKey[p.Series+"\x00"+p.X] = p
	}
	panel := func(label string, pick func(Point) float64) {
		fmt.Fprintf(w, "-- %s\n", label)
		fmt.Fprintf(w, "%-18s", "series")
		for _, x := range xs {
			fmt.Fprintf(w, " %14s", x)
		}
		fmt.Fprintln(w)
		for _, s := range series {
			fmt.Fprintf(w, "%-18s", s)
			for _, x := range xs {
				p, ok := byKey[s+"\x00"+x]
				if !ok {
					fmt.Fprintf(w, " %14s", "-")
					continue
				}
				mark := ""
				if p.Extrapolated {
					mark = "~"
				}
				fmt.Fprintf(w, " %13s%s", formatSI(pick(p)), orSpace(mark))
			}
			fmt.Fprintln(w)
		}
	}
	panel("(a) "+fig.ALabel, func(p Point) float64 { return p.A })
	panel("(b) "+fig.BLabel, func(p Point) float64 { return p.B })
	fmt.Fprintln(w)
}

func orSpace(s string) string {
	if s == "" {
		return " "
	}
	return s
}

func formatSI(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.2fm", v*1e3)
	default:
		return fmt.Sprintf("%.2fu", v*1e6)
	}
}

func orderedXs(points []Point) []string {
	var xs []string
	seen := map[string]bool{}
	for _, p := range points {
		if !seen[p.X] {
			seen[p.X] = true
			xs = append(xs, p.X)
		}
	}
	return xs
}

func orderedSeries(points []Point) []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range points {
		if !seen[p.Series] {
			seen[p.Series] = true
			out = append(out, p.Series)
		}
	}
	return out
}

// WriteFigureCSV renders a figure as plot-ready CSV rows:
// figure,series,x,a,b,real,extrapolated.
func WriteFigureCSV(w io.Writer, fig *Figure) {
	fmt.Fprintf(w, "# %s: %s (%s); a=%s b=%s\n", fig.ID, fig.Title, fig.Config, fig.ALabel, fig.BLabel)
	fmt.Fprintln(w, "figure,series,x,a,b,real,extrapolated")
	for _, p := range fig.Points {
		fmt.Fprintf(w, "%s,%q,%q,%g,%g,%d,%t\n", fig.ID, p.Series, p.X, p.A, p.B, p.Real, p.Extrapolated)
	}
}

// figureRunners maps experiment IDs to their runners.
func figureRunners() map[string]func(*Env) (*Figure, error) {
	return map[string]func(*Env) (*Figure, error){
		"fig7": Fig7, "fig8": Fig8, "fig9": Fig9, "fig10": Fig10,
		"fig11": Fig11, "fig12": Fig12, "fig13": Fig13, "fig14": Fig14,
		"fig15": Fig15, "fig16": Fig16, "fig17": Fig17, "fig18": Fig18,
		"fig19": Fig19, "fig20": Fig20, "fig21": Fig21,
		"ablation-blocksize": AblationBlockSize,
		"ablation-z":         AblationBucketSize,
		"ablation-posmap":    AblationPosMap,
		"ablation-writeback": AblationWriteBack,
		"ablation-scheme":    AblationScheme,
		"ablation-chained":   AblationChained,
		"ablation-dppad":     AblationDPPad,
	}
}

// RunCSV executes one figure experiment and writes CSV instead of tables.
func RunCSV(w io.Writer, e *Env, id string) error {
	f, ok := figureRunners()[id]
	if !ok {
		return fmt.Errorf("bench: experiment %q has no CSV form", id)
	}
	fig, err := f(e)
	if err != nil {
		return err
	}
	WriteFigureCSV(w, fig)
	return nil
}

// WriteTable1 renders the Table 1 verification.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "== TABLE1: retrieval-count formulas (Theorems 1-4)")
	fmt.Fprintf(w, "%-36s %-18s %12s %12s %s\n", "algorithm", "formula", "predicted", "measured", "ok")
	for _, r := range rows {
		ok := "yes"
		if r.Measured != r.Predicted {
			ok = "NO"
		}
		fmt.Fprintf(w, "%-36s %-18s %12d %12d %s\n", r.Algorithm, r.Formula, r.Predicted, r.Measured, ok)
	}
	fmt.Fprintln(w)
}

// Experiments lists every runnable experiment by ID: the paper's Table 1
// and Figures 7–21, plus this repo's ablations, the parallel-sort engine
// comparison ("sort"), the telemetry-driven per-phase breakdown ("phases"),
// the deferred-eviction round-trip comparison ("rounds"), the mem-vs-disk
// backend invariance check ("disk"), the multi-session serving-layer
// throughput sweep ("concurrency"), the striped-store fan-out scaling
// sweep ("shard"), the per-op server-side latency-histogram profile
// ("latency"), the authenticated-crypto/zero-copy-codec micro-bench
// ("crypto"), and the cost-based planner's multi-query cache-reuse session
// ("planner").
func Experiments() []string {
	ids := []string{"table1"}
	for i := 7; i <= 21; i++ {
		ids = append(ids, fmt.Sprintf("fig%d", i))
	}
	return append(ids,
		"ablation-blocksize", "ablation-z", "ablation-posmap",
		"ablation-writeback", "ablation-scheme", "ablation-chained", "ablation-dppad",
		"sort", "phases", "rounds", "disk", "concurrency", "shard", "latency", "crypto", "planner")
}

// Run executes one experiment by ID and writes its report.
func Run(w io.Writer, e *Env, id string) error {
	if id == "sort" {
		_, err := RunSort(w, e)
		return err
	}
	if id == "phases" {
		_, err := RunPhases(w, e)
		return err
	}
	if id == "rounds" {
		_, err := RunRounds(w, e)
		return err
	}
	if id == "disk" {
		_, err := RunDisk(w, e)
		return err
	}
	if id == "concurrency" {
		_, err := RunConcurrency(w, e)
		return err
	}
	if id == "shard" {
		_, err := RunShard(w, e)
		return err
	}
	if id == "latency" {
		_, err := RunLatency(w, e)
		return err
	}
	if id == "crypto" {
		_, err := RunCrypto(w, e)
		return err
	}
	if id == "planner" {
		_, err := RunPlanner(w, e)
		return err
	}
	if id == "table1" {
		rows, err := Table1(e)
		if err != nil {
			return err
		}
		WriteTable1(w, rows)
		costs, err := Table1Costs(e)
		if err != nil {
			return err
		}
		fmt.Fprint(w, WriteTable1Costs(costs))
		fmt.Fprintln(w)
		return CheckTable1(rows)
	}
	f, ok := figureRunners()[id]
	if !ok {
		valid := Experiments()
		sort.Strings(valid)
		return fmt.Errorf("bench: unknown experiment %q (valid: %s)", id, strings.Join(valid, ", "))
	}
	fig, err := f(e)
	if err != nil {
		return err
	}
	WriteFigure(w, fig)
	return nil
}
