package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestLatencyBenchSmoke runs the latency experiment at 1 and 2 shards
// with a tiny injected per-block latency (CI-fast) and checks the merged
// per-op histograms, the queue-wait / store-I/O decomposition, and the
// JSON snapshot round trip.
func TestLatencyBenchSmoke(t *testing.T) {
	e := Quick()
	rep, err := latencyBench(e, []int{1, 2}, 2*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		if len(p.Ops) == 0 {
			t.Fatalf("%d-shard point has no per-op distributions", p.Shards)
		}
		for _, o := range p.Ops {
			if o.Count <= 0 {
				t.Fatalf("op %q has zero count at %d shards", o.Op, p.Shards)
			}
			if o.P50US < 0 || o.P95US < o.P50US || o.P99US < o.P95US {
				t.Fatalf("op %q quantiles not monotone: %+v", o.Op, o)
			}
			// 2us per block is injected on every store op, so service-time
			// medians can't be sub-microsecond.
			if o.P50US == 0 {
				t.Fatalf("op %q p50 is zero despite injected latency", o.Op)
			}
		}
		if p.StoreIO.Count == 0 || p.QueueWait.Count == 0 {
			t.Fatalf("%d-shard point missing the queue/store decomposition: %+v", p.Shards, p)
		}
		if len(p.ShardP95US) != p.Shards {
			t.Fatalf("%d-shard point has %d shard p95 entries", p.Shards, len(p.ShardP95US))
		}
		if p.Skew <= 0 {
			t.Fatalf("%d-shard point skew = %v, want > 0", p.Shards, p.Skew)
		}
		if p.WallMS <= 0 {
			t.Fatalf("%d-shard point wall time %v", p.Shards, p.WallMS)
		}
	}

	var buf bytes.Buffer
	WriteLatencyReport(&buf, rep)
	if buf.Len() == 0 {
		t.Fatal("report rendered empty")
	}
	out, err := MarshalLatencyReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back LatencyReport
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.PerBlockLatencyUS != 2 || len(back.Points) != 2 {
		t.Fatalf("snapshot round-trip mismatch: %+v", back)
	}
}
