package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestCryptoBenchSmoke runs the crypto experiment end to end: both sealer
// schemes at both ops, the zero-copy codec saving at least half the
// allocations of the allocating path (CryptoBench itself enforces the 50%
// floor), and the snapshot JSON round-tripping with allocs/op intact.
func TestCryptoBenchSmoke(t *testing.T) {
	var buf bytes.Buffer
	rep, err := RunCrypto(&buf, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sealer) != 4 {
		t.Fatalf("sealer points: %d, want 4", len(rep.Sealer))
	}
	for _, p := range rep.Sealer {
		if p.BlockBytes != cryptoBlock || p.MBPerSec <= 0 {
			t.Fatalf("sealer point measured nothing: %+v", p)
		}
	}
	if len(rep.Codec) != 2 {
		t.Fatalf("codec points: %d, want 2", len(rep.Codec))
	}
	encode, appendPt := rep.Codec[0], rep.Codec[1]
	if encode.Path != "encode" || appendPt.Path != "append" {
		t.Fatalf("unexpected codec lineup: %+v", rep.Codec)
	}
	if appendPt.AllocsPerOp > encode.AllocsPerOp/2 {
		t.Fatalf("zero-copy codec allocs/op %.1f not <= half of %.1f",
			appendPt.AllocsPerOp, encode.AllocsPerOp)
	}
	if rep.CodecAllocReduction < 0.5 {
		t.Fatalf("codec alloc reduction %.2f < 0.5", rep.CodecAllocReduction)
	}
	if buf.Len() == 0 {
		t.Fatal("no table written")
	}
	out, err := MarshalCryptoReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back CryptoReport
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if len(back.Sealer) != 4 || len(back.Codec) != 2 {
		t.Fatalf("snapshot dropped points: %+v", back)
	}
	if back.Codec[0].AllocsPerOp != encode.AllocsPerOp {
		t.Fatalf("snapshot lost allocs/op: %+v", back.Codec)
	}
}
