package bench

import (
	"fmt"

	"oblivjoin/internal/baseline"
	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/tpch"
)

// Table1Row is one verified line of the paper's Table 1: an algorithm, the
// closed-form retrieval bound, and the measured value.
type Table1Row struct {
	Algorithm string
	Formula   string
	Predicted int64
	Measured  int64
}

// Table1 verifies Theorems 1–4 empirically: it runs every algorithm of the
// paper's Table 1 "Ours" block on a randomized instance and checks the
// measured per-table retrieval count against the closed form.
func Table1(e *Env) ([]Table1Row, error) {
	sealer, err := e.sealer()
	if err != nil {
		return nil, err
	}
	mk := func(name string, n, dom int, seed int64) *relation.Relation {
		rel := &relation.Relation{Schema: relation.Schema{Table: name, Columns: []string{"a", "b"}}}
		src := oram.NewSeededSource(uint64(seed))
		for i := 0; i < n; i++ {
			rel.Tuples = append(rel.Tuples, relation.Tuple{Values: []int64{
				int64(src.Uint64() % uint64(dom)), int64(src.Uint64() % uint64(dom)),
			}})
		}
		return rel
	}
	r1 := mk("x", 37, 9, e.Seed)
	r2 := mk("y", 29, 9, e.Seed+1)
	r3 := mk("z", 23, 9, e.Seed+2)

	topts := table.Options{BlockPayload: e.payload(), Sealer: sealer, Rand: oram.NewSeededSource(uint64(e.Seed))}
	copts := core.Options{Sealer: sealer, OutBlockSize: e.payload()}
	store := func(rel *relation.Relation, attrs []string, wb bool) (*table.StoredTable, error) {
		o := topts
		o.WriteBackDescents = wb
		return table.Store(rel, attrs, o)
	}

	var rows []Table1Row
	s1, err := store(r1, []string{"a"}, false)
	if err != nil {
		return nil, err
	}
	s2, err := store(r2, []string{"a"}, false)
	if err != nil {
		return nil, err
	}

	smj, err := core.SortMergeJoin(s1, s2, "a", "a", copts)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Algorithm: "SMJ (Theorem 1)",
		Formula:   "|T1|+|T2|+|R|+1",
		Predicted: core.NumtrSortMerge(37, 29, int64(smj.RealCount)),
		Measured:  smj.Steps,
	})

	inlj, err := core.IndexNestedLoopJoin(s1, s2, "a", "a", copts)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Algorithm: "INLJ (Theorem 2)",
		Formula:   "|T1|+|R|",
		Predicted: core.NumtrINLJ(37, int64(inlj.RealCount)),
		Measured:  inlj.Steps,
	})

	band, err := core.BandJoin(s1, s2, "a", "a", core.BandLess, copts)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Algorithm: "Band INLJ (Theorem 3)",
		Formula:   "|T1|+|R|",
		Predicted: core.NumtrBand(37, int64(band.RealCount)),
		Measured:  band.Steps,
	})

	tree, err := jointree.Build(jointree.Query{
		Tables: []string{"x", "y", "z"},
		Preds: []jointree.Pred{
			{Left: "x", LeftAttr: "a", Right: "y", RightAttr: "a"},
			{Left: "y", LeftAttr: "b", Right: "z", RightAttr: "b"},
		},
	})
	if err != nil {
		return nil, err
	}
	m1, err := store(r1, nil, true)
	if err != nil {
		return nil, err
	}
	m2, err := store(r2, []string{"a"}, true)
	if err != nil {
		return nil, err
	}
	m3, err := store(r3, []string{"b"}, true)
	if err != nil {
		return nil, err
	}
	multi, err := core.MultiwayJoin(core.MultiwayInput{Tree: tree, Tables: []*table.StoredTable{m1, m2, m3}}, copts)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Algorithm: "Multiway INLJ (Theorem 4, padded)",
		Formula:   "|T1|+2Σ|Tj|+|R|",
		Predicted: core.NumtrMultiway([]int64{37, 29, 23}, int64(multi.RealCount)),
		Measured:  multi.PaddedSteps,
	})
	return rows, nil
}

// Table1Cost is one measured-cost line of the comparison table: an
// algorithm executed on the common instance with its traffic and client
// memory, mirroring the computation/cloud/client columns of the paper's
// Table 1.
type Table1Cost struct {
	Algorithm   string
	CommMB      float64
	ClientBytes int64
}

// Table1Costs measures every algorithm of the paper's Table 1 on a common
// binary equi-join instance (TE1 at the padding scale): the Cartesian
// baseline, ODBJ, the PF sort-merge joins (on a PF-shaped instance, their
// only supported case), and our SMJ/INLJ(+Cache) in both ORAM settings.
func Table1Costs(e *Env) ([]Table1Cost, error) {
	db := tpch.Generate(tpch.Config{Suppliers: e.Scales.PadSuppliers, Seed: e.Seed})
	q := db.TE1()
	var out []Table1Cost
	for _, method := range BinaryMethods {
		m, err := e.RunBinary(method, q.Name, q.R1, q.R2, q.A1, q.A2)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", method, err)
		}
		out = append(out, Table1Cost{Algorithm: method, CommMB: m.CommMB()})
	}
	// The PF-only joins (Opaque, ObliDB 0-OM) need a one-to-many instance:
	// nation (primary) joined with supplier (foreign).
	bopts, err := e.baseOpts(storage.NewMeter())
	if err != nil {
		return nil, err
	}
	bopts.Meter = storage.NewMeter()
	pf, err := baseline.PFSortMergeJoin(db.Nation, db.Supplier, "n_nationkey", "s_nationkey", bopts)
	if err != nil {
		return nil, err
	}
	out = append(out, Table1Cost{Algorithm: "Opaque Join (PF: nation⋈supplier)", CommMB: float64(pf.Stats.BytesMoved()) / 1e6})
	zeroOM := bopts
	zeroOM.Meter = storage.NewMeter()
	zeroOM.Mem = 2 // 0-OM: O(1) trusted memory
	pf0, err := baseline.PFSortMergeJoin(db.Nation, db.Supplier, "n_nationkey", "s_nationkey", zeroOM)
	if err != nil {
		return nil, err
	}
	out = append(out, Table1Cost{Algorithm: "0-OM Join (PF: nation⋈supplier)", CommMB: float64(pf0.Stats.BytesMoved()) / 1e6})
	return out, nil
}

// WriteTable1Costs renders the measured-cost section.
func WriteTable1Costs(rows []Table1Cost) string {
	s := "-- measured communication on the common instance\n"
	for _, r := range rows {
		s += fmt.Sprintf("%-36s %10.2f MB\n", r.Algorithm, r.CommMB)
	}
	return s
}

// CheckTable1 returns an error if any measured count exceeds its bound, or
// if the exact theorems (1–3) are violated.
func CheckTable1(rows []Table1Row) error {
	for _, r := range rows {
		if r.Algorithm == "Multiway INLJ (Theorem 4, padded)" {
			if r.Measured != r.Predicted {
				return fmt.Errorf("%s: measured %d != padded bound %d", r.Algorithm, r.Measured, r.Predicted)
			}
			continue
		}
		if r.Measured != r.Predicted {
			return fmt.Errorf("%s: measured %d != predicted %d", r.Algorithm, r.Measured, r.Predicted)
		}
	}
	return nil
}
