package bench

import (
	"bytes"
	"strings"
	"testing"

	"oblivjoin/internal/baseline"
	"oblivjoin/internal/core"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
)

func TestTable1Verifies(t *testing.T) {
	rows, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTable1(rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, Quick(), "fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentsList(t *testing.T) {
	ids := Experiments()
	if len(ids) != 32 {
		t.Fatalf("%d experiments, want 32 (table1 + fig7..fig21 + 7 ablations + sort + phases + rounds + disk + concurrency + shard + latency + crypto + planner)", len(ids))
	}
}

// TestQuickFiguresRun smoke-tests every figure runner end to end at tiny
// scale and sanity-checks the headline relationships the paper reports.
func TestQuickFiguresRun(t *testing.T) {
	if testing.Short() {
		t.Skip("quick figures still take a few seconds")
	}
	e := Quick()

	fig9, err := Fig9(e)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Point{}
	for _, p := range fig9.Points {
		byKey[p.Series+"/"+p.X] = p
	}
	// Raw baselines are far cheaper than the oblivious joins.
	for _, q := range []string{"TE1", "TE2", "TE3"} {
		sep := byKey[MSepINLJ+"/"+q]
		raw := byKey[MRawINLJ+"/"+q]
		if sep.B < 5*raw.B {
			t.Errorf("%s: Sep INLJ %.2fMB vs Raw INLJ %.2fMB — blowup below 5x", q, sep.B, raw.B)
		}
		// +Cache never hurts (at tiny scale a one-level index leaves nothing
		// to cache, so equality is possible).
		if c := byKey[MSepINLJCache+"/"+q]; c.B > sep.B {
			t.Errorf("%s: cache increased communication (%.2f vs %.2f)", q, c.B, sep.B)
		}
	}

	fig7, err := Fig7(e)
	if err != nil {
		t.Fatal(err)
	}
	cloud := map[string]float64{}
	for _, p := range fig7.Points {
		if p.X == orderedXs(fig7.Points)[0] {
			cloud[p.Series] = p.A
		}
	}
	// ObliDB/ODBJ minimal cloud; ORAM families several times larger; raw in
	// between (paper Fig. 7a).
	if !(cloud["ObliDB"] <= cloud["Raw Index"] && cloud["Raw Index"] < cloud["SepORAM"]) {
		t.Errorf("cloud storage ordering violated: %v", cloud)
	}

	fig15, err := Fig15(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range orderedXs(fig15.Points) {
		var oblidb, sep float64
		for _, p := range fig15.Points {
			if p.X != x {
				continue
			}
			switch p.Series {
			case MObliDB:
				oblidb = p.B
			case MSepINLJ:
				sep = p.B
			}
		}
		if oblidb < sep {
			t.Errorf("%s: ObliDB (%.2fMB) cheaper than Sep INLJ (%.2fMB) — multiway speedup missing", x, oblidb, sep)
		}
	}
}

func TestWriteFigureFormatting(t *testing.T) {
	fig := &Figure{
		ID: "figX", Title: "demo", Config: "cfg",
		ALabel: "a", BLabel: "b",
		Points: []Point{
			{Series: "s1", X: "q1", A: 1.5, B: 2000, Extrapolated: true},
			{Series: "s2", X: "q1", A: 0.001, B: 3},
		},
	}
	var buf bytes.Buffer
	WriteFigure(&buf, fig)
	out := buf.String()
	for _, want := range []string{"FIGX", "s1", "s2", "q1", "1.50~", "2.00k", "1.00m"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatSI(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5e9:   "1.50G",
		2e6:     "2.00M",
		3.5e3:   "3.50k",
		42:      "42.00",
		0.5:     "500.00m",
		0.00002: "20.00u",
	}
	for v, want := range cases {
		if got := formatSI(v); got != want {
			t.Errorf("formatSI(%v) = %q, want %q", v, got, want)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	e := Quick()
	for i := 0; i < b.N; i++ {
		rows, err := Table1(e)
		if err != nil {
			b.Fatal(err)
		}
		if err := CheckTable1(rows); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAllExperimentsRun drives every registered experiment end to end at
// quick scale — the registration and smoke net for the whole harness.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every figure at quick scale (~minutes)")
	}
	e := Quick()
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(&buf, e, id); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", id)
			}
		})
	}
}

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := RunCSV(&buf, Quick(), "ablation-writeback"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "figure,series,x,a,b,real,extrapolated") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	if err := RunCSV(&buf, Quick(), "table1"); err == nil {
		t.Fatal("table1 CSV accepted")
	}
	if err := RunCSV(&buf, Quick(), "nope"); err == nil {
		t.Fatal("unknown CSV experiment accepted")
	}
}

func TestPadTargetFollowsMode(t *testing.T) {
	e := Quick()
	e.Padding = core.PadClosestPower
	if got := e.padTarget(5, 100); got != 8 {
		t.Fatalf("closest power of 5 = %d", got)
	}
	e.Padding = core.PadCartesian
	if got := e.padTarget(5, 100); got != 100 {
		t.Fatalf("cartesian = %d", got)
	}
	e.Padding = core.PadNone
	if got := e.padTarget(5, 100); got != 5 {
		t.Fatalf("none = %d", got)
	}
}

func TestScaleStats(t *testing.T) {
	s := storage.Stats{BlockReads: 10, BlockWrites: 20, BytesRead: 100, BytesWritten: 200, NetworkRounds: 5}
	if got := scaleStats(s, 1.0); got != s {
		t.Fatalf("identity scale changed stats: %+v", got)
	}
	d := scaleStats(s, 2.5)
	if d.BlockReads != 25 || d.BytesWritten != 500 {
		t.Fatalf("scaled: %+v", d)
	}
}

func TestReferenceCount(t *testing.T) {
	r1 := &relation.Relation{Schema: relation.Schema{Table: "a", Columns: []string{"x"}}}
	r2 := &relation.Relation{Schema: relation.Schema{Table: "b", Columns: []string{"x"}}}
	for i := int64(0); i < 4; i++ {
		r1.Tuples = append(r1.Tuples, relation.Tuple{Values: []int64{i % 2}})
		r2.Tuples = append(r2.Tuples, relation.Tuple{Values: []int64{i % 2}})
	}
	got := referenceCount([]*relation.Relation{r1, r2},
		[]baseline.EquiPred{{A: 0, AAttr: "x", B: 1, BAttr: "x"}})
	if got != 8 { // 2x2 matches per key value, two values
		t.Fatalf("reference count %d", got)
	}
}

func TestMeasurePanels(t *testing.T) {
	m := Measure{Stats: storage.Stats{BytesRead: 4e6, BytesWritten: 1e6, NetworkRounds: 10}}
	if mb := m.CommMB(); mb != 5 {
		t.Fatalf("CommMB %v", mb)
	}
	cm := storage.CostModel{BandwidthBps: 8e6, RTT: 0}
	if s := m.QueryCostSeconds(cm); s != 5 {
		t.Fatalf("QueryCostSeconds %v", s)
	}
}

func TestRunBinaryUnknownMethod(t *testing.T) {
	e := Quick()
	r := &relation.Relation{Schema: relation.Schema{Table: "a", Columns: []string{"x"}},
		Tuples: []relation.Tuple{{Values: []int64{1}}}}
	if _, err := e.RunBinary("NoSuch", "q", r, r.Alias("b"), "x", "x"); err == nil {
		t.Fatal("unknown method accepted")
	}
}
