package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestShardBenchSmoke runs the shard experiment at 1 and 2 shards with a
// tiny injected latency (CI-fast): the logical protocol must be identical
// at both shard counts — same rounds, same accesses — and with two shards
// both must serve blocks.
func TestShardBenchSmoke(t *testing.T) {
	e := Quick()
	rep, err := shardBench(e, []int{1, 2}, 2*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	p1, p2 := rep.Points[0], rep.Points[1]
	if p1.Accesses == 0 || p1.Rounds == 0 {
		t.Fatalf("1-shard point measured no traffic: %+v", p1)
	}
	// shardBench itself enforces cross-point equality; re-check the
	// invariant here so the smoke fails loudly if that guard is removed.
	if p2.Rounds != p1.Rounds || p2.Accesses != p1.Accesses {
		t.Fatalf("sharding changed the protocol: %+v vs %+v", p2, p1)
	}
	if len(p2.ShardBlocks) != 2 {
		t.Fatalf("2-shard point has %d shard stats, want 2", len(p2.ShardBlocks))
	}
	for s, blocks := range p2.ShardBlocks {
		if blocks == 0 {
			t.Fatalf("shard %d served no blocks: %+v", s, p2)
		}
	}
	var reqs int64
	for _, r := range p2.ServerRequests {
		reqs += r
	}
	// Physical trips exceed logical rounds with 2 shards only when batches
	// actually fan out.
	if reqs <= p2.Rounds {
		t.Fatalf("2 shards saw %d physical requests for %d logical rounds — batches never fanned out", reqs, p2.Rounds)
	}

	var buf bytes.Buffer
	WriteShardReport(&buf, rep)
	if buf.Len() == 0 {
		t.Fatal("report rendered empty")
	}
	out, err := MarshalShardReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardReport
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.PerBlockLatencyUS != 2 || len(back.Points) != 2 {
		t.Fatalf("snapshot round-trip mismatch: %+v", back)
	}
}
