package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
	"oblivjoin/internal/operators"
	"oblivjoin/internal/query"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/tpch"
)

// plannerAcctbalFloor is the selection the planner session pushes below its
// joins: parties with a non-negative account balance (the generator draws
// acctbal from [-100_00, 9_900_00), so this keeps most but not all rows).
const plannerAcctbalFloor = 0

// PlannerQueryPoint measures one query of the multi-query planner session.
type PlannerQueryPoint struct {
	// Name labels the query within the session.
	Name string `json:"name"`
	// Plan is the chosen candidate ("inlj(outer=..., inner=...)").
	Plan string `json:"plan"`
	// Candidates is the number of enumerated physical plans.
	Candidates int `json:"candidates"`
	// PredictedBlocks is the planner's block forecast for the chosen
	// candidate (input-side traffic, Theorems 1–4 at the planned pad).
	PredictedBlocks int64 `json:"predicted_blocks"`
	// MeasuredBlocks is the whole query's metered block traffic, including
	// pushdown, prepared-input upload, and the output vector.
	MeasuredBlocks int64 `json:"measured_blocks"`
	// PrepareBlocks is the pushdown/upload share of MeasuredBlocks; zero on
	// a full cache hit.
	PrepareBlocks int64 `json:"prepare_blocks"`
	// CacheHit reports whether the filtered input came from the plan cache.
	CacheHit bool `json:"cache_hit"`
	// Rows is the real result size.
	Rows int `json:"rows"`
}

// PlannerReport is what the `planner` experiment produces; BENCH_planner.json
// is one checked-in snapshot. Block counts are deterministic (seeded ORAM,
// fixed geometry); only wall-clock is machine-dependent and none is stored.
type PlannerReport struct {
	Host
	Seed      int64 `json:"seed"`
	Suppliers int   `json:"suppliers"`
	// Queries: Q1 builds the filtered supplier input cold, Q2 reuses it in
	// a *different* join (supplier⋈nation), Q3 repeats Q1 warm.
	Queries []PlannerQueryPoint `json:"queries"`
	// ColdBlocks and WarmBlocks compare Q1 against its warm re-run Q3.
	ColdBlocks int64 `json:"cold_blocks"`
	WarmBlocks int64 `json:"warm_blocks"`
	// WarmSavings = 1 - warm/cold; PlannerBench fails if it is not
	// positive rather than snapshot a cache that saves nothing.
	WarmSavings float64 `json:"warm_savings"`
	// CacheEntries/Hits/Misses summarize the session's plan cache.
	CacheEntries int   `json:"cache_entries"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
}

// plannerSession wires a query.Executor over a generated TPC-H subset the
// way oblivjoin.Database does, sharing one meter and plan cache: supplier,
// customer, and nation, each indexed on its nationkey column.
func (e *Env) plannerSession() (*query.Executor, *storage.Meter, error) {
	db := tpch.Generate(tpch.Config{Suppliers: e.Scales.BinarySuppliers, Seed: e.Seed})
	m := storage.NewMeter()
	topts, err := e.tableOpts(m, false, false, false)
	if err != nil {
		return nil, nil, err
	}
	idx := map[string]string{"supplier": "s_nationkey", "customer": "c_nationkey", "nation": "n_nationkey"}
	tables := make(map[string]*table.StoredTable, 3)
	for _, rel := range []*relation.Relation{db.Supplier, db.Customer, db.Nation} {
		name := rel.Schema.Table
		st, err := table.Store(rel, []string{idx[name]}, topts)
		if err != nil {
			return nil, nil, err
		}
		tables[name] = st
	}
	copts, err := e.coreOpts(m)
	if err != nil {
		return nil, nil, err
	}
	// The planner session pads pushdown and output with the closest-power
	// policy: size-hiding, so cold-vs-warm deltas measure cache reuse, not
	// selectivity leakage.
	copts.Padding = core.PadClosestPower
	ex := &query.Executor{
		Tables:    tables,
		TableOpts: topts,
		JoinOpts:  copts,
		OpOpts: operators.Options{
			BlockSize: copts.OutBlockSize,
			Meter:     m,
			Sealer:    copts.Sealer,
		},
		Cache: query.NewCache(nil),
	}
	m.Reset() // setup traffic is not query cost
	return ex, m, nil
}

// PlannerBench runs the multi-query planner session: a cold filtered join,
// cache reuse across a different join on the same filtered input, and a
// warm repeat of the first query.
func PlannerBench(e *Env) (*PlannerReport, error) {
	ex, m, err := e.plannerSession()
	if err != nil {
		return nil, err
	}
	supFilter := query.Filter{Table: "supplier", Preds: []operators.Pred{
		{Column: "s_acctbal", Op: operators.GE, Value: plannerAcctbalFloor},
	}}
	custFilter := query.Filter{Table: "customer", Preds: []operators.Pred{
		{Column: "c_acctbal", Op: operators.GE, Value: plannerAcctbalFloor},
	}}
	supCust := query.Spec{
		Tables:  []string{"supplier", "customer"},
		Preds:   []jointree.Pred{{Left: "supplier", LeftAttr: "s_nationkey", Right: "customer", RightAttr: "c_nationkey"}},
		Filters: []query.Filter{supFilter, custFilter},
	}
	supNation := query.Spec{
		Tables:  []string{"supplier", "nation"},
		Preds:   []jointree.Pred{{Left: "supplier", LeftAttr: "s_nationkey", Right: "nation", RightAttr: "n_nationkey"}},
		Filters: []query.Filter{supFilter},
	}

	rep := &PlannerReport{Host: CurrentHost(), Seed: e.Seed, Suppliers: e.Scales.BinarySuppliers}
	runOne := func(name string, spec query.Spec) (PlannerQueryPoint, error) {
		before := m.Snapshot()
		out, err := ex.Run(spec)
		if err != nil {
			return PlannerQueryPoint{}, err
		}
		moved := m.Snapshot().Sub(before).BlocksMoved()
		best := out.Plan.Best()
		// The planner must have picked the block-minimal viable candidate.
		for _, c := range out.Plan.Candidates {
			if c.Viable && c.Cost.Blocks < best.Cost.Blocks {
				return PlannerQueryPoint{}, fmt.Errorf(
					"bench: %s chose %s (%d blocks) but %s costs %d",
					name, best.Desc, best.Cost.Blocks, c.Desc, c.Cost.Blocks)
			}
		}
		return PlannerQueryPoint{
			Name:            name,
			Plan:            best.Desc,
			Candidates:      len(out.Plan.Candidates),
			PredictedBlocks: best.Cost.Blocks,
			MeasuredBlocks:  moved,
			PrepareBlocks:   out.PrepareStats.BlocksMoved(),
			CacheHit:        out.CacheHits > 0,
			Rows:            len(out.Tuples),
		}, nil
	}

	q1, err := runOne("Q1 σ(supplier)⋈customer", supCust)
	if err != nil {
		return nil, err
	}
	q2, err := runOne("Q2 σ(supplier)⋈nation", supNation)
	if err != nil {
		return nil, err
	}
	q3, err := runOne("Q3 repeat of Q1", supCust)
	if err != nil {
		return nil, err
	}
	rep.Queries = []PlannerQueryPoint{q1, q2, q3}
	rep.ColdBlocks, rep.WarmBlocks = q1.MeasuredBlocks, q3.MeasuredBlocks
	if rep.ColdBlocks > 0 {
		rep.WarmSavings = 1 - float64(rep.WarmBlocks)/float64(rep.ColdBlocks)
	}
	stats := ex.Cache.Stats()
	rep.CacheEntries, rep.CacheHits, rep.CacheMisses = stats.Entries, stats.Hits, stats.Misses

	if q1.CacheHit {
		return nil, fmt.Errorf("bench: Q1 hit a cache that should be cold")
	}
	if !q2.CacheHit || !q3.CacheHit {
		return nil, fmt.Errorf("bench: warm queries missed the plan cache (Q2 %v, Q3 %v)", q2.CacheHit, q3.CacheHit)
	}
	if rep.WarmSavings <= 0 {
		return nil, fmt.Errorf("bench: plan cache saved nothing (cold %d, warm %d)", rep.ColdBlocks, rep.WarmBlocks)
	}
	return rep, nil
}

// RunPlanner executes the planner experiment and writes its report.
func RunPlanner(w io.Writer, e *Env) (*PlannerReport, error) {
	rep, err := PlannerBench(e)
	if err != nil {
		return nil, err
	}
	WritePlannerReport(w, rep)
	return rep, nil
}

// MarshalPlannerReport renders a PlannerReport as the BENCH_planner.json
// snapshot format (indented, trailing newline).
func MarshalPlannerReport(rep *PlannerReport) ([]byte, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WritePlannerReport renders the human-readable table.
func WritePlannerReport(w io.Writer, rep *PlannerReport) {
	fmt.Fprintf(w, "== PLANNER: cost-based operator selection and plan-cache reuse (suppliers=%d)\n", rep.Suppliers)
	fmt.Fprintf(w, "%-28s %-44s %10s %10s %10s %5s %6s\n",
		"query", "chosen plan", "predicted", "measured", "prepare", "hit", "rows")
	for _, q := range rep.Queries {
		hit := "no"
		if q.CacheHit {
			hit = "yes"
		}
		fmt.Fprintf(w, "%-28s %-44s %10d %10d %10d %5s %6d\n",
			q.Name, q.Plan, q.PredictedBlocks, q.MeasuredBlocks, q.PrepareBlocks, hit, q.Rows)
	}
	fmt.Fprintf(w, "cold %d blocks, warm %d blocks -> %.0f%% saved by the plan cache (%d entries, %d hits, %d misses)\n\n",
		rep.ColdBlocks, rep.WarmBlocks, 100*rep.WarmSavings, rep.CacheEntries, rep.CacheHits, rep.CacheMisses)
}
