package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"oblivjoin/internal/obliv"
	"oblivjoin/internal/relation"
)

// SortPoint is one measured configuration of the parallel-sort benchmark:
// one operation at one size with one worker-pool setting.
type SortPoint struct {
	// Op is "bitonic" (in-memory network sort), "extsort" (external
	// oblivious sort over an encrypted BlockVector), or "smj" (full
	// sort-merge equi-join, whose output filter runs on the sort engine).
	Op string `json:"op"`
	// N is the record count (bitonic, extsort) or per-table tuple count
	// (smj).
	N int `json:"n"`
	// Workers is the Sorter pool size (1 = serial engine).
	Workers int `json:"workers"`
	// Millis is the measured wall-clock time.
	Millis float64 `json:"millis"`
	// Speedup is serial time / this time at the same op and size.
	Speedup float64 `json:"speedup_vs_serial"`
}

// SortReport is the serial-vs-parallel comparison the `sort` experiment
// produces; BENCH_sort.json in the repo root is one checked-in snapshot.
// Wall-clock numbers are machine-dependent (NumCPU bounds the achievable
// speedup), unlike the traffic counts of the figure experiments.
type SortReport struct {
	Host
	Seed   int64       `json:"seed"`
	Points []SortPoint `json:"points"`
}

// SortWorkerSweep is the pool-size lineup the sort experiment measures.
var SortWorkerSweep = []int{1, 2, 4, 8}

// sortBenchRecords generates n 16-byte records with pseudorandom uint64
// sort keys (an LCG keeps the workload reproducible without consuming the
// global rand state).
func sortBenchRecords(n int, seed int64) [][]byte {
	recs := make([][]byte, n)
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := range recs {
		x = x*6364136223846793005 + 1442695040888963407
		rec := make([]byte, 16)
		binary.LittleEndian.PutUint64(rec, x)
		recs[i] = rec
	}
	return recs
}

func lessSortBench(a, b []byte) bool {
	return binary.LittleEndian.Uint64(a) < binary.LittleEndian.Uint64(b)
}

// timeOp runs fn once and returns milliseconds.
func timeOp(fn func() error) (float64, error) {
	start := time.Now()
	if err := fn(); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Nanoseconds()) / 1e6, nil
}

// SortBench measures the oblivious sort engine serial vs parallel: the
// in-memory bitonic sort, the external oblivious sort over an encrypted
// BlockVector, and a full sort-merge join, each across SortWorkerSweep.
func SortBench(e *Env) (*SortReport, error) {
	rep := &SortReport{Host: CurrentHost(), Seed: e.Seed}

	// In-memory bitonic network sort, the acceptance scale of the repo's
	// BenchmarkBitonicSort.
	const bitonicN = 1 << 16
	base := sortBenchRecords(bitonicN, e.Seed)
	var serialMs float64
	for _, w := range SortWorkerSweep {
		items := make([][]byte, len(base))
		for i, r := range base {
			items[i] = append([]byte(nil), r...)
		}
		s := obliv.Sorter{Workers: w}
		ms, err := timeOp(func() error { return s.SortSlice(items, lessSortBench) })
		if err != nil {
			return nil, err
		}
		if w == 1 {
			serialMs = ms
		}
		rep.Points = append(rep.Points, SortPoint{
			Op: "bitonic", N: bitonicN, Workers: w, Millis: ms, Speedup: serialMs / ms,
		})
	}

	// External oblivious sort over an encrypted block vector.
	const extN, extMem = 1 << 12, 256
	sealer, err := e.sealer()
	if err != nil {
		return nil, err
	}
	for _, w := range SortWorkerSweep {
		vec, err := obliv.NewBlockVector("sortbench", extN, 16, e.payload(), nil, sealer)
		if err != nil {
			return nil, err
		}
		for _, r := range sortBenchRecords(extN, e.Seed) {
			if err := vec.Append(r); err != nil {
				return nil, err
			}
		}
		if err := vec.Flush(); err != nil {
			return nil, err
		}
		s := obliv.Sorter{Workers: w}
		ms, err := timeOp(func() error { return s.SortVector(vec, extMem, lessSortBench) })
		if err != nil {
			return nil, err
		}
		if w == 1 {
			serialMs = ms
		}
		rep.Points = append(rep.Points, SortPoint{
			Op: "extsort", N: extN, Workers: w, Millis: ms, Speedup: serialMs / ms,
		})
	}

	// Full sort-merge join; the sort engine runs its output filter, so the
	// end-to-end gain is bounded by the filter's share of the join.
	const smjN = 96
	r1 := sortBenchRelation("sb1", smjN, e.Seed)
	r2 := sortBenchRelation("sb2", smjN, e.Seed+1)
	for _, w := range SortWorkerSweep {
		env := *e
		env.SortWorkers = w
		var ms float64
		ms, err = timeOp(func() error {
			_, err := env.RunBinary(MSepSMJ, "sortbench", r1, r2, "k", "k")
			return err
		})
		if err != nil {
			return nil, err
		}
		if w == 1 {
			serialMs = ms
		}
		rep.Points = append(rep.Points, SortPoint{
			Op: "smj", N: smjN, Workers: w, Millis: ms, Speedup: serialMs / ms,
		})
	}
	return rep, nil
}

// sortBenchRelation builds an n-tuple relation with keys drawn from a small
// domain so the join produces a non-trivial output to filter.
func sortBenchRelation(name string, n int, seed int64) *relation.Relation {
	rel := &relation.Relation{Schema: relation.Schema{Table: name, Columns: []string{"k", "id"}}}
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		rel.Tuples = append(rel.Tuples, relation.Tuple{
			Values: []int64{int64(x % uint64(n/4+1)), int64(i)},
		})
	}
	return rel
}

// WriteSortReport renders the serial-vs-parallel table.
func WriteSortReport(w io.Writer, rep *SortReport) {
	fmt.Fprintf(w, "== SORT: oblivious sort engine, serial vs parallel (NumCPU=%d GOMAXPROCS=%d)\n",
		rep.NumCPU, rep.GOMAXPROCS)
	fmt.Fprintf(w, "%-10s %10s %9s %12s %9s\n", "op", "n", "workers", "millis", "speedup")
	for _, p := range rep.Points {
		fmt.Fprintf(w, "%-10s %10d %9d %12.2f %8.2fx\n", p.Op, p.N, p.Workers, p.Millis, p.Speedup)
	}
	fmt.Fprintln(w)
}

// RunSort executes the sort experiment and writes the table; when jsonPath
// is non-empty the SortReport is also returned for snapshotting.
func RunSort(w io.Writer, e *Env) (*SortReport, error) {
	rep, err := SortBench(e)
	if err != nil {
		return nil, err
	}
	WriteSortReport(w, rep)
	return rep, nil
}

// MarshalSortReport renders a SortReport as the BENCH_sort.json snapshot
// format (indented, trailing newline).
func MarshalSortReport(rep *SortReport) ([]byte, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
