// Package bench regenerates every table and figure of the paper's
// evaluation (Section 9): storage costs (Figs. 7–8), binary equi-joins
// (Figs. 9–12), band joins (Figs. 13–14), multiway equi-joins
// (Figs. 15–18), padding strategies (Figs. 19–21), and the Table 1
// retrieval-count formulas. Each runner measures communication exactly and
// derives a simulated query time from the storage.CostModel (see DESIGN.md
// §2.1); workload sizes are scaled down so the whole suite runs on a
// laptop, with the Cartesian-product ObliDB baseline extrapolated from a
// capped sample where it would be infeasible (marked "~" in the output).
package bench

import (
	"fmt"
	"math"

	"oblivjoin/internal/baseline"
	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/telemetry"
	"oblivjoin/internal/xcrypto"
)

// Method names, matching the paper's figure legends.
const (
	MObliDB       = "ObliDB"
	MODBJ         = "ODBJ"
	MSepSMJ       = "Sep SMJ"
	MSepINLJ      = "Sep INLJ"
	MSepINLJCache = "Sep INLJ+Cache"
	MOneSMJ       = "One SMJ"
	MOneINLJ      = "One INLJ"
	MOneINLJCache = "One INLJ+Cache"
	MRawSMJ       = "Raw SMJ"
	MRawINLJ      = "Raw INLJ"
	MRawINLJCache = "Raw INLJ+Cache"
)

// BinaryMethods is the 11-method lineup of Figures 9–12.
var BinaryMethods = []string{
	MObliDB, MODBJ, MSepSMJ, MSepINLJ, MSepINLJCache,
	MOneSMJ, MOneINLJ, MOneINLJCache, MRawSMJ, MRawINLJ, MRawINLJCache,
}

// BandMethods is the 6-method lineup of Figures 13–14.
var BandMethods = []string{
	MSepINLJ, MSepINLJCache, MOneINLJ, MOneINLJCache, MRawINLJ, MRawINLJCache,
}

// MultiwayMethods is the 7-method lineup of Figures 15–18.
var MultiwayMethods = []string{
	MObliDB, MSepINLJ, MSepINLJCache, MOneINLJ, MOneINLJCache, MRawINLJ, MRawINLJCache,
}

// Env fixes the benchmark configuration.
type Env struct {
	// BlockPayload is the usable bytes per block (paper: 4 KB; benches
	// default to 512 B so the suite stays laptop-fast — shapes are
	// unaffected, see DESIGN.md §6).
	BlockPayload int
	// Seed drives all generators and ORAM randomness.
	Seed int64
	// Cost converts traffic to simulated seconds.
	Cost storage.CostModel
	// ObliDBSampleCap caps the Cartesian combinations the ObliDB baseline
	// actually executes; larger inputs are measured on a proportionally
	// truncated sample and scaled (0 means 200_000).
	ObliDBSampleCap int64
	// Padding applies a Section 8 strategy to the oblivious methods.
	Padding core.PaddingMode
	// SortWorkers sizes the oblivious sort engine's worker pool for the
	// core joins (0 or 1 = serial). Traffic counts are identical either
	// way; only client-side wall-clock changes.
	SortWorkers int
	// Trace, when non-nil, attaches one child span per oblivious execution
	// (named "method query") under it, so every measured join carries a
	// phase-attributed breakdown (see RunPhases).
	Trace *telemetry.Span
	// EvictionBatch defers and batches Path-ORAM evictions, k paths per
	// write round (DESIGN.md §2.9). 0 or 1 = classic per-access write-back.
	EvictionBatch int
	// PrefetchDepth coalesces the pad loops' dummy path downloads, up to
	// this many per round; the join layer honors it only in non-padded
	// mode (see core.Options.PrefetchDepth). 0 or 1 = off.
	PrefetchDepth int
	// Scales sizes the workloads per figure.
	Scales Scales
}

// Scales holds the per-figure workload sizes. The paper's absolute sizes
// (10 MB–1 GB TPC-H, 5k–200k users) are listed in EXPERIMENTS.md; defaults
// here are scaled down so the suite runs in minutes.
type Scales struct {
	BinarySuppliers  int   // Fig 9
	BinaryUsers      int   // Fig 10
	BinarySweep      []int // Fig 11 (suppliers)
	UserSweep        []int // Fig 12 (users)
	BandSuppliers    int   // Fig 13
	BandSweep        []int // Fig 14 (suppliers)
	MultiSuppliers   int   // Fig 15
	MultiUsers       int   // Fig 16
	MultiSweep       []int // Fig 17 (suppliers)
	MultiUserSweep   []int // Fig 18 (users)
	PadSuppliers     int   // Fig 19 TE2
	PadUsers         int   // Fig 19 SE2
	PadBandSuppliers int   // Fig 20
	PadMultiSupp     int   // Fig 21 TM2
	PadMultiUsers    int   // Fig 21 SM2
	StorageSuppliers []int // Fig 7
	StorageUsers     []int // Fig 8
}

// DefaultScales sizes the standard run.
func DefaultScales() Scales {
	return Scales{
		BinarySuppliers:  40,
		BinaryUsers:      400,
		BinarySweep:      []int{15, 45, 135},
		UserSweep:        []int{150, 450, 1350},
		BandSuppliers:    8,
		BandSweep:        []int{6, 16, 44},
		MultiSuppliers:   2,
		MultiUsers:       250,
		MultiSweep:       []int{2, 6, 18},
		MultiUserSweep:   []int{100, 250, 600},
		PadSuppliers:     16,
		PadUsers:         30,
		PadBandSuppliers: 6,
		PadMultiSupp:     2,
		PadMultiUsers:    24,
		StorageSuppliers: []int{10, 40, 160},
		StorageUsers:     []int{300, 1200, 5000},
	}
}

// QuickScales sizes a fast smoke run (used by the testing.B benchmarks so
// `go test -bench=.` finishes promptly; shapes are preserved).
func QuickScales() Scales {
	return Scales{
		BinarySuppliers:  6,
		BinaryUsers:      80,
		BinarySweep:      []int{4, 8},
		UserSweep:        []int{50, 100},
		BandSuppliers:    3,
		BandSweep:        []int{2, 4},
		MultiSuppliers:   1,
		MultiUsers:       60,
		MultiSweep:       []int{1, 2},
		MultiUserSweep:   []int{40, 80},
		PadSuppliers:     5,
		PadUsers:         16,
		PadBandSuppliers: 3,
		PadMultiSupp:     1,
		PadMultiUsers:    14,
		StorageSuppliers: []int{5, 20},
		StorageUsers:     []int{100, 400},
	}
}

// Default returns the standard bench environment.
func Default() *Env {
	return &Env{
		BlockPayload: 512,
		Seed:         42,
		Cost:         storage.DefaultCostModel(),
		Scales:       DefaultScales(),
	}
}

// Quick returns a smoke-test environment with tiny workloads.
func Quick() *Env {
	e := Default()
	e.Scales = QuickScales()
	e.ObliDBSampleCap = 20_000
	return e
}

func (e *Env) payload() int {
	if e.BlockPayload <= 0 {
		return 512
	}
	return e.BlockPayload
}

func (e *Env) sampleCap() int64 {
	if e.ObliDBSampleCap <= 0 {
		return 200_000
	}
	return e.ObliDBSampleCap
}

// Measure is one data point: the traffic of one (method, query) execution.
type Measure struct {
	Method       string
	Query        string
	Stats        storage.Stats
	Real         int
	Extrapolated bool
}

// QueryCostSeconds is the figure's (a) panel value.
func (m Measure) QueryCostSeconds(c storage.CostModel) float64 {
	return c.CostSeconds(m.Stats)
}

// CommMB is the figure's (b) panel value.
func (m Measure) CommMB() float64 { return float64(m.Stats.BytesMoved()) / 1e6 }

func (e *Env) sealer() (*xcrypto.Sealer, error) {
	key := make([]byte, xcrypto.KeySize)
	for i := range key {
		key[i] = byte(e.Seed >> (8 * (i % 8)))
	}
	return xcrypto.NewSealer(key, nil)
}

// tableOpts builds table storage options for one run.
func (e *Env) tableOpts(m *storage.Meter, raw, cache, writeBack bool) (table.Options, error) {
	opts := table.Options{
		BlockPayload:      e.payload(),
		Meter:             m,
		Rand:              oram.NewSeededSource(uint64(e.Seed)),
		CacheIndex:        cache,
		WriteBackDescents: writeBack,
		Raw:               raw,
		EvictionBatch:     e.EvictionBatch,
		PrefetchDepth:     e.PrefetchDepth,
	}
	if !raw {
		s, err := e.sealer()
		if err != nil {
			return opts, err
		}
		opts.Sealer = s
	}
	return opts, nil
}

func (e *Env) coreOpts(m *storage.Meter) (core.Options, error) {
	s, err := e.sealer()
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		Meter:         m,
		Sealer:        s,
		OutBlockSize:  e.payload() + xcrypto.Overhead,
		Padding:       e.Padding,
		SortWorkers:   e.SortWorkers,
		PrefetchDepth: e.PrefetchDepth,
	}, nil
}

func (e *Env) baseOpts(m *storage.Meter) (baseline.Options, error) {
	s, err := e.sealer()
	if err != nil {
		return baseline.Options{}, err
	}
	return baseline.Options{
		BlockSize: e.payload() + xcrypto.Overhead,
		Meter:     m,
		Sealer:    s,
	}, nil
}

// padTarget computes the Section 8 padded output size for the baselines
// (which take an absolute PadTo rather than a mode).
func (e *Env) padTarget(realR, cartesian int64) int64 {
	opts := core.Options{Padding: e.Padding}
	return opts.PadSize(realR, cartesian)
}

// RunBinary executes one binary equi-join with the given method and
// returns its measured traffic.
func (e *Env) RunBinary(method string, name string, r1, r2 *relation.Relation, a1, a2 string) (Measure, error) {
	meas := Measure{Method: method, Query: name}
	m := storage.NewMeter()
	switch method {
	case MODBJ:
		opts, err := e.baseOpts(m)
		if err != nil {
			return meas, err
		}
		if e.Padding != core.PadNone {
			realR := int64(len(core.ReferenceEquiJoin(r1, r2, a1, a2)))
			opts.PadTo = e.padTarget(realR, int64(r1.Len())*int64(r2.Len()))
		}
		res, err := baseline.ODBJJoin(r1, r2, a1, a2, opts)
		if err != nil {
			return meas, err
		}
		meas.Stats, meas.Real = res.Stats, res.RealCount
		return meas, nil

	case MObliDB:
		return e.runObliDB(name, []*relation.Relation{r1, r2},
			[]baseline.EquiPred{{A: 0, AAttr: a1, B: 1, BAttr: a2}})

	case MSepSMJ, MSepINLJ, MSepINLJCache, MRawSMJ, MRawINLJ, MRawINLJCache:
		raw := method == MRawSMJ || method == MRawINLJ || method == MRawINLJCache
		cache := method == MSepINLJCache || method == MRawINLJCache
		topts, err := e.tableOpts(m, raw, cache, false)
		if err != nil {
			return meas, err
		}
		s1, err := table.Store(r1, []string{a1}, topts)
		if err != nil {
			return meas, err
		}
		s2, err := table.Store(r2, []string{a2}, topts)
		if err != nil {
			return meas, err
		}
		m.Reset()
		switch method {
		case MRawSMJ:
			bopts, err := e.baseOpts(m)
			if err != nil {
				return meas, err
			}
			res, err := baseline.RawSortMergeJoin(s1, s2, a1, a2, bopts)
			if err != nil {
				return meas, err
			}
			meas.Stats, meas.Real = res.Stats, res.RealCount
		case MRawINLJ, MRawINLJCache:
			bopts, err := e.baseOpts(m)
			if err != nil {
				return meas, err
			}
			res, err := baseline.RawINLJ(s1, s2, a1, a2, bopts)
			if err != nil {
				return meas, err
			}
			meas.Stats, meas.Real = res.Stats, res.RealCount
		case MSepSMJ:
			copts, err := e.coreOpts(m)
			if err != nil {
				return meas, err
			}
			sp := e.Trace.ChildMeter(method+" "+name, m)
			copts.Span = sp
			defer sp.End()
			res, err := core.SortMergeJoin(s1, s2, a1, a2, copts)
			if err != nil {
				return meas, err
			}
			meas.Stats, meas.Real = res.Stats, res.RealCount
		default:
			copts, err := e.coreOpts(m)
			if err != nil {
				return meas, err
			}
			sp := e.Trace.ChildMeter(method+" "+name, m)
			copts.Span = sp
			defer sp.End()
			res, err := core.IndexNestedLoopJoin(s1, s2, a1, a2, copts)
			if err != nil {
				return meas, err
			}
			meas.Stats, meas.Real = res.Stats, res.RealCount
		}
		return meas, nil

	case MOneSMJ, MOneINLJ, MOneINLJCache:
		cache := method == MOneINLJCache
		topts, err := e.tableOpts(m, false, cache, false)
		if err != nil {
			return meas, err
		}
		tables, shared, err := table.StoreShared(
			[]*relation.Relation{r1, r2},
			map[string][]string{r1.Schema.Table: {a1}, r2.Schema.Table: {a2}},
			topts)
		if err != nil {
			return meas, err
		}
		m.Reset()
		copts, err := e.coreOpts(m)
		if err != nil {
			return meas, err
		}
		copts.OneORAM = shared
		sp := e.Trace.ChildMeter(method+" "+name, m)
		copts.Span = sp
		defer sp.End()
		var res *core.Result
		if method == MOneSMJ {
			res, err = core.SortMergeJoin(tables[r1.Schema.Table], tables[r2.Schema.Table], a1, a2, copts)
		} else {
			res, err = core.IndexNestedLoopJoin(tables[r1.Schema.Table], tables[r2.Schema.Table], a1, a2, copts)
		}
		if err != nil {
			return meas, err
		}
		meas.Stats, meas.Real = res.Stats, res.RealCount
		return meas, nil
	}
	return meas, fmt.Errorf("bench: unknown binary method %q", method)
}

// runObliDB executes the Cartesian-product baseline, truncating the inputs
// proportionally when the full enumeration exceeds the sample cap and
// scaling the measured traffic back up.
func (e *Env) runObliDB(name string, rels []*relation.Relation, preds []baseline.EquiPred) (Measure, error) {
	meas := Measure{Method: MObliDB, Query: name}
	combos := int64(1)
	for _, r := range rels {
		combos *= int64(r.Len())
	}
	scale := 1.0
	run := rels
	if combos > e.sampleCap() {
		// Shrink every table by the same factor so the sample keeps the
		// original shape.
		f := float64(e.sampleCap()) / float64(combos)
		shrink := math.Pow(f, 1.0/float64(len(rels)))
		run = make([]*relation.Relation, len(rels))
		sampleCombos := int64(1)
		for i, r := range rels {
			n := int(float64(r.Len()) * shrink)
			if n < 1 {
				n = 1
			}
			run[i] = &relation.Relation{Schema: r.Schema, Tuples: r.Tuples[:n]}
			sampleCombos *= int64(n)
		}
		scale = float64(combos) / float64(sampleCombos)
		meas.Extrapolated = true
	}
	m := storage.NewMeter()
	// ObliDB's evaluation stores plain encrypted data blocks without an
	// ORAM tree (Figure 7 shows it at the minimal cloud footprint); its
	// fixed-order Cartesian enumeration is oblivious by construction, so
	// direct block addressing is faithful. We model it with the raw store
	// (the ~1% encryption overhead on transfers is negligible).
	topts, err := e.tableOpts(m, true, false, false)
	if err != nil {
		return meas, err
	}
	var stored []*table.StoredTable
	for _, r := range run {
		st, err := table.Store(r, nil, topts)
		if err != nil {
			return meas, err
		}
		stored = append(stored, st)
	}
	m.Reset()
	bopts, err := e.baseOpts(m)
	if err != nil {
		return meas, err
	}
	// ObliDB's hash-select trusted memory is far larger (M = 50 log N).
	bopts.Mem = 4096
	if e.Padding != core.PadNone {
		combosRun := int64(1)
		for _, st := range stored {
			combosRun *= int64(st.NumTuples())
		}
		if e.Padding == core.PadCartesian {
			bopts.PadTo = combosRun
		} else {
			var ordered []*relation.Relation
			for _, st := range stored {
				ordered = append(ordered, st.Relation())
			}
			realR := referenceCount(ordered, preds)
			bopts.PadTo = e.padTarget(realR, combosRun)
		}
	}
	res, err := baseline.ObliDBHashJoin(stored, preds, bopts)
	if err != nil {
		return meas, err
	}
	meas.Stats = scaleStats(res.Stats, scale)
	meas.Real = res.RealCount
	return meas, nil
}

// referenceCount computes a join's real result size client-side (used only
// to parameterize padding for baselines that take an absolute target).
func referenceCount(rels []*relation.Relation, preds []baseline.EquiPred) int64 {
	cur := make([]relation.Tuple, len(rels))
	var count int64
	var loop func(j int)
	loop = func(j int) {
		if j == len(rels) {
			for _, p := range preds {
				ca := rels[p.A].Schema.MustCol(p.AAttr)
				cb := rels[p.B].Schema.MustCol(p.BAttr)
				if cur[p.A].Values[ca] != cur[p.B].Values[cb] {
					return
				}
			}
			count++
			return
		}
		for _, tu := range rels[j].Tuples {
			cur[j] = tu
			loop(j + 1)
		}
	}
	loop(0)
	return count
}

func scaleStats(s storage.Stats, f float64) storage.Stats {
	if f == 1.0 {
		return s
	}
	return storage.Stats{
		BlockReads:    int64(float64(s.BlockReads) * f),
		BlockWrites:   int64(float64(s.BlockWrites) * f),
		BytesRead:     int64(float64(s.BytesRead) * f),
		BytesWritten:  int64(float64(s.BytesWritten) * f),
		NetworkRounds: int64(float64(s.NetworkRounds) * f),
	}
}

// RunBand executes one band join with the given method.
func (e *Env) RunBand(method string, name string, r1, r2 *relation.Relation, a1, a2 string, op core.BandOp) (Measure, error) {
	meas := Measure{Method: method, Query: name}
	m := storage.NewMeter()
	raw := method == MRawINLJ || method == MRawINLJCache
	cache := method == MSepINLJCache || method == MOneINLJCache || method == MRawINLJCache
	one := method == MOneINLJ || method == MOneINLJCache
	topts, err := e.tableOpts(m, raw, cache, false)
	if err != nil {
		return meas, err
	}
	var s1, s2 *table.StoredTable
	var shared *oram.PathORAM
	if one {
		tables, sh, err := table.StoreShared(
			[]*relation.Relation{r1, r2},
			map[string][]string{r1.Schema.Table: {a1}, r2.Schema.Table: {a2}},
			topts)
		if err != nil {
			return meas, err
		}
		s1, s2, shared = tables[r1.Schema.Table], tables[r2.Schema.Table], sh
	} else {
		if s1, err = table.Store(r1, []string{a1}, topts); err != nil {
			return meas, err
		}
		if s2, err = table.Store(r2, []string{a2}, topts); err != nil {
			return meas, err
		}
	}
	m.Reset()
	if raw {
		bopts, err := e.baseOpts(m)
		if err != nil {
			return meas, err
		}
		res, err := baseline.RawBandJoin(s1, s2, a1, a2, op, bopts)
		if err != nil {
			return meas, err
		}
		meas.Stats, meas.Real = res.Stats, res.RealCount
		return meas, nil
	}
	copts, err := e.coreOpts(m)
	if err != nil {
		return meas, err
	}
	copts.OneORAM = shared
	sp := e.Trace.ChildMeter(method+" "+name, m)
	copts.Span = sp
	defer sp.End()
	res, err := core.BandJoin(s1, s2, a1, a2, op, copts)
	if err != nil {
		return meas, err
	}
	meas.Stats, meas.Real = res.Stats, res.RealCount
	return meas, nil
}

// RunMultiway executes one acyclic multiway equi-join with the given method.
func (e *Env) RunMultiway(method string, name string, rels map[string]*relation.Relation, q jointree.Query) (Measure, error) {
	meas := Measure{Method: method, Query: name}
	tree, err := jointree.Build(q)
	if err != nil {
		return meas, err
	}
	if method == MObliDB {
		ordered := make([]*relation.Relation, tree.Len())
		idx := map[string]int{}
		for i, n := range tree.Order {
			ordered[i] = rels[n.Table]
			idx[n.Table] = i
		}
		var preds []baseline.EquiPred
		for _, p := range q.Preds {
			preds = append(preds, baseline.EquiPred{
				A: idx[p.Left], AAttr: p.LeftAttr, B: idx[p.Right], BAttr: p.RightAttr,
			})
		}
		return e.runObliDB(name, ordered, preds)
	}

	m := storage.NewMeter()
	raw := method == MRawINLJ || method == MRawINLJCache
	cache := method == MSepINLJCache || method == MOneINLJCache || method == MRawINLJCache
	one := method == MOneINLJ || method == MOneINLJCache
	topts, err := e.tableOpts(m, raw, cache, !raw)
	if err != nil {
		return meas, err
	}
	in := core.MultiwayInput{Tree: tree, Tables: make([]*table.StoredTable, tree.Len())}
	var shared *oram.PathORAM
	if one {
		attrs := map[string][]string{}
		ordered := make([]*relation.Relation, tree.Len())
		for i, n := range tree.Order {
			ordered[i] = rels[n.Table]
			if n.Attr != "" {
				attrs[n.Table] = []string{n.Attr}
			}
		}
		tables, sh, err := table.StoreShared(ordered, attrs, topts)
		if err != nil {
			return meas, err
		}
		for i, n := range tree.Order {
			in.Tables[i] = tables[n.Table]
		}
		shared = sh
	} else {
		for i, n := range tree.Order {
			var attrs []string
			if n.Attr != "" {
				attrs = []string{n.Attr}
			}
			st, err := table.Store(rels[n.Table], attrs, topts)
			if err != nil {
				return meas, err
			}
			in.Tables[i] = st
		}
	}
	m.Reset()
	if raw {
		bopts, err := e.baseOpts(m)
		if err != nil {
			return meas, err
		}
		res, err := baseline.RawMultiwayINLJ(in, bopts)
		if err != nil {
			return meas, err
		}
		meas.Stats, meas.Real = res.Stats, res.RealCount
		return meas, nil
	}
	copts, err := e.coreOpts(m)
	if err != nil {
		return meas, err
	}
	copts.OneORAM = shared
	sp := e.Trace.ChildMeter(method+" "+name, m)
	copts.Span = sp
	defer sp.End()
	res, err := core.MultiwayJoin(in, copts)
	if err != nil {
		return meas, err
	}
	meas.Stats, meas.Real = res.Stats, res.RealCount
	return meas, nil
}
