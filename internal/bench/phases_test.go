package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"oblivjoin/internal/telemetry"
)

// TestRunPhases runs the per-phase breakdown experiment at quick scale and
// checks the span tree: one child per traced method, each carrying the
// expected pipeline phases, with the meterless root aggregating their
// traffic.
func TestRunPhases(t *testing.T) {
	var buf bytes.Buffer
	e := Quick()
	node, err := RunPhases(&buf, e)
	if err != nil {
		t.Fatal(err)
	}
	if e.Trace != nil {
		t.Fatal("RunPhases left Env.Trace set")
	}
	if len(node.Children) != 3 {
		t.Fatalf("children = %d, want 3 (SMJ, INLJ, INLJ+Cache)", len(node.Children))
	}
	smj := node.Children[0]
	for _, phase := range []string{"join.smj", "load", "merge", "pad", "filter", "decode"} {
		if smj.Find(phase) == nil {
			t.Fatalf("SMJ trace missing phase %q", phase)
		}
	}
	if node.Children[1].Find("join.inlj") == nil {
		t.Fatal("INLJ trace missing join.inlj")
	}
	var sum int64
	for _, c := range node.Children {
		sum += c.Stats.BytesMoved()
	}
	if node.Stats.BytesMoved() != sum || sum == 0 {
		t.Fatalf("root bytes %d != child sum %d (or zero)", node.Stats.BytesMoved(), sum)
	}
	out := buf.String()
	for _, want := range []string{"PHASES", "phase", "share", "join.smj"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunPhasesNestsUnderActiveTrace checks that with Env.Trace already set
// (the -trace-out path), the experiment's spans land under that root
// instead of a detached one.
func TestRunPhasesNestsUnderActiveTrace(t *testing.T) {
	e := Quick()
	outer := telemetry.Start("ojoinbench", nil)
	e.Trace = outer
	if _, err := RunPhases(io.Discard, e); err != nil {
		t.Fatal(err)
	}
	outer.End()
	node := outer.Export()
	if e.Trace != outer {
		t.Fatal("RunPhases did not restore Env.Trace")
	}
	group := node.Find("bench.phases")
	if group == nil || len(group.Children) != 3 {
		t.Fatalf("bench.phases group missing or wrong size: %+v", group)
	}
	if node.Stats.BytesMoved() == 0 || node.Stats != group.Stats {
		t.Fatalf("outer root did not aggregate the nested group: %+v vs %+v", node.Stats, group.Stats)
	}
}
