package bench

// End-to-end correctness net: every query of the paper's workloads (TE, TB,
// TM, SE, SM) executed through the oblivious engine at quick scale must
// return exactly the reference join result. The figure runners measure
// cost; this file guarantees they measure *correct* executions.

import (
	"fmt"
	"testing"

	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/socialgraph"
	"oblivjoin/internal/table"
	"oblivjoin/internal/tpch"
)

func multiset(tuples []relation.Tuple) map[string]int {
	m := map[string]int{}
	for _, t := range tuples {
		m[fmt.Sprint(t.Values)]++
	}
	return m
}

func sameMultiset(t *testing.T, label string, got, want []relation.Tuple) {
	t.Helper()
	gm, wm := multiset(got), multiset(want)
	if len(got) != len(want) || len(gm) != len(wm) {
		t.Fatalf("%s: %d tuples (%d distinct), want %d (%d distinct)",
			label, len(got), len(gm), len(want), len(wm))
	}
	for k, c := range wm {
		if gm[k] != c {
			t.Fatalf("%s: tuple %s count %d, want %d", label, k, gm[k], c)
		}
	}
}

func (e *Env) storeBinary(t *testing.T, r1, r2 *relation.Relation, a1, a2 string, writeBack bool) (*table.StoredTable, *table.StoredTable, core.Options) {
	t.Helper()
	sealer, err := e.sealer()
	if err != nil {
		t.Fatal(err)
	}
	opts := table.Options{
		BlockPayload: e.payload(), Sealer: sealer,
		Rand: oram.NewSeededSource(uint64(e.Seed)), WriteBackDescents: writeBack,
	}
	s1, err := table.Store(r1, []string{a1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := table.Store(r2, []string{a2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s1, s2, core.Options{Sealer: sealer, OutBlockSize: e.payload()}
}

func TestAllPaperQueriesCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("several seconds of joins")
	}
	e := Quick()
	tdb := tpch.Generate(tpch.Config{Suppliers: 4, Seed: e.Seed})
	sdb := socialgraph.Generate(socialgraph.Config{Users: 60, Seed: e.Seed})

	type binq struct {
		name   string
		r1, r2 *relation.Relation
		a1, a2 string
	}
	var binaries []binq
	for _, q := range []tpch.BinaryQuery{tdb.TE1(), tdb.TE2(), tdb.TE3()} {
		binaries = append(binaries, binq{q.Name, q.R1, q.R2, q.A1, q.A2})
	}
	for _, q := range []socialgraph.BinaryQuery{sdb.SE1(), sdb.SE2(), sdb.SE3()} {
		binaries = append(binaries, binq{q.Name, q.R1, q.R2, q.A1, q.A2})
	}
	for _, q := range binaries {
		want := core.ReferenceEquiJoin(q.r1, q.r2, q.a1, q.a2)
		s1, s2, copts := e.storeBinary(t, q.r1, q.r2, q.a1, q.a2, false)
		smj, err := core.SortMergeJoin(s1, s2, q.a1, q.a2, copts)
		if err != nil {
			t.Fatalf("%s SMJ: %v", q.name, err)
		}
		sameMultiset(t, q.name+" SMJ", smj.Tuples, want)
		inlj, err := core.IndexNestedLoopJoin(s1, s2, q.a1, q.a2, copts)
		if err != nil {
			t.Fatalf("%s INLJ: %v", q.name, err)
		}
		sameMultiset(t, q.name+" INLJ", inlj.Tuples, want)
	}

	for _, q := range []tpch.BandQuery{tdb.TB1(), tdb.TB2()} {
		want := core.ReferenceBandJoin(q.R1, q.R2, q.A1, q.A2, q.Op)
		s1, s2, copts := e.storeBinary(t, q.R1, q.R2, q.A1, q.A2, false)
		res, err := core.BandJoin(s1, s2, q.A1, q.A2, q.Op, copts)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		sameMultiset(t, q.Name, res.Tuples, want)
	}

	type multiq struct {
		name string
		rels map[string]*relation.Relation
		q    jointree.Query
	}
	var multis []multiq
	for _, q := range []tpch.MultiQuery{tdb.TM1(), tdb.TM2(), tdb.TM3()} {
		multis = append(multis, multiq{q.Name, q.Rels, q.Query})
	}
	for _, q := range []socialgraph.MultiQuery{sdb.SM1(), sdb.SM2(), sdb.SM3()} {
		multis = append(multis, multiq{q.Name, q.Rels, q.Query})
	}
	sealer, err := e.sealer()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range multis {
		tree, err := jointree.Build(q.q)
		if err != nil {
			t.Fatalf("%s: %v", q.name, err)
		}
		want, err := core.ReferenceMultiwayJoin(q.rels, tree)
		if err != nil {
			t.Fatalf("%s: %v", q.name, err)
		}
		opts := table.Options{
			BlockPayload: e.payload(), Sealer: sealer,
			Rand: oram.NewSeededSource(uint64(e.Seed)), WriteBackDescents: true,
		}
		in := core.MultiwayInput{Tree: tree, Tables: make([]*table.StoredTable, tree.Len())}
		for i, n := range tree.Order {
			var attrs []string
			if n.Attr != "" {
				attrs = []string{n.Attr}
			}
			st, err := table.Store(q.rels[n.Table], attrs, opts)
			if err != nil {
				t.Fatalf("%s: %v", q.name, err)
			}
			in.Tables[i] = st
		}
		res, err := core.MultiwayJoin(in, core.Options{Sealer: sealer, OutBlockSize: e.payload()})
		if err != nil {
			t.Fatalf("%s: %v", q.name, err)
		}
		sameMultiset(t, q.name, res.Tuples, want)
		if res.BoundExceeded {
			t.Fatalf("%s: Theorem 4 bound exceeded (%d steps)", q.name, res.Steps)
		}
	}
}
