package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"oblivjoin/internal/core"
	"oblivjoin/internal/remote"
	"oblivjoin/internal/shard"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/telemetry"
)

// LatencyOp is one wire op's merged server-side latency distribution over
// a run: quantiles over the fixed-boundary histograms of every shard
// server, merged bucket-wise (the boundaries are shared by construction).
type LatencyOp struct {
	Op     string  `json:"op"`
	Count  int64   `json:"count"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MeanUS float64 `json:"mean_us"`
}

// LatencyPoint is one measured shard count: the seeded sort-merge join
// run over N latency-shaped loopback servers with per-op server-side
// service-time quantiles, the broker queue-wait / store-I/O
// decomposition, and the router's per-shard sub-call quantiles.
type LatencyPoint struct {
	Shards int     `json:"shards"`
	WallMS float64 `json:"wall_ms"`
	// Ops are the per-op service-time distributions, merged across the
	// run's shard servers and sorted by op name.
	Ops []LatencyOp `json:"ops"`
	// QueueWait and StoreIO decompose each server round: time queued
	// behind other sessions' rounds vs. time in the wrapped store.
	QueueWait LatencyOp `json:"queue_wait"`
	StoreIO   LatencyOp `json:"store_io"`
	// ShardP95US is each shard's sub-call p95 as the router saw it —
	// client-side, so it includes loopback transport on top of service
	// time. Skew is the max/mean ratio of per-shard block traffic.
	ShardP95US []float64 `json:"shard_p95_us"`
	Skew       float64   `json:"skew"`
}

// LatencyReport is what the `latency` experiment produces;
// BENCH_latency.json is one checked-in snapshot.
type LatencyReport struct {
	Host
	Seed              int64          `json:"seed"`
	Sweep             []int          `json:"shard_sweep"`
	PerBlockLatencyUS int64          `json:"per_block_latency_us"`
	Points            []LatencyPoint `json:"points"`
}

// LatencySweep is the shard-count lineup the latency experiment measures.
var LatencySweep = []int{1, 4}

// latencyPerBlock is the injected per-block service latency — smaller than
// the shard experiment's because here the subject is the histogram
// decomposition, not the speedup curve; it only needs to dominate loopback
// noise so the quantiles are stable.
const latencyPerBlock = 200 * time.Microsecond

const usPerNS = 1e-3

func latencyOp(name string, s telemetry.HistogramSnapshot) LatencyOp {
	return LatencyOp{
		Op:     name,
		Count:  s.Count,
		P50US:  float64(s.Quantile(0.50)) * usPerNS,
		P95US:  float64(s.Quantile(0.95)) * usPerNS,
		P99US:  float64(s.Quantile(0.99)) * usPerNS,
		MeanUS: float64(s.Mean()) * usPerNS,
	}
}

// latencyRun measures one shard count: the same loopback topology as
// shardRun, but what it harvests afterwards is the servers' per-op latency
// histograms. The distributions include the setup (upload) ops — servers
// expose cumulative histograms, not deltas — which is fine for a latency
// profile: setup and query ops of the same kind cost the same under the
// shaped per-block latency.
func latencyRun(e *Env, shards int, perBlock time.Duration) (LatencyPoint, error) {
	pt := LatencyPoint{Shards: shards}
	var addrs []string
	var servers []*remote.Server
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()
	for s := 0; s < shards; s++ {
		srv := remote.NewServer(remote.ServerOptions{
			MaxStoreBytes: 1 << 32,
			Faults:        &remote.Shaper{PerBlock: perBlock},
		})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return pt, err
		}
		servers = append(servers, srv)
		addrs = append(addrs, addr.String())
	}

	m := storage.NewMeter()
	pool, err := shard.DialPool(addrs, remote.ClientOptions{Meter: m})
	if err != nil {
		return pt, err
	}
	defer pool.Close()

	topts, err := e.tableOpts(m, false, false, false)
	if err != nil {
		return pt, err
	}
	topts.OpenStore = pool.Opener()
	topts.EvictionBatch = shardEvictionBatch
	topts.PrefetchDepth = shardEvictionBatch
	const n = 32
	r1 := sortBenchRelation("lat1", n, e.Seed)
	r2 := sortBenchRelation("lat2", n, e.Seed+1)
	s1, err := table.Store(r1, []string{"k"}, topts)
	if err != nil {
		return pt, err
	}
	s2, err := table.Store(r2, []string{"k"}, topts)
	if err != nil {
		return pt, err
	}
	m.Reset()
	pool.ResetStats()
	copts, err := e.coreOpts(m)
	if err != nil {
		return pt, err
	}
	sp := e.Trace.ChildMeter(fmt.Sprintf("latency %d shards", shards), m)
	copts.Span = sp
	defer sp.End()

	wall := time.Now()
	if _, err := core.SortMergeJoin(s1, s2, "k", "k", copts); err != nil {
		return pt, err
	}
	pt.WallMS = float64(time.Since(wall).Nanoseconds()) / 1e6

	// Merge each server's per-op histograms bucket-wise into one
	// distribution per op, plus the queue-wait / store-I/O decomposition.
	merged := make(map[string]telemetry.HistogramSnapshot)
	for _, srv := range servers {
		for k, s := range srv.HistogramSnapshots() {
			merged[k] = merged[k].Merge(s)
		}
	}
	var ops []string
	for k := range merged {
		if len(k) > 3 && k[:3] == "op." && merged[k].Count > 0 {
			ops = append(ops, k)
		}
	}
	sort.Strings(ops)
	for _, k := range ops {
		pt.Ops = append(pt.Ops, latencyOp(k[3:], merged[k]))
	}
	pt.QueueWait = latencyOp("queue_wait", merged["queue_wait"])
	pt.StoreIO = latencyOp("store_io", merged["store_io"])
	stats := pool.Stats()
	for s := range stats {
		pt.ShardP95US = append(pt.ShardP95US, stats[s].P95MS*1e3)
	}
	pt.Skew = shard.Skew(stats)
	return pt, nil
}

// LatencyBench measures per-op server-side latency distributions for the
// seeded join at 1 and 4 latency-shaped loopback shards.
func LatencyBench(e *Env) (*LatencyReport, error) {
	return latencyBench(e, LatencySweep, latencyPerBlock)
}

func latencyBench(e *Env, sweep []int, perBlock time.Duration) (*LatencyReport, error) {
	rep := &LatencyReport{
		Host:              CurrentHost(),
		Seed:              e.Seed,
		Sweep:             sweep,
		PerBlockLatencyUS: perBlock.Microseconds(),
	}
	for _, shards := range sweep {
		pt, err := latencyRun(e, shards, perBlock)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// WriteLatencyReport renders the per-op latency tables.
func WriteLatencyReport(w io.Writer, rep *LatencyReport) {
	fmt.Fprintf(w, "== LATENCY: per-op server-side service time, %dus injected per-block latency (NumCPU=%d GOMAXPROCS=%d)\n",
		rep.PerBlockLatencyUS, rep.NumCPU, rep.GOMAXPROCS)
	for _, p := range rep.Points {
		fmt.Fprintf(w, "-- %d shard(s): wall %.1f ms, block skew %.3f\n", p.Shards, p.WallMS, p.Skew)
		fmt.Fprintf(w, "%-12s %8s %10s %10s %10s %10s\n", "op", "count", "p50 us", "p95 us", "p99 us", "mean us")
		rows := append(append([]LatencyOp{}, p.Ops...), p.QueueWait, p.StoreIO)
		for _, o := range rows {
			fmt.Fprintf(w, "%-12s %8d %10.1f %10.1f %10.1f %10.1f\n",
				o.Op, o.Count, o.P50US, o.P95US, o.P99US, o.MeanUS)
		}
	}
	fmt.Fprintln(w)
}

// RunLatency executes the latency experiment and writes the tables; the
// report is returned for snapshotting (BENCH_latency.json).
func RunLatency(w io.Writer, e *Env) (*LatencyReport, error) {
	rep, err := LatencyBench(e)
	if err != nil {
		return nil, err
	}
	WriteLatencyReport(w, rep)
	return rep, nil
}

// MarshalLatencyReport renders a LatencyReport as the BENCH_latency.json
// snapshot format (indented, trailing newline).
func MarshalLatencyReport(rep *LatencyReport) ([]byte, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
