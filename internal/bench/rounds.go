package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"oblivjoin/internal/core"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
)

// RoundsPoint is one measured configuration of the staged-ORAM rounds
// experiment: one join driven at one EvictionBatch/PrefetchDepth setting.
// The input tables' ORAM traffic is metered separately from the output
// filter, so RoundsPerAccess is exactly the network rounds each Path-ORAM
// access cost — the metric the deferred-eviction scheduler (DESIGN.md §2.9)
// exists to lower from the classic 2.0 (read round + evict round).
type RoundsPoint struct {
	Join          string `json:"join"`
	EvictionBatch int    `json:"eviction_batch"`
	PrefetchDepth int    `json:"prefetch_depth"`
	// Accesses counts ORAM accesses (real + dummy) across both tables'
	// data and index ORAMs; Rounds the network round trips they cost.
	Accesses        int64   `json:"oram_accesses"`
	Rounds          int64   `json:"network_rounds"`
	RoundsPerAccess float64 `json:"rounds_per_access"`
	// Reduction is classic (k=1) rounds-per-access divided by this row's.
	Reduction float64 `json:"reduction_vs_classic"`
	// Scheduler counters: eviction flush rounds, bucket writes saved by
	// upper-tree dedup within a flush, and flushes that rode a path
	// download in one combined exchange round.
	Flushes        int64 `json:"evict_flushes"`
	DedupedBuckets int64 `json:"deduped_buckets"`
	Exchanges      int64 `json:"exchanges"`
}

// RoundsReport is the deferred-eviction round-trip comparison the `rounds`
// experiment produces; BENCH_rounds.json in the repo root is one checked-in
// snapshot. Every number is a deterministic traffic count (seeded ORAM
// randomness), unlike the wall-clock sort report.
type RoundsReport struct {
	Host
	Seed   int64         `json:"seed"`
	Sweep  []int         `json:"eviction_batches"`
	Points []RoundsPoint `json:"points"`
}

// RoundsBatchSweep is the EvictionBatch lineup the rounds experiment
// measures (k = 1 is the classic write-back-per-access data path).
var RoundsBatchSweep = []int{1, 4, 16}

// roundsRun executes one join with EvictionBatch = PrefetchDepth = k over
// MemStore-backed tables and returns its measured point (Reduction is
// filled by the caller, which knows the classic baseline).
func roundsRun(e *Env, join string, k int) (RoundsPoint, error) {
	pt := RoundsPoint{Join: join, EvictionBatch: k, PrefetchDepth: k}
	env := *e
	env.EvictionBatch = k
	env.PrefetchDepth = k
	mTab := storage.NewMeter()
	topts, err := env.tableOpts(mTab, false, false, false)
	if err != nil {
		return pt, err
	}
	const n = 48
	r1 := sortBenchRelation("rb1", n, e.Seed)
	r2 := sortBenchRelation("rb2", n, e.Seed+1)
	s1, err := table.Store(r1, []string{"k"}, topts)
	if err != nil {
		return pt, err
	}
	s2, err := table.Store(r2, []string{"k"}, topts)
	if err != nil {
		return pt, err
	}
	mTab.Reset()                                   // setup traffic is not query cost
	copts, err := env.coreOpts(storage.NewMeter()) // filter metered apart
	if err != nil {
		return pt, err
	}
	switch join {
	case "smj":
		_, err = core.SortMergeJoin(s1, s2, "k", "k", copts)
	case "inlj":
		_, err = core.IndexNestedLoopJoin(s1, s2, "k", "k", copts)
	default:
		err = fmt.Errorf("bench: unknown rounds join %q", join)
	}
	if err != nil {
		return pt, err
	}
	for _, st := range []*table.StoredTable{s1, s2} {
		for _, ps := range st.PathTelemetry() {
			pt.Accesses += ps.Accesses
			pt.Flushes += ps.Flushes
			pt.DedupedBuckets += ps.DedupedBuckets
			pt.Exchanges += ps.Exchanges
		}
	}
	pt.Rounds = mTab.Snapshot().NetworkRounds
	if pt.Accesses > 0 {
		pt.RoundsPerAccess = float64(pt.Rounds) / float64(pt.Accesses)
	}
	return pt, nil
}

// RoundsBench measures the sort-merge and index nested-loop joins across
// RoundsBatchSweep.
func RoundsBench(e *Env) (*RoundsReport, error) {
	rep := &RoundsReport{Host: CurrentHost(), Seed: e.Seed, Sweep: RoundsBatchSweep}
	for _, join := range []string{"smj", "inlj"} {
		var classic float64
		for _, k := range RoundsBatchSweep {
			pt, err := roundsRun(e, join, k)
			if err != nil {
				return nil, err
			}
			if k == RoundsBatchSweep[0] {
				classic = pt.RoundsPerAccess
			}
			if pt.RoundsPerAccess > 0 {
				pt.Reduction = classic / pt.RoundsPerAccess
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep, nil
}

// WriteRoundsReport renders the rounds-per-access table.
func WriteRoundsReport(w io.Writer, rep *RoundsReport) {
	fmt.Fprintln(w, "== ROUNDS: network rounds per ORAM access vs EvictionBatch (DESIGN.md §2.9)")
	fmt.Fprintf(w, "%-6s %8s %10s %10s %12s %10s %9s %8s %10s\n",
		"join", "k", "accesses", "rounds", "rounds/acc", "reduction", "flushes", "dedup", "exchanges")
	for _, p := range rep.Points {
		fmt.Fprintf(w, "%-6s %8d %10d %10d %12.3f %9.2fx %9d %8d %10d\n",
			p.Join, p.EvictionBatch, p.Accesses, p.Rounds, p.RoundsPerAccess,
			p.Reduction, p.Flushes, p.DedupedBuckets, p.Exchanges)
	}
	fmt.Fprintln(w)
}

// RunRounds executes the rounds experiment and writes the table; the report
// is returned for snapshotting (BENCH_rounds.json).
func RunRounds(w io.Writer, e *Env) (*RoundsReport, error) {
	rep, err := RoundsBench(e)
	if err != nil {
		return nil, err
	}
	WriteRoundsReport(w, rep)
	return rep, nil
}

// MarshalRoundsReport renders a RoundsReport as the BENCH_rounds.json
// snapshot format (indented, trailing newline).
func MarshalRoundsReport(rep *RoundsReport) ([]byte, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
