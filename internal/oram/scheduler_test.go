package oram

import (
	"bytes"
	"fmt"
	"io"
	mrand "math/rand"
	"testing"

	"oblivjoin/internal/storage"
)

// newBatchORAM builds a MemStore-backed Path-ORAM with the given eviction
// batch. MemStore implements storage.ExchangeStore, so with batch > 1 the
// scheduler's due flushes ride the next fetch in one exchange round.
func newBatchORAM(t testing.TB, capacity int64, payload int, meter *storage.Meter, batch int, seed uint64) *PathORAM {
	t.Helper()
	o, err := NewPathORAM(PathConfig{
		Name:          "sched",
		Capacity:      capacity,
		PayloadSize:   payload,
		Meter:         meter,
		Sealer:        testSealer(t),
		Rand:          NewSeededSource(seed),
		EvictionBatch: batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// batchOnlyStore hides MemStore's Exchange method, leaving a plain
// BatchStore: the scheduler must then flush deferred evictions in their own
// WriteMany rounds instead of riding a fetch.
type batchOnlyStore struct{ s *storage.MemStore }

func (w batchOnlyStore) Read(i int64) ([]byte, error)             { return w.s.Read(i) }
func (w batchOnlyStore) Write(i int64, d []byte) error            { return w.s.Write(i, d) }
func (w batchOnlyStore) Len() int64                               { return w.s.Len() }
func (w batchOnlyStore) BlockSize() int                           { return w.s.BlockSize() }
func (w batchOnlyStore) ReadMany(idxs []int64) ([][]byte, error)  { return w.s.ReadMany(idxs) }
func (w batchOnlyStore) WriteMany(idxs []int64, d [][]byte) error { return w.s.WriteMany(idxs, d) }

// TestSchedulerMatchesReference drives randomized workloads through every
// eviction-batch setting and checks the ORAM against a plain map: deferring
// and deduplicating write-backs must never change the data the client reads.
func TestSchedulerMatchesReference(t *testing.T) {
	for _, batch := range []int{1, 2, 4, 16} {
		t.Run(fmt.Sprintf("k=%d", batch), func(t *testing.T) {
			const capacity = 64
			o := newBatchORAM(t, capacity, 16, nil, batch, 11)
			ref := map[uint64][]byte{}
			r := mrand.New(mrand.NewSource(int64(batch)))
			for step := 0; step < 3000; step++ {
				key := uint64(r.Intn(capacity))
				switch r.Intn(5) {
				case 0: // write
					val := []byte{byte(step), byte(step >> 8)}
					if err := o.Write(key, val); err != nil {
						t.Fatalf("step %d write: %v", step, err)
					}
					ref[key] = val
				case 1: // update
					if _, ok := ref[key]; !ok {
						continue
					}
					if _, err := o.Update(key, func(p []byte) error { p[0]++; return nil }); err != nil {
						t.Fatalf("step %d update: %v", step, err)
					}
					ref[key][0]++
				case 2: // dummy
					if err := o.DummyAccess(); err != nil {
						t.Fatalf("step %d dummy: %v", step, err)
					}
				case 3: // coalesced batch read
					keys := make([]uint64, 1+r.Intn(4))
					for i := range keys {
						for {
							keys[i] = uint64(r.Intn(capacity))
							if _, ok := ref[keys[i]]; ok {
								break
							}
							if len(ref) == 0 {
								keys = nil
								break
							}
						}
						if keys == nil {
							break
						}
					}
					if len(keys) == 0 {
						continue
					}
					got, err := o.ReadBatch(keys)
					if err != nil {
						t.Fatalf("step %d batch read: %v", step, err)
					}
					for i, k := range keys {
						want := ref[k]
						if !bytes.Equal(got[i][:len(want)], want) {
							t.Fatalf("step %d batch read key %d = %v, want %v", step, k, got[i][:len(want)], want)
						}
					}
				default: // read
					want, ok := ref[key]
					got, err := o.Read(key)
					if !ok {
						if err == nil {
							t.Fatalf("step %d read of absent key %d succeeded", step, key)
						}
						continue
					}
					if err != nil {
						t.Fatalf("step %d read: %v", step, err)
					}
					if !bytes.Equal(got[:len(want)], want) {
						t.Fatalf("step %d read key %d = %v, want %v", step, key, got[:len(want)], want)
					}
				}
			}
			// Flush the deferred queue, then read everything back: the
			// server-side tree plus stash must still hold every block.
			if err := o.Flush(); err != nil {
				t.Fatal(err)
			}
			if o.PendingEvictions() != 0 {
				t.Fatalf("pending evictions after flush: %d", o.PendingEvictions())
			}
			for key, want := range ref {
				got, err := o.Read(key)
				if err != nil {
					t.Fatalf("final read %d: %v", key, err)
				}
				if !bytes.Equal(got[:len(want)], want) {
					t.Fatalf("final read %d = %v, want %v", key, got[:len(want)], want)
				}
			}
		})
	}
}

// TestSchedulerDeferredRounds pins the amortized round count on a store
// without exchange support: each access costs its one download round, and
// every k-th access adds one WriteMany flush round — 1 + 1/k instead of the
// classic 2.
func TestSchedulerDeferredRounds(t *testing.T) {
	const k, n, capacity = 4, 40, 64
	m := storage.NewMeter()
	o, err := NewPathORAM(PathConfig{
		Name:          "noexch",
		Capacity:      capacity,
		PayloadSize:   16,
		Meter:         m,
		Sealer:        testSealer(t),
		Rand:          NewSeededSource(5),
		EvictionBatch: k,
		OpenStore: func(name string, slots int64, blockSize int) (storage.Store, error) {
			return batchOnlyStore{storage.NewMemStore(name, slots, blockSize, m)}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// capacity writes leave the pending queue empty (capacity % k == 0).
	for i := uint64(0); i < capacity; i++ {
		if err := o.Write(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if o.PendingEvictions() != 0 {
		t.Fatalf("pending after setup: %d", o.PendingEvictions())
	}
	m.Reset()
	setup := o.Telemetry()
	for i := 0; i < n; i++ {
		if _, err := o.Read(uint64(i % capacity)); err != nil {
			t.Fatal(err)
		}
	}
	want := int64(n + n/k)
	if got := m.Snapshot().NetworkRounds; got != want {
		t.Fatalf("%d deferred accesses used %d rounds, want %d (1+1/k amortized)", n, got, want)
	}
	// The worst-case constant the cost model uses stays the per-access
	// ceiling regardless of batching.
	if o.RoundsPerOp() != 2 {
		t.Fatalf("RoundsPerOp = %d, want 2", o.RoundsPerOp())
	}
	stats := o.Telemetry()
	flushes, paths := stats.Flushes-setup.Flushes, stats.FlushedPaths-setup.FlushedPaths
	if flushes != int64(n/k) || paths != int64(n) {
		t.Fatalf("flush telemetry: %d flushes of %d paths, want %d of %d", flushes, paths, n/k, n)
	}
	if stats.DedupedBuckets == setup.DedupedBuckets {
		t.Fatal("no deduplicated buckets across flushes of a 6-level tree")
	}
	if stats.Exchanges != 0 {
		t.Fatalf("exchange count %d on a store without exchange support", stats.Exchanges)
	}
}

// TestSchedulerExchangeRounds pins the round count when the store supports
// exchanges: every due flush rides the next access's path download, so n
// accesses cost exactly n rounds — ~1.0 per access amortized.
func TestSchedulerExchangeRounds(t *testing.T) {
	const k, n, capacity = 4, 40, 64
	m := storage.NewMeter()
	o := newBatchORAM(t, capacity, 16, m, k, 6)
	for i := uint64(0); i < capacity; i++ {
		if err := o.Write(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	m.Reset()
	for i := 0; i < n; i++ {
		if _, err := o.Read(uint64(i % capacity)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Snapshot().NetworkRounds; got != int64(n) {
		t.Fatalf("%d exchange-batched accesses used %d rounds, want %d", n, got, n)
	}
	if stats := o.Telemetry(); stats.Exchanges == 0 {
		t.Fatal("no flush rode an exchange round")
	}
	// The terminal flush drains whatever is still pending in one more round.
	before := m.Snapshot().NetworkRounds
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	extra := m.Snapshot().NetworkRounds - before
	if extra > 1 {
		t.Fatalf("flush used %d rounds, want at most 1", extra)
	}
	if o.PendingEvictions() != 0 {
		t.Fatalf("pending after flush: %d", o.PendingEvictions())
	}
}

// TestSchedulerStashHighWater is the deferred-eviction stash bound: between
// flushes at most k paths' worth of blocks are pinned client-side, so the
// high-water mark can exceed the classic run's by at most k·Z·L blocks
// (DESIGN.md §2.9). The randomized workload runs the same seed at every
// setting so the classic peak is a true baseline.
func TestSchedulerStashHighWater(t *testing.T) {
	const capacity, accesses = 256, 10000
	run := func(batch int) int {
		o := newBatchORAM(t, capacity, 8, nil, batch, 31)
		for i := uint64(0); i < capacity; i++ {
			if err := o.Write(i, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		r := mrand.New(mrand.NewSource(17))
		for i := 0; i < accesses; i++ {
			if _, err := o.Read(uint64(r.Intn(capacity))); err != nil {
				t.Fatal(err)
			}
		}
		return o.Telemetry().StashPeak
	}
	base := run(1)
	levels := newBatchORAM(t, capacity, 8, nil, 1, 31).Levels()
	for _, k := range []int{4, 16} {
		peak := run(k)
		bound := base + k*DefaultZ*levels
		if peak > bound {
			t.Fatalf("k=%d stash peak %d exceeds base %d + k·Z·L = %d", k, peak, base, bound)
		}
	}
}

// TestReadBatchCoalescedRounds verifies the coalesced-fetch entry point:
// a ReadBatch of b keys downloads the union of their paths in one round and
// is indistinguishable in cost from a DummyBatch of the same size.
func TestReadBatchCoalescedRounds(t *testing.T) {
	const capacity = 64
	m := storage.NewMeter()
	// batch=1 isolates the fetch coalescing from eviction deferral: each of
	// the b accesses still writes its path back in its own round.
	o := newBatchORAM(t, capacity, 16, m, 1, 7)
	for i := uint64(0); i < capacity; i++ {
		if err := o.Write(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	const b = 5
	m.Reset()
	got, err := o.ReadBatch([]uint64{3, 9, 27, 3, 50})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []byte{3, 9, 27, 3, 50} {
		if got[i][0] != want {
			t.Fatalf("batch result %d = %d, want %d", i, got[i][0], want)
		}
	}
	read := m.Snapshot()
	// One union download plus one union write-back: the batch's paths are
	// sealed as a single eviction set (overlapping per-path writes would
	// erase each other's placements).
	if gotRounds, want := read.NetworkRounds, int64(2); gotRounds != want {
		t.Fatalf("ReadBatch(%d) used %d rounds, want %d (union fetch + union write-back)", b, gotRounds, want)
	}
	m.Reset()
	if err := o.DummyBatch(b); err != nil {
		t.Fatal(err)
	}
	dummy := m.Snapshot()
	if dummy.NetworkRounds != read.NetworkRounds {
		t.Fatalf("DummyBatch rounds %d != ReadBatch rounds %d", dummy.NetworkRounds, read.NetworkRounds)
	}
	stats := o.Telemetry()
	if stats.BatchFetches != 2 || stats.BatchedAccesses != 2*b {
		t.Fatalf("batch telemetry: %d fetches of %d accesses, want 2 of %d", stats.BatchFetches, stats.BatchedAccesses, 2*b)
	}
}

// faultableStore wraps a MemStore and fails WriteMany/Exchange while armed,
// modeling a transport outage at flush time.
type faultableStore struct {
	s    *storage.MemStore
	fail bool
}

func (w *faultableStore) Read(i int64) ([]byte, error)            { return w.s.Read(i) }
func (w *faultableStore) Write(i int64, d []byte) error           { return w.s.Write(i, d) }
func (w *faultableStore) Len() int64                              { return w.s.Len() }
func (w *faultableStore) BlockSize() int                          { return w.s.BlockSize() }
func (w *faultableStore) ReadMany(idxs []int64) ([][]byte, error) { return w.s.ReadMany(idxs) }
func (w *faultableStore) WriteMany(idxs []int64, d [][]byte) error {
	if w.fail {
		return fmt.Errorf("injected write failure")
	}
	return w.s.WriteMany(idxs, d)
}
func (w *faultableStore) Exchange(widxs []int64, wdata [][]byte, ridxs []int64) ([][]byte, error) {
	if w.fail {
		return nil, fmt.Errorf("injected exchange failure")
	}
	return w.s.Exchange(widxs, wdata, ridxs)
}

// exchangelessFaultableStore forwards to a faultableStore through a named
// field (not embedding, which would promote Exchange into the method set),
// so due flushes go through standalone WriteMany rounds.
type exchangelessFaultableStore struct{ fs *faultableStore }

func (w exchangelessFaultableStore) Read(i int64) ([]byte, error)  { return w.fs.Read(i) }
func (w exchangelessFaultableStore) Write(i int64, d []byte) error { return w.fs.Write(i, d) }
func (w exchangelessFaultableStore) Len() int64                    { return w.fs.Len() }
func (w exchangelessFaultableStore) BlockSize() int                { return w.fs.BlockSize() }
func (w exchangelessFaultableStore) ReadMany(idxs []int64) ([][]byte, error) {
	return w.fs.ReadMany(idxs)
}
func (w exchangelessFaultableStore) WriteMany(idxs []int64, d [][]byte) error {
	return w.fs.WriteMany(idxs, d)
}

// TestSchedulerFlushFailureKeepsState: a failed flush must not strand
// blocks. sealEvictionSet stages the bucket writes without touching the
// stash or the pending queue; only a successful store round commits them,
// so after a transport outage every block is still readable and a retried
// Flush drains the queue.
func TestSchedulerFlushFailureKeepsState(t *testing.T) {
	const k, capacity = 4, 64
	for _, tc := range []struct {
		name string
		open func(fs *faultableStore) storage.Store
	}{
		// WriteMany path: the k-th access triggers flushNow, which fails.
		{"write-many", func(fs *faultableStore) storage.Store { return exchangelessFaultableStore{fs} }},
		// Exchange path: the due flush rides a later fetch, which fails.
		{"exchange", func(fs *faultableStore) storage.Store { return fs }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var fs *faultableStore
			o, err := NewPathORAM(PathConfig{
				Name:          "fault",
				Capacity:      capacity,
				PayloadSize:   16,
				Sealer:        testSealer(t),
				Rand:          NewSeededSource(23),
				EvictionBatch: k,
				OpenStore: func(name string, slots int64, blockSize int) (storage.Store, error) {
					fs = &faultableStore{s: storage.NewMemStore(name, slots, blockSize, nil)}
					return tc.open(fs), nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < capacity; i++ {
				if err := o.Write(i, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := o.Flush(); err != nil {
				t.Fatal(err)
			}

			// Queue k-1 evictions cleanly, then drive dummy accesses into the
			// outage until a flush attempt surfaces the store error. Dummies
			// exercise the same flush paths as real accesses without remapping
			// any real key's position, so a failed access strands nothing
			// beyond the sealed eviction set under test.
			for i := uint64(0); i < k-1; i++ {
				if _, err := o.Read(i); err != nil {
					t.Fatal(err)
				}
			}
			fs.fail = true
			var failed bool
			for i := 0; i < 2*k && !failed; i++ {
				if err := o.DummyAccess(); err != nil {
					failed = true
				}
			}
			if !failed {
				t.Fatal("no flush attempt reached the failing store")
			}
			if o.PendingEvictions() == 0 {
				t.Fatal("failed flush cleared the pending queue")
			}

			// The outage ends: every block must still be readable (stash
			// copies were never dropped) and a retried flush settles.
			fs.fail = false
			for i := uint64(0); i < capacity; i++ {
				got, err := o.Read(i)
				if err != nil {
					t.Fatalf("read %d after failed flush: %v", i, err)
				}
				if got[0] != byte(i) {
					t.Fatalf("read %d = %d after failed flush", i, got[0])
				}
			}
			if err := o.Flush(); err != nil {
				t.Fatalf("retried flush: %v", err)
			}
			if o.PendingEvictions() != 0 {
				t.Fatalf("pending after retried flush: %d", o.PendingEvictions())
			}
		})
	}
}

// TestSchedulerRecursivePosMap checks that eviction deferral propagates to
// recursive position-map ORAMs and that Flush settles the whole stack.
func TestSchedulerRecursivePosMap(t *testing.T) {
	o, err := NewPathORAM(PathConfig{
		Name:          "rec",
		Capacity:      512,
		PayloadSize:   64,
		Sealer:        testSealer(t),
		Rand:          NewSeededSource(13),
		RecursePosMap: true,
		EvictionBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 512; i += 3 {
		if err := o.Write(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 512; i += 3 {
		got, err := o.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := fmt.Sprintf("v%d", i)
		if string(got[:len(want)]) != want {
			t.Fatalf("read %d = %q, want %q", i, got[:len(want)], want)
		}
	}
}

// TestCloseSettlesPendingEvictions pins the session-boundary hook: Close
// flushes every deferred path, is idempotent, and leaves the instance
// usable — the serving layer calls it before checkpointing a store another
// session may pick up.
func TestCloseSettlesPendingEvictions(t *testing.T) {
	o := newBatchORAM(t, 64, 16, nil, 8, 23)
	for i := uint64(0); i < 20; i++ {
		if err := o.Write(i, []byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if o.PendingEvictions() == 0 {
		t.Fatal("workload left nothing deferred; test is vacuous")
	}
	var c io.Closer = o // the hook must satisfy io.Closer
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if n := o.PendingEvictions(); n != 0 {
		t.Fatalf("%d evictions still pending after Close", n)
	}
	if err := o.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The instance stays usable after Close.
	got, err := o.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatalf("post-Close read = %v", got[0])
	}
}
