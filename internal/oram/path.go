package oram

import (
	"encoding/binary"
	"fmt"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/telemetry"
	"oblivjoin/internal/xcrypto"
)

// DefaultZ is the bucket capacity used throughout the paper's evaluation
// ("we set the number of blocks in each bucket of Path-ORAM to Z = 4").
const DefaultZ = 4

const (
	// Each slot stores: valid byte, 8-byte key, 4-byte assigned leaf, payload.
	// Carrying the leaf in the slot lets eviction proceed without consulting
	// the position map, which matters when the map itself is outsourced.
	slotHeader = 1 + 8 + 4
	noLeaf     = ^uint32(0)
)

// PathConfig configures a Path-ORAM instance.
type PathConfig struct {
	// Name labels the ORAM's server store in traces (e.g. "T1.data").
	Name string
	// Capacity is the number of logical blocks (keys are 0..Capacity-1).
	Capacity int64
	// PayloadSize is the usable bytes per logical block.
	PayloadSize int
	// Z is the bucket capacity; 0 means DefaultZ.
	Z int
	// Meter receives traffic accounting; may be nil.
	Meter *storage.Meter
	// Sealer encrypts buckets; required unless Keyring is set.
	Sealer *xcrypto.Sealer
	// Keyring, when non-nil, supplies the bucket sealer instead: the store's
	// sealer is HKDF-derived from Name, so every ORAM tree (and each
	// recursive position-map level, via the ".pos" name suffix) is sealed
	// under an independent subkey, and an epoch rotation on the ring applies
	// to this ORAM's write-backs from the next access on. Takes precedence
	// over Sealer.
	Keyring *xcrypto.Keyring
	// Rand supplies leaf randomness; nil means a crypto/rand source.
	Rand LeafSource
	// RecursePosMap outsources the position map to recursively built
	// Path-ORAMs until it fits in RecurseCutoff entries, reducing client
	// memory from O(N) to O(log N) at extra per-access cost (Section 4.1).
	RecursePosMap bool
	// RecurseCutoff is the position-map size kept client-side when recursing;
	// 0 means 64 entries.
	RecurseCutoff int64
	// OpenStore provisions the server-side bucket store (and, when
	// recursing, the position-map stores). Nil means an in-process MemStore
	// reporting to Meter; a remote deployment passes a transport-backed
	// opener (e.g. remote.Client.Opener) so the tree lives on a networked
	// block server.
	OpenStore storage.Opener
	// EvictionBatch defers eviction write-backs and flushes that many
	// pending paths in one round trip, deduplicating the shared upper-tree
	// buckets within a flush (DESIGN.md §2.9). Values <= 1 keep the classic
	// protocol: every access writes its path back immediately. The setting
	// propagates to recursive position-map ORAMs.
	EvictionBatch int
	// Flight, when non-nil, carries the distributed-trace context: the
	// scheduler pushes the declared-public "oram.flush" phase around
	// deferred write-backs so server spans attribute them separately from
	// the engine phase that happened to trigger the flush. Phase labels
	// are a function of public schedule state only (flush cadence is
	// EvictionBatch, a config constant), so the annotation leaks nothing.
	// Propagates to recursive position-map ORAMs.
	Flight *telemetry.Flight
}

type stashEntry struct {
	leaf    uint32
	payload []byte
}

// PathORAM is the client handle to a Path-ORAM: the server holds a full
// binary tree of Z-slot buckets; the client holds the stash and position
// map and maintains the invariant that block b always resides on the path
// to the leaf the position map assigns it.
type PathORAM struct {
	cfg        PathConfig
	sealer     *xcrypto.Sealer // resolved from cfg.Keyring (per store name) or cfg.Sealer
	store      storage.Store
	batch      storage.BatchStore    // non-nil when store supports batched paths
	exch       storage.ExchangeStore // non-nil when store supports write+read exchanges
	leaves     int64
	levels     int // path length in buckets (root..leaf inclusive)
	z          int
	slotSize   int
	bucketSize int // plaintext bucket bytes

	pos      posMap
	stash    map[uint64]stashEntry
	maxStash int
	rand     LeafSource
	sched    *scheduler

	// Scratch buffers reused by the seal/open hot loops so a steady-state
	// access allocates nothing per bucket. Safe because a PathORAM serves
	// one access at a time and every store implementation consumes batch
	// payloads before returning (storage.BatchStore contract).
	openBuf  []byte   // OpenTo target for path downloads
	plainBuf []byte   // one plaintext bucket, reused per level
	sealBuf  []byte   // SealTo target for a whole path write-back
	sealView [][]byte // per-level views into sealBuf

	// Client-side telemetry counters (see Telemetry); never server-visible.
	accesses       int64
	dummyAccesses  int64
	bucketsRead    int64
	bucketsWritten int64
	levelPlaced    []int64
}

// NewPathORAM builds the server tree (all buckets initialized to sealed
// empty) and returns the client handle. Construction models the paper's
// preprocessing step; callers reset meters afterwards so setup traffic is
// not charged to queries.
func NewPathORAM(cfg PathConfig) (*PathORAM, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("oram: capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.PayloadSize <= 0 {
		return nil, fmt.Errorf("oram: payload size must be positive, got %d", cfg.PayloadSize)
	}
	sealer, err := resolveSealer(cfg)
	if err != nil {
		return nil, err
	}
	z := cfg.Z
	if z == 0 {
		z = DefaultZ
	}
	if z < 1 {
		return nil, fmt.Errorf("oram: bucket size Z must be >= 1, got %d", cfg.Z)
	}
	rnd := cfg.Rand
	if rnd == nil {
		rnd = NewCryptoSource()
	}
	leaves := nextPow2(cfg.Capacity)
	levels := 1
	for l := leaves; l > 1; l >>= 1 {
		levels++
	}
	slotSize := slotHeader + cfg.PayloadSize
	bucketSize := z * slotSize
	nodes := 2*leaves - 1
	o := &PathORAM{
		cfg:        cfg,
		sealer:     sealer,
		leaves:     leaves,
		levels:     levels,
		z:          z,
		slotSize:   slotSize,
		bucketSize: bucketSize,
		stash:      make(map[uint64]stashEntry),
		rand:       rnd,
	}
	o.levelPlaced = make([]int64, levels)
	open := cfg.OpenStore
	if open == nil {
		open = func(name string, slots int64, blockSize int) (storage.Store, error) {
			return storage.NewMemStore(name, slots, blockSize, cfg.Meter), nil
		}
	}
	st, err := open(cfg.Name, nodes, xcrypto.SealedLen(bucketSize))
	if err != nil {
		return nil, fmt.Errorf("oram: open store %q: %w", cfg.Name, err)
	}
	o.store = st
	o.batch, _ = st.(storage.BatchStore)
	o.exch, _ = st.(storage.ExchangeStore)
	o.sched = newScheduler(o, cfg.EvictionBatch)
	// Initialize every bucket to a sealed empty bucket so the adversary sees
	// a fully populated, uniformly encrypted tree from the start. Each bucket
	// gets its own fresh ciphertext; the upload itself is batched.
	empty := make([]byte, bucketSize)
	up := newUploader(o)
	for i := int64(0); i < nodes; i++ {
		if err := up.add(i, empty); err != nil {
			return nil, err
		}
	}
	if err := up.flush(); err != nil {
		return nil, err
	}
	if cfg.RecursePosMap {
		cutoff := cfg.RecurseCutoff
		if cutoff <= 0 {
			cutoff = 64
		}
		pm, err := newORAMPosMap(cfg, cfg.Capacity, cutoff, rnd)
		if err != nil {
			return nil, err
		}
		o.pos = pm
	} else {
		o.pos = newFlatPosMap(cfg.Capacity)
	}
	return o, nil
}

// resolveSealer picks the bucket sealer for a config: the keyring's
// per-store-name subkey sealer when a ring is set, the explicit Sealer
// otherwise.
func resolveSealer(cfg PathConfig) (*xcrypto.Sealer, error) {
	if cfg.Keyring != nil {
		s, err := cfg.Keyring.Sealer(cfg.Name)
		if err != nil {
			return nil, fmt.Errorf("oram: deriving sealer for store %q: %w", cfg.Name, err)
		}
		return s, nil
	}
	if cfg.Sealer == nil {
		return nil, fmt.Errorf("oram: sealer or keyring is required")
	}
	return cfg.Sealer, nil
}

func nextPow2(n int64) int64 {
	p := int64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// uploadChunk bounds the client memory held by one bulk-upload batch.
const uploadChunk = 256

// uploader seals plaintext buckets into one reusable batch buffer and
// streams them to the server in bounded batches, using one round per batch
// when the store supports it. Only the preprocessing paths (construction,
// BulkLoad) use it; query-time accesses always move exactly one path per
// batch.
type uploader struct {
	o    *PathORAM
	idxs []int64
	buf  []byte   // sealed buckets, appended back to back
	data [][]byte // per-bucket views into buf
}

func newUploader(o *PathORAM) *uploader {
	return &uploader{
		o:    o,
		idxs: make([]int64, 0, uploadChunk),
		buf:  make([]byte, 0, uploadChunk*xcrypto.SealedLen(o.bucketSize)),
		data: make([][]byte, 0, uploadChunk),
	}
}

func (u *uploader) add(i int64, plain []byte) error {
	off := len(u.buf)
	buf, err := u.o.sealer.SealTo(u.buf, plain)
	if err != nil {
		return err
	}
	u.buf = buf
	u.idxs = append(u.idxs, i)
	u.data = append(u.data, buf[off:])
	if len(u.idxs) >= uploadChunk {
		return u.flush()
	}
	return nil
}

func (u *uploader) flush() error {
	if len(u.idxs) == 0 {
		return nil
	}
	var err error
	if u.o.batch != nil {
		err = u.o.batch.WriteMany(u.idxs, u.data)
	} else {
		for k, i := range u.idxs {
			if err = u.o.store.Write(i, u.data[k]); err != nil {
				break
			}
		}
		if err == nil && u.o.cfg.Meter != nil {
			u.o.cfg.Meter.CountRound()
		}
	}
	u.idxs = u.idxs[:0]
	u.buf = u.buf[:0]
	u.data = u.data[:0]
	return err
}

// Levels returns the path length in buckets (tree height + 1).
func (o *PathORAM) Levels() int { return o.levels }

// PayloadSize implements ORAM.
func (o *PathORAM) PayloadSize() int { return o.cfg.PayloadSize }

// Capacity implements ORAM.
func (o *PathORAM) Capacity() int64 { return o.cfg.Capacity }

// AccessesPerOp implements ORAM: each access reads then rewrites one full
// root-to-leaf path, plus whatever the (possibly outsourced) position map
// costs.
func (o *PathORAM) AccessesPerOp() int { return 2*o.levels + o.pos.accessesPerOp() }

// ClientBytes implements ORAM: stash plus position-map footprint.
func (o *PathORAM) ClientBytes() int64 {
	return int64(len(o.stash))*int64(12+o.cfg.PayloadSize) + o.pos.clientBytes()
}

// ServerBytes implements ORAM.
func (o *PathORAM) ServerBytes() int64 {
	return o.store.Len()*int64(o.store.BlockSize()) + o.pos.serverBytes()
}

// RoundsPerOp is the worst-case number of network round trips one access
// costs over a batching transport: the path download plus the path
// write-back, plus whatever the (possibly outsourced) position map adds.
// Like AccessesPerOp it is constant for a given instance — dummy and real
// operations cost the same number of rounds. With EvictionBatch k > 1 the
// amortized cost drops to 1 + 1/k (or ~1 when the store supports
// exchanges), but the reported constant stays the per-access ceiling.
func (o *PathORAM) RoundsPerOp() int { return 2 + o.pos.roundsPerOp() }

// MaxStash reports the high-water stash occupancy, a standard Path-ORAM
// health metric (stays O(log N)·ω(1) w.h.p. for Z=4).
func (o *PathORAM) MaxStash() int { return o.maxStash }

// StashSize reports the current stash occupancy.
func (o *PathORAM) StashSize() int { return len(o.stash) }

// Read implements ORAM.
func (o *PathORAM) Read(key uint64) ([]byte, error) {
	return o.access(key, nil, false, nil)
}

// Write implements ORAM.
func (o *PathORAM) Write(key uint64, payload []byte) error {
	if len(payload) > o.cfg.PayloadSize {
		return fmt.Errorf("oram: payload %d exceeds block payload size %d", len(payload), o.cfg.PayloadSize)
	}
	buf := make([]byte, o.cfg.PayloadSize)
	copy(buf, payload)
	_, err := o.access(key, buf, false, nil)
	return err
}

// Update implements ORAM: a single path access that reads, mutates, and
// rewrites the block — indistinguishable from Read and Write.
func (o *PathORAM) Update(key uint64, fn func(payload []byte) error) ([]byte, error) {
	return o.access(key, nil, false, fn)
}

// DummyAccess implements ORAM: reads and rewrites a uniformly random path.
// Indistinguishable from a real access because every access touches a fresh
// uniformly random path and rewrites it re-encrypted.
func (o *PathORAM) DummyAccess() error {
	_, err := o.access(0, nil, true, nil)
	return err
}

func (o *PathORAM) randomLeaf() uint32 {
	return uint32(o.rand.Uint64() % uint64(o.leaves))
}

// accessPlan is the position-remap stage's output: everything the later
// fetch/apply/evict stages need to execute one access. Plans carry only the
// leaf choices (uniform random, data-independent) and the client-side
// operation, so building several plans before fetching leaks nothing beyond
// the (public) number of coalesced accesses.
type accessPlan struct {
	key      uint64
	newData  []byte
	update   func([]byte) error
	dummy    bool
	notFound bool
	leaf     uint32 // path to fetch (old position, or fresh random)
	newLeaf  uint32 // position installed in the map (real accesses)
}

// plan runs the position-remap stage: pick the new leaf, read-and-replace
// the position-map entry (or a dummy position-map operation), and record
// which path the access must fetch.
func (o *PathORAM) plan(key uint64, newData []byte, dummy bool, update func([]byte) error) (*accessPlan, error) {
	o.accesses++
	p := &accessPlan{key: key, newData: newData, update: update, dummy: dummy}
	if dummy {
		o.dummyAccesses++
		p.leaf = o.randomLeaf()
		// Keep position-map access counts uniform across real and dummy
		// operations so they remain indistinguishable even when the position
		// map itself lives in a recursive ORAM.
		if err := o.pos.dummyOp(); err != nil {
			return nil, err
		}
		return p, nil
	}
	if key >= uint64(o.cfg.Capacity) {
		return nil, fmt.Errorf("oram: key %d out of capacity %d", key, o.cfg.Capacity)
	}
	p.newLeaf = o.randomLeaf()
	old, ok, err := o.pos.getAndSet(key, p.newLeaf)
	if err != nil {
		return nil, err
	}
	if ok {
		p.leaf = old
	} else {
		p.leaf = o.randomLeaf()
		p.notFound = true
	}
	return p, nil
}

// apply runs the stash-apply stage: with the plan's path already fetched
// into the stash, perform the client-side read/write/update against the
// stash copy and remap the block to its new leaf.
func (o *PathORAM) apply(p *accessPlan) ([]byte, error) {
	if p.dummy {
		return nil, nil
	}
	entry, ok := o.stash[p.key]
	switch {
	case p.newData != nil:
		o.stash[p.key] = stashEntry{leaf: p.newLeaf, payload: p.newData}
		return nil, nil
	case !ok || p.notFound:
		return nil, fmt.Errorf("%w: key %d", ErrNotFound, p.key)
	default:
		entry.leaf = p.newLeaf
		var err error
		if p.update != nil {
			err = p.update(entry.payload)
		}
		o.stash[p.key] = entry
		result := make([]byte, len(entry.payload))
		copy(result, entry.payload)
		return result, err
	}
}

// access is the Path-ORAM protocol core, staged as plan → fetch → apply →
// evict. If newData is non-nil the access is a write; if update is non-nil
// it mutates the fetched payload in place; if dummy, no logical block is
// touched. With EvictionBatch <= 1 the eviction stage writes the path back
// immediately (the classic two-round protocol); otherwise the scheduler
// defers it.
func (o *PathORAM) access(key uint64, newData []byte, dummy bool, update func([]byte) error) ([]byte, error) {
	p, err := o.plan(key, newData, dummy, update)
	if err != nil {
		return nil, err
	}
	if err := o.sched.fetch([]uint32{p.leaf}); err != nil {
		return nil, err
	}
	result, err := o.apply(p)
	if werr := o.sched.evict(p.leaf); werr != nil && err == nil {
		err = werr
	}
	if len(o.stash) > o.maxStash {
		o.maxStash = len(o.stash)
	}
	return result, err
}

// readPath fetches the sealed buckets at the given nodes into the stash.
// With a BatchStore this is one ReadMany — the single download round of a
// Path-ORAM access; otherwise it degrades to per-bucket reads accounted as
// one simulated round.
func (o *PathORAM) readPath(path []int64) error {
	o.bucketsRead += int64(len(path))
	var sealedBuckets [][]byte
	if o.batch != nil {
		var err error
		sealedBuckets, err = o.batch.ReadMany(path)
		if err != nil {
			return err
		}
	} else {
		sealedBuckets = make([][]byte, len(path))
		for k, node := range path {
			sealed, err := o.store.Read(node)
			if err != nil {
				return err
			}
			sealedBuckets[k] = sealed
		}
		if o.cfg.Meter != nil {
			o.cfg.Meter.CountRound()
		}
	}
	for k, sealed := range sealedBuckets {
		plain, err := o.sealer.OpenTo(o.openBuf[:0], sealed)
		if err != nil {
			return fmt.Errorf("oram: store %q bucket %d: %w", o.cfg.Name, path[k], err)
		}
		o.openBuf = plain[:0]
		o.parseBucketInto(plain)
	}
	return nil
}

// pathNodes returns the 0-based store indices of the buckets on the path
// from the root to the given leaf, root first.
func (o *PathORAM) pathNodes(leaf uint32) []int64 {
	nodes := make([]int64, o.levels)
	// 1-based heap index of the leaf bucket.
	idx := o.leaves + int64(leaf)
	for i := o.levels - 1; i >= 0; i-- {
		nodes[i] = idx - 1
		idx >>= 1
	}
	return nodes
}

// sharesBucket reports whether the paths to leaves a and b pass through the
// same bucket at level lvl (root is level 0).
func (o *PathORAM) sharesBucket(a, b uint32, lvl int) bool {
	shift := uint(o.levels - 1 - lvl)
	return (int64(a) >> shift) == (int64(b) >> shift)
}

// nodeAtLevel returns the store index of the bucket at level lvl (root = 0)
// on the path to leaf.
func (o *PathORAM) nodeAtLevel(leaf uint32, lvl int) int64 {
	return ((o.leaves + int64(leaf)) >> uint(o.levels-1-lvl)) - 1
}

// putSlotHeader writes the key and leaf fields of an occupied slot.
func putSlotHeader(slot []byte, key uint64, leaf uint32) {
	binary.LittleEndian.PutUint64(slot[1:9], key)
	binary.LittleEndian.PutUint32(slot[9:13], leaf)
}

func (o *PathORAM) parseBucketInto(plain []byte) {
	for s := 0; s < o.z; s++ {
		slot := plain[s*o.slotSize : (s+1)*o.slotSize]
		if slot[0] == 0 {
			continue
		}
		key := binary.LittleEndian.Uint64(slot[1:9])
		if _, already := o.stash[key]; already {
			continue // stash copy is authoritative
		}
		payload := make([]byte, o.cfg.PayloadSize)
		copy(payload, slot[slotHeader:])
		o.stash[key] = stashEntry{
			leaf:    binary.LittleEndian.Uint32(slot[9:13]),
			payload: payload,
		}
	}
}

// bucketScratch returns a zeroed plaintext bucket, reusing the instance
// scratch.
func (o *PathORAM) bucketScratch() []byte {
	if cap(o.plainBuf) < o.bucketSize {
		o.plainBuf = make([]byte, o.bucketSize)
		return o.plainBuf
	}
	bucket := o.plainBuf[:o.bucketSize]
	clear(bucket)
	return bucket
}

func (o *PathORAM) writePath(leaf uint32, path []int64) error {
	// Fill bottom-up (deepest bucket first) so blocks sink as far as
	// allowed, then upload the whole path in one write-back round. Buckets
	// are sealed back to back into the reusable path scratch, so a
	// steady-state write-back allocates nothing.
	o.bucketsWritten += int64(o.levels)
	need := o.levels * xcrypto.SealedLen(o.bucketSize)
	if cap(o.sealBuf) < need {
		o.sealBuf = make([]byte, 0, need)
	}
	if cap(o.sealView) < o.levels {
		o.sealView = make([][]byte, o.levels)
	}
	seal := o.sealBuf[:0]
	sealedBuckets := o.sealView[:o.levels]
	for lvl := o.levels - 1; lvl >= 0; lvl-- {
		bucket := o.bucketScratch()
		filled := 0
		for key, entry := range o.stash {
			if filled == o.z {
				break
			}
			if !o.sharesBucket(entry.leaf, leaf, lvl) {
				continue
			}
			slot := bucket[filled*o.slotSize:]
			slot[0] = 1
			putSlotHeader(slot, key, entry.leaf)
			copy(slot[slotHeader:], entry.payload)
			delete(o.stash, key)
			filled++
		}
		o.levelPlaced[lvl] += int64(filled)
		off := len(seal)
		var err error
		seal, err = o.sealer.SealTo(seal, bucket)
		if err != nil {
			return err
		}
		sealedBuckets[lvl] = seal[off:]
	}
	if o.batch != nil {
		return o.batch.WriteMany(path, sealedBuckets)
	}
	for lvl := o.levels - 1; lvl >= 0; lvl-- {
		if err := o.store.Write(path[lvl], sealedBuckets[lvl]); err != nil {
			return err
		}
	}
	if o.cfg.Meter != nil {
		o.cfg.Meter.CountRound()
	}
	return nil
}

// BulkLoad places the given dense key space (payloads[i] stored under key i)
// directly into the tree, modeling the client-side preprocessing upload.
// It must be called before any access; it overwrites the whole tree.
func (o *PathORAM) BulkLoad(payloads [][]byte) error {
	if int64(len(payloads)) > o.cfg.Capacity {
		return fmt.Errorf("oram: bulk load of %d blocks exceeds capacity %d", len(payloads), o.cfg.Capacity)
	}
	type placed struct {
		key  uint64
		leaf uint32
	}
	occ := make([]int, 2*o.leaves-1)
	buckets := make([][]placed, 2*o.leaves-1)
	for i, p := range payloads {
		if len(p) > o.cfg.PayloadSize {
			return fmt.Errorf("oram: bulk payload %d is %d bytes, exceeds %d", i, len(p), o.cfg.PayloadSize)
		}
		key := uint64(i)
		leaf := o.randomLeaf()
		if err := o.pos.set(key, leaf); err != nil {
			return err
		}
		// Place in the deepest non-full bucket on the path.
		nodes := o.pathNodes(leaf)
		done := false
		for lvl := o.levels - 1; lvl >= 0; lvl-- {
			n := nodes[lvl]
			if occ[n] < o.z {
				buckets[n] = append(buckets[n], placed{key, leaf})
				occ[n]++
				done = true
				break
			}
		}
		if !done {
			buf := make([]byte, o.cfg.PayloadSize)
			copy(buf, p)
			o.stash[key] = stashEntry{leaf: leaf, payload: buf}
		}
	}
	// Serialize and upload every bucket once, in batched rounds; the
	// uploader seals each bucket into its batch buffer.
	up := newUploader(o)
	for n := int64(0); n < 2*o.leaves-1; n++ {
		bucket := o.bucketScratch()
		for s, pl := range buckets[n] {
			slot := bucket[s*o.slotSize:]
			slot[0] = 1
			binary.LittleEndian.PutUint64(slot[1:9], pl.key)
			binary.LittleEndian.PutUint32(slot[9:13], pl.leaf)
			copy(slot[slotHeader:], payloads[pl.key])
		}
		if err := up.add(n, bucket); err != nil {
			return err
		}
	}
	if err := up.flush(); err != nil {
		return err
	}
	if len(o.stash) > o.maxStash {
		o.maxStash = len(o.stash)
	}
	return nil
}
