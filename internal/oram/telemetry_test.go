package oram

import "testing"

// TestPathTelemetry verifies the client-side access/eviction counters: each
// access is one full-path read plus write-back, dummies are counted
// separately, per-level placements account for every block written back,
// and the snapshot is a copy.
func TestPathTelemetry(t *testing.T) {
	o := newTestORAM(t, 64, 32, nil, false)
	const writes, dummies = 20, 5
	for i := uint64(0); i < writes; i++ {
		if err := o.Write(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < dummies; i++ {
		if err := o.DummyAccess(); err != nil {
			t.Fatal(err)
		}
	}
	s := o.Telemetry()
	if s.Accesses != writes+dummies {
		t.Fatalf("Accesses = %d, want %d", s.Accesses, writes+dummies)
	}
	if s.DummyAccesses != dummies {
		t.Fatalf("DummyAccesses = %d, want %d", s.DummyAccesses, dummies)
	}
	perPath := int64(o.Levels())
	if s.BucketsRead != s.Accesses*perPath || s.BucketsWritten != s.Accesses*perPath {
		t.Fatalf("buckets read/written = %d/%d, want %d each",
			s.BucketsRead, s.BucketsWritten, s.Accesses*perPath)
	}
	if len(s.LevelPlaced) != o.Levels() {
		t.Fatalf("LevelPlaced levels = %d, want %d", len(s.LevelPlaced), o.Levels())
	}
	// Every real block is either in some bucket or in the stash after the
	// last eviction; placements count each write-back, so the total placed
	// across levels plus the current stash must cover all real blocks.
	var placed int64
	for _, c := range s.LevelPlaced {
		placed += c
	}
	if placed == 0 {
		t.Fatal("no eviction placements recorded")
	}
	if s.StashPeak < s.StashSize {
		t.Fatalf("StashPeak %d < StashSize %d", s.StashPeak, s.StashSize)
	}
	// Snapshot isolation: mutating the returned slice must not affect the
	// instance.
	s.LevelPlaced[0] = -1
	if o.Telemetry().LevelPlaced[0] == -1 {
		t.Fatal("Telemetry returned a live slice")
	}
}
