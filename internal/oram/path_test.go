package oram

import (
	"bytes"
	"errors"
	"fmt"
	mrand "math/rand"
	"testing"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/xcrypto"
)

func testSealer(t testing.TB) *xcrypto.Sealer {
	t.Helper()
	s, err := xcrypto.NewSealer(bytes.Repeat([]byte{7}, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestORAM(t testing.TB, capacity int64, payload int, meter *storage.Meter, recurse bool) *PathORAM {
	t.Helper()
	o, err := NewPathORAM(PathConfig{
		Name:          "test",
		Capacity:      capacity,
		PayloadSize:   payload,
		Meter:         meter,
		Sealer:        testSealer(t),
		Rand:          NewSeededSource(42),
		RecursePosMap: recurse,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestPathORAMReadWrite(t *testing.T) {
	o := newTestORAM(t, 64, 32, nil, false)
	for i := uint64(0); i < 64; i++ {
		if err := o.Write(i, []byte(fmt.Sprintf("block-%02d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Read back in a scrambled order.
	r := mrand.New(mrand.NewSource(9))
	for _, i := range r.Perm(64) {
		got, err := o.Read(uint64(i))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := fmt.Sprintf("block-%02d", i)
		if string(got[:len(want)]) != want {
			t.Fatalf("read %d = %q", i, got[:len(want)])
		}
	}
}

func TestPathORAMOverwrite(t *testing.T) {
	o := newTestORAM(t, 8, 16, nil, false)
	if err := o.Write(3, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := o.Write(3, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:6]) != "second" {
		t.Fatalf("got %q", got[:6])
	}
}

func TestPathORAMReadMissing(t *testing.T) {
	o := newTestORAM(t, 8, 16, nil, false)
	if _, err := o.Read(5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	// The failed read must still be a full-length access (uniformity).
	m := storage.NewMeter()
	o2 := newTestORAM(t, 8, 16, m, false)
	m.Reset()
	_, _ = o2.Read(5)
	if got := m.Snapshot().BlocksMoved(); got != int64(o2.AccessesPerOp()) {
		t.Fatalf("missing read moved %d blocks, want %d", got, o2.AccessesPerOp())
	}
}

func TestPathORAMKeyOutOfRange(t *testing.T) {
	o := newTestORAM(t, 8, 16, nil, false)
	if _, err := o.Read(8); err == nil {
		t.Fatal("read of out-of-capacity key succeeded")
	}
	if err := o.Write(8, []byte("x")); err == nil {
		t.Fatal("write of out-of-capacity key succeeded")
	}
	if err := o.Write(0, make([]byte, 17)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestPathORAMUniformAccessCost(t *testing.T) {
	m := storage.NewMeter()
	o := newTestORAM(t, 32, 24, m, false)
	for i := uint64(0); i < 32; i++ {
		if err := o.Write(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	per := int64(o.AccessesPerOp())
	ops := []func() error{
		func() error { _, err := o.Read(7); return err },
		func() error { return o.Write(9, []byte("z")) },
		o.DummyAccess,
		func() error { _, err := o.Read(31); return err },
		o.DummyAccess,
	}
	for i, op := range ops {
		before := m.Snapshot()
		if err := op(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		d := m.Snapshot().Sub(before)
		if d.BlocksMoved() != per {
			t.Fatalf("op %d moved %d blocks, want %d", i, d.BlocksMoved(), per)
		}
		// A batched access is exactly two round trips: the path download and
		// the path write-back.
		if d.NetworkRounds != int64(o.RoundsPerOp()) || d.NetworkRounds != 2 {
			t.Fatalf("op %d used %d rounds, want %d", i, d.NetworkRounds, o.RoundsPerOp())
		}
		// Reads and writes are balanced: a path is read then rewritten.
		if d.BlockReads != d.BlockWrites {
			t.Fatalf("op %d reads %d != writes %d", i, d.BlockReads, d.BlockWrites)
		}
	}
}

func TestPathORAMLevels(t *testing.T) {
	cases := []struct {
		capacity int64
		levels   int
	}{
		{1, 1}, {2, 2}, {3, 3}, {4, 3}, {5, 4}, {64, 7}, {100, 8},
	}
	for _, c := range cases {
		o := newTestORAM(t, c.capacity, 8, nil, false)
		if o.Levels() != c.levels {
			t.Errorf("capacity %d: levels = %d, want %d", c.capacity, o.Levels(), c.levels)
		}
	}
}

func TestPathORAMBulkLoad(t *testing.T) {
	o := newTestORAM(t, 128, 16, nil, false)
	payloads := make([][]byte, 100)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("p%03d", i))
	}
	if err := o.BulkLoad(payloads); err != nil {
		t.Fatal(err)
	}
	for i := range payloads {
		got, err := o.Read(uint64(i))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(got[:4]) != fmt.Sprintf("p%03d", i) {
			t.Fatalf("read %d = %q", i, got[:4])
		}
	}
}

func TestPathORAMBulkLoadTooMany(t *testing.T) {
	o := newTestORAM(t, 4, 16, nil, false)
	if err := o.BulkLoad(make([][]byte, 5)); err == nil {
		t.Fatal("overfull bulk load accepted")
	}
}

func TestPathORAMSingleBlock(t *testing.T) {
	o := newTestORAM(t, 1, 8, nil, false)
	if err := o.Write(0, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:4]) != "solo" {
		t.Fatalf("got %q", got[:4])
	}
}

func TestPathORAMStashBounded(t *testing.T) {
	o := newTestORAM(t, 256, 8, nil, false)
	for i := uint64(0); i < 256; i++ {
		if err := o.Write(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r := mrand.New(mrand.NewSource(3))
	for i := 0; i < 4000; i++ {
		if _, err := o.Read(uint64(r.Intn(256))); err != nil {
			t.Fatal(err)
		}
	}
	// Path-ORAM with Z=4 keeps the stash tiny w.h.p.; 120 is a very loose cap
	// that still catches eviction bugs (which grow the stash without bound).
	if o.MaxStash() > 120 {
		t.Fatalf("stash grew to %d; eviction is broken", o.MaxStash())
	}
}

func TestRecursivePathORAM(t *testing.T) {
	o := newTestORAM(t, 512, 64, nil, true)
	for i := uint64(0); i < 512; i += 7 {
		if err := o.Write(i, []byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 512; i += 7 {
		got, err := o.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := fmt.Sprintf("r%d", i)
		if string(got[:len(want)]) != want {
			t.Fatalf("read %d = %q", i, got[:len(want)])
		}
	}
	// Recursion shrinks the client map: 512 entries would be 2 KiB flat; the
	// recursive client state must be below that.
	flat := newTestORAM(t, 512, 64, nil, false)
	if o.ClientBytes() >= flat.ClientBytes()+2048 {
		t.Logf("recursive client bytes %d, flat %d", o.ClientBytes(), flat.ClientBytes())
	}
}

func TestRecursiveUniformCost(t *testing.T) {
	m := storage.NewMeter()
	o := newTestORAM(t, 256, 64, m, true)
	if err := o.Write(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	per := int64(o.AccessesPerOp())
	before := m.Snapshot()
	if _, err := o.Read(1); err != nil {
		t.Fatal(err)
	}
	if d := m.Snapshot().Sub(before); d.BlocksMoved() != per {
		t.Fatalf("read moved %d, want %d", d.BlocksMoved(), per)
	}
	before = m.Snapshot()
	if err := o.DummyAccess(); err != nil {
		t.Fatal(err)
	}
	if d := m.Snapshot().Sub(before); d.BlocksMoved() != per {
		t.Fatalf("dummy moved %d, want %d", d.BlocksMoved(), per)
	}
}

func TestPathORAMServerSeesOnlyCiphertext(t *testing.T) {
	// Write a recognizable plaintext and scan the raw server bytes for it.
	m := storage.NewMeter()
	m.SetTracing(true)
	o := newTestORAM(t, 16, 32, m, false)
	marker := []byte("SECRET-TUPLE-VALUE")
	if err := o.Write(5, marker); err != nil {
		t.Fatal(err)
	}
	// Every write in the trace carries sealed bytes; read them back raw.
	for i := int64(0); i < o.store.Len(); i++ {
		raw, err := o.store.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(raw, marker) {
			t.Fatal("plaintext visible in server storage")
		}
	}
}

func TestPathORAMRejectsBadConfig(t *testing.T) {
	s := testSealer(t)
	bad := []PathConfig{
		{Capacity: 0, PayloadSize: 8, Sealer: s},
		{Capacity: 4, PayloadSize: 0, Sealer: s},
		{Capacity: 4, PayloadSize: 8, Sealer: nil},
		{Capacity: 4, PayloadSize: 8, Sealer: s, Z: -1},
	}
	for i, cfg := range bad {
		if _, err := NewPathORAM(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestRawStore(t *testing.T) {
	m := storage.NewMeter()
	r, err := NewRawStore("raw", 16, 32, m, NewSeededSource(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(4, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := r.Read(4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:5]) != "hello" {
		t.Fatalf("got %q", got[:5])
	}
	if r.AccessesPerOp() != 1 {
		t.Fatalf("raw AccessesPerOp = %d", r.AccessesPerOp())
	}
	if r.ClientBytes() != 0 {
		t.Fatalf("raw ClientBytes = %d", r.ClientBytes())
	}
	// Raw accesses are single block transfers — the whole point of the
	// insecure baseline's speed.
	before := m.Snapshot()
	if _, err := r.Read(0); err != nil {
		t.Fatal(err)
	}
	if d := m.Snapshot().Sub(before); d.BlocksMoved() != 1 {
		t.Fatalf("raw read moved %d blocks", d.BlocksMoved())
	}
	if err := r.DummyAccess(); err != nil {
		t.Fatal(err)
	}
	if err := r.BulkLoad([][]byte{[]byte("a"), []byte("b")}); err != nil {
		t.Fatal(err)
	}
	b0, _ := r.Read(0)
	if b0[0] != 'a' {
		t.Fatal("bulk load failed")
	}
}

func TestRawStoreRejectsBadConfig(t *testing.T) {
	if _, err := NewRawStore("x", 0, 8, nil, nil); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewRawStore("x", 4, 0, nil, nil); err == nil {
		t.Error("zero payload accepted")
	}
}

func TestSeededSourceDeterministic(t *testing.T) {
	a, b := NewSeededSource(5), NewSeededSource(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("seeded source not deterministic")
		}
	}
	c := NewSeededSource(6)
	same := true
	aa := NewSeededSource(5)
	for i := 0; i < 10; i++ {
		if aa.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestCryptoSource(t *testing.T) {
	s := NewCryptoSource()
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 199 {
		t.Fatalf("crypto source produced %d distinct of 200", len(seen))
	}
}

func BenchmarkPathORAMRead(b *testing.B) {
	o := newTestORAM(b, 1024, 4096, nil, false)
	payloads := make([][]byte, 1024)
	for i := range payloads {
		payloads[i] = make([]byte, 4096)
	}
	if err := o.BulkLoad(payloads); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Read(uint64(i % 1024)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPathORAMUpdate(t *testing.T) {
	m := storage.NewMeter()
	o := newTestORAM(t, 16, 16, m, false)
	if err := o.Write(2, []byte{10}); err != nil {
		t.Fatal(err)
	}
	before := m.Snapshot()
	got, err := o.Update(2, func(p []byte) error {
		p[0]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 11 {
		t.Fatalf("update returned %d", got[0])
	}
	// An Update is a single access, indistinguishable from a Read.
	if d := m.Snapshot().Sub(before); d.BlocksMoved() != int64(o.AccessesPerOp()) || d.NetworkRounds != int64(o.RoundsPerOp()) {
		t.Fatalf("update cost %+v", d)
	}
	r, err := o.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if r[0] != 11 {
		t.Fatalf("persisted value %d", r[0])
	}
	// Update of a missing key fails.
	if _, err := o.Update(9, func([]byte) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
}

func TestRawStoreUpdate(t *testing.T) {
	r, err := NewRawStore("raw", 4, 8, nil, NewSeededSource(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(1, []byte{5}); err != nil {
		t.Fatal(err)
	}
	got, err := r.Update(1, func(p []byte) error { p[0] *= 2; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 {
		t.Fatalf("raw update returned %d", got[0])
	}
	back, _ := r.Read(1)
	if back[0] != 10 {
		t.Fatalf("raw update persisted %d", back[0])
	}
}

func TestPathORAMDetectsTampering(t *testing.T) {
	o := newTestORAM(t, 8, 16, nil, false)
	if err := o.Write(3, []byte("tuple")); err != nil {
		t.Fatal(err)
	}
	// A malicious server flips one bit in every bucket; the client must
	// refuse to proceed rather than consume forged data.
	for i := int64(0); i < o.store.Len(); i++ {
		raw, err := o.store.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x40
		if err := o.store.Write(i, raw); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := o.Read(3); err == nil {
		t.Fatal("read of tampered storage succeeded")
	}
}

// singleOpStore hides MemStore's batch methods, forcing Path-ORAM onto the
// per-bucket fallback path a non-batching backend would take.
type singleOpStore struct{ s *storage.MemStore }

func (w singleOpStore) Read(i int64) ([]byte, error)  { return w.s.Read(i) }
func (w singleOpStore) Write(i int64, d []byte) error { return w.s.Write(i, d) }
func (w singleOpStore) Len() int64                    { return w.s.Len() }
func (w singleOpStore) BlockSize() int                { return w.s.BlockSize() }

func TestPathORAMNonBatchStoreFallback(t *testing.T) {
	m := storage.NewMeter()
	o, err := NewPathORAM(PathConfig{
		Name:        "fallback",
		Capacity:    32,
		PayloadSize: 16,
		Meter:       m,
		Sealer:      testSealer(t),
		Rand:        NewSeededSource(8),
		OpenStore: func(name string, slots int64, blockSize int) (storage.Store, error) {
			return singleOpStore{storage.NewMemStore(name, slots, blockSize, m)}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		if err := o.Write(i, []byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	before := m.Snapshot()
	got, err := o.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatalf("read = %d", got[0])
	}
	// The fallback still simulates two rounds per access (read phase +
	// write-back phase) so accounting stays comparable with batch stores.
	d := m.Snapshot().Sub(before)
	if d.NetworkRounds != 2 {
		t.Fatalf("fallback rounds %d, want 2", d.NetworkRounds)
	}
	if d.BlocksMoved() != int64(o.AccessesPerOp()) {
		t.Fatalf("fallback moved %d blocks, want %d", d.BlocksMoved(), o.AccessesPerOp())
	}
}

func TestDeepRecursivePosMap(t *testing.T) {
	// A tiny cutoff forces multiple recursion levels; correctness must hold.
	o, err := NewPathORAM(PathConfig{
		Name:          "deep",
		Capacity:      256,
		PayloadSize:   16, // 4 posmap entries per block -> several levels
		Sealer:        testSealer(t),
		Rand:          NewSeededSource(77),
		RecursePosMap: true,
		RecurseCutoff: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 256; i += 5 {
		if err := o.Write(i, []byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 256; i += 5 {
		got, err := o.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("read %d = %d", i, got[0])
		}
	}
	// The client map footprint must be tiny despite 256 logical blocks.
	if o.ClientBytes() > 8192 {
		t.Fatalf("deep recursion client bytes %d", o.ClientBytes())
	}
}

func TestViewIsolation(t *testing.T) {
	base := newTestORAM(t, 32, 16, nil, false)
	v1, err := NewView(base, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := NewView(base, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.Write(3, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := v2.Write(3, []byte("two")); err != nil {
		t.Fatal(err)
	}
	a, err := v1.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := v2.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(a[:3]) != "one" || string(b[:3]) != "two" {
		t.Fatalf("views collided: %q %q", a[:3], b[:3])
	}
	// Bounds.
	if _, err := v1.Read(16); err == nil {
		t.Fatal("view read out of range accepted")
	}
	if err := v2.Write(16, []byte("x")); err == nil {
		t.Fatal("view write out of range accepted")
	}
	if _, err := NewView(base, 20, 16); err == nil {
		t.Fatal("oversized view accepted")
	}
	if _, err := NewView(base, 0, 0); err == nil {
		t.Fatal("empty view accepted")
	}
	// Update through a view.
	if _, err := v1.Update(3, func(p []byte) error { p[0] = 'X'; return nil }); err != nil {
		t.Fatal(err)
	}
	a, _ = v1.Read(3)
	if a[0] != 'X' {
		t.Fatal("view update lost")
	}
	if v1.PayloadSize() != base.PayloadSize() || v1.Capacity() != 16 {
		t.Fatal("view geometry")
	}
	if err := v1.DummyAccess(); err != nil {
		t.Fatal(err)
	}
	if err := v1.BulkLoad([][]byte{[]byte("a")}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearORAM(t *testing.T) {
	m := storage.NewMeter()
	o, err := NewLinearORAM(PathConfig{
		Name: "lin", Capacity: 8, PayloadSize: 16, Meter: m, Sealer: testSealer(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		if err := o.Write(i, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 8; i++ {
		got, err := o.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got[0] != byte(i+1) {
			t.Fatalf("read %d = %d", i, got[0])
		}
	}
	// Every access reads and rewrites all N blocks, regardless of target.
	per := int64(o.AccessesPerOp())
	for i, op := range []func() error{
		func() error { _, err := o.Read(3); return err },
		func() error { return o.Write(5, []byte{9}) },
		o.DummyAccess,
		func() error { _, err := o.Update(2, func(p []byte) error { p[0]++; return nil }); return err },
	} {
		before := m.Snapshot()
		if err := op(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if d := m.Snapshot().Sub(before).BlocksMoved(); d != per {
			t.Fatalf("op %d moved %d, want %d", i, d, per)
		}
	}
	got, _ := o.Read(2)
	if got[0] != 4 {
		t.Fatalf("update lost: %d", got[0])
	}
	if _, err := o.Read(99); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := o.BulkLoad([][]byte{{7}, {8}}); err != nil {
		t.Fatal(err)
	}
	b0, _ := o.Read(0)
	if b0[0] != 7 {
		t.Fatal("bulk load failed")
	}
	missing, err := NewLinearORAM(PathConfig{Name: "l2", Capacity: 2, PayloadSize: 8, Sealer: testSealer(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := missing.Read(0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing read: %v", err)
	}
}

func TestPosORAMBasics(t *testing.T) {
	m := storage.NewMeter()
	o, err := NewPosORAM(PathConfig{
		Name: "pos", Capacity: 16, PayloadSize: 16, Meter: m,
		Sealer: testSealer(t), Rand: NewSeededSource(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	positions, err := o.BulkLoad([][]byte{{1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	// Rotate positions through a chain of accesses.
	pos := positions[1]
	for i := 0; i < 50; i++ {
		np := o.RandomPos()
		got, err := o.Access(1, pos, np, nil)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got[0] != 2 {
			t.Fatalf("iter %d: payload %d", i, got[0])
		}
		pos = np
	}
	// Update in passing.
	np := o.RandomPos()
	if _, err := o.Access(1, pos, np, func(p []byte) error { p[0] = 42; return nil }); err != nil {
		t.Fatal(err)
	}
	pos = np
	np = o.RandomPos()
	got, err := o.Access(1, pos, np, nil)
	if err != nil || got[0] != 42 {
		t.Fatalf("update lost: %v %v", got, err)
	}
	// Insert a fresh block.
	ip := o.RandomPos()
	if err := o.Insert(7, ip, []byte{9}); err != nil {
		t.Fatal(err)
	}
	np = o.RandomPos()
	got, err = o.Access(7, ip, np, nil)
	if err != nil || got[0] != 9 {
		t.Fatalf("insert lost: %v %v", got, err)
	}
	// Accessing a never-inserted key fails.
	if _, err := o.Access(9, o.RandomPos(), o.RandomPos(), nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing access: %v", err)
	}
	if err := o.DummyAccess(); err != nil {
		t.Fatal(err)
	}
	if o.ClientBytes() < 0 || o.ServerBytes() == 0 {
		t.Fatal("accounting")
	}
}
