package oram

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/xcrypto"
)

func testKeyring(t testing.TB, epoch uint8) *xcrypto.Keyring {
	t.Helper()
	kr, err := xcrypto.NewKeyring(bytes.Repeat([]byte{9}, xcrypto.KeySize), epoch, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kr.Close() })
	return kr
}

// TestKeyringRotationTraceIdentity is the rotation security guard: rotating
// the keyring mid-run must leave the server-visible access sequence —
// store names, access kinds, block indices, transfer sizes, in order —
// byte-identical to a run that never rotates. Rotation changes only the
// ciphertext contents, which Path-ORAM freshly randomizes on every write
// anyway, so a trace divergence would mean key management leaked into the
// access pattern.
func TestKeyringRotationTraceIdentity(t *testing.T) {
	run := func(rotate bool) []storage.Access {
		meter := storage.NewMeter()
		meter.SetTracing(true)
		meter.SetTraceLimit(-1)
		kr := testKeyring(t, 0)
		o, err := NewPathORAM(PathConfig{
			Name:        "rot",
			Capacity:    64,
			PayloadSize: 32,
			Meter:       meter,
			Keyring:     kr,
			Rand:        NewSeededSource(1234),
		})
		if err != nil {
			t.Fatal(err)
		}
		payloads := make([][]byte, 64)
		for i := range payloads {
			payloads[i] = bytes.Repeat([]byte{byte(i)}, 32)
		}
		if err := o.BulkLoad(payloads); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 48; step++ {
			if rotate && step == 24 {
				if _, err := kr.Rotate(); err != nil {
					t.Fatal(err)
				}
			}
			key := uint64(step * 7 % 64)
			if step%3 == 0 {
				if err := o.Write(key, bytes.Repeat([]byte{byte(step)}, 32)); err != nil {
					t.Fatal(err)
				}
			} else {
				got, err := o.Read(key)
				if err != nil {
					t.Fatalf("step %d (rotate=%v): %v", step, rotate, err)
				}
				if len(got) != 32 {
					t.Fatalf("step %d: payload of %d bytes", step, len(got))
				}
			}
		}
		return meter.Trace()
	}
	plain := run(false)
	rotated := run(true)
	if len(plain) == 0 {
		t.Fatal("empty trace")
	}
	if len(plain) != len(rotated) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(plain), len(rotated))
	}
	for i := range plain {
		if plain[i] != rotated[i] {
			t.Fatalf("trace diverges at access %d: %+v vs %+v", i, plain[i], rotated[i])
		}
	}
}

// TestKeyringRotationLazyMigration checks blocks sealed before a rotation
// stay readable after it (lazy re-seal: Open accepts all epochs, writes use
// the current one).
func TestKeyringRotationLazyMigration(t *testing.T) {
	kr := testKeyring(t, 0)
	o, err := NewPathORAM(PathConfig{
		Name:        "mig",
		Capacity:    32,
		PayloadSize: 24,
		Keyring:     kr,
		Rand:        NewSeededSource(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, 32)
	for i := range want {
		want[i] = bytes.Repeat([]byte{byte(i + 1)}, 24)
	}
	if err := o.BulkLoad(want); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		if _, err := kr.Rotate(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i += 5 {
			got, err := o.Read(uint64(i))
			if err != nil {
				t.Fatalf("epoch %d key %d: %v", kr.Epoch(), i, err)
			}
			if !bytes.Equal(got, want[i]) {
				t.Fatalf("epoch %d key %d: wrong payload", kr.Epoch(), i)
			}
		}
	}
}

// TestAuthFailureWrappedWithContext is the diagnosability contract for
// decryption failures: a tampered bucket must surface as an error matching
// errors.Is(err, xcrypto.ErrAuthFailed) that names the store and bucket
// index, through every wrapping layer.
func TestAuthFailureWrappedWithContext(t *testing.T) {
	var backing storage.Store
	o, err := NewPathORAM(PathConfig{
		Name:        "tampered",
		Capacity:    16,
		PayloadSize: 16,
		Sealer:      testSealer(t),
		Rand:        NewSeededSource(3),
		OpenStore: func(name string, slots int64, blockSize int) (storage.Store, error) {
			backing = storage.NewMemStore(name, slots, blockSize, nil)
			return backing, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Write(5, bytes.Repeat([]byte{5}, 16)); err != nil {
		t.Fatal(err)
	}
	// Flip one ciphertext byte in every bucket so whichever path the next
	// access reads fails authentication.
	for i := int64(0); i < backing.Len(); i++ {
		blk, err := backing.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		blk[len(blk)-1] ^= 0xFF
		if err := backing.Write(i, blk); err != nil {
			t.Fatal(err)
		}
	}
	_, err = o.Read(5)
	if err == nil {
		t.Fatal("tampered bucket read succeeded")
	}
	if !errors.Is(err, xcrypto.ErrAuthFailed) {
		t.Fatalf("error %v does not match xcrypto.ErrAuthFailed", err)
	}
	if !strings.Contains(err.Error(), `"tampered"`) || !strings.Contains(err.Error(), "bucket") {
		t.Fatalf("error %q lacks store/bucket context", err)
	}
}

// TestLinearAuthFailureWrapped covers the same contract on the linear-scan
// ORAM's error path.
func TestLinearAuthFailureWrapped(t *testing.T) {
	o, err := NewLinearORAM(PathConfig{
		Name:        "lin",
		Capacity:    8,
		PayloadSize: 16,
		Sealer:      testSealer(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	blk, err := o.store.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	blk[0] ^= 0xFF
	if err := o.store.Write(3, blk); err != nil {
		t.Fatal(err)
	}
	_, err = o.Read(0)
	if !errors.Is(err, xcrypto.ErrAuthFailed) {
		t.Fatalf("error %v does not match xcrypto.ErrAuthFailed", err)
	}
	if !strings.Contains(err.Error(), `"lin"`) || !strings.Contains(err.Error(), "block 3") {
		t.Fatalf("error %q lacks store/block context", err)
	}
}

// TestKeyringRecursivePosMapSubkeys checks the recursive position map's
// child ORAM derives its own subkey through the keyring (name + ".pos"):
// construction and access work end-to-end with only a Keyring configured.
func TestKeyringRecursivePosMapSubkeys(t *testing.T) {
	kr := testKeyring(t, 2)
	o, err := NewPathORAM(PathConfig{
		Name:          "rec",
		Capacity:      256,
		PayloadSize:   16,
		Keyring:       kr,
		Rand:          NewSeededSource(99),
		RecursePosMap: true,
		RecurseCutoff: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		if err := o.Write(i, bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 32; i++ {
		got, err := o.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 16)) {
			t.Fatalf("read %d: wrong payload", i)
		}
	}
}
