package oram

import (
	"fmt"
	"sort"

	"oblivjoin/internal/xcrypto"
)

// scheduler is the staged data path in front of a PathORAM's fetch and
// eviction stages (DESIGN.md §2.9). It owns two round-trip optimizations:
//
//   - Deferred eviction: with batch k > 1, evicted paths are queued and
//     flushed k at a time in one WriteMany round, deduplicating the buckets
//     the paths share near the root so each bucket is written once per
//     flush. When the store supports exchanges the flush instead rides
//     along the next access's path download, making the write round free.
//
//   - Coalesced fetch: independent accesses planned together download the
//     union of their read paths in one ReadMany round.
//
// Security: every queued eviction path is the path of a completed fetch,
// and Path-ORAM fetch paths are uniform random and independent of the data
// (real accesses follow the fresh uniform leaf installed by the previous
// remap; dummies and misses draw a fresh uniform leaf directly). Deferring
// and deduplicating the write-backs therefore changes only *when* those
// public bucket indices are written, never *which* buckets a retrieval
// sequence touches as a function of non-public state — the flushed multiset
// per window is exactly the union of the k fetched paths. The trace stays
// reproducible from public sizes plus the recorded leaf randomness
// (tracecheck.PathORAMSim).
//
// Correctness invariant: a server bucket may hold a stale copy of a block
// whose authoritative copy sits in the stash only while the path through
// that bucket is still queued. Each flush rewrites every bucket of every
// pending path from the stash, destroying all such copies; an exchange
// applies its writes before serving reads, so a ride-along fetch can only
// re-read freshly written buckets (whose blocks then safely re-enter the
// stash on a path that is itself queued again).
//
// Failure atomicity: a flush (or exchange) seals the pending paths into a
// staging evictionSet and mutates client state — stash, pending queue, due
// flag, telemetry — only via commit, after the store has accepted the
// round. A transport error therefore leaves the instance exactly as it
// was: the blocks stay in the stash, the paths stay pending, and the flush
// can simply be retried. Buckets a failed attempt may have partially
// written stay covered by the still-pending paths, so the stash copies
// remain authoritative until a later flush rewrites them.
type scheduler struct {
	o     *PathORAM
	batch int // flush threshold k; <= 1 means evict immediately

	pending []uint32 // leaves of fetched paths awaiting write-back
	due     bool     // flush has reached the threshold and should ride the next fetch

	// sealBuf is the reusable SealTo target for a flush's eviction set; the
	// staged views into it stay valid until the store accepts the round, and
	// a failed flush simply re-seals over it on retry.
	sealBuf []byte

	// Telemetry (client-side only).
	flushes         int64
	flushedPaths    int64
	dedupSaved      int64 // bucket writes avoided by intra-flush dedup
	exchanges       int64 // flushes that rode a fetch in one exchange round
	batchFetches    int64 // coalesced multi-access fetch rounds
	batchedAccesses int64 // accesses served by those rounds
}

func newScheduler(o *PathORAM, batch int) *scheduler {
	if batch < 1 {
		batch = 1
	}
	return &scheduler{o: o, batch: batch}
}

// unionNodes returns the sorted union of the root-to-leaf paths of the
// given leaves. For a single leaf it is exactly pathNodes (root first).
func (s *scheduler) unionNodes(leaves []uint32) []int64 {
	if len(leaves) == 1 {
		return s.o.pathNodes(leaves[0])
	}
	seen := make(map[int64]bool, len(leaves)*s.o.levels)
	var nodes []int64
	for _, leaf := range leaves {
		for _, n := range s.o.pathNodes(leaf) {
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// fetch downloads the union of the given leaves' paths into the stash in
// one round. If a deferred flush is due it rides along as one exchange:
// the server applies the pending eviction writes, then serves the reads,
// all in the same round trip.
func (s *scheduler) fetch(leaves []uint32) error {
	if s.due {
		if s.o.exch != nil && len(s.pending) > 0 {
			return s.exchangeFetch(leaves)
		}
		if err := s.flushNow(); err != nil {
			return err
		}
	}
	if len(leaves) > 1 {
		s.batchFetches++
		s.batchedAccesses += int64(len(leaves))
	}
	return s.o.readPath(s.unionNodes(leaves))
}

// evict queues the fetched path for write-back. With batch <= 1 it writes
// the path back immediately (the classic protocol); otherwise the queue is
// flushed once it holds batch paths — via the next fetch's exchange when
// the store supports it, in its own WriteMany round otherwise.
func (s *scheduler) evict(leaf uint32) error {
	if s.batch <= 1 {
		return s.o.writePath(leaf, s.o.pathNodes(leaf))
	}
	return s.evictBatch([]uint32{leaf})
}

// evictBatch queues a coalesced batch's fetched paths for write-back as one
// unit and triggers at most one flush. The unit matters for correctness, not
// just rounds: the batch's paths were downloaded in a single union read, so
// writing them back as separate overlapping path writes would let a later
// write rewrite a shared bucket (the root, at minimum) that an earlier write
// in the same batch had just filled — erasing the placed blocks, which are
// no longer in the stash. A flush seals the union instead: every bucket is
// written exactly once, filled from the authoritative stash.
func (s *scheduler) evictBatch(leaves []uint32) error {
	s.pending = append(s.pending, leaves...)
	if s.batch <= 1 || len(s.pending) >= 2*s.batch {
		// batch <= 1 flushes the coalesced unit immediately (the classic
		// protocol plus fetch coalescing); past 2k the safety valve flushes
		// rather than let the stash bound drift when coalesced batches keep
		// queueing faster than fetches come in.
		return s.flushNow()
	}
	if len(s.pending) >= s.batch {
		if s.o.exch != nil {
			s.due = true
			return nil
		}
		return s.flushNow()
	}
	return nil
}

// flushNow writes every pending path back in one round. The stash and the
// pending queue are mutated only after the store accepts the write, so a
// transport failure leaves the client state exactly as it was — the flush
// can simply be retried (the still-pending paths keep every server bucket
// they cover rewritable, so nothing is lost to the partial write).
func (s *scheduler) flushNow() error {
	if len(s.pending) == 0 {
		s.due = false
		return nil
	}
	// The flush round belongs to the (public) eviction schedule, not to
	// whichever engine phase triggered it — label its wire requests so.
	defer s.o.cfg.Flight.PushPhase("oram.flush")()
	es, err := s.sealEvictionSet()
	if err != nil {
		return err
	}
	if s.o.batch != nil {
		if err := s.o.batch.WriteMany(es.idxs, es.data); err != nil {
			return err
		}
		s.commit(es)
		return nil
	}
	for k, i := range es.idxs {
		if err := s.o.store.Write(i, es.data[k]); err != nil {
			return err
		}
	}
	if s.o.cfg.Meter != nil {
		s.o.cfg.Meter.CountRound()
	}
	s.commit(es)
	return nil
}

// exchangeFetch performs a due flush and the next fetch in one round trip:
// the store applies the pending eviction writes first, then serves the
// read union. Client state (stash, pending queue, due flag, telemetry) is
// committed only after the exchange succeeds; on a transport error the
// flush stays due (and its blocks in the stash) for the next fetch.
func (s *scheduler) exchangeFetch(leaves []uint32) error {
	es, err := s.sealEvictionSet()
	if err != nil {
		return err
	}
	ridxs := s.unionNodes(leaves)
	// The combined round carries the deferred write-back; label it as the
	// flush it is (the ride-along fetch is what makes the round free).
	restore := s.o.cfg.Flight.PushPhase("oram.flush")
	sealed, err := s.o.exch.Exchange(es.idxs, es.data, ridxs)
	restore()
	if err != nil {
		return err
	}
	// Commit before parsing the read buckets back in: a bucket written by
	// this very exchange may be re-read by it, and its blocks must re-enter
	// the stash *after* the commit drained their evicted copies.
	s.commit(es)
	s.exchanges++
	if len(leaves) > 1 {
		s.batchFetches++
		s.batchedAccesses += int64(len(leaves))
	}
	s.o.bucketsRead += int64(len(ridxs))
	for k, sb := range sealed {
		plain, err := s.o.sealer.OpenTo(s.o.openBuf[:0], sb)
		if err != nil {
			return fmt.Errorf("oram: store %q bucket %d: %w", s.o.cfg.Name, ridxs[k], err)
		}
		s.o.openBuf = plain[:0]
		s.o.parseBucketInto(plain)
	}
	return nil
}

// evictionSet is a sealed flush staged for the store: the bucket writes,
// plus everything commit needs to drain the client state once the store
// has durably accepted them.
type evictionSet struct {
	idxs        []int64  // ascending store indices
	data        [][]byte // sealed buckets, aligned with idxs
	placed      []uint64 // stash keys serialized into the buckets
	levelPlaced []int64  // per-level placement counts
	paths       int      // pending paths covered by the set
	dedupSaved  int64    // bucket writes avoided by intra-flush dedup
}

// sealEvictionSet serializes the pending queue into sealed buckets for the
// union of the pending paths: shared upper-tree buckets appear once, the
// stash is drained deepest-level-first so blocks sink as far as any pending
// path allows, and the result is ordered by ascending store index. It is
// read-only on the client state — the stash entries it places, the pending
// queue, and the telemetry counters are touched by commit, after the store
// write succeeds — so a failed flush loses nothing.
func (s *scheduler) sealEvictionSet() (*evictionSet, error) {
	o := s.o
	type node struct {
		idx int64
		lvl int
	}
	seen := make(map[int64]bool, len(s.pending)*o.levels)
	var nodes []node
	for _, leaf := range s.pending {
		for lvl := 0; lvl < o.levels; lvl++ {
			idx := o.nodeAtLevel(leaf, lvl)
			if !seen[idx] {
				seen[idx] = true
				nodes = append(nodes, node{idx: idx, lvl: lvl})
			}
		}
	}
	es := &evictionSet{
		paths:       len(s.pending),
		dedupSaved:  int64(len(s.pending)*o.levels - len(nodes)),
		levelPlaced: make([]int64, o.levels),
	}
	// Fill deepest buckets first so blocks sink as far as allowed.
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].lvl != nodes[j].lvl {
			return nodes[i].lvl > nodes[j].lvl
		}
		return nodes[i].idx < nodes[j].idx
	})
	taken := make(map[uint64]bool)
	sealedByIdx := make(map[int64][]byte, len(nodes))
	if need := len(nodes) * xcrypto.SealedLen(o.bucketSize); cap(s.sealBuf) < need {
		s.sealBuf = make([]byte, 0, need)
	}
	seal := s.sealBuf[:0]
	for _, n := range nodes {
		bucket := o.bucketScratch()
		filled := 0
		for key, entry := range o.stash {
			if filled == o.z {
				break
			}
			if taken[key] || o.nodeAtLevel(entry.leaf, n.lvl) != n.idx {
				continue
			}
			slot := bucket[filled*o.slotSize:]
			slot[0] = 1
			putSlotHeader(slot, key, entry.leaf)
			copy(slot[slotHeader:], entry.payload)
			taken[key] = true
			es.placed = append(es.placed, key)
			filled++
		}
		es.levelPlaced[n.lvl] += int64(filled)
		off := len(seal)
		var serr error
		seal, serr = o.sealer.SealTo(seal, bucket)
		if serr != nil {
			return nil, serr
		}
		sealedByIdx[n.idx] = seal[off:]
	}
	s.sealBuf = seal
	// Write in ascending store-index order: for a single path this is the
	// same root-to-leaf order writePath uses.
	es.idxs = make([]int64, 0, len(nodes))
	for idx := range sealedByIdx {
		es.idxs = append(es.idxs, idx)
	}
	sort.Slice(es.idxs, func(i, j int) bool { return es.idxs[i] < es.idxs[j] })
	es.data = make([][]byte, len(es.idxs))
	for k, idx := range es.idxs {
		es.data[k] = sealedByIdx[idx]
	}
	return es, nil
}

// commit drains the client state a successfully stored eviction set covered:
// the placed blocks leave the stash (their authoritative copies now live in
// the written buckets), the pending queue empties, and the flush telemetry
// advances.
func (s *scheduler) commit(es *evictionSet) {
	o := s.o
	for _, key := range es.placed {
		delete(o.stash, key)
	}
	s.pending = s.pending[:0]
	s.due = false
	s.flushes++
	s.flushedPaths += int64(es.paths)
	s.dedupSaved += es.dedupSaved
	o.bucketsWritten += int64(len(es.idxs))
	for lvl, n := range es.levelPlaced {
		o.levelPlaced[lvl] += n
	}
}

// ReadBatch reads several keys with their path downloads coalesced into a
// single round: all accesses are planned first, the union of their paths is
// fetched in one ReadMany (or exchange), every access is applied against
// the stash, and only then are the paths queued for eviction. Each access
// still remaps its block to a fresh uniform leaf, so the server-visible
// read set is the union of len(keys) independent uniform paths — the batch
// leaks only its (public) size. The caller must ensure its batching
// *schedule* — which accesses coalesce, and at which point in the access
// sequence batched rounds appear — is itself a function of public
// quantities: a multi-path round is distinguishable from a single-path
// round, so a data-dependent switch between the two leaks the switch index
// (see core.Options.PrefetchDepth). Results align with keys; the first
// error is returned after all accesses completed their server-visible
// work.
func (o *PathORAM) ReadBatch(keys []uint64) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	plans := make([]*accessPlan, len(keys))
	leaves := make([]uint32, len(keys))
	for i, k := range keys {
		p, err := o.plan(k, nil, false, nil)
		if err != nil {
			return nil, err
		}
		plans[i] = p
		leaves[i] = p.leaf
	}
	return o.finishBatch(plans, leaves)
}

// DummyBatch performs n dummy accesses with their path downloads coalesced
// into a single round, indistinguishable from ReadBatch of n keys.
func (o *PathORAM) DummyBatch(n int) error {
	if n <= 0 {
		return nil
	}
	plans := make([]*accessPlan, n)
	leaves := make([]uint32, n)
	for i := range plans {
		p, err := o.plan(0, nil, true, nil)
		if err != nil {
			return err
		}
		plans[i] = p
		leaves[i] = p.leaf
	}
	_, err := o.finishBatch(plans, leaves)
	return err
}

// finishBatch runs the fetch, apply, and evict stages for a planned batch.
// All plans are applied before any path is queued for eviction, so an
// eviction cannot sink a block that a later plan in the same batch still
// needs out of the stash.
func (o *PathORAM) finishBatch(plans []*accessPlan, leaves []uint32) ([][]byte, error) {
	if err := o.sched.fetch(leaves); err != nil {
		return nil, err
	}
	results := make([][]byte, len(plans))
	var firstErr error
	for i, p := range plans {
		res, err := o.apply(p)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		results[i] = res
	}
	if err := o.sched.evictBatch(leaves); err != nil && firstErr == nil {
		firstErr = err
	}
	if len(o.stash) > o.maxStash {
		o.maxStash = len(o.stash)
	}
	return results, firstErr
}

// Flush writes every deferred eviction path back to the server, including
// the recursive position map's. Callers settle the instance at the end of
// a query (or before reading ServerBytes-style footprints) so no stash
// state is pinned by pending paths.
func (o *PathORAM) Flush() error {
	if err := o.sched.flushNow(); err != nil {
		return err
	}
	return o.pos.flush()
}

// PendingEvictions reports the number of fetched paths whose write-back is
// currently deferred.
func (o *PathORAM) PendingEvictions() int { return len(o.sched.pending) }

// Close settles the instance at a session boundary: every deferred
// eviction path — the tree's and the recursive position map's — is written
// back, so no stash state is pinned by pending paths when the serving
// layer checkpoints the backing store or hands the tree to another
// session. Close is idempotent (a settled instance flushes vacuously) and
// the instance remains usable afterwards; it implements io.Closer so a
// session table can hold heterogeneous per-session resources and close
// them uniformly.
func (o *PathORAM) Close() error { return o.Flush() }
