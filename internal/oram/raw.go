package oram

import (
	"fmt"

	"oblivjoin/internal/storage"
)

// RawStore implements the ORAM interface with no obliviousness and no
// encryption: every logical block sits at a fixed server location and each
// access is a single plaintext block transfer. It backs the paper's insecure
// "Raw Index(+Cache)" baseline, which "builds B-tree indices over data
// blocks and stores them in the cloud without using any encryption and ORAM
// protocol" (Section 9.1).
type RawStore struct {
	store *storage.MemStore
	size  int
	meter *storage.Meter
	rand  LeafSource
}

// NewRawStore creates a raw store with capacity blocks of payloadSize bytes.
func NewRawStore(name string, capacity int64, payloadSize int, meter *storage.Meter, rnd LeafSource) (*RawStore, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("oram: capacity must be positive, got %d", capacity)
	}
	if payloadSize <= 0 {
		return nil, fmt.Errorf("oram: payload size must be positive, got %d", payloadSize)
	}
	if rnd == nil {
		rnd = NewCryptoSource()
	}
	return &RawStore{
		store: storage.NewMemStore(name, capacity, payloadSize, meter),
		size:  payloadSize,
		meter: meter,
		rand:  rnd,
	}, nil
}

// Read implements ORAM.
func (r *RawStore) Read(key uint64) ([]byte, error) {
	data, err := r.store.Read(int64(key))
	if err != nil {
		return nil, err
	}
	if r.meter != nil {
		r.meter.CountRound()
	}
	return data, nil
}

// Write implements ORAM.
func (r *RawStore) Write(key uint64, payload []byte) error {
	if len(payload) > r.size {
		return fmt.Errorf("oram: payload %d exceeds block size %d", len(payload), r.size)
	}
	buf := make([]byte, r.size)
	copy(buf, payload)
	if r.meter != nil {
		r.meter.CountRound()
	}
	return r.store.Write(int64(key), buf)
}

// Update implements ORAM as a read followed by a write (two transfers; the
// raw baseline does not hide anything).
func (r *RawStore) Update(key uint64, fn func(payload []byte) error) ([]byte, error) {
	data, err := r.Read(key)
	if err != nil {
		return nil, err
	}
	if err := fn(data); err != nil {
		return nil, err
	}
	if err := r.Write(key, data); err != nil {
		return nil, err
	}
	return data, nil
}

// DummyAccess implements ORAM; the raw baseline never issues dummies, but
// for interface completeness it reads a random block.
func (r *RawStore) DummyAccess() error {
	_, err := r.Read(uint64(r.rand.Uint64() % uint64(r.store.Len())))
	return err
}

// PayloadSize implements ORAM.
func (r *RawStore) PayloadSize() int { return r.size }

// Capacity implements ORAM.
func (r *RawStore) Capacity() int64 { return r.store.Len() }

// AccessesPerOp implements ORAM.
func (r *RawStore) AccessesPerOp() int { return 1 }

// ClientBytes implements ORAM; the raw client keeps no state.
func (r *RawStore) ClientBytes() int64 { return 0 }

// ServerBytes implements ORAM.
func (r *RawStore) ServerBytes() int64 { return r.store.SizeBytes() }

// BulkLoad stores payloads[i] under key i, mirroring PathORAM.BulkLoad.
func (r *RawStore) BulkLoad(payloads [][]byte) error {
	for i, p := range payloads {
		buf := make([]byte, r.size)
		copy(buf, p)
		if err := r.store.Write(int64(i), buf); err != nil {
			return err
		}
	}
	return nil
}
