package oram

import (
	"encoding/binary"
	"fmt"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/xcrypto"
)

// PosORAM is a Path-ORAM variant with no position map at all: the caller
// tracks every block's current position tag and presents it on each access,
// together with the freshly drawn tag the block moves to. It is the storage
// layer of oblivious data structures (Wang et al., CCS'14) and of the
// paper's oblivious B-tree (Section 4.2): tree nodes store their children's
// position tags, so the client only remembers the root's tag and fetches
// the rest on the fly during descents.
type PosORAM struct {
	cfg        PathConfig
	sealer     *xcrypto.Sealer
	store      *storage.MemStore
	leaves     int64
	levels     int
	z          int
	slotSize   int
	bucketSize int
	stash      map[uint64]stashEntry
	maxStash   int
	rand       LeafSource
}

// NewPosORAM builds the server tree with every bucket sealed empty.
func NewPosORAM(cfg PathConfig) (*PosORAM, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("oram: capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.PayloadSize <= 0 {
		return nil, fmt.Errorf("oram: payload size must be positive, got %d", cfg.PayloadSize)
	}
	sealer, err := resolveSealer(cfg)
	if err != nil {
		return nil, err
	}
	z := cfg.Z
	if z == 0 {
		z = DefaultZ
	}
	rnd := cfg.Rand
	if rnd == nil {
		rnd = NewCryptoSource()
	}
	leaves := nextPow2(cfg.Capacity)
	levels := 1
	for l := leaves; l > 1; l >>= 1 {
		levels++
	}
	slotSize := slotHeader + cfg.PayloadSize
	o := &PosORAM{
		cfg:        cfg,
		sealer:     sealer,
		leaves:     leaves,
		levels:     levels,
		z:          z,
		slotSize:   slotSize,
		bucketSize: z * slotSize,
		stash:      make(map[uint64]stashEntry),
		rand:       rnd,
	}
	nodes := 2*leaves - 1
	o.store = storage.NewMemStore(cfg.Name, nodes, xcrypto.SealedLen(o.bucketSize), cfg.Meter)
	empty := make([]byte, o.bucketSize)
	for i := int64(0); i < nodes; i++ {
		sealed, err := sealer.Seal(empty)
		if err != nil {
			return nil, err
		}
		if err := o.store.Write(i, sealed); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// Levels returns the path length in buckets.
func (o *PosORAM) Levels() int { return o.levels }

// PayloadSize returns the usable bytes per block.
func (o *PosORAM) PayloadSize() int { return o.cfg.PayloadSize }

// Capacity returns the logical block capacity.
func (o *PosORAM) Capacity() int64 { return o.cfg.Capacity }

// AccessesPerOp returns the block operations per access (one path read +
// one path write).
func (o *PosORAM) AccessesPerOp() int { return 2 * o.levels }

// ClientBytes returns the stash footprint — there is no position map, which
// is the whole point.
func (o *PosORAM) ClientBytes() int64 {
	return int64(len(o.stash)) * int64(12+o.cfg.PayloadSize)
}

// ServerBytes returns the server footprint.
func (o *PosORAM) ServerBytes() int64 { return o.store.SizeBytes() }

// MaxStash reports the high-water stash occupancy.
func (o *PosORAM) MaxStash() int { return o.maxStash }

// RandomPos draws a fresh uniformly random position tag.
func (o *PosORAM) RandomPos() uint32 {
	return uint32(o.rand.Uint64() % uint64(o.leaves))
}

// Access fetches block key from the path of oldPos, applies update (which
// may mutate the payload in place; nil for plain reads), reassigns the
// block to newPos, and evicts along the read path. The caller owns position
// bookkeeping: oldPos must be the tag it recorded at the previous access.
func (o *PosORAM) Access(key uint64, oldPos, newPos uint32, update func([]byte) error) ([]byte, error) {
	if key >= uint64(o.cfg.Capacity) {
		return nil, fmt.Errorf("oram: key %d out of capacity %d", key, o.cfg.Capacity)
	}
	path := o.pathNodes(oldPos)
	for _, node := range path {
		sealed, err := o.store.Read(node)
		if err != nil {
			return nil, err
		}
		plain, err := o.sealer.Open(sealed)
		if err != nil {
			return nil, fmt.Errorf("oram: store %q bucket %d: %w", o.cfg.Name, node, err)
		}
		o.parseBucketInto(plain)
	}
	entry, ok := o.stash[key]
	var result []byte
	var err error
	if !ok {
		err = fmt.Errorf("%w: key %d (position %d)", ErrNotFound, key, oldPos)
	} else {
		entry.leaf = newPos
		if update != nil {
			if uerr := update(entry.payload); uerr != nil && err == nil {
				err = uerr
			}
		}
		o.stash[key] = entry
		result = make([]byte, len(entry.payload))
		copy(result, entry.payload)
	}
	if werr := o.writePath(oldPos, path); werr != nil && err == nil {
		err = werr
	}
	if len(o.stash) > o.maxStash {
		o.maxStash = len(o.stash)
	}
	if o.cfg.Meter != nil {
		o.cfg.Meter.CountRound()
	}
	return result, err
}

// Insert places a new block under key with the given position, via a dummy
// path access (so inserts are indistinguishable from reads).
func (o *PosORAM) Insert(key uint64, pos uint32, payload []byte) error {
	if key >= uint64(o.cfg.Capacity) {
		return fmt.Errorf("oram: key %d out of capacity %d", key, o.cfg.Capacity)
	}
	if len(payload) > o.cfg.PayloadSize {
		return fmt.Errorf("oram: payload %d exceeds block size %d", len(payload), o.cfg.PayloadSize)
	}
	buf := make([]byte, o.cfg.PayloadSize)
	copy(buf, payload)
	// Read and rewrite a random path while adding the block to the stash.
	p := o.RandomPos()
	path := o.pathNodes(p)
	for _, node := range path {
		sealed, err := o.store.Read(node)
		if err != nil {
			return err
		}
		plain, err := o.sealer.Open(sealed)
		if err != nil {
			return fmt.Errorf("oram: store %q bucket %d: %w", o.cfg.Name, node, err)
		}
		o.parseBucketInto(plain)
	}
	o.stash[key] = stashEntry{leaf: pos, payload: buf}
	if err := o.writePath(p, path); err != nil {
		return err
	}
	if len(o.stash) > o.maxStash {
		o.maxStash = len(o.stash)
	}
	if o.cfg.Meter != nil {
		o.cfg.Meter.CountRound()
	}
	return nil
}

// DummyAccess reads and rewrites a random path, touching nothing.
func (o *PosORAM) DummyAccess() error {
	p := o.RandomPos()
	path := o.pathNodes(p)
	for _, node := range path {
		sealed, err := o.store.Read(node)
		if err != nil {
			return err
		}
		plain, err := o.sealer.Open(sealed)
		if err != nil {
			return fmt.Errorf("oram: store %q bucket %d: %w", o.cfg.Name, node, err)
		}
		o.parseBucketInto(plain)
	}
	if err := o.writePath(p, path); err != nil {
		return err
	}
	if o.cfg.Meter != nil {
		o.cfg.Meter.CountRound()
	}
	return nil
}

// BulkLoad places payloads[i] under key i and returns each block's assigned
// position tag, for the caller to embed in its data structure.
func (o *PosORAM) BulkLoad(payloads [][]byte) ([]uint32, error) {
	positions := make([]uint32, len(payloads))
	for i := range positions {
		positions[i] = o.RandomPos()
	}
	if err := o.BulkLoadAt(payloads, positions); err != nil {
		return nil, err
	}
	return positions, nil
}

// BulkLoadAt places payloads[i] under key i at the caller-chosen position
// positions[i]. Data structures whose nodes embed child positions draw all
// positions first, serialize parents with them, and load everything at
// once.
func (o *PosORAM) BulkLoadAt(payloads [][]byte, positions []uint32) error {
	if int64(len(payloads)) > o.cfg.Capacity {
		return fmt.Errorf("oram: bulk load of %d exceeds capacity %d", len(payloads), o.cfg.Capacity)
	}
	if len(positions) != len(payloads) {
		return fmt.Errorf("oram: %d payloads but %d positions", len(payloads), len(positions))
	}
	occ := make([]int, 2*o.leaves-1)
	type placed struct {
		key  uint64
		leaf uint32
	}
	buckets := make([][]placed, 2*o.leaves-1)
	for i, p := range payloads {
		if len(p) > o.cfg.PayloadSize {
			return fmt.Errorf("oram: bulk payload %d is %d bytes, exceeds %d", i, len(p), o.cfg.PayloadSize)
		}
		pos := positions[i]
		if pos >= uint32(o.leaves) {
			return fmt.Errorf("oram: position %d out of %d leaves", pos, o.leaves)
		}
		nodes := o.pathNodes(pos)
		done := false
		for lvl := o.levels - 1; lvl >= 0; lvl-- {
			n := nodes[lvl]
			if occ[n] < o.z {
				buckets[n] = append(buckets[n], placed{uint64(i), pos})
				occ[n]++
				done = true
				break
			}
		}
		if !done {
			buf := make([]byte, o.cfg.PayloadSize)
			copy(buf, p)
			o.stash[uint64(i)] = stashEntry{leaf: pos, payload: buf}
		}
	}
	for n := int64(0); n < 2*o.leaves-1; n++ {
		bucket := make([]byte, o.bucketSize)
		for s, pl := range buckets[n] {
			slot := bucket[s*o.slotSize:]
			slot[0] = 1
			binary.LittleEndian.PutUint64(slot[1:9], pl.key)
			binary.LittleEndian.PutUint32(slot[9:13], pl.leaf)
			copy(slot[slotHeader:], payloads[pl.key])
		}
		sealed, err := o.sealer.Seal(bucket)
		if err != nil {
			return err
		}
		if err := o.store.Write(n, sealed); err != nil {
			return err
		}
	}
	if len(o.stash) > o.maxStash {
		o.maxStash = len(o.stash)
	}
	return nil
}

func (o *PosORAM) pathNodes(leaf uint32) []int64 {
	nodes := make([]int64, o.levels)
	idx := o.leaves + int64(leaf)
	for i := o.levels - 1; i >= 0; i-- {
		nodes[i] = idx - 1
		idx >>= 1
	}
	return nodes
}

func (o *PosORAM) sharesBucket(a, b uint32, lvl int) bool {
	shift := uint(o.levels - 1 - lvl)
	return (int64(a) >> shift) == (int64(b) >> shift)
}

func (o *PosORAM) parseBucketInto(plain []byte) {
	for s := 0; s < o.z; s++ {
		slot := plain[s*o.slotSize : (s+1)*o.slotSize]
		if slot[0] == 0 {
			continue
		}
		key := binary.LittleEndian.Uint64(slot[1:9])
		if _, already := o.stash[key]; already {
			continue
		}
		payload := make([]byte, o.cfg.PayloadSize)
		copy(payload, slot[slotHeader:])
		o.stash[key] = stashEntry{
			leaf:    binary.LittleEndian.Uint32(slot[9:13]),
			payload: payload,
		}
	}
}

func (o *PosORAM) writePath(leaf uint32, path []int64) error {
	for lvl := o.levels - 1; lvl >= 0; lvl-- {
		bucket := make([]byte, o.bucketSize)
		filled := 0
		for key, entry := range o.stash {
			if filled == o.z {
				break
			}
			if !o.sharesBucket(entry.leaf, leaf, lvl) {
				continue
			}
			slot := bucket[filled*o.slotSize:]
			slot[0] = 1
			binary.LittleEndian.PutUint64(slot[1:9], key)
			binary.LittleEndian.PutUint32(slot[9:13], entry.leaf)
			copy(slot[slotHeader:], entry.payload)
			delete(o.stash, key)
			filled++
		}
		sealed, err := o.sealer.Seal(bucket)
		if err != nil {
			return err
		}
		if err := o.store.Write(path[lvl], sealed); err != nil {
			return err
		}
	}
	return nil
}
