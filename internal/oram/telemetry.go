package oram

// PathStats is a client-side telemetry snapshot of a Path-ORAM instance:
// aggregate access and eviction counters plus per-level placement figures.
// The counters live entirely on the client and are never sent to the
// server, so recording them changes nothing about the server-visible trace.
// Access counts are functions of public quantities (every access touches
// one full path); per-level placement and stash occupancy reflect the
// client's secret randomness and must stay client-side — they are exposed
// here for health monitoring, not for export to an untrusted party.
type PathStats struct {
	// Accesses counts completed path accesses (one read-path + write-path
	// pair each), including dummy accesses.
	Accesses int64
	// DummyAccesses counts the subset of Accesses that were dummies.
	DummyAccesses int64
	// BucketsRead and BucketsWritten count bucket transfers; each access
	// moves Levels() buckets in each direction.
	BucketsRead    int64
	BucketsWritten int64
	// LevelPlaced[l] counts blocks the eviction pass placed into the bucket
	// at level l (root = 0) across all accesses — the standard view of how
	// deep eviction manages to sink blocks.
	LevelPlaced []int64
	// StashPeak is the high-water stash occupancy; StashSize the current.
	StashPeak int
	StashSize int
	// Flushes counts eviction flush rounds performed by the scheduler;
	// FlushedPaths the paths they wrote back; DedupedBuckets the bucket
	// writes saved by deduplicating shared upper-tree buckets within a
	// flush; Exchanges the flushes that rode a path download in a single
	// combined round. All zero when EvictionBatch <= 1.
	Flushes        int64
	FlushedPaths   int64
	DedupedBuckets int64
	Exchanges      int64
	// BatchFetches counts coalesced multi-access download rounds;
	// BatchedAccesses the accesses they served. PendingEvictions is the
	// current depth of the deferred-eviction queue.
	BatchFetches     int64
	BatchedAccesses  int64
	PendingEvictions int
}

// Telemetry returns a snapshot of the instance's access/eviction counters.
// The LevelPlaced slice is a copy; callers may retain it.
func (o *PathORAM) Telemetry() PathStats {
	s := PathStats{
		Accesses:         o.accesses,
		DummyAccesses:    o.dummyAccesses,
		BucketsRead:      o.bucketsRead,
		BucketsWritten:   o.bucketsWritten,
		StashPeak:        o.maxStash,
		StashSize:        len(o.stash),
		Flushes:          o.sched.flushes,
		FlushedPaths:     o.sched.flushedPaths,
		DedupedBuckets:   o.sched.dedupSaved,
		Exchanges:        o.sched.exchanges,
		BatchFetches:     o.sched.batchFetches,
		BatchedAccesses:  o.sched.batchedAccesses,
		PendingEvictions: len(o.sched.pending),
	}
	s.LevelPlaced = make([]int64, len(o.levelPlaced))
	copy(s.LevelPlaced, o.levelPlaced)
	return s
}
