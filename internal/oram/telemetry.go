package oram

// PathStats is a client-side telemetry snapshot of a Path-ORAM instance:
// aggregate access and eviction counters plus per-level placement figures.
// The counters live entirely on the client and are never sent to the
// server, so recording them changes nothing about the server-visible trace.
// Access counts are functions of public quantities (every access touches
// one full path); per-level placement and stash occupancy reflect the
// client's secret randomness and must stay client-side — they are exposed
// here for health monitoring, not for export to an untrusted party.
type PathStats struct {
	// Accesses counts completed path accesses (one read-path + write-path
	// pair each), including dummy accesses.
	Accesses int64
	// DummyAccesses counts the subset of Accesses that were dummies.
	DummyAccesses int64
	// BucketsRead and BucketsWritten count bucket transfers; each access
	// moves Levels() buckets in each direction.
	BucketsRead    int64
	BucketsWritten int64
	// LevelPlaced[l] counts blocks the eviction pass placed into the bucket
	// at level l (root = 0) across all accesses — the standard view of how
	// deep eviction manages to sink blocks.
	LevelPlaced []int64
	// StashPeak is the high-water stash occupancy; StashSize the current.
	StashPeak int
	StashSize int
}

// Telemetry returns a snapshot of the instance's access/eviction counters.
// The LevelPlaced slice is a copy; callers may retain it.
func (o *PathORAM) Telemetry() PathStats {
	s := PathStats{
		Accesses:       o.accesses,
		DummyAccesses:  o.dummyAccesses,
		BucketsRead:    o.bucketsRead,
		BucketsWritten: o.bucketsWritten,
		StashPeak:      o.maxStash,
		StashSize:      len(o.stash),
	}
	s.LevelPlaced = make([]int64, len(o.levelPlaced))
	copy(s.LevelPlaced, o.levelPlaced)
	return s
}
