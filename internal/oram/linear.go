package oram

import (
	"fmt"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/xcrypto"
)

// LinearORAM is the trivial ORAM: every access reads and rewrites every
// block. It is trivially oblivious (the pattern is the full scan no matter
// what is accessed), needs no client state beyond the key, and costs O(N)
// per access — the classic baseline the ORAM literature improves on.
//
// The paper treats the ORAM scheme as a blackbox behind the join
// algorithms; LinearORAM exists to demonstrate exactly that: every join in
// this repository runs unchanged on top of it (see the scheme ablation),
// just slower.
type LinearORAM struct {
	store   *storage.MemStore
	name    string
	sealer  *xcrypto.Sealer
	meter   *storage.Meter
	payload int
	n       int64

	// Scratch reused by the scan loop (one access re-seals every block, so
	// per-block allocations dominate without it).
	openBuf []byte
	sealBuf []byte
}

// blocks are stored as valid(1) || payload, sealed.
func linearSlot(payload int) int { return 1 + payload }

// NewLinearORAM builds an all-encrypted flat array of capacity blocks.
func NewLinearORAM(cfg PathConfig) (*LinearORAM, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("oram: capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.PayloadSize <= 0 {
		return nil, fmt.Errorf("oram: payload size must be positive, got %d", cfg.PayloadSize)
	}
	sealer, err := resolveSealer(cfg)
	if err != nil {
		return nil, err
	}
	o := &LinearORAM{
		name:    cfg.Name,
		sealer:  sealer,
		meter:   cfg.Meter,
		payload: cfg.PayloadSize,
		n:       cfg.Capacity,
	}
	o.store = storage.NewMemStore(cfg.Name, cfg.Capacity, xcrypto.SealedLen(linearSlot(cfg.PayloadSize)), cfg.Meter)
	empty := make([]byte, linearSlot(cfg.PayloadSize))
	for i := int64(0); i < cfg.Capacity; i++ {
		sealed, err := sealer.SealTo(o.sealBuf[:0], empty)
		if err != nil {
			return nil, err
		}
		o.sealBuf = sealed[:0]
		if err := o.store.Write(i, sealed); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// access scans every block, re-encrypting each; the target block (if any)
// is extracted/updated in passing.
func (o *LinearORAM) access(key uint64, newData []byte, update func([]byte) error, dummy bool) ([]byte, error) {
	if !dummy && key >= uint64(o.n) {
		return nil, fmt.Errorf("oram: key %d out of capacity %d", key, o.n)
	}
	var result []byte
	var found bool
	var err error
	for i := int64(0); i < o.n; i++ {
		sealed, rerr := o.store.Read(i)
		if rerr != nil {
			return nil, rerr
		}
		plain, oerr := o.sealer.OpenTo(o.openBuf[:0], sealed)
		if oerr != nil {
			return nil, fmt.Errorf("oram: store %q block %d: %w", o.name, i, oerr)
		}
		o.openBuf = plain[:0]
		if !dummy && uint64(i) == key {
			found = plain[0] == 1
			switch {
			case newData != nil:
				plain[0] = 1
				copy(plain[1:], newData)
				for j := 1 + len(newData); j < len(plain); j++ {
					plain[j] = 0
				}
			case found && update != nil:
				if uerr := update(plain[1:]); uerr != nil && err == nil {
					err = uerr
				}
				fallthrough
			case found:
				result = append([]byte(nil), plain[1:]...)
			}
		}
		resealed, serr := o.sealer.SealTo(o.sealBuf[:0], plain)
		if serr != nil {
			return nil, serr
		}
		o.sealBuf = resealed[:0]
		if werr := o.store.Write(i, resealed); werr != nil {
			return nil, werr
		}
	}
	if !dummy && newData == nil && !found && err == nil {
		err = fmt.Errorf("%w: key %d", ErrNotFound, key)
	}
	if o.meter != nil {
		o.meter.CountRound()
	}
	return result, err
}

// Read implements ORAM.
func (o *LinearORAM) Read(key uint64) ([]byte, error) { return o.access(key, nil, nil, false) }

// Write implements ORAM.
func (o *LinearORAM) Write(key uint64, payload []byte) error {
	if len(payload) > o.payload {
		return fmt.Errorf("oram: payload %d exceeds block size %d", len(payload), o.payload)
	}
	_, err := o.access(key, payload, nil, false)
	return err
}

// Update implements ORAM.
func (o *LinearORAM) Update(key uint64, fn func([]byte) error) ([]byte, error) {
	return o.access(key, nil, fn, false)
}

// DummyAccess implements ORAM: the scan happens regardless.
func (o *LinearORAM) DummyAccess() error {
	_, err := o.access(0, nil, nil, true)
	return err
}

// PayloadSize implements ORAM.
func (o *LinearORAM) PayloadSize() int { return o.payload }

// Capacity implements ORAM.
func (o *LinearORAM) Capacity() int64 { return o.n }

// AccessesPerOp implements ORAM: the full scan, read and rewritten.
func (o *LinearORAM) AccessesPerOp() int { return int(2 * o.n) }

// ClientBytes implements ORAM: none.
func (o *LinearORAM) ClientBytes() int64 { return 0 }

// ServerBytes implements ORAM.
func (o *LinearORAM) ServerBytes() int64 { return o.store.SizeBytes() }

// BulkLoad stores payloads[i] under key i with one sealed write each.
func (o *LinearORAM) BulkLoad(payloads [][]byte) error {
	if int64(len(payloads)) > o.n {
		return fmt.Errorf("oram: bulk load of %d exceeds capacity %d", len(payloads), o.n)
	}
	for i, p := range payloads {
		if len(p) > o.payload {
			return fmt.Errorf("oram: bulk payload %d is %d bytes, exceeds %d", i, len(p), o.payload)
		}
		plain := make([]byte, linearSlot(o.payload))
		plain[0] = 1
		copy(plain[1:], p)
		sealed, err := o.sealer.Seal(plain)
		if err != nil {
			return err
		}
		if err := o.store.Write(int64(i), sealed); err != nil {
			return err
		}
	}
	return nil
}
