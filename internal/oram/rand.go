package oram

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
)

// cryptoSource draws path randomness from crypto/rand, buffering to avoid a
// syscall per leaf pick.
type cryptoSource struct {
	buf [512]byte
	off int
}

// NewCryptoSource returns a LeafSource backed by crypto/rand.
func NewCryptoSource() LeafSource {
	return &cryptoSource{off: len(cryptoSource{}.buf)}
}

func (c *cryptoSource) Uint64() uint64 {
	if c.off+8 > len(c.buf) {
		if _, err := rand.Read(c.buf[:]); err != nil {
			panic(fmt.Sprintf("oram: crypto/rand failed: %v", err))
		}
		c.off = 0
	}
	v := binary.LittleEndian.Uint64(c.buf[c.off:])
	c.off += 8
	return v
}

// seqSource is a deterministic LeafSource for tests: a simple SplitMix64
// generator seeded explicitly, so ORAM layouts are reproducible.
type seqSource struct{ state uint64 }

// NewSeededSource returns a deterministic LeafSource for tests and
// reproducible benchmarks.
func NewSeededSource(seed uint64) LeafSource { return &seqSource{state: seed} }

func (s *seqSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
