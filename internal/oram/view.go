package oram

import "fmt"

// View exposes a contiguous key range [offset, offset+capacity) of a base
// ORAM as a standalone ORAM with keys starting at zero. The paper's OneORAM
// setting (Section 7) stores every table's data and index blocks in one
// Path-ORAM; views let the table and index layers address their slices of it
// unchanged.
type View struct {
	base     ORAM
	offset   uint64
	capacity int64
}

// NewView carves [offset, offset+capacity) out of base.
func NewView(base ORAM, offset uint64, capacity int64) (*View, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("oram: view capacity must be positive, got %d", capacity)
	}
	if int64(offset)+capacity > base.Capacity() {
		return nil, fmt.Errorf("oram: view [%d,%d) exceeds base capacity %d",
			offset, int64(offset)+capacity, base.Capacity())
	}
	return &View{base: base, offset: offset, capacity: capacity}, nil
}

func (v *View) check(key uint64) error {
	if key >= uint64(v.capacity) {
		return fmt.Errorf("oram: view key %d out of capacity %d", key, v.capacity)
	}
	return nil
}

// Read implements ORAM.
func (v *View) Read(key uint64) ([]byte, error) {
	if err := v.check(key); err != nil {
		return nil, err
	}
	return v.base.Read(v.offset + key)
}

// Write implements ORAM.
func (v *View) Write(key uint64, payload []byte) error {
	if err := v.check(key); err != nil {
		return err
	}
	return v.base.Write(v.offset+key, payload)
}

// Update implements ORAM.
func (v *View) Update(key uint64, fn func(payload []byte) error) ([]byte, error) {
	if err := v.check(key); err != nil {
		return nil, err
	}
	return v.base.Update(v.offset+key, fn)
}

// DummyAccess implements ORAM; dummies on the shared ORAM are
// indistinguishable no matter which view issues them.
func (v *View) DummyAccess() error { return v.base.DummyAccess() }

// PayloadSize implements ORAM.
func (v *View) PayloadSize() int { return v.base.PayloadSize() }

// Capacity implements ORAM.
func (v *View) Capacity() int64 { return v.capacity }

// AccessesPerOp implements ORAM.
func (v *View) AccessesPerOp() int { return v.base.AccessesPerOp() }

// ClientBytes implements ORAM; the base owner accounts for client state, a
// view adds none.
func (v *View) ClientBytes() int64 { return 0 }

// ServerBytes implements ORAM; pro-rated share of the base footprint.
func (v *View) ServerBytes() int64 {
	return v.base.ServerBytes() * v.capacity / v.base.Capacity()
}

// ReadBatch implements BatchORAM by offsetting the keys and delegating to
// the base's batched data path (or its sequential fallback).
func (v *View) ReadBatch(keys []uint64) ([][]byte, error) {
	shifted := make([]uint64, len(keys))
	for i, k := range keys {
		if err := v.check(k); err != nil {
			return nil, err
		}
		shifted[i] = v.offset + k
	}
	return ReadBatch(v.base, shifted)
}

// DummyBatch implements BatchORAM; dummies on the shared ORAM are
// indistinguishable no matter which view issues them.
func (v *View) DummyBatch(n int) error { return DummyBatch(v.base, n) }

// Flush implements BatchORAM by settling the base ORAM.
func (v *View) Flush() error { return Flush(v.base) }

// BulkLoad stores payloads[i] under view key i via individual writes. Prefer
// loading through the base ORAM's BulkLoad when building whole databases;
// this path exists for small fixtures.
func (v *View) BulkLoad(payloads [][]byte) error {
	if int64(len(payloads)) > v.capacity {
		return fmt.Errorf("oram: bulk load of %d exceeds view capacity %d", len(payloads), v.capacity)
	}
	for i, p := range payloads {
		if err := v.Write(uint64(i), p); err != nil {
			return err
		}
	}
	return nil
}
