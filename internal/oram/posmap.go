package oram

import (
	"encoding/binary"
	"fmt"
)

// posMap abstracts where the Path-ORAM position map lives. The paper's basic
// protocol keeps it client-side (O(N/B) client memory, Table 1 footnote d);
// the recursive variant pushes it into smaller Path-ORAMs until the top map
// fits in client memory, as described in Section 4.1.
type posMap interface {
	// getAndSet returns the current leaf for key (ok=false if never set) and
	// atomically installs newLeaf. One call per parent-ORAM access keeps the
	// outsourced variant at a fixed read-modify-write cost.
	getAndSet(key uint64, newLeaf uint32) (old uint32, ok bool, err error)
	// set installs a mapping without reading it (bulk-load path).
	set(key uint64, leaf uint32) error
	// dummyOp performs accesses indistinguishable from getAndSet without
	// touching any entry; a no-op for the client-side map.
	dummyOp() error
	// accessesPerOp is the number of server block operations one getAndSet
	// (or dummyOp) performs.
	accessesPerOp() int
	// roundsPerOp is the number of network round trips one getAndSet (or
	// dummyOp) costs over a batching transport.
	roundsPerOp() int
	// flush settles any deferred eviction state held by an outsourced map;
	// a no-op for the client-side map.
	flush() error
	clientBytes() int64
	serverBytes() int64
}

// flatPosMap is the client-side dense position map.
type flatPosMap struct {
	leaves []uint32
}

func newFlatPosMap(capacity int64) *flatPosMap {
	m := &flatPosMap{leaves: make([]uint32, capacity)}
	for i := range m.leaves {
		m.leaves[i] = noLeaf
	}
	return m
}

func (m *flatPosMap) getAndSet(key uint64, newLeaf uint32) (uint32, bool, error) {
	old := m.leaves[key]
	m.leaves[key] = newLeaf
	return old, old != noLeaf, nil
}

func (m *flatPosMap) set(key uint64, leaf uint32) error {
	m.leaves[key] = leaf
	return nil
}

func (m *flatPosMap) dummyOp() error     { return nil }
func (m *flatPosMap) accessesPerOp() int { return 0 }
func (m *flatPosMap) roundsPerOp() int   { return 0 }
func (m *flatPosMap) flush() error       { return nil }
func (m *flatPosMap) clientBytes() int64 { return int64(len(m.leaves)) * 4 }
func (m *flatPosMap) serverBytes() int64 { return 0 }

// oramPosMap stores position-map entries packed into blocks of a child
// Path-ORAM. The child recursively outsources its own (numBlocks-entry)
// position map until it fits under the cutoff, yielding the O(log N) client
// memory of recursive Path-ORAM.
type oramPosMap struct {
	child    *PathORAM
	perBlock int64
	buf      []byte // scratch payload, child.PayloadSize bytes
}

func newORAMPosMap(parent PathConfig, capacity, cutoff int64, rnd LeafSource) (*oramPosMap, error) {
	perBlock := int64(parent.PayloadSize / 4)
	if perBlock < 1 {
		return nil, fmt.Errorf("oram: payload size %d too small for position-map entries", parent.PayloadSize)
	}
	numBlocks := (capacity + perBlock - 1) / perBlock
	childCfg := PathConfig{
		Name:          parent.Name + ".pos",
		Capacity:      numBlocks,
		PayloadSize:   parent.PayloadSize,
		Z:             parent.Z,
		Meter:         parent.Meter,
		Sealer:        parent.Sealer,
		Keyring:       parent.Keyring,
		Rand:          rnd,
		RecursePosMap: numBlocks > cutoff,
		RecurseCutoff: cutoff,
		OpenStore:     parent.OpenStore,
		EvictionBatch: parent.EvictionBatch,
		Flight:        parent.Flight,
	}
	child, err := NewPathORAM(childCfg)
	if err != nil {
		return nil, err
	}
	// Initialize every map block to all-noLeaf so reads never miss.
	payloads := make([][]byte, numBlocks)
	full := make([]byte, parent.PayloadSize)
	for i := 0; i+4 <= len(full); i += 4 {
		binary.LittleEndian.PutUint32(full[i:], noLeaf)
	}
	for i := range payloads {
		payloads[i] = full
	}
	if err := child.BulkLoad(payloads); err != nil {
		return nil, err
	}
	return &oramPosMap{child: child, perBlock: perBlock, buf: make([]byte, parent.PayloadSize)}, nil
}

func (m *oramPosMap) getAndSet(key uint64, newLeaf uint32) (uint32, bool, error) {
	blk := key / uint64(m.perBlock)
	off := 4 * (key % uint64(m.perBlock))
	data, err := m.child.Read(blk)
	if err != nil {
		return 0, false, err
	}
	old := binary.LittleEndian.Uint32(data[off:])
	binary.LittleEndian.PutUint32(data[off:], newLeaf)
	if err := m.child.Write(blk, data); err != nil {
		return 0, false, err
	}
	return old, old != noLeaf, nil
}

func (m *oramPosMap) set(key uint64, leaf uint32) error {
	_, _, err := m.getAndSet(key, leaf)
	return err
}

func (m *oramPosMap) dummyOp() error {
	if err := m.child.DummyAccess(); err != nil {
		return err
	}
	return m.child.DummyAccess()
}

func (m *oramPosMap) accessesPerOp() int { return 2 * m.child.AccessesPerOp() }
func (m *oramPosMap) roundsPerOp() int   { return 2 * m.child.RoundsPerOp() }
func (m *oramPosMap) flush() error       { return m.child.Flush() }
func (m *oramPosMap) clientBytes() int64 { return m.child.ClientBytes() }
func (m *oramPosMap) serverBytes() int64 { return m.child.ServerBytes() }
