// Package oram implements the Oblivious RAM constructions used by the
// oblivious join engine: Path-ORAM (Stefanov et al., CCS'13), a recursive
// Path-ORAM that outsources the position map, and a raw (non-oblivious)
// store used by the paper's insecure "Raw Index" baseline.
//
// The paper treats ORAM as a black box with read/write of fixed-size blocks
// (Section 1: "ORAM scheme can be viewed as a blackbox, providing read and
// write interface, while hiding access patterns"), and so does every join
// algorithm in this repository: they program against the ORAM interface
// below and can be instantiated with any implementation.
package oram

import (
	"errors"
)

// ErrNotFound is returned when reading a key that was never written.
var ErrNotFound = errors.New("oram: block not found")

// ORAM is the client-side handle to an oblivious block store. Keys are
// logical block IDs chosen by the caller; the implementation hides which key
// an access touches (and for oblivious implementations, whether an access is
// a read or a write).
type ORAM interface {
	// Read returns the payload stored under key.
	Read(key uint64) ([]byte, error)
	// Write stores payload (at most PayloadSize bytes) under key.
	Write(key uint64, payload []byte) error
	// Update reads the block under key, applies fn to the payload in place,
	// and stores the result — in a single access for oblivious
	// implementations, so a mutating operation (e.g. disabling a B-tree
	// entry) is indistinguishable from a read. Returns a copy of the updated
	// payload.
	Update(key uint64, fn func(payload []byte) error) ([]byte, error)
	// DummyAccess performs an access indistinguishable from Read/Write that
	// touches no logical block. Oblivious join algorithms issue these to
	// equalize per-step access counts across tables.
	DummyAccess() error
	// PayloadSize is the usable bytes per logical block.
	PayloadSize() int
	// Capacity is the number of logical blocks the store can hold.
	Capacity() int64
	// AccessesPerOp is the number of server block operations a single
	// Read/Write/DummyAccess performs; constant for a given instance, which
	// is the uniformity property the security proofs rely on.
	AccessesPerOp() int
	// ClientBytes is the current client-side memory footprint (stash,
	// position map, metadata). Zero for non-oblivious stores.
	ClientBytes() int64
	// ServerBytes is the server-side storage footprint.
	ServerBytes() int64
}

// LeafSource yields randomness for path selection. Production code uses a
// CSPRNG; tests may inject a deterministic source.
type LeafSource interface {
	// Uint64 returns a uniformly random value.
	Uint64() uint64
}

// BatchORAM is implemented by ORAMs whose staged data path can coalesce
// the server rounds of independent accesses (PathORAM's scheduler, and
// Views over it). Callers must treat the batch size as public: batching is
// only safe where the grouping is a function of public quantities, e.g.
// the all-dummy padding streams of the join algorithms.
type BatchORAM interface {
	ORAM
	// ReadBatch reads several keys with their path downloads coalesced
	// into one round. Results align with keys.
	ReadBatch(keys []uint64) ([][]byte, error)
	// DummyBatch performs n dummy accesses in one coalesced round,
	// indistinguishable from ReadBatch of n keys.
	DummyBatch(n int) error
	// Flush settles any deferred eviction state.
	Flush() error
}

// ReadBatch reads keys through o's batched data path when it has one,
// falling back to sequential reads otherwise.
func ReadBatch(o ORAM, keys []uint64) ([][]byte, error) {
	if b, ok := o.(BatchORAM); ok {
		return b.ReadBatch(keys)
	}
	results := make([][]byte, len(keys))
	for i, k := range keys {
		data, err := o.Read(k)
		if err != nil {
			return nil, err
		}
		results[i] = data
	}
	return results, nil
}

// DummyBatch performs n dummy accesses through o's batched data path when
// it has one, falling back to sequential dummies otherwise.
func DummyBatch(o ORAM, n int) error {
	if b, ok := o.(BatchORAM); ok {
		return b.DummyBatch(n)
	}
	for i := 0; i < n; i++ {
		if err := o.DummyAccess(); err != nil {
			return err
		}
	}
	return nil
}

// Flush settles o's deferred eviction state when it has any; a no-op for
// ORAMs without a staged data path.
func Flush(o ORAM) error {
	if b, ok := o.(BatchORAM); ok {
		return b.Flush()
	}
	return nil
}
