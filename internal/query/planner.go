package query

import (
	"fmt"
	"math"

	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
)

// OpKind identifies a physical join operator.
type OpKind int

// Physical operators the planner chooses among.
const (
	OpSMJ OpKind = iota
	OpINLJ
	OpBand
	OpMultiway
)

func (k OpKind) String() string {
	switch k {
	case OpSMJ:
		return "smj"
	case OpINLJ:
		return "inlj"
	case OpBand:
		return "band"
	case OpMultiway:
		return "multiway"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Candidate is one enumerated physical plan, viable or not.
type Candidate struct {
	// Desc is a stable human-readable label ("inlj(outer=a, inner=b.k)").
	Desc string
	// Kind is the operator.
	Kind OpKind
	// Outer/OuterAttr and Inner/InnerAttr name the binary roles (SMJ keeps
	// the spec's orientation; INLJ/band record the chosen orientation).
	Outer, OuterAttr, Inner, InnerAttr string
	// BandOp is the comparison in the candidate's orientation (band only).
	BandOp core.BandOp
	// Order is the table order with the chosen root first (multiway only).
	Order []string
	// Viable reports whether the candidate can execute; Reason says why not.
	Viable bool
	Reason string
	// Cost is the predicted input-side access cost (viable candidates only).
	Cost Cost
}

// InputPlan records the pushdown decision for one input table.
type InputPlan struct {
	// Table is the input's name.
	Table string
	// Filters are the selection predicates pushed below the join (nil for
	// an unfiltered base table).
	Filters []string
	// BaseRows is the stored table's row count.
	BaseRows int64
	// Rows is the (padded) row count the join sees after pushdown.
	Rows int64
	// Signature is the plan-cache signature ("" when unfiltered).
	Signature string
	// Cached reports whether this query reused a cached prepared input.
	Cached bool
}

// PlanOptions carries the database configuration the planner needs.
type PlanOptions struct {
	// Padding is the Section 8 output-padding mode in force.
	Padding core.PaddingMode
	// PadBase is the PadClosestPower base (0 = 2).
	PadBase int
	// DPEpsilon is the PadDP privacy parameter (0 = 0.5).
	DPEpsilon float64
	// EnableMultiway reports whether indexes are in write-back mode, which
	// multiway execution requires.
	EnableMultiway bool
}

// Plan is a compiled query: the pushdown decisions, the full candidate
// slate, and the chosen operator.
type Plan struct {
	// Spec is the logical query.
	Spec Spec
	// Inputs are the per-table pushdown decisions, in Spec.Tables order.
	Inputs []InputPlan
	// EstimatedResult is R̂, the (declared or heuristic) result estimate.
	EstimatedResult int64
	// PlannedResult is R̂ after the deterministic planning form of the
	// padding mode — the result size the cost formulas were evaluated at.
	PlannedResult int64
	// Padding is the output padding mode in force.
	Padding core.PaddingMode
	// Candidates is the enumerated slate, in a fixed deterministic order.
	Candidates []Candidate
	// Chosen indexes the selected candidate in Candidates.
	Chosen int
}

// Best returns the chosen candidate.
func (p *Plan) Best() *Candidate { return &p.Candidates[p.Chosen] }

// planSpec enumerates and prices the candidate slate over the catalog (all
// public metadata) and picks the block-access minimum. The enumeration
// order and tie-break (first minimum wins) are deterministic, so identical
// catalogs yield identical plans.
func planSpec(cat Catalog, spec Spec, po PlanOptions) (*Plan, error) {
	sizes := make([]int64, len(spec.Tables))
	for i, t := range spec.Tables {
		m, err := cat.lookup(t)
		if err != nil {
			return nil, err
		}
		sizes[i] = m.Rows
	}
	cart := saturatingProduct(sizes)
	est := spec.EstimatedResult
	if est <= 0 {
		est = estimateResult(spec, sizes, cart)
	}
	if est > cart {
		est = cart
	}
	planned := plannedPad(po, est, cart)

	p := &Plan{Spec: spec, EstimatedResult: est, PlannedResult: planned, Padding: po.Padding}
	switch {
	case spec.Band != nil:
		p.Candidates = bandCandidates(cat, spec, planned)
	case len(spec.Tables) == 2:
		p.Candidates = binaryCandidates(cat, spec, planned)
	default:
		p.Candidates = multiwayCandidates(cat, spec, planned, po)
	}

	best := -1
	for i, c := range p.Candidates {
		if !c.Viable {
			continue
		}
		if best < 0 || c.Cost.Blocks < p.Candidates[best].Cost.Blocks {
			best = i
		}
	}
	if best < 0 {
		reasons := ""
		for _, c := range p.Candidates {
			reasons += fmt.Sprintf("\n  %s: %s", c.Desc, c.Reason)
		}
		return nil, fmt.Errorf("query: no viable plan for %s:%s", spec.describe(), reasons)
	}
	p.Chosen = best
	return p, nil
}

// binaryCandidates enumerates SMJ and both INLJ orientations for the
// two-table equi-join.
func binaryCandidates(cat Catalog, spec Spec, planned int64) []Candidate {
	pr := spec.Preds[0]
	t1, a1, t2, a2 := pr.Left, pr.LeftAttr, pr.Right, pr.RightAttr
	var out []Candidate

	smj := Candidate{
		Kind: OpSMJ, Desc: fmt.Sprintf("smj(%s.%s, %s.%s)", t1, a1, t2, a2),
		Outer: t1, OuterAttr: a1, Inner: t2, InnerAttr: a2,
	}
	if c, err := smjCost(cat, t1, a1, t2, a2, planned); err != nil {
		smj.Reason = err.Error()
	} else {
		smj.Viable, smj.Cost = true, c
	}
	out = append(out, smj)

	for _, o := range []struct{ ot, oa, it, ia string }{{t1, a1, t2, a2}, {t2, a2, t1, a1}} {
		cand := Candidate{
			Kind: OpINLJ, Desc: fmt.Sprintf("inlj(outer=%s, inner=%s.%s)", o.ot, o.it, o.ia),
			Outer: o.ot, OuterAttr: o.oa, Inner: o.it, InnerAttr: o.ia,
		}
		if c, err := inljCost(cat, o.ot, o.it, o.ia, planned); err != nil {
			cand.Reason = err.Error()
		} else {
			cand.Viable, cand.Cost = true, c
		}
		out = append(out, cand)
	}
	return out
}

// bandCandidates enumerates both orientations of the band INLJ.
func bandCandidates(cat Catalog, spec Spec, planned int64) []Candidate {
	b := spec.Band
	var out []Candidate
	for _, o := range []struct {
		ot, oa, it, ia string
		op             core.BandOp
	}{
		{b.Left, b.LeftAttr, b.Right, b.RightAttr, b.Op},
		{b.Right, b.RightAttr, b.Left, b.LeftAttr, flipBand(b.Op)},
	} {
		cand := Candidate{
			Kind: OpBand,
			Desc: fmt.Sprintf("band(outer=%s, %s.%s %s %s.%s)",
				o.ot, o.ot, o.oa, bandOpString(o.op), o.it, o.ia),
			Outer: o.ot, OuterAttr: o.oa, Inner: o.it, InnerAttr: o.ia, BandOp: o.op,
		}
		if c, err := inljCost(cat, o.ot, o.it, o.ia, planned); err != nil {
			cand.Reason = err.Error()
		} else {
			cand.Viable, cand.Cost = true, c
		}
		out = append(out, cand)
	}
	return out
}

// multiwayCandidates enumerates one multiway plan per candidate root, in
// Spec.Tables order, keeping the remaining tables' relative order.
func multiwayCandidates(cat Catalog, spec Spec, planned int64, po PlanOptions) []Candidate {
	var out []Candidate
	for _, root := range spec.Tables {
		order := make([]string, 0, len(spec.Tables))
		order = append(order, root)
		for _, t := range spec.Tables {
			if t != root {
				order = append(order, t)
			}
		}
		cand := Candidate{
			Kind: OpMultiway, Desc: fmt.Sprintf("multiway(root=%s)", root),
			Order: order,
		}
		if !po.EnableMultiway {
			cand.Reason = "multiway joins require EnableMultiway (write-back index mode)"
			out = append(out, cand)
			continue
		}
		tree, err := jointree.Build(jointree.Query{Tables: order, Preds: spec.Preds})
		if err != nil {
			cand.Reason = err.Error()
			out = append(out, cand)
			continue
		}
		if c, err := multiwayCost(cat, tree, planned); err != nil {
			cand.Reason = err.Error()
		} else {
			cand.Viable, cand.Cost = true, c
		}
		out = append(out, cand)
	}
	return out
}

// estimateResult is the planner's R̂ heuristic when the spec declares none:
// for equi-joins the foreign-key assumption |R̂| = max |Tj| (each tuple of
// the larger side matches at most once), for band joins half the Cartesian
// bound (a one-sided inequality keeps about half of all pairs). Functions
// of public sizes only.
func estimateResult(spec Spec, sizes []int64, cart int64) int64 {
	if spec.Band != nil {
		est := cart / 2
		if est < 1 {
			est = 1
		}
		return est
	}
	var max int64 = 1
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return max
}

// plannedPad is the deterministic planning form of core.Options.PadSize:
// identical for every mode except PadDP, where the randomized draw is
// replaced by its ⌈1/ε⌉+1 mean so planning never consumes randomness (a
// plan must be a pure function of public metadata).
func plannedPad(po PlanOptions, est, cart int64) int64 {
	switch po.Padding {
	case core.PadClosestPower:
		base := int64(po.PadBase)
		if base < 2 {
			base = 2
		}
		p := int64(1)
		for p < est {
			p *= base
		}
		if p > cart {
			p = cart
		}
		return p
	case core.PadCartesian:
		return cart
	case core.PadDP:
		eps := po.DPEpsilon
		if eps <= 0 {
			eps = 0.5
		}
		padded := est + int64(math.Ceil(1/eps)) + 1
		if padded > cart {
			padded = cart
		}
		return padded
	default:
		return est
	}
}

// saturatingProduct multiplies sizes, clamping at MaxInt64 instead of
// overflowing (large Cartesian bounds are only compared against, never
// executed at, when a size-revealing mode is in force).
func saturatingProduct(sizes []int64) int64 {
	p := int64(1)
	for _, s := range sizes {
		if s <= 0 {
			continue
		}
		if p > math.MaxInt64/s {
			return math.MaxInt64
		}
		p *= s
	}
	return p
}
