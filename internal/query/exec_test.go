package query

import (
	"strings"
	"testing"

	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
	"oblivjoin/internal/operators"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/session"
)

func TestRunEquiJoinMatchesReference(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, 2, 2, 3, 5}),
		"b": makeRel("b", []int64{2, 2, 3, 4}),
	}
	env := newEnv(t, envConfig{}, rels, map[string][]string{"a": {"k"}, "b": {"k"}})
	spec := equiSpec("a", "b")
	// Pin the column order: the planner may flip the INLJ orientation,
	// which reorders the join's natural output columns.
	spec.Project = []string{"a.k", "a.id", "b.k", "b.id"}
	out, err := env.ex.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	equalMultiset(t, out.Tuples, core.ReferenceEquiJoin(rels["a"], rels["b"], "k", "k"))
	if !out.Plan.Best().Viable {
		t.Fatal("chosen candidate not viable")
	}
	if len(out.Columns) != 4 {
		t.Fatalf("output columns %v, want 4 qualified columns", out.Columns)
	}
}

func TestRunBandJoinMatchesReference(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, 4, 7}),
		"b": makeRel("b", []int64{2, 5, 6}),
	}
	env := newEnv(t, envConfig{}, rels, map[string][]string{"a": {"k"}, "b": {"k"}})
	spec := Spec{
		Tables: []string{"a", "b"},
		Band:   &Band{Left: "a", LeftAttr: "k", Op: core.BandLess, Right: "b", RightAttr: "k"},
	}
	out, err := env.ex.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := core.ReferenceBandJoin(rels["a"], rels["b"], "k", "k", core.BandLess)
	// The chosen orientation may flip outer/inner; compare as column sets.
	if len(out.Tuples) != len(want) {
		t.Fatalf("band result %d tuples, want %d", len(out.Tuples), len(want))
	}
}

func TestRunMultiwayMatchesReference(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, 2, 3}),
		"b": makeRel("b", []int64{2, 2, 3, 4}),
		"c": makeRel("c", []int64{3, 3, 2}),
	}
	env := newEnv(t, envConfig{multiway: true}, rels, map[string][]string{"a": {"k"}, "b": {"k"}, "c": {"k"}})
	spec := Spec{
		Tables: []string{"a", "b", "c"},
		Preds: []jointree.Pred{
			{Left: "a", LeftAttr: "k", Right: "b", RightAttr: "k"},
			{Left: "b", LeftAttr: "k", Right: "c", RightAttr: "k"},
		},
	}
	out, err := env.ex.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Plan.Best().Kind != OpMultiway {
		t.Fatalf("3-table query chose %s, want multiway", out.Plan.Best().Kind)
	}
	tree, err := jointree.Build(jointree.Query{Tables: out.Plan.Best().Order, Preds: spec.Preds})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ReferenceMultiwayJoin(rels, tree)
	if err != nil {
		t.Fatal(err)
	}
	equalMultiset(t, out.Tuples, want)
}

// TestPushdownFilterCorrect: an oblivious selection below the join must
// yield exactly the reference join of the filtered table, with the
// sentinel fillers contributing nothing.
func TestPushdownFilterCorrect(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, 2, 2, 3, 5, 8}),
		"b": makeRel("b", []int64{2, 2, 3, 5, 9}),
	}
	for _, padding := range []core.PaddingMode{core.PadCartesian, core.PadClosestPower, core.PadNone} {
		env := newEnv(t, envConfig{padding: padding}, rels, map[string][]string{"a": {"k"}, "b": {"k"}})
		preds := []operators.Pred{{Column: "k", Op: operators.LE, Value: 3}}
		spec := equiSpec("a", "b")
		spec.Project = []string{"a.k", "a.id", "b.k", "b.id"}
		spec.Filters = []Filter{{Table: "a", Preds: preds}}
		out, err := env.ex.Run(spec)
		if err != nil {
			t.Fatalf("padding %v: %v", padding, err)
		}
		want := core.ReferenceEquiJoin(filterRel(rels["a"], preds), rels["b"], "k", "k")
		equalMultiset(t, out.Tuples, want)
		ip := out.Plan.Inputs[0]
		if ip.Signature == "" || ip.Cached {
			t.Fatalf("padding %v: first run input plan %+v, want built with signature", padding, ip)
		}
	}
}

// TestBandPushdownSentinels: band joins route fillers to the matchless
// extreme of each side; filtering both sides must stay correct.
func TestBandPushdownSentinels(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{-3, 1, 4, 7, 10}),
		"b": makeRel("b", []int64{-1, 2, 5, 6, 12}),
	}
	for _, op := range []core.BandOp{core.BandLess, core.BandGreaterEq} {
		env := newEnv(t, envConfig{padding: core.PadCartesian}, rels, map[string][]string{"a": {"k"}, "b": {"k"}})
		pa := []operators.Pred{{Column: "k", Op: operators.GE, Value: 0}}
		pb := []operators.Pred{{Column: "k", Op: operators.LE, Value: 6}}
		spec := Spec{
			Tables:  []string{"a", "b"},
			Band:    &Band{Left: "a", LeftAttr: "k", Op: op, Right: "b", RightAttr: "k"},
			Filters: []Filter{{Table: "a", Preds: pa}, {Table: "b", Preds: pb}},
		}
		out, err := env.ex.Run(spec)
		if err != nil {
			t.Fatalf("op %v: %v", op, err)
		}
		want := core.ReferenceBandJoin(filterRel(rels["a"], pa), filterRel(rels["b"], pb), "k", "k", op)
		if len(out.Tuples) != len(want) {
			t.Fatalf("op %v: band result %d tuples, want %d", op, len(out.Tuples), len(want))
		}
	}
}

// TestPlanCacheWarmRun: the second identical query must hit the cache, do
// no prepare traffic, and cost measurably fewer total block accesses.
func TestPlanCacheWarmRun(t *testing.T) {
	keys := make([]int64, 48)
	for i := range keys {
		keys[i] = int64(i % 12)
	}
	rels := map[string]*relation.Relation{
		"a": makeRel("a", keys),
		"b": makeRel("b", []int64{0, 1, 2, 3, 4, 5}),
	}
	env := newEnv(t, envConfig{padding: core.PadClosestPower}, rels, map[string][]string{"a": {"k"}, "b": {"k"}})
	spec := equiSpec("a", "b")
	spec.Filters = []Filter{{Table: "a", Preds: []operators.Pred{{Column: "k", Op: operators.LT, Value: 6}}}}

	before := env.meter.Snapshot()
	cold, err := env.ex.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	coldBlocks := env.meter.Snapshot().Sub(before).BlocksMoved()

	before = env.meter.Snapshot()
	warm, err := env.ex.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	warmBlocks := env.meter.Snapshot().Sub(before).BlocksMoved()

	if cold.CacheMisses != 1 || cold.CacheHits != 0 {
		t.Fatalf("cold run: %d misses %d hits, want 1/0", cold.CacheMisses, cold.CacheHits)
	}
	if warm.CacheHits != 1 || warm.CacheMisses != 0 {
		t.Fatalf("warm run: %d hits %d misses, want 1/0", warm.CacheHits, warm.CacheMisses)
	}
	if !warm.Plan.Inputs[0].Cached {
		t.Fatal("warm run input plan not marked cached")
	}
	if warm.PrepareStats.BlocksMoved() != 0 {
		t.Fatalf("warm prepare moved %d blocks, want 0", warm.PrepareStats.BlocksMoved())
	}
	if warmBlocks >= coldBlocks {
		t.Fatalf("warm run moved %d blocks, cold %d — cache reuse saved nothing", warmBlocks, coldBlocks)
	}
	equalMultiset(t, warm.Tuples, cold.Tuples)
}

// TestPreparedStoresUseReservedNamespace: every store a prepared input
// provisions must live under the plan-cache prefix the session layer
// reserves.
func TestPreparedStoresUseReservedNamespace(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, 2, 3, 4}),
		"b": makeRel("b", []int64{2, 3}),
	}
	env := newEnv(t, envConfig{padding: core.PadCartesian}, rels, map[string][]string{"a": {"k"}, "b": {"k"}})
	spec := equiSpec("a", "b")
	spec.Filters = []Filter{{Table: "a", Preds: []operators.Pred{{Column: "k", Op: operators.GE, Value: 2}}}}
	out, err := env.ex.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := env.ex.Cache
	if st.Stats().Entries != 1 {
		t.Fatalf("cache entries %d, want 1", st.Stats().Entries)
	}
	sig := out.Plan.Inputs[0].Signature
	for entrySig, entry := range st.entries {
		prefix := entry.st.StorePrefix()
		if !strings.HasPrefix(prefix, session.PlanCachePrefix) {
			t.Fatalf("prepared store prefix %q escapes the reserved namespace", prefix)
		}
		if entrySig != sig || !strings.Contains(prefix, sig) {
			t.Fatalf("entry %s provisioned under %q, want the signature %s in both", entrySig, prefix, sig)
		}
	}
}

// TestSentinelsDisjointAcrossQueryShapes is the regression test for cache
// reuse across differently-shaped queries: a prepared input cached from
// one query must never share sentinel filler keys with an input built
// fresh for another query. The old scheme derived fillers from the
// table's position in the query (ti, stride len(Tables)) — data the cache
// signature deliberately excludes — so a's cached fillers (built at
// position 0 of [a,b]) collided with c's fresh fillers (built at position
// 0 of [c,a]), and the second join returned a spurious filler–filler
// match.
func TestSentinelsDisjointAcrossQueryShapes(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, 2, 3, 4, 5}),
		"b": makeRel("b", []int64{2, 3}),
		"c": makeRel("c", []int64{1, 2, 3, 4, 5}),
	}
	env := newEnv(t, envConfig{padding: core.PadClosestPower}, rels,
		map[string][]string{"a": {"k"}, "b": {"k"}, "c": {"k"}})
	filter := []operators.Pred{{Column: "k", Op: operators.LE, Value: 3}}

	// Query 1: [a, b] with a filtered — a's prepared input is built and
	// cached with at least one sentinel filler (3 real rows pad to 4).
	q1 := equiSpec("a", "b")
	q1.Filters = []Filter{{Table: "a", Preds: filter}}
	q1.Project = []string{"a.k", "a.id", "b.k", "b.id"}
	out1, err := env.ex.Run(q1)
	if err != nil {
		t.Fatal(err)
	}
	equalMultiset(t, out1.Tuples, core.ReferenceEquiJoin(filterRel(rels["a"], filter), rels["b"], "k", "k"))

	// Query 2: [c, a] with both filtered — a is a cache hit, c is a fresh
	// build. Their filler ranges must be disjoint, or the join invents
	// tuples that exist in neither input.
	q2 := Spec{
		Tables:  []string{"c", "a"},
		Preds:   []jointree.Pred{{Left: "c", LeftAttr: "k", Right: "a", RightAttr: "k"}},
		Filters: []Filter{{Table: "c", Preds: filter}, {Table: "a", Preds: filter}},
		Project: []string{"c.k", "c.id", "a.k", "a.id"},
	}
	out2, err := env.ex.Run(q2)
	if err != nil {
		t.Fatal(err)
	}
	if out2.CacheHits != 1 || out2.CacheMisses != 1 {
		t.Fatalf("query 2: %d hits %d misses, want a to hit and c to build", out2.CacheHits, out2.CacheMisses)
	}
	want := core.ReferenceEquiJoin(filterRel(rels["c"], filter), filterRel(rels["a"], filter), "k", "k")
	if len(out2.Tuples) != len(want) {
		t.Fatalf("query 2 returned %d tuples, want %d — sentinel fillers joined each other", len(out2.Tuples), len(want))
	}
}

// TestBandPolaritySplitsCache: an input cached from an equi join (fillers
// at the high extreme) must not be reused as the low side of a band join,
// where high fillers would satisfy the inequality against every real key.
// The sentinel polarity is part of the signature, so the band query must
// rebuild.
func TestBandPolaritySplitsCache(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, 4, 7, 9}),
		"b": makeRel("b", []int64{2, 5, 6, 8}),
	}
	env := newEnv(t, envConfig{padding: core.PadClosestPower}, rels,
		map[string][]string{"a": {"k"}, "b": {"k"}})
	filter := []operators.Pred{{Column: "k", Op: operators.LE, Value: 6}}

	q1 := equiSpec("a", "b")
	q1.Filters = []Filter{{Table: "b", Preds: filter}}
	q1.Project = []string{"a.k", "a.id", "b.k", "b.id"}
	out1, err := env.ex.Run(q1)
	if err != nil {
		t.Fatal(err)
	}
	equalMultiset(t, out1.Tuples, core.ReferenceEquiJoin(rels["a"], filterRel(rels["b"], filter), "k", "k"))

	// b is now the right side of a < band join: its fillers must move to
	// the low extreme, so the equi-built entry must NOT be reused.
	q2 := Spec{
		Tables:  []string{"a", "b"},
		Band:    &Band{Left: "a", LeftAttr: "k", Op: core.BandLess, Right: "b", RightAttr: "k"},
		Filters: []Filter{{Table: "b", Preds: filter}},
	}
	out2, err := env.ex.Run(q2)
	if err != nil {
		t.Fatal(err)
	}
	if out2.CacheHits != 0 || out2.CacheMisses != 1 {
		t.Fatalf("band query: %d hits %d misses, want a rebuild — equi fillers are not band-safe", out2.CacheHits, out2.CacheMisses)
	}
	want := core.ReferenceBandJoin(rels["a"], filterRel(rels["b"], filter), "k", "k", core.BandLess)
	if len(out2.Tuples) != len(want) {
		t.Fatalf("band result %d tuples, want %d — high-extreme fillers matched real keys", len(out2.Tuples), len(want))
	}
}

func TestProjection(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, 2}),
		"b": makeRel("b", []int64{2, 3}),
	}
	env := newEnv(t, envConfig{}, rels, map[string][]string{"a": {"k"}, "b": {"k"}})

	spec := equiSpec("a", "b")
	spec.Project = []string{"a.id", "b.id"}
	out, err := env.ex.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Columns) != 2 || out.Columns[0] != "a.id" || out.Columns[1] != "b.id" {
		t.Fatalf("projected columns %v, want [a.id b.id]", out.Columns)
	}
	for _, tu := range out.Tuples {
		if len(tu.Values) != 2 {
			t.Fatalf("projected tuple has %d values, want 2", len(tu.Values))
		}
	}

	// Bare "k" is ambiguous (both tables have one); bare "id" too.
	spec.Project = []string{"k"}
	if _, err := env.ex.Run(spec); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous projection err = %v", err)
	}
	spec.Project = []string{"nope"}
	if _, err := env.ex.Run(spec); err == nil || !strings.Contains(err.Error(), "matches no output column") {
		t.Fatalf("unknown projection err = %v", err)
	}
}

// TestKeyDomainGuard: pushdown padding refuses join keys that collide with
// the sentinel range.
func TestKeyDomainGuard(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, sentinelFloor + 5}),
		"b": makeRel("b", []int64{1, 2}),
	}
	env := newEnv(t, envConfig{padding: core.PadCartesian}, rels, map[string][]string{"a": {"k"}, "b": {"k"}})
	spec := equiSpec("a", "b")
	spec.Filters = []Filter{{Table: "b", Preds: []operators.Pred{{Column: "k", Op: operators.GE, Value: 2}}}}
	if _, err := env.ex.Run(spec); err == nil || !strings.Contains(err.Error(), "2^62") {
		t.Fatalf("key domain guard err = %v", err)
	}
	// Without filters no fillers are added, so the same keys are fine.
	spec.Filters = nil
	if _, err := env.ex.Run(spec); err != nil {
		t.Fatalf("unfiltered run with large keys failed: %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1}),
		"b": makeRel("b", []int64{1}),
	}
	env := newEnv(t, envConfig{}, rels, map[string][]string{"a": {"k"}, "b": {"k"}})
	cases := []Spec{
		{Tables: []string{"a"}},      // too few tables
		{Tables: []string{"a", "a"}}, // duplicate
		{Tables: []string{"a", "b"}}, // no predicate
		{Tables: []string{"a", "nope"}, Preds: equiSpec("a", "nope").Preds},                             // unknown table
		{Tables: []string{"a", "b"}, Preds: equiSpec("a", "b").Preds, Filters: []Filter{{Table: "zz"}}}, // filter on unlisted table
	}
	for i, spec := range cases {
		if _, err := env.ex.Run(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

// TestExplainShowsCacheState: the first explain builds, the second reports
// the cache hit.
func TestExplainShowsCacheState(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, 2, 3, 4}),
		"b": makeRel("b", []int64{2, 3}),
	}
	env := newEnv(t, envConfig{padding: core.PadCartesian}, rels, map[string][]string{"a": {"k"}, "b": {"k"}})
	spec := equiSpec("a", "b")
	spec.Filters = []Filter{{Table: "a", Preds: []operators.Pred{{Column: "k", Op: operators.LE, Value: 3}}}}
	first, err := env.ex.Explain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first, "built") {
		t.Fatalf("first explain should report a build:\n%s", first)
	}
	second, err := env.ex.Explain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second, "cache hit") {
		t.Fatalf("second explain should report a cache hit:\n%s", second)
	}
}
