package query

import (
	"fmt"
	"sort"
	"strings"

	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
	"oblivjoin/internal/operators"
)

// Filter is a conjunction of per-column selection predicates on one input
// table, applied obliviously below the join (selection pushdown).
type Filter struct {
	// Table names the input the predicates apply to.
	Table string
	// Preds are ANDed column comparisons.
	Preds []operators.Pred
}

// Band is a band-join predicate Left.LeftAttr OP Right.RightAttr. A banded
// Spec has exactly two tables and no equi predicates.
type Band struct {
	Left      string
	LeftAttr  string
	Op        core.BandOp
	Right     string
	RightAttr string
}

// Spec is the logical query the planner compiles: the listed tables joined
// under the equi predicates (or the single band predicate), each input
// optionally filtered first, and the output optionally projected. The
// zero-value extension fields keep Spec literal-compatible with the
// pre-planner multiway Query{Tables, Preds} form.
type Spec struct {
	// Tables are the inputs. For multiway execution Tables[0] is only the
	// planner's default root — the planner reorders roots by cost.
	Tables []string
	// Preds are the equi-join predicates (n-1 of them for n tables).
	Preds []jointree.Pred
	// Band, when non-nil, makes this a two-table band join instead.
	Band *Band
	// Filters are pre-join selections, pushed below the join obliviously.
	Filters []Filter
	// Project lists output columns to keep (qualified "table.column", or a
	// bare column name when unambiguous); empty keeps all. Projection is
	// client-side post-processing of the decoded output — no server cost.
	Project []string
	// EstimatedResult is an optional declared estimate of the join result
	// size used for cost prediction (public planning metadata). 0 applies
	// the planner's heuristic.
	EstimatedResult int64
}

// JoinQuery converts the spec to the multiway join-tree form.
func (s Spec) JoinQuery() jointree.Query {
	return jointree.Query{Tables: s.Tables, Preds: s.Preds}
}

// validate checks internal consistency against the provided table set.
func (s Spec) validate(has func(string) bool) error {
	if len(s.Tables) < 2 {
		return fmt.Errorf("query: need at least 2 tables, got %d", len(s.Tables))
	}
	seen := make(map[string]bool, len(s.Tables))
	for _, t := range s.Tables {
		if seen[t] {
			return fmt.Errorf("query: duplicate table %q", t)
		}
		seen[t] = true
		if !has(t) {
			return fmt.Errorf("query: unknown table %q", t)
		}
	}
	if s.Band != nil {
		if len(s.Preds) != 0 {
			return fmt.Errorf("query: band joins take no equi predicates")
		}
		if len(s.Tables) != 2 {
			return fmt.Errorf("query: band joins are binary, got %d tables", len(s.Tables))
		}
		if !seen[s.Band.Left] || !seen[s.Band.Right] || s.Band.Left == s.Band.Right {
			return fmt.Errorf("query: band predicate must reference both listed tables")
		}
	} else {
		if len(s.Preds) != len(s.Tables)-1 {
			return fmt.Errorf("query: %d tables need exactly %d equi predicates, got %d",
				len(s.Tables), len(s.Tables)-1, len(s.Preds))
		}
		for _, p := range s.Preds {
			if !seen[p.Left] || !seen[p.Right] {
				return fmt.Errorf("query: predicate %s.%s = %s.%s references an unlisted table",
					p.Left, p.LeftAttr, p.Right, p.RightAttr)
			}
		}
	}
	for _, f := range s.Filters {
		if !seen[f.Table] {
			return fmt.Errorf("query: filter on unlisted table %q", f.Table)
		}
		if len(f.Preds) == 0 {
			return fmt.Errorf("query: empty filter on table %q", f.Table)
		}
	}
	return nil
}

// joinAttrs returns the sorted set of attributes tbl joins on — the index
// inventory a prepared (filtered) copy of tbl must carry.
func (s Spec) joinAttrs(tbl string) []string {
	set := map[string]bool{}
	for _, p := range s.Preds {
		if p.Left == tbl {
			set[p.LeftAttr] = true
		}
		if p.Right == tbl {
			set[p.RightAttr] = true
		}
	}
	if s.Band != nil {
		if s.Band.Left == tbl {
			set[s.Band.LeftAttr] = true
		}
		if s.Band.Right == tbl {
			set[s.Band.RightAttr] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// sentinelLow reports which extreme of the key domain tbl's sentinel
// filler tuples must occupy to stay matchless under this spec's join kind:
// equi-join fillers always sit at the high extreme, but for a band join
// the side whose extreme-high values would still satisfy the inequality
// against real keys takes the mirrored low extreme instead. The polarity
// is part of a prepared input's cache signature — an input built for an
// equi join cannot be reused as the low side of a band join.
func (s Spec) sentinelLow(tbl string) bool {
	b := s.Band
	if b == nil {
		return false
	}
	switch b.Op {
	case core.BandLess, core.BandLessEq:
		return tbl == b.Right
	case core.BandGreater, core.BandGreaterEq:
		return tbl == b.Left
	}
	return false
}

// filtersFor collects every filter predicate on tbl, in declaration order.
func (s Spec) filtersFor(tbl string) []operators.Pred {
	var out []operators.Pred
	for _, f := range s.Filters {
		if f.Table == tbl {
			out = append(out, f.Preds...)
		}
	}
	return out
}

// describe renders the join shape on one line ("a ⋈ b on a.x = b.y").
func (s Spec) describe() string {
	var b strings.Builder
	b.WriteString(strings.Join(s.Tables, " ⋈ "))
	if s.Band != nil {
		fmt.Fprintf(&b, " on %s.%s %s %s.%s",
			s.Band.Left, s.Band.LeftAttr, bandOpString(s.Band.Op), s.Band.Right, s.Band.RightAttr)
		return b.String()
	}
	for i, p := range s.Preds {
		sep := " on "
		if i > 0 {
			sep = " and "
		}
		fmt.Fprintf(&b, "%s%s.%s = %s.%s", sep, p.Left, p.LeftAttr, p.Right, p.RightAttr)
	}
	return b.String()
}

func bandOpString(op core.BandOp) string {
	switch op {
	case core.BandLess:
		return "<"
	case core.BandLessEq:
		return "<="
	case core.BandGreater:
		return ">"
	case core.BandGreaterEq:
		return ">="
	default:
		return fmt.Sprintf("BandOp(%d)", int(op))
	}
}

// flipBand mirrors a band operator for the swapped-orientation candidate:
// l.a OP r.b  ≡  r.b OP' l.a.
func flipBand(op core.BandOp) core.BandOp {
	switch op {
	case core.BandLess:
		return core.BandGreater
	case core.BandLessEq:
		return core.BandGreaterEq
	case core.BandGreater:
		return core.BandLess
	default:
		return core.BandLessEq
	}
}
