package query

import (
	"fmt"

	"oblivjoin/internal/table"
)

// IndexMeta is the public cost metadata of one B-tree index: everything is
// a constant of the instance geometry (tree shape, caching mode, ORAM
// levels), never of the indexed values.
type IndexMeta struct {
	// Attr is the indexed attribute.
	Attr string
	// AccessesPerRetrieval is the exact number of index-ORAM accesses one
	// lookup/disable/dummy performs (Δ, or 2Δ with write-back descents).
	AccessesPerRetrieval int
	// OramAccessesPerOp is the server block operations one index-ORAM
	// access moves (2·levels for Path-ORAM).
	OramAccessesPerOp int
	// ResetNodes is the number of index nodes a post-multiway Reset pass
	// touches with one ORAM access each (leaves only in "+Cache" mode).
	ResetNodes int64
	// Store is the index ORAM's store name, for per-store attribution.
	Store string
}

// TableMeta is the public cost metadata of one stored table.
type TableMeta struct {
	// Name is the table name.
	Name string
	// Rows is the (padded, for prepared inputs) tuple count the join sees.
	Rows int64
	// DataAccessesPerOp is the server block operations one data-ORAM
	// access moves.
	DataAccessesPerOp int
	// DataStore is the data ORAM's store name.
	DataStore string
	// Indexes maps attribute name to index metadata.
	Indexes map[string]IndexMeta
}

// Index returns the metadata of the index on attr, if built.
func (t TableMeta) Index(attr string) (IndexMeta, bool) {
	m, ok := t.Indexes[attr]
	return m, ok
}

// Catalog is the planner's entire input: per-table public metadata keyed by
// table name.
type Catalog map[string]TableMeta

// Describe extracts the catalog from a set of stored tables. Every field
// read here is instance geometry (row counts, tree shapes, ORAM level
// counts, store names) — public sizing information under the paper's
// leakage definition, and exactly what the server already observes.
func Describe(tables map[string]*table.StoredTable) Catalog {
	cat := make(Catalog, len(tables))
	for name, st := range tables {
		tm := TableMeta{
			Name:              name,
			Rows:              int64(st.NumTuples()),
			DataAccessesPerOp: st.DataAccessesPerOp(),
			DataStore:         table.DataStoreName(st.StorePrefix(), st.Schema().Table),
			Indexes:           make(map[string]IndexMeta),
		}
		for _, attr := range st.IndexAttrs() {
			tr, err := st.Index(attr)
			if err != nil {
				continue // unreachable: IndexAttrs listed it
			}
			resetNodes := tr.NumNodes()
			if tr.OutsourcedLevels() < tr.Height() {
				resetNodes = tr.LeafCount() // internal levels are client-cached
			}
			tm.Indexes[attr] = IndexMeta{
				Attr:                 attr,
				AccessesPerRetrieval: tr.AccessesPerRetrieval(),
				OramAccessesPerOp:    tr.ORAM().AccessesPerOp(),
				ResetNodes:           resetNodes,
				Store:                table.IndexStoreName(st.StorePrefix(), st.Schema().Table, attr),
			}
		}
		cat[name] = tm
	}
	return cat
}

func (c Catalog) lookup(name string) (TableMeta, error) {
	tm, ok := c[name]
	if !ok {
		return TableMeta{}, fmt.Errorf("query: table %q not in catalog", name)
	}
	return tm, nil
}
