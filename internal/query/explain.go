package query

import (
	"fmt"
	"sort"
	"strings"
)

// Explain renders the plan deterministically: the query shape, the
// per-input pushdown decisions, the chosen operator with its predicted
// block-access and round counts, and the full candidate slate. Identical
// public metadata produces byte-identical output — the property the
// trace-identity test pins.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", p.Spec.describe())
	fmt.Fprintf(&b, "padding: %s   estimated result: %d (planned %d)\n",
		p.Padding, p.EstimatedResult, p.PlannedResult)
	fmt.Fprintf(&b, "inputs:\n")
	for _, in := range p.Inputs {
		cached := ""
		if in.Signature != "" {
			state := "built"
			if in.Cached {
				state = "cache hit"
			}
			cached = fmt.Sprintf("   [sig %s, %s]", in.Signature, state)
		}
		if len(in.Filters) == 0 {
			fmt.Fprintf(&b, "  %s: %d rows (base)%s\n", in.Table, in.Rows, cached)
			continue
		}
		fmt.Fprintf(&b, "  %s: σ(%s) %d rows -> %d padded%s\n",
			in.Table, strings.Join(in.Filters, " and "), in.BaseRows, in.Rows, cached)
	}
	best := p.Best()
	fmt.Fprintf(&b, "plan: %s\n", best.Desc)
	fmt.Fprintf(&b, "  predicted: steps=%d oram_ops=%d blocks=%d rounds<=%d\n",
		best.Cost.Steps, best.Cost.ORAMOps, best.Cost.Blocks, best.Cost.Rounds)
	stores := make([]string, 0, len(best.Cost.PerStore))
	for s := range best.Cost.PerStore {
		stores = append(stores, s)
	}
	sort.Strings(stores)
	for _, s := range stores {
		fmt.Fprintf(&b, "    %-32s %d blocks\n", s, best.Cost.PerStore[s])
	}
	fmt.Fprintf(&b, "candidates:\n")
	for i, c := range p.Candidates {
		mark := " "
		if i == p.Chosen {
			mark = "*"
		}
		if c.Viable {
			fmt.Fprintf(&b, "  %s %-44s blocks=%d rounds<=%d\n", mark, c.Desc, c.Cost.Blocks, c.Cost.Rounds)
		} else {
			fmt.Fprintf(&b, "    %-44s not viable: %s\n", c.Desc, c.Reason)
		}
	}
	if len(p.Spec.Project) > 0 {
		fmt.Fprintf(&b, "project: %s (client-side)\n", strings.Join(p.Spec.Project, ", "))
	}
	return b.String()
}
