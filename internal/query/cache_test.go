package query

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"oblivjoin/internal/operators"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/session"
	"oblivjoin/internal/table"
)

func testCacheKey(b byte) []byte { return bytes.Repeat([]byte{b}, 32) }

var errBoom = errors.New("boom")

func TestSignatureCoversInputDescription(t *testing.T) {
	c := NewCache(testCacheKey(1))
	schema := relation.Schema{Table: "a", Columns: []string{"k", "id"}}
	base := func() string {
		return c.signature(schema, 100, 256, []operators.Pred{{Column: "k", Op: operators.LE, Value: 5}}, []string{"k"}, "none/b0/e0", false)
	}
	sig := base()
	if sig != base() {
		t.Fatal("signature is not deterministic")
	}
	if len(sig) != 64 {
		t.Fatalf("signature %q is %d hex chars, want the full 64-char digest", sig, len(sig))
	}
	variants := []string{
		c.signature(schema, 101, 256, []operators.Pred{{Column: "k", Op: operators.LE, Value: 5}}, []string{"k"}, "none/b0/e0", false),
		c.signature(schema, 100, 512, []operators.Pred{{Column: "k", Op: operators.LE, Value: 5}}, []string{"k"}, "none/b0/e0", false),
		c.signature(schema, 100, 256, []operators.Pred{{Column: "k", Op: operators.LE, Value: 6}}, []string{"k"}, "none/b0/e0", false),
		c.signature(schema, 100, 256, []operators.Pred{{Column: "k", Op: operators.LT, Value: 5}}, []string{"k"}, "none/b0/e0", false),
		c.signature(schema, 100, 256, []operators.Pred{{Column: "k", Op: operators.LE, Value: 5}}, []string{"id", "k"}, "none/b0/e0", false),
		c.signature(schema, 100, 256, []operators.Pred{{Column: "k", Op: operators.LE, Value: 5}}, []string{"k"}, "cart/b0/e0", false),
		// Sentinel polarity: the low side of a band join needs different
		// fillers than an equi join over the same filtered table.
		c.signature(schema, 100, 256, []operators.Pred{{Column: "k", Op: operators.LE, Value: 5}}, []string{"k"}, "none/b0/e0", true),
	}
	seen := map[string]bool{sig: true}
	for i, v := range variants {
		if seen[v] {
			t.Errorf("variant %d collides with an earlier signature", i)
		}
		seen[v] = true
	}
}

// TestSignatureIsKeyed: the signature must be a keyed MAC, not a public
// hash — same description, different client secrets, different signatures —
// so a server that sees the signature in a store name cannot enumerate
// candidate filter constants and confirm them offline.
func TestSignatureIsKeyed(t *testing.T) {
	schema := relation.Schema{Table: "a", Columns: []string{"k"}}
	preds := []operators.Pred{{Column: "k", Op: operators.LE, Value: 30}}
	sig := func(c *Cache) string {
		return c.signature(schema, 100, 256, preds, []string{"k"}, "none/b0/e0", false)
	}
	c1, c2 := NewCache(testCacheKey(1)), NewCache(testCacheKey(2))
	if sig(c1) == sig(c2) {
		t.Fatal("different keys produced the same signature — the MAC is not keyed")
	}
	if sig(c1) != sig(NewCache(testCacheKey(1))) {
		t.Fatal("same key produced different signatures across cache instances")
	}
	// A nil key must still yield a working (random-key) cache.
	r1, r2 := NewCache(nil), NewCache(nil)
	if sig(r1) == sig(r2) {
		t.Fatal("two nil-key caches share a signature — the random key is not random")
	}
	if sig(r1) != sig(r1) {
		t.Fatal("nil-key cache signature is not stable within one cache")
	}
}

func TestCacheStorePrefixIsReserved(t *testing.T) {
	p := cacheStorePrefix("deadbeef01234567", 3)
	if !strings.HasPrefix(p, session.PlanCachePrefix) {
		t.Fatalf("prefix %q does not start with the reserved namespace %q", p, session.PlanCachePrefix)
	}
	// Every store a prepared input provisions must be refused to
	// sessionless/foreign-tenant access by the session layer.
	if !session.Reserved(session.Qualify("tenant", p+"a.data")) {
		t.Fatalf("qualified plan-cache store %q is not in a reserved namespace", session.Qualify("tenant", p+"a.data"))
	}
	// Different builds of the same signature must never share store names.
	if cacheStorePrefix("deadbeef01234567", 4) == p {
		t.Fatal("two builds of one signature share a store prefix")
	}
}

func TestCacheCountsHitsAndMisses(t *testing.T) {
	c := NewCache(testCacheKey(1))
	builds := 0
	get := func() {
		if _, _, err := c.getOrBuild("x", func(buildSlot) (*table.StoredTable, error) {
			builds++
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get()
	get()
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	s := c.Stats()
	if s.Entries != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 entry, 1 hit, 1 miss", s)
	}
}

// TestCacheBuildsCoalesce: concurrent misses on one signature must run the
// build exactly once — two racing queries would otherwise provision the
// same store names twice, the second clobbering blocks the first may still
// be reading.
func TestCacheBuildsCoalesce(t *testing.T) {
	c := NewCache(testCacheKey(1))
	var builds int32
	started := make(chan struct{})
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.getOrBuild("sig", func(buildSlot) (*table.StoredTable, error) {
			atomic.AddInt32(&builds, 1)
			close(started)
			<-gate
			return nil, nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-started // the build is in flight; every caller below must coalesce
	for i := 0; i < 7; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, hit, err := c.getOrBuild("sig", func(buildSlot) (*table.StoredTable, error) {
				atomic.AddInt32(&builds, 1)
				return nil, nil
			})
			if err != nil {
				t.Error(err)
			}
			if !hit {
				t.Error("coalesced caller did not report a cache hit")
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := atomic.LoadInt32(&builds); n != 1 {
		t.Fatalf("build ran %d times under concurrent misses, want 1", n)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 7 {
		t.Fatalf("stats = %+v, want 1 miss and 7 hits", s)
	}
}

// TestCacheFailedBuildRetries: a failed build must not poison the cache.
func TestCacheFailedBuildRetries(t *testing.T) {
	c := NewCache(testCacheKey(1))
	boom := func(buildSlot) (*table.StoredTable, error) { return nil, errBoom }
	if _, _, err := c.getOrBuild("sig", boom); err != errBoom {
		t.Fatalf("err = %v, want errBoom", err)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("failed build left %d entries", s.Entries)
	}
	var slot2 buildSlot
	if _, hit, err := c.getOrBuild("sig", func(s buildSlot) (*table.StoredTable, error) {
		slot2 = s
		return nil, nil
	}); err != nil || hit {
		t.Fatalf("retry after failed build: hit=%v err=%v, want a fresh build", hit, err)
	}
	// The retry must get its own slot: the failed build may have uploaded
	// partial state under its prefix.
	if slot2.StorePrefix == cacheStorePrefix("sig", 0) {
		t.Fatal("retry reused the failed build's store prefix")
	}
}

// TestCacheSlotsAreDisjoint: every build — across signatures, and across
// rebuilds of one signature after eviction — must get a disjoint filler
// range and a fresh store prefix.
func TestCacheSlotsAreDisjoint(t *testing.T) {
	c := NewCache(testCacheKey(1))
	c.SetLimit(1)
	var slots []buildSlot
	build := func(sig string) {
		t.Helper()
		if _, hit, err := c.getOrBuild(sig, func(s buildSlot) (*table.StoredTable, error) {
			slots = append(slots, s)
			return nil, nil
		}); err != nil || hit {
			t.Fatalf("build %s: hit=%v err=%v", sig, hit, err)
		}
	}
	build("one")
	build("two") // evicts "one" (limit 1)
	build("one") // rebuild after eviction
	if s := c.Stats(); s.Entries != 1 || s.Evictions != 2 || s.Misses != 3 {
		t.Fatalf("stats = %+v, want 1 entry, 2 evictions, 3 misses", s)
	}
	seenBase := map[int64]bool{}
	seenPrefix := map[string]bool{}
	for i, s := range slots {
		if seenBase[s.FillerBase] {
			t.Errorf("build %d reuses filler base %d", i, s.FillerBase)
		}
		if seenPrefix[s.StorePrefix] {
			t.Errorf("build %d reuses store prefix %q", i, s.StorePrefix)
		}
		seenBase[s.FillerBase], seenPrefix[s.StorePrefix] = true, true
	}
}

// TestCacheEvictsLRU: the bound must drop the least-recently-used entry,
// not the least-recently-built one.
func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(testCacheKey(1))
	c.SetLimit(2)
	noop := func(buildSlot) (*table.StoredTable, error) { return nil, nil }
	mustGet := func(sig string, wantHit bool) {
		t.Helper()
		if _, hit, err := c.getOrBuild(sig, noop); err != nil || hit != wantHit {
			t.Fatalf("%s: hit=%v err=%v, want hit=%v", sig, hit, err, wantHit)
		}
	}
	mustGet("a", false)
	mustGet("b", false)
	mustGet("a", true)  // refresh a: b is now least recently used
	mustGet("c", false) // evicts b
	mustGet("a", true)
	mustGet("b", false) // b was evicted, rebuilds
}
