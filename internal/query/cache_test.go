package query

import (
	"strings"
	"testing"

	"oblivjoin/internal/operators"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/session"
)

func TestSignatureCoversInputDescription(t *testing.T) {
	schema := relation.Schema{Table: "a", Columns: []string{"k", "id"}}
	base := func() string {
		return signature(schema, 100, 256, []operators.Pred{{Column: "k", Op: operators.LE, Value: 5}}, []string{"k"}, "none/b0/e0")
	}
	sig := base()
	if sig != base() {
		t.Fatal("signature is not deterministic")
	}
	variants := []string{
		signature(schema, 101, 256, []operators.Pred{{Column: "k", Op: operators.LE, Value: 5}}, []string{"k"}, "none/b0/e0"),
		signature(schema, 100, 512, []operators.Pred{{Column: "k", Op: operators.LE, Value: 5}}, []string{"k"}, "none/b0/e0"),
		signature(schema, 100, 256, []operators.Pred{{Column: "k", Op: operators.LE, Value: 6}}, []string{"k"}, "none/b0/e0"),
		signature(schema, 100, 256, []operators.Pred{{Column: "k", Op: operators.LT, Value: 5}}, []string{"k"}, "none/b0/e0"),
		signature(schema, 100, 256, []operators.Pred{{Column: "k", Op: operators.LE, Value: 5}}, []string{"id", "k"}, "none/b0/e0"),
		signature(schema, 100, 256, []operators.Pred{{Column: "k", Op: operators.LE, Value: 5}}, []string{"k"}, "cart/b0/e0"),
	}
	seen := map[string]bool{sig: true}
	for i, v := range variants {
		if seen[v] {
			t.Errorf("variant %d collides with an earlier signature", i)
		}
		seen[v] = true
	}
}

func TestCacheStorePrefixIsReserved(t *testing.T) {
	p := cacheStorePrefix("deadbeef01234567")
	if !strings.HasPrefix(p, session.PlanCachePrefix) {
		t.Fatalf("prefix %q does not start with the reserved namespace %q", p, session.PlanCachePrefix)
	}
	// Every store a prepared input provisions must be refused to
	// sessionless/foreign-tenant access by the session layer.
	if !session.Reserved(session.Qualify("tenant", p+"a.data")) {
		t.Fatalf("qualified plan-cache store %q is not in a reserved namespace", session.Qualify("tenant", p+"a.data"))
	}
}

func TestCacheCountsHitsAndMisses(t *testing.T) {
	c := NewCache()
	if _, ok := c.lookup("x"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("x", nil)
	if _, ok := c.lookup("x"); !ok {
		t.Fatal("miss after put")
	}
	s := c.Stats()
	if s.Entries != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 entry, 1 hit, 1 miss", s)
	}
}
