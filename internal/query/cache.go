package query

import (
	"container/list"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"oblivjoin/internal/operators"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/session"
	"oblivjoin/internal/table"
)

// DefaultMaxEntries is the plan cache's default entry cap. Each entry
// retains a full prepared input client-side (plaintext relation, ORAM
// stash, and position-map state), so the cache is bounded: past the cap
// the least-recently-used entry is dropped. See Cache for what eviction
// releases and what it leaves behind.
const DefaultMaxEntries = 64

// Cache holds prepared join inputs — filtered, padded, re-indexed copies of
// base tables — keyed by a keyed-MAC signature of the public input
// description. A hit hands the second query in a session the already
// sorted-and-indexed intermediate, skipping the oblivious filter, the
// compaction sort, and the ORAM re-upload entirely (the dominant costs
// Shafieinejad et al. amortize across query series).
//
// Invalidation: a signature covers the table name, its row count, its
// schema, the block payload, the filter conjunction, the index inventory,
// the padding policy, and the sentinel polarity the query's join kind
// requires of the entry's filler tuples. Base tables are immutable after
// Seal in this system, so an entry can only go stale by the database being
// re-sealed — which builds a fresh Cache.
//
// Concurrency: lookups that miss coalesce singleflight-style — one caller
// builds while every concurrent caller for the same signature waits for
// that build — so two racing queries never provision the same prepared
// input twice or clobber each other's server-side blocks.
//
// Bounding and eviction: the cache keeps at most its entry limit
// (DefaultMaxEntries unless SetLimit overrides it), evicting
// least-recently-used entries. Eviction drops the client-side state; the
// evicted entry's server-side blocks become unreferenced garbage under its
// unique store prefix. Because every build — including a rebuild of an
// evicted signature — provisions stores under a fresh prefix, an evicted
// prepared table still held by an in-flight query keeps reading valid
// blocks, and rebuilds never overwrite a predecessor's stores. Server-side,
// all prefixes live under the reserved session.PlanCachePrefix namespace,
// tenant-qualified by the session layer so two tenants' caches can never
// collide (session.Qualify); unreferenced prefixes can be garbage-collected
// out of band.
type Cache struct {
	mu      sync.Mutex
	key     []byte
	entries map[string]*cacheEntry
	lru     *list.List // of signature strings; front = most recent
	limit   int
	seq     int64 // next build number: filler range + store-prefix uniquifier
	hits    int64
	misses  int64
	evicted int64
}

// cacheEntry is one prepared input, possibly still building. ready is
// closed when the build finishes; st/err are immutable afterwards.
type cacheEntry struct {
	st    *table.StoredTable
	err   error
	done  bool
	ready chan struct{}
	elem  *list.Element
}

// NewCache returns an empty plan cache whose signatures are MACed under
// key. The key must be a client secret (e.g. an HKDF subkey of the
// database keyring): signatures name the prepared inputs' server-visible
// stores, and keying the MAC is what stops an honest-but-curious server
// from brute-forcing filter constants offline against the names it sees.
// A nil or empty key derives a random one — signatures then stay stable
// for this cache's lifetime but differ across restarts.
func NewCache(key []byte) *Cache {
	if len(key) == 0 {
		key = make([]byte, sha256.Size)
		if _, err := rand.Read(key); err != nil {
			panic(fmt.Sprintf("query: reading random cache key: %v", err))
		}
	} else {
		key = append([]byte(nil), key...)
	}
	return &Cache{
		key:     key,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
		limit:   DefaultMaxEntries,
	}
}

// SetLimit caps the cache at n entries, evicting least-recently-used
// entries immediately if it already holds more; n <= 0 removes the bound.
func (c *Cache) SetLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	c.evictLocked()
}

// CacheStats is a point-in-time cache summary.
type CacheStats struct {
	// Entries is the number of cached prepared inputs.
	Entries int
	// Hits and Misses count lookups since the cache was created.
	Hits, Misses int64
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64
}

// Stats returns the cache summary.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses, Evictions: c.evicted}
}

// buildSlot carries the per-build allocations a prepared input needs: a
// sentinel filler key range disjoint from every other build's, and a
// store-name prefix no other build (including a rebuild of the same
// signature after eviction) ever reuses.
type buildSlot struct {
	// FillerBase offsets this build's sentinel filler keys within the
	// reserved extreme of the key domain; successive builds get bases
	// fillerRangeSize apart, so fillers from different prepared inputs can
	// never equi-join with each other regardless of which queries' inputs
	// — cached or fresh — end up joined together.
	FillerBase int64
	// StorePrefix is the reserved-namespace prefix the build provisions
	// its ORAM stores under.
	StorePrefix string
}

// getOrBuild returns the prepared input for sig, building it with build on
// the first request. Concurrent callers for the same signature coalesce:
// exactly one runs build, the rest wait for its result. The bool reports
// whether the table came from the cache (true) or this call's build
// (false). A failed build is not cached; the next caller retries.
func (c *Cache) getOrBuild(sig string, build func(buildSlot) (*table.StoredTable, error)) (*table.StoredTable, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[sig]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false, e.err
		}
		return e.st, true, nil
	}
	c.misses++
	seq := c.seq
	if (seq+1)*fillerRangeSize > fillerHeadroom {
		c.mu.Unlock()
		return nil, false, fmt.Errorf("query: plan cache exhausted its %d sentinel filler ranges", fillerHeadroom/fillerRangeSize)
	}
	c.seq++
	e := &cacheEntry{ready: make(chan struct{})}
	e.elem = c.lru.PushFront(sig)
	c.entries[sig] = e
	c.mu.Unlock()

	st, err := build(buildSlot{
		FillerBase:  seq * fillerRangeSize,
		StorePrefix: cacheStorePrefix(sig, seq),
	})

	c.mu.Lock()
	e.st, e.err, e.done = st, err, true
	if err != nil {
		c.lru.Remove(e.elem)
		delete(c.entries, sig)
	} else {
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	return st, false, err
}

// evictLocked trims the LRU tail down to the entry limit, skipping builds
// still in flight. Callers hold c.mu.
func (c *Cache) evictLocked() {
	if c.limit <= 0 {
		return
	}
	for el := c.lru.Back(); el != nil && c.lru.Len() > c.limit; {
		prev := el.Prev()
		sig := el.Value.(string)
		if e := c.entries[sig]; e != nil && e.done {
			c.lru.Remove(el)
			delete(c.entries, sig)
			c.evicted++
		}
		el = prev
	}
}

// signature derives the cache key for a prepared input: an HMAC-SHA256,
// under the cache's client-secret key, of the canonical public input
// description — including which extreme of the key domain the input's
// sentinel fillers must occupy (sentinelLow), since a band join's low side
// needs different fillers than an equi join over the same filtered table.
// The full 32-byte tag (not the description) also names the intermediate's
// stores, so the server learns only which cached input a query reuses —
// the reuse pattern a cache hit already reveals by skipping the build
// traffic. Keying the MAC keeps the filter constants un-brute-forceable
// from those names, and the full-length tag makes an accidental collision
// between two distinct descriptions cryptographically negligible.
func (c *Cache) signature(schema relation.Schema, baseRows, blockPayload int, filters []operators.Pred, indexAttrs []string, padding string, sentinelLow bool) string {
	var b strings.Builder
	sent := "high"
	if sentinelLow {
		sent = "low"
	}
	fmt.Fprintf(&b, "t=%s|n=%d|bp=%d|cols=%s|pad=%s|idx=%s|sent=%s|f=",
		schema.Table, baseRows, blockPayload, strings.Join(schema.Columns, ","),
		padding, strings.Join(indexAttrs, ","), sent)
	for _, p := range filters {
		fmt.Fprintf(&b, "%s%s%d;", p.Column, p.Op, p.Value)
	}
	mac := hmac.New(sha256.New, c.key)
	mac.Write([]byte(b.String()))
	return hex.EncodeToString(mac.Sum(nil))
}

// cacheStorePrefix is the store-name prefix build number seq of signature
// sig provisions its ORAMs under: the reserved plan-cache namespace, the
// signature, then the build number — unique per build so a rebuild after
// eviction can never clobber blocks an earlier build's holders still read.
func cacheStorePrefix(sig string, seq int64) string {
	return session.PlanCachePrefix + sig + "." + strconv.FormatInt(seq, 10) + "/"
}
