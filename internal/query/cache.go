package query

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"oblivjoin/internal/operators"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/session"
	"oblivjoin/internal/table"
)

// Cache holds prepared join inputs — filtered, padded, re-indexed copies of
// base tables — keyed by a deterministic signature of the public input
// description. A hit hands the second query in a session the already
// sorted-and-indexed intermediate, skipping the oblivious filter, the
// compaction sort, and the ORAM re-upload entirely (the dominant costs
// Shafieinejad et al. amortize across query series).
//
// Invalidation: a signature covers the table name, its row count, its
// schema, the block payload, the filter conjunction, the index inventory,
// and the padding policy. Base tables are immutable after Seal in this
// system, so an entry can only go stale by the database being re-sealed —
// which builds a fresh Cache. Server-side, entries live under the reserved
// session.PlanCachePrefix namespace: durable when the store opener is
// disk- or server-backed, and tenant-qualified by the session layer so two
// tenants' caches can never collide (session.Qualify).
type Cache struct {
	mu      sync.Mutex
	entries map[string]*table.StoredTable
	hits    int64
	misses  int64
}

// NewCache returns an empty plan cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*table.StoredTable)}
}

// CacheStats is a point-in-time cache summary.
type CacheStats struct {
	// Entries is the number of cached prepared inputs.
	Entries int
	// Hits and Misses count lookups since the cache was created.
	Hits, Misses int64
}

// Stats returns the cache summary.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses}
}

// lookup returns the cached prepared input for sig, counting the outcome.
func (c *Cache) lookup(sig string) (*table.StoredTable, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.entries[sig]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return st, ok
}

func (c *Cache) put(sig string, st *table.StoredTable) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[sig] = st
}

// signature derives the cache key for a prepared input: a hash of the
// canonical public input description. The hash (not the description) also
// names the intermediate's stores, so the server learns only which cached
// input a query reuses — the reuse pattern a cache hit already reveals by
// skipping the build traffic — and, by preimage resistance, nothing about
// the filter constants themselves.
func signature(schema relation.Schema, baseRows, blockPayload int, filters []operators.Pred, indexAttrs []string, padding string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%s|n=%d|bp=%d|cols=%s|pad=%s|idx=%s|f=",
		schema.Table, baseRows, blockPayload, strings.Join(schema.Columns, ","),
		padding, strings.Join(indexAttrs, ","))
	for _, p := range filters {
		fmt.Fprintf(&b, "%s%s%d;", p.Column, p.Op, p.Value)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8])
}

// cacheStorePrefix is the store-name prefix a prepared input's ORAMs are
// provisioned under: the reserved plan-cache namespace, then the signature.
func cacheStorePrefix(sig string) string {
	return session.PlanCachePrefix + sig + "/"
}
