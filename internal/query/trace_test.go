package query

import (
	"testing"

	"oblivjoin/internal/core"
	"oblivjoin/internal/operators"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/tracecheck"
)

// TestTraceIdentityAcrossPrivateContents is the planner's end-to-end
// obliviousness check (Definition 1): two databases with different private
// contents — different keys AND different filter selectivities — but
// identical public geometry (row counts, schemas, index inventory, padding
// policy) must produce byte-identical plans and structurally identical
// access traces under a size-hiding padding mode. The physical ORAM indices
// are randomized and deliberately excluded (tracecheck.Structure); store,
// kind, and byte sequences must match op for op, covering pushdown,
// prepared-input upload, the join, and the output read-back.
func TestTraceIdentityAcrossPrivateContents(t *testing.T) {
	// Same geometry: 8 and 4 rows. Different keys; the filter k <= 4 keeps
	// 5 rows of the first database but only 2 of the second.
	dbs := []map[string]*relation.Relation{
		{
			"a": makeRel("a", []int64{1, 2, 2, 3, 4, 6, 7, 9}),
			"b": makeRel("b", []int64{2, 3, 4, 6}),
		},
		{
			"a": makeRel("a", []int64{3, 5, 5, 6, 8, 8, 9, 10}),
			"b": makeRel("b", []int64{5, 8, 10, 11}),
		},
	}
	spec := equiSpec("a", "b")
	spec.Filters = []Filter{{Table: "a", Preds: []operators.Pred{{Column: "k", Op: operators.LE, Value: 4}}}}

	var traces [][]storage.Access
	var explains []string
	var outputs []*Output
	for _, rels := range dbs {
		env := newEnv(t, envConfig{padding: core.PadCartesian, seed: 42}, rels,
			map[string][]string{"a": {"k"}, "b": {"k"}})
		env.meter.Reset()
		env.meter.SetTracing(true)
		out, err := env.ex.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, env.meter.Trace())
		explains = append(explains, out.Plan.Explain())
		outputs = append(outputs, out)
	}

	if explains[0] != explains[1] {
		t.Fatalf("plans differ across private contents:\n--- db1:\n%s--- db2:\n%s", explains[0], explains[1])
	}
	if d := tracecheck.Diff(traces[0], traces[1]); d != "" {
		t.Fatalf("access traces differ across private contents: %s", d)
	}
	// Sanity: the two runs really had different private outcomes.
	if len(outputs[0].Tuples) == len(outputs[1].Tuples) {
		t.Fatalf("test vacuous: both databases produced %d real tuples", len(outputs[0].Tuples))
	}
}

// TestTraceIdentityColdVsColdExplain: planning (which also prepares inputs)
// must itself be trace-identical across contents — Explain leaks no more
// than Run.
func TestTraceIdentityExplain(t *testing.T) {
	dbs := []map[string]*relation.Relation{
		{"a": makeRel("a", []int64{1, 1, 2, 3}), "b": makeRel("b", []int64{1, 4})},
		{"a": makeRel("a", []int64{5, 6, 7, 7}), "b": makeRel("b", []int64{7, 9})},
	}
	spec := equiSpec("a", "b")
	spec.Filters = []Filter{{Table: "a", Preds: []operators.Pred{{Column: "k", Op: operators.GE, Value: 2}}}}

	var traces [][]storage.Access
	for _, rels := range dbs {
		env := newEnv(t, envConfig{padding: core.PadCartesian, seed: 9}, rels,
			map[string][]string{"a": {"k"}, "b": {"k"}})
		env.meter.Reset()
		env.meter.SetTracing(true)
		if _, err := env.ex.Explain(spec); err != nil {
			t.Fatal(err)
		}
		traces = append(traces, env.meter.Trace())
	}
	if d := tracecheck.Diff(traces[0], traces[1]); d != "" {
		t.Fatalf("explain traces differ across private contents: %s", d)
	}
}
