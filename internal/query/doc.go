// Package query is the planning layer above the oblivious operator
// library: a logical query description (Spec — tables, equi-/band-join
// predicates, per-column selections, projection), a cost-based planner
// that enumerates the candidate physical operators (sort-merge, index
// nested-loop, multiway) and prices each with the paper's Theorem 1–4
// retrieval bounds expanded into per-store block-access counts, oblivious
// selection pushdown that filters join inputs under the configured padding
// policy, and a cache of filtered-and-indexed intermediates so a series of
// queries amortizes the dominant build cost (Shafieinejad et al.; see
// DESIGN.md §2.15).
//
// Everything the planner consumes is public metadata: row counts, block
// geometry, index inventories, and the fixed per-access costs of the ORAM
// instances (Catalog). Two databases with identical public geometry
// therefore produce byte-identical plans and — under a size-hiding padding
// mode — byte-identical access traces regardless of private contents,
// which the package's trace-identity test pins.
package query
