package query

import (
	"fmt"
	"math"

	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
	"oblivjoin/internal/operators"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
)

// sentinelFloor bounds the application key domain when pushdown padding is
// active: filler tuples carry join keys near MaxInt64 (or near MinInt64
// for one side of a band join), so real join keys must satisfy
// |key| < 2^62 for fillers to be guaranteed matchless. The executor checks
// this client-side before padding.
const sentinelFloor = int64(1) << 62

// fillerRangeSize is the span of sentinel filler keys one prepared-input
// build may use. The cache hands each build a base offset that is a
// multiple of this (buildSlot.FillerBase), so filler key ranges are
// disjoint across every build the cache ever performs — the property that
// keeps fillers matchless against each other no matter which queries'
// inputs, cached or fresh, end up joined together. (Deriving fillers from
// a table's position within one query's shape is NOT safe: the signature
// deliberately excludes the query shape so inputs can be reused across
// differently-shaped queries.)
const fillerRangeSize = int64(1) << 32

// fillerHeadroom is the total sentinel key space available above the
// checked |key| < 2^62 application domain.
const fillerHeadroom = math.MaxInt64 - sentinelFloor

// Executor binds the planner to a sealed database: the stored base tables,
// the option sets to build prepared inputs and run joins with, and the
// plan cache. The oblivjoin.Database facade constructs one per query.
type Executor struct {
	// Tables are the sealed base tables by name.
	Tables map[string]*table.StoredTable
	// TableOpts builds prepared (filtered) inputs — the same options Seal
	// used, so cached intermediates share block geometry, keyring, and the
	// store opener (and therefore durability) with base tables.
	TableOpts table.Options
	// JoinOpts configures join execution and supplies the padding policy.
	JoinOpts core.Options
	// OpOpts configures the pushdown selection operator.
	OpOpts operators.Options
	// EnableMultiway mirrors the database's index write-back mode.
	EnableMultiway bool
	// Cache holds prepared inputs across queries; required.
	Cache *Cache
}

// Output is a planned query's result.
type Output struct {
	// Plan is the compiled plan that ran.
	Plan *Plan
	// Result is the join's outcome (pre-projection schema and cost).
	Result *core.Result
	// Columns and Tuples are the projected output (all columns when the
	// spec declared no projection).
	Columns []string
	Tuples  []relation.Tuple
	// CacheHits and CacheMisses count this query's prepared-input lookups.
	CacheHits, CacheMisses int
	// PrepareStats is the traffic the pushdown phase consumed (selection
	// scans, compaction sorts, intermediate uploads); zero on full reuse.
	PrepareStats storage.Stats
}

// Plan compiles the spec without running the join. Pushdown still executes
// (the planner prices the join over the prepared inputs' real geometry), so
// explaining a query warms the plan cache for the run that follows.
func (e *Executor) Plan(spec Spec) (*Plan, error) {
	p, _, _, err := e.plan(spec)
	return p, err
}

// Explain compiles the spec and renders the plan.
func (e *Executor) Explain(spec Spec) (string, error) {
	p, err := e.Plan(spec)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Run compiles and executes the spec: pushdown (or cache reuse), cost-based
// operator choice, the oblivious join, and client-side projection.
func (e *Executor) Run(spec Spec) (*Output, error) {
	p, inputs, out, err := e.plan(spec)
	if err != nil {
		return nil, err
	}
	res, err := e.executeJoin(p, inputs)
	if err != nil {
		return nil, err
	}
	out.Plan, out.Result = p, res
	out.Columns, out.Tuples, err = project(res, spec.Project)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// plan validates, prepares inputs (pushdown or cache), and runs the
// cost-based planner over the prepared catalog.
func (e *Executor) plan(spec Spec) (*Plan, map[string]*table.StoredTable, *Output, error) {
	if e.Cache == nil {
		return nil, nil, nil, fmt.Errorf("query: executor needs a Cache")
	}
	if err := spec.validate(func(t string) bool { _, ok := e.Tables[t]; return ok }); err != nil {
		return nil, nil, nil, err
	}
	inputs, inputPlans, out, err := e.prepare(spec)
	if err != nil {
		return nil, nil, nil, err
	}
	po := PlanOptions{
		Padding:        e.JoinOpts.Padding,
		PadBase:        e.JoinOpts.PadBase,
		DPEpsilon:      e.JoinOpts.DPEpsilon,
		EnableMultiway: e.EnableMultiway,
	}
	p, err := planSpec(Describe(inputs), spec, po)
	if err != nil {
		return nil, nil, nil, err
	}
	p.Inputs = inputPlans
	return p, inputs, out, nil
}

// prepare resolves every input table: unfiltered tables are used as sealed,
// filtered tables are obliviously selected, padded to the policy's target
// with matchless sentinel fillers, re-indexed on the spec's join
// attributes, and cached under their public signature.
func (e *Executor) prepare(spec Spec) (map[string]*table.StoredTable, []InputPlan, *Output, error) {
	out := &Output{}
	start := snapshot(e.JoinOpts.Meter)
	inputs := make(map[string]*table.StoredTable, len(spec.Tables))
	plans := make([]InputPlan, 0, len(spec.Tables))
	needSentinels := false
	for _, tbl := range spec.Tables {
		if len(spec.filtersFor(tbl)) > 0 {
			needSentinels = true
		}
	}
	if needSentinels {
		if err := e.checkKeyDomain(spec); err != nil {
			return nil, nil, nil, err
		}
	}
	for _, tbl := range spec.Tables {
		base := e.Tables[tbl]
		filters := spec.filtersFor(tbl)
		ip := InputPlan{Table: tbl, BaseRows: int64(base.NumTuples()), Rows: int64(base.NumTuples())}
		if len(filters) == 0 {
			inputs[tbl] = base
			plans = append(plans, ip)
			continue
		}
		for _, f := range filters {
			ip.Filters = append(ip.Filters, fmt.Sprintf("%s %s %d", f.Column, f.Op, f.Value))
		}
		attrs := spec.joinAttrs(tbl)
		low := spec.sentinelLow(tbl)
		sig := e.Cache.signature(base.Schema(), base.NumTuples(), e.TableOpts.BlockPayload, filters, attrs, e.paddingDesc(), low)
		ip.Signature = sig
		st, hit, err := e.Cache.getOrBuild(sig, func(slot buildSlot) (*table.StoredTable, error) {
			return e.buildInput(base, filters, attrs, slot, low)
		})
		if err != nil {
			return nil, nil, nil, err
		}
		if hit {
			out.CacheHits++
		} else {
			out.CacheMisses++
		}
		ip.Cached = hit
		ip.Rows = int64(st.NumTuples())
		inputs[tbl] = st
		plans = append(plans, ip)
	}
	out.PrepareStats = delta(e.JoinOpts.Meter, start)
	return inputs, plans, out, nil
}

// buildInput runs the oblivious selection under the padding policy and
// stores the filtered relation — real tuples plus matchless sentinel
// fillers up to the padded size — with indexes on the join attributes,
// under the build slot's reserved plan-cache store prefix.
func (e *Executor) buildInput(base *table.StoredTable, filters []operators.Pred, attrs []string, slot buildSlot, low bool) (*table.StoredTable, error) {
	rel := base.Relation()
	n := len(rel.Tuples)
	padTo := func(real int) int {
		return int(e.JoinOpts.PadSize(int64(real), int64(n)))
	}
	res, err := operators.SelectPadded(rel, filters, padTo, e.OpOpts)
	if err != nil {
		return nil, fmt.Errorf("query: pushdown on %s: %w", base.Schema().Table, err)
	}
	if fillers := int64(res.PaddedCount - res.RealCount); fillers > fillerRangeSize {
		return nil, fmt.Errorf("query: %s needs %d fillers, more than the %d a sentinel range holds",
			base.Schema().Table, fillers, fillerRangeSize)
	}
	padded := &relation.Relation{Schema: rel.Schema, Tuples: res.Tuples}
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = rel.Schema.MustCol(a)
	}
	for k := res.RealCount; k < res.PaddedCount; k++ {
		tu := relation.Tuple{Values: make([]int64, len(rel.Schema.Columns))}
		v := sentinelKey(slot.FillerBase, int64(k-res.RealCount), low)
		for i := range attrs {
			tu.Values[cols[i]] = v
		}
		padded.Tuples = append(padded.Tuples, tu)
	}
	topts := e.TableOpts
	topts.StorePrefix = slot.StorePrefix
	st, err := table.Store(padded, attrs, topts)
	if err != nil {
		return nil, fmt.Errorf("query: storing prepared %s: %w", base.Schema().Table, err)
	}
	return st, nil
}

// sentinelKey returns the join-key value of filler row k of a prepared
// input whose cache build slot starts at base. Every filler value lies
// outside the checked |key| < 2^62 application domain, and because the
// cache hands each build a disjoint [base, base+fillerRangeSize) range,
// fillers are unique across all prepared inputs a session ever builds —
// no filler equi-joins with a real tuple or with another filler, cached or
// fresh. The low side of a band join gets the mirrored extreme-low range:
// for left < right, left fillers sit near MaxInt64 (never less than
// anything real) and right fillers near MinInt64 (never greater than
// anything real), and the two extremes cannot satisfy the inequality
// against each other either.
func sentinelKey(base, k int64, low bool) int64 {
	if low {
		return math.MinInt64 + 1 + base + k
	}
	return math.MaxInt64 - base - k
}

// checkKeyDomain verifies every join-attribute value of every input lies
// inside (-2^62, 2^62), the domain the sentinel ranges are disjoint from.
func (e *Executor) checkKeyDomain(spec Spec) error {
	for _, tbl := range spec.Tables {
		rel := e.Tables[tbl].Relation()
		for _, attr := range spec.joinAttrs(tbl) {
			col := rel.Schema.MustCol(attr)
			for _, tu := range rel.Tuples {
				v := tu.Values[col]
				if v >= sentinelFloor || v <= -sentinelFloor {
					return fmt.Errorf("query: %s.%s value %d outside the |key| < 2^62 domain pushdown padding requires", tbl, attr, v)
				}
			}
		}
	}
	return nil
}

// executeJoin dispatches the chosen candidate to the core operator.
func (e *Executor) executeJoin(p *Plan, in map[string]*table.StoredTable) (*core.Result, error) {
	c := p.Best()
	switch c.Kind {
	case OpSMJ:
		return core.SortMergeJoin(in[c.Outer], in[c.Inner], c.OuterAttr, c.InnerAttr, e.JoinOpts)
	case OpINLJ:
		return core.IndexNestedLoopJoin(in[c.Outer], in[c.Inner], c.OuterAttr, c.InnerAttr, e.JoinOpts)
	case OpBand:
		return core.BandJoin(in[c.Outer], in[c.Inner], c.OuterAttr, c.InnerAttr, c.BandOp, e.JoinOpts)
	case OpMultiway:
		tree, err := jointree.Build(jointree.Query{Tables: c.Order, Preds: p.Spec.Preds})
		if err != nil {
			return nil, err
		}
		mi := core.MultiwayInput{Tree: tree, Tables: make([]*table.StoredTable, tree.Len())}
		for i, node := range tree.Order {
			mi.Tables[i] = in[node.Table]
		}
		return core.MultiwayJoin(mi, e.JoinOpts)
	default:
		return nil, fmt.Errorf("query: unknown operator %v", c.Kind)
	}
}

// paddingDesc canonically describes the padding policy for signatures.
func (e *Executor) paddingDesc() string {
	return fmt.Sprintf("%s/b%d/e%g", e.JoinOpts.Padding, e.JoinOpts.PadBase, e.JoinOpts.DPEpsilon)
}

// project keeps the requested output columns (all, when none requested).
// Entries match a qualified "table.column" name exactly, or a bare column
// name when unambiguous. Projection happens on the decoded client-side
// result: no server accesses, nothing new leaks.
func project(res *core.Result, cols []string) ([]string, []relation.Tuple, error) {
	if len(cols) == 0 {
		return res.Schema.Columns, res.Tuples, nil
	}
	idx := make([]int, len(cols))
	names := make([]string, len(cols))
	for i, c := range cols {
		at := -1
		for j, have := range res.Schema.Columns {
			if have == c {
				at = j
				break
			}
		}
		if at < 0 { // bare name: unique suffix match
			for j, have := range res.Schema.Columns {
				if suffixAfterDot(have) == c {
					if at >= 0 {
						return nil, nil, fmt.Errorf("query: projection %q is ambiguous", c)
					}
					at = j
				}
			}
		}
		if at < 0 {
			return nil, nil, fmt.Errorf("query: projection %q matches no output column", c)
		}
		idx[i], names[i] = at, res.Schema.Columns[at]
	}
	tuples := make([]relation.Tuple, len(res.Tuples))
	for i, tu := range res.Tuples {
		vals := make([]int64, len(idx))
		for j, at := range idx {
			vals[j] = tu.Values[at]
		}
		tuples[i] = relation.Tuple{Values: vals}
	}
	return names, tuples, nil
}

func suffixAfterDot(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}

func snapshot(m *storage.Meter) storage.Stats {
	if m == nil {
		return storage.Stats{}
	}
	return m.Snapshot()
}

func delta(m *storage.Meter, start storage.Stats) storage.Stats {
	if m == nil {
		return storage.Stats{}
	}
	return m.Snapshot().Sub(start)
}
