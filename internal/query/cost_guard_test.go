package query

import (
	"testing"

	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
)

// perStoreCounts folds a trace into block-operation counts per store (each
// Access record is one block read or written).
func perStoreCounts(trace []storage.Access) map[string]int64 {
	out := map[string]int64{}
	for _, a := range trace {
		out[a.Store]++
	}
	return out
}

// checkPredicted compares a cost prediction against the measured trace:
// every store the formula prices must match its measured block count
// exactly (the Theorem 1–4 bounds are exact once the result size is fixed,
// and the per-op ORAM costs are deterministic with in-process stores).
// Stores the formula does not price (the output vector) are ignored.
func checkPredicted(t *testing.T, predicted Cost, trace []storage.Access, steps int64) {
	t.Helper()
	if predicted.Steps != steps {
		t.Errorf("predicted %d steps, executed %d", predicted.Steps, steps)
	}
	measured := perStoreCounts(trace)
	for store, want := range predicted.PerStore {
		if got := measured[store]; got != want {
			t.Errorf("store %s: predicted %d block ops, measured %d", store, want, got)
		}
	}
}

// guardEnv builds tables, clears the setup traffic, and turns tracing on.
func guardEnv(t *testing.T, multiway bool, rels map[string]*relation.Relation, idx map[string][]string) *testEnv {
	t.Helper()
	env := newEnv(t, envConfig{multiway: multiway}, rels, idx)
	env.meter.Reset()
	env.meter.SetTracing(true)
	return env
}

// TestPredictedCostSMJ: the Theorem 1 formula evaluated at the actual
// padded result size must equal the Meter's per-store counts exactly.
func TestPredictedCostSMJ(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, 2, 2, 3}),
		"b": makeRel("b", []int64{1, 2, 2, 2}),
	}
	env := guardEnv(t, false, rels, map[string][]string{"a": {"k"}, "b": {"k"}})
	res, err := core.SortMergeJoin(env.ex.Tables["a"], env.ex.Tables["b"], "k", "k", env.ex.JoinOpts)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := smjCost(Describe(env.ex.Tables), "a", "k", "b", "k", int64(res.PaddedCount))
	if err != nil {
		t.Fatal(err)
	}
	checkPredicted(t, cost, env.meter.Trace(), res.PaddedSteps)
}

// TestPredictedCostINLJ: Theorem 2, with the inner's full index descents.
func TestPredictedCostINLJ(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, 2, 2, 3}),
		"b": makeRel("b", []int64{1, 2, 2, 2, 5, 7, 9, 11, 13, 15, 17, 19}),
	}
	env := guardEnv(t, false, rels, map[string][]string{"a": {"k"}, "b": {"k"}})
	res, err := core.IndexNestedLoopJoin(env.ex.Tables["a"], env.ex.Tables["b"], "k", "k", env.ex.JoinOpts)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := inljCost(Describe(env.ex.Tables), "a", "b", "k", int64(res.PaddedCount))
	if err != nil {
		t.Fatal(err)
	}
	checkPredicted(t, cost, env.meter.Trace(), res.PaddedSteps)
}

// TestPredictedCostBand: Theorem 3 shares the INLJ formula.
func TestPredictedCostBand(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, 4, 7}),
		"b": makeRel("b", []int64{2, 5, 6, 8}),
	}
	env := guardEnv(t, false, rels, map[string][]string{"a": {"k"}, "b": {"k"}})
	res, err := core.BandJoin(env.ex.Tables["a"], env.ex.Tables["b"], "k", "k", core.BandLess, env.ex.JoinOpts)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := inljCost(Describe(env.ex.Tables), "a", "b", "k", int64(res.PaddedCount))
	if err != nil {
		t.Fatal(err)
	}
	checkPredicted(t, cost, env.meter.Trace(), res.PaddedSteps)
}

// TestPredictedCostMultiway: Theorem 4 plus the post-query index reset.
func TestPredictedCostMultiway(t *testing.T) {
	rels := map[string]*relation.Relation{
		"a": makeRel("a", []int64{1, 2, 3}),
		"b": makeRel("b", []int64{2, 2, 3, 4}),
		"c": makeRel("c", []int64{3, 3, 2}),
	}
	env := guardEnv(t, true, rels, map[string][]string{"a": {"k"}, "b": {"k"}, "c": {"k"}})
	q := jointree.Query{
		Tables: []string{"a", "b", "c"},
		Preds: []jointree.Pred{
			{Left: "a", LeftAttr: "k", Right: "b", RightAttr: "k"},
			{Left: "b", LeftAttr: "k", Right: "c", RightAttr: "k"},
		},
	}
	tree, err := jointree.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	in := core.MultiwayInput{Tree: tree}
	for _, n := range tree.Order {
		in.Tables = append(in.Tables, env.ex.Tables[n.Table])
	}
	res, err := core.MultiwayJoin(in, env.ex.JoinOpts)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := multiwayCost(Describe(env.ex.Tables), tree, int64(res.PaddedCount))
	if err != nil {
		t.Fatal(err)
	}
	checkPredicted(t, cost, env.meter.Trace(), res.PaddedSteps)
}
