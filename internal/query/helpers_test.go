package query

import (
	"bytes"
	"fmt"
	"testing"

	"oblivjoin/internal/core"
	"oblivjoin/internal/operators"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/xcrypto"
)

func testSealer(t testing.TB) *xcrypto.Sealer {
	t.Helper()
	s, err := xcrypto.NewSealer(bytes.Repeat([]byte{11}, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testEnv is a hand-wired executor over in-process tables: the same wiring
// oblivjoin.Database.executor performs, minus the facade.
type testEnv struct {
	ex    *Executor
	meter *storage.Meter
	rels  map[string]*relation.Relation
}

type envConfig struct {
	padding  core.PaddingMode
	multiway bool
	seed     uint64
}

// newEnv stores each relation with indexes on the given attributes and
// returns an executor sharing one meter across tables, joins, and pushdown.
func newEnv(t testing.TB, cfg envConfig, rels map[string]*relation.Relation, indexAttrs map[string][]string) *testEnv {
	t.Helper()
	m := storage.NewMeter()
	sealer := testSealer(t)
	seed := cfg.seed
	if seed == 0 {
		seed = 7
	}
	topts := table.Options{
		BlockPayload:      256,
		Meter:             m,
		Sealer:            sealer,
		Rand:              oram.NewSeededSource(seed),
		WriteBackDescents: cfg.multiway,
	}
	tables := make(map[string]*table.StoredTable, len(rels))
	for name, rel := range rels {
		st, err := table.Store(rel, indexAttrs[name], topts)
		if err != nil {
			t.Fatalf("storing %s: %v", name, err)
		}
		tables[name] = st
	}
	jopts := core.Options{
		Padding:      cfg.padding,
		Meter:        m,
		Sealer:       sealer,
		OutBlockSize: 256,
	}
	ex := &Executor{
		Tables:         tables,
		TableOpts:      topts,
		JoinOpts:       jopts,
		OpOpts:         operators.Options{BlockSize: 256, Meter: m, Sealer: sealer},
		EnableMultiway: cfg.multiway,
		// A fixed MAC key keeps signatures (and therefore prepared-input
		// store names) identical across envs, which the trace-identity
		// tests compare byte for byte.
		Cache: NewCache(bytes.Repeat([]byte{42}, 32)),
	}
	return &testEnv{ex: ex, meter: m, rels: rels}
}

// makeRel builds a (k, id) relation with the given keys.
func makeRel(name string, keys []int64) *relation.Relation {
	rel := &relation.Relation{Schema: relation.Schema{Table: name, Columns: []string{"k", "id"}}}
	for i, k := range keys {
		rel.Tuples = append(rel.Tuples, relation.Tuple{Values: []int64{k, int64(i)}})
	}
	return rel
}

func multiset(tuples []relation.Tuple) map[string]int {
	m := map[string]int{}
	for _, t := range tuples {
		m[fmt.Sprint(t.Values)]++
	}
	return m
}

func equalMultiset(t *testing.T, got, want []relation.Tuple) {
	t.Helper()
	gm, wm := multiset(got), multiset(want)
	if len(got) != len(want) {
		t.Fatalf("result size mismatch: got %d tuples, want %d", len(got), len(want))
	}
	for k, c := range wm {
		if gm[k] != c {
			t.Fatalf("tuple %s: got %d, want %d", k, gm[k], c)
		}
	}
}

// filterRel applies predicates client-side, for reference results.
func filterRel(rel *relation.Relation, preds []operators.Pred) *relation.Relation {
	out := &relation.Relation{Schema: rel.Schema}
	for _, tu := range rel.Tuples {
		keep := true
		for _, p := range preds {
			if !p.Op.Matches(tu.Values[rel.Schema.MustCol(p.Column)], p.Value) {
				keep = false
				break
			}
		}
		if keep {
			out.Tuples = append(out.Tuples, tu)
		}
	}
	return out
}
