package query

import (
	"fmt"
	"sort"

	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
)

// Cost is a candidate plan's predicted input-side access cost, derived from
// the Theorem 1–4 retrieval bounds and the catalog's fixed per-access ORAM
// costs. It covers the join's input-table traffic only: the output vector
// (write, oblivious filter, decode) costs the same for every candidate at a
// given padded result size, so it cancels out of operator choice and is
// excluded to keep the per-store predictions exactly checkable.
type Cost struct {
	// Steps is the padded join-step count (the theorem bound at the padded
	// result size) — Result.PaddedSteps when the prediction is exact.
	Steps int64
	// ORAMOps is the total number of ORAM accesses across input stores.
	ORAMOps int64
	// Blocks is the total predicted server block operations (reads+writes).
	Blocks int64
	// Rounds is the classic worst-case network rounds: two per ORAM access
	// (one read round, one write-back round). Deferred eviction and dummy
	// coalescing only lower it.
	Rounds int64
	// PerStore maps store name to predicted block operations — the exact
	// counts the predicted-vs-measured guard checks against the Meter's
	// trace, store by store.
	PerStore map[string]int64
}

func (c *Cost) add(store string, oramOps int64, accessesPerOp int) {
	if c.PerStore == nil {
		c.PerStore = make(map[string]int64)
	}
	blocks := oramOps * int64(accessesPerOp)
	c.PerStore[store] += blocks
	c.ORAMOps += oramOps
	c.Blocks += blocks
	c.Rounds += 2 * oramOps
}

// smjCost prices the sort-merge equi-join t1.a1 = t2.a2: Numtr1 = |T1| +
// |T2| + |R̂| + 1 retrievals per table, each one leaf-level index access
// plus one data access (LeafCursor).
func smjCost(cat Catalog, t1, a1, t2, a2 string, paddedR int64) (Cost, error) {
	m1, err := cat.lookup(t1)
	if err != nil {
		return Cost{}, err
	}
	m2, err := cat.lookup(t2)
	if err != nil {
		return Cost{}, err
	}
	i1, ok := m1.Index(a1)
	if !ok {
		return Cost{}, fmt.Errorf("no index on %s.%s", t1, a1)
	}
	i2, ok := m2.Index(a2)
	if !ok {
		return Cost{}, fmt.Errorf("no index on %s.%s", t2, a2)
	}
	n := core.NumtrSortMerge(m1.Rows, m2.Rows, paddedR)
	c := Cost{Steps: n}
	c.add(i1.Store, n, i1.OramAccessesPerOp)
	c.add(m1.DataStore, n, m1.DataAccessesPerOp)
	c.add(i2.Store, n, i2.OramAccessesPerOp)
	c.add(m2.DataStore, n, m2.DataAccessesPerOp)
	return c, nil
}

// inljCost prices the index nested-loop join with the given outer/inner
// roles (equi and band joins share the bound: Numtr = |outer| + |R̂|). Each
// step is one outer data access plus one full index descent
// (AccessesPerRetrieval index accesses) and one data access on the inner.
func inljCost(cat Catalog, outer, inner, innerAttr string, paddedR int64) (Cost, error) {
	mo, err := cat.lookup(outer)
	if err != nil {
		return Cost{}, err
	}
	mi, err := cat.lookup(inner)
	if err != nil {
		return Cost{}, err
	}
	idx, ok := mi.Index(innerAttr)
	if !ok {
		return Cost{}, fmt.Errorf("no index on %s.%s", inner, innerAttr)
	}
	n := core.NumtrINLJ(mo.Rows, paddedR)
	c := Cost{Steps: n}
	c.add(mo.DataStore, n, mo.DataAccessesPerOp)
	c.add(idx.Store, n*int64(idx.AccessesPerRetrieval), idx.OramAccessesPerOp)
	c.add(mi.DataStore, n, mi.DataAccessesPerOp)
	return c, nil
}

// multiwayCost prices the acyclic multiway join over the given join tree:
// Numtr4 = |root| + 2·Σ_{j≥2}|Tj| + |R̂| steps, each retrieving one tuple
// from every table (root by scan, non-roots by index descent), plus the
// post-query Reset pass over every index of every non-root table (one ORAM
// access per non-cached node).
func multiwayCost(cat Catalog, tree *jointree.Tree, paddedR int64) (Cost, error) {
	sizes := make([]int64, tree.Len())
	metas := make([]TableMeta, tree.Len())
	for i, node := range tree.Order {
		m, err := cat.lookup(node.Table)
		if err != nil {
			return Cost{}, err
		}
		metas[i], sizes[i] = m, m.Rows
	}
	n := core.NumtrMultiway(sizes, paddedR)
	c := Cost{Steps: n}
	c.add(metas[0].DataStore, n, metas[0].DataAccessesPerOp)
	for i, node := range tree.Order {
		if i == 0 {
			continue
		}
		idx, ok := metas[i].Index(node.Attr)
		if !ok {
			return Cost{}, fmt.Errorf("no index on %s.%s", node.Table, node.Attr)
		}
		c.add(idx.Store, n*int64(idx.AccessesPerRetrieval), idx.OramAccessesPerOp)
		c.add(metas[i].DataStore, n, metas[i].DataAccessesPerOp)
		// Reset pass: ResetIndexes walks every index of the table.
		for _, im := range sortedIndexes(metas[i]) {
			c.add(im.Store, im.ResetNodes, im.OramAccessesPerOp)
		}
	}
	return c, nil
}

// sortedIndexes returns a table's index metadata in attribute order, so
// cost accumulation (and any float-free arithmetic on it) is deterministic.
func sortedIndexes(m TableMeta) []IndexMeta {
	out := make([]IndexMeta, 0, len(m.Indexes))
	for _, attr := range sortedKeys(m.Indexes) {
		out = append(out, m.Indexes[attr])
	}
	return out
}

func sortedKeys(m map[string]IndexMeta) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
