package query

import (
	"math"
	"strings"
	"testing"

	"oblivjoin/internal/core"
	"oblivjoin/internal/jointree"
)

// synthCatalog builds a catalog by hand: every table costs data=10 blocks
// per ORAM op, every index idx=10 per op with the given descent depth.
func synthCatalog(depth int, rows map[string]int64, indexed map[string][]string) Catalog {
	cat := make(Catalog)
	for name, n := range rows {
		tm := TableMeta{
			Name: name, Rows: n,
			DataAccessesPerOp: 10,
			DataStore:         name + ".data",
			Indexes:           map[string]IndexMeta{},
		}
		for _, attr := range indexed[name] {
			tm.Indexes[attr] = IndexMeta{
				Attr:                 attr,
				AccessesPerRetrieval: depth,
				OramAccessesPerOp:    10,
				ResetNodes:           n,
				Store:                name + ".idx." + attr,
			}
		}
		cat[name] = tm
	}
	return cat
}

func equiSpec(t1, t2 string) Spec {
	return Spec{
		Tables: []string{t1, t2},
		Preds:  []jointree.Pred{{Left: t1, LeftAttr: "k", Right: t2, RightAttr: "k"}},
	}
}

// TestOperatorChoiceCrossover pins the SMJ/INLJ crossover on index depth:
// with equal table sizes, a shallow index (Δ=2) makes INLJ cheaper
// (Numtr2 = t+R̂ steps at Δ+2 ops each beats Numtr1 = 2t+R̂+1 at 2 ops per
// table), while a deep index (Δ=6) tips the choice back to SMJ, whose
// leaf-level cursors never pay the descent.
func TestOperatorChoiceCrossover(t *testing.T) {
	rows := map[string]int64{"a": 1000, "b": 1000}
	idx := map[string][]string{"a": {"k"}, "b": {"k"}}
	spec := equiSpec("a", "b")
	spec.EstimatedResult = 1000

	for _, tc := range []struct {
		depth int
		want  OpKind
	}{
		{depth: 2, want: OpINLJ},
		{depth: 6, want: OpSMJ},
	} {
		p, err := planSpec(synthCatalog(tc.depth, rows, idx), spec, PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Best().Kind; got != tc.want {
			t.Errorf("depth %d: chose %s, want %s\n%s", tc.depth, got, tc.want, p.Explain())
		}
	}
}

// TestINLJOrientation: with one tiny and one huge table, the planner must
// scan the tiny table as the outer (Numtr2 grows with the outer size only).
func TestINLJOrientation(t *testing.T) {
	rows := map[string]int64{"tiny": 10, "huge": 100000}
	idx := map[string][]string{"tiny": {"k"}, "huge": {"k"}}
	spec := equiSpec("huge", "tiny") // spec lists huge first; planner must flip
	spec.EstimatedResult = 10

	p, err := planSpec(synthCatalog(3, rows, idx), spec, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	best := p.Best()
	if best.Kind != OpINLJ || best.Outer != "tiny" {
		t.Fatalf("chose %s outer=%s, want inlj outer=tiny\n%s", best.Kind, best.Outer, p.Explain())
	}
}

// TestChosenIsArgmin: whatever the geometry, the chosen candidate must be
// block-minimal among viable ones.
func TestChosenIsArgmin(t *testing.T) {
	rows := map[string]int64{"a": 64, "b": 640, "c": 6400}
	idx := map[string][]string{"a": {"k", "j"}, "b": {"k", "j"}, "c": {"k", "j"}}
	spec := Spec{
		Tables: []string{"a", "b", "c"},
		Preds: []jointree.Pred{
			{Left: "a", LeftAttr: "k", Right: "b", RightAttr: "k"},
			{Left: "b", LeftAttr: "j", Right: "c", RightAttr: "j"},
		},
		EstimatedResult: 6400,
	}
	p, err := planSpec(synthCatalog(3, rows, idx), spec, PlanOptions{EnableMultiway: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Candidates) != 3 { // one multiway candidate per root
		t.Fatalf("expected 3 root candidates, got %d", len(p.Candidates))
	}
	best := p.Best()
	for _, c := range p.Candidates {
		if c.Viable && c.Cost.Blocks < best.Cost.Blocks {
			t.Fatalf("chose %s (%d blocks) but %s costs %d", best.Desc, best.Cost.Blocks, c.Desc, c.Cost.Blocks)
		}
	}
}

// TestMultiwayNeedsEnable: without EnableMultiway every multiway candidate
// is non-viable and planning a 3-table query fails with the reasons listed.
func TestMultiwayNeedsEnable(t *testing.T) {
	rows := map[string]int64{"a": 4, "b": 4, "c": 4}
	idx := map[string][]string{"a": {"k", "j"}, "b": {"k", "j"}, "c": {"k", "j"}}
	spec := Spec{
		Tables: []string{"a", "b", "c"},
		Preds: []jointree.Pred{
			{Left: "a", LeftAttr: "k", Right: "b", RightAttr: "k"},
			{Left: "b", LeftAttr: "j", Right: "c", RightAttr: "j"},
		},
	}
	_, err := planSpec(synthCatalog(3, rows, idx), spec, PlanOptions{})
	if err == nil || !strings.Contains(err.Error(), "EnableMultiway") {
		t.Fatalf("want EnableMultiway failure, got %v", err)
	}
}

// TestMissingIndexFallsBack: with no index on one side, the INLJ
// orientation probing it is non-viable, but the other orientation (and SMJ
// when both leaf levels exist) still plans.
func TestMissingIndexFallsBack(t *testing.T) {
	rows := map[string]int64{"a": 100, "b": 100}
	idx := map[string][]string{"a": {"k"}} // b unindexed
	spec := equiSpec("a", "b")
	p, err := planSpec(synthCatalog(3, rows, idx), spec, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	best := p.Best()
	if best.Kind != OpINLJ || best.Inner != "a" {
		t.Fatalf("want inlj probing a (the only index), got %s inner=%s", best.Kind, best.Inner)
	}
	viable := 0
	for _, c := range p.Candidates {
		if c.Viable {
			viable++
		}
	}
	if viable != 1 {
		t.Fatalf("want exactly 1 viable candidate, got %d\n%s", viable, p.Explain())
	}
}

func TestEstimateHeuristics(t *testing.T) {
	eq := equiSpec("a", "b")
	if got := estimateResult(eq, []int64{10, 400}, 4000); got != 400 {
		t.Errorf("equi estimate %d, want max size 400", got)
	}
	band := Spec{Tables: []string{"a", "b"}, Band: &Band{Left: "a", LeftAttr: "k", Op: core.BandLess, Right: "b", RightAttr: "k"}}
	if got := estimateResult(band, []int64{10, 400}, 4000); got != 2000 {
		t.Errorf("band estimate %d, want cart/2 = 2000", got)
	}
}

func TestPlannedPad(t *testing.T) {
	cases := []struct {
		po   PlanOptions
		est  int64
		cart int64
		want int64
	}{
		{PlanOptions{Padding: core.PadNone}, 5, 100, 5},
		{PlanOptions{Padding: core.PadClosestPower}, 5, 100, 8},
		{PlanOptions{Padding: core.PadClosestPower, PadBase: 10}, 5, 100, 10},
		{PlanOptions{Padding: core.PadCartesian}, 5, 100, 100},
		{PlanOptions{Padding: core.PadDP, DPEpsilon: 0.5}, 5, 100, 8}, // 5 + ceil(1/0.5) + 1
		{PlanOptions{Padding: core.PadClosestPower}, 90, 100, 100},    // capped at cart
	}
	for i, c := range cases {
		if got := plannedPad(c.po, c.est, c.cart); got != c.want {
			t.Errorf("case %d: plannedPad = %d, want %d", i, got, c.want)
		}
	}
}

func TestSaturatingProduct(t *testing.T) {
	if got := saturatingProduct([]int64{1 << 40, 1 << 40}); got != math.MaxInt64 {
		t.Errorf("overflow product = %d, want MaxInt64", got)
	}
	if got := saturatingProduct([]int64{3, 4}); got != 12 {
		t.Errorf("product = %d, want 12", got)
	}
}

// TestExplainDeterministic: the same catalog and spec must render the same
// plan text, twice in one process and across candidate maps.
func TestExplainDeterministic(t *testing.T) {
	rows := map[string]int64{"a": 100, "b": 200}
	idx := map[string][]string{"a": {"k"}, "b": {"k"}}
	spec := equiSpec("a", "b")
	var prev string
	for i := 0; i < 5; i++ {
		p, err := planSpec(synthCatalog(3, rows, idx), spec, PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s := p.Explain()
		if i > 0 && s != prev {
			t.Fatalf("explain output changed between runs:\n%s\nvs\n%s", prev, s)
		}
		prev = s
	}
	for _, want := range []string{"query:", "plan:", "candidates:", "predicted:"} {
		if !strings.Contains(prev, want) {
			t.Errorf("explain output missing %q:\n%s", want, prev)
		}
	}
}
