package shard

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"oblivjoin/internal/remote"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/storage/storetest"
)

// memOpeners builds n in-process shard backends, each reporting to the
// corresponding meter (which may be nil).
func memOpeners(n int, meters []*storage.Meter) []storage.Opener {
	openers := make([]storage.Opener, n)
	for s := 0; s < n; s++ {
		var m *storage.Meter
		if meters != nil {
			m = meters[s]
		}
		s := s
		openers[s] = func(name string, slots int64, blockSize int) (storage.Store, error) {
			return storage.NewMemStore(fmt.Sprintf("%s@%d", name, s), slots, blockSize, m), nil
		}
	}
	return openers
}

func TestPartitionFunction(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		for _, slots := range []int64{0, 1, 2, 5, 8, 63, 64, 100} {
			var sum int64
			for s := 0; s < n; s++ {
				sum += LocalSlots(slots, s, n)
			}
			if sum != slots {
				t.Fatalf("LocalSlots over %d shards sums to %d, want %d", n, sum, slots)
			}
			// Every global index maps into its shard's slot range, injectively.
			seen := map[[2]int64]bool{}
			for i := int64(0); i < slots; i++ {
				s, li := ShardOf(i, n), LocalIndex(i, n)
				if li < 0 || li >= LocalSlots(slots, s, n) {
					t.Fatalf("index %d of %d: local %d outside shard %d's %d slots",
						i, slots, li, s, LocalSlots(slots, s, n))
				}
				key := [2]int64{int64(s), li}
				if seen[key] {
					t.Fatalf("index %d of %d: shard %d slot %d already taken", i, slots, s, li)
				}
				seen[key] = true
			}
		}
	}
}

// TestRouterBatchContractMem runs the shared backend conformance suite
// against routers over 1, 2, and 3 in-process shards: striping must not
// change duplicate-index ordering, exchange read-after-write, or
// ErrOutOfRange wrapping.
func TestRouterBatchContractMem(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		pool, err := NewPool(memOpeners(n, nil), nil)
		if err != nil {
			t.Fatal(err)
		}
		open := pool.Opener()
		k := 0
		storetest.TestBatchContract(t, fmt.Sprintf("router-%dshard", n),
			func(t *testing.T, slots int64, blockSize int) storage.BatchStore {
				k++
				st, err := open(fmt.Sprintf("contract%d", k), slots, blockSize)
				if err != nil {
					t.Fatal(err)
				}
				return st.(storage.BatchStore)
			})
	}
}

// TestRouterBatchContractRemote runs the conformance suite against a
// router fanning out to two real loopback servers over per-shard tenant
// sessions, while a rival session on each server hammers its own store
// through the same broker — the sharded version of the PR 6 contended
// conformance run.
func TestRouterBatchContractRemote(t *testing.T) {
	addrs := make([]string, 2)
	for s := range addrs {
		srv := remote.NewServer(remote.ServerOptions{MaxSessions: 4})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[s] = addr.String()
	}
	pool, err := DialPool(addrs, remote.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	if err := pool.StartSessions("tenant-a", time.Minute); err != nil {
		t.Fatal(err)
	}

	// Rival tenants: one per server, writing their own stores in a loop so
	// the router's sub-batches contend with a live foreign session at each
	// shard's broker for the duration of the suite.
	stop := make(chan struct{})
	done := make(chan struct{}, len(addrs))
	for s, addr := range addrs {
		c, err := remote.Dial(remote.ClientOptions{Addr: addr})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if err := c.StartSession(fmt.Sprintf("rival%d", s), time.Minute); err != nil {
			t.Fatal(err)
		}
		st, err := c.Create("noise", 8, 32)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			defer func() { done <- struct{}{} }()
			blk := bytes.Repeat([]byte{0x5A}, 32)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := st.WriteMany([]int64{int64(i % 8), int64((i + 3) % 8)}, [][]byte{blk, blk}); err != nil {
					return
				}
			}
		}()
	}
	t.Cleanup(func() {
		close(stop)
		for range addrs {
			<-done
		}
	})

	open := pool.Opener()
	k := 0
	storetest.TestBatchContract(t, "router-remote",
		func(t *testing.T, slots int64, blockSize int) storage.BatchStore {
			k++
			st, err := open(fmt.Sprintf("contract%d", k), slots, blockSize)
			if err != nil {
				t.Fatal(err)
			}
			return st.(storage.BatchStore)
		})
}

// faultStore wraps a MemStore: while fail is set, every mutating batch op
// returns an error WITHOUT applying anything — the same whole-batch-
// validation semantics every real backend has, standing in for a shard
// whose transport died mid-fan-out. writes counts batches that were
// actually applied.
type faultStore struct {
	*storage.MemStore
	fail   atomic.Bool
	writes atomic.Int64
}

func (f *faultStore) WriteMany(idxs []int64, data [][]byte) error {
	if f.fail.Load() {
		return errors.New("injected shard failure")
	}
	if err := f.MemStore.WriteMany(idxs, data); err != nil {
		return err
	}
	if len(idxs) > 0 {
		f.writes.Add(1)
	}
	return nil
}

func (f *faultStore) Exchange(writeIdxs []int64, writeData [][]byte, readIdxs []int64) ([][]byte, error) {
	if f.fail.Load() {
		return nil, errors.New("injected shard failure")
	}
	out, err := f.MemStore.Exchange(writeIdxs, writeData, readIdxs)
	if err != nil {
		return nil, err
	}
	if len(writeIdxs) > 0 {
		f.writes.Add(1)
	}
	return out, nil
}

// TestPartialShardFailure pins the failure-atomicity story: a fan-out that
// fails on one shard leaves that shard byte-identical to its pre-batch
// state, meters no logical round, and succeeds verbatim on retry; a batch
// that fails validation touches no shard at all.
func TestPartialShardFailure(t *testing.T) {
	const slots, bs = 8, 16
	mk := func(s int) *faultStore {
		return &faultStore{MemStore: storage.NewMemStore(fmt.Sprintf("t@%d", s), LocalSlots(slots, s, 2), bs, nil)}
	}
	f0, f1 := mk(0), mk(1)
	m := storage.NewMeter()
	r, err := New(RouterConfig{Name: "t", Slots: slots, BlockSize: bs,
		Subs: []storage.BatchStore{f0, f1}, Meter: m})
	if err != nil {
		t.Fatal(err)
	}

	blk := func(fill byte) []byte { return bytes.Repeat([]byte{fill}, bs) }
	if err := r.WriteMany([]int64{0, 1, 2, 3}, [][]byte{blk(1), blk(1), blk(1), blk(1)}); err != nil {
		t.Fatal(err)
	}
	base := m.Snapshot()

	snapshot := func(f *faultStore) [][]byte {
		out := make([][]byte, f.Len())
		for i := range out {
			out[i], _ = f.MemStore.Read(int64(i))
		}
		return out
	}
	before1 := snapshot(f1)

	// Shard 1 dies mid-fan-out: the router must report it, shard 1 must be
	// untouched (no partial commit), and the logical round must not count.
	f1.fail.Store(true)
	batch := []int64{0, 1, 2, 3}
	data := [][]byte{blk(9), blk(9), blk(9), blk(9)}
	err = r.WriteMany(batch, data)
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("failed fan-out: got %v, want an error naming shard 1", err)
	}
	for i, blkNow := range snapshot(f1) {
		if !bytes.Equal(blkNow, before1[i]) {
			t.Fatalf("failed shard committed slot %d despite the error", i)
		}
	}
	if got := m.Snapshot().Sub(base).NetworkRounds; got != 0 {
		t.Fatalf("failed batch metered %d rounds, want 0", got)
	}

	// Retry after the fault clears: absolute indices + absolute contents
	// make the re-issued batch converge to the intended state even though
	// shard 0 already committed its half.
	f1.fail.Store(false)
	if err := r.WriteMany(batch, data); err != nil {
		t.Fatalf("retry: %v", err)
	}
	for _, i := range batch {
		got, err := r.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 9 {
			t.Fatalf("slot %d fill %#x after retry, want 0x09", i, got[0])
		}
	}

	// A batch that fails validation (index out of range) must touch NO
	// shard: validate-before-fan-out.
	w0, w1 := f0.writes.Load(), f1.writes.Load()
	err = r.WriteMany([]int64{0, 99}, [][]byte{blk(7), blk(7)})
	if !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("out-of-range batch: %v", err)
	}
	if f0.writes.Load() != w0 || f1.writes.Load() != w1 {
		t.Fatal("a batch that failed validation reached a shard")
	}
	// Same for a failed exchange: the failing shard applies nothing.
	f1.fail.Store(true)
	if _, err := r.Exchange([]int64{1, 2}, [][]byte{blk(5), blk(5)}, []int64{0}); err == nil {
		t.Fatal("exchange with a dead shard succeeded")
	}
	if f1.writes.Load() != w1 {
		t.Fatal("failed exchange committed on the dead shard")
	}
}

// TestRouterOneLogicalRound pins the metering contract: a batch spanning
// every shard is ONE network round carrying the GLOBAL indices, exactly
// what the unsharded store would report.
func TestRouterOneLogicalRound(t *testing.T) {
	m := storage.NewMeter()
	m.SetTracing(true)
	pool, err := NewPool(memOpeners(4, nil), m)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pool.Opener()("tree", 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	r := st.(*Router)
	idxs := []int64{0, 5, 10, 15, 3}
	data := make([][]byte, len(idxs))
	for i := range data {
		data[i] = bytes.Repeat([]byte{byte(i)}, 32)
	}
	if err := r.WriteMany(idxs, data); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadMany(idxs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exchange(idxs[:2], data[:2], idxs[2:]); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.NetworkRounds != 3 {
		t.Fatalf("3 logical batches metered as %d rounds, want 3", s.NetworkRounds)
	}
	for _, a := range m.Trace() {
		if a.Store != "tree" {
			t.Fatalf("trace names store %q, want the logical name", a.Store)
		}
	}
	// Read-back merges positions correctly across the fan-out.
	got, err := r.ReadMany(idxs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range idxs {
		want := byte(i)
		if i < 2 {
			// positions 0,1 were rewritten by the exchange with the same data
			want = byte(i)
		}
		if got[i][0] != want {
			t.Fatalf("position %d fill %#x, want %#x", i, got[i][0], want)
		}
	}
	// Per-shard counters saw every shard.
	for s, st := range pool.Stats() {
		if st.Batches == 0 || st.Blocks == 0 {
			t.Fatalf("shard %d saw no traffic: %+v", s, st)
		}
	}
	var buf bytes.Buffer
	pool.WriteMetrics(&buf)
	for _, want := range []string{"ojoin_shard_count 4", "ojoin_shard_batches_total", "ojoin_shard_blocks_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRouterGeometryValidation pins constructor checks.
func TestRouterGeometryValidation(t *testing.T) {
	mem := func(slots int64, bs int) storage.BatchStore {
		return storage.NewMemStore("x", slots, bs, nil)
	}
	if _, err := New(RouterConfig{Name: "x", Slots: 8, BlockSize: 16}); err == nil {
		t.Fatal("router with no shards built")
	}
	if _, err := New(RouterConfig{Name: "x", Slots: 8, BlockSize: 16,
		Subs: []storage.BatchStore{mem(4, 16), mem(3, 16)}}); err == nil {
		t.Fatal("router with wrong striped slot counts built")
	}
	if _, err := New(RouterConfig{Name: "x", Slots: 8, BlockSize: 16,
		Subs: []storage.BatchStore{mem(4, 16), mem(4, 8)}}); err == nil {
		t.Fatal("router with mismatched block sizes built")
	}
	if _, err := New(RouterConfig{Name: "x", Slots: 8, BlockSize: 16,
		Subs: []storage.BatchStore{mem(4, 16), mem(4, 16)}}); err != nil {
		t.Fatalf("valid router rejected: %v", err)
	}
}
