package shard

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"oblivjoin/internal/remote"
	"oblivjoin/internal/storage"
)

// Stat is one shard's cumulative fan-out traffic across every store of a
// Pool: how many sub-batches it was sent and how many blocks they carried.
// These are the quantities shard s observes on its own wire — a projection
// of the global (already-public) schedule, so exposing them leaks nothing
// beyond Definition 1.
type Stat struct {
	Addr    string `json:"addr,omitempty"`
	Batches int64  `json:"batches"`
	Blocks  int64  `json:"blocks"`
}

// Stats holds per-shard fan-out counters, shared by every Router a Pool
// opens. Safe for concurrent use.
type Stats struct {
	batches []atomic.Int64
	blocks  []atomic.Int64
}

// NewStats allocates counters for n shards.
func NewStats(n int) *Stats {
	return &Stats{batches: make([]atomic.Int64, n), blocks: make([]atomic.Int64, n)}
}

// Shards returns the shard count the counters cover.
func (s *Stats) Shards() int { return len(s.batches) }

func (s *Stats) add(shard, blocks int) {
	s.batches[shard].Add(1)
	s.blocks[shard].Add(int64(blocks))
}

// Snapshot returns one Stat per shard.
func (s *Stats) Snapshot() []Stat {
	out := make([]Stat, len(s.batches))
	for i := range out {
		out[i] = Stat{Batches: s.batches[i].Load(), Blocks: s.blocks[i].Load()}
	}
	return out
}

// Reset zeroes every counter (benchmarks reset after setup, mirroring
// Meter.Reset: upload traffic is not query cost).
func (s *Stats) Reset() {
	for i := range s.batches {
		s.batches[i].Store(0)
		s.blocks[i].Store(0)
	}
}

// Pool owns one transport per shard and provisions logical stores over
// them: Opener returns Routers whose sub-stores are created under the same
// name, with the striped share of the slots, on every shard.
type Pool struct {
	openers []storage.Opener
	clients []*remote.Client // non-nil only for DialPool pools
	addrs   []string
	meter   *storage.Meter
	stats   *Stats
}

// NewPool builds a pool over arbitrary per-shard backends (one opener per
// shard — in-process stores in tests, remote clients in production). The
// meter receives the logical one-round-per-batch accounting for every
// store the pool opens; the per-shard backends must not meter themselves.
func NewPool(openers []storage.Opener, meter *storage.Meter) (*Pool, error) {
	if len(openers) == 0 {
		return nil, fmt.Errorf("shard: pool needs at least one shard")
	}
	return &Pool{openers: openers, meter: meter, stats: NewStats(len(openers))}, nil
}

// DialPool connects one remote client per address. opts.Addr is taken from
// addrs, and opts.Meter becomes the pool's LOGICAL meter (the per-shard
// clients are dialed meterless — the Router accounts each fanned-out batch
// as one round with global indices, which is the whole point).
func DialPool(addrs []string, opts remote.ClientOptions) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("shard: pool needs at least one shard address")
	}
	meter := opts.Meter
	opts.Meter = nil
	p := &Pool{meter: meter, stats: NewStats(len(addrs)), addrs: addrs}
	for _, addr := range addrs {
		o := opts
		o.Addr = addr
		c, err := remote.Dial(o)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("shard: dialing %s: %w", addr, err)
		}
		p.clients = append(p.clients, c)
		p.openers = append(p.openers, c.Opener())
	}
	return p, nil
}

// Shards returns the shard count.
func (p *Pool) Shards() int { return len(p.openers) }

// Addrs returns the dialed addresses (nil for NewPool pools).
func (p *Pool) Addrs() []string { return p.addrs }

// Clients returns the per-shard remote clients (nil for NewPool pools).
func (p *Pool) Clients() []*remote.Client { return p.clients }

// Stats returns the per-shard fan-out counters, with addresses filled in
// when the pool was dialed.
func (p *Pool) Stats() []Stat {
	out := p.stats.Snapshot()
	for i := range out {
		if i < len(p.addrs) {
			out[i].Addr = p.addrs[i]
		}
	}
	return out
}

// ResetStats zeroes the per-shard counters.
func (p *Pool) ResetStats() { p.stats.Reset() }

// Opener returns a storage.Opener that provisions every named store as a
// Router over all shards — the drop-in backend for table.Options,
// oram.PathConfig, and the access scheduler above them.
func (p *Pool) Opener() storage.Opener {
	return func(name string, slots int64, blockSize int) (storage.Store, error) {
		subs := make([]storage.BatchStore, len(p.openers))
		for s, open := range p.openers {
			st, err := open(name, LocalSlots(slots, s, len(p.openers)), blockSize)
			if err != nil {
				return nil, fmt.Errorf("shard %d: opening %q: %w", s, name, err)
			}
			b, ok := st.(storage.BatchStore)
			if !ok {
				return nil, fmt.Errorf("shard %d: store %q does not support batches", s, name)
			}
			subs[s] = b
		}
		return New(RouterConfig{
			Name: name, Slots: slots, BlockSize: blockSize,
			Subs: subs, Meter: p.meter, Stats: p.stats,
		})
	}
}

// StartSessions opens one tenant session per shard server (DialPool pools
// only), so the striped sub-stores live in the tenant's namespace on every
// shard. Sessions are independent per server; a saturated shard reports
// remote.ErrBusy like any other.
func (p *Pool) StartSessions(tenant string, idle time.Duration) error {
	for s, c := range p.clients {
		if err := c.StartSession(tenant, idle); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return nil
}

// Close releases every per-shard client (ending their sessions). NewPool
// pools have nothing to release.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WriteMetrics renders the per-shard counters in the Prometheus text
// exposition format under the ojoin_shard_* namespace (the client-side
// counterpart of ojoinserver's ojoin_store_* metrics).
func (p *Pool) WriteMetrics(w io.Writer) {
	stats := p.Stats()
	fmt.Fprintf(w, "# HELP ojoin_shard_count Shards the router fans out to.\n# TYPE ojoin_shard_count gauge\n")
	fmt.Fprintf(w, "ojoin_shard_count %d\n", len(stats))
	fmt.Fprintf(w, "# HELP ojoin_shard_batches_total Sub-batches sent to the shard.\n# TYPE ojoin_shard_batches_total counter\n")
	for s, st := range stats {
		fmt.Fprintf(w, "ojoin_shard_batches_total{shard=\"%d\",addr=%q} %d\n", s, st.Addr, st.Batches)
	}
	fmt.Fprintf(w, "# HELP ojoin_shard_blocks_total Blocks carried by those sub-batches.\n# TYPE ojoin_shard_blocks_total counter\n")
	for s, st := range stats {
		fmt.Fprintf(w, "ojoin_shard_blocks_total{shard=\"%d\",addr=%q} %d\n", s, st.Addr, st.Blocks)
	}
}
