package shard

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"oblivjoin/internal/remote"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/telemetry"
)

// Stat is one shard's cumulative fan-out traffic across every store of a
// Pool: how many sub-batches it was sent, how many blocks they carried,
// and how long the sub-calls took (quantiles over the per-shard latency
// histogram). These are the quantities shard s observes on its own wire —
// a projection of the global (already-public) schedule plus timing the
// untrusted shard controls anyway, so exposing them leaks nothing beyond
// Definition 1.
type Stat struct {
	Addr    string `json:"addr,omitempty"`
	Batches int64  `json:"batches"`
	Blocks  int64  `json:"blocks"`
	// Sub-call latency quantiles in milliseconds (0 when no batches yet).
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// Stats holds per-shard fan-out counters and latency histograms, shared
// by every Router a Pool opens. Safe for concurrent use.
type Stats struct {
	batches []atomic.Int64
	blocks  []atomic.Int64
	hists   []*telemetry.Histogram
}

// NewStats allocates counters for n shards.
func NewStats(n int) *Stats {
	s := &Stats{
		batches: make([]atomic.Int64, n),
		blocks:  make([]atomic.Int64, n),
		hists:   make([]*telemetry.Histogram, n),
	}
	for i := range s.hists {
		s.hists[i] = telemetry.NewHistogram()
	}
	return s
}

// Shards returns the shard count the counters cover.
func (s *Stats) Shards() int { return len(s.batches) }

func (s *Stats) add(shard, blocks int, d time.Duration) {
	s.batches[shard].Add(1)
	s.blocks[shard].Add(int64(blocks))
	s.hists[shard].Observe(d)
}

// Histogram returns shard s's sub-call latency snapshot.
func (s *Stats) Histogram(shard int) telemetry.HistogramSnapshot {
	return s.hists[shard].Snapshot()
}

const msPerNS = 1e-6

// Snapshot returns one Stat per shard, quantiles included.
func (s *Stats) Snapshot() []Stat {
	out := make([]Stat, len(s.batches))
	for i := range out {
		h := s.hists[i].Snapshot()
		out[i] = Stat{
			Batches: s.batches[i].Load(),
			Blocks:  s.blocks[i].Load(),
			P50MS:   float64(h.Quantile(0.50)) * msPerNS,
			P95MS:   float64(h.Quantile(0.95)) * msPerNS,
			P99MS:   float64(h.Quantile(0.99)) * msPerNS,
			MeanMS:  float64(h.Mean()) * msPerNS,
		}
	}
	return out
}

// Skew returns the max/mean ratio of per-shard block counts — 1.0 is a
// perfectly balanced stripe, higher means one shard carries dispropor-
// tionate traffic. Returns 0 when no blocks have moved.
func Skew(stats []Stat) float64 {
	var total, max int64
	for _, st := range stats {
		total += st.Blocks
		if st.Blocks > max {
			max = st.Blocks
		}
	}
	if total == 0 || len(stats) == 0 {
		return 0
	}
	mean := float64(total) / float64(len(stats))
	return float64(max) / mean
}

// Reset zeroes every counter and histogram (benchmarks reset after setup,
// mirroring Meter.Reset: upload traffic is not query cost).
func (s *Stats) Reset() {
	for i := range s.batches {
		s.batches[i].Store(0)
		s.blocks[i].Store(0)
		s.hists[i].Reset()
	}
}

// Pool owns one transport per shard and provisions logical stores over
// them: Opener returns Routers whose sub-stores are created under the same
// name, with the striped share of the slots, on every shard.
type Pool struct {
	openers []storage.Opener
	clients []*remote.Client // non-nil only for DialPool pools
	addrs   []string
	meter   *storage.Meter
	stats   *Stats
}

// NewPool builds a pool over arbitrary per-shard backends (one opener per
// shard — in-process stores in tests, remote clients in production). The
// meter receives the logical one-round-per-batch accounting for every
// store the pool opens; the per-shard backends must not meter themselves.
func NewPool(openers []storage.Opener, meter *storage.Meter) (*Pool, error) {
	if len(openers) == 0 {
		return nil, fmt.Errorf("shard: pool needs at least one shard")
	}
	return &Pool{openers: openers, meter: meter, stats: NewStats(len(openers))}, nil
}

// DialPool connects one remote client per address. opts.Addr is taken from
// addrs, and opts.Meter becomes the pool's LOGICAL meter (the per-shard
// clients are dialed meterless — the Router accounts each fanned-out batch
// as one round with global indices, which is the whole point).
func DialPool(addrs []string, opts remote.ClientOptions) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("shard: pool needs at least one shard address")
	}
	meter := opts.Meter
	opts.Meter = nil
	p := &Pool{meter: meter, stats: NewStats(len(addrs)), addrs: addrs}
	for _, addr := range addrs {
		o := opts
		o.Addr = addr
		c, err := remote.Dial(o)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("shard: dialing %s: %w", addr, err)
		}
		p.clients = append(p.clients, c)
		p.openers = append(p.openers, c.Opener())
	}
	return p, nil
}

// Shards returns the shard count.
func (p *Pool) Shards() int { return len(p.openers) }

// Addrs returns the dialed addresses (nil for NewPool pools).
func (p *Pool) Addrs() []string { return p.addrs }

// Clients returns the per-shard remote clients (nil for NewPool pools).
func (p *Pool) Clients() []*remote.Client { return p.clients }

// Stats returns the per-shard fan-out counters, with addresses filled in
// when the pool was dialed.
func (p *Pool) Stats() []Stat {
	out := p.stats.Snapshot()
	for i := range out {
		if i < len(p.addrs) {
			out[i].Addr = p.addrs[i]
		}
	}
	return out
}

// ResetStats zeroes the per-shard counters.
func (p *Pool) ResetStats() { p.stats.Reset() }

// Opener returns a storage.Opener that provisions every named store as a
// Router over all shards — the drop-in backend for table.Options,
// oram.PathConfig, and the access scheduler above them.
func (p *Pool) Opener() storage.Opener {
	return func(name string, slots int64, blockSize int) (storage.Store, error) {
		subs := make([]storage.BatchStore, len(p.openers))
		for s, open := range p.openers {
			st, err := open(name, LocalSlots(slots, s, len(p.openers)), blockSize)
			if err != nil {
				return nil, fmt.Errorf("shard %d: opening %q: %w", s, name, err)
			}
			b, ok := st.(storage.BatchStore)
			if !ok {
				return nil, fmt.Errorf("shard %d: store %q does not support batches", s, name)
			}
			subs[s] = b
		}
		return New(RouterConfig{
			Name: name, Slots: slots, BlockSize: blockSize,
			Subs: subs, Meter: p.meter, Stats: p.stats,
		})
	}
}

// SetFlight attaches a trace-context carrier to every per-shard client
// (DialPool pools only; NewPool backends are in-process and carry no wire
// trace). Store requests on every shard are then stamped from the same
// flight, so one trace ID spans the whole fan-out.
func (p *Pool) SetFlight(f *telemetry.Flight) {
	for _, c := range p.clients {
		c.SetFlight(f)
	}
}

// FetchServerSpans retrieves each shard server's buffered spans for one
// trace (0 = everything), indexed by shard. NewPool pools return nil —
// there is no server to ask.
func (p *Pool) FetchServerSpans(traceID uint64) ([][]telemetry.ServerSpan, error) {
	if len(p.clients) == 0 {
		return nil, nil
	}
	out := make([][]telemetry.ServerSpan, len(p.clients))
	for s, c := range p.clients {
		spans, err := c.FetchServerSpans(traceID)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		out[s] = spans
	}
	return out, nil
}

// StartSessions opens one tenant session per shard server (DialPool pools
// only), so the striped sub-stores live in the tenant's namespace on every
// shard. Sessions are independent per server; a saturated shard reports
// remote.ErrBusy like any other.
func (p *Pool) StartSessions(tenant string, idle time.Duration) error {
	for s, c := range p.clients {
		if err := c.StartSession(tenant, idle); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return nil
}

// Close releases every per-shard client (ending their sessions). NewPool
// pools have nothing to release.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WriteMetrics renders the per-shard counters in the Prometheus text
// exposition format under the ojoin_shard_* namespace (the client-side
// counterpart of ojoinserver's ojoin_store_* metrics).
func (p *Pool) WriteMetrics(w io.Writer) {
	stats := p.Stats()
	fmt.Fprintf(w, "# HELP ojoin_shard_count Shards the router fans out to.\n# TYPE ojoin_shard_count gauge\n")
	fmt.Fprintf(w, "ojoin_shard_count %d\n", len(stats))
	fmt.Fprintf(w, "# HELP ojoin_shard_batches_total Sub-batches sent to the shard.\n# TYPE ojoin_shard_batches_total counter\n")
	for s, st := range stats {
		fmt.Fprintf(w, "ojoin_shard_batches_total{shard=\"%d\",addr=%q} %d\n", s, st.Addr, st.Batches)
	}
	fmt.Fprintf(w, "# HELP ojoin_shard_blocks_total Blocks carried by those sub-batches.\n# TYPE ojoin_shard_blocks_total counter\n")
	for s, st := range stats {
		fmt.Fprintf(w, "ojoin_shard_blocks_total{shard=\"%d\",addr=%q} %d\n", s, st.Addr, st.Blocks)
	}
	fmt.Fprintf(w, "# HELP ojoin_shard_skew_ratio Max/mean per-shard block traffic (1.0 = balanced stripe).\n# TYPE ojoin_shard_skew_ratio gauge\n")
	fmt.Fprintf(w, "ojoin_shard_skew_ratio %.6f\n", Skew(stats))
	fmt.Fprintf(w, "# HELP ojoin_shard_latency_seconds Sub-call latency per shard as seen by the router.\n# TYPE ojoin_shard_latency_seconds histogram\n")
	for s, st := range stats {
		telemetry.WriteHistogramText(w, "ojoin_shard_latency_seconds",
			fmt.Sprintf("shard=\"%d\",addr=%q", s, st.Addr), p.stats.Histogram(s))
	}
}
