package shard

import (
	"fmt"
	"testing"

	"oblivjoin/internal/oram"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/tracecheck"
	"oblivjoin/internal/xcrypto"
)

// driveORAM runs a fixed, seeded Path-ORAM workload: bulk writes, reads,
// batched reads, dummies, and a final flush — touching the classic path,
// the deferred-eviction scheduler, and the exchange piggyback.
func driveORAM(t *testing.T, open storage.Opener, meter *storage.Meter) {
	t.Helper()
	sealer, err := xcrypto.NewSealer(make([]byte, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := oram.NewPathORAM(oram.PathConfig{
		Name:          "proj.tree",
		Capacity:      64,
		PayloadSize:   24,
		Sealer:        sealer,
		Rand:          oram.NewSeededSource(7),
		Meter:         meter,
		OpenStore:     open,
		EvictionBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 24)
	for k := uint64(0); k < 64; k++ {
		payload[0] = byte(k)
		if err := o.Write(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 64; k += 3 {
		got, err := o.Read(k)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(k) {
			t.Fatalf("key %d read back %#x", k, got[0])
		}
	}
	if _, err := o.ReadBatch([]uint64{1, 17, 33, 49}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := o.DummyAccess(); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestShardTraceProjection is the tentpole obliviousness check: with the
// same seed, (1) the sharded run's LOGICAL trace is byte-identical to the
// unsharded run's trace — same stores, kinds, global indices, sizes, in
// the same order — and (2) each shard's physical trace is exactly the
// image of the unsharded trace under the public projection
// i ↦ (i mod N, i div N), as a multiset. The adversary at any shard sees a
// fixed geometric projection of the already-proven single-server trace.
func TestShardTraceProjection(t *testing.T) {
	for _, n := range []int{2, 4} {
		t.Run(fmt.Sprintf("%dshards", n), func(t *testing.T) {
			// Reference: single in-process server, traced.
			ref := storage.NewMeter()
			ref.SetTracing(true)
			driveORAM(t, nil, ref)

			// Sharded: router meters the logical trace, each shard's MemStore
			// meters its own physical trace.
			logical := storage.NewMeter()
			logical.SetTracing(true)
			shardMeters := make([]*storage.Meter, n)
			openers := make([]storage.Opener, n)
			for s := 0; s < n; s++ {
				shardMeters[s] = storage.NewMeter()
				shardMeters[s].SetTracing(true)
				m := shardMeters[s]
				openers[s] = func(name string, slots int64, blockSize int) (storage.Store, error) {
					return storage.NewMemStore(name, slots, blockSize, m), nil
				}
			}
			pool, err := NewPool(openers, logical)
			if err != nil {
				t.Fatal(err)
			}
			driveORAM(t, pool.Opener(), nil)

			if d := tracecheck.Diff(ref.Trace(), logical.Trace()); d != "" {
				t.Fatalf("logical sharded trace diverges from the unsharded trace:\n%s", d)
			}

			for s := 0; s < n; s++ {
				var projected []storage.Access
				for _, a := range ref.Trace() {
					if ShardOf(a.Index, n) != s {
						continue
					}
					a.Index = LocalIndex(a.Index, n)
					projected = append(projected, a)
				}
				if d := tracecheck.DiffUnordered(projected, shardMeters[s].Trace()); d != "" {
					t.Fatalf("shard %d/%d trace is not the geometry projection of the unsharded trace:\n%s", s, n, d)
				}
			}
		})
	}
}
