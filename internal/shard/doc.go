// Package shard is the client-side fan-out router that partitions one
// logical block store over N independent block servers — the step from one
// ojoinserver box toward Jodes-style distributed scale (PAPERS.md).
//
// A Router implements storage.BatchStore and storage.ExchangeStore over N
// sub-stores. Global block index i lives on shard i mod N at local index
// i div N (ShardOf / LocalIndex), a striping that is a pure function of the
// index and the shard count. Each ReadMany/WriteMany/Exchange batch is
// split by that function into per-shard sub-batches, fanned out to the
// owning shards in parallel goroutines, and merged back position-by-
// position into one logical response. A Pool owns the per-shard transports
// and hands out Routers through the storage.Opener seam, so the ORAM
// layer, the table layer, and the deferred-eviction scheduler run over
// shards without modification.
//
// # Obliviousness invariant
//
// The shard assignment depends only on the block index and the (public)
// shard count — never on block contents, keys, or the position map. Every
// per-shard trace is therefore exactly the image of the proven
// single-server trace under the projection i ↦ (i mod N, i div N): the
// adversary observing shard s sees the subsequence of the global trace
// with index ≡ s (mod N), re-numbered, and nothing else. A coalition of
// all N shards can reassemble precisely the single-server trace that
// Definition 1 already bounds; any subset sees a fixed projection of it
// (DESIGN.md §2.12). The Router meters each logical batch as ONE network
// round with its global indices, so round counts, traces, and the
// tracecheck suite are identical with 1 or N shards; per-shard request
// counts are exposed separately through Stats.
//
// # Concurrency contract
//
// A Router is safe for concurrent use exactly when its sub-stores are
// (remote.Client and storage.MemStore both are): it holds no mutable state
// of its own besides atomic per-shard counters, and a single logical batch
// runs one goroutine per involved shard. Merging writes only
// disjoint positions of the result slice, so no locks are needed on the
// response path.
//
// # Failure atomicity
//
// A batch is validated in full — range and payload sizes, using the global
// geometry — before anything is sent, so a malformed batch touches no
// shard. After fan-out, each sub-batch commits or fails atomically on its
// own shard (every backend validates a whole batch before applying it, and
// the disk backend's WAL makes application all-or-nothing); a transport
// failure on one shard therefore never leaves THAT shard partially
// written, though sibling shards may have committed their sub-batches. That
// cross-shard partiality is safe for the same reason client retries are:
// block writes carry absolute indices and absolute contents, and the ORAM
// scheduler commits its stash/pending state only after the whole router
// call succeeds, so a retry re-issues the identical sub-batches
// (DESIGN.md §2.12).
package shard
