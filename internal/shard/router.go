package shard

import (
	"fmt"
	"sync"
	"time"

	"oblivjoin/internal/storage"
)

// ShardOf returns the shard owning global block index i under striping
// across n shards. It is a public function of (i, n) only — see the
// package comment's obliviousness invariant.
func ShardOf(i int64, n int) int { return int(i % int64(n)) }

// LocalIndex returns global index i's slot within its owning shard.
func LocalIndex(i int64, n int) int64 { return i / int64(n) }

// LocalSlots returns how many of a store's slots shard s holds when slots
// global slots are striped across n shards: the count of global indices
// i < slots with i mod n == s.
func LocalSlots(slots int64, s, n int) int64 {
	if int64(s) >= slots {
		return slots / int64(n)
	}
	return (slots - int64(s) + int64(n) - 1) / int64(n)
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// Name is the logical store name used in traces and errors; every
	// sub-store was provisioned under the same name on its own server.
	Name string
	// Slots is the logical (global) slot count.
	Slots int64
	// BlockSize is the block size shared by every shard.
	BlockSize int
	// Subs are the per-shard stores; Subs[s] must hold
	// LocalSlots(Slots, s, len(Subs)) slots of BlockSize bytes.
	Subs []storage.BatchStore
	// Meter receives the LOGICAL accounting: one round per batch, with
	// global indices, exactly as an unsharded store would report. The
	// sub-stores must not carry their own meter, or rounds double-count.
	// May be nil.
	Meter *storage.Meter
	// Stats, when non-nil, accumulates per-shard fan-out counters shared
	// across every Router of a Pool.
	Stats *Stats
}

// Router partitions one logical block store over N sub-stores by the
// public striping function and fans batches out to the owning shards in
// parallel, merging the responses into one logical round. See the package
// comment for the obliviousness, concurrency, and failure-atomicity
// contracts.
type Router struct {
	name      string
	slots     int64
	blockSize int
	subs      []storage.BatchStore
	meter     *storage.Meter
	stats     *Stats
}

var (
	_ storage.BatchStore    = (*Router)(nil)
	_ storage.ExchangeStore = (*Router)(nil)
)

// New builds a Router after checking every sub-store's geometry against
// the striping function.
func New(cfg RouterConfig) (*Router, error) {
	n := len(cfg.Subs)
	if n == 0 {
		return nil, fmt.Errorf("shard: router %q needs at least one sub-store", cfg.Name)
	}
	if cfg.Slots < 0 || cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("shard: router %q: bad geometry %d×%d", cfg.Name, cfg.Slots, cfg.BlockSize)
	}
	for s, sub := range cfg.Subs {
		if want := LocalSlots(cfg.Slots, s, n); sub.Len() != want {
			return nil, fmt.Errorf("shard: router %q shard %d holds %d slots, want %d of %d",
				cfg.Name, s, sub.Len(), want, cfg.Slots)
		}
		if sub.BlockSize() != cfg.BlockSize {
			return nil, fmt.Errorf("shard: router %q shard %d block size %d, want %d",
				cfg.Name, s, sub.BlockSize(), cfg.BlockSize)
		}
	}
	if cfg.Stats != nil && cfg.Stats.Shards() != n {
		return nil, fmt.Errorf("shard: router %q: stats cover %d shards, router has %d",
			cfg.Name, cfg.Stats.Shards(), n)
	}
	return &Router{
		name:      cfg.Name,
		slots:     cfg.Slots,
		blockSize: cfg.BlockSize,
		subs:      cfg.Subs,
		meter:     cfg.Meter,
		stats:     cfg.Stats,
	}, nil
}

// Name returns the logical store name.
func (r *Router) Name() string { return r.name }

// Len implements storage.Store with the global slot count.
func (r *Router) Len() int64 { return r.slots }

// BlockSize implements storage.Store.
func (r *Router) BlockSize() int { return r.blockSize }

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.subs) }

// record accounts one sub-call against shard: batch and block counters
// plus the per-shard latency histogram that feeds Pool.Stats quantiles
// and the ojoin_shard_latency_seconds metric.
func (r *Router) record(shard, blocks int, d time.Duration) {
	if r.stats != nil {
		r.stats.add(shard, blocks, d)
	}
}

// Read implements storage.Store: one block from its owning shard, metered
// as one round against the global index.
func (r *Router) Read(i int64) ([]byte, error) {
	if i < 0 || i >= r.slots {
		return nil, fmt.Errorf("%w: read %d of %d (%s)", storage.ErrOutOfRange, i, r.slots, r.name)
	}
	s := ShardOf(i, len(r.subs))
	start := time.Now()
	blk, err := r.subs[s].Read(LocalIndex(i, len(r.subs)))
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", s, err)
	}
	r.record(s, 1, time.Since(start))
	if r.meter != nil {
		r.meter.CountBatch(r.name, storage.KindRead, []int64{i}, r.blockSize)
	}
	return blk, nil
}

// Write implements storage.Store.
func (r *Router) Write(i int64, data []byte) error {
	if i < 0 || i >= r.slots {
		return fmt.Errorf("%w: write %d of %d (%s)", storage.ErrOutOfRange, i, r.slots, r.name)
	}
	if len(data) != r.blockSize {
		return fmt.Errorf("shard: write of %d bytes to %d-byte block (%s)", len(data), r.blockSize, r.name)
	}
	s := ShardOf(i, len(r.subs))
	start := time.Now()
	if err := r.subs[s].Write(LocalIndex(i, len(r.subs)), data); err != nil {
		return fmt.Errorf("shard %d: %w", s, err)
	}
	r.record(s, 1, time.Since(start))
	if r.meter != nil {
		r.meter.CountBatch(r.name, storage.KindWrite, []int64{i}, r.blockSize)
	}
	return nil
}

// split partitions a global index slice per shard, preserving slice order
// within each shard (duplicates co-locate, so last-writer-wins survives
// the split), and remembers each index's position in the original batch.
func (r *Router) split(idxs []int64) (locals [][]int64, positions [][]int) {
	n := len(r.subs)
	locals = make([][]int64, n)
	positions = make([][]int, n)
	for pos, i := range idxs {
		s := ShardOf(i, n)
		locals[s] = append(locals[s], LocalIndex(i, n))
		positions[s] = append(positions[s], pos)
	}
	return locals, positions
}

// fanOut runs fn(s) for every involved shard, in parallel goroutines when
// more than one shard is involved, and returns the first error by shard
// order so failures are deterministic.
func (r *Router) fanOut(involved []int, fn func(s int) error) error {
	if len(involved) == 1 {
		s := involved[0]
		if err := fn(s); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		return nil
	}
	errs := make([]error, len(r.subs))
	var wg sync.WaitGroup
	for _, s := range involved {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = fn(s)
		}(s)
	}
	wg.Wait()
	for _, s := range involved {
		if errs[s] != nil {
			return fmt.Errorf("shard %d: %w", s, errs[s])
		}
	}
	return nil
}

func involvedShards(locals [][]int64) []int {
	var out []int
	for s, l := range locals {
		if len(l) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// ReadMany implements storage.BatchStore: the batch is split by the
// striping function, fetched from every involved shard in parallel, and
// merged back in batch order — one logical round.
func (r *Router) ReadMany(idxs []int64) ([][]byte, error) {
	if len(idxs) == 0 {
		return nil, nil
	}
	for _, i := range idxs {
		if i < 0 || i >= r.slots {
			return nil, fmt.Errorf("%w: batch read %d of %d (%s)", storage.ErrOutOfRange, i, r.slots, r.name)
		}
	}
	locals, positions := r.split(idxs)
	out := make([][]byte, len(idxs))
	err := r.fanOut(involvedShards(locals), func(s int) error {
		start := time.Now()
		blks, err := r.subs[s].ReadMany(locals[s])
		if err != nil {
			return err
		}
		if len(blks) != len(locals[s]) {
			return fmt.Errorf("shard: %d of %d blocks returned", len(blks), len(locals[s]))
		}
		for k, pos := range positions[s] {
			out[pos] = blks[k]
		}
		r.record(s, len(locals[s]), time.Since(start))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if r.meter != nil {
		r.meter.CountBatch(r.name, storage.KindRead, idxs, r.blockSize)
	}
	return out, nil
}

// WriteMany implements storage.BatchStore. The whole batch is validated
// against the global geometry before any shard is contacted; each
// sub-batch preserves the original slice order, so duplicate indices
// resolve last-writer-wins exactly as on a single server.
func (r *Router) WriteMany(idxs []int64, data [][]byte) error {
	if len(idxs) != len(data) {
		return fmt.Errorf("shard: batch write of %d blocks with %d payloads (%s)", len(idxs), len(data), r.name)
	}
	if len(idxs) == 0 {
		return nil
	}
	for k, i := range idxs {
		if i < 0 || i >= r.slots {
			return fmt.Errorf("%w: batch write %d of %d (%s)", storage.ErrOutOfRange, i, r.slots, r.name)
		}
		if len(data[k]) != r.blockSize {
			return fmt.Errorf("shard: batch write of %d bytes to %d-byte block (%s)", len(data[k]), r.blockSize, r.name)
		}
	}
	locals, positions := r.split(idxs)
	err := r.fanOut(involvedShards(locals), func(s int) error {
		sub := make([][]byte, len(positions[s]))
		for k, pos := range positions[s] {
			sub[k] = data[pos]
		}
		start := time.Now()
		if err := r.subs[s].WriteMany(locals[s], sub); err != nil {
			return err
		}
		r.record(s, len(locals[s]), time.Since(start))
		return nil
	})
	if err != nil {
		return err
	}
	if r.meter != nil {
		r.meter.CountBatch(r.name, storage.KindWrite, idxs, r.blockSize)
	}
	return nil
}

// Exchange implements storage.ExchangeStore: per-shard sub-exchanges run
// in parallel and the whole combined batch is metered as one logical
// round. Writes and reads for the same global index land on the same
// shard, and every backend applies a sub-exchange's writes before serving
// its reads, so the read-after-write contract holds globally.
func (r *Router) Exchange(writeIdxs []int64, writeData [][]byte, readIdxs []int64) ([][]byte, error) {
	if len(writeIdxs) != len(writeData) {
		return nil, fmt.Errorf("shard: exchange of %d write blocks with %d payloads (%s)", len(writeIdxs), len(writeData), r.name)
	}
	if len(writeIdxs) == 0 && len(readIdxs) == 0 {
		return nil, nil
	}
	for k, i := range writeIdxs {
		if i < 0 || i >= r.slots {
			return nil, fmt.Errorf("%w: exchange write %d of %d (%s)", storage.ErrOutOfRange, i, r.slots, r.name)
		}
		if len(writeData[k]) != r.blockSize {
			return nil, fmt.Errorf("shard: exchange write of %d bytes to %d-byte block (%s)", len(writeData[k]), r.blockSize, r.name)
		}
	}
	for _, i := range readIdxs {
		if i < 0 || i >= r.slots {
			return nil, fmt.Errorf("%w: exchange read %d of %d (%s)", storage.ErrOutOfRange, i, r.slots, r.name)
		}
	}
	wLocals, wPositions := r.split(writeIdxs)
	rLocals, rPositions := r.split(readIdxs)
	involved := make(map[int]bool)
	for s := range r.subs {
		if len(wLocals[s]) > 0 || len(rLocals[s]) > 0 {
			involved[s] = true
		}
	}
	var shards []int
	for s := range r.subs {
		if involved[s] {
			shards = append(shards, s)
		}
	}
	out := make([][]byte, len(readIdxs))
	err := r.fanOut(shards, func(s int) error {
		wSub := make([][]byte, len(wPositions[s]))
		for k, pos := range wPositions[s] {
			wSub[k] = writeData[pos]
		}
		start := time.Now()
		blks, err := r.subExchange(s, wLocals[s], wSub, rLocals[s])
		if err != nil {
			return err
		}
		if len(blks) != len(rLocals[s]) {
			return fmt.Errorf("shard: %d of %d blocks returned", len(blks), len(rLocals[s]))
		}
		for k, pos := range rPositions[s] {
			out[pos] = blks[k]
		}
		r.record(s, len(wLocals[s])+len(rLocals[s]), time.Since(start))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(readIdxs) == 0 {
		out = nil
	}
	if r.meter != nil {
		r.meter.CountExchange(r.name, writeIdxs, readIdxs, r.blockSize)
	}
	return out, nil
}

// subExchange issues one shard's share of an exchange, falling back to
// write-then-read when the sub-store lacks the exchange op (the fallback
// costs that shard an extra physical trip but is still one logical round).
func (r *Router) subExchange(s int, wIdxs []int64, wData [][]byte, rIdxs []int64) ([][]byte, error) {
	if x, ok := r.subs[s].(storage.ExchangeStore); ok {
		return x.Exchange(wIdxs, wData, rIdxs)
	}
	if err := r.subs[s].WriteMany(wIdxs, wData); err != nil {
		return nil, err
	}
	return r.subs[s].ReadMany(rIdxs)
}
