package shard

import (
	"fmt"
	"testing"
	"time"

	"oblivjoin/internal/core"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/remote"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/xcrypto"
)

// e2eRelation builds an n-tuple relation with keys from a small domain so
// the join has a non-trivial output.
func e2eRelation(name string, n int, seed int64) *relation.Relation {
	rel := &relation.Relation{Schema: relation.Schema{Table: name, Columns: []string{"k", "id"}}}
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		rel.Tuples = append(rel.Tuples, relation.Tuple{
			Values: []int64{int64(x % uint64(n/4+1)), int64(i)},
		})
	}
	return rel
}

// e2eJoin seals two seeded tables over the given backend and runs the
// oblivious sort-merge join, returning the result and the metered query
// traffic (setup excluded). The meter must be the same one the backend
// reports to (the router meters at the transport, like remote.Client).
func e2eJoin(t *testing.T, open storage.Opener, m *storage.Meter) (*core.Result, storage.Stats) {
	t.Helper()
	const seed, n = 42, 32
	sealer, err := xcrypto.NewSealer(make([]byte, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	topts := table.Options{
		BlockPayload:  256,
		Meter:         m,
		Sealer:        sealer,
		Rand:          oram.NewSeededSource(seed),
		EvictionBatch: 4,
		OpenStore:     open,
	}
	s1, err := table.Store(e2eRelation("e1", n, seed), []string{"k"}, topts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := table.Store(e2eRelation("e2", n, seed+1), []string{"k"}, topts)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset() // setup traffic is not query cost
	res, err := core.SortMergeJoin(s1, s2, "k", "k", core.Options{
		Meter:        m,
		Sealer:       sealer,
		OutBlockSize: 256 + xcrypto.Overhead,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, m.Snapshot()
}

// TestShardedJoinMatchesSingleServer is the 2-shard loopback e2e: the same
// seeded sort-merge join over a router fanning out to two real servers
// must produce the identical result with the identical logical round
// count as the plain in-process run — sharding changes where blocks live,
// never what the protocol does.
func TestShardedJoinMatchesSingleServer(t *testing.T) {
	wantRes, wantStats := e2eJoin(t, nil, storage.NewMeter())

	addrs := make([]string, 2)
	for s := range addrs {
		srv := remote.NewServer(remote.ServerOptions{MaxSessions: 4})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[s] = addr.String()
	}
	m := storage.NewMeter()
	pool, err := DialPool(addrs, remote.ClientOptions{Meter: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	if err := pool.StartSessions("e2e", time.Minute); err != nil {
		t.Fatal(err)
	}

	gotRes, gotStats := e2eJoin(t, pool.Opener(), m)

	if gotRes.RealCount != wantRes.RealCount {
		t.Fatalf("sharded join found %d records, single-server %d", gotRes.RealCount, wantRes.RealCount)
	}
	if len(gotRes.Tuples) != len(wantRes.Tuples) {
		t.Fatalf("sharded join returned %d tuples, single-server %d", len(gotRes.Tuples), len(wantRes.Tuples))
	}
	for i := range wantRes.Tuples {
		if fmt.Sprint(gotRes.Tuples[i].Values) != fmt.Sprint(wantRes.Tuples[i].Values) {
			t.Fatalf("tuple %d: sharded %v, single-server %v", i, gotRes.Tuples[i].Values, wantRes.Tuples[i].Values)
		}
	}
	if gotStats.NetworkRounds != wantStats.NetworkRounds {
		t.Fatalf("sharded join cost %d logical rounds, single-server %d — the router must merge each fan-out into one round",
			gotStats.NetworkRounds, wantStats.NetworkRounds)
	}
	if gotStats.BlocksMoved() != wantStats.BlocksMoved() {
		t.Fatalf("sharded join moved %d blocks, single-server %d", gotStats.BlocksMoved(), wantStats.BlocksMoved())
	}

	// Both shards actually served traffic, and the stripe kept them within
	// a factor of ~2 of each other (the tree root always lands on shard 0,
	// so perfect balance is not expected).
	stats := pool.Stats()
	for s, st := range stats {
		if st.Blocks == 0 {
			t.Fatalf("shard %d served no blocks: %+v", s, stats)
		}
	}
}
