package xcrypto

import (
	"fmt"
	"io"
	"sync"
)

// Keyring derives per-store sealers from one master key and coordinates
// epoch-tagged key rotation across them.
//
// Key schedule (all edges HKDF, RFC 5869 with HMAC-SHA256):
//
//	master ──"keyring root"──▶ root ──"store:<name>"──▶ store root
//	                                     store root ──"epoch:<e>"──▶ AES-GCM subkey
//	master ──"enc"/"mac" (legacy HMAC derivation)──▶ format-1 compat keys
//
// The master key is used only during construction and never retained; the
// keyring keeps the 32-byte root (from which it derives store subkeys on
// demand) and the legacy compat keys (shared by every store sealer, because
// the pre-keyring code sealed all stores under one master-derived key pair).
// Close zeroizes everything.
//
// Rotation: Rotate bumps the epoch on every sealer the ring has handed out
// (and every future one). New writes seal under the new epoch's subkey;
// blocks sealed under older epochs keep opening, and migrate lazily as the
// ORAM write-back path next rewrites them. The epoch byte lives inside the
// fixed-size sealed layout, so a rotation is invisible in the server's
// access sequence — see the trace-identity guard in the oram tests.
type Keyring struct {
	mu        sync.Mutex
	epoch     uint8
	rand      io.Reader
	root      [32]byte
	legacyEnc [KeySize]byte
	legacyMac [KeySize]byte
	sealers   map[string]*Sealer
	closed    bool
}

// NewKeyring builds a keyring from the 16-byte master key, starting at the
// given epoch. randSrc supplies seal nonces for every derived sealer; nil
// means crypto/rand. The master key is not retained.
func NewKeyring(master []byte, epoch uint8, randSrc io.Reader) (*Keyring, error) {
	if len(master) != KeySize {
		return nil, fmt.Errorf("xcrypto: master key must be %d bytes, got %d", KeySize, len(master))
	}
	k := &Keyring{
		epoch:     epoch,
		rand:      randSrc,
		root:      hkdf(master, "oblivjoin keyring root v2"),
		legacyEnc: deriveKey(master, "enc"),
		legacyMac: deriveKey(master, "mac"),
		sealers:   make(map[string]*Sealer),
	}
	return k, nil
}

// Sealer returns the store's sealer, deriving and caching it on first use.
// Every store name gets an independent HKDF subkey chain, so a compromise of
// one store's working keys does not expose another's; all sealers share the
// ring's current epoch and the legacy compat keys.
func (k *Keyring) Sealer(name string) (*Sealer, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return nil, ErrSealerClosed
	}
	if s, ok := k.sealers[name]; ok {
		return s, nil
	}
	storeRoot := hkdf(k.root[:], "store:"+name)
	s, err := newSealer(storeRoot, k.legacyEnc, k.legacyMac, k.epoch, k.rand)
	zero(storeRoot[:])
	if err != nil {
		return nil, err
	}
	k.sealers[name] = s
	return s, nil
}

// Subkey derives a named 32-byte subkey from the ring's root, for keyed
// non-sealing uses — e.g. MACing plan-cache signatures — that must not
// share key material with any store's sealing chain. The "subkey:" label
// prefix keeps the derivation domain disjoint from the "store:" chain, so
// no subkey ever coincides with a store root. The returned slice is the
// caller's to zeroize when done.
func (k *Keyring) Subkey(label string) ([]byte, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return nil, ErrSealerClosed
	}
	sub := hkdf(k.root[:], "subkey:"+label)
	return sub[:], nil
}

// Epoch reports the ring's current key epoch.
func (k *Keyring) Epoch() uint8 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.epoch
}

// Rotate advances the ring to the next epoch and switches every derived
// sealer to it. It returns the new epoch. Rotation is lazy: previously
// sealed blocks stay openable and re-seal under the new epoch on their next
// write-back.
func (k *Keyring) Rotate() (uint8, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return 0, ErrSealerClosed
	}
	next := k.epoch + 1
	for name, s := range k.sealers {
		if err := s.SetEpoch(next); err != nil {
			return 0, fmt.Errorf("xcrypto: rotating store %q: %w", name, err)
		}
	}
	k.epoch = next
	return next, nil
}

// SetEpoch pins the ring (and every derived sealer) to a specific epoch,
// e.g. restarting a client at the epoch its deployment has rotated to.
func (k *Keyring) SetEpoch(epoch uint8) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return ErrSealerClosed
	}
	for name, s := range k.sealers {
		if err := s.SetEpoch(epoch); err != nil {
			return fmt.Errorf("xcrypto: rotating store %q: %w", name, err)
		}
	}
	k.epoch = epoch
	return nil
}

// Close zeroizes the ring's key material and closes every derived sealer.
// Idempotent; further Sealer calls fail with ErrSealerClosed.
func (k *Keyring) Close() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return nil
	}
	k.closed = true
	zero(k.root[:])
	zero(k.legacyEnc[:])
	zero(k.legacyMac[:])
	for name, s := range k.sealers {
		s.Close()
		delete(k.sealers, name)
	}
	return nil
}
