// Package xcrypto provides the authenticated block encryption used by the
// oblivious join engine.
//
// Every block stored on the untrusted server is sealed with AES-128-GCM
// under a fresh random nonce, so two encryptions of the same plaintext are
// computationally indistinguishable — the property the paper's security model
// (Section 3.2) requires: "two encrypted copies of the same data block look
// different" — and any server-side tampering is detected at Open. The paper
// used AES/CFB from Crypto++; an AEAD strengthens that to authenticated
// encryption without changing the sealed-block size.
//
// The sealed layout is versioned. Format 2 (current) is
//
//	format(1) || epoch(1) || reserved(2) || nonce(12) || ciphertext || tag(16)
//
// where the 4 header bytes ride as GCM additional data (so the format and
// key epoch are themselves authenticated) and the epoch byte selects the
// HKDF-derived subkey the block was sealed under, enabling key rotation
// (see Keyring). Format 1 — the original AES-CTR + HMAC-SHA256 construction,
// IV(16) || ciphertext || truncated-HMAC(16) — has no format byte, but both
// constructions authenticate, so Open disambiguates by trial: a block that
// fails the GCM path is re-tried through the legacy path, and pre-refactor
// disk stores keep loading. Both layouts cost exactly Overhead bytes.
package xcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"
)

// KeySize is the AES key length in bytes (AES-128, as in the paper).
const KeySize = 16

// IVSize is the legacy format's per-block initialization vector length; the
// current GCM format spends the same 16 bytes on a 4-byte header plus a
// 12-byte nonce, keeping the layouts size-compatible.
const IVSize = aes.BlockSize

// NonceSize is the GCM nonce length in the current sealed layout.
const NonceSize = 12

// headerSize is the authenticated header of the current layout:
// format byte, epoch byte, two reserved zero bytes.
const headerSize = 4

// TagSize is the length of the authentication tag appended to each sealed
// block (GCM tag now; truncated HMAC-SHA256 in the legacy format).
const TagSize = 16

// Overhead is the number of bytes Seal adds to a plaintext block. It is
// identical for the GCM and legacy layouts, so block geometry — ORAM bucket
// sizes, disk slots, wire frames — is format-independent.
const Overhead = headerSize + NonceSize + TagSize

// FormatGCM is the format byte of the current AES-GCM sealed layout.
// (Format 1 is the headerless legacy CTR+HMAC construction.)
const FormatGCM = 2

// Errors returned by Open.
var (
	ErrCiphertextTooShort = errors.New("xcrypto: ciphertext shorter than minimum sealed length")
	ErrAuthFailed         = errors.New("xcrypto: block authentication failed")
	ErrSealerClosed       = errors.New("xcrypto: sealer is closed")
)

// Sealer encrypts and decrypts fixed-size blocks. A Sealer is safe for
// concurrent use by multiple goroutines; per-epoch AEADs are derived lazily
// under a lock and immutable afterwards. Seal always uses the current epoch;
// Open accepts any epoch (and the legacy format), which is what makes
// rotation lazy: blocks re-seal at the new epoch whenever they are next
// written back.
type Sealer struct {
	mu     sync.RWMutex
	aeads  map[uint8]cipher.AEAD
	epoch  uint8
	keyFor func(epoch uint8) [KeySize]byte // epoch subkey derivation; nil after Close

	// Legacy CTR+HMAC material, kept so pre-refactor ciphertexts under the
	// same master key still open (and for LegacySeal fixtures/benches).
	legacyBlock cipher.Block
	legacyMac   [KeySize]byte

	rand   io.Reader
	closed bool
}

// NewSealer returns a Sealer using the given 16-byte key. All subkeys — the
// per-epoch GCM keys and the legacy CTR/HMAC pair — are derived from it, and
// the master key itself is not retained. randSrc supplies nonces; pass nil
// for crypto/rand. Tests may inject a deterministic reader for
// reproducibility. The sealer starts at epoch 0; see SetEpoch and Keyring
// for rotation.
func NewSealer(key []byte, randSrc io.Reader) (*Sealer, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("xcrypto: key must be %d bytes, got %d", KeySize, len(key))
	}
	root := hkdf(key, "oblivjoin sealer root v2")
	legacyEnc := deriveKey(key, "enc")
	legacyMac := deriveKey(key, "mac")
	return newSealer(root, legacyEnc, legacyMac, 0, randSrc)
}

// newSealer assembles a Sealer from already-derived material. root feeds the
// per-epoch subkeys; legacyEnc/legacyMac serve the compat open path.
func newSealer(root [sha256.Size]byte, legacyEnc, legacyMac [KeySize]byte, epoch uint8, randSrc io.Reader) (*Sealer, error) {
	legacyBlock, err := aes.NewCipher(legacyEnc[:])
	if err != nil {
		return nil, fmt.Errorf("xcrypto: %w", err)
	}
	zero(legacyEnc[:])
	if randSrc == nil {
		randSrc = rand.Reader
	}
	s := &Sealer{
		aeads: make(map[uint8]cipher.AEAD),
		epoch: epoch,
		keyFor: func(e uint8) [KeySize]byte {
			var k [KeySize]byte
			sub := hkdf(root[:], fmt.Sprintf("epoch:%d", e))
			copy(k[:], sub[:])
			zero(sub[:])
			return k
		},
		legacyBlock: legacyBlock,
		legacyMac:   legacyMac,
		rand:        randSrc,
	}
	if _, err := s.aead(epoch); err != nil {
		return nil, err
	}
	return s, nil
}

// NewRandomSealer generates a fresh random key and returns a Sealer over it,
// alongside the key so the client can persist it. The caller owns the
// returned key bytes; the sealer keeps only derived material and zeroizes it
// on Close.
func NewRandomSealer() (*Sealer, []byte, error) {
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(rand.Reader, key); err != nil {
		return nil, nil, fmt.Errorf("xcrypto: generating key: %w", err)
	}
	s, err := NewSealer(key, nil)
	if err != nil {
		return nil, nil, err
	}
	return s, key, nil
}

// deriveKey is the legacy (format 1) subkey derivation; it must stay
// byte-for-byte stable so pre-refactor ciphertexts keep opening.
func deriveKey(master []byte, label string) [KeySize]byte {
	h := hmac.New(sha256.New, master)
	h.Write([]byte(label))
	var out [KeySize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// hkdf derives a 32-byte subkey from secret bound to the info label, per
// RFC 5869 (HMAC-SHA256 extract with a zero salt, then a single expand
// block — sufficient for outputs up to one hash length).
func hkdf(secret []byte, info string) [sha256.Size]byte {
	var salt [sha256.Size]byte
	ex := hmac.New(sha256.New, salt[:])
	ex.Write(secret)
	prk := ex.Sum(nil)
	exp := hmac.New(sha256.New, prk)
	exp.Write([]byte(info))
	exp.Write([]byte{0x01})
	var out [sha256.Size]byte
	copy(out[:], exp.Sum(nil))
	zero(prk)
	return out
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// aead returns the AEAD for the given epoch, deriving and caching it on
// first use.
func (s *Sealer) aead(epoch uint8) (cipher.AEAD, error) {
	s.mu.RLock()
	a, ok := s.aeads[epoch]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrSealerClosed
	}
	if ok {
		return a, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSealerClosed
	}
	if a, ok := s.aeads[epoch]; ok {
		return a, nil
	}
	k := s.keyFor(epoch)
	block, err := aes.NewCipher(k[:])
	zero(k[:])
	if err != nil {
		return nil, fmt.Errorf("xcrypto: %w", err)
	}
	a, err = cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("xcrypto: %w", err)
	}
	s.aeads[epoch] = a
	return a, nil
}

// Epoch reports the key epoch new seals are tagged with.
func (s *Sealer) Epoch() uint8 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// SetEpoch rotates the sealer to the given key epoch: subsequent Seals use
// the epoch's HKDF-derived subkey, while Open keeps accepting every epoch
// (and the legacy format). Rotation is therefore lazy — blocks migrate to
// the new epoch as they are rewritten — and, because the epoch byte rides
// inside the fixed-size sealed layout, invisible in the access sequence.
func (s *Sealer) SetEpoch(epoch uint8) error {
	if _, err := s.aead(epoch); err != nil {
		return err
	}
	s.mu.Lock()
	s.epoch = epoch
	s.mu.Unlock()
	return nil
}

// Close zeroizes the sealer's key material. Any further Seal/Open fails with
// ErrSealerClosed. Close is idempotent.
func (s *Sealer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.keyFor = nil
	s.legacyBlock = nil
	zero(s.legacyMac[:])
	for e := range s.aeads {
		delete(s.aeads, e)
	}
	return nil
}

// SealedLen returns the ciphertext length for a plaintext of n bytes.
func SealedLen(n int) int { return n + Overhead }

// Seal encrypts plaintext under a fresh random nonce at the current epoch.
// Two calls with the same plaintext return different ciphertexts.
func (s *Sealer) Seal(plaintext []byte) ([]byte, error) {
	return s.SealTo(nil, plaintext)
}

// SealTo appends the sealed block to dst (which may be nil) and returns the
// extended slice, reusing dst's capacity when it suffices — the allocation-
// free path the ORAM write-back loops use. plaintext must not alias dst's
// spare capacity.
func (s *Sealer) SealTo(dst, plaintext []byte) ([]byte, error) {
	s.mu.RLock()
	epoch := s.epoch
	s.mu.RUnlock()
	aead, err := s.aead(epoch)
	if err != nil {
		return nil, err
	}
	off := len(dst)
	need := off + SealedLen(len(plaintext))
	if cap(dst) < need {
		grown := make([]byte, off, need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+headerSize+NonceSize]
	hdr := dst[off : off+headerSize]
	hdr[0] = FormatGCM
	hdr[1] = epoch
	hdr[2], hdr[3] = 0, 0
	nonce := dst[off+headerSize : off+headerSize+NonceSize]
	if _, err := io.ReadFull(s.rand, nonce); err != nil {
		return nil, fmt.Errorf("xcrypto: reading nonce: %w", err)
	}
	return aead.Seal(dst, nonce, plaintext, hdr), nil
}

// Open verifies and decrypts a block produced by Seal (any epoch) or by the
// legacy CTR+HMAC construction.
func (s *Sealer) Open(sealed []byte) ([]byte, error) {
	return s.OpenTo(nil, sealed)
}

// OpenTo appends the verified plaintext to dst (which may be nil) and
// returns the extended slice, reusing dst's capacity when it suffices.
// sealed must not alias dst's spare capacity.
func (s *Sealer) OpenTo(dst, sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, ErrCiphertextTooShort
	}
	// Current format first: the header is authenticated, so a block that
	// merely *looks* like format 2 but isn't falls through to the legacy
	// trial (a legacy IV starts with 0x02 0x?? 0x00 0x00 once in ~2^24
	// random draws; both paths authenticate, so the trial is safe).
	if sealed[0] == FormatGCM && sealed[2] == 0 && sealed[3] == 0 {
		out, err := s.openGCM(dst, sealed)
		if err == nil {
			return out, nil
		}
		if err != ErrAuthFailed {
			return nil, err
		}
	}
	return s.openLegacy(dst, sealed)
}

func (s *Sealer) openGCM(dst, sealed []byte) ([]byte, error) {
	aead, err := s.aead(sealed[1])
	if err != nil {
		return nil, err
	}
	hdr := sealed[:headerSize]
	nonce := sealed[headerSize : headerSize+NonceSize]
	ct := sealed[headerSize+NonceSize:]
	off := len(dst)
	need := off + len(ct) - TagSize
	if cap(dst) < need {
		grown := make([]byte, off, need)
		copy(grown, dst)
		dst = grown
	}
	out, err := aead.Open(dst, nonce, ct, hdr)
	if err != nil {
		return nil, ErrAuthFailed
	}
	return out, nil
}

// openLegacy verifies and decrypts a format-1 (CTR+HMAC) block.
func (s *Sealer) openLegacy(dst, sealed []byte) ([]byte, error) {
	s.mu.RLock()
	block := s.legacyBlock
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrSealerClosed
	}
	if block == nil {
		return nil, ErrAuthFailed
	}
	body := sealed[:len(sealed)-TagSize]
	tag := sealed[len(sealed)-TagSize:]
	want := s.legacyTag(body)
	if !hmac.Equal(tag, want[:TagSize]) {
		return nil, ErrAuthFailed
	}
	iv := body[:IVSize]
	ct := body[IVSize:]
	off := len(dst)
	need := off + len(ct)
	if cap(dst) < need {
		grown := make([]byte, off, need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	cipher.NewCTR(block, iv).XORKeyStream(dst[off:], ct)
	return dst, nil
}

// LegacySeal encrypts plaintext in the pre-rotation format-1 layout
// (AES-CTR under a fresh random IV, truncated HMAC-SHA256 tag). It exists
// for compatibility fixtures, the cross-version fuzz corpus, and the crypto
// bench's old-vs-new comparison; production writes always use Seal.
func (s *Sealer) LegacySeal(plaintext []byte) ([]byte, error) {
	s.mu.RLock()
	block := s.legacyBlock
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrSealerClosed
	}
	if block == nil {
		return nil, errors.New("xcrypto: sealer has no legacy key material")
	}
	out := make([]byte, IVSize+len(plaintext)+TagSize)
	iv := out[:IVSize]
	if _, err := io.ReadFull(s.rand, iv); err != nil {
		return nil, fmt.Errorf("xcrypto: reading IV: %w", err)
	}
	ct := out[IVSize : IVSize+len(plaintext)]
	cipher.NewCTR(block, iv).XORKeyStream(ct, plaintext)
	tag := s.legacyTag(out[:IVSize+len(plaintext)])
	copy(out[IVSize+len(plaintext):], tag[:TagSize])
	return out, nil
}

func (s *Sealer) legacyTag(data []byte) []byte {
	s.mu.RLock()
	mac := s.legacyMac
	s.mu.RUnlock()
	h := hmac.New(sha256.New, mac[:])
	h.Write(data)
	return h.Sum(nil)
}
