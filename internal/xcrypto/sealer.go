// Package xcrypto provides the semantically secure block encryption used by
// the oblivious join engine.
//
// Every block stored on the untrusted server is sealed with AES-128 in CTR
// mode under a fresh random IV, so two encryptions of the same plaintext are
// computationally indistinguishable — the property the paper's security model
// (Section 3.2) requires: "two encrypted copies of the same data block look
// different". The paper used AES/CFB from Crypto++; CTR is an equivalent
// semantically secure stream mode available in the Go standard library.
package xcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// KeySize is the AES key length in bytes (AES-128, as in the paper).
const KeySize = 16

// IVSize is the per-block initialization vector length in bytes.
const IVSize = aes.BlockSize

// TagSize is the length of the integrity tag appended to each sealed block.
const TagSize = 16

// Overhead is the number of bytes Seal adds to a plaintext block.
const Overhead = IVSize + TagSize

// Errors returned by Open.
var (
	ErrCiphertextTooShort = errors.New("xcrypto: ciphertext shorter than IV+tag")
	ErrAuthFailed         = errors.New("xcrypto: block authentication failed")
)

// Sealer encrypts and decrypts fixed-size blocks. A Sealer is safe for
// concurrent use by multiple goroutines: it keeps only immutable key
// material and derives per-call state.
type Sealer struct {
	block  cipher.Block
	macKey [KeySize]byte
	rand   io.Reader
}

// NewSealer returns a Sealer using the given 16-byte key. The encryption and
// MAC keys are derived from it, so a single key secures both confidentiality
// and integrity. randSrc supplies IVs; pass nil for crypto/rand. Tests may
// inject a deterministic reader for reproducibility.
func NewSealer(key []byte, randSrc io.Reader) (*Sealer, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("xcrypto: key must be %d bytes, got %d", KeySize, len(key))
	}
	// Derive independent subkeys so the cipher key is never reused as a MAC key.
	encKey := deriveKey(key, "enc")
	macKey := deriveKey(key, "mac")
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		return nil, fmt.Errorf("xcrypto: %w", err)
	}
	if randSrc == nil {
		randSrc = rand.Reader
	}
	return &Sealer{block: block, macKey: macKey, rand: randSrc}, nil
}

// NewRandomSealer generates a fresh random key and returns a Sealer over it,
// alongside the key so the client can persist it.
func NewRandomSealer() (*Sealer, []byte, error) {
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(rand.Reader, key); err != nil {
		return nil, nil, fmt.Errorf("xcrypto: generating key: %w", err)
	}
	s, err := NewSealer(key, nil)
	if err != nil {
		return nil, nil, err
	}
	return s, key, nil
}

func deriveKey(master []byte, label string) [KeySize]byte {
	h := hmac.New(sha256.New, master)
	h.Write([]byte(label))
	var out [KeySize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// SealedLen returns the ciphertext length for a plaintext of n bytes.
func SealedLen(n int) int { return n + Overhead }

// Seal encrypts plaintext under a fresh random IV and appends an integrity
// tag. The result layout is IV || ciphertext || tag. Two calls with the same
// plaintext return different ciphertexts.
func (s *Sealer) Seal(plaintext []byte) ([]byte, error) {
	out := make([]byte, IVSize+len(plaintext)+TagSize)
	iv := out[:IVSize]
	if _, err := io.ReadFull(s.rand, iv); err != nil {
		return nil, fmt.Errorf("xcrypto: reading IV: %w", err)
	}
	ct := out[IVSize : IVSize+len(plaintext)]
	cipher.NewCTR(s.block, iv).XORKeyStream(ct, plaintext)
	tag := s.mac(out[:IVSize+len(plaintext)])
	copy(out[IVSize+len(plaintext):], tag[:TagSize])
	return out, nil
}

// Open verifies and decrypts a block produced by Seal.
func (s *Sealer) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, ErrCiphertextTooShort
	}
	body := sealed[:len(sealed)-TagSize]
	tag := sealed[len(sealed)-TagSize:]
	want := s.mac(body)
	if !hmac.Equal(tag, want[:TagSize]) {
		return nil, ErrAuthFailed
	}
	iv := body[:IVSize]
	ct := body[IVSize:]
	pt := make([]byte, len(ct))
	cipher.NewCTR(s.block, iv).XORKeyStream(pt, ct)
	return pt, nil
}

func (s *Sealer) mac(data []byte) []byte {
	h := hmac.New(sha256.New, s.macKey[:])
	h.Write(data)
	return h.Sum(nil)
}
