package xcrypto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestSealer(t *testing.T) *Sealer {
	t.Helper()
	key := bytes.Repeat([]byte{0x42}, KeySize)
	s, err := NewSealer(key, nil)
	if err != nil {
		t.Fatalf("NewSealer: %v", err)
	}
	return s
}

func TestSealOpenRoundTrip(t *testing.T) {
	s := newTestSealer(t)
	for _, n := range []int{0, 1, 15, 16, 17, 100, 4096} {
		pt := make([]byte, n)
		for i := range pt {
			pt[i] = byte(i)
		}
		ct, err := s.Seal(pt)
		if err != nil {
			t.Fatalf("Seal(%d bytes): %v", n, err)
		}
		if len(ct) != SealedLen(n) {
			t.Errorf("SealedLen(%d) = %d, ciphertext is %d", n, SealedLen(n), len(ct))
		}
		got, err := s.Open(ct)
		if err != nil {
			t.Fatalf("Open(%d bytes): %v", n, err)
		}
		if !bytes.Equal(got, pt) {
			t.Errorf("round trip of %d bytes mismatched", n)
		}
	}
}

func TestSealIsRandomized(t *testing.T) {
	s := newTestSealer(t)
	pt := []byte("the same plaintext block")
	a, err := s.Seal(pt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Seal(pt)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same plaintext must differ (semantic security)")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	s := newTestSealer(t)
	ct, err := s.Seal([]byte("sensitive tuple data"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, IVSize, len(ct) - 1} {
		bad := append([]byte(nil), ct...)
		bad[pos] ^= 0x01
		if _, err := s.Open(bad); err != ErrAuthFailed {
			t.Errorf("tamper at %d: got err %v, want ErrAuthFailed", pos, err)
		}
	}
}

func TestOpenRejectsShortInput(t *testing.T) {
	s := newTestSealer(t)
	if _, err := s.Open(make([]byte, Overhead-1)); err != ErrCiphertextTooShort {
		t.Errorf("got %v, want ErrCiphertextTooShort", err)
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	s1 := newTestSealer(t)
	s2, err := NewSealer(bytes.Repeat([]byte{0x99}, KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s1.Seal([]byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Open(ct); err != ErrAuthFailed {
		t.Errorf("wrong key: got %v, want ErrAuthFailed", err)
	}
}

func TestNewSealerRejectsBadKeyLength(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 32} {
		if _, err := NewSealer(make([]byte, n), nil); err == nil {
			t.Errorf("NewSealer with %d-byte key should fail", n)
		}
	}
}

func TestNewRandomSealer(t *testing.T) {
	s, key, err := NewRandomSealer()
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != KeySize {
		t.Fatalf("key length %d", len(key))
	}
	ct, err := s.Seal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// A sealer reconstructed from the returned key must open the block.
	s2, err := NewSealer(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := s2.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "x" {
		t.Fatalf("got %q", pt)
	}
}

func TestSealOpenQuick(t *testing.T) {
	s := newTestSealer(t)
	f := func(pt []byte) bool {
		ct, err := s.Seal(pt)
		if err != nil {
			return false
		}
		got, err := s.Open(ct)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSealedLayoutHeader(t *testing.T) {
	s := newTestSealer(t)
	ct, err := s.Seal([]byte("block"))
	if err != nil {
		t.Fatal(err)
	}
	if ct[0] != FormatGCM {
		t.Errorf("format byte = %d, want %d", ct[0], FormatGCM)
	}
	if ct[1] != 0 {
		t.Errorf("epoch byte = %d, want 0", ct[1])
	}
	if ct[2] != 0 || ct[3] != 0 {
		t.Errorf("reserved bytes = %d,%d, want 0,0", ct[2], ct[3])
	}
}

func TestSealToOpenToAppend(t *testing.T) {
	s := newTestSealer(t)
	prefix := []byte("frame-header")
	sealed, err := s.SealTo(append([]byte(nil), prefix...), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(sealed, prefix) {
		t.Fatal("SealTo must append after the existing bytes")
	}
	if len(sealed) != len(prefix)+SealedLen(len("payload")) {
		t.Fatalf("sealed length %d", len(sealed))
	}
	got, err := s.OpenTo([]byte("pt-prefix"), sealed[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "pt-prefix"+"payload" {
		t.Fatalf("OpenTo result %q", got)
	}
}

func TestSealToReusesCapacity(t *testing.T) {
	s := newTestSealer(t)
	pt := make([]byte, 512)
	scratch := make([]byte, 0, SealedLen(len(pt)))
	allocs := testing.AllocsPerRun(100, func() {
		out, err := s.SealTo(scratch[:0], pt)
		if err != nil {
			t.Fatal(err)
		}
		scratch = out[:0]
	})
	if allocs > 0 {
		t.Errorf("SealTo into sized scratch allocated %.1f/op, want 0", allocs)
	}
	sealed, err := s.Seal(pt)
	if err != nil {
		t.Fatal(err)
	}
	open := make([]byte, 0, len(pt))
	allocs = testing.AllocsPerRun(100, func() {
		out, err := s.OpenTo(open[:0], sealed)
		if err != nil {
			t.Fatal(err)
		}
		open = out[:0]
	})
	if allocs > 0 {
		t.Errorf("OpenTo into sized scratch allocated %.1f/op, want 0", allocs)
	}
}

func TestOpenAcceptsLegacyFormat(t *testing.T) {
	key := bytes.Repeat([]byte{0x42}, KeySize)
	s, err := NewSealer(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := s.LegacySeal([]byte("ctr+hmac era block"))
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != SealedLen(len("ctr+hmac era block")) {
		t.Fatalf("legacy layout must cost the same Overhead, got %d", len(legacy))
	}
	// A different sealer instance over the same key (a restart) opens it.
	s2, err := NewSealer(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := s2.Open(legacy)
	if err != nil {
		t.Fatalf("open legacy: %v", err)
	}
	if string(pt) != "ctr+hmac era block" {
		t.Fatalf("got %q", pt)
	}
	// Tampered legacy blocks still fail closed.
	bad := append([]byte(nil), legacy...)
	bad[len(bad)/2] ^= 1
	if _, err := s2.Open(bad); err != ErrAuthFailed {
		t.Errorf("tampered legacy: got %v, want ErrAuthFailed", err)
	}
}

func TestOpenLegacyCollidingWithGCMHeader(t *testing.T) {
	// A legacy block whose random IV happens to start with the GCM header
	// pattern (format byte, any epoch, two zero bytes) must still open via
	// the fall-through trial.
	s := newTestSealer(t)
	iv := make([]byte, IVSize)
	iv[0], iv[1], iv[2], iv[3] = FormatGCM, 0x05, 0, 0
	for i := 4; i < IVSize; i++ {
		iv[i] = byte(i)
	}
	fixed, err := NewSealer(bytes.Repeat([]byte{0x42}, KeySize), bytes.NewReader(iv))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := fixed.LegacySeal([]byte("unlucky IV"))
	if err != nil {
		t.Fatal(err)
	}
	if legacy[0] != FormatGCM || legacy[2] != 0 || legacy[3] != 0 {
		t.Fatal("fixture IV did not produce the colliding header")
	}
	pt, err := s.Open(legacy)
	if err != nil {
		t.Fatalf("open colliding legacy block: %v", err)
	}
	if string(pt) != "unlucky IV" {
		t.Fatalf("got %q", pt)
	}
}

func TestSetEpochCrossOpen(t *testing.T) {
	s := newTestSealer(t)
	ct0, err := s.Seal([]byte("epoch 0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetEpoch(7); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 7 {
		t.Fatalf("Epoch() = %d", s.Epoch())
	}
	ct7, err := s.Seal([]byte("epoch 7"))
	if err != nil {
		t.Fatal(err)
	}
	if ct7[1] != 7 {
		t.Fatalf("epoch byte = %d, want 7", ct7[1])
	}
	for _, ct := range [][]byte{ct0, ct7} {
		if _, err := s.Open(ct); err != nil {
			t.Errorf("open epoch-%d block after rotation: %v", ct[1], err)
		}
	}
	// Flipping the (authenticated) epoch byte must fail, not decrypt under
	// the wrong subkey.
	bad := append([]byte(nil), ct7...)
	bad[1] = 0
	if _, err := s.Open(bad); err != ErrAuthFailed {
		t.Errorf("epoch-byte tamper: got %v, want ErrAuthFailed", err)
	}
}

func TestSealerClose(t *testing.T) {
	s := newTestSealer(t)
	ct, err := s.Seal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close must be idempotent: %v", err)
	}
	if _, err := s.Seal([]byte("y")); err != ErrSealerClosed {
		t.Errorf("Seal after Close: got %v, want ErrSealerClosed", err)
	}
	if _, err := s.Open(ct); err != ErrSealerClosed {
		t.Errorf("Open after Close: got %v, want ErrSealerClosed", err)
	}
	if _, err := s.LegacySeal([]byte("z")); err != ErrSealerClosed {
		t.Errorf("LegacySeal after Close: got %v, want ErrSealerClosed", err)
	}
}

func BenchmarkSeal4KB(b *testing.B) {
	s, _, err := NewRandomSealer()
	if err != nil {
		b.Fatal(err)
	}
	pt := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Seal(pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen4KB(b *testing.B) {
	s, _, err := NewRandomSealer()
	if err != nil {
		b.Fatal(err)
	}
	ct, err := s.Seal(make([]byte, 4096))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Open(ct); err != nil {
			b.Fatal(err)
		}
	}
}
