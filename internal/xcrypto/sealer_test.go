package xcrypto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestSealer(t *testing.T) *Sealer {
	t.Helper()
	key := bytes.Repeat([]byte{0x42}, KeySize)
	s, err := NewSealer(key, nil)
	if err != nil {
		t.Fatalf("NewSealer: %v", err)
	}
	return s
}

func TestSealOpenRoundTrip(t *testing.T) {
	s := newTestSealer(t)
	for _, n := range []int{0, 1, 15, 16, 17, 100, 4096} {
		pt := make([]byte, n)
		for i := range pt {
			pt[i] = byte(i)
		}
		ct, err := s.Seal(pt)
		if err != nil {
			t.Fatalf("Seal(%d bytes): %v", n, err)
		}
		if len(ct) != SealedLen(n) {
			t.Errorf("SealedLen(%d) = %d, ciphertext is %d", n, SealedLen(n), len(ct))
		}
		got, err := s.Open(ct)
		if err != nil {
			t.Fatalf("Open(%d bytes): %v", n, err)
		}
		if !bytes.Equal(got, pt) {
			t.Errorf("round trip of %d bytes mismatched", n)
		}
	}
}

func TestSealIsRandomized(t *testing.T) {
	s := newTestSealer(t)
	pt := []byte("the same plaintext block")
	a, err := s.Seal(pt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Seal(pt)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same plaintext must differ (semantic security)")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	s := newTestSealer(t)
	ct, err := s.Seal([]byte("sensitive tuple data"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, IVSize, len(ct) - 1} {
		bad := append([]byte(nil), ct...)
		bad[pos] ^= 0x01
		if _, err := s.Open(bad); err != ErrAuthFailed {
			t.Errorf("tamper at %d: got err %v, want ErrAuthFailed", pos, err)
		}
	}
}

func TestOpenRejectsShortInput(t *testing.T) {
	s := newTestSealer(t)
	if _, err := s.Open(make([]byte, Overhead-1)); err != ErrCiphertextTooShort {
		t.Errorf("got %v, want ErrCiphertextTooShort", err)
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	s1 := newTestSealer(t)
	s2, err := NewSealer(bytes.Repeat([]byte{0x99}, KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s1.Seal([]byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Open(ct); err != ErrAuthFailed {
		t.Errorf("wrong key: got %v, want ErrAuthFailed", err)
	}
}

func TestNewSealerRejectsBadKeyLength(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 32} {
		if _, err := NewSealer(make([]byte, n), nil); err == nil {
			t.Errorf("NewSealer with %d-byte key should fail", n)
		}
	}
}

func TestNewRandomSealer(t *testing.T) {
	s, key, err := NewRandomSealer()
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != KeySize {
		t.Fatalf("key length %d", len(key))
	}
	ct, err := s.Seal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// A sealer reconstructed from the returned key must open the block.
	s2, err := NewSealer(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := s2.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "x" {
		t.Fatalf("got %q", pt)
	}
}

func TestSealOpenQuick(t *testing.T) {
	s := newTestSealer(t)
	f := func(pt []byte) bool {
		ct, err := s.Seal(pt)
		if err != nil {
			return false
		}
		got, err := s.Open(ct)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSeal4KB(b *testing.B) {
	s, _, err := NewRandomSealer()
	if err != nil {
		b.Fatal(err)
	}
	pt := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Seal(pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen4KB(b *testing.B) {
	s, _, err := NewRandomSealer()
	if err != nil {
		b.Fatal(err)
	}
	ct, err := s.Seal(make([]byte, 4096))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Open(ct); err != nil {
			b.Fatal(err)
		}
	}
}
