package xcrypto

import (
	"bytes"
	"errors"
	"testing"
)

func newTestKeyring(t *testing.T) *Keyring {
	t.Helper()
	k, err := NewKeyring(bytes.Repeat([]byte{0x42}, KeySize), 0, nil)
	if err != nil {
		t.Fatalf("NewKeyring: %v", err)
	}
	return k
}

func TestKeyringPerStoreSeparation(t *testing.T) {
	k := newTestKeyring(t)
	defer k.Close()
	sa, err := k.Sealer("T1.data")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := k.Sealer("T2.data")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sa.Seal([]byte("tuple"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Open(ct); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("cross-store open: got %v, want ErrAuthFailed (subkeys must be independent)", err)
	}
	pt, err := sa.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "tuple" {
		t.Fatalf("got %q", pt)
	}
	// Same name twice yields the same cached sealer.
	again, err := k.Sealer("T1.data")
	if err != nil {
		t.Fatal(err)
	}
	if again != sa {
		t.Error("Sealer must cache per store name")
	}
}

func TestKeyringSubkey(t *testing.T) {
	k := newTestKeyring(t)
	defer k.Close()
	a, err := k.Subkey("plan-cache signature")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 32 {
		t.Fatalf("subkey is %d bytes, want 32", len(a))
	}
	b, err := k.Subkey("other purpose")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("distinct labels must derive distinct subkeys")
	}
	// Deterministic across rings with the same master.
	k2 := newTestKeyring(t)
	defer k2.Close()
	a2, err := k2.Subkey("plan-cache signature")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, a2) {
		t.Error("same master + label must derive the same subkey")
	}
	k3 := newTestKeyring(t)
	k3.Close()
	if _, err := k3.Subkey("x"); !errors.Is(err, ErrSealerClosed) {
		t.Errorf("closed ring Subkey: got %v, want ErrSealerClosed", err)
	}
}

func TestKeyringRotationLazyReseal(t *testing.T) {
	k := newTestKeyring(t)
	defer k.Close()
	s, err := k.Sealer("T1.data")
	if err != nil {
		t.Fatal(err)
	}
	old, err := s.Seal([]byte("epoch zero block"))
	if err != nil {
		t.Fatal(err)
	}
	if old[1] != 0 {
		t.Fatalf("epoch byte = %d, want 0", old[1])
	}
	next, err := k.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if next != 1 || k.Epoch() != 1 || s.Epoch() != 1 {
		t.Fatalf("rotate: ring %d sealer %d returned %d, want all 1", k.Epoch(), s.Epoch(), next)
	}
	// Old-epoch blocks still open after rotation (lazy migration).
	pt, err := s.Open(old)
	if err != nil {
		t.Fatalf("open pre-rotation block: %v", err)
	}
	// Re-sealing (the write-back path) stamps the new epoch.
	renewed, err := s.Seal(pt)
	if err != nil {
		t.Fatal(err)
	}
	if renewed[1] != 1 {
		t.Fatalf("re-sealed epoch byte = %d, want 1", renewed[1])
	}
	// A store derived after the rotation starts at the ring's epoch.
	late, err := k.Sealer("T9.data")
	if err != nil {
		t.Fatal(err)
	}
	if late.Epoch() != 1 {
		t.Fatalf("late sealer epoch = %d, want 1", late.Epoch())
	}
}

func TestKeyringDeterministicAcrossInstances(t *testing.T) {
	master := bytes.Repeat([]byte{7}, KeySize)
	k1, err := NewKeyring(master, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer k1.Close()
	s1, err := k1.Sealer("shared")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := s1.Seal([]byte("persisted"))
	if err != nil {
		t.Fatal(err)
	}
	// A fresh keyring over the same master key (a client restart) derives
	// the same store subkeys and opens the block.
	k2, err := NewKeyring(master, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()
	s2, err := k2.Sealer("shared")
	if err != nil {
		t.Fatal(err)
	}
	pt, err := s2.Open(ct)
	if err != nil {
		t.Fatalf("restart open: %v", err)
	}
	if string(pt) != "persisted" {
		t.Fatalf("got %q", pt)
	}
}

func TestKeyringOpensLegacyMasterKeyBlocks(t *testing.T) {
	// Pre-keyring deployments sealed every store with one sealer built
	// directly from the master key, in the CTR+HMAC format. A keyring over
	// the same master key must still open those blocks from any store.
	master := bytes.Repeat([]byte{9}, KeySize)
	oldStyle, err := NewSealer(master, nil)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := oldStyle.LegacySeal([]byte("pre-refactor block"))
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKeyring(master, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	for _, store := range []string{"T1.data", "T1.idx.a", "shared"} {
		s, err := k.Sealer(store)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := s.Open(legacy)
		if err != nil {
			t.Fatalf("store %q: open legacy block: %v", store, err)
		}
		if string(pt) != "pre-refactor block" {
			t.Fatalf("store %q: got %q", store, pt)
		}
	}
}

func TestKeyringClose(t *testing.T) {
	k := newTestKeyring(t)
	s, err := k.Sealer("T1.data")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}
	if err := k.Close(); err != nil {
		t.Fatalf("Close must be idempotent: %v", err)
	}
	if _, err := k.Sealer("T2.data"); !errors.Is(err, ErrSealerClosed) {
		t.Errorf("Sealer after Close: got %v, want ErrSealerClosed", err)
	}
	if _, err := k.Rotate(); !errors.Is(err, ErrSealerClosed) {
		t.Errorf("Rotate after Close: got %v, want ErrSealerClosed", err)
	}
	if _, err := s.Seal([]byte("x")); !errors.Is(err, ErrSealerClosed) {
		t.Errorf("Seal on derived sealer after ring Close: got %v, want ErrSealerClosed", err)
	}
}

func TestKeyringRejectsBadMasterLength(t *testing.T) {
	for _, n := range []int{0, 15, 17, 32} {
		if _, err := NewKeyring(make([]byte, n), 0, nil); err == nil {
			t.Errorf("NewKeyring with %d-byte master should fail", n)
		}
	}
}
