package xcrypto

import (
	"bytes"
	"testing"
)

// FuzzOpen hardens the client against arbitrary bytes from a malicious
// server: Open must never panic and never accept unauthentic input.
func FuzzOpen(f *testing.F) {
	s, err := NewSealer(bytes.Repeat([]byte{1}, KeySize), nil)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := s.Seal([]byte("seed block"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(make([]byte, Overhead))
	f.Add(make([]byte, Overhead+100))
	// GCM-format seeds: a genuine current-format block, one with the epoch
	// byte flipped, and a bare GCM-looking header over junk.
	if err := s.SetEpoch(3); err != nil {
		f.Fatal(err)
	}
	epochBlock, err := s.Seal([]byte("epoch-tagged block"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(epochBlock)
	flipped := append([]byte(nil), epochBlock...)
	flipped[1] ^= 0xFF
	f.Add(flipped)
	junk := make([]byte, Overhead+32)
	junk[0] = FormatGCM
	f.Add(junk)
	// Legacy-format seeds: a genuine CTR+HMAC block and a truncated one.
	legacy, err := s.LegacySeal([]byte("legacy block"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(legacy)
	f.Add(legacy[:len(legacy)-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		pt, err := s.Open(data)
		if err == nil {
			// Only genuinely sealed blocks may open; re-seal and re-open to
			// confirm self-consistency.
			ct2, err2 := s.Seal(pt)
			if err2 != nil {
				t.Fatal(err2)
			}
			if _, err3 := s.Open(ct2); err3 != nil {
				t.Fatal(err3)
			}
		}
	})
}

// FuzzCrossVersion round-trips arbitrary plaintexts through both sealed
// formats: seal current → open, seal legacy → open via the compat path, on
// the same sealer. Both must return the exact plaintext, and the two sealed
// layouts must cost the same Overhead so block geometry stays
// format-independent.
func FuzzCrossVersion(f *testing.F) {
	s, err := NewSealer(bytes.Repeat([]byte{3}, KeySize), nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte("tuple data"))
	f.Add(bytes.Repeat([]byte{0xAB}, 512))
	f.Fuzz(func(t *testing.T, pt []byte) {
		gcm, err := s.Seal(pt)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := s.LegacySeal(pt)
		if err != nil {
			t.Fatal(err)
		}
		if len(gcm) != len(legacy) || len(gcm) != SealedLen(len(pt)) {
			t.Fatalf("layout sizes diverge: gcm %d legacy %d want %d", len(gcm), len(legacy), SealedLen(len(pt)))
		}
		got, err := s.Open(gcm)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatal("gcm round trip mismatch")
		}
		got, err = s.Open(legacy)
		if err != nil {
			t.Fatalf("legacy compat open: %v", err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatal("legacy round trip mismatch")
		}
	})
}

// FuzzSealRoundTrip checks Seal/Open over arbitrary plaintexts.
func FuzzSealRoundTrip(f *testing.F) {
	s, err := NewSealer(bytes.Repeat([]byte{2}, KeySize), nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte("tuple data"))
	f.Fuzz(func(t *testing.T, pt []byte) {
		ct, err := s.Seal(pt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Open(ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatal("round trip mismatch")
		}
	})
}
