package xcrypto

import (
	"bytes"
	"testing"
)

// FuzzOpen hardens the client against arbitrary bytes from a malicious
// server: Open must never panic and never accept unauthentic input.
func FuzzOpen(f *testing.F) {
	s, err := NewSealer(bytes.Repeat([]byte{1}, KeySize), nil)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := s.Seal([]byte("seed block"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(make([]byte, Overhead))
	f.Add(make([]byte, Overhead+100))
	f.Fuzz(func(t *testing.T, data []byte) {
		pt, err := s.Open(data)
		if err == nil {
			// Only genuinely sealed blocks may open; re-seal and re-open to
			// confirm self-consistency.
			ct2, err2 := s.Seal(pt)
			if err2 != nil {
				t.Fatal(err2)
			}
			if _, err3 := s.Open(ct2); err3 != nil {
				t.Fatal(err3)
			}
		}
	})
}

// FuzzSealRoundTrip checks Seal/Open over arbitrary plaintexts.
func FuzzSealRoundTrip(f *testing.F) {
	s, err := NewSealer(bytes.Repeat([]byte{2}, KeySize), nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte("tuple data"))
	f.Fuzz(func(t *testing.T, pt []byte) {
		ct, err := s.Seal(pt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Open(ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatal("round trip mismatch")
		}
	})
}
