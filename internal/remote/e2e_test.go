package remote

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"oblivjoin/internal/core"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/xcrypto"
)

func e2eRel(name string, keys []int64) *relation.Relation {
	rel := &relation.Relation{Schema: relation.Schema{Table: name, Columns: []string{"k", "id"}}}
	for i, k := range keys {
		rel.Tuples = append(rel.Tuples, relation.Tuple{Values: []int64{k, int64(i)}})
	}
	return rel
}

func multiset(tuples []relation.Tuple) map[string]int {
	m := map[string]int{}
	for _, t := range tuples {
		m[fmt.Sprint(t.Values)]++
	}
	return m
}

// runLoopbackJoin stores both relations on a loopback ojoinserver via the
// remote client and runs the binary oblivious sort-merge join entirely over
// the wire.
func runLoopbackJoin(t *testing.T, faults FaultModel, k1, k2 []int64) *core.Result {
	t.Helper()
	m := storage.NewMeter()
	srv, c := startServer(t,
		ServerOptions{Faults: faults},
		ClientOptions{Meter: m, MaxRetries: 6, RequestTimeout: 5 * time.Second})
	_ = srv
	sealer, err := xcrypto.NewSealer(bytes.Repeat([]byte{3}, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := e2eRel("t1", k1), e2eRel("t2", k2)
	topts := table.Options{
		BlockPayload: 256,
		Meter:        m,
		Sealer:       sealer,
		Rand:         oram.NewSeededSource(21),
		OpenStore:    c.Opener(),
	}
	t1, err := table.Store(r1, []string{"k"}, topts)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := table.Store(r2, []string{"k"}, topts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SortMergeJoin(t1, t2, "k", "k", core.Options{
		Meter:        m,
		Sealer:       sealer,
		OutBlockSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSortMergeJoinOverLoopbackServer runs a binary sort-merge join with
// every input table hosted on a loopback ojoinserver and checks the result
// against the in-memory reference join — first over a clean transport, then
// under deterministic transient fault injection, which must change nothing
// but the number of wire attempts.
func TestSortMergeJoinOverLoopbackServer(t *testing.T) {
	k1 := []int64{1, 2, 2, 4, 6, 7, 7, 9, 12, 15}
	k2 := []int64{2, 2, 3, 4, 7, 7, 7, 10, 12, 14}
	want := multiset(core.ReferenceEquiJoin(e2eRel("t1", k1), e2eRel("t2", k2), "k", "k"))

	check := func(t *testing.T, res *core.Result) {
		t.Helper()
		got := multiset(res.Tuples)
		if len(got) != len(want) {
			t.Fatalf("distinct tuples: got %d, want %d", len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("tuple %s: got %d, want %d", k, got[k], n)
			}
		}
		if res.Stats.NetworkRounds == 0 || res.Stats.BlocksMoved() == 0 {
			t.Fatalf("no transport traffic recorded: %+v", res.Stats)
		}
	}

	var clean, faulty *core.Result
	t.Run("clean", func(t *testing.T) {
		clean = runLoopbackJoin(t, nil, k1, k2)
		check(t, clean)
	})
	t.Run("injected-faults", func(t *testing.T) {
		shaper := &Shaper{FailEvery: 7}
		faulty = runLoopbackJoin(t, shaper, k1, k2)
		check(t, faulty)
		if shaper.Requests() == 0 {
			t.Fatal("fault model never consulted")
		}
	})
	if clean != nil && faulty != nil {
		// Fault injection perturbs only the transport, never the join: the
		// result sizes and the metered logical traffic are identical.
		if clean.RealCount != faulty.RealCount || clean.PaddedSteps != faulty.PaddedSteps {
			t.Fatalf("faults changed the join: %+v vs %+v", clean, faulty)
		}
	}
}
