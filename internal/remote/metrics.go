package remote

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/telemetry"
)

// This file renders the server's observability surfaces: Prometheus text
// exposition for /metrics (counters and fixed-boundary latency
// histograms) and the JSON span batches behind OpTrace / /debug/trace.
// Everything rendered is a function of request sizes, kinds, and timing —
// quantities the untrusted server observes anyway, so nothing beyond
// Definition 1's leakage is published.

// WriteStoreMetrics renders the per-store request counters in the
// Prometheus text exposition format, one labeled sample per store plus a
// server total.
func WriteStoreMetrics(w io.Writer, srv *Server) {
	names, counts := srv.CountsAll()
	type metric struct {
		name, help string
		value      func(Counters) int64
	}
	metrics := []metric{
		{"ojoin_store_requests_total", "RPCs served against the store (one request = one round trip).",
			func(c Counters) int64 { return c.Requests }},
		{"ojoin_store_reads_total", "Single-block read requests.",
			func(c Counters) int64 { return c.Reads }},
		{"ojoin_store_writes_total", "Single-block write requests.",
			func(c Counters) int64 { return c.Writes }},
		{"ojoin_store_batch_reads_total", "Batched read requests (e.g. ORAM path downloads).",
			func(c Counters) int64 { return c.BatchReads }},
		{"ojoin_store_batch_writes_total", "Batched write requests (e.g. ORAM path write-backs).",
			func(c Counters) int64 { return c.BatchWrites }},
		{"ojoin_store_blocks_read_total", "Individual blocks sent to clients.",
			func(c Counters) int64 { return c.BlocksRead }},
		{"ojoin_store_blocks_written_total", "Individual blocks received from clients.",
			func(c Counters) int64 { return c.BlocksWritten }},
	}
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", m.name, m.help, m.name)
		for _, n := range names {
			fmt.Fprintf(w, "%s{store=%q} %d\n", m.name, n, m.value(counts[n]))
		}
	}
	fmt.Fprintf(w, "# HELP ojoin_server_requests_total RPCs served across all stores.\n")
	fmt.Fprintf(w, "# TYPE ojoin_server_requests_total counter\n")
	fmt.Fprintf(w, "ojoin_server_requests_total %d\n", srv.TotalRequests())
}

// WriteSessionMetrics renders the serving layer's admission and broker
// counters, including the per-store broker decomposition (rounds,
// contention, and queue wait per guarded store). Session counts,
// rejection totals, and broker tallies are functions of request arrival
// timing only — the same public schedule the untrusted server already
// observes.
func WriteSessionMetrics(w io.Writer, srv *Server) {
	ss := srv.Sessions().Snapshot()
	bs := srv.BrokerStats()
	type sample struct {
		name, typ, help string
		value           int64
	}
	samples := []sample{
		{"ojoin_sessions_active", "gauge", "Live client sessions.", int64(ss.Active)},
		{"ojoin_sessions_peak", "gauge", "High-water concurrent session count.", int64(ss.Peak)},
		{"ojoin_sessions_opened_total", "counter", "Sessions admitted.", ss.Opened},
		{"ojoin_sessions_closed_total", "counter", "Sessions ended by their clients.", ss.Closed},
		{"ojoin_sessions_rejected_total", "counter", "Hellos refused at the admission cap.", ss.Rejected},
		{"ojoin_sessions_expired_total", "counter", "Sessions reaped by their idle deadline.", ss.Expired},
		{"ojoin_sessions_requests_total", "counter", "Session-scoped requests served.", ss.Requests},
		{"ojoin_broker_rounds_total", "counter", "Batch rounds serialized by the ORAM access broker.", bs.Rounds},
		{"ojoin_broker_contended_total", "counter", "Rounds that waited behind another session's round.", bs.Contended},
		{"ojoin_broker_wait_seconds_total", "counter", "Total time rounds spent queued behind other sessions' rounds.", bs.WaitNS},
		{"ojoin_broker_stores", "gauge", "Stores owned by the ORAM access broker.", int64(bs.Stores)},
	}
	for _, s := range samples {
		if s.name == "ojoin_broker_wait_seconds_total" {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n",
				s.name, s.help, s.name, s.name, telemetry.Seconds(s.value))
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", s.name, s.help, s.name, s.typ, s.name, s.value)
	}
	// Per-store broker rows: where the contention actually is.
	guards := srv.broker.Guards()
	fmt.Fprintf(w, "# HELP ojoin_broker_store_rounds_total Batch rounds serialized per guarded store.\n")
	fmt.Fprintf(w, "# TYPE ojoin_broker_store_rounds_total counter\n")
	for _, g := range guards {
		fmt.Fprintf(w, "ojoin_broker_store_rounds_total{store=%q} %d\n", g.Name(), g.Rounds())
	}
	fmt.Fprintf(w, "# HELP ojoin_broker_store_contended_total Rounds that waited, per guarded store.\n")
	fmt.Fprintf(w, "# TYPE ojoin_broker_store_contended_total counter\n")
	for _, g := range guards {
		fmt.Fprintf(w, "ojoin_broker_store_contended_total{store=%q} %d\n", g.Name(), g.Contended())
	}
	fmt.Fprintf(w, "# HELP ojoin_broker_store_wait_seconds_total Queue wait accumulated per guarded store.\n")
	fmt.Fprintf(w, "# TYPE ojoin_broker_store_wait_seconds_total counter\n")
	for _, g := range guards {
		fmt.Fprintf(w, "ojoin_broker_store_wait_seconds_total{store=%q} %s\n", g.Name(), telemetry.Seconds(g.WaitNS()))
	}
}

// WriteHistogramMetrics renders the server's latency histograms: per-op
// service time (fault shaping included), broker queue wait, and
// wrapped-store execution time, in Prometheus histogram exposition
// (cumulative _bucket{le=...} in seconds, _sum, _count).
func WriteHistogramMetrics(w io.Writer, srv *Server) {
	snaps := srv.HistogramSnapshots()
	ops := make([]string, 0, len(snaps))
	for k := range snaps {
		if len(k) > 3 && k[:3] == "op." {
			ops = append(ops, k)
		}
	}
	sort.Strings(ops)
	fmt.Fprintf(w, "# HELP ojoin_op_duration_seconds Server-side service time per wire op.\n")
	fmt.Fprintf(w, "# TYPE ojoin_op_duration_seconds histogram\n")
	for _, k := range ops {
		telemetry.WriteHistogramText(w, "ojoin_op_duration_seconds", fmt.Sprintf("op=%q", k[3:]), snaps[k])
	}
	fmt.Fprintf(w, "# HELP ojoin_broker_queue_wait_seconds Time store rounds queued behind other sessions' rounds.\n")
	fmt.Fprintf(w, "# TYPE ojoin_broker_queue_wait_seconds histogram\n")
	telemetry.WriteHistogramText(w, "ojoin_broker_queue_wait_seconds", "", snaps["queue_wait"])
	fmt.Fprintf(w, "# HELP ojoin_store_io_seconds Wrapped-store execution time per round.\n")
	fmt.Fprintf(w, "# TYPE ojoin_store_io_seconds histogram\n")
	telemetry.WriteHistogramText(w, "ojoin_store_io_seconds", "", snaps["store_io"])
}

// WriteMeterMetrics renders a client-side storage.Meter's trace-cap
// accounting in the Prometheus text format — the Dropped count that was
// previously reachable only in-process. The meter lives on the trusted
// client, so this renders into client-side surfaces (ojoin -shards /
// -watch output), not the untrusted server's endpoint.
func WriteMeterMetrics(w io.Writer, m *storage.Meter) {
	if m == nil {
		return
	}
	fmt.Fprintf(w, "# HELP ojoin_meter_trace_dropped_total Trace entries dropped at the meter's trace cap.\n")
	fmt.Fprintf(w, "# TYPE ojoin_meter_trace_dropped_total counter\n")
	fmt.Fprintf(w, "ojoin_meter_trace_dropped_total %d\n", m.Dropped())
	fmt.Fprintf(w, "# HELP ojoin_meter_trace_len Trace entries currently buffered by the meter.\n")
	fmt.Fprintf(w, "# TYPE ojoin_meter_trace_len gauge\n")
	fmt.Fprintf(w, "ojoin_meter_trace_len %d\n", m.TraceLen())
}

// MarshalSpans encodes a server-span batch as JSON — the OpTrace payload
// and the /debug/trace response body.
func MarshalSpans(spans []telemetry.ServerSpan) ([]byte, error) {
	if spans == nil {
		spans = []telemetry.ServerSpan{}
	}
	return json.Marshal(spans)
}

// ParseSpans decodes a span batch produced by MarshalSpans.
func ParseSpans(data []byte) ([]telemetry.ServerSpan, error) {
	var spans []telemetry.ServerSpan
	if err := json.Unmarshal(data, &spans); err != nil {
		return nil, fmt.Errorf("remote: parse spans: %w", err)
	}
	return spans, nil
}

// WriteTrace serves one /debug/trace response: the buffered span batch
// for traceID (0 = everything), as a JSON array.
func WriteTrace(w io.Writer, srv *Server, traceID uint64) error {
	data, err := MarshalSpans(srv.TraceSpans(traceID))
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
