package remote

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oblivjoin/internal/session"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/telemetry"
)

// Counters is a per-store snapshot of server-side access accounting. Each
// request is one network round trip, so Requests is the server's view of
// the round count the paper's cost argument is about — tests assert ORAM
// accesses against it rather than against client-side simulation.
type Counters struct {
	// Requests counts RPCs served against this store (= round trips).
	Requests int64
	// Per-op request counts.
	Reads, Writes, BatchReads, BatchWrites, Stats, Exchanges int64
	// BlocksRead / BlocksWritten count individual block transfers.
	BlocksRead, BlocksWritten int64
}

// counterSet is the live, lock-free form of Counters. Request handlers
// increment it atomically outside the server mutex, so a metrics endpoint
// polling snapshots mid-join never contends with request serving.
type counterSet struct {
	requests, reads, writes, batchReads, batchWrites, stats atomic.Int64
	exchanges                                               atomic.Int64
	blocksRead, blocksWritten                               atomic.Int64
}

// snapshot reads the set atomically field-by-field. Values observed
// together may straddle an in-flight increment, which is fine for
// monitoring: each individual counter is always exact.
func (c *counterSet) snapshot() Counters {
	return Counters{
		Requests:      c.requests.Load(),
		Reads:         c.reads.Load(),
		Writes:        c.writes.Load(),
		BatchReads:    c.batchReads.Load(),
		BatchWrites:   c.batchWrites.Load(),
		Stats:         c.stats.Load(),
		Exchanges:     c.exchanges.Load(),
		BlocksRead:    c.blocksRead.Load(),
		BlocksWritten: c.blocksWritten.Load(),
	}
}

// count records one request against the set.
func (c *counterSet) count(req *Request) {
	c.requests.Add(1)
	blocks := int64(len(req.Indices))
	switch req.Op {
	case OpRead:
		c.reads.Add(1)
		c.blocksRead.Add(blocks)
	case OpWrite:
		c.writes.Add(1)
		c.blocksWritten.Add(blocks)
	case OpReadMany:
		c.batchReads.Add(1)
		c.blocksRead.Add(blocks)
	case OpWriteMany:
		c.batchWrites.Add(1)
		c.blocksWritten.Add(blocks)
	case OpStat:
		c.stats.Add(1)
	case OpExchange:
		// Indices carries the read set, WriteIndices the write set.
		c.exchanges.Add(1)
		c.blocksRead.Add(blocks)
		c.blocksWritten.Add(int64(len(req.WriteIndices)))
	}
}

// ServerOptions configures a Server.
type ServerOptions struct {
	// MaxFrame bounds accepted request frames; 0 means DefaultMaxFrame.
	MaxFrame int
	// Faults, when non-nil, shapes every request (latency and injected
	// transient failures).
	Faults FaultModel
	// MaxStoreBytes caps the total footprint OpCreate may allocate across
	// all dynamically created stores; 0 means 1 GiB.
	MaxStoreBytes int64
	// OpenStore, when non-nil, provisions the store backing each OpCreate —
	// plug in diskstore.Dir.Opener to make the server persistent. Nil means
	// in-memory MemStores, which vanish on shutdown.
	OpenStore storage.Opener
	// MaxSessions bounds the concurrent session table; 0 means the session
	// package default (64). Sessionless clients are unaffected.
	MaxSessions int
	// SessionTimeout is the idle deadline after which a silent session is
	// reaped; 0 means the session package default (2 minutes). OpHello may
	// request a shorter timeout per session.
	SessionTimeout time.Duration
	// DrainTimeout bounds how long Close waits for live sessions to end
	// before closing connections and stores anyway; 0 means 5s. A server
	// with no live sessions drains instantly.
	DrainTimeout time.Duration
	// TraceBuffer bounds the server-span ring buffer serving OpTrace and
	// /debug/trace; 0 means telemetry.DefaultSpanRing.
	TraceBuffer int
	// SlowOpThreshold, when positive, emits one structured log line per
	// store op slower than the threshold (rate-limited to one line per
	// 100ms so a saturated server cannot flood its own log). Zero disables
	// the slow-op log.
	SlowOpThreshold time.Duration
	// SlowLog receives slow-op lines; nil means slog.Default().
	SlowLog *slog.Logger
}

func (o ServerOptions) maxFrame() int {
	if o.MaxFrame <= 0 {
		return DefaultMaxFrame
	}
	return o.MaxFrame
}

func (o ServerOptions) maxStoreBytes() int64 {
	if o.MaxStoreBytes <= 0 {
		return 1 << 30
	}
	return o.MaxStoreBytes
}

func (o ServerOptions) drainTimeout() time.Duration {
	if o.DrainTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DrainTimeout
}

type connState struct {
	c net.Conn
	// busy marks a request mid-execution; graceful shutdown lets busy
	// connections finish their current request before closing.
	busy bool
	// closeAfter asks the serving goroutine to exit once the in-flight
	// request's response has been written.
	closeAfter bool
}

// Server hosts named block stores behind the wire protocol. It is the
// paper's untrusted storage server: it executes block reads and writes
// verbatim and performs no other computation.
//
// Concurrency: every hosted store is owned by a session.Broker guard, so
// rounds from concurrent connections are serialized per store — the ORAM
// scheduler's single-client execution model holds for each tree no matter
// how many sessions the server admits (see internal/session).
type Server struct {
	opts     ServerOptions
	sessions *session.Manager
	broker   *session.Broker

	// Latency histograms (fixed-boundary, lock-free observation): one per
	// wire op, plus the broker queue-wait and store-I/O decomposition of
	// every guarded round. opHists is built once and never mutated, so
	// request handlers index it without a lock.
	opHists   map[Op]*telemetry.Histogram
	queueWait *telemetry.Histogram
	storeIO   *telemetry.Histogram
	// ring buffers recent per-op server spans for OpTrace / /debug/trace.
	ring *telemetry.SpanRing
	// slowLast is the UnixNano of the last slow-op line (rate limiting).
	slowLast atomic.Int64

	mu        sync.Mutex
	stores    map[string]storage.Store
	counts    map[string]*counterSet
	conns     map[*connState]struct{}
	ln        net.Listener
	closing   bool
	createdBy int64 // bytes allocated via OpCreate

	wg sync.WaitGroup
}

// NewServer returns a server with no stores registered.
func NewServer(opts ServerOptions) *Server {
	opHists := make(map[Op]*telemetry.Histogram, 6)
	for _, op := range []Op{OpRead, OpWrite, OpReadMany, OpWriteMany, OpStat, OpExchange} {
		opHists[op] = telemetry.NewHistogram()
	}
	return &Server{
		opts: opts,
		sessions: session.NewManager(session.Options{
			MaxSessions: opts.MaxSessions,
			IdleTimeout: opts.SessionTimeout,
		}),
		broker:    session.NewBroker(),
		opHists:   opHists,
		queueWait: telemetry.NewHistogram(),
		storeIO:   telemetry.NewHistogram(),
		ring:      telemetry.NewSpanRing(opts.TraceBuffer),
		stores:    make(map[string]storage.Store),
		counts:    make(map[string]*counterSet),
		conns:     make(map[*connState]struct{}),
	}
}

// HistogramSnapshots returns the server's latency histograms keyed by a
// stable metric name: "op.<wire-op>" for per-op service time (fault
// shaping included), "queue_wait" for broker queue wait, and "store_io"
// for wrapped-store execution time.
func (s *Server) HistogramSnapshots() map[string]telemetry.HistogramSnapshot {
	out := make(map[string]telemetry.HistogramSnapshot, len(s.opHists)+2)
	for op, h := range s.opHists {
		out["op."+op.String()] = h.Snapshot()
	}
	out["queue_wait"] = s.queueWait.Snapshot()
	out["store_io"] = s.storeIO.Snapshot()
	return out
}

// TraceSpans returns the buffered server spans for a trace (0 = all),
// oldest first.
func (s *Server) TraceSpans(traceID uint64) []telemetry.ServerSpan {
	return s.ring.Snapshot(traceID)
}

// Sessions exposes the admission table for metrics endpoints.
func (s *Server) Sessions() *session.Manager { return s.sessions }

// BrokerStats snapshots the access broker's round/contention counters.
func (s *Server) BrokerStats() session.BrokerStats { return s.broker.Stats() }

// Register hosts an existing store under the given name. The store is
// placed under the access broker, so traffic against it is serialized
// round-by-round with every other connection's.
func (s *Server) Register(name string, st storage.Store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.stores[name]; ok {
		return fmt.Errorf("remote: store %q already registered", name)
	}
	s.stores[name] = s.broker.Wrap(name, st)
	s.counts[name] = &counterSet{}
	return nil
}

// StoreNames lists hosted stores.
func (s *Server) StoreNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.stores))
	for n := range s.stores {
		names = append(names, n)
	}
	return names
}

// Counts returns a snapshot of the access counters for a store. Counter
// reads are atomic, so snapshots taken while requests are in flight are
// exact per field — live monitoring never waits on the request path.
func (s *Server) Counts(name string) Counters {
	s.mu.Lock()
	c, ok := s.counts[name]
	s.mu.Unlock()
	if ok {
		return c.snapshot()
	}
	return Counters{}
}

// CountsAll snapshots every store's counters, keyed by store name in
// sorted order — the metrics endpoint's one-call view of the server.
func (s *Server) CountsAll() ([]string, map[string]Counters) {
	s.mu.Lock()
	sets := make(map[string]*counterSet, len(s.counts))
	for n, c := range s.counts {
		sets[n] = c
	}
	s.mu.Unlock()
	names := make([]string, 0, len(sets))
	out := make(map[string]Counters, len(sets))
	for n, c := range sets {
		names = append(names, n)
		out[n] = c.snapshot()
	}
	sort.Strings(names)
	return names, out
}

// TotalRequests sums Requests across all stores.
func (s *Server) TotalRequests() int64 {
	s.mu.Lock()
	sets := make([]*counterSet, 0, len(s.counts))
	for _, c := range s.counts {
		sets = append(sets, c)
	}
	s.mu.Unlock()
	var total int64
	for _, c := range sets {
		total += c.requests.Load()
	}
	return total
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving in the
// background. The bound address is returned so callers can use port 0.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("remote: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		cs := &connState{c: c}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[cs] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(cs)
	}
}

func (s *Server) serveConn(cs *connState) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, cs)
		s.mu.Unlock()
		cs.c.Close()
	}()
	// Per-connection frame buffers: one goroutine serves the connection, so
	// reuse across iterations is race-free, and DecodeRequest copies block
	// payloads out of inBuf before the handler runs.
	var inBuf, outBuf []byte
	for {
		payload, err := ReadFrameInto(cs.c, s.opts.maxFrame(), inBuf[:0])
		if err != nil {
			return
		}
		inBuf = payload[:0]
		s.mu.Lock()
		cs.busy = true
		s.mu.Unlock()

		var resp *Response
		req, derr := DecodeRequest(payload)
		if derr != nil {
			resp = &Response{Status: StatusError, Msg: derr.Error()}
		} else {
			resp = s.handle(req)
		}
		outBuf = AppendFramedResponse(outBuf[:0], resp)
		_, werr := cs.c.Write(outBuf)

		s.mu.Lock()
		cs.busy = false
		stop := cs.closeAfter
		s.mu.Unlock()
		if werr != nil || derr != nil || stop {
			return
		}
	}
}

// handle executes one request. The fault model runs first so injected
// latency and transient failures shape every operation uniformly.
func (s *Server) handle(req *Request) *Response {
	start := time.Now()
	if f := s.opts.Faults; f != nil {
		delay, transient := f.Next(req)
		// A client-declared deadline the injected latency alone would blow
		// fails fast: the client has already given up by the time a reply
		// could land, so serving the request would only burn a round.
		if req.DeadlineMS > 0 && delay >= time.Duration(req.DeadlineMS)*time.Millisecond {
			return &Response{Status: StatusError, Msg: "remote: deadline exceeded before service"}
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		if transient {
			return &Response{Status: StatusTransient, Msg: "remote: injected transient fault"}
		}
	}
	switch req.Op {
	case OpHello:
		return s.handleHello(req)
	case OpBye:
		return s.handleBye(req)
	case OpTrace:
		// Pure telemetry read: no store, no counters, no access trace —
		// fetching a trace never perturbs the trace being fetched.
		return s.handleTrace(req)
	}
	// Resolve the store name through the session layer: session-scoped
	// requests are qualified into their tenant's namespace; sessionless
	// requests may not address qualified names directly.
	name := req.Store
	tenant := ""
	if req.Session != 0 {
		sess, err := s.sessions.Get(req.Session)
		if err != nil {
			return &Response{Status: StatusError, Msg: err.Error()}
		}
		tenant = sess.Tenant()
		name = sess.Qualify(req.Store)
		sess.CountRequest(name)
	} else if session.Reserved(name) {
		return &Response{Status: StatusError, Msg: fmt.Sprintf("remote: store %q is in a tenant namespace", name)}
	}
	if req.Op == OpCreate {
		return s.handleCreate(req, name)
	}
	s.mu.Lock()
	st, ok := s.stores[name]
	c := s.counts[name]
	s.mu.Unlock()
	if !ok {
		return &Response{Status: StatusError, Msg: fmt.Sprintf("remote: unknown store %q", req.Store)}
	}
	c.count(req)

	// Dispatch through a timed view of the broker guard so the round's
	// cost decomposes into queue wait and store I/O. The view performs the
	// exact same serialized rounds — instrumentation adds no accesses.
	var tm session.Timing
	if g, ok := st.(*session.Guard); ok {
		st = g.Timed(&tm)
	}
	resp := s.dispatch(st, req)
	s.observe(req, tenant, time.Since(start), tm)
	return resp
}

// dispatch executes a store-scoped op against the (possibly timed) store.
func (s *Server) dispatch(st storage.Store, req *Request) *Response {
	fail := func(err error) *Response { return &Response{Status: StatusError, Msg: err.Error()} }
	switch req.Op {
	case OpRead:
		if len(req.Indices) != 1 {
			return fail(fmt.Errorf("remote: read wants 1 index, got %d", len(req.Indices)))
		}
		blk, err := st.Read(req.Indices[0])
		if err != nil {
			return fail(err)
		}
		return &Response{Blocks: [][]byte{blk}}
	case OpWrite:
		if len(req.Indices) != 1 || len(req.Blocks) != 1 {
			return fail(fmt.Errorf("remote: write wants 1 index and 1 block, got %d/%d", len(req.Indices), len(req.Blocks)))
		}
		if err := st.Write(req.Indices[0], req.Blocks[0]); err != nil {
			return fail(err)
		}
		return &Response{}
	case OpReadMany:
		blocks, err := readMany(st, req.Indices)
		if err != nil {
			return fail(err)
		}
		return &Response{Blocks: blocks}
	case OpWriteMany:
		if len(req.Indices) != len(req.Blocks) {
			return fail(fmt.Errorf("remote: batch write of %d indices with %d blocks", len(req.Indices), len(req.Blocks)))
		}
		if err := writeMany(st, req.Indices, req.Blocks); err != nil {
			return fail(err)
		}
		return &Response{}
	case OpExchange:
		if len(req.WriteIndices) != len(req.Blocks) {
			return fail(fmt.Errorf("remote: exchange of %d write indices with %d blocks", len(req.WriteIndices), len(req.Blocks)))
		}
		blocks, err := exchange(st, req.WriteIndices, req.Blocks, req.Indices)
		if err != nil {
			return fail(err)
		}
		return &Response{Blocks: blocks}
	case OpStat:
		return &Response{Slots: st.Len(), BlockSize: int64(st.BlockSize())}
	default:
		return fail(fmt.Errorf("remote: unsupported op %s", req.Op))
	}
}

// observe records one served store op into the latency histograms, the
// span ring (traced requests only), and the slow-op log. Everything here
// is client-visible already — op kind, block count, wall time — so the
// instrumentation records strictly less than the adversary observes.
func (s *Server) observe(req *Request, tenant string, d time.Duration, tm session.Timing) {
	if h := s.opHists[req.Op]; h != nil {
		h.Observe(d)
	}
	s.queueWait.Observe(tm.QueueWait)
	s.storeIO.Observe(tm.StoreIO)
	blocks := len(req.Indices) + len(req.WriteIndices)
	if req.TraceID != 0 {
		s.ring.Append(telemetry.ServerSpan{
			TraceID:     req.TraceID,
			SpanID:      req.SpanID,
			Phase:       req.Phase,
			Tenant:      tenant,
			Session:     req.Session,
			Store:       req.Store,
			Op:          req.Op.String(),
			Blocks:      blocks,
			QueueWaitNS: int64(tm.QueueWait),
			StoreIONS:   int64(tm.StoreIO),
			DurationNS:  int64(d),
		})
	}
	if t := s.opts.SlowOpThreshold; t > 0 && d >= t {
		s.logSlow(req, tenant, d, blocks)
	}
}

// logSlow emits one structured line for an over-threshold op, rate-limited
// to one line per 100ms so a saturated server cannot flood its own log.
func (s *Server) logSlow(req *Request, tenant string, d time.Duration, blocks int) {
	now := time.Now().UnixNano()
	last := s.slowLast.Load()
	if now-last < int64(100*time.Millisecond) || !s.slowLast.CompareAndSwap(last, now) {
		return
	}
	lg := s.opts.SlowLog
	if lg == nil {
		lg = slog.Default()
	}
	var bytes int64
	for _, b := range req.Blocks {
		bytes += int64(len(b))
	}
	lg.Warn("slow op",
		"tenant", tenant,
		"session", req.Session,
		"op", req.Op.String(),
		"store", req.Store,
		"duration", d,
		"blocks", blocks,
		"bytes", bytes,
	)
}

// handleTrace serves the buffered server spans for req.TraceID (0 = all)
// as a JSON batch in Blocks[0].
func (s *Server) handleTrace(req *Request) *Response {
	data, err := MarshalSpans(s.ring.Snapshot(req.TraceID))
	if err != nil {
		return &Response{Status: StatusError, Msg: fmt.Sprintf("remote: trace: %v", err)}
	}
	return &Response{Blocks: [][]byte{data}}
}

// readMany / writeMany prefer the hosted store's native batch support and
// fall back to per-block operations otherwise — either way the client paid
// exactly one round trip.
func readMany(st storage.Store, idxs []int64) ([][]byte, error) {
	if b, ok := st.(storage.BatchStore); ok {
		return b.ReadMany(idxs)
	}
	out := make([][]byte, len(idxs))
	for k, i := range idxs {
		blk, err := st.Read(i)
		if err != nil {
			return nil, err
		}
		out[k] = blk
	}
	return out, nil
}

func writeMany(st storage.Store, idxs []int64, blocks [][]byte) error {
	if b, ok := st.(storage.BatchStore); ok {
		return b.WriteMany(idxs, blocks)
	}
	for k, i := range idxs {
		if err := st.Write(i, blocks[k]); err != nil {
			return err
		}
	}
	return nil
}

// exchange applies the writes, then serves the reads — the order the ORAM
// scheduler's correctness argument depends on. A store with native exchange
// support runs both under one lock; the fallback composes the batch ops.
func exchange(st storage.Store, writeIdxs []int64, writeData [][]byte, readIdxs []int64) ([][]byte, error) {
	if x, ok := st.(storage.ExchangeStore); ok {
		return x.Exchange(writeIdxs, writeData, readIdxs)
	}
	if err := writeMany(st, writeIdxs, writeData); err != nil {
		return nil, err
	}
	if len(readIdxs) == 0 {
		return nil, nil
	}
	return readMany(st, readIdxs)
}

// handleHello admits a new session. The request's Slots field carries the
// desired idle timeout in milliseconds; the response echoes the granted
// timeout in Slots and the session ID in Session. Saturation is a typed
// busy status, not an error: the client should back off or fail over.
func (s *Server) handleHello(req *Request) *Response {
	sess, err := s.sessions.Open(req.Tenant, time.Duration(req.Slots)*time.Millisecond)
	if err != nil {
		if errors.Is(err, session.ErrSaturated) {
			return &Response{Status: StatusBusy, Msg: err.Error()}
		}
		return &Response{Status: StatusError, Msg: err.Error()}
	}
	sess.CountRequest("")
	return &Response{Slots: sess.IdleTimeout().Milliseconds(), Session: sess.ID()}
}

// handleBye ends a session, checkpointing the stores it touched so its
// committed batches are durable on a persistent backend even while other
// sessions keep the server busy. Ending an unknown or already-expired
// session succeeds: the client's intent — no live session — already holds.
func (s *Server) handleBye(req *Request) *Response {
	sess, err := s.sessions.Get(req.Session)
	if err != nil {
		return &Response{}
	}
	touched := sess.Touched()
	s.sessions.End(sess.ID())
	if err := s.broker.Checkpoint(touched); err != nil {
		return &Response{Status: StatusError, Msg: fmt.Sprintf("remote: session checkpoint: %v", err)}
	}
	return &Response{}
}

// handleCreate provisions a store under its resolved (possibly
// tenant-qualified) name. The client-visible name in error messages stays
// the raw request name.
func (s *Server) handleCreate(req *Request, name string) *Response {
	if req.Slots < 0 || req.BlockSize <= 0 {
		return &Response{Status: StatusError, Msg: fmt.Sprintf("remote: bad geometry %d×%d", req.Slots, req.BlockSize)}
	}
	need := req.Slots * req.BlockSize
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.stores[name]; ok {
		return &Response{Status: StatusError, Msg: fmt.Sprintf("remote: store %q already exists", req.Store)}
	}
	if s.createdBy+need > s.opts.maxStoreBytes() {
		return &Response{Status: StatusError, Msg: fmt.Sprintf("remote: create of %d bytes exceeds server capacity", need)}
	}
	s.createdBy += need
	// The server-side store carries no meter: accounting is the client's
	// concern, the server only counts requests.
	var st storage.Store
	if open := s.opts.OpenStore; open != nil {
		var err error
		st, err = open(name, req.Slots, int(req.BlockSize))
		if err != nil {
			s.createdBy -= need
			return &Response{Status: StatusError, Msg: fmt.Sprintf("remote: create %q: %v", req.Store, err)}
		}
	} else {
		st = storage.NewMemStore(name, req.Slots, int(req.BlockSize), nil)
	}
	s.stores[name] = s.broker.Wrap(name, st)
	c := &counterSet{}
	c.requests.Add(1)
	s.counts[name] = c
	return &Response{Slots: req.Slots, BlockSize: req.BlockSize}
}

// Close gracefully shuts the server down in three phases. First it stops
// accepting connections and drains live sessions: new OpHello traffic is
// refused while existing connections keep serving, so clients can finish
// in-flight rounds and end their sessions (or be reaped by their idle
// deadlines), bounded by DrainTimeout. Only then are connections closed —
// in-flight requests complete and their responses flush — and finally,
// with the serving goroutines gone and the stores quiescent, every hosted
// store with a Close method is closed; for a persistent backend that is
// the checkpoint that makes all committed batches durable. Before the
// drain phase existed, a persistent store could be checkpointed while a
// session was mid-batch, tearing its final eviction set across the
// shutdown boundary.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closing = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	// Drain: existing connections still serve (the serving goroutines only
	// stop on connection close), so sessions can finish and say goodbye.
	s.sessions.Drain(s.opts.drainTimeout())
	s.mu.Lock()
	for cs := range s.conns {
		if cs.busy {
			cs.closeAfter = true
		} else {
			// Idle connections are blocked reading the next frame; closing
			// unblocks them and their goroutines exit.
			cs.c.Close()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	// No request can be in flight now, so the stores are quiescent.
	s.mu.Lock()
	stores := make([]storage.Store, 0, len(s.stores))
	for _, st := range s.stores {
		stores = append(stores, st)
	}
	s.mu.Unlock()
	for _, st := range stores {
		if c, ok := st.(io.Closer); ok {
			if cerr := c.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	return err
}
