package remote

import (
	"errors"
	"fmt"
	"testing"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/storage/storetest"
)

// TestRemoteStoreBatchContract runs the shared backend conformance suite
// against a client-side RemoteStore talking to a loopback server, so the
// networked backend cannot drift from MemStore on duplicate-index ordering,
// exchange read-after-write, or ErrOutOfRange wrapping (which RemoteError.Is
// carries across the string-flattening wire).
func TestRemoteStoreBatchContract(t *testing.T) {
	_, c := startServer(t, ServerOptions{}, ClientOptions{})
	n := 0
	storetest.TestBatchContract(t, "remote", func(t *testing.T, slots int64, blockSize int) storage.BatchStore {
		n++
		st, err := c.Create(fmt.Sprintf("contract%d", n), slots, blockSize)
		if err != nil {
			t.Fatal(err)
		}
		return st
	})
}

// TestRemoteErrorIs pins the across-the-wire sentinel match directly.
func TestRemoteErrorIs(t *testing.T) {
	err := &RemoteError{Msg: storage.ErrOutOfRange.Error() + ": read 9 of 4 (t)"}
	if !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatal("RemoteError carrying an out-of-range message does not match the sentinel")
	}
	if errors.Is(&RemoteError{Msg: "remote: unknown store"}, storage.ErrOutOfRange) {
		t.Fatal("unrelated RemoteError matches ErrOutOfRange")
	}
}
