package remote

import (
	"sync/atomic"
	"time"
)

// FaultModel shapes the transport for benchmarks and tests. The server
// consults it once per decoded request: the returned delay is imposed
// before the operation executes (modeling WAN latency so benchmark curves
// reproduce the paper's round-trip cost argument), and when transient is
// true the server answers with a retryable failure instead of executing,
// exercising the client's retry path.
type FaultModel interface {
	Next(req *Request) (delay time.Duration, transient bool)
}

// Shaper is a deterministic FaultModel: a fixed added latency per request
// plus a transient failure on every FailEvery-th request (0 disables
// failures). Determinism is the point — tests assert exact retry behavior.
type Shaper struct {
	// Latency is added to every request before it executes. Because the
	// protocol is one request per round trip, this is exactly a simulated
	// one-way server delay; set it to the target RTT to model a WAN link.
	Latency time.Duration
	// PerBlock is added once per block the request names (read indices
	// plus write indices), modeling per-block server work — the serialized
	// cost the shard bench shows shrinking ~N× when batches fan out to N
	// servers in parallel, while the fixed Latency is paid once per round
	// regardless of shard count.
	PerBlock time.Duration
	// FailEvery makes every FailEvery-th request (1-based) fail with a
	// transient error. 1 fails every request; 0 disables.
	FailEvery int64

	n atomic.Int64
}

// Next implements FaultModel.
func (s *Shaper) Next(req *Request) (time.Duration, bool) {
	k := s.n.Add(1)
	delay := s.Latency
	if s.PerBlock > 0 && req != nil {
		delay += s.PerBlock * time.Duration(len(req.Indices)+len(req.WriteIndices))
	}
	return delay, s.FailEvery > 0 && k%s.FailEvery == 0
}

// Requests reports how many requests the shaper has seen.
func (s *Shaper) Requests() int64 { return s.n.Load() }
