package remote

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"oblivjoin/internal/oram"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/xcrypto"
)

// startServer brings up a loopback server and a client on it, torn down
// with the test.
func startServer(t testing.TB, sopts ServerOptions, copts ClientOptions) (*Server, *Client) {
	t.Helper()
	srv := NewServer(sopts)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	copts.Addr = addr.String()
	if copts.RetryBase == 0 {
		copts.RetryBase = time.Millisecond
	}
	c, err := Dial(copts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestRemoteSingleOps(t *testing.T) {
	srv, c := startServer(t, ServerOptions{}, ClientOptions{})
	st, err := c.Create("blocks", 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 8 || st.BlockSize() != 32 || st.Name() != "blocks" {
		t.Fatalf("geometry: %d × %d (%s)", st.Len(), st.BlockSize(), st.Name())
	}
	blk := bytes.Repeat([]byte{0xC3}, 32)
	if err := st.Write(5, blk); err != nil {
		t.Fatal(err)
	}
	got, err := st.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blk) {
		t.Fatal("read back mismatch")
	}
	// A second client attaches to the same store via Stat.
	c2, err := Dial(ClientOptions{Addr: c.opts.Addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st2, err := c2.Open("blocks")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 8 || st2.BlockSize() != 32 {
		t.Fatalf("stat geometry: %d × %d", st2.Len(), st2.BlockSize())
	}
	got, err = st2.Read(5)
	if err != nil || !bytes.Equal(got, blk) {
		t.Fatalf("cross-client read: %v", err)
	}
	// Server-side counters saw every request.
	counts := srv.Counts("blocks")
	if counts.Reads != 2 || counts.Writes != 1 || counts.Stats != 1 {
		t.Fatalf("counters: %+v", counts)
	}
}

func TestRemoteErrorsArePermanent(t *testing.T) {
	_, c := startServer(t, ServerOptions{}, ClientOptions{MaxRetries: 2})
	st, err := c.Create("small", 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range and geometry errors surface as RemoteError without
	// burning retries.
	var re *RemoteError
	if _, err := st.Read(99); !errors.As(err, &re) || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range read: %v", err)
	}
	if err := st.Write(0, []byte("short")); !errors.As(err, &re) {
		t.Fatalf("short write: %v", err)
	}
	if _, err := c.Open("nonexistent"); !errors.As(err, &re) {
		t.Fatalf("open missing: %v", err)
	}
	if _, err := c.Create("small", 4, 16); !errors.As(err, &re) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := c.Create("huge", 1<<40, 1<<20); !errors.As(err, &re) {
		t.Fatalf("oversized create: %v", err)
	}
}

func TestRemoteBatchOps(t *testing.T) {
	srv, c := startServer(t, ServerOptions{}, ClientOptions{})
	st, err := c.Create("batch", 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	idxs := []int64{2, 7, 3, 11}
	data := make([][]byte, len(idxs))
	for k := range idxs {
		data[k] = bytes.Repeat([]byte{byte(k + 1)}, 8)
	}
	before := srv.Counts("batch").Requests
	if err := st.WriteMany(idxs, data); err != nil {
		t.Fatal(err)
	}
	got, err := st.ReadMany(idxs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range idxs {
		if !bytes.Equal(got[k], data[k]) {
			t.Fatalf("block %d mismatch", idxs[k])
		}
	}
	// The two batches cost exactly two round trips, regardless of size.
	if d := srv.Counts("batch").Requests - before; d != 2 {
		t.Fatalf("batch ops used %d requests, want 2", d)
	}
	counts := srv.Counts("batch")
	if counts.BatchReads != 1 || counts.BatchWrites != 1 ||
		counts.BlocksRead != 4 || counts.BlocksWritten != 4 {
		t.Fatalf("counters: %+v", counts)
	}
	// Batch errors propagate.
	if _, err := st.ReadMany([]int64{0, 99}); err == nil {
		t.Fatal("out-of-range batch read accepted")
	}
	if err := st.WriteMany([]int64{0}, data); err == nil {
		t.Fatal("mismatched batch write accepted")
	}
	// Empty batches are free.
	if out, err := st.ReadMany(nil); err != nil || out != nil {
		t.Fatalf("empty batch: %v %v", out, err)
	}
}

func TestRemoteMeterCountsRealRounds(t *testing.T) {
	m := storage.NewMeter()
	m.SetTracing(true)
	_, c := startServer(t, ServerOptions{}, ClientOptions{Meter: m})
	st, err := c.Create("metered", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	idxs := []int64{1, 4, 6}
	blocks := [][]byte{make([]byte, 16), make([]byte, 16), make([]byte, 16)}
	if err := st.WriteMany(idxs, blocks); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadMany(idxs); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Read(0); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.NetworkRounds != 3 {
		t.Fatalf("rounds %d, want 3 (2 batches + 1 single)", s.NetworkRounds)
	}
	if s.BlockReads != 4 || s.BlockWrites != 3 {
		t.Fatalf("blocks: %+v", s)
	}
	if tr := m.Trace(); len(tr) != 7 || tr[0].Store != "metered" {
		t.Fatalf("trace: %d entries", len(tr))
	}
}

func TestRemoteRetryOnTransientFaults(t *testing.T) {
	shaper := &Shaper{FailEvery: 2} // every other request fails
	srv, c := startServer(t, ServerOptions{Faults: shaper}, ClientOptions{MaxRetries: 3})
	st, err := c.Create("flaky", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if err := st.Write(i, bytes.Repeat([]byte{byte(i)}, 8)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := int64(0); i < 8; i++ {
		got, err := st.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("read %d = %d", i, got[0])
		}
	}
	// Every op succeeded, so the server must have served roughly twice as
	// many requests as logical operations.
	if reqs := shaper.Requests(); reqs < 30 {
		t.Fatalf("shaper saw %d requests; retries did not happen", reqs)
	}
	if counts := srv.Counts("flaky"); counts.Reads != 8 || counts.Writes != 8 {
		t.Fatalf("executed ops: %+v", counts)
	}
}

func TestRemoteRetryExhaustion(t *testing.T) {
	// Everything fails: the client must give up after MaxRetries+1 attempts
	// with the transient cause attached.
	shaper := &Shaper{FailEvery: 1}
	_, c := startServer(t, ServerOptions{Faults: shaper}, ClientOptions{MaxRetries: 2})
	_, err := c.Create("doomed", 4, 8)
	if err == nil {
		t.Fatal("create succeeded under total fault injection")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error: %v", err)
	}
	if got := shaper.Requests(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestRemoteLatencyInjection(t *testing.T) {
	const rtt = 20 * time.Millisecond
	_, c := startServer(t, ServerOptions{Faults: &Shaper{Latency: rtt}}, ClientOptions{})
	st, err := c.Create("slow", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := st.Read(0); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < rtt {
		t.Fatalf("read took %v, want >= %v", took, rtt)
	}
}

func TestRemoteRequestTimeout(t *testing.T) {
	// A server that injects latency far beyond the request timeout: the
	// client must abort the round trip, retry, and ultimately fail fast
	// rather than hang.
	_, c := startServer(t,
		ServerOptions{Faults: &Shaper{Latency: 400 * time.Millisecond}},
		ClientOptions{RequestTimeout: 50 * time.Millisecond, MaxRetries: 1})
	start := time.Now()
	_, err := c.Create("stuck", 4, 8)
	if err == nil {
		t.Fatal("call under extreme latency succeeded")
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("timeout path took %v", took)
	}
}

func TestRemoteGracefulClose(t *testing.T) {
	srv, c := startServer(t, ServerOptions{}, ClientOptions{MaxRetries: 1, RequestTimeout: 200 * time.Millisecond})
	st, err := c.Create("closing", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write(0, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is safe.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Read(0); err == nil {
		t.Fatal("read after server close succeeded")
	}
	// Client close releases the pool; further calls fail immediately.
	c.Close()
	if _, err := st.Read(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after client close: %v", err)
	}
}

func TestServerRejectsGarbageConnection(t *testing.T) {
	srv := NewServer(ServerOptions{MaxFrame: 1 << 16})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A syntactically valid frame with garbage contents gets an error
	// response and the connection is dropped.
	if err := WriteFrame(conn, []byte{0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError {
		t.Fatalf("status %d", resp.Status)
	}
	if _, err := ReadFrame(conn, 0); err == nil {
		t.Fatal("connection survived protocol error")
	}
}

// TestPathORAMOverRemoteTwoRoundTrips is the acceptance check for the
// path-RPC fast path: one Path-ORAM access over the remote client costs
// exactly two network round trips — one batched path read, one batched
// path write-back — asserted against server-side request counts.
func TestPathORAMOverRemoteTwoRoundTrips(t *testing.T) {
	// Over a real transport the client-side meter lives in the transport:
	// the RemoteStore accounts each RPC, not the ORAM layer.
	m := storage.NewMeter()
	srv, c := startServer(t, ServerOptions{}, ClientOptions{Meter: m})
	sealer, err := xcrypto.NewSealer(bytes.Repeat([]byte{9}, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := oram.NewPathORAM(oram.PathConfig{
		Name:        "remote.oram",
		Capacity:    64,
		PayloadSize: 32,
		Sealer:      sealer,
		Rand:        oram.NewSeededSource(11),
		OpenStore:   c.Opener(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Write(3, []byte("over the wire")); err != nil {
		t.Fatal(err)
	}

	ops := []func() error{
		func() error { _, err := o.Read(3); return err },
		func() error { return o.Write(9, []byte("x")) },
		o.DummyAccess,
		func() error { _, err := o.Update(3, func(p []byte) error { p[0] = 'O'; return err }); return err },
	}
	for i, op := range ops {
		before := srv.Counts("remote.oram")
		mBefore := m.Snapshot()
		if err := op(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		d := srv.Counts("remote.oram")
		if reqs := d.Requests - before.Requests; reqs != 2 {
			t.Fatalf("op %d cost %d server round trips, want 2", i, reqs)
		}
		if d.BatchReads-before.BatchReads != 1 || d.BatchWrites-before.BatchWrites != 1 {
			t.Fatalf("op %d batches: %+v -> %+v", i, before, d)
		}
		// The whole path moved in those two trips.
		if blocks := d.BlocksRead - before.BlocksRead; blocks != int64(o.Levels()) {
			t.Fatalf("op %d read %d blocks, want %d", i, blocks, o.Levels())
		}
		// Client-side meter agrees with the server.
		if dm := m.Snapshot().Sub(mBefore); dm.NetworkRounds != 2 {
			t.Fatalf("op %d client-side rounds %d, want 2", i, dm.NetworkRounds)
		}
	}

	// Data written over the wire reads back intact.
	got, err := o.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:13]) != "Over the wire" {
		t.Fatalf("got %q", got[:13])
	}
}

// TestPathORAMOverRemoteSurvivesFaults runs the same ORAM workload under
// deterministic fault injection: the client's retries must make every
// access succeed with identical results.
func TestPathORAMOverRemoteSurvivesFaults(t *testing.T) {
	shaper := &Shaper{FailEvery: 5}
	_, c := startServer(t, ServerOptions{Faults: shaper}, ClientOptions{MaxRetries: 4})
	sealer, err := xcrypto.NewSealer(bytes.Repeat([]byte{9}, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := oram.NewPathORAM(oram.PathConfig{
		Name:        "faulty.oram",
		Capacity:    32,
		PayloadSize: 16,
		Sealer:      sealer,
		Rand:        oram.NewSeededSource(4),
		OpenStore:   c.Opener(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		if err := o.Write(i, []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 32; i++ {
		got, err := o.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if want := fmt.Sprintf("v%02d", i); string(got[:3]) != want {
			t.Fatalf("read %d = %q", i, got[:3])
		}
	}
	if shaper.Requests() == 0 {
		t.Fatal("shaper never consulted")
	}
}
