package remote

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []*Request{
		{Op: OpRead, Store: "t1.data", Indices: []int64{7}},
		{Op: OpWrite, Store: "t1.data", Indices: []int64{3}, Blocks: [][]byte{[]byte("payload")}},
		{Op: OpReadMany, Store: "x", Indices: []int64{0, 5, 2, 9}},
		{Op: OpWriteMany, Store: "x", Indices: []int64{1, 2}, Blocks: [][]byte{[]byte("a"), []byte("bb")}},
		{Op: OpStat, Store: "idx.k"},
		{Op: OpCreate, Store: "fresh", Slots: 128, BlockSize: 4096},
		// Multi-path exchange: Indices carries the read set, WriteIndices
		// the write set aligned with Blocks.
		{Op: OpExchange, Store: "t1.data", Indices: []int64{0, 3, 7},
			WriteIndices: []int64{1, 2}, Blocks: [][]byte{[]byte("wa"), []byte("wb")}},
		{Op: OpExchange, Store: "t1.data", Indices: []int64{5},
			WriteIndices: []int64{9}, Blocks: [][]byte{[]byte("solo")}},
		// Session handshake and session-scoped traffic.
		{Op: OpHello, Tenant: "acme", Slots: 30_000},
		{Op: OpHello, Tenant: "weird/tenant:name"},
		{Op: OpBye, Session: 17},
		{Op: OpRead, Store: "t1.data", Indices: []int64{7}, Session: 3, DeadlineMS: 2500},
		{Op: OpExchange, Store: "t1.data", Indices: []int64{0, 3},
			WriteIndices: []int64{1}, Blocks: [][]byte{[]byte("w")}, Session: 9},
		// Distributed-trace context rides an optional trailing section.
		{Op: OpRead, Store: "t1.data", Indices: []int64{7}, TraceID: 0xDEAD, SpanID: 3, Phase: "join.smj"},
		{Op: OpReadMany, Store: "x", Indices: []int64{0, 5}, Session: 4, DeadlineMS: 900,
			TraceID: 1, SpanID: 99, Phase: "sort.runs"},
		{Op: OpExchange, Store: "t1.data", Indices: []int64{0, 3}, WriteIndices: []int64{1},
			Blocks: [][]byte{[]byte("w")}, TraceID: 7, SpanID: 1, Phase: "oram.flush"},
		{Op: OpWriteMany, Store: "x", Indices: []int64{1}, Blocks: [][]byte{[]byte("a")},
			TraceID: 12345678901234567890, SpanID: 2}, // no phase label
		{Op: OpTrace, TraceID: 55},
		{Op: OpTrace}, // fetch everything buffered
	}
	for _, req := range cases {
		got, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			t.Fatalf("%s: %v", req.Op, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("%s: round trip %+v != %+v", req.Op, got, req)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []*Response{
		{Status: StatusOK, Blocks: [][]byte{[]byte("blk")}},
		{Status: StatusOK, Slots: 64, BlockSize: 4144},
		{Status: StatusError, Msg: "remote: unknown store"},
		{Status: StatusTransient, Msg: "injected"},
		{Status: StatusBusy, Msg: "remote: session table full"},
		{Status: StatusOK, Slots: 60_000, Session: 42},
	}
	for i, resp := range cases {
		got, err := DecodeResponse(EncodeResponse(resp))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, resp) {
			t.Fatalf("case %d: round trip %+v != %+v", i, got, resp)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("truncate me")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		if _, err := ReadFrame(bytes.NewReader(whole[:cut]), 0); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		} else if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d: %v", cut, err)
		}
	}
}

// TestDecodeRequestLegacyFormat pins wire compatibility across the
// OpExchange protocol revision: a request encoded without the trailing
// WriteIndices field — what a client from before the field existed sends —
// must still decode, with WriteIndices empty. Version skew may cost a peer
// the exchange fast path (which old clients never request), never the
// whole protocol.
func TestDecodeRequestLegacyFormat(t *testing.T) {
	cases := []*Request{
		{Op: OpRead, Store: "t1.data", Indices: []int64{7}},
		{Op: OpWrite, Store: "t1.data", Indices: []int64{3}, Blocks: [][]byte{[]byte("payload")}},
		{Op: OpReadMany, Store: "x", Indices: []int64{0, 5, 2, 9}},
		{Op: OpWriteMany, Store: "x", Indices: []int64{1, 2}, Blocks: [][]byte{[]byte("a"), []byte("bb")}},
		{Op: OpStat, Store: "idx.k"},
		{Op: OpCreate, Store: "fresh", Slots: 128, BlockSize: 4096},
	}
	for _, req := range cases {
		b := EncodeRequest(req)
		// The current encoder always appends the WriteIndices field; with no
		// write indices it is a single zero varint. Stripping it reproduces
		// the previous wire format byte-for-byte.
		if b[len(b)-1] != 0 {
			t.Fatalf("%s: frame does not end with an empty WriteIndices field", req.Op)
		}
		got, err := DecodeRequest(b[:len(b)-1])
		if err != nil {
			t.Fatalf("%s: legacy frame rejected: %v", req.Op, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("%s: legacy decode %+v != %+v", req.Op, got, req)
		}
	}
}

// TestSessionlessWireCompat pins the session protocol revision's skew rule
// from the other side: a request that uses no session features must encode
// byte-identically to the pre-session wire format (no trailing session
// section), and a response without a session ID likewise — so new clients
// keep talking to old servers and old clients to new servers.
func TestSessionlessWireCompat(t *testing.T) {
	req := &Request{Op: OpReadMany, Store: "x", Indices: []int64{0, 5}}
	b := EncodeRequest(req)
	// Pre-session format = current format minus nothing: the frame must end
	// with the empty WriteIndices varint, exactly as before the revision.
	if b[len(b)-1] != 0 {
		t.Fatalf("sessionless request grew a trailing section: % x", b)
	}
	got, err := DecodeRequest(b)
	if err != nil || !reflect.DeepEqual(got, req) {
		t.Fatalf("sessionless round trip: %+v, %v", got, err)
	}
	resp := &Response{Status: StatusOK, Slots: 8, BlockSize: 32}
	rb := EncodeResponse(resp)
	// A zero session ID must not be encoded at all.
	want := len(EncodeResponse(&Response{Status: StatusOK, Slots: 8, BlockSize: 32, Session: 0}))
	if len(rb) != want {
		t.Fatalf("zero session changed the encoding: %d vs %d bytes", len(rb), want)
	}
	if _, err := DecodeResponse(rb); err != nil {
		t.Fatalf("sessionless response rejected: %v", err)
	}
}

// TestTracelessWireCompat pins the trace protocol revision's skew rule: a
// request without a trace context must encode byte-identically to the
// pre-trace wire format (no trailing trace section), so untraced traffic —
// including every legacy client's — is untouched by the revision.
func TestTracelessWireCompat(t *testing.T) {
	cases := []*Request{
		{Op: OpReadMany, Store: "x", Indices: []int64{0, 5}},
		{Op: OpRead, Store: "t1.data", Indices: []int64{7}, Session: 3, DeadlineMS: 2500},
		{Op: OpHello, Tenant: "acme", Slots: 30_000},
	}
	for _, req := range cases {
		b := EncodeRequest(req)
		traced := *req
		traced.TraceID, traced.SpanID, traced.Phase = 9, 1, "load"
		tb := EncodeRequest(&traced)
		if len(tb) <= len(b) {
			t.Fatalf("%s: trace section did not grow the frame", req.Op)
		}
		// The untraced frame must be a strict prefix of the traced one up to
		// the session section: for session-carrying requests the encodings
		// before the trace section are identical.
		if req.Session != 0 || req.Tenant != "" || req.DeadlineMS != 0 {
			if !bytes.HasPrefix(tb, b) {
				t.Fatalf("%s: traced frame is not untraced frame + trace section", req.Op)
			}
		}
		got, err := DecodeRequest(b)
		if err != nil || !reflect.DeepEqual(got, req) {
			t.Fatalf("%s: untraced round trip: %+v, %v", req.Op, got, err)
		}
	}
}

// TestDecodeRequestLegacyTraceless pins tolerance from the other side: a
// traced request whose trailing trace section is stripped — what an old
// proxy or a pre-trace peer would have produced for the same op — must
// still decode, with the trace fields zero. Version skew costs the peer
// span attribution, never the operation.
func TestDecodeRequestLegacyTraceless(t *testing.T) {
	req := &Request{Op: OpRead, Store: "t1.data", Indices: []int64{7},
		Session: 3, DeadlineMS: 100, TraceID: 77, SpanID: 5, Phase: "join.smj"}
	full := EncodeRequest(req)
	bare := *req
	bare.TraceID, bare.SpanID, bare.Phase = 0, 0, ""
	stripped := EncodeRequest(&bare)
	if !bytes.HasPrefix(full, stripped) {
		t.Fatal("traced frame must extend the traceless frame")
	}
	got, err := DecodeRequest(stripped)
	if err != nil {
		t.Fatalf("traceless frame rejected: %v", err)
	}
	if !reflect.DeepEqual(got, &bare) {
		t.Fatalf("traceless decode %+v != %+v", got, &bare)
	}
}

func TestDecodeRequestTraceMalformed(t *testing.T) {
	base := EncodeRequest(&Request{Op: OpRead, Store: "s", Indices: []int64{1},
		Session: 2, TraceID: 9, SpanID: 1, Phase: "load"})
	longPhase := EncodeRequest(&Request{Op: OpRead, Store: "s", Indices: []int64{1},
		TraceID: 9, SpanID: 1, Phase: string(bytes.Repeat([]byte{'p'}, 300))})
	// A trace section whose trace ID is zero is never produced by the
	// encoder; accepting it would break canonical re-encoding.
	sess := EncodeRequest(&Request{Op: OpRead, Store: "s", Indices: []int64{1}, Session: 2})
	zeroTrace := append(append([]byte{}, sess...), 0 /*traceID*/, 5 /*spanID*/, 0 /*phase len*/)
	cases := map[string][]byte{
		"truncated trace section": base[:len(base)-2],
		"over-long phase":         longPhase,
		"zero trace ID":           zeroTrace,
	}
	for name, payload := range cases {
		if _, err := DecodeRequest(payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeRequestMalformed(t *testing.T) {
	base := EncodeRequest(&Request{Op: OpWriteMany, Store: "s", Indices: []int64{1, 2}, Blocks: [][]byte{[]byte("aa"), []byte("bb")}})
	cases := map[string][]byte{
		"empty":          {},
		"unknown op":     {0xFF},
		"zero op":        {0x00},
		"trailing bytes": append(append([]byte{}, base...), 0x01),
		"truncated":      base[:len(base)-3],
		// A count claiming more indices than the payload could possibly hold
		// must be rejected before allocation.
		"forged count": {byte(OpReadMany), 1, 's', 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
	}
	for name, payload := range cases {
		if _, err := DecodeRequest(payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeResponseMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"bad status":     {0x09},
		"truncated msg":  {byte(StatusError), 0x10, 'x'},
		"trailing bytes": append(EncodeResponse(&Response{}), 0xAA),
	}
	for name, payload := range cases {
		if _, err := DecodeResponse(payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzDecodeFrame feeds arbitrary bytes through the frame reader and both
// message decoders: none may panic, and any allocation they perform must be
// bounded by the input length (enforced indirectly — a forged count that
// over-allocates would OOM the fuzzer).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(EncodeRequest(&Request{Op: OpRead, Store: "t", Indices: []int64{1}}))
	f.Add(EncodeRequest(&Request{Op: OpWriteMany, Store: "t", Indices: []int64{1, 2}, Blocks: [][]byte{[]byte("a"), []byte("b")}}))
	f.Add(EncodeRequest(&Request{Op: OpCreate, Store: "t", Slots: 8, BlockSize: 64}))
	f.Add(EncodeRequest(&Request{Op: OpExchange, Store: "t", Indices: []int64{0, 2},
		WriteIndices: []int64{1, 3}, Blocks: [][]byte{[]byte("x"), []byte("y")}}))
	// Legacy wire format: a request from before the WriteIndices field.
	legacy := EncodeRequest(&Request{Op: OpReadMany, Store: "t", Indices: []int64{4, 1}})
	f.Add(legacy[:len(legacy)-1])
	f.Add(EncodeResponse(&Response{Status: StatusOK, Blocks: [][]byte{[]byte("blk")}}))
	f.Add(EncodeResponse(&Response{Status: StatusTransient, Msg: "retry"}))
	// Session protocol revision: handshake, session-scoped op, busy reply.
	f.Add(EncodeRequest(&Request{Op: OpHello, Tenant: "acme", Slots: 30_000}))
	f.Add(EncodeRequest(&Request{Op: OpRead, Store: "t", Indices: []int64{1}, Session: 5, DeadlineMS: 900}))
	f.Add(EncodeResponse(&Response{Status: StatusBusy, Msg: "full"}))
	f.Add(EncodeResponse(&Response{Status: StatusOK, Slots: 60_000, Session: 7}))
	// Trace protocol revision: traced op, trace fetch, stripped trace section.
	f.Add(EncodeRequest(&Request{Op: OpRead, Store: "t", Indices: []int64{1},
		Session: 5, TraceID: 9, SpanID: 2, Phase: "join.smj"}))
	f.Add(EncodeRequest(&Request{Op: OpTrace, TraceID: 9}))
	f.Add(EncodeRequest(&Request{Op: OpExchange, Store: "t", Indices: []int64{0},
		WriteIndices: []int64{1}, Blocks: [][]byte{[]byte("x")}, TraceID: 1, SpanID: 1, Phase: "oram.flush"}))
	var framed bytes.Buffer
	_ = WriteFrame(&framed, EncodeRequest(&Request{Op: OpStat, Store: "t"}))
	f.Add(framed.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		if payload, err := ReadFrame(bytes.NewReader(data), 1<<20); err == nil {
			_, _ = DecodeRequest(payload)
			_, _ = DecodeResponse(payload)
		}
		if req, err := DecodeRequest(data); err == nil {
			// Whatever decodes must re-encode and decode to the same value.
			back, err := DecodeRequest(EncodeRequest(req))
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !reflect.DeepEqual(back, req) {
				t.Fatalf("re-encode mismatch: %+v != %+v", back, req)
			}
		}
		if resp, err := DecodeResponse(data); err == nil {
			back, err := DecodeResponse(EncodeResponse(resp))
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !reflect.DeepEqual(back, resp) {
				t.Fatalf("re-encode mismatch: %+v != %+v", back, resp)
			}
		}
	})
}

// TestAppendCodecMatchesEncode pins the zero-copy append variants to the
// allocating encoders byte for byte, including when appending after an
// existing prefix (the reused-buffer case).
func TestAppendCodecMatchesEncode(t *testing.T) {
	req := &Request{Op: OpExchange, Store: "t1.data", Indices: []int64{0, 3, 7},
		WriteIndices: []int64{1, 2}, Blocks: [][]byte{[]byte("wa"), []byte("wb")},
		Session: 9, DeadlineMS: 500, TraceID: 3, SpanID: 8, Phase: "oram.flush"}
	want := EncodeRequest(req)
	if got := AppendRequest(nil, req); !bytes.Equal(got, want) {
		t.Fatalf("AppendRequest(nil) = %x, want %x", got, want)
	}
	buf := append([]byte(nil), "prefix"...)
	if got := AppendRequest(buf, req); !bytes.Equal(got, append([]byte("prefix"), want...)) {
		t.Fatal("AppendRequest after prefix diverges from EncodeRequest")
	}
	resp := &Response{Status: StatusOK, Blocks: [][]byte{[]byte("blk"), []byte("blk2")}, Slots: 7, Session: 42}
	wantR := EncodeResponse(resp)
	if got := AppendResponse(nil, resp); !bytes.Equal(got, wantR) {
		t.Fatalf("AppendResponse(nil) = %x, want %x", got, wantR)
	}
}

// TestAppendCodecReusesCapacity checks the hot-path property the client and
// server frame buffers rely on: encoding into a buffer with enough capacity
// allocates nothing.
func TestAppendCodecReusesCapacity(t *testing.T) {
	req := &Request{Op: OpWriteMany, Store: "t1.data", Indices: []int64{1, 2},
		Blocks: [][]byte{make([]byte, 4096), make([]byte, 4096)}}
	buf := make([]byte, 0, len(EncodeRequest(req))+64)
	if n := testing.AllocsPerRun(50, func() {
		buf = AppendRequest(buf[:0], req)
	}); n != 0 {
		t.Fatalf("AppendRequest into sized buffer: %.1f allocs/op, want 0", n)
	}
	resp := &Response{Blocks: [][]byte{make([]byte, 4096)}}
	rbuf := make([]byte, 0, len(EncodeResponse(resp))+64)
	if n := testing.AllocsPerRun(50, func() {
		rbuf = AppendResponse(rbuf[:0], resp)
	}); n != 0 {
		t.Fatalf("AppendResponse into sized buffer: %.1f allocs/op, want 0", n)
	}
}

// TestReadFrameIntoReuse checks that a sized buffer is reused (same backing
// array) and an undersized one grows without corrupting the payload.
func TestReadFrameIntoReuse(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 256)
	var stream bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := WriteFrame(&stream, payload); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 0, 512)
	for i := 0; i < 3; i++ {
		got, err := ReadFrameInto(&stream, 0, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("frame %d corrupted", i)
		}
		if &got[0] != &buf[:1][0] {
			t.Fatalf("frame %d did not reuse the buffer", i)
		}
	}
	var small bytes.Buffer
	if err := WriteFrame(&small, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrameInto(&small, 0, make([]byte, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("grown read corrupted the payload")
	}
}

// TestAppendFramedMatchesWriteFrame checks the single-write framed-append
// path (what client.roundTrip and server.serveConn send) puts exactly the
// same bytes on the wire as EncodeRequest/EncodeResponse + WriteFrame, and
// that a slab-decoded batch round-trips the payload contents intact.
func TestAppendFramedMatchesWriteFrame(t *testing.T) {
	req := &Request{Op: OpWriteMany, Store: "t1.data", Indices: []int64{4, 9},
		Blocks: [][]byte{[]byte("payload-a"), []byte("payload-b")}}
	var want bytes.Buffer
	if err := WriteFrame(&want, EncodeRequest(req)); err != nil {
		t.Fatal(err)
	}
	if got := AppendFramedRequest(nil, req); !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("AppendFramedRequest = %x, want %x", got, want.Bytes())
	}
	if got := AppendFramedRequest([]byte("pre"), req); !bytes.Equal(got, append([]byte("pre"), want.Bytes()...)) {
		t.Fatal("AppendFramedRequest after prefix diverges")
	}
	resp := &Response{Status: StatusOK, Blocks: [][]byte{[]byte("ra"), []byte("rbb")}, Slots: 3}
	var wantR bytes.Buffer
	if err := WriteFrame(&wantR, EncodeResponse(resp)); err != nil {
		t.Fatal(err)
	}
	framed := AppendFramedResponse(nil, resp)
	if !bytes.Equal(framed, wantR.Bytes()) {
		t.Fatalf("AppendFramedResponse = %x, want %x", framed, wantR.Bytes())
	}
	payload, err := ReadFrame(bytes.NewReader(framed), DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Blocks) != 2 || string(back.Blocks[0]) != "ra" || string(back.Blocks[1]) != "rbb" {
		t.Fatalf("slab decode corrupted blocks: %q", back.Blocks)
	}
	// The slab must be immune to later appends through one carved block.
	_ = append(back.Blocks[0], 'X')
	if string(back.Blocks[1]) != "rbb" {
		t.Fatalf("append through block 0 corrupted block 1: %q", back.Blocks[1])
	}
}
