package remote

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/telemetry"
	"oblivjoin/internal/tracecheck"
)

// TestTraceSpansEndToEnd drives the full distributed-tracing loop over a
// loopback server: activate a trace on the client's flight, run store ops
// under changing phase labels, and pull the server's spans back via
// OpTrace.
func TestTraceSpansEndToEnd(t *testing.T) {
	srv, c := startServer(t, ServerOptions{}, ClientOptions{})
	f := telemetry.NewFlight()
	c.SetFlight(f)
	st, err := c.Create("tr", 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	blk := bytes.Repeat([]byte{7}, 32)
	// Op before activation: no trace context, no span.
	if err := st.Write(0, blk); err != nil {
		t.Fatal(err)
	}
	id := f.Activate(0)
	if id == 0 {
		t.Fatal("Activate returned zero trace ID")
	}
	f.SetPhase("load")
	if err := st.Write(1, blk); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadMany([]int64{0, 1}); err != nil {
		t.Fatal(err)
	}
	f.SetPhase("join.smj")
	if _, err := st.Exchange([]int64{2}, [][]byte{blk}, []int64{0, 2}); err != nil {
		t.Fatal(err)
	}
	f.Deactivate()
	// Op after deactivation: unstamped again.
	if _, err := st.Read(0); err != nil {
		t.Fatal(err)
	}

	spans, err := c.FetchServerSpans(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	wantOps := []string{"write", "read-many", "exchange"}
	wantPhases := []string{"load", "load", "join.smj"}
	wantBlocks := []int{1, 2, 3}
	var lastSpanID uint64
	for i, sp := range spans {
		if sp.TraceID != id {
			t.Fatalf("span %d trace ID %d, want %d", i, sp.TraceID, id)
		}
		if sp.Op != wantOps[i] || sp.Phase != wantPhases[i] || sp.Blocks != wantBlocks[i] {
			t.Fatalf("span %d = (%s, %s, %d blocks), want (%s, %s, %d)",
				i, sp.Op, sp.Phase, sp.Blocks, wantOps[i], wantPhases[i], wantBlocks[i])
		}
		if sp.SpanID <= lastSpanID {
			t.Fatalf("span IDs not increasing: %d after %d", sp.SpanID, lastSpanID)
		}
		lastSpanID = sp.SpanID
		if sp.DurationNS < 0 || sp.StoreIONS < 0 || sp.QueueWaitNS < 0 {
			t.Fatalf("span %d has negative timing: %+v", i, sp)
		}
		if sp.Store != "tr" {
			t.Fatalf("span %d store %q", i, sp.Store)
		}
	}
	// Filtering by an unknown trace yields nothing; 0 yields everything
	// buffered (only stamped ops were recorded).
	if other, err := c.FetchServerSpans(id + 1); err != nil || len(other) != 0 {
		t.Fatalf("foreign trace: %d spans, err %v", len(other), err)
	}
	if all, err := c.FetchServerSpans(0); err != nil || len(all) != 3 {
		t.Fatalf("all traces: %d spans, err %v", len(all), err)
	}
	// The hosted store is broker-guarded, so the store-I/O decomposition is
	// populated (queue wait may be zero: no rival sessions).
	var io int64
	for _, sp := range spans {
		io += sp.StoreIONS
	}
	if io <= 0 {
		t.Fatal("no store I/O time attributed across spans")
	}
	// Per-op histograms saw every request, traced or not.
	hs := srv.HistogramSnapshots()
	if hs["op.write"].Count != 2 || hs["op.read"].Count != 1 {
		t.Fatalf("op histograms: write=%d read=%d", hs["op.write"].Count, hs["op.read"].Count)
	}
}

// tracedRemoteOps runs a fixed op sequence against a fresh loopback
// server, optionally under an active trace, and returns the client meter
// trace and the server's per-store counters. The sequence is identical in
// both modes by construction — the guard asserts the server can't tell.
func tracedRemoteOps(t *testing.T, traced bool) ([]storage.Access, Counters) {
	t.Helper()
	m := storage.NewMeter()
	m.SetTracing(true)
	srv, c := startServer(t, ServerOptions{}, ClientOptions{Meter: m})
	if traced {
		f := telemetry.NewFlight()
		c.SetFlight(f)
		f.Activate(99)
		f.SetPhase("load")
		defer f.Deactivate()
	}
	st, err := c.Create("g", 16, 24)
	if err != nil {
		t.Fatal(err)
	}
	blk := bytes.Repeat([]byte{3}, 24)
	for i := int64(0); i < 4; i++ {
		if err := st.Write(i, blk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.ReadMany([]int64{0, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exchange([]int64{5}, [][]byte{blk}, []int64{1, 5}); err != nil {
		t.Fatal(err)
	}
	return m.Trace(), srv.Counts("g")
}

// TestTraceZeroAddedServerAccesses is the tentpole obliviousness guard:
// running the same workload with tracing active must produce a
// byte-identical client access trace and identical server-side request
// counters — the trace context rides existing requests, never adds one.
func TestTraceZeroAddedServerAccesses(t *testing.T) {
	plainTrace, plainCounts := tracedRemoteOps(t, false)
	tracedTrace, tracedCounts := tracedRemoteOps(t, true)
	if d := tracecheck.Diff(plainTrace, tracedTrace); d != "" {
		t.Fatalf("traced run's access trace differs:\n%s", d)
	}
	if plainCounts != tracedCounts {
		t.Fatalf("server counters differ: untraced %+v, traced %+v", plainCounts, tracedCounts)
	}
}

// phaseRun performs a fixed public schedule with caller-chosen private
// block contents and returns the server-observed span tuples.
func phaseRun(t *testing.T, fill byte) []string {
	t.Helper()
	_, c := startServer(t, ServerOptions{}, ClientOptions{})
	f := telemetry.NewFlight()
	c.SetFlight(f)
	st, err := c.Create("ph", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Activate(0)
	blk := bytes.Repeat([]byte{fill}, 16)
	f.SetPhase("sort.runs")
	if err := st.WriteMany([]int64{0, 1, 2}, [][]byte{blk, blk, blk}); err != nil {
		t.Fatal(err)
	}
	// The content-dependent branch below must NOT influence the phase: the
	// registry only admits pre-declared public labels, so a label derived
	// from data is silently dropped.
	f.SetPhase(fmt.Sprintf("secret-%d", fill))
	if _, err := st.ReadMany([]int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	f.SetPhase("sort.merge")
	if _, err := st.Exchange([]int64{3}, [][]byte{blk}, []int64{0}); err != nil {
		t.Fatal(err)
	}
	spans, err := c.FetchServerSpans(id)
	if err != nil {
		t.Fatal(err)
	}
	var tuples []string
	for _, sp := range spans {
		tuples = append(tuples, fmt.Sprintf("%s/%s/%s/%d", sp.Store, sp.Op, sp.Phase, sp.Blocks))
	}
	return tuples
}

// TestPhaseAnnotationsArePublic proves the phase labels the server
// observes are a function of the public schedule only: two runs over
// different private data produce identical (store, op, phase, blocks)
// sequences, and undeclared (data-derived) labels never reach the wire.
func TestPhaseAnnotationsArePublic(t *testing.T) {
	a := phaseRun(t, 0x11)
	b := phaseRun(t, 0xEE)
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs across private data: %q vs %q", i, a[i], b[i])
		}
	}
	for _, tu := range a {
		if strings.Contains(tu, "secret") {
			t.Fatalf("data-derived phase leaked to the server: %q", tu)
		}
	}
}

// TestServerMetricsRenderSmoke renders every Prometheus writer after real
// traffic and checks the families — including the histogram expositions
// and the meter trace-cap counters — are present and well-formed.
func TestServerMetricsRenderSmoke(t *testing.T) {
	m := storage.NewMeter()
	m.SetTracing(true)
	m.SetTraceLimit(2) // force Dropped > 0
	srv, c := startServer(t, ServerOptions{}, ClientOptions{Meter: m})
	if err := c.StartSession("acme", 0); err != nil {
		t.Fatal(err)
	}
	st, err := c.Create("mx", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	blk := bytes.Repeat([]byte{1}, 16)
	for i := int64(0); i < 4; i++ {
		if err := st.Write(i, blk); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	WriteStoreMetrics(&buf, srv)
	WriteSessionMetrics(&buf, srv)
	WriteHistogramMetrics(&buf, srv)
	WriteMeterMetrics(&buf, m)
	out := buf.String()
	for _, want := range []string{
		"ojoin_store_requests_total{store=\"t:acme/mx\"}",
		"ojoin_sessions_active 1",
		"ojoin_broker_store_rounds_total{store=\"t:acme/mx\"}",
		"ojoin_broker_wait_seconds_total 0.",
		"ojoin_op_duration_seconds_bucket{op=\"read\",le=\"",
		"ojoin_op_duration_seconds_bucket{op=\"read\",le=\"+Inf\"}",
		"ojoin_op_duration_seconds_sum{op=\"read\"}",
		"ojoin_op_duration_seconds_count{op=\"read\"} 4",
		"ojoin_broker_queue_wait_seconds_bucket{le=\"",
		"ojoin_store_io_seconds_count",
		"ojoin_meter_trace_dropped_total",
		"ojoin_meter_trace_len 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
	if m.Dropped() == 0 {
		t.Fatal("trace cap never dropped — the Dropped metric is untested")
	}
	if !strings.Contains(out, fmt.Sprintf("ojoin_meter_trace_dropped_total %d", m.Dropped())) {
		t.Fatal("Dropped count not rendered verbatim")
	}
	// /debug/trace body renders as a JSON array even when empty.
	var tb bytes.Buffer
	if err := WriteTrace(&tb, srv, 0); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(tb.String()); got != "[]" {
		t.Fatalf("empty trace body = %q, want []", got)
	}
}

// TestSlowOpLogging checks the -slow-op-threshold path: over-threshold ops
// emit one structured line (rate-limited), and the default threshold of
// zero disables logging entirely.
func TestSlowOpLogging(t *testing.T) {
	var logBuf bytes.Buffer
	lg := slog.New(slog.NewTextHandler(&logBuf, nil))
	_, c := startServer(t, ServerOptions{
		SlowOpThreshold: time.Nanosecond, // everything is slow
		SlowLog:         lg,
	}, ClientOptions{})
	st, err := c.Create("sl", 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	blk := bytes.Repeat([]byte{9}, 16)
	for i := int64(0); i < 4; i++ {
		if err := st.Write(i, blk); err != nil {
			t.Fatal(err)
		}
	}
	out := logBuf.String()
	if n := strings.Count(out, "slow op"); n != 1 {
		t.Fatalf("slow-op lines = %d, want exactly 1 (rate limit): %s", n, out)
	}
	for _, field := range []string{"op=write", "store=sl", "duration=", "blocks=1", "bytes=16"} {
		if !strings.Contains(out, field) {
			t.Fatalf("slow-op line missing %q: %s", field, out)
		}
	}

	// Threshold 0 (the default) never logs.
	var quiet bytes.Buffer
	_, c2 := startServer(t, ServerOptions{
		SlowLog: slog.New(slog.NewTextHandler(&quiet, nil)),
	}, ClientOptions{})
	st2, err := c2.Create("sl", 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Write(0, blk); err != nil {
		t.Fatal(err)
	}
	if quiet.Len() != 0 {
		t.Fatalf("threshold 0 logged: %s", quiet.String())
	}
}

// TestTracelessClientEndToEnd pins backward compatibility at the protocol
// level: a client with no flight attached (the legacy population) speaks
// to an instrumented server with zero trace sections on the wire and zero
// spans buffered.
func TestTracelessClientEndToEnd(t *testing.T) {
	srv, c := startServer(t, ServerOptions{}, ClientOptions{})
	st, err := c.Create("legacy", 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	blk := bytes.Repeat([]byte{5}, 16)
	if err := st.Write(0, blk); err != nil {
		t.Fatal(err)
	}
	got, err := st.Read(0)
	if err != nil || !bytes.Equal(got, blk) {
		t.Fatalf("read back: %v", err)
	}
	if spans, err := c.FetchServerSpans(0); err != nil || len(spans) != 0 {
		t.Fatalf("traceless run buffered %d spans (err %v)", len(spans), err)
	}
	if ct := srv.Counts("legacy"); ct.Reads != 1 || ct.Writes != 1 {
		t.Fatalf("counters = %+v, want 1 read + 1 write", ct)
	}
}
