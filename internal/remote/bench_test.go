package remote

import (
	"bytes"
	"testing"
	"time"

	"oblivjoin/internal/oram"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/xcrypto"
)

func benchSealer(b *testing.B) *xcrypto.Sealer {
	b.Helper()
	s, err := xcrypto.NewSealer(bytes.Repeat([]byte{5}, xcrypto.KeySize), nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkCodecRequestRoundTrip(b *testing.B) {
	blocks := make([][]byte, 16)
	idxs := make([]int64, 16)
	for i := range blocks {
		blocks[i] = bytes.Repeat([]byte{byte(i)}, 4096)
		idxs[i] = int64(i * 3)
	}
	req := &Request{Op: OpWriteMany, Store: "bench", Indices: idxs, Blocks: blocks}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRequest(EncodeRequest(req)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchORAM builds a 1024-block Path-ORAM over the given opener.
func benchORAM(b *testing.B, open storage.Opener) *oram.PathORAM {
	b.Helper()
	o, err := oram.NewPathORAM(oram.PathConfig{
		Name:        "bench.oram",
		Capacity:    1024,
		PayloadSize: 4096,
		Sealer:      benchSealer(b),
		Rand:        oram.NewSeededSource(1),
		OpenStore:   open,
	})
	if err != nil {
		b.Fatal(err)
	}
	payloads := make([][]byte, 1024)
	for i := range payloads {
		payloads[i] = make([]byte, 4096)
	}
	if err := o.BulkLoad(payloads); err != nil {
		b.Fatal(err)
	}
	return o
}

// BenchmarkPathORAMAccessLocal is the in-process baseline for the remote
// benchmark below: same tree, no wire.
func BenchmarkPathORAMAccessLocal(b *testing.B) {
	o := benchORAM(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Read(uint64(i % 1024)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathORAMAccessRemote measures a full batched path access over a
// loopback TCP server: two round trips per access. Compare against
// BenchmarkPathORAMAccessLocal for pure transport overhead, and add
// -latency via the Shaper to reproduce WAN-shaped curves.
func BenchmarkPathORAMAccessRemote(b *testing.B) {
	srv := NewServer(ServerOptions{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(ClientOptions{Addr: addr.String(), RequestTimeout: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	o := benchORAM(b, c.Opener())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Read(uint64(i % 1024)); err != nil {
			b.Fatal(err)
		}
	}
}
