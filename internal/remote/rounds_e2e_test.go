package remote

import (
	"bytes"
	"testing"

	"oblivjoin/internal/core"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/xcrypto"
)

func exBlock(tag byte, size int) []byte {
	b := bytes.Repeat([]byte{tag}, size)
	b[0] = 'x'
	return b
}

// TestExchangeRPCOverLoopback exercises the OpExchange fast path end to end:
// one RPC applies a batch of writes and serves a batch of reads, the reads
// observing the writes that travelled with them, for exactly one metered
// network round.
func TestExchangeRPCOverLoopback(t *testing.T) {
	m := storage.NewMeter()
	_, c := startServer(t, ServerOptions{}, ClientOptions{Meter: m})
	const size = 32
	st, err := c.Create("ex", 8, size)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteMany([]int64{0, 1, 2, 3},
		[][]byte{exBlock(0, size), exBlock(1, size), exBlock(2, size), exBlock(3, size)}); err != nil {
		t.Fatal(err)
	}

	before := m.Snapshot()
	got, err := st.Exchange(
		[]int64{2, 3}, [][]byte{exBlock(20, size), exBlock(30, size)},
		[]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d blocks returned", len(got))
	}
	// Writes apply before reads: indices 2 and 3 must come back with the
	// contents that travelled in this very request.
	if !bytes.Equal(got[0], exBlock(1, size)) {
		t.Fatalf("untouched index 1 corrupted: %v", got[0][:4])
	}
	if !bytes.Equal(got[1], exBlock(20, size)) || !bytes.Equal(got[2], exBlock(30, size)) {
		t.Fatalf("exchange reads predate its writes: %v %v", got[1][:4], got[2][:4])
	}
	d := m.Snapshot().Sub(before)
	if d.NetworkRounds != 1 {
		t.Fatalf("exchange cost %d rounds, want 1", d.NetworkRounds)
	}
	if d.BlockWrites != 2 || d.BlockReads != 3 {
		t.Fatalf("metered %d writes / %d reads, want 2 / 3", d.BlockWrites, d.BlockReads)
	}

	// Degenerate forms collapse to the plain batch ops; the empty exchange
	// skips the wire entirely.
	before = m.Snapshot()
	if got, err = st.Exchange(nil, nil, []int64{0}); err != nil || !bytes.Equal(got[0], exBlock(0, size)) {
		t.Fatalf("read-only exchange: %v %v", err, got)
	}
	if d := m.Snapshot().Sub(before); d.NetworkRounds != 1 || d.BlockWrites != 0 {
		t.Fatalf("read-only exchange stats: %+v", d)
	}
	before = m.Snapshot()
	if _, err := st.Exchange(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if d := m.Snapshot().Sub(before); d.NetworkRounds != 0 {
		t.Fatalf("empty exchange touched the wire: %+v", d)
	}
}

// runLoopbackSMJRounds stores two relations on a loopback server with the
// given eviction batch, runs the oblivious sort-merge join over the wire,
// checks the result, and returns the network rounds each Path-ORAM access
// cost. The tables' ORAM traffic is metered on the client transport while
// the output filter is metered apart, so the ratio is exact; setup traffic
// is excluded by resetting the meter after Store (bulk load bypasses the
// access path, so telemetry accesses start at zero there too).
func runLoopbackSMJRounds(t *testing.T, k int) (perAccess float64, exchanges int64) {
	t.Helper()
	mTab := storage.NewMeter()
	_, c := startServer(t, ServerOptions{}, ClientOptions{Meter: mTab})
	sealer, err := xcrypto.NewSealer(bytes.Repeat([]byte{5}, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	k1 := []int64{1, 2, 2, 4, 6, 7, 7, 9, 12, 15, 15, 18, 21, 22, 25, 30}
	k2 := []int64{2, 2, 3, 4, 7, 7, 7, 10, 12, 14, 15, 19, 21, 21, 26, 30}
	want := multiset(core.ReferenceEquiJoin(e2eRel("t1", k1), e2eRel("t2", k2), "k", "k"))
	topts := table.Options{
		BlockPayload:  256,
		Meter:         mTab,
		Sealer:        sealer,
		Rand:          oram.NewSeededSource(7),
		OpenStore:     c.Opener(),
		EvictionBatch: k,
		PrefetchDepth: k,
	}
	t1, err := table.Store(e2eRel("t1", k1), []string{"k"}, topts)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := table.Store(e2eRel("t2", k2), []string{"k"}, topts)
	if err != nil {
		t.Fatal(err)
	}
	mTab.Reset() // setup traffic is not query cost
	res, err := core.SortMergeJoin(t1, t2, "k", "k", core.Options{
		Meter:         storage.NewMeter(), // output filter metered apart
		Sealer:        sealer,
		OutBlockSize:  256,
		PrefetchDepth: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := multiset(res.Tuples)
	if len(got) != len(want) {
		t.Fatalf("distinct tuples: got %d, want %d", len(got), len(want))
	}
	for key, n := range want {
		if got[key] != n {
			t.Fatalf("tuple %s: got %d, want %d", key, got[key], n)
		}
	}
	var accesses int64
	for _, st := range []*table.StoredTable{t1, t2} {
		for _, ps := range st.PathTelemetry() {
			accesses += ps.Accesses
			exchanges += ps.Exchanges
		}
	}
	if accesses == 0 {
		t.Fatal("no ORAM accesses recorded")
	}
	rounds := mTab.Snapshot().NetworkRounds
	return float64(rounds) / float64(accesses), exchanges
}

// TestLoopbackSMJDeferredRounds is the acceptance check for the staged data
// path (DESIGN.md §2.9): over a real loopback server, EvictionBatch = 16
// brings the join's cost from the classic two rounds per ORAM access down
// to at most 1.25, with the deferred flushes riding path downloads as
// combined exchange rounds.
func TestLoopbackSMJDeferredRounds(t *testing.T) {
	classic, classicEx := runLoopbackSMJRounds(t, 1)
	if classic < 1.9 || classic > 2.0 {
		t.Fatalf("classic data path cost %.3f rounds/access, want ~2.0", classic)
	}
	if classicEx != 0 {
		t.Fatalf("classic data path used %d exchanges", classicEx)
	}

	deferred, deferredEx := runLoopbackSMJRounds(t, 16)
	if deferred > 1.25 {
		t.Fatalf("deferred data path cost %.3f rounds/access, want <= 1.25", deferred)
	}
	if deferredEx == 0 {
		t.Fatal("no eviction flush rode a path download")
	}
	t.Logf("rounds/access: classic %.3f -> deferred %.3f (%d exchanges)", classic, deferred, deferredEx)
}
