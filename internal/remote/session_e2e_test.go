package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"oblivjoin/internal/core"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/session"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/table"
	"oblivjoin/internal/tracecheck"
	"oblivjoin/internal/xcrypto"
)

// sessionJoin dials its own client, opens a session for the tenant, and
// runs the standard loopback sort-merge join inside it with fully
// deterministic randomness. It returns the join result, the client-side
// access trace (unqualified store names, so traces are comparable across
// tenants and against sessionless runs), and the metered stats.
func sessionJoin(t *testing.T, addr, tenant string, seed uint64, k1, k2 []int64) (*core.Result, []storage.Access, storage.Stats) {
	t.Helper()
	m := storage.NewMeter()
	m.SetTracing(true)
	c, err := Dial(ClientOptions{Addr: addr, Meter: m, RetryBase: time.Millisecond, RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.StartSession(tenant, 0); err != nil {
		t.Fatal(err)
	}
	sealer, err := xcrypto.NewSealer(bytes.Repeat([]byte{3}, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	topts := table.Options{
		BlockPayload: 256,
		Meter:        m,
		Sealer:       sealer,
		Rand:         oram.NewSeededSource(seed),
		OpenStore:    c.Opener(),
	}
	t1, err := table.Store(e2eRel("t1", k1), []string{"k"}, topts)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := table.Store(e2eRel("t2", k2), []string{"k"}, topts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SortMergeJoin(t1, t2, "k", "k", core.Options{
		Meter:        m,
		Sealer:       sealer,
		OutBlockSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EndSession(); err != nil {
		t.Fatal(err)
	}
	return res, m.Trace(), m.Snapshot()
}

// TestConcurrentSessionsMatchSerial is the PR's acceptance test: four
// simultaneous client sessions against one server must produce, per
// client, the same join results, the same client-visible access trace,
// and the same round count as the identical joins run serially. The
// broker may interleave rounds across sessions in any arrival order, but
// each session's own execution — and therefore its trace projection and
// rounds-per-access — must be exactly its serial execution.
func TestConcurrentSessionsMatchSerial(t *testing.T) {
	const clients = 4
	srv, _ := startServer(t, ServerOptions{MaxStoreBytes: 1 << 32}, ClientOptions{})
	addr := srv.ln.Addr().String()

	k1 := []int64{1, 2, 2, 4, 6, 7, 7, 9, 12, 15}
	k2 := []int64{2, 2, 3, 4, 7, 7, 7, 10, 12, 14}

	type outcome struct {
		result map[string]int
		trace  []storage.Access
		stats  storage.Stats
	}

	// Serial baseline: one session at a time, each in its own tenant.
	serial := make([]outcome, clients)
	for i := 0; i < clients; i++ {
		res, trace, stats := sessionJoin(t, addr, fmt.Sprintf("serial%d", i), uint64(100+i), k1, k2)
		serial[i] = outcome{multiset(res.Tuples), trace, stats}
	}

	// Concurrent run: the same four joins at once, fresh tenants.
	concurrent := make([]outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, trace, stats := sessionJoin(t, addr, fmt.Sprintf("conc%d", i), uint64(100+i), k1, k2)
			concurrent[i] = outcome{multiset(res.Tuples), trace, stats}
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		s, c := serial[i], concurrent[i]
		if len(s.result) == 0 {
			t.Fatalf("client %d: serial join produced nothing", i)
		}
		for k, n := range s.result {
			if c.result[k] != n {
				t.Fatalf("client %d: tuple %s count %d vs serial %d", i, k, c.result[k], n)
			}
		}
		if len(c.result) != len(s.result) {
			t.Fatalf("client %d: %d distinct tuples vs serial %d", i, len(c.result), len(s.result))
		}
		if d := tracecheck.Diff(s.trace, c.trace); d != "" {
			t.Fatalf("client %d: concurrent trace diverges from serial: %s", i, d)
		}
		if s.stats.NetworkRounds != c.stats.NetworkRounds {
			t.Fatalf("client %d: %d rounds concurrent vs %d serial", i, c.stats.NetworkRounds, s.stats.NetworkRounds)
		}
	}

	// The sessions really did overlap on the broker: with four clients
	// hammering one server, at least one round must have waited behind
	// another session's round. (Store guards are per-store and stores are
	// per-tenant here, so contention shows up on shared scheduling rather
	// than shared data — assert only that all sessions were admitted.)
	st := srv.Sessions().Snapshot()
	if st.Opened != 2*clients || st.Closed != 2*clients {
		t.Fatalf("session accounting: %+v", st)
	}
	if bs := srv.BrokerStats(); bs.Stores == 0 || bs.Rounds == 0 {
		t.Fatalf("broker saw no traffic: %+v", bs)
	}
}

// TestSessionNamespaceIsolation checks the tenant boundary end to end: two
// tenants create a store under the same client-visible name with different
// contents and each reads back its own; a sessionless client can neither
// open the name (it lives in no global namespace) nor address the
// qualified form directly.
func TestSessionNamespaceIsolation(t *testing.T) {
	srv, c0 := startServer(t, ServerOptions{}, ClientOptions{})
	addr := srv.ln.Addr().String()

	open := func(tenant string) (*Client, *RemoteStore) {
		c, err := Dial(ClientOptions{Addr: addr, RetryBase: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if err := c.StartSession(tenant, 0); err != nil {
			t.Fatal(err)
		}
		st, err := c.Create("data", 4, 32)
		if err != nil {
			t.Fatal(err)
		}
		return c, st
	}
	_, alice := open("alice")
	_, bob := open("bob")

	wa := bytes.Repeat([]byte{0xAA}, 32)
	wb := bytes.Repeat([]byte{0xBB}, 32)
	if err := alice.Write(1, wa); err != nil {
		t.Fatal(err)
	}
	if err := bob.Write(1, wb); err != nil {
		t.Fatal(err)
	}
	ga, err := alice.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := bob.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ga, wa) || !bytes.Equal(gb, wb) {
		t.Fatalf("cross-tenant bleed: alice %x, bob %x", ga[0], gb[0])
	}

	// Sessionless clients see neither the bare nor the qualified name.
	if _, err := c0.Open("data"); err == nil {
		t.Fatal("sessionless open of a tenant store succeeded")
	}
	qualified := session.Qualify("alice", "data")
	if _, err := c0.Open(qualified); err == nil || !strings.Contains(err.Error(), "tenant namespace") {
		t.Fatalf("direct qualified open: %v", err)
	}
	// But the server does host it under the qualified name.
	if srv.Counts(qualified).Requests == 0 {
		t.Fatalf("server counters missing qualified store; hosted: %v", srv.StoreNames())
	}
}

// TestSessionAdmissionControl exercises the cap over the wire: with a
// session table of two, a third hello is refused with the typed busy
// error, and releasing a slot admits it.
func TestSessionAdmissionControl(t *testing.T) {
	srv, _ := startServer(t, ServerOptions{MaxSessions: 2}, ClientOptions{})
	addr := srv.ln.Addr().String()

	dial := func() *Client {
		c, err := Dial(ClientOptions{Addr: addr, RetryBase: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	c1, c2, c3 := dial(), dial(), dial()
	if err := c1.StartSession("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := c2.StartSession("b", 0); err != nil {
		t.Fatal(err)
	}
	err := c3.StartSession("c", 0)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("over-cap hello: got %v, want ErrBusy", err)
	}
	if err := c1.EndSession(); err != nil {
		t.Fatal(err)
	}
	if err := c3.StartSession("c", 0); err != nil {
		t.Fatalf("hello after release: %v", err)
	}
	st := srv.Sessions().Snapshot()
	if st.Rejected != 1 || st.Opened != 3 {
		t.Fatalf("admission stats: %+v", st)
	}
}

// TestSessionExpiryOverWire lets a session's idle deadline lapse and
// checks the next request fails with a permanent session error the client
// does not retry into oblivion.
func TestSessionExpiryOverWire(t *testing.T) {
	srv, _ := startServer(t, ServerOptions{SessionTimeout: 50 * time.Millisecond}, ClientOptions{})
	c, err := Dial(ClientOptions{Addr: srv.ln.Addr().String(), RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.StartSession("t", 0); err != nil {
		t.Fatal(err)
	}
	st, err := c.Create("s", 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if _, err := st.Read(0); err == nil || !strings.Contains(err.Error(), "expired") {
		t.Fatalf("post-expiry read: %v", err)
	}
}

// TestCloseDrainsActiveSessions pins the shutdown fix: Close must not
// checkpoint stores while a session is mid-join. A session-holding client
// keeps working during the drain window (its connection stays up even
// though the listener is gone) and Close returns promptly once the client
// says goodbye; new sessions are refused the moment draining starts.
func TestCloseDrainsActiveSessions(t *testing.T) {
	srv := NewServer(ServerOptions{DrainTimeout: 5 * time.Second})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(ClientOptions{Addr: addr.String(), RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A second client dialed before the listener goes away, to probe
	// admission during the drain.
	late, err := Dial(ClientOptions{Addr: addr.String(), RetryBase: time.Millisecond, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()

	if err := c.StartSession("t", 0); err != nil {
		t.Fatal(err)
	}
	st, err := c.Create("s", 8, 32)
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan error, 1)
	start := time.Now()
	go func() { closed <- srv.Close() }()

	// Wait until the drain has begun (new sessions refused).
	for i := 0; ; i++ {
		if err := late.StartSession("x", 0); errors.Is(err, ErrBusy) {
			break
		} else if err == nil {
			_ = late.EndSession()
		}
		if i > 500 {
			t.Fatal("drain never started refusing sessions")
		}
		time.Sleep(time.Millisecond)
	}

	// The live session still serves mid-drain.
	if err := st.Write(3, bytes.Repeat([]byte{9}, 32)); err != nil {
		t.Fatalf("write during drain: %v", err)
	}
	select {
	case err := <-closed:
		t.Fatalf("Close returned before the session ended: %v", err)
	default:
	}

	if err := c.EndSession(); err != nil {
		t.Fatal(err)
	}
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e >= 5*time.Second {
		t.Fatalf("Close waited out the whole drain timeout (%v)", e)
	}
}

// TestClientContextDeadline is the deadline-propagation satellite. A hung
// server — one that accepts connections and then never responds — must not
// wedge the client past its bound context's deadline: each attempt's
// net.Conn deadline is tightened to the context deadline, and the retry
// loop stops at cancellation.
func TestClientContextDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, conn) }() // swallow, never reply
		}
	}()

	c, err := Dial(ClientOptions{Addr: ln.Addr().String(), RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	c.BindContext(ctx)
	start := time.Now()
	_, err = c.Open("s")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("open against a hung server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context deadline in the chain", err)
	}
	// Well under the 30s default request timeout that used to bound this.
	if elapsed > 2*time.Second {
		t.Fatalf("client hung for %v despite a 150ms context deadline", elapsed)
	}

	// An already-expired context fails before any I/O.
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	c.BindContext(expired)
	if _, err := c.Open("s"); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired context: %v", err)
	}
}

// TestServerDeadlineFastFail checks the wire deadline's server-side
// meaning: when the client's declared remaining budget is smaller than the
// latency the fault model would impose, the server answers immediately
// instead of serving a reply nobody waits for.
func TestServerDeadlineFastFail(t *testing.T) {
	srv, _ := startServer(t, ServerOptions{Faults: &Shaper{Latency: 300 * time.Millisecond}},
		ClientOptions{})
	c, err := Dial(ClientOptions{Addr: srv.ln.Addr().String(), RetryBase: time.Millisecond, RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Store creation pays the latency (10s budget > 300ms).
	st, err := c.Create("s", 4, 32)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	c.BindContext(ctx)
	start := time.Now()
	_, err = st.Read(0)
	if err == nil || !strings.Contains(err.Error(), "deadline exceeded before service") {
		t.Fatalf("got %v, want server fast-fail", err)
	}
	if e := time.Since(start); e >= 300*time.Millisecond {
		t.Fatalf("server slept the full latency (%v) despite the declared deadline", e)
	}
}

// TestPlanCacheNamespaceIsolation checks the reserved plan-cache tree over
// the wire: two tenants cache an intermediate under the same
// client-visible "plan:" name with different contents and each reads back
// its own, and a sessionless client is refused the qualified form exactly
// like an ordinary tenant store (the reuse of the reserved-prefix refusal
// path for "pc:").
func TestPlanCacheNamespaceIsolation(t *testing.T) {
	srv, c0 := startServer(t, ServerOptions{}, ClientOptions{})
	addr := srv.ln.Addr().String()

	cacheName := session.PlanCachePrefix + "deadbeef01234567/a.data"
	open := func(tenant string) *RemoteStore {
		c, err := Dial(ClientOptions{Addr: addr, RetryBase: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if err := c.StartSession(tenant, 0); err != nil {
			t.Fatal(err)
		}
		st, err := c.Create(cacheName, 4, 32)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	alice := open("alice")
	bob := open("bob")

	wa := bytes.Repeat([]byte{0xA1}, 32)
	wb := bytes.Repeat([]byte{0xB2}, 32)
	if err := alice.Write(2, wa); err != nil {
		t.Fatal(err)
	}
	if err := bob.Write(2, wb); err != nil {
		t.Fatal(err)
	}
	ga, err := alice.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := bob.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ga, wa) || !bytes.Equal(gb, wb) {
		t.Fatalf("cross-tenant plan-cache bleed: alice %x, bob %x", ga[0], gb[0])
	}

	// The server hosts the entry under the pc: tree, tenant-split.
	qualified := session.Qualify("alice", cacheName)
	if !strings.HasPrefix(qualified, "pc:") {
		t.Fatalf("qualified plan-cache name %q not in the pc: tree", qualified)
	}
	if srv.Counts(qualified).Requests == 0 {
		t.Fatalf("server counters missing qualified cache store; hosted: %v", srv.StoreNames())
	}

	// Sessionless clients cannot address another tenant's cache entry.
	if _, err := c0.Open(qualified); err == nil || !strings.Contains(err.Error(), "tenant namespace") {
		t.Fatalf("direct qualified plan-cache open: %v", err)
	}
}
