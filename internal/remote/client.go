package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"oblivjoin/internal/storage"
	"oblivjoin/internal/telemetry"
)

// ClientOptions configures a Client.
type ClientOptions struct {
	// Addr is the server's TCP address.
	Addr string
	// PoolSize caps the idle connections kept for reuse; 0 means 4.
	PoolSize int
	// DialTimeout bounds connection establishment; 0 means 5s.
	DialTimeout time.Duration
	// RequestTimeout bounds one round trip (write request, read response);
	// 0 means 30s.
	RequestTimeout time.Duration
	// MaxRetries is how many times a transient failure (injected fault,
	// network error, timeout) is retried before giving up; 0 means 4.
	// Retries back off exponentially from RetryBase.
	MaxRetries int
	// RetryBase is the first backoff delay; 0 means 5ms. Doubles per
	// attempt, capped at 1s.
	RetryBase time.Duration
	// MaxFrame bounds accepted response frames; 0 means DefaultMaxFrame.
	MaxFrame int
	// Meter, when non-nil, receives client-side traffic accounting: every
	// successful RPC is one network round, batch ops are one round with
	// many block accesses — the real-transport version of the simulated
	// accounting MemStore reports.
	Meter *storage.Meter
}

func (o ClientOptions) poolSize() int {
	if o.PoolSize <= 0 {
		return 4
	}
	return o.PoolSize
}

func (o ClientOptions) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o ClientOptions) requestTimeout() time.Duration {
	if o.RequestTimeout <= 0 {
		return 30 * time.Second
	}
	return o.RequestTimeout
}

func (o ClientOptions) maxRetries() int {
	if o.MaxRetries <= 0 {
		return 4
	}
	return o.MaxRetries
}

func (o ClientOptions) retryBase() time.Duration {
	if o.RetryBase <= 0 {
		return 5 * time.Millisecond
	}
	return o.RetryBase
}

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("remote: client is closed")

// ErrBusy is the typed admission-control rejection: the server's session
// table is full (or it is draining for shutdown). Unlike a transient
// fault it is not retried by the client's backoff loop — the caller
// decides whether to wait, shed load, or fail over.
var ErrBusy = errors.New("remote: server at session capacity")

// RemoteError is a permanent failure reported by the server.
type RemoteError struct {
	Msg string
	// Busy marks an admission-control rejection (wire StatusBusy).
	Busy bool
}

func (e *RemoteError) Error() string { return e.Msg }

// Is preserves sentinel matches across the wire: the server flattens errors
// to strings, so the client re-recognizes well-known storage sentinels by
// their (stable, documented) message. This is what lets a caller write
// errors.Is(err, storage.ErrOutOfRange) — or errors.Is(err, ErrBusy) —
// and not care whether the store is local or behind the transport.
func (e *RemoteError) Is(target error) bool {
	switch target {
	case storage.ErrOutOfRange:
		return strings.Contains(e.Msg, storage.ErrOutOfRange.Error())
	case ErrBusy:
		return e.Busy
	}
	return false
}

// errTransient wraps failures the client may retry.
type errTransient struct{ err error }

func (e *errTransient) Error() string { return e.err.Error() }
func (e *errTransient) Unwrap() error { return e.err }

// frame is a reusable request/response buffer pair. One frame serves one
// round trip; pooling them makes steady-state encoding and frame reads
// allocation-free — decode still copies block payloads out, so nothing
// returned to a caller aliases pooled memory.
type frame struct{ out, in []byte }

var framePool = sync.Pool{New: func() any { return &frame{} }}

// Client is a connection-pooled handle to a remote block server. It is safe
// for concurrent use; each in-flight request holds one pooled connection.
//
// A client may carry at most one server session (StartSession); every
// subsequent request then travels with the session ID and is resolved in
// the session tenant's store namespace. The session rides the request, not
// the connection, so it survives connection churn and pool reuse.
type Client struct {
	opts ClientOptions

	mu      sync.Mutex
	idle    []net.Conn
	closed  bool
	ctx     context.Context
	session int64
	flight  *telemetry.Flight
}

// SetFlight attaches a trace-context carrier: while a trace is active on
// it, every store request is stamped with the trace ID, a fresh span ID,
// and the current public phase label so the server's spans can be grafted
// back into the client's span tree. A nil flight detaches. The stamps are
// a function of public data only (see telemetry.Flight), so traced and
// untraced runs issue byte-identical store access sequences apart from
// the trace section itself.
func (c *Client) SetFlight(f *telemetry.Flight) {
	c.mu.Lock()
	c.flight = f
	c.mu.Unlock()
}

// stamp fills the request's trace section from the attached flight, if a
// trace is active. Control ops (hello/bye/trace) stay unstamped: they are
// not part of the data-access schedule a span tree describes.
func (c *Client) stamp(req *Request) {
	switch req.Op {
	case OpHello, OpBye, OpTrace:
		return
	}
	c.mu.Lock()
	f := c.flight
	c.mu.Unlock()
	if f == nil || !f.Active() {
		return
	}
	req.TraceID = f.TraceID()
	req.SpanID = f.NextSpanID()
	req.Phase = f.Phase()
}

// Dial connects to a block server, verifying reachability with one pooled
// connection up front.
func Dial(opts ClientOptions) (*Client, error) {
	c := &Client{opts: opts}
	conn, err := c.dial()
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", opts.Addr, err)
	}
	c.put(conn)
	return c, nil
}

func (c *Client) dial() (net.Conn, error) {
	return net.DialTimeout("tcp", c.opts.Addr, c.opts.dialTimeout())
}

// get checks a connection out of the pool, dialing a fresh one when empty.
func (c *Client) get() (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	return c.dial()
}

func (c *Client) put(conn net.Conn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.opts.poolSize() {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.Close()
}

// Close ends the client's server session (if any) and releases all pooled
// connections.
func (c *Client) Close() error {
	c.mu.Lock()
	sid := c.session
	c.mu.Unlock()
	if sid != 0 {
		// Best-effort goodbye; the server's idle deadline reaps the session
		// anyway if this races with shutdown or a dead network.
		_ = c.EndSession()
	}
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	return nil
}

// BindContext attaches a context to the client: from now on every request
// checks it before dialing or retrying, its deadline tightens the
// connection I/O deadline (net.Conn SetDeadline), and the remaining budget
// travels to the server in the request's DeadlineMS field so a saturated
// or fault-shaped server can fail fast instead of serving a reply nobody
// is waiting for. A nil context unbinds. The binding applies to requests
// started after the call.
func (c *Client) BindContext(ctx context.Context) {
	c.mu.Lock()
	c.ctx = ctx
	c.mu.Unlock()
}

// boundCtx returns the bound context, never nil.
func (c *Client) boundCtx() context.Context {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// sessionID returns the live session ID, or 0.
func (c *Client) sessionID() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// Session returns the live session ID (0 = sessionless) so callers can
// attribute client-side telemetry spans to the server session serving
// them (the server's own attribution is session.Session.Annotate).
func (c *Client) Session() int64 { return c.sessionID() }

// StartSession opens a server session scoped to the tenant's store
// namespace; idle requests a session idle timeout (0 = server default;
// the server may grant less). All subsequent requests on this client are
// session-scoped until EndSession. A saturated server yields ErrBusy
// (match with errors.Is).
func (c *Client) StartSession(tenant string, idle time.Duration) error {
	c.mu.Lock()
	if c.session != 0 {
		c.mu.Unlock()
		return errors.New("remote: client already has a session")
	}
	c.mu.Unlock()
	resp, err := c.call(&Request{Op: OpHello, Tenant: tenant, Slots: idle.Milliseconds()})
	if err != nil {
		return err
	}
	if resp.Session == 0 {
		return fmt.Errorf("%w: hello response carries no session", ErrMalformed)
	}
	c.mu.Lock()
	c.session = resp.Session
	c.mu.Unlock()
	return nil
}

// EndSession ends the server session, releasing its admission slot and
// checkpointing the stores it touched on a persistent server. The client
// reverts to sessionless operation.
func (c *Client) EndSession() error {
	c.mu.Lock()
	sid := c.session
	c.session = 0
	c.mu.Unlock()
	if sid == 0 {
		return nil
	}
	_, err := c.call(&Request{Op: OpBye, Session: sid})
	return err
}

// roundTrip performs one request over one connection under the per-request
// deadline, tightened by the bound context's deadline if that is sooner.
// The remaining budget is declared to the server in DeadlineMS.
// Network-level failures come back wrapped as transient.
func (c *Client) roundTrip(ctx context.Context, conn net.Conn, req *Request) (*Response, error) {
	deadline := time.Now().Add(c.opts.requestTimeout())
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if ms := time.Until(deadline).Milliseconds(); ms > 0 {
		req.DeadlineMS = ms
	} else {
		req.DeadlineMS = 1 // declare an (expired) deadline rather than none
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, &errTransient{err}
	}
	f := framePool.Get().(*frame)
	defer framePool.Put(f)
	f.out = AppendFramedRequest(f.out[:0], req)
	if _, err := conn.Write(f.out); err != nil {
		return nil, &errTransient{err}
	}
	payload, err := ReadFrameInto(conn, c.opts.MaxFrame, f.in[:0])
	if err != nil {
		return nil, &errTransient{err}
	}
	f.in = payload[:0]
	return DecodeResponse(payload)
}

// call executes a request with bounded retry and exponential backoff on
// transient failures. Block writes are idempotent (absolute index, absolute
// contents), so retrying after an ambiguous network failure is safe. A
// bound context stops the retry loop at its deadline or cancellation —
// a hung server costs at most one I/O deadline, never an unbounded wait.
func (c *Client) call(req *Request) (*Response, error) {
	ctx := c.boundCtx()
	if req.Session == 0 && req.Op != OpHello {
		req.Session = c.sessionID()
	}
	// Stamp once, before the retry loop: a retried request is the same
	// logical op, so it keeps its span ID and the server's ring holds one
	// span per op regardless of transport luck.
	c.stamp(req)
	backoff := c.opts.retryBase()
	var lastErr error
	for attempt := 0; attempt <= c.opts.maxRetries(); attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("remote: %s %q: %w (last error: %v)", req.Op, req.Store, err, lastErr)
			}
			return nil, fmt.Errorf("remote: %s %q: %w", req.Op, req.Store, err)
		}
		conn, err := c.get()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		resp, err := c.roundTrip(ctx, conn, req)
		if err != nil {
			// The connection is in an unknown state mid-protocol: discard it.
			conn.Close()
			var tr *errTransient
			if errors.As(err, &tr) {
				lastErr = err
				continue
			}
			return nil, err
		}
		c.put(conn)
		switch resp.Status {
		case StatusOK:
			return resp, nil
		case StatusTransient:
			lastErr = &errTransient{errors.New(resp.Msg)}
			continue
		case StatusBusy:
			return nil, &RemoteError{Msg: resp.Msg, Busy: true}
		default:
			return nil, &RemoteError{Msg: resp.Msg}
		}
	}
	return nil, fmt.Errorf("remote: %s %q failed after %d attempts: %w",
		req.Op, req.Store, c.opts.maxRetries()+1, lastErr)
}

// FetchServerSpans retrieves the server's buffered spans for one trace
// (0 = everything still in the ring) — the pull half of distributed
// tracing, issued by Database.EndTrace after the join completes so the
// telemetry read never interleaves with the oblivious access schedule.
func (c *Client) FetchServerSpans(traceID uint64) ([]telemetry.ServerSpan, error) {
	resp, err := c.call(&Request{Op: OpTrace, TraceID: traceID})
	if err != nil {
		return nil, err
	}
	if len(resp.Blocks) != 1 {
		return nil, fmt.Errorf("%w: trace response carries %d payloads", ErrMalformed, len(resp.Blocks))
	}
	return ParseSpans(resp.Blocks[0])
}

// Create provisions a named store on the server and returns a handle to it.
func (c *Client) Create(name string, slots int64, blockSize int) (*RemoteStore, error) {
	resp, err := c.call(&Request{Op: OpCreate, Store: name, Slots: slots, BlockSize: int64(blockSize)})
	if err != nil {
		return nil, err
	}
	return &RemoteStore{c: c, name: name, slots: resp.Slots, blockSize: int(resp.BlockSize)}, nil
}

// Open attaches to an existing named store, fetching its geometry.
func (c *Client) Open(name string) (*RemoteStore, error) {
	resp, err := c.call(&Request{Op: OpStat, Store: name})
	if err != nil {
		return nil, err
	}
	return &RemoteStore{c: c, name: name, slots: resp.Slots, blockSize: int(resp.BlockSize)}, nil
}

// Opener returns a storage.Opener that provisions stores on the remote
// server — plug it into oram.PathConfig.OpenStore or table.Options to run
// the whole engine against this server.
func (c *Client) Opener() storage.Opener {
	return func(name string, slots int64, blockSize int) (storage.Store, error) {
		return c.Create(name, slots, blockSize)
	}
}

// RemoteStore is a client-side handle to one named store on the server. It
// implements storage.Store and storage.BatchStore: batch operations move a
// whole ORAM path in one round trip.
type RemoteStore struct {
	c         *Client
	name      string
	slots     int64
	blockSize int
}

var (
	_ storage.BatchStore    = (*RemoteStore)(nil)
	_ storage.ExchangeStore = (*RemoteStore)(nil)
)

// Name returns the server-side store name.
func (s *RemoteStore) Name() string { return s.name }

// Len implements storage.Store.
func (s *RemoteStore) Len() int64 { return s.slots }

// BlockSize implements storage.Store.
func (s *RemoteStore) BlockSize() int { return s.blockSize }

// Read implements storage.Store: one block, one round trip.
func (s *RemoteStore) Read(i int64) ([]byte, error) {
	resp, err := s.c.call(&Request{Op: OpRead, Store: s.name, Indices: []int64{i}})
	if err != nil {
		return nil, err
	}
	if len(resp.Blocks) != 1 {
		return nil, fmt.Errorf("%w: read returned %d blocks", ErrMalformed, len(resp.Blocks))
	}
	if m := s.c.opts.Meter; m != nil {
		m.CountBatch(s.name, storage.KindRead, []int64{i}, s.blockSize)
	}
	return resp.Blocks[0], nil
}

// Write implements storage.Store.
func (s *RemoteStore) Write(i int64, data []byte) error {
	_, err := s.c.call(&Request{Op: OpWrite, Store: s.name, Indices: []int64{i}, Blocks: [][]byte{data}})
	if err != nil {
		return err
	}
	if m := s.c.opts.Meter; m != nil {
		m.CountBatch(s.name, storage.KindWrite, []int64{i}, s.blockSize)
	}
	return nil
}

// ReadMany implements storage.BatchStore: the whole batch is one request,
// hence one round trip — the fast path that lets Path-ORAM fetch a full
// tree path per round.
func (s *RemoteStore) ReadMany(idxs []int64) ([][]byte, error) {
	if len(idxs) == 0 {
		return nil, nil
	}
	resp, err := s.c.call(&Request{Op: OpReadMany, Store: s.name, Indices: idxs})
	if err != nil {
		return nil, err
	}
	if len(resp.Blocks) != len(idxs) {
		return nil, fmt.Errorf("%w: batch read returned %d of %d blocks", ErrMalformed, len(resp.Blocks), len(idxs))
	}
	if m := s.c.opts.Meter; m != nil {
		m.CountBatch(s.name, storage.KindRead, idxs, s.blockSize)
	}
	return resp.Blocks, nil
}

// WriteMany implements storage.BatchStore.
func (s *RemoteStore) WriteMany(idxs []int64, data [][]byte) error {
	if len(idxs) != len(data) {
		return fmt.Errorf("remote: batch write of %d blocks with %d payloads", len(idxs), len(data))
	}
	if len(idxs) == 0 {
		return nil
	}
	_, err := s.c.call(&Request{Op: OpWriteMany, Store: s.name, Indices: idxs, Blocks: data})
	if err != nil {
		return err
	}
	if m := s.c.opts.Meter; m != nil {
		m.CountBatch(s.name, storage.KindWrite, idxs, s.blockSize)
	}
	return nil
}

// Exchange implements storage.ExchangeStore: the writes and reads travel in
// one OpExchange request, and the server applies the writes before serving
// the reads. Degenerate forms collapse to the plain batch ops (which skip
// the wire entirely when empty), and a retried exchange is idempotent for
// the same reason batch writes are: absolute indices, absolute contents.
func (s *RemoteStore) Exchange(writeIdxs []int64, writeData [][]byte, readIdxs []int64) ([][]byte, error) {
	if len(writeIdxs) != len(writeData) {
		return nil, fmt.Errorf("remote: exchange of %d write blocks with %d payloads", len(writeIdxs), len(writeData))
	}
	if len(writeIdxs) == 0 && len(readIdxs) == 0 {
		return nil, nil
	}
	if len(readIdxs) == 0 {
		return nil, s.WriteMany(writeIdxs, writeData)
	}
	if len(writeIdxs) == 0 {
		return s.ReadMany(readIdxs)
	}
	resp, err := s.c.call(&Request{
		Op:           OpExchange,
		Store:        s.name,
		Indices:      readIdxs,
		WriteIndices: writeIdxs,
		Blocks:       writeData,
	})
	if err != nil {
		return nil, err
	}
	if len(resp.Blocks) != len(readIdxs) {
		return nil, fmt.Errorf("%w: exchange returned %d of %d blocks", ErrMalformed, len(resp.Blocks), len(readIdxs))
	}
	if m := s.c.opts.Meter; m != nil {
		m.CountExchange(s.name, writeIdxs, readIdxs, s.blockSize)
	}
	return resp.Blocks, nil
}
