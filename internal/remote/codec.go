// Package remote is the networked block-store transport: a length-prefixed
// binary wire protocol, a TCP server that hosts named storage.Store
// instances, and a client that implements storage.Store and
// storage.BatchStore so the oblivious join engine runs unchanged against a
// remote block server.
//
// The paper's deployment (Section 9.1) separates the trusted client from an
// untrusted storage server and argues costs in network round trips. The
// protocol therefore exposes batch reads and writes as first-class
// operations: a Path-ORAM access over this transport is at most two round
// trips — one batched path download, one batched path write-back — instead
// of the O(log n) single-block trips a naive transport would pay, and the
// deferred-eviction scheduler (DESIGN.md §2.9) coalesces the write-backs of
// several accesses into one exchange round, dropping the realized cost
// below two.
//
// The server is untrusted by construction: it only ever sees sealed bucket
// ciphertexts and physical indices, exactly the view the obliviousness
// definition grants the adversary.
//
// Typical use: start a Server (or cmd/ojoinserver) over any set of named
// stores, then Dial a client and pass Client.Opener as the table/ORAM
// store factory. All write RPCs address fixed physical slots and are
// therefore idempotent, so the client transparently retries transport
// errors and StatusTransient responses with exponential backoff
// (ClientOptions.MaxRetries); a retried batch is metered as one network
// round, on success. The server's deterministic FaultModel (Shaper) injects
// latency and transient faults for tests and WAN experiments. See DESIGN.md
// §2.6 for the batching semantics and failure model in full.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// DefaultMaxFrame bounds a single wire frame (64 MiB), comfortably above
// any realistic batched ORAM path while preventing a malformed length
// prefix from provoking an enormous allocation.
const DefaultMaxFrame = 64 << 20

// maxStoreName bounds store-name lengths on the wire.
const maxStoreName = 4096

// maxPhase bounds trace phase labels on the wire (generous over
// telemetry.MaxPhaseLen so the codec stays decoupled from the registry).
const maxPhase = 128

// Op identifies a request type.
type Op uint8

// Wire operations. OpCreate provisions a named store server-side (the
// client computes ORAM tree geometry and allocates accordingly); OpStat
// fetches the geometry of an existing store; the rest move blocks.
const (
	OpRead Op = iota + 1
	OpWrite
	OpReadMany
	OpWriteMany
	OpStat
	OpCreate
	// OpExchange applies a batch of writes, then serves a batch of reads,
	// in one round trip — the multi-path RPC behind the ORAM scheduler's
	// deferred-eviction flush riding a path download.
	OpExchange
	// OpHello opens a client session: Tenant names the namespace every
	// store the session touches is qualified into, Slots carries the
	// requested idle timeout in milliseconds (0 = server default). The
	// response echoes the granted timeout in Slots and the session ID in
	// Session. A saturated server answers StatusBusy.
	OpHello
	// OpBye ends the session named by Session, releasing its admission
	// slot and checkpointing the stores it touched on a persistent server.
	OpBye
	// OpTrace fetches recent server spans for the trace named by TraceID
	// (0 = all buffered) as a JSON batch in Response.Blocks[0]. It is a
	// pure telemetry read: it addresses no store, touches no block, and is
	// excluded from per-store counters and access traces, so fetching a
	// trace cannot perturb the trace being fetched.
	OpTrace
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpReadMany:
		return "read-many"
	case OpWriteMany:
		return "write-many"
	case OpStat:
		return "stat"
	case OpCreate:
		return "create"
	case OpExchange:
		return "exchange"
	case OpHello:
		return "hello"
	case OpBye:
		return "bye"
	case OpTrace:
		return "trace"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Status classifies a response.
type Status uint8

// Response statuses. StatusTransient marks failures worth retrying
// (injected faults, shedding); StatusError marks permanent ones
// (out-of-range index, unknown store, malformed request); StatusBusy is
// the admission-control rejection — the session table is full, and the
// client should surface a typed error rather than hammer the retry path.
const (
	StatusOK Status = iota
	StatusError
	StatusTransient
	StatusBusy
)

// Request is one client→server operation.
type Request struct {
	Op    Op
	Store string
	// Indices carries the target block index (single ops), the batch
	// index list, or — for OpExchange — the read index list.
	Indices []int64
	// Blocks carries write payloads, aligned with Indices (or with
	// WriteIndices for OpExchange).
	Blocks [][]byte
	// Slots and BlockSize carry store geometry for OpCreate.
	Slots     int64
	BlockSize int64
	// WriteIndices carries the write index list for OpExchange, aligned
	// with Blocks; empty for every other op.
	WriteIndices []int64
	// Tenant carries the namespace for OpHello; empty otherwise.
	Tenant string
	// Session is the session this request executes under (0 = none). The
	// server qualifies Store into the session's tenant namespace.
	Session int64
	// DeadlineMS is the client's remaining per-request deadline budget in
	// milliseconds at send time (0 = none). The server refuses to start
	// work it already knows cannot finish inside the budget — injected
	// WAN latency included — so a saturated or shaped server fails fast
	// instead of wedging the session.
	DeadlineMS int64
	// TraceID and SpanID carry the distributed-trace context (0 = no
	// trace): the server records a ServerSpan per traced op, and OpTrace
	// fetches them back by TraceID. Encoded as an optional trailing
	// section, so traceless requests stay byte-identical to the previous
	// wire format.
	TraceID uint64
	SpanID  uint64
	// Phase is the client phase label that caused this op. Labels are
	// restricted to the declared-public alphabet
	// (telemetry.DeclarePhases), so the annotation is a function of
	// public data only.
	Phase string
}

// Response is one server→client reply.
type Response struct {
	Status Status
	// Msg is the error message when Status != StatusOK.
	Msg string
	// Blocks carries read results.
	Blocks [][]byte
	// Slots and BlockSize carry store geometry for OpStat/OpCreate replies
	// (and the granted idle timeout in milliseconds for OpHello).
	Slots     int64
	BlockSize int64
	// Session carries the session ID granted by OpHello; 0 otherwise. It is
	// encoded only when non-zero so replies to pre-session clients stay
	// byte-identical to the old wire format.
	Session int64
}

// Codec errors.
var (
	ErrFrameTooLarge = errors.New("remote: frame exceeds size limit")
	ErrMalformed     = errors.New("remote: malformed message")
)

// AppendFramedRequest appends req's complete wire frame — length prefix
// included — to b. It is the single-buffer equivalent of EncodeRequest +
// WriteFrame: one conn.Write sends the whole frame (one syscall, no
// header-array allocation), and the bytes on the wire are identical.
func AppendFramedRequest(b []byte, req *Request) []byte {
	return fixupFrame(AppendRequest(append(b, 0, 0, 0, 0), req), len(b))
}

// AppendFramedResponse is AppendFramedRequest for responses.
func AppendFramedResponse(b []byte, resp *Response) []byte {
	return fixupFrame(AppendResponse(append(b, 0, 0, 0, 0), resp), len(b))
}

// fixupFrame back-patches the 4-byte length prefix reserved at off.
func fixupFrame(b []byte, off int) []byte {
	binary.BigEndian.PutUint32(b[off:off+4], uint32(len(b)-off-4))
	return b
}

// WriteFrame writes a length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload, rejecting frames larger than
// max (0 means DefaultMaxFrame) before allocating anything.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	return ReadFrameInto(r, max, nil)
}

// ReadFrameInto is ReadFrame reading into buf's capacity, allocating only
// when the frame outgrows it — the steady-state zero-allocation read path.
// The returned slice aliases buf (when it fit), so callers reusing a buffer
// must finish consuming one frame before reading the next.
func ReadFrameInto(r io.Reader, max int, buf []byte) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	// The length prefix is read into buf's own spare capacity so the
	// steady state allocates nothing (a stack [4]byte would escape through
	// the io.Reader interface and cost one heap allocation per frame).
	if cap(buf) < 4 {
		buf = make([]byte, 4, 512)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > uint32(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// appendUvarint / reader helpers ---------------------------------------------

type reader struct{ b []byte }

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrMalformed)
	}
	r.b = r.b[n:]
	return v, nil
}

// length decodes a uvarint that counts items of at least itemSize remaining
// bytes each, so a forged count can never force an allocation larger than
// the frame that carried it.
func (r *reader) length(itemSize int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if itemSize < 1 {
		itemSize = 1
	}
	if v > uint64(len(r.b)/itemSize) {
		return 0, fmt.Errorf("%w: count %d exceeds payload", ErrMalformed, v)
	}
	return int(v), nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.length(1)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, r.b[:n])
	r.b = r.b[n:]
	return out, nil
}

// bytesSlab copies the next length-prefixed field into slab and returns
// the carved full-capacity subslice. slab must be pre-sized to at least
// the remaining payload so it never reallocates (earlier carvings would
// dangle otherwise); the decode loops guarantee that by sizing it to
// len(r.b). One slab per block batch means one allocation instead of one
// per block — the blocks share a backing array, so retaining any one of
// them retains the batch, which is how ORAM path payloads live anyway.
func (r *reader) bytesSlab(slab *[]byte) ([]byte, error) {
	n, err := r.length(1)
	if err != nil {
		return nil, err
	}
	start := len(*slab)
	*slab = append(*slab, r.b[:n]...)
	r.b = r.b[n:]
	return (*slab)[start : start+n : start+n], nil
}

func (r *reader) int64() (int64, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > 1<<62 {
		return 0, fmt.Errorf("%w: integer %d out of range", ErrMalformed, v)
	}
	return int64(v), nil
}

// EncodeRequest serializes a request into a fresh frame payload.
func EncodeRequest(req *Request) []byte {
	return AppendRequest(make([]byte, 0, 64), req)
}

// AppendRequest serializes a request, appending to b — the zero-copy
// variant EncodeRequest wraps. The hot path (client.roundTrip) passes a
// reused frame buffer so steady-state encoding allocates nothing; the
// encoded bytes are identical either way.
func AppendRequest(b []byte, req *Request) []byte {
	b = append(b, byte(req.Op))
	b = binary.AppendUvarint(b, uint64(len(req.Store)))
	b = append(b, req.Store...)
	b = binary.AppendUvarint(b, uint64(req.Slots))
	b = binary.AppendUvarint(b, uint64(req.BlockSize))
	b = binary.AppendUvarint(b, uint64(len(req.Indices)))
	for _, i := range req.Indices {
		b = binary.AppendUvarint(b, uint64(i))
	}
	b = binary.AppendUvarint(b, uint64(len(req.Blocks)))
	for _, blk := range req.Blocks {
		b = binary.AppendUvarint(b, uint64(len(blk)))
		b = append(b, blk...)
	}
	b = binary.AppendUvarint(b, uint64(len(req.WriteIndices)))
	for _, i := range req.WriteIndices {
		b = binary.AppendUvarint(b, uint64(i))
	}
	// The session section is appended only when in use, so a sessionless
	// request stays byte-identical to the pre-session wire format and an
	// old server keeps decoding it. A trace context forces the session
	// section out too (zeroed if unused) because the trace section trails
	// it positionally.
	if req.Tenant != "" || req.Session != 0 || req.DeadlineMS != 0 || req.TraceID != 0 {
		b = binary.AppendUvarint(b, uint64(len(req.Tenant)))
		b = append(b, req.Tenant...)
		b = binary.AppendUvarint(b, uint64(req.Session))
		b = binary.AppendUvarint(b, uint64(req.DeadlineMS))
	}
	// The trace section is appended only when a trace is armed, so
	// untraced requests stay byte-identical to the previous wire format.
	if req.TraceID != 0 {
		b = binary.AppendUvarint(b, req.TraceID)
		b = binary.AppendUvarint(b, req.SpanID)
		b = binary.AppendUvarint(b, uint64(len(req.Phase)))
		b = append(b, req.Phase...)
	}
	return b
}

// DecodeRequest parses a frame payload into a Request. Malformed input
// yields an error, never a panic or an allocation beyond the frame size.
func DecodeRequest(payload []byte) (*Request, error) {
	r := &reader{b: payload}
	if len(r.b) < 1 {
		return nil, fmt.Errorf("%w: empty request", ErrMalformed)
	}
	op := Op(r.b[0])
	r.b = r.b[1:]
	if op < OpRead || op > OpTrace {
		return nil, fmt.Errorf("%w: unknown op %d", ErrMalformed, op)
	}
	req := &Request{Op: op}
	name, err := r.bytes()
	if err != nil {
		return nil, err
	}
	if len(name) > maxStoreName {
		return nil, fmt.Errorf("%w: store name of %d bytes", ErrMalformed, len(name))
	}
	req.Store = string(name)
	if req.Slots, err = r.int64(); err != nil {
		return nil, err
	}
	if req.BlockSize, err = r.int64(); err != nil {
		return nil, err
	}
	nIdx, err := r.length(1)
	if err != nil {
		return nil, err
	}
	if nIdx > 0 {
		req.Indices = make([]int64, nIdx)
		for k := range req.Indices {
			if req.Indices[k], err = r.int64(); err != nil {
				return nil, err
			}
		}
	}
	nBlk, err := r.length(1)
	if err != nil {
		return nil, err
	}
	if nBlk > 0 {
		req.Blocks = make([][]byte, nBlk)
		slab := make([]byte, 0, len(r.b))
		for k := range req.Blocks {
			if req.Blocks[k], err = r.bytesSlab(&slab); err != nil {
				return nil, err
			}
		}
	}
	// The trailing WriteIndices field was added with OpExchange. A request
	// encoded by the previous wire format simply ends here, so treat an
	// exhausted buffer as an absent (empty) field rather than a malformed
	// frame: version skew then only costs the peer the OpExchange fast path
	// (which older clients never send), not the whole protocol.
	if len(r.b) > 0 {
		nWIdx, err := r.length(1)
		if err != nil {
			return nil, err
		}
		if nWIdx > 0 {
			req.WriteIndices = make([]int64, nWIdx)
			for k := range req.WriteIndices {
				if req.WriteIndices[k], err = r.int64(); err != nil {
					return nil, err
				}
			}
		}
	}
	// The session section (tenant, session ID, deadline) trails WriteIndices
	// under the same skew rule: absent means a sessionless request from any
	// wire-format generation, so old traffic decodes unchanged.
	if len(r.b) > 0 {
		tenant, err := r.bytes()
		if err != nil {
			return nil, err
		}
		if len(tenant) > maxStoreName {
			return nil, fmt.Errorf("%w: tenant name of %d bytes", ErrMalformed, len(tenant))
		}
		req.Tenant = string(tenant)
		if req.Session, err = r.int64(); err != nil {
			return nil, err
		}
		if req.DeadlineMS, err = r.int64(); err != nil {
			return nil, err
		}
	}
	// The trace section (trace ID, span ID, phase) trails the session
	// section under the same skew rule: absent means an untraced request
	// from any wire-format generation. A present section must carry a
	// non-zero trace ID — zero means "no trace" and is never encoded, so
	// accepting it would break the canonical re-encode round trip.
	if len(r.b) > 0 {
		if req.TraceID, err = r.uvarint(); err != nil {
			return nil, err
		}
		if req.TraceID == 0 {
			return nil, fmt.Errorf("%w: trace section without trace ID", ErrMalformed)
		}
		if req.SpanID, err = r.uvarint(); err != nil {
			return nil, err
		}
		phase, err := r.bytes()
		if err != nil {
			return nil, err
		}
		if len(phase) > maxPhase {
			return nil, fmt.Errorf("%w: phase label of %d bytes", ErrMalformed, len(phase))
		}
		req.Phase = string(phase)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.b))
	}
	return req, nil
}

// EncodeResponse serializes a response into a fresh frame payload.
func EncodeResponse(resp *Response) []byte {
	return AppendResponse(make([]byte, 0, 64), resp)
}

// AppendResponse serializes a response, appending to b — the zero-copy
// variant EncodeResponse wraps, used by the server's per-connection frame
// buffer. The encoded bytes are identical either way.
func AppendResponse(b []byte, resp *Response) []byte {
	b = append(b, byte(resp.Status))
	b = binary.AppendUvarint(b, uint64(len(resp.Msg)))
	b = append(b, resp.Msg...)
	b = binary.AppendUvarint(b, uint64(len(resp.Blocks)))
	for _, blk := range resp.Blocks {
		b = binary.AppendUvarint(b, uint64(len(blk)))
		b = append(b, blk...)
	}
	b = binary.AppendUvarint(b, uint64(resp.Slots))
	b = binary.AppendUvarint(b, uint64(resp.BlockSize))
	// Only session-opening replies carry the trailing session ID; every
	// other response stays byte-identical to the pre-session format, so a
	// pre-session client never sees trailing bytes it would reject.
	if resp.Session != 0 {
		b = binary.AppendUvarint(b, uint64(resp.Session))
	}
	return b
}

// DecodeResponse parses a frame payload into a Response.
func DecodeResponse(payload []byte) (*Response, error) {
	r := &reader{b: payload}
	if len(r.b) < 1 {
		return nil, fmt.Errorf("%w: empty response", ErrMalformed)
	}
	status := Status(r.b[0])
	r.b = r.b[1:]
	if status > StatusBusy {
		return nil, fmt.Errorf("%w: unknown status %d", ErrMalformed, status)
	}
	resp := &Response{Status: status}
	msg, err := r.bytes()
	if err != nil {
		return nil, err
	}
	resp.Msg = string(msg)
	nBlk, err := r.length(1)
	if err != nil {
		return nil, err
	}
	if nBlk > 0 {
		resp.Blocks = make([][]byte, nBlk)
		slab := make([]byte, 0, len(r.b))
		for k := range resp.Blocks {
			if resp.Blocks[k], err = r.bytesSlab(&slab); err != nil {
				return nil, err
			}
		}
	}
	if resp.Slots, err = r.int64(); err != nil {
		return nil, err
	}
	if resp.BlockSize, err = r.int64(); err != nil {
		return nil, err
	}
	// Trailing session ID, present only on OpHello replies.
	if len(r.b) > 0 {
		if resp.Session, err = r.int64(); err != nil {
			return nil, err
		}
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.b))
	}
	return resp, nil
}
