package table

import (
	"fmt"

	"oblivjoin/internal/btree"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/relation"
)

// Row is the result of one tuple retrieval: the decoded tuple, the index
// entry it came from (when retrieved through an index), and OK=false for a
// dummy / past-the-end retrieval (the paper's ⊥).
type Row struct {
	Tuple relation.Tuple
	Entry btree.Entry
	OK    bool
}

// ScanCursor iterates a table's data blocks in storage order — the outer
// (root) table role of the index nested-loop joins, where "we retrieve
// tuples from T1 one by one according to sequential block IDs". Every Next
// and Dummy performs exactly one data-ORAM access.
type ScanCursor struct {
	t   *StoredTable
	pos int
}

// NewScanCursor returns a cursor at the first tuple.
func NewScanCursor(t *StoredTable) *ScanCursor { return &ScanCursor{t: t} }

// Next retrieves the next tuple, or a dummy once past the end.
func (c *ScanCursor) Next() (Row, error) {
	if c.pos >= c.t.NumTuples() {
		if err := c.t.DummyData(); err != nil {
			return Row{}, err
		}
		return Row{}, nil
	}
	ref := btree.Ref{Block: uint64(c.pos / c.t.perBlock), Slot: c.pos % c.t.perBlock}
	tu, ok, err := c.t.ReadTuple(ref)
	if err != nil {
		return Row{}, err
	}
	if !ok {
		return Row{}, fmt.Errorf("table: scan hit dummy slot at %d", c.pos)
	}
	c.pos++
	return Row{Tuple: tu, OK: true}, nil
}

// Dummy performs an access indistinguishable from Next without advancing.
func (c *ScanCursor) Dummy() error { return c.t.DummyData() }

// DummyBatch performs n dummy accesses with their path downloads coalesced
// into one round when the data ORAM supports it. Only safe where n is a
// function of public quantities (the all-dummy padding loops).
func (c *ScanCursor) DummyBatch(n int) error { return c.t.DummyDataBatch(n) }

// Pos returns the number of tuples consumed.
func (c *ScanCursor) Pos() int { return c.pos }

// LeafCursor iterates a table in index (attribute) order by walking the
// B-tree leaf level — the sort-merge join's retrieval primitive: each
// retrieval is one index-ORAM access (the leaf) plus one data-ORAM access,
// real or dummy, so all retrievals are indistinguishable.
type LeafCursor struct {
	t    *StoredTable
	tree *btree.Tree
	pos  int64 // ordinal of the next entry to retrieve
}

// NewLeafCursor returns a cursor over the index on attr, positioned before
// the first entry.
func NewLeafCursor(t *StoredTable, attr string) (*LeafCursor, error) {
	tree, err := t.Index(attr)
	if err != nil {
		return nil, err
	}
	return &LeafCursor{t: t, tree: tree}, nil
}

// Next retrieves the tuple at the cursor and advances; past the end it
// performs the same accesses and returns a dummy Row — the ⊥ tuple that
// Algorithm 1 ranks behind every real tuple.
func (c *LeafCursor) Next() (Row, error) {
	if c.pos >= c.tree.NumEntries() {
		if err := c.dummyIndex(); err != nil {
			return Row{}, err
		}
		if err := c.t.DummyData(); err != nil {
			return Row{}, err
		}
		return Row{}, nil
	}
	ents, err := c.tree.ReadLeaf(c.tree.LeafFor(c.pos))
	if err != nil {
		return Row{}, err
	}
	ent := ents[int(c.pos)%c.tree.LeafFanoutEntries()]
	tu, ok, err := c.t.ReadTuple(ent.Ref)
	if err != nil {
		return Row{}, err
	}
	if !ok {
		return Row{}, fmt.Errorf("table: leaf entry ord %d points at dummy slot", c.pos)
	}
	c.pos++
	return Row{Tuple: tu, Entry: ent, OK: true}, nil
}

// Dummy performs accesses indistinguishable from Next without advancing.
func (c *LeafCursor) Dummy() error {
	if err := c.dummyIndex(); err != nil {
		return err
	}
	return c.t.DummyData()
}

func (c *LeafCursor) dummyIndex() error { return c.tree.ORAM().DummyAccess() }

// DummyBatch performs n dummy retrievals (n index accesses, then n data
// accesses) with each ORAM's downloads coalesced when supported. The
// per-store access counts match n sequential Dummy calls exactly; only the
// round grouping — a function of the public batch size — changes.
func (c *LeafCursor) DummyBatch(n int) error {
	if err := oram.DummyBatch(c.tree.ORAM(), n); err != nil {
		return err
	}
	return c.t.DummyDataBatch(n)
}

// Pos returns the ordinal of the next entry.
func (c *LeafCursor) Pos() int64 { return c.pos }

// SeekOrd repositions the cursor (client-side bookkeeping only; Algorithm 1's
// "tuple[2] := begin" restores a saved position without a retrieval).
func (c *LeafCursor) SeekOrd(ord int64) { c.pos = ord }

// IndexCursor retrieves tuples through full B-tree descents — the inner
// table role of the index nested-loop joins. Every operation (seek, advance,
// or dummy) performs exactly tree.AccessesPerRetrieval() index-ORAM accesses
// plus one data-ORAM access.
type IndexCursor struct {
	t    *StoredTable
	tree *btree.Tree
	cur  btree.Entry
	ok   bool
}

// NewIndexCursor returns a cursor over the index on attr.
func NewIndexCursor(t *StoredTable, attr string) (*IndexCursor, error) {
	tree, err := t.Index(attr)
	if err != nil {
		return nil, err
	}
	return &IndexCursor{t: t, tree: tree}, nil
}

// Tree exposes the underlying index (for disable operations).
func (c *IndexCursor) Tree() *btree.Tree { return c.tree }

// Current returns the entry the cursor rests on.
func (c *IndexCursor) Current() (btree.Entry, bool) { return c.cur, c.ok }

func (c *IndexCursor) finish(ent btree.Entry, found bool, err error) (Row, error) {
	if err != nil {
		return Row{}, err
	}
	c.cur, c.ok = ent, found
	if !found {
		if derr := c.t.DummyData(); derr != nil {
			return Row{}, derr
		}
		return Row{}, nil
	}
	tu, ok, err := c.t.ReadTuple(ent.Ref)
	if err != nil {
		return Row{}, err
	}
	if !ok {
		return Row{}, fmt.Errorf("table: entry ord %d points at dummy slot", ent.Ord)
	}
	return Row{Tuple: tu, Entry: ent, OK: true}, nil
}

// SeekGE positions at the first live entry with key >= k and retrieves its
// tuple (Algorithm 2's getFirst(tuple.key)).
func (c *IndexCursor) SeekGE(k int64) (Row, error) {
	return c.finish(c.tree.LookupGE(k))
}

// SeekOrdGE positions at the first live entry with ordinal >= o (band joins
// start ascending passes at ordinal 0).
func (c *IndexCursor) SeekOrdGE(o int64) (Row, error) {
	return c.finish(c.tree.LookupOrdGE(o))
}

// SeekOrdLE positions at the last live entry with ordinal <= o (band joins
// start descending passes at the last entry).
func (c *IndexCursor) SeekOrdLE(o int64) (Row, error) {
	return c.finish(c.tree.LookupOrdLE(o))
}

// Next advances to the next live entry in ordinal order.
func (c *IndexCursor) Next() (Row, error) {
	if !c.ok {
		return Row{}, fmt.Errorf("table: Next on unpositioned cursor")
	}
	return c.finish(c.tree.LookupOrdGE(c.cur.Ord + 1))
}

// Prev advances to the previous live entry in ordinal order.
func (c *IndexCursor) Prev() (Row, error) {
	if !c.ok {
		return Row{}, fmt.Errorf("table: Prev on unpositioned cursor")
	}
	return c.finish(c.tree.LookupOrdLE(c.cur.Ord - 1))
}

// Dummy performs accesses indistinguishable from a seek or advance.
func (c *IndexCursor) Dummy() error {
	if err := c.tree.DummyOp(); err != nil {
		return err
	}
	return c.t.DummyData()
}

// DummyBatch performs n dummy operations. The B-tree descents stay
// sequential (each is a dependent root-to-leaf walk), but the n trailing
// data accesses are coalesced when the data ORAM supports it.
func (c *IndexCursor) DummyBatch(n int) error {
	for i := 0; i < n; i++ {
		if err := c.tree.DummyOp(); err != nil {
			return err
		}
	}
	return c.t.DummyDataBatch(n)
}

// Disable marks the cursor's table entry with the given ordinal disabled and
// performs the uniform dummy data access that keeps a disable step
// indistinguishable from a retrieval (Section 6: "a tuple disabling
// operation, which is indistinguishable from a tuple retrieval").
func (c *IndexCursor) Disable(ord int64) error {
	if err := c.tree.Disable(ord); err != nil {
		return err
	}
	return c.t.DummyData()
}
