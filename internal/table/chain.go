package table

import (
	"encoding/binary"
	"fmt"
	"sort"

	"oblivjoin/internal/btree"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/relation"
)

// ChainedTable is the index-free layout the paper notes Algorithm 1 can run
// on: "B-tree indices are not required for Algorithm 1. If each tuple keeps
// the pointer to the next tuple, succeeding tuples can be retrieved when
// needed through ORAM using the pointers." Every stored record carries the
// reference of its successor in join-attribute order; the client keeps only
// the head reference. A retrieval is then a single data-ORAM access (versus
// the leaf+data pair of the indexed layout).
type ChainedTable struct {
	rel      *relation.Relation
	attrCol  int
	data     oram.ORAM
	perBlock int
	recSize  int
	head     btree.Ref
	hasHead  bool
}

const chainPtrSize = 8 + 2 + 1 // next block, next slot, has-next flag

// StoreChained uploads rel with tuples chained in ascending attr order.
func StoreChained(rel *relation.Relation, attr string, opts Options) (*ChainedTable, error) {
	if rel == nil {
		return nil, fmt.Errorf("table: nil relation")
	}
	if !opts.Raw && opts.Sealer == nil {
		return nil, fmt.Errorf("table: sealer required unless Raw")
	}
	col := rel.Schema.Col(attr)
	if col < 0 {
		return nil, fmt.Errorf("table: %s has no column %q", rel.Schema.Table, attr)
	}
	payload := opts.payload()
	recSize := rel.Schema.TupleSize() + chainPtrSize
	perBlock := payload / recSize
	if perBlock < 1 {
		return nil, fmt.Errorf("table: chained record size %d exceeds block payload %d", recSize, payload)
	}
	if perBlock > 0xFFFF {
		perBlock = 0xFFFF
	}
	n := len(rel.Tuples)
	// Sort tuple indices by the attribute (stable); this happens client-side
	// during preprocessing, so an ordinary sort is fine.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return rel.Tuples[order[i]].Values[col] < rel.Tuples[order[j]].Values[col]
	})
	refOf := func(i int) btree.Ref {
		return btree.Ref{Block: uint64(i / perBlock), Slot: i % perBlock}
	}
	// next[i] = successor of tuple i in attr order.
	blocks := (n + perBlock - 1) / perBlock
	if blocks == 0 {
		blocks = 1
	}
	payloads := make([][]byte, blocks)
	for b := range payloads {
		payloads[b] = make([]byte, payload)
	}
	for rank, i := range order {
		buf := payloads[i/perBlock][(i%perBlock)*recSize:]
		if err := relation.Encode(rel.Schema, rel.Tuples[i], buf); err != nil {
			return nil, err
		}
		ptr := buf[rel.Schema.TupleSize():]
		if rank+1 < n {
			succ := refOf(order[rank+1])
			binary.LittleEndian.PutUint64(ptr, succ.Block)
			binary.LittleEndian.PutUint16(ptr[8:], uint16(succ.Slot))
			ptr[10] = 1
		}
	}
	store, err := newStore(rel.Schema.Table+".chain", int64(blocks), opts)
	if err != nil {
		return nil, err
	}
	if err := bulkLoad(store, payloads); err != nil {
		return nil, err
	}
	ct := &ChainedTable{
		rel:      rel,
		attrCol:  col,
		data:     store,
		perBlock: perBlock,
		recSize:  recSize,
	}
	if n > 0 {
		ct.head = refOf(order[0])
		ct.hasHead = true
	}
	return ct, nil
}

// Schema returns the stored relation's schema.
func (c *ChainedTable) Schema() relation.Schema { return c.rel.Schema }

// NumTuples returns the row count.
func (c *ChainedTable) NumTuples() int { return len(c.rel.Tuples) }

// CloudBytes returns the server footprint.
func (c *ChainedTable) CloudBytes() int64 { return c.data.ServerBytes() }

// ClientBytes returns the client footprint.
func (c *ChainedTable) ClientBytes() int64 { return c.data.ClientBytes() }

// readChained fetches the record at ref: the tuple plus its successor.
func (c *ChainedTable) readChained(ref btree.Ref) (relation.Tuple, btree.Ref, bool, error) {
	buf, err := c.data.Read(ref.Block)
	if err != nil {
		return relation.Tuple{}, btree.Ref{}, false, err
	}
	off := ref.Slot * c.recSize
	if off+c.recSize > len(buf) {
		return relation.Tuple{}, btree.Ref{}, false, fmt.Errorf("table: chained slot %d out of block", ref.Slot)
	}
	rec := buf[off : off+c.recSize]
	tu, ok, err := relation.Decode(c.rel.Schema, rec[:c.rel.Schema.TupleSize()])
	if err != nil || !ok {
		return relation.Tuple{}, btree.Ref{}, false, fmt.Errorf("table: chained slot holds dummy (%v)", err)
	}
	ptr := rec[c.rel.Schema.TupleSize():]
	var next btree.Ref
	hasNext := ptr[10] == 1
	if hasNext {
		next = btree.Ref{
			Block: binary.LittleEndian.Uint64(ptr),
			Slot:  int(binary.LittleEndian.Uint16(ptr[8:])),
		}
	}
	return tu, next, hasNext, nil
}

// ChainCursor walks a ChainedTable in attribute order: one data-ORAM access
// per retrieval, real or dummy.
type ChainCursor struct {
	t       *ChainedTable
	next    btree.Ref
	hasNext bool
}

// NewChainCursor returns a cursor at the chain head.
func NewChainCursor(t *ChainedTable) *ChainCursor {
	return &ChainCursor{t: t, next: t.head, hasNext: t.hasHead}
}

// Next retrieves the next tuple in attribute order, or a dummy past the end.
func (c *ChainCursor) Next() (Row, error) {
	if !c.hasNext {
		if err := c.t.data.DummyAccess(); err != nil {
			return Row{}, err
		}
		return Row{}, nil
	}
	tu, next, hasNext, err := c.t.readChained(c.next)
	if err != nil {
		return Row{}, err
	}
	row := Row{Tuple: tu, OK: true}
	row.Entry.Key = tu.Values[c.t.attrCol]
	c.next, c.hasNext = next, hasNext
	return row, nil
}

// Dummy performs an access indistinguishable from Next without advancing.
func (c *ChainCursor) Dummy() error { return c.t.data.DummyAccess() }

// DummyBatch performs n dummy accesses with their path downloads coalesced
// into one round when the data ORAM supports it.
func (c *ChainCursor) DummyBatch(n int) error { return oram.DummyBatch(c.t.data, n) }

// Flush settles any deferred eviction state in the chained table's ORAM.
func (c *ChainedTable) Flush() error { return oram.Flush(c.data) }

// PathTelemetry returns the data ORAM's path statistics when it exposes
// them (the chained layout has no index ORAMs).
func (c *ChainedTable) PathTelemetry() []oram.PathStats {
	if t, ok := c.data.(interface{ Telemetry() oram.PathStats }); ok {
		return []oram.PathStats{t.Telemetry()}
	}
	return nil
}

// Mark captures the cursor position for Algorithm 1's "begin" rewind.
func (c *ChainCursor) Mark() ChainMark { return ChainMark{next: c.next, hasNext: c.hasNext} }

// Restore rewinds to a captured position (client-side bookkeeping only).
func (c *ChainCursor) Restore(m ChainMark) { c.next, c.hasNext = m.next, m.hasNext }

// ChainMark is an opaque chained-cursor position.
type ChainMark struct {
	next    btree.Ref
	hasNext bool
}
