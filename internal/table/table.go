// Package table binds the relational layer to the oblivious storage layer:
// a StoredTable packs a relation's tuples into fixed-size encrypted data
// blocks inside an ORAM and integrates B-tree indices over chosen attributes
// (ORAM+B-tree, Section 4.2 of the paper).
//
// Three storage settings are supported, matching the paper's evaluation:
//
//   - SepORAM: one Path-ORAM for data blocks and one per index (the default,
//     "Segmenting ORAM" in Section 4.2);
//   - OneORAM: all tables' data and index blocks in a single Path-ORAM
//     (Section 7), built with StoreShared;
//   - Raw: plaintext blocks with direct addressing — the insecure
//     "Raw Index" baseline.
package table

import (
	"fmt"
	"sort"

	"oblivjoin/internal/btree"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/telemetry"
	"oblivjoin/internal/xcrypto"
)

// DefaultBlockPayload is the usable bytes per block, matching the paper's
// B = 4 KB encrypted blocks.
const DefaultBlockPayload = 4096

// Options configures table storage.
type Options struct {
	// BlockPayload is the usable bytes per ORAM block; 0 means
	// DefaultBlockPayload.
	BlockPayload int
	// Meter receives all traffic accounting; may be nil.
	Meter *storage.Meter
	// Sealer encrypts blocks; required unless Raw or Keyring is set.
	Sealer *xcrypto.Sealer
	// Keyring, when non-nil, supplies per-store sealers instead of Sealer:
	// every ORAM store ("T.data", "T.idx.attr", "shared", and recursive
	// ".pos" position maps) gets an independent HKDF-derived subkey, and an
	// epoch rotation on the ring migrates all of them lazily. Takes
	// precedence over Sealer.
	Keyring *xcrypto.Keyring
	// Rand supplies ORAM randomness; nil means crypto/rand.
	Rand oram.LeafSource
	// CacheIndex enables the paper's "+Cache" mode: all index levels above
	// the leaves are kept client-side (Δ = 1).
	CacheIndex bool
	// WriteBackDescents puts indexes in the uniform read-down/write-up mode
	// required by the multiway join's disable operations.
	WriteBackDescents bool
	// Raw disables encryption and ORAM — the insecure baseline.
	Raw bool
	// RecursePosMap outsources Path-ORAM position maps recursively.
	RecursePosMap bool
	// Z overrides the Path-ORAM bucket size (0 = default 4).
	Z int
	// Scheme selects the ORAM construction. The join algorithms treat the
	// ORAM as a blackbox (Section 1), so any scheme yields identical results
	// with different costs.
	Scheme Scheme
	// OpenStore provisions the Path-ORAM bucket stores; nil means in-process
	// MemStores. A remote deployment passes a transport-backed opener (e.g.
	// remote.Client.Opener) so every table lives on a networked block server.
	OpenStore storage.Opener
	// StorePrefix is prepended to every store name the table provisions
	// ("<prefix><table>.data", "<prefix><table>.idx.<attr>"). The query
	// layer's plan cache stores filtered-and-indexed intermediates under
	// the reserved session.PlanCachePrefix namespace this way, so cached
	// inputs never collide with base tables and tenant qualification can
	// route them into an isolated per-tenant subtree.
	StorePrefix string
	// EvictionBatch defers Path-ORAM eviction write-backs, flushing that
	// many pending paths per round trip (<= 1 keeps the classic two-round
	// access). See oram.PathConfig.EvictionBatch.
	EvictionBatch int
	// PrefetchDepth coalesces the path downloads of up to that many
	// independent dummy accesses in the join padding loops into one round
	// trip (<= 1 keeps one access per round). The join layer honors it only
	// in the non-padded mode; see core.Options.PrefetchDepth for the
	// leakage argument.
	PrefetchDepth int
	// Flight carries the distributed-trace context down to the Path-ORAM
	// schedulers so deferred eviction flushes annotate their wire requests
	// with the "oram.flush" phase; may be nil. See oram.PathConfig.Flight.
	Flight *telemetry.Flight
}

// Scheme identifies an ORAM construction.
type Scheme int

// Supported ORAM schemes.
const (
	// SchemePath is Path-ORAM, the paper's choice.
	SchemePath Scheme = iota
	// SchemeLinear is the trivial scan-everything ORAM — O(N) per access
	// but zero client state; the classic baseline.
	SchemeLinear
)

func (o Options) payload() int {
	if o.BlockPayload == 0 {
		return DefaultBlockPayload
	}
	return o.BlockPayload
}

// StoredTable is a relation stored in oblivious (or raw) cloud blocks with
// B-tree indices over selected attributes.
type StoredTable struct {
	rel      *relation.Relation
	opts     Options
	data     oram.ORAM
	perBlock int
	indexes  map[string]*btree.Tree
}

// Store uploads rel with its own ORAMs (SepORAM setting, or Raw when
// opts.Raw): one for data blocks and one per indexed attribute.
func Store(rel *relation.Relation, indexAttrs []string, opts Options) (*StoredTable, error) {
	t, built, err := prepare(rel, indexAttrs, opts)
	if err != nil {
		return nil, err
	}
	// Data ORAM.
	dataBlocks := t.dataBlockCount()
	dataORAM, err := newStore(DataStoreName(opts.StorePrefix, rel.Schema.Table), dataBlocks, opts)
	if err != nil {
		return nil, err
	}
	if err := bulkLoad(dataORAM, t.dataPayloads()); err != nil {
		return nil, err
	}
	t.data = dataORAM
	// One ORAM per index.
	for _, attr := range indexAttrs {
		b := built[attr]
		idxORAM, err := newStore(IndexStoreName(opts.StorePrefix, rel.Schema.Table, attr), b.NumNodes(), opts)
		if err != nil {
			return nil, err
		}
		payloads, err := b.Payloads()
		if err != nil {
			return nil, err
		}
		if err := bulkLoad(idxORAM, payloads); err != nil {
			return nil, err
		}
		tree, err := btree.New(btree.Config{
			ORAM:              idxORAM,
			CacheInternal:     opts.CacheIndex,
			WriteBackDescents: opts.WriteBackDescents,
		}, b)
		if err != nil {
			return nil, err
		}
		t.indexes[attr] = tree
	}
	return t, nil
}

// StoreShared uploads several relations into one shared Path-ORAM — the
// OneORAM setting of Section 7. indexAttrs maps table name to the attributes
// to index. The returned map is keyed by table name.
func StoreShared(rels []*relation.Relation, indexAttrs map[string][]string, opts Options) (map[string]*StoredTable, *oram.PathORAM, error) {
	if opts.Raw {
		return nil, nil, fmt.Errorf("table: OneORAM setting is incompatible with Raw")
	}
	type piece struct {
		t     *StoredTable
		built map[string]*btree.Built
		attrs []string
	}
	pieces := make([]piece, 0, len(rels))
	var allPayloads [][]byte
	type span struct{ offset, count int64 }
	dataSpans := make([]span, len(rels))
	idxSpans := make([]map[string]span, len(rels))

	for i, rel := range rels {
		attrs := indexAttrs[rel.Schema.Table]
		t, built, err := prepare(rel, attrs, opts)
		if err != nil {
			return nil, nil, err
		}
		dataSpans[i] = span{offset: int64(len(allPayloads)), count: t.dataBlockCount()}
		allPayloads = append(allPayloads, t.dataPayloads()...)
		idxSpans[i] = make(map[string]span, len(attrs))
		for _, attr := range attrs {
			b := built[attr]
			payloads, err := b.Payloads()
			if err != nil {
				return nil, nil, err
			}
			idxSpans[i][attr] = span{offset: int64(len(allPayloads)), count: b.NumNodes()}
			allPayloads = append(allPayloads, payloads...)
		}
		pieces = append(pieces, piece{t: t, built: built, attrs: attrs})
	}

	shared, err := oram.NewPathORAM(oram.PathConfig{
		Name:          opts.StorePrefix + "shared",
		Capacity:      int64(len(allPayloads)),
		PayloadSize:   opts.payload(),
		Z:             opts.Z,
		Meter:         opts.Meter,
		Sealer:        opts.Sealer,
		Keyring:       opts.Keyring,
		Rand:          opts.Rand,
		RecursePosMap: opts.RecursePosMap,
		OpenStore:     opts.OpenStore,
		EvictionBatch: opts.EvictionBatch,
		Flight:        opts.Flight,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := shared.BulkLoad(allPayloads); err != nil {
		return nil, nil, err
	}

	out := make(map[string]*StoredTable, len(rels))
	for i, p := range pieces {
		dv, err := oram.NewView(shared, uint64(dataSpans[i].offset), dataSpans[i].count)
		if err != nil {
			return nil, nil, err
		}
		p.t.data = dv
		for _, attr := range p.attrs {
			s := idxSpans[i][attr]
			iv, err := oram.NewView(shared, uint64(s.offset), s.count)
			if err != nil {
				return nil, nil, err
			}
			tree, err := btree.New(btree.Config{
				ORAM:              iv,
				CacheInternal:     opts.CacheIndex,
				WriteBackDescents: opts.WriteBackDescents,
			}, p.built[attr])
			if err != nil {
				return nil, nil, err
			}
			p.t.indexes[attr] = tree
		}
		out[rels[i].Schema.Table] = p.t
	}
	return out, shared, nil
}

// prepare validates the relation, computes geometry, and constructs index
// node sets (client-side; nothing uploaded yet).
func prepare(rel *relation.Relation, indexAttrs []string, opts Options) (*StoredTable, map[string]*btree.Built, error) {
	if rel == nil {
		return nil, nil, fmt.Errorf("table: nil relation")
	}
	if !opts.Raw && opts.Sealer == nil && opts.Keyring == nil {
		return nil, nil, fmt.Errorf("table: sealer or keyring required unless Raw")
	}
	payload := opts.payload()
	ts := rel.Schema.TupleSize()
	perBlock := payload / ts
	if perBlock < 1 {
		return nil, nil, fmt.Errorf("table: tuple size %d exceeds block payload %d", ts, payload)
	}
	if perBlock > 0xFFFF {
		perBlock = 0xFFFF // Ref.Slot is serialized as uint16
	}
	t := &StoredTable{
		rel:      rel,
		opts:     opts,
		perBlock: perBlock,
		indexes:  make(map[string]*btree.Tree, len(indexAttrs)),
	}
	built := make(map[string]*btree.Built, len(indexAttrs))
	for _, attr := range indexAttrs {
		col := rel.Schema.Col(attr)
		if col < 0 {
			return nil, nil, fmt.Errorf("table: %s has no column %q", rel.Schema.Table, attr)
		}
		items := make([]btree.Item, len(rel.Tuples))
		for i, tu := range rel.Tuples {
			items[i] = btree.Item{
				Key: tu.Values[col],
				Ref: btree.Ref{Block: uint64(i / perBlock), Slot: i % perBlock},
			}
		}
		b, err := btree.Construct(payload, items)
		if err != nil {
			return nil, nil, err
		}
		built[attr] = b
	}
	return t, built, nil
}

func (t *StoredTable) dataBlockCount() int64 {
	n := (len(t.rel.Tuples) + t.perBlock - 1) / t.perBlock
	if n == 0 {
		n = 1
	}
	return int64(n)
}

// dataPayloads encodes the tuples into data-block payloads.
func (t *StoredTable) dataPayloads() [][]byte {
	payload := t.opts.payload()
	ts := t.rel.Schema.TupleSize()
	blocks := make([][]byte, t.dataBlockCount())
	for b := range blocks {
		buf := make([]byte, payload)
		for s := 0; s < t.perBlock; s++ {
			i := b*t.perBlock + s
			if i >= len(t.rel.Tuples) {
				break
			}
			// Encoding errors are impossible here: prepare validated widths.
			if err := relation.Encode(t.rel.Schema, t.rel.Tuples[i], buf[s*ts:]); err != nil {
				panic(fmt.Sprintf("table: encoding tuple %d of %s: %v", i, t.rel.Schema.Table, err))
			}
		}
		blocks[b] = buf
	}
	return blocks
}

func newStore(name string, capacity int64, opts Options) (oram.ORAM, error) {
	if opts.Raw {
		return oram.NewRawStore(name, capacity, opts.payload(), opts.Meter, opts.Rand)
	}
	if opts.Scheme == SchemeLinear {
		return oram.NewLinearORAM(oram.PathConfig{
			Name:        name,
			Capacity:    capacity,
			PayloadSize: opts.payload(),
			Meter:       opts.Meter,
			Sealer:      opts.Sealer,
			Keyring:     opts.Keyring,
		})
	}
	return oram.NewPathORAM(oram.PathConfig{
		Name:          name,
		Capacity:      capacity,
		PayloadSize:   opts.payload(),
		Z:             opts.Z,
		Meter:         opts.Meter,
		Sealer:        opts.Sealer,
		Keyring:       opts.Keyring,
		Rand:          opts.Rand,
		RecursePosMap: opts.RecursePosMap,
		OpenStore:     opts.OpenStore,
		EvictionBatch: opts.EvictionBatch,
		Flight:        opts.Flight,
	})
}

func bulkLoad(o oram.ORAM, payloads [][]byte) error {
	type bulkLoader interface{ BulkLoad([][]byte) error }
	bl, ok := o.(bulkLoader)
	if !ok {
		return fmt.Errorf("table: ORAM %T does not support bulk load", o)
	}
	return bl.BulkLoad(payloads)
}

// Schema returns the stored relation's schema.
func (t *StoredTable) Schema() relation.Schema { return t.rel.Schema }

// NumTuples returns the row count (public sizing information).
func (t *StoredTable) NumTuples() int { return len(t.rel.Tuples) }

// TuplesPerBlock returns the data-block packing factor.
func (t *StoredTable) TuplesPerBlock() int { return t.perBlock }

// Index returns the B-tree over attr, or an error if not built.
func (t *StoredTable) Index(attr string) (*btree.Tree, error) {
	tr, ok := t.indexes[attr]
	if !ok {
		return nil, fmt.Errorf("table: %s has no index on %q", t.rel.Schema.Table, attr)
	}
	return tr, nil
}

// ReadTuple fetches the tuple at ref with exactly one data-ORAM access.
func (t *StoredTable) ReadTuple(ref btree.Ref) (relation.Tuple, bool, error) {
	buf, err := t.data.Read(ref.Block)
	if err != nil {
		return relation.Tuple{}, false, err
	}
	ts := t.rel.Schema.TupleSize()
	off := ref.Slot * ts
	if off+ts > len(buf) {
		return relation.Tuple{}, false, fmt.Errorf("table: slot %d out of block", ref.Slot)
	}
	return relation.Decode(t.rel.Schema, buf[off:off+ts])
}

// DummyData performs one data-ORAM access indistinguishable from ReadTuple.
func (t *StoredTable) DummyData() error { return t.data.DummyAccess() }

// DummyDataBatch performs n data-ORAM dummy accesses with their path
// downloads coalesced into one round when the ORAM supports it.
func (t *StoredTable) DummyDataBatch(n int) error { return oram.DummyBatch(t.data, n) }

// Flush settles any deferred eviction state in the table's data and index
// ORAMs — called when a query finishes so no stash state is left pinned by
// pending write-backs.
func (t *StoredTable) Flush() error {
	if err := oram.Flush(t.data); err != nil {
		return err
	}
	for attr, tr := range t.indexes {
		if err := oram.Flush(tr.ORAM()); err != nil {
			return fmt.Errorf("table: flushing %s.%s: %w", t.rel.Schema.Table, attr, err)
		}
	}
	return nil
}

// PathTelemetry returns the Path-ORAM scheduler/stash statistics for each
// of the table's ORAMs that exposes them (data first, then indexes).
func (t *StoredTable) PathTelemetry() []oram.PathStats {
	type pathTelemeter interface{ Telemetry() oram.PathStats }
	var out []oram.PathStats
	if p, ok := t.data.(pathTelemeter); ok {
		out = append(out, p.Telemetry())
	}
	for _, tr := range t.indexes {
		if p, ok := tr.ORAM().(pathTelemeter); ok {
			out = append(out, p.Telemetry())
		}
	}
	return out
}

// CloudBytes returns the server-side footprint of the table's data and
// index storage. In the OneORAM setting views report pro-rated shares.
func (t *StoredTable) CloudBytes() int64 {
	total := t.data.ServerBytes()
	for _, tr := range t.indexes {
		total += treeServerBytes(tr)
	}
	return total
}

// ClientBytes returns the client-side footprint: ORAM metadata (stash +
// position maps) plus cached index levels.
func (t *StoredTable) ClientBytes() int64 {
	total := t.data.ClientBytes()
	for _, tr := range t.indexes {
		total += tr.ClientCacheBytes() + treeClientBytes(tr)
	}
	return total
}

// ResetIndexes restores liveness tags on every index (the multiway join's
// post-query cleanup).
func (t *StoredTable) ResetIndexes() error {
	for attr, tr := range t.indexes {
		if err := tr.Reset(); err != nil {
			return fmt.Errorf("table: resetting %s.%s: %w", t.rel.Schema.Table, attr, err)
		}
	}
	return nil
}

// Relation exposes the client-side plaintext relation (tests and reference
// joins only; a real deployment would not retain it).
func (t *StoredTable) Relation() *relation.Relation { return t.rel }

// DataStoreName is the store name Store provisions for a table's data ORAM.
// The planner's catalog reconstructs it to attribute predicted block
// accesses per store.
func DataStoreName(prefix, tbl string) string { return prefix + tbl + ".data" }

// IndexStoreName is the store name Store provisions for one index ORAM.
func IndexStoreName(prefix, tbl, attr string) string { return prefix + tbl + ".idx." + attr }

// DataAccessesPerOp reports the fixed number of server block operations one
// data-ORAM access moves (2·levels for Path-ORAM). Public metadata: a
// constant of the instance geometry, independent of the data.
func (t *StoredTable) DataAccessesPerOp() int { return t.data.AccessesPerOp() }

// IndexAttrs lists the attributes with a built index, sorted — the public
// index inventory the planner enumerates candidates over.
func (t *StoredTable) IndexAttrs() []string {
	attrs := make([]string, 0, len(t.indexes))
	for a := range t.indexes {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	return attrs
}

// StorePrefix reports the store-name prefix the table was provisioned under
// (empty for base tables, a plan-cache prefix for cached intermediates).
func (t *StoredTable) StorePrefix() string { return t.opts.StorePrefix }

// treeServerBytes and treeClientBytes reach through to the tree's ORAM.
func treeServerBytes(tr *btree.Tree) int64 { return tr.ORAM().ServerBytes() }
func treeClientBytes(tr *btree.Tree) int64 { return tr.ORAM().ClientBytes() }
