package table

import (
	"bytes"
	"testing"

	"oblivjoin/internal/btree"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/relation"
	"oblivjoin/internal/storage"
	"oblivjoin/internal/xcrypto"
)

func testOpts(t testing.TB, m *storage.Meter) Options {
	t.Helper()
	sealer, err := xcrypto.NewSealer(bytes.Repeat([]byte{9}, xcrypto.KeySize), nil)
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		BlockPayload: 256, // small blocks force interesting geometry
		Meter:        m,
		Sealer:       sealer,
		Rand:         oram.NewSeededSource(100),
	}
}

func testRelation(name string, keys []int64) *relation.Relation {
	rel := &relation.Relation{Schema: relation.Schema{
		Table:   name,
		Columns: []string{"k", "v"},
	}}
	for i, k := range keys {
		rel.Tuples = append(rel.Tuples, relation.Tuple{Values: []int64{k, int64(i)}})
	}
	return rel
}

func TestStoreAndReadTuple(t *testing.T) {
	rel := testRelation("t", []int64{5, 3, 8, 3, 1, 9, 2})
	st, err := Store(rel, []string{"k"}, testOpts(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if st.NumTuples() != 7 {
		t.Fatalf("NumTuples %d", st.NumTuples())
	}
	// Direct positional read.
	for i := range rel.Tuples {
		ref := btree.Ref{Block: uint64(i / st.TuplesPerBlock()), Slot: i % st.TuplesPerBlock()}
		tu, ok, err := st.ReadTuple(ref)
		if err != nil || !ok {
			t.Fatalf("tuple %d: ok=%v err=%v", i, ok, err)
		}
		if tu.Values[0] != rel.Tuples[i].Values[0] {
			t.Fatalf("tuple %d key %d", i, tu.Values[0])
		}
	}
}

func TestStoreIndexLookup(t *testing.T) {
	rel := testRelation("t", []int64{5, 3, 8, 3, 1, 9, 2})
	st, err := Store(rel, []string{"k"}, testOpts(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := st.Index("k")
	if err != nil {
		t.Fatal(err)
	}
	e, ok, err := idx.LookupGE(3)
	if err != nil || !ok || e.Key != 3 {
		t.Fatalf("LookupGE(3): %+v ok=%v err=%v", e, ok, err)
	}
	tu, ok, err := st.ReadTuple(e.Ref)
	if err != nil || !ok || tu.Values[0] != 3 {
		t.Fatalf("deref: %+v ok=%v err=%v", tu, ok, err)
	}
	if _, err := st.Index("v"); err == nil {
		t.Fatal("missing index accepted")
	}
}

func TestStoreRejectsBadInput(t *testing.T) {
	opts := testOpts(t, nil)
	if _, err := Store(nil, nil, opts); err == nil {
		t.Fatal("nil relation accepted")
	}
	rel := testRelation("t", []int64{1})
	if _, err := Store(rel, []string{"nope"}, opts); err == nil {
		t.Fatal("unknown index attr accepted")
	}
	noSealer := opts
	noSealer.Sealer = nil
	if _, err := Store(rel, nil, noSealer); err == nil {
		t.Fatal("missing sealer accepted")
	}
	wide := &relation.Relation{Schema: relation.Schema{Table: "w", Columns: []string{"a"}, PayloadBytes: 1000}}
	wide.Tuples = []relation.Tuple{{Values: []int64{1}}}
	if _, err := Store(wide, nil, opts); err == nil {
		t.Fatal("tuple wider than block accepted")
	}
}

func TestScanCursor(t *testing.T) {
	m := storage.NewMeter()
	rel := testRelation("t", []int64{4, 4, 7, 1, 0, 2, 2, 2, 9, 5, 6})
	st, err := Store(rel, nil, testOpts(t, m))
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	c := NewScanCursor(st)
	per := int64(0)
	for i := 0; i < len(rel.Tuples); i++ {
		before := m.Snapshot()
		row, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !row.OK || row.Tuple.Values[0] != rel.Tuples[i].Values[0] {
			t.Fatalf("scan %d: %+v", i, row)
		}
		d := m.Snapshot().Sub(before).BlocksMoved()
		if per == 0 {
			per = d
		} else if d != per {
			t.Fatalf("scan %d moved %d blocks, first moved %d", i, d, per)
		}
	}
	// Past the end: dummy row, same cost.
	before := m.Snapshot()
	row, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if row.OK {
		t.Fatal("past-end scan returned a real row")
	}
	if d := m.Snapshot().Sub(before).BlocksMoved(); d != per {
		t.Fatalf("past-end moved %d, want %d", d, per)
	}
	// Dummy: same cost.
	before = m.Snapshot()
	if err := c.Dummy(); err != nil {
		t.Fatal(err)
	}
	if d := m.Snapshot().Sub(before).BlocksMoved(); d != per {
		t.Fatalf("dummy moved %d, want %d", d, per)
	}
}

func TestLeafCursorSortedTraversal(t *testing.T) {
	m := storage.NewMeter()
	keys := []int64{4, 4, 7, 1, 0, 2, 2, 2, 9, 5, 6, 3, 3, 8, 8, 8, 8}
	rel := testRelation("t", keys)
	st, err := Store(rel, []string{"k"}, testOpts(t, m))
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	c, err := NewLeafCursor(st, "k")
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	per := int64(-1)
	for i := 0; i < len(keys); i++ {
		before := m.Snapshot()
		row, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !row.OK {
			t.Fatalf("unexpected dummy at %d", i)
		}
		got = append(got, row.Tuple.Values[0])
		d := m.Snapshot().Sub(before).BlocksMoved()
		if per < 0 {
			per = d
		} else if d != per {
			t.Fatalf("retrieval %d moved %d blocks, want %d", i, d, per)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("not sorted at %d: %v", i, got)
		}
	}
	// Past-the-end and Dummy cost the same.
	for name, op := range map[string]func() error{
		"past-end": func() error { _, err := c.Next(); return err },
		"dummy":    c.Dummy,
	} {
		before := m.Snapshot()
		if err := op(); err != nil {
			t.Fatal(err)
		}
		if d := m.Snapshot().Sub(before).BlocksMoved(); d != per {
			t.Fatalf("%s moved %d, want %d", name, d, per)
		}
	}
	// Seek replays a saved position without accesses.
	before := m.Snapshot()
	c.SeekOrd(3)
	if d := m.Snapshot().Sub(before).BlocksMoved(); d != 0 {
		t.Fatalf("seek moved %d blocks", d)
	}
	row, err := c.Next()
	if err != nil || !row.OK {
		t.Fatal(err)
	}
	if row.Entry.Ord != 3 {
		t.Fatalf("after seek: ord %d", row.Entry.Ord)
	}
}

func TestIndexCursorUniformCost(t *testing.T) {
	m := storage.NewMeter()
	keys := []int64{1, 2, 2, 2, 3, 4, 5, 5, 6, 7, 8, 9, 10, 11, 12}
	rel := testRelation("t", keys)
	opts := testOpts(t, m)
	opts.WriteBackDescents = true
	st, err := Store(rel, []string{"k"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	c, err := NewIndexCursor(st, "k")
	if err != nil {
		t.Fatal(err)
	}
	type step struct {
		name string
		op   func() (Row, error)
		key  int64 // expected key, -1 for dummy expected
	}
	steps := []step{
		{"seek2", func() (Row, error) { return c.SeekGE(2) }, 2},
		{"next", c.Next, 2},
		{"next", c.Next, 2},
		{"next", c.Next, 3},
		{"seek100", func() (Row, error) { return c.SeekGE(100) }, -1},
		{"seekOrd0", func() (Row, error) { return c.SeekOrdGE(0) }, 1},
		{"seekOrdLE", func() (Row, error) { return c.SeekOrdLE(int64(len(keys) - 1)) }, 12},
		{"prev", c.Prev, 11},
		{"dummy", func() (Row, error) { return Row{}, c.Dummy() }, -1},
		{"disable", func() (Row, error) { return Row{}, c.Disable(0) }, -1},
		{"seek1", func() (Row, error) { return c.SeekGE(1) }, 2}, // ord 0 disabled
	}
	per := int64(-1)
	for _, s := range steps {
		before := m.Snapshot()
		row, err := s.op()
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if s.key >= 0 && (!row.OK || row.Tuple.Values[0] != s.key) {
			t.Fatalf("%s: got %+v, want key %d", s.name, row, s.key)
		}
		d := m.Snapshot().Sub(before).BlocksMoved()
		if per < 0 {
			per = d
		} else if d != per {
			t.Fatalf("%s moved %d blocks, want %d", s.name, d, per)
		}
	}
}

func TestIndexCursorUnpositioned(t *testing.T) {
	rel := testRelation("t", []int64{1, 2, 3})
	st, err := Store(rel, []string{"k"}, testOpts(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewIndexCursor(st, "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err == nil {
		t.Fatal("Next on unpositioned cursor accepted")
	}
	if _, err := c.Prev(); err == nil {
		t.Fatal("Prev on unpositioned cursor accepted")
	}
}

func TestStoreShared(t *testing.T) {
	m := storage.NewMeter()
	r1 := testRelation("a", []int64{1, 2, 3, 4, 5})
	r2 := testRelation("b", []int64{3, 3, 4, 9})
	opts := testOpts(t, m)
	tables, shared, err := StoreShared(
		[]*relation.Relation{r1, r2},
		map[string][]string{"a": {"k"}, "b": {"k"}},
		opts,
	)
	if err != nil {
		t.Fatal(err)
	}
	if shared == nil || len(tables) != 2 {
		t.Fatal("shared store incomplete")
	}
	// Tuples and index lookups work through the views.
	ta, tb := tables["a"], tables["b"]
	ia, err := ta.Index("k")
	if err != nil {
		t.Fatal(err)
	}
	e, ok, err := ia.LookupGE(4)
	if err != nil || !ok || e.Key != 4 {
		t.Fatalf("a lookup: %+v %v %v", e, ok, err)
	}
	tu, ok, err := ta.ReadTuple(e.Ref)
	if err != nil || !ok || tu.Values[0] != 4 {
		t.Fatalf("a deref: %+v", tu)
	}
	ib, err := tb.Index("k")
	if err != nil {
		t.Fatal(err)
	}
	e, ok, err = ib.LookupGE(3)
	if err != nil || !ok || e.Key != 3 || e.Ord != 0 {
		t.Fatalf("b lookup: %+v", e)
	}
	tu, ok, err = tb.ReadTuple(e.Ref)
	if err != nil || !ok || tu.Values[0] != 3 {
		t.Fatalf("b deref: %+v", tu)
	}
	// All accesses hit the one shared ORAM: per-op cost is the shared cost.
	m.Reset()
	before := m.Snapshot()
	if _, _, err := ia.LookupGE(1); err != nil {
		t.Fatal(err)
	}
	d := m.Snapshot().Sub(before)
	// Each ORAM access over a batching store is two rounds (path read +
	// path write-back).
	if d.NetworkRounds != 2*int64(ia.AccessesPerRetrieval()) {
		t.Fatalf("shared lookup rounds %d, want %d", d.NetworkRounds, 2*ia.AccessesPerRetrieval())
	}
}

func TestStoreSharedRejectsRaw(t *testing.T) {
	opts := testOpts(t, nil)
	opts.Raw = true
	if _, _, err := StoreShared(nil, nil, opts); err == nil {
		t.Fatal("raw shared accepted")
	}
}

func TestRawTable(t *testing.T) {
	m := storage.NewMeter()
	opts := testOpts(t, m)
	opts.Raw = true
	opts.Sealer = nil
	rel := testRelation("t", []int64{2, 1, 3})
	st, err := Store(rel, []string{"k"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := st.Index("k")
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	before := m.Snapshot()
	e, ok, err := idx.LookupGE(2)
	if err != nil || !ok || e.Key != 2 {
		t.Fatalf("raw lookup: %+v", e)
	}
	// Raw lookups are Height() single-block accesses, no ORAM blowup.
	d := m.Snapshot().Sub(before)
	if d.BlocksMoved() != int64(idx.Height()) {
		t.Fatalf("raw lookup moved %d blocks, height %d", d.BlocksMoved(), idx.Height())
	}
	if st.ClientBytes() != 0 {
		t.Fatalf("raw client bytes %d", st.ClientBytes())
	}
}

func TestStorageAccounting(t *testing.T) {
	rel := testRelation("t", make([]int64, 200))
	opts := testOpts(t, nil)
	st, err := Store(rel, []string{"k"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	raw := opts
	raw.Raw = true
	raw.Sealer = nil
	rst, err := Store(rel, []string{"k"}, raw)
	if err != nil {
		t.Fatal(err)
	}
	// ORAM-backed storage costs several times the raw footprint (the paper
	// reports roughly 10x).
	if st.CloudBytes() < 4*rst.CloudBytes() {
		t.Fatalf("oram cloud %d, raw cloud %d", st.CloudBytes(), rst.CloudBytes())
	}
	if st.ClientBytes() == 0 {
		t.Fatal("oram client bytes zero (position map missing?)")
	}
	// +Cache adds client memory.
	cached := opts
	cached.CacheIndex = true
	cst, err := Store(rel, []string{"k"}, cached)
	if err != nil {
		t.Fatal(err)
	}
	if cst.ClientBytes() <= st.ClientBytes() {
		t.Fatalf("cache client %d <= plain client %d", cst.ClientBytes(), st.ClientBytes())
	}
}

func TestResetIndexes(t *testing.T) {
	opts := testOpts(t, nil)
	opts.WriteBackDescents = true
	rel := testRelation("t", []int64{1, 2, 3, 4, 5, 6})
	st, err := Store(rel, []string{"k"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := st.Index("k")
	if err := idx.Disable(0); err != nil {
		t.Fatal(err)
	}
	if err := st.ResetIndexes(); err != nil {
		t.Fatal(err)
	}
	e, ok, err := idx.LookupGE(1)
	if err != nil || !ok || e.Ord != 0 {
		t.Fatalf("after reset: %+v ok=%v err=%v", e, ok, err)
	}
}

func TestEmptyTable(t *testing.T) {
	rel := testRelation("t", nil)
	st, err := Store(rel, []string{"k"}, testOpts(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	c := NewScanCursor(st)
	row, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if row.OK {
		t.Fatal("empty table scan returned a row")
	}
	ic, err := NewIndexCursor(st, "k")
	if err != nil {
		t.Fatal(err)
	}
	row, err = ic.SeekGE(0)
	if err != nil {
		t.Fatal(err)
	}
	if row.OK {
		t.Fatal("empty table seek returned a row")
	}
}

// TestLinearSchemeBlackbox: the paper treats the ORAM as a blackbox; tables
// (and therefore joins) must work unchanged over the trivial linear ORAM.
func TestLinearSchemeBlackbox(t *testing.T) {
	m := storage.NewMeter()
	opts := testOpts(t, m)
	opts.Scheme = SchemeLinear
	rel := testRelation("t", []int64{3, 1, 4, 1, 5})
	st, err := Store(rel, []string{"k"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := st.Index("k")
	if err != nil {
		t.Fatal(err)
	}
	e, ok, err := idx.LookupGE(4)
	if err != nil || !ok || e.Key != 4 {
		t.Fatalf("linear lookup: %+v ok=%v err=%v", e, ok, err)
	}
	tu, ok, err := st.ReadTuple(e.Ref)
	if err != nil || !ok || tu.Values[0] != 4 {
		t.Fatalf("linear deref: %+v", tu)
	}
	// Linear ORAM: zero client state.
	if st.ClientBytes() != 0 {
		t.Fatalf("linear client bytes %d", st.ClientBytes())
	}
	// Every access costs a full scan of the store.
	m.Reset()
	before := m.Snapshot()
	if _, _, err := idx.LookupGE(1); err != nil {
		t.Fatal(err)
	}
	d := m.Snapshot().Sub(before)
	if d.BlocksMoved() < 2*int64(idx.Height()) {
		t.Fatalf("linear lookup moved only %d blocks", d.BlocksMoved())
	}
}

func TestStoreChainedOrderAndRewind(t *testing.T) {
	rel := testRelation("t", []int64{4, 1, 3, 1, 2})
	ct, err := StoreChained(rel, "k", testOpts(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	c := NewChainCursor(ct)
	var keys []int64
	var mark ChainMark
	var marked bool
	for i := 0; i < 5; i++ {
		row, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !row.OK {
			t.Fatalf("chain ended early at %d", i)
		}
		keys = append(keys, row.Entry.Key)
		if i == 1 {
			mark, marked = c.Mark(), true
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("chain not sorted: %v", keys)
		}
	}
	// Past the end: dummy.
	row, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if row.OK {
		t.Fatal("past-end chain returned a row")
	}
	// Rewind to the mark: the next row is the third-smallest key.
	if !marked {
		t.Fatal("no mark")
	}
	c.Restore(mark)
	row, err = c.Next()
	if err != nil || !row.OK {
		t.Fatal(err)
	}
	if row.Entry.Key != keys[2] {
		t.Fatalf("after rewind got %d, want %d", row.Entry.Key, keys[2])
	}
}

func TestStoreChainedValidation(t *testing.T) {
	if _, err := StoreChained(nil, "k", testOpts(t, nil)); err == nil {
		t.Fatal("nil relation accepted")
	}
	rel := testRelation("t", []int64{1})
	if _, err := StoreChained(rel, "nope", testOpts(t, nil)); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	opts := testOpts(t, nil)
	opts.Sealer = nil
	if _, err := StoreChained(rel, "k", opts); err == nil {
		t.Fatal("missing sealer accepted")
	}
	// Empty relation: cursor yields only dummies.
	empty := testRelation("e", nil)
	ct, err := StoreChained(empty, "k", testOpts(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	row, err := NewChainCursor(ct).Next()
	if err != nil || row.OK {
		t.Fatalf("empty chain: %+v %v", row, err)
	}
}
