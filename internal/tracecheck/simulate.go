package tracecheck

import (
	"fmt"
	"sort"

	"oblivjoin/internal/storage"
)

// PathORAMSim replays the server-visible bucket-index trace of the staged
// Path-ORAM data path (oram.PathORAM over a batching store) from public
// information alone: the tree geometry, the scheduler's eviction batch, and
// the sequence of fetched leaves — which the server observes directly, since
// every path download names its buckets. Recovering the leaves from a
// recorded classic trace and obtaining the batched run's exact trace back is
// the simulator argument of DESIGN.md §2.9: deferred, deduplicated eviction
// leaks nothing beyond the classic protocol, because an adversary can
// compute the entire batched trace from what any single run already reveals.
type PathORAMSim struct {
	// Store names the simulated store and Bytes its sealed bucket size; both
	// are copied verbatim into the emitted accesses.
	Store string
	Bytes int
	// Levels is the tree depth (root = level 0): the tree has 1<<(Levels-1)
	// leaves and (1<<Levels)-1 buckets.
	Levels int
	// Batch is the eviction batch k; <= 1 replays the classic protocol
	// (every access writes its path straight back).
	Batch int
	// Exchange simulates a store with combined write+read rounds: a due
	// flush rides the next fetch, its writes traced before the reads.
	Exchange bool

	pending []uint32
	due     bool
	trace   []storage.Access
}

// Access replays one ORAM access that fetched the path to the given leaf.
func (s *PathORAMSim) Access(leaf uint32) {
	s.fetch([]uint32{leaf})
	s.evictBatch([]uint32{leaf})
}

// AccessBatch replays a coalesced batch: one union download for all the
// given leaves, then one union write-back (scheduler.evictBatch).
func (s *PathORAMSim) AccessBatch(leaves []uint32) {
	s.fetch(leaves)
	s.evictBatch(leaves)
}

// Flush replays the terminal flush that drains the deferred queue.
func (s *PathORAMSim) Flush() {
	s.flushNow()
}

// Trace returns the accesses emitted so far.
func (s *PathORAMSim) Trace() []storage.Access {
	out := make([]storage.Access, len(s.trace))
	copy(out, s.trace)
	return out
}

func (s *PathORAMSim) nodeAtLevel(leaf uint32, lvl int) int64 {
	leaves := int64(1) << uint(s.Levels-1)
	return ((leaves + int64(leaf)) >> uint(s.Levels-1-lvl)) - 1
}

// pathNodes lists the buckets from the root to the leaf, root first — the
// order a batching store reads and writes a single path.
func (s *PathORAMSim) pathNodes(leaf uint32) []int64 {
	nodes := make([]int64, s.Levels)
	for lvl := range nodes {
		nodes[lvl] = s.nodeAtLevel(leaf, lvl)
	}
	return nodes
}

// unionNodes is the sorted union of the given leaves' paths; for one leaf it
// is the path itself (root first, which is already ascending).
func (s *PathORAMSim) unionNodes(leaves []uint32) []int64 {
	if len(leaves) == 1 {
		return s.pathNodes(leaves[0])
	}
	seen := map[int64]bool{}
	var nodes []int64
	for _, leaf := range leaves {
		for _, n := range s.pathNodes(leaf) {
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

func (s *PathORAMSim) emit(kind storage.AccessKind, idxs []int64) {
	for _, i := range idxs {
		s.trace = append(s.trace, storage.Access{Store: s.Store, Kind: kind, Index: i, Bytes: s.Bytes})
	}
}

func (s *PathORAMSim) fetch(leaves []uint32) {
	if s.due && s.Exchange && len(s.pending) > 0 {
		// The due flush rides the fetch: writes applied before reads.
		s.emit(storage.KindWrite, s.unionNodes(s.pending))
		s.pending = s.pending[:0]
		s.due = false
		s.emit(storage.KindRead, s.unionNodes(leaves))
		return
	}
	if s.due {
		s.flushNow()
	}
	s.emit(storage.KindRead, s.unionNodes(leaves))
}

func (s *PathORAMSim) evictBatch(leaves []uint32) {
	if s.Batch <= 1 && len(leaves) == 1 {
		// Classic write-back: the path, root first.
		s.emit(storage.KindWrite, s.pathNodes(leaves[0]))
		return
	}
	s.pending = append(s.pending, leaves...)
	if s.Batch <= 1 || len(s.pending) >= 2*s.Batch {
		s.flushNow()
		return
	}
	if len(s.pending) >= s.Batch {
		if s.Exchange {
			s.due = true
			return
		}
		s.flushNow()
	}
}

func (s *PathORAMSim) flushNow() {
	s.due = false
	if len(s.pending) == 0 {
		return
	}
	s.emit(storage.KindWrite, s.unionNodes(s.pending))
	s.pending = s.pending[:0]
}

// DiffExact compares two traces access by access — store, kind, physical
// index, and size — and describes the first divergence, or returns "" when
// the sequences are identical. This is the strongest of the trace
// comparisons: Diff drops indices (ORAM randomizes them between runs) and
// DiffUnordered drops ordering; DiffExact is for checking a simulator's
// prediction against the very run whose randomness it was given.
func DiffExact(a, b []storage.Access) string {
	if len(a) != len(b) {
		return fmt.Sprintf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("access %d differs: %s/%s/%d/%dB vs %s/%s/%d/%dB",
				i, a[i].Store, a[i].Kind, a[i].Index, a[i].Bytes,
				b[i].Store, b[i].Kind, b[i].Index, b[i].Bytes)
		}
	}
	return ""
}
